// A command-line driver for experimenting with every sorting algorithm and
// knob in the repository — the fifth example and the quickest way to poke
// at the system without writing code.
//
// Usage:
//   sort_cli [algo] [workload] [ranks] [records-per-rank] [options...]
//     algo:      sds | sds-stable | hyksort | samplesort | radix | bitonic
//     workload:  uniform | zipf:<alpha> | sorted | equal
//     options:   --budget=<x>     per-rank memory budget, multiple of avg
//                --nodes=<c>      cores per node (default 1)
//                --net=aries|slow|none
//
// Examples:
//   sort_cli sds zipf:1.4 16 20000
//   sort_cli hyksort zipf:1.4 16 20000 --budget=3     # watch it OOM
//   sort_cli sds-stable uniform 8 100000 --nodes=4 --net=slow
#include <cstdio>
#include <fstream>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/bitonic.hpp"
#include "baselines/hyksort.hpp"
#include "baselines/radixsort.hpp"
#include "baselines/samplesort.hpp"
#include "sdss.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace {
using namespace sdss;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: sort_cli [algo] [workload] [ranks] [records/rank] "
               "[--budget=X] [--nodes=C] [--net=aries|slow|none]\n"
               "  algo: sds | sds-stable | hyksort | samplesort | radix | "
               "bitonic\n"
               "  workload: uniform | zipf:<alpha> | sorted | equal\n");
  std::exit(2);
}

std::vector<std::uint64_t> make_workload(const std::string& w, std::size_t n,
                                         int rank) {
  const std::uint64_t seed = derive_seed(2024, static_cast<std::uint64_t>(rank));
  if (w == "uniform") return workloads::uniform_u64(n, seed, 1ull << 40);
  if (w.rfind("zipf:", 0) == 0) {
    return workloads::zipf_keys(n, std::atof(w.c_str() + 5), seed);
  }
  if (w == "sorted") {
    auto v = workloads::uniform_u64(n, seed, 1ull << 40);
    std::sort(v.begin(), v.end());
    return v;
  }
  if (w == "equal") return std::vector<std::uint64_t>(n, 7);
  usage();
}
}  // namespace

int main(int argc, char** argv) {
  std::string algo = "sds";
  std::string workload = "uniform";
  int ranks = 8;
  std::size_t per_rank = 20000;
  double budget_factor = 0.0;
  int cores_per_node = 1;
  std::string net = "aries";
  std::string trace_path;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--budget=", 0) == 0) {
      budget_factor = std::atof(arg.c_str() + 9);
    } else if (arg.rfind("--nodes=", 0) == 0) {
      cores_per_node = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--net=", 0) == 0) {
      net = arg.substr(6);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg == "-h" || arg == "--help") {
      usage();
    } else {
      switch (positional++) {
        case 0:
          algo = arg;
          break;
        case 1:
          workload = arg;
          break;
        case 2:
          ranks = std::atoi(arg.c_str());
          break;
        case 3:
          per_rank = static_cast<std::size_t>(std::atoll(arg.c_str()));
          break;
        default:
          usage();
      }
    }
  }
  if (ranks < 1 || cores_per_node < 1) usage();

  sim::ClusterConfig cc;
  cc.num_ranks = ranks;
  cc.cores_per_node = cores_per_node;
  cc.network = net == "aries"  ? sim::NetworkModel::aries_like()
               : net == "slow" ? sim::NetworkModel::slow_ethernet_like()
                               : sim::NetworkModel::none();
  cc.enable_trace = !trace_path.empty();
  sim::Cluster cluster(cc);
  const auto budget =
      static_cast<std::size_t>(budget_factor * static_cast<double>(per_rank));

  std::printf("algo=%s workload=%s ranks=%d records/rank=%zu budget=%zu "
              "net=%s nodes=%d\n",
              algo.c_str(), workload.c_str(), ranks, per_rank, budget,
              net.c_str(), cores_per_node);

  WallTimer total;
  auto result = cluster.run_collect([&](sim::Comm& world) {
    auto data = make_workload(workload, per_rank, world.rank());
    std::vector<std::uint64_t> out;
    if (algo == "sds" || algo == "sds-stable") {
      Config cfg;
      cfg.stable = algo == "sds-stable";
      cfg.mem_limit_records = budget;
      out = sds_sort<std::uint64_t>(world, std::move(data), cfg);
    } else if (algo == "hyksort") {
      baselines::HykSortConfig cfg;
      cfg.mem_limit_records = budget;
      out = baselines::hyksort<std::uint64_t>(world, std::move(data), cfg);
    } else if (algo == "samplesort") {
      baselines::SampleSortConfig cfg;
      cfg.mem_limit_records = budget;
      out = baselines::sample_sort<std::uint64_t>(world, std::move(data), cfg);
    } else if (algo == "radix") {
      baselines::RadixSortConfig cfg;
      cfg.mem_limit_records = budget;
      out = baselines::radix_sort_distributed<std::uint64_t>(
          world, std::move(data), cfg);
    } else if (algo == "bitonic") {
      out = baselines::bitonic_sort<std::uint64_t>(world, std::move(data));
    } else {
      throw Error("unknown algorithm: " + algo);
    }
    const bool ok = is_globally_sorted<std::uint64_t>(world, out);
    auto lb = measure_load_balance(world, out.size());
    if (world.rank() == 0) {
      std::printf("globally sorted: %s, RDFA %.4f, max load %zu\n",
                  ok ? "yes" : "NO", lb.rdfa, lb.max_load);
    }
  });
  const double seconds = total.seconds();

  if (!result.ok) {
    std::printf("run FAILED on rank %d: %s\n", result.failed_rank,
                result.error.c_str());
    return result.oom ? 3 : 1;
  }
  if (!trace_path.empty()) {
    std::ofstream tf(trace_path);
    sim::write_chrome_trace(tf, result.trace);
    std::printf("wrote %zu trace events to %s (open in chrome://tracing)\n",
                result.trace.size(), trace_path.c_str());
  }
  const auto breakdown = result.max_ledger();
  std::printf("wall time %.4fs | crit-path phases (CPU): pivot %.4fs, "
              "exchange %.4fs, ordering %.4fs, other %.4fs\n",
              seconds, breakdown.cpu_seconds(Phase::kPivotSelection),
              breakdown.cpu_seconds(Phase::kExchange),
              breakdown.cpu_seconds(Phase::kLocalOrdering),
              breakdown.cpu_seconds(Phase::kOther) +
                  breakdown.cpu_seconds(Phase::kNodeMerge));
  return 0;
}
