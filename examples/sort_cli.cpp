// A command-line driver for experimenting with every sorting algorithm and
// knob in the repository — the fifth example and the quickest way to poke
// at the system without writing code.
//
// Usage:
//   sort_cli [algo] [workload] [ranks] [records-per-rank] [options...]
//     algo:      sds | sds-stable | hyksort | samplesort | radix | bitonic
//     workload:  uniform | zipf:<alpha> | sorted | equal
//     options:   --budget=<x>     per-rank memory budget, multiple of avg
//                --nodes=<c>      cores per node (default 1)
//                --net=aries|slow|none
//                --trace=<path>   chrome://tracing event log
//                --json=<path>    machine-readable run report
//                                 (docs/OBSERVABILITY.md)
//
// Examples:
//   sort_cli sds zipf:1.4 16 20000
//   sort_cli hyksort zipf:1.4 16 20000 --budget=3     # watch it OOM
//   sort_cli sds-stable uniform 8 100000 --nodes=4 --net=slow
//   sort_cli sds zipf:1.4 16 20000 --json=run.json
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/bitonic.hpp"
#include "baselines/hyksort.hpp"
#include "baselines/radixsort.hpp"
#include "baselines/samplesort.hpp"
#include "sdss.hpp"
#include "telemetry/report.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace {
using namespace sdss;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: sort_cli [algo] [workload] [ranks] [records/rank] "
               "[--budget=X] [--nodes=C] [--net=aries|slow|none] "
               "[--trace=PATH] [--json=PATH]\n"
               "  algo: sds | sds-stable | hyksort | samplesort | radix | "
               "bitonic\n"
               "  workload: uniform | zipf:<alpha> | sorted | equal\n");
  std::exit(2);
}

std::vector<std::uint64_t> make_workload(const std::string& w, std::size_t n,
                                         int rank) {
  const std::uint64_t seed = derive_seed(2024, static_cast<std::uint64_t>(rank));
  if (w == "uniform") return workloads::uniform_u64(n, seed, 1ull << 40);
  if (w.rfind("zipf:", 0) == 0) {
    return workloads::zipf_keys(n, std::atof(w.c_str() + 5), seed);
  }
  if (w == "sorted") {
    auto v = workloads::uniform_u64(n, seed, 1ull << 40);
    std::sort(v.begin(), v.end());
    return v;
  }
  if (w == "equal") return std::vector<std::uint64_t>(n, 7);
  usage();
}
}  // namespace

int main(int argc, char** argv) {
  std::string algo = "sds";
  std::string workload = "uniform";
  int ranks = 8;
  std::size_t per_rank = 20000;
  double budget_factor = 0.0;
  int cores_per_node = 1;
  std::string net = "aries";
  std::string trace_path;
  std::string json_path;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--budget=", 0) == 0) {
      budget_factor = std::atof(arg.c_str() + 9);
    } else if (arg.rfind("--nodes=", 0) == 0) {
      cores_per_node = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--net=", 0) == 0) {
      net = arg.substr(6);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      usage();
    } else {
      switch (positional++) {
        case 0:
          algo = arg;
          break;
        case 1:
          workload = arg;
          break;
        case 2:
          ranks = std::atoi(arg.c_str());
          break;
        case 3:
          per_rank = static_cast<std::size_t>(std::atoll(arg.c_str()));
          break;
        default:
          usage();
      }
    }
  }
  if (ranks < 1 || cores_per_node < 1) usage();

  sim::ClusterConfig cc;
  cc.num_ranks = ranks;
  cc.cores_per_node = cores_per_node;
  cc.network = net == "aries"  ? sim::NetworkModel::aries_like()
               : net == "slow" ? sim::NetworkModel::slow_ethernet_like()
                               : sim::NetworkModel::none();
  // Tracing is always on (ClusterConfig's default); --trace only controls
  // whether the collected timeline is exported to a Perfetto-loadable file.
  sim::Cluster cluster(cc);
  const auto budget =
      static_cast<std::size_t>(budget_factor * static_cast<double>(per_rank));

  std::printf("algo=%s workload=%s ranks=%d records/rank=%zu budget=%zu "
              "net=%s nodes=%d\n",
              algo.c_str(), workload.c_str(), ranks, per_rank, budget,
              net.c_str(), cores_per_node);

  WallTimer total;
  LoadBalance balance;      // rank 0's capture (collective: same everywhere)
  balance.rdfa = 0.0;       // stays 0 when the run fails before measuring
  SortReport decisions;     // rank 0's adaptive decisions (sds only)
  auto result = cluster.run_collect([&](sim::Comm& world) {
    auto data = make_workload(workload, per_rank, world.rank());
    std::vector<std::uint64_t> out;
    SortReport rank_report;
    if (algo == "sds" || algo == "sds-stable") {
      Config cfg;
      cfg.stable = algo == "sds-stable";
      cfg.mem_limit_records = budget;
      out = sds_sort<std::uint64_t>(world, std::move(data), cfg, {},
                                    &rank_report);
    } else if (algo == "hyksort") {
      baselines::HykSortConfig cfg;
      cfg.mem_limit_records = budget;
      out = baselines::hyksort<std::uint64_t>(world, std::move(data), cfg);
    } else if (algo == "samplesort") {
      baselines::SampleSortConfig cfg;
      cfg.mem_limit_records = budget;
      out = baselines::sample_sort<std::uint64_t>(world, std::move(data), cfg);
    } else if (algo == "radix") {
      baselines::RadixSortConfig cfg;
      cfg.mem_limit_records = budget;
      out = baselines::radix_sort_distributed<std::uint64_t>(
          world, std::move(data), cfg);
    } else if (algo == "bitonic") {
      out = baselines::bitonic_sort<std::uint64_t>(world, std::move(data));
    } else {
      throw Error("unknown algorithm: " + algo);
    }
    const bool ok = is_globally_sorted<std::uint64_t>(world, out);
    auto lb = measure_load_balance(world, out.size());
    if (world.rank() == 0) {
      std::printf("globally sorted: %s, RDFA %.4f, max load %zu\n",
                  ok ? "yes" : "NO", lb.rdfa, lb.max_load);
      balance = std::move(lb);
      decisions = rank_report;
    }
  });
  const double seconds = total.seconds();

  if (!json_path.empty()) {
    telemetry::RunReport rep;
    rep.name = algo + "/" + workload + "/p=" + std::to_string(ranks);
    rep.experiment = "sort_cli";
    rep.algorithm = algo;
    rep.workload = workload;
    rep.set_param("records_per_rank", std::to_string(per_rank));
    rep.set_param("mem_budget_records", std::to_string(budget));
    if (result.ok && (algo == "sds" || algo == "sds-stable")) {
      rep.set_param("exchange", to_string(decisions.exchange));
      rep.set_param("ordering", to_string(decisions.ordering));
      rep.set_param("node_merged", decisions.node_merged ? "yes" : "no");
    }
    rep.ranks = ranks;
    rep.cores_per_node = cores_per_node;
    rep.net_latency_s = cc.network.latency_s;
    rep.net_bandwidth_Bps = cc.network.bandwidth_Bps;
    rep.ok = result.ok;
    rep.oom = result.oom;
    rep.wall_seconds = result.ok ? seconds : -1.0;
    rep.phases = result.max_ledger();
    for (const PhaseLedger& l : result.ledgers) {
      rep.crit_path_cpu_seconds =
          std::max(rep.crit_path_cpu_seconds, l.cpu_total());
    }
    rep.phases_per_rank = result.ledgers;
    rep.comm_total = result.total_comm();
    rep.comm_per_rank = result.comm_stats;
    if (!result.trace.lanes.empty()) {
      telemetry::set_trace(rep, trace::analyze_trace(result.trace));
    }
    rep.rdfa = balance.rdfa;
    rep.max_load = balance.max_load;
    rep.total_records = balance.total;
    telemetry::ReportRegistry registry;
    registry.add(std::move(rep));
    std::ofstream jf(json_path);
    registry.write(jf);
    std::printf("wrote run report to %s\n", json_path.c_str());
  }

  if (!result.ok) {
    std::printf("run FAILED on rank %d: %s\n", result.failed_rank,
                result.error.c_str());
    return result.oom ? 3 : 1;
  }
  if (!trace_path.empty()) {
    std::ofstream tf(trace_path);
    sim::write_chrome_trace(tf, result.trace);
    std::printf("wrote %zu trace events to %s (open in chrome://tracing)\n",
                result.trace.total_events(), trace_path.c_str());
  }
  const auto breakdown = result.max_ledger();
  std::printf("wall time %.4fs | crit-path phases (CPU): pivot %.4fs, "
              "exchange %.4fs, ordering %.4fs, other %.4fs\n",
              seconds, breakdown.cpu_seconds(Phase::kPivotSelection),
              breakdown.cpu_seconds(Phase::kExchange),
              breakdown.cpu_seconds(Phase::kLocalOrdering),
              breakdown.cpu_seconds(Phase::kOther) +
                  breakdown.cpu_seconds(Phase::kNodeMerge));
  return 0;
}
