// Quickstart: sort a distributed array of doubles with SDS-Sort.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The simulated cluster stands in for MPI: each rank is a thread, the
// communicator offers the familiar collectives, and `sds_sort` returns each
// rank's slice of the globally ordered data.
#include <cstdio>
#include <vector>

#include "sdss.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

int main() {
  using namespace sdss;

  // A 16-rank cluster, 4 ranks per simulated node, Aries-like network.
  sim::ClusterConfig cc;
  cc.num_ranks = 16;
  cc.cores_per_node = 4;
  cc.network = sim::NetworkModel::aries_like();
  sim::Cluster cluster(cc);

  cluster.run([](sim::Comm& world) {
    // Every rank owns a shard of the data. Here: 100k random doubles.
    std::vector<double> shard = workloads::uniform_doubles(
        100000, derive_seed(1, static_cast<std::uint64_t>(world.rank())));

    Config cfg;        // defaults: fast (non-stable), adaptive everything
    SortReport report; // optional: what the adaptive machinery decided
    std::vector<double> sorted =
        sds_sort<double>(world, std::move(shard), cfg, {}, &report);

    // `sorted` is globally ordered across ranks: every value on rank r is
    // <= every value on rank r+1. Verify and report.
    const bool ok = is_globally_sorted<double>(world, sorted);
    const auto balance = measure_load_balance(world, sorted.size());

    // The Dataset layer wraps the same primitives for order-based
    // analytics; reuse the sorted shard for a quick quantile sketch.
    Dataset<double> ds(world, std::move(sorted));
    auto ordered = std::move(ds).sorted_by();
    const std::vector<double> qs{0.5, 0.99};
    const auto quants = ordered.quantiles(qs);
    if (world.rank() == 0) {
      std::printf("globally sorted: %s\n", ok ? "yes" : "NO");
      std::printf("records total:   %llu\n",
                  static_cast<unsigned long long>(balance.total));
      std::printf("load balance:    RDFA %.4f (1.0 = perfect)\n",
                  balance.rdfa);
      std::printf("exchange mode:   %s\n",
                  report.exchange == ExchangeMode::kOverlapped
                      ? "overlapped with merging"
                      : "blocking alltoallv");
      if (quants.size() == 2) {
        std::printf("median %.6f, p99 %.6f\n", quants[0], quants[1]);
      }
    }
  });
  return 0;
}
