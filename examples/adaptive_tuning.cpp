// Adaptive-parameter tuning on the current machine (the methodology of the
// paper's Section 4.1.1, packaged as a user tool).
//
// SDS-Sort's thresholds — tau_m (node merging), tau_o (exchange/ordering
// overlap), tau_s (merge vs. re-sort) — are machine-dependent; the paper
// derives Edison's values empirically. This example reruns miniature
// versions of those experiments on the simulated cluster at hand and prints
// a Config a user could start from.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "sdss.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "workloads/generators.hpp"

namespace {
using namespace sdss;

double run_sort(sim::Cluster& cluster, std::size_t per_rank,
                const Config& cfg) {
  WallTimer timer;
  cluster.run([&](sim::Comm& world) {
    auto data = workloads::uniform_u64(
        per_rank, derive_seed(21, static_cast<std::uint64_t>(world.rank())),
        1ull << 40);
    auto out = sds_sort<std::uint64_t>(world, std::move(data), cfg);
  });
  return timer.seconds();
}
}  // namespace

int main() {
  sim::ClusterConfig cc;
  cc.num_ranks = 16;
  cc.cores_per_node = 4;
  cc.network = sim::NetworkModel::slow_ethernet_like();
  sim::Cluster cluster(cc);

  std::printf("tuning SDS-Sort on a %d-rank / %d-cores-per-node cluster\n\n",
              cc.num_ranks, cc.cores_per_node);

  // tau_o: overlap vs. blocking at this scale.
  Config overlap_on;
  overlap_on.tau_o = 1u << 20;
  Config overlap_off;
  overlap_off.tau_o = 0;
  const double t_overlap = run_sort(cluster, 40000, overlap_on);
  const double t_block = run_sort(cluster, 40000, overlap_off);
  std::printf("overlap experiment:   overlapped %.4fs vs blocking %.4fs\n",
              t_overlap, t_block);
  const bool prefer_overlap = t_overlap <= t_block;

  // tau_m: node merging for small vs. large shards.
  Config merge_on;
  merge_on.tau_m_bytes = ~std::size_t{0} >> 1;  // always merge
  Config merge_off;
  merge_off.tau_m_bytes = 0;  // never merge
  std::size_t tau_m_bytes = 0;
  for (std::size_t per_rank : {2000u, 16000u, 128000u}) {
    const double t_merge = run_sort(cluster, per_rank, merge_on);
    const double t_plain = run_sort(cluster, per_rank, merge_off);
    std::printf("node-merge experiment: %7zu rec/rank: merged %.4fs vs "
                "direct %.4fs\n",
                per_rank, t_merge, t_plain);
    if (t_merge < t_plain) {
      tau_m_bytes = std::max(
          tau_m_bytes,
          per_rank * sizeof(std::uint64_t) / static_cast<std::size_t>(cc.num_ranks));
    }
  }

  std::printf("\nrecommended starting Config for this machine:\n");
  std::printf("  cfg.tau_m_bytes = %zu;%s\n", tau_m_bytes,
              tau_m_bytes == 0 ? "  // node merging never paid off" : "");
  std::printf("  cfg.tau_o       = %s;\n",
              prefer_overlap ? "4096  // overlap pays off at this scale"
                             : "0     // blocking exchange was faster");
  std::printf("  cfg.tau_s       = 4000;  // merge-all below, re-sort above "
              "(see bench/fig5c)\n");
  return 0;
}
