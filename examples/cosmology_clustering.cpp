// BD-CATS-style cosmology post-processing (the paper's Section 4.2
// cosmology use case).
//
// BD-CATS clusters trillions of N-body particles and then sorts them by
// cluster ID so each halo's particles are contiguous for per-halo analysis.
// Cluster IDs are skewed (a few giant halos), which is where skew-aware
// partitioning earns its keep.
//
// The pipeline: generate particles -> sds_sort by cluster ID -> each rank
// scans its contiguous slice to compute halo sizes and centers of mass ->
// reduce the global top halos.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "sdss.hpp"
#include "util/rng.hpp"
#include "workloads/cosmology.hpp"

namespace {

struct HaloStat {
  std::uint64_t cluster_id = 0;
  std::uint64_t count = 0;
  double cx = 0, cy = 0, cz = 0;  // center-of-mass accumulators
};

}  // namespace

int main() {
  using namespace sdss;
  using workloads::Particle;

  constexpr int kRanks = 16;
  constexpr std::size_t kPerRank = 100000;

  sim::Cluster cluster(sim::ClusterConfig{kRanks, /*cores_per_node=*/4});
  cluster.run([](sim::Comm& world) {
    auto particles = workloads::cosmology_particles(
        kPerRank, derive_seed(13, static_cast<std::uint64_t>(world.rank())));

    // Sort by cluster ID; positions/velocities ride along as payload.
    auto key = [](const Particle& p) { return p.cluster_id; };
    auto sorted = sds_sort<Particle>(world, std::move(particles), {}, key);

    // Per-halo statistics over this rank's contiguous slice. A halo that
    // spans a rank boundary yields partial stats merged via the gather
    // below (only first/last halos of a rank can be split).
    std::vector<HaloStat> halos;
    for (const Particle& p : sorted) {
      if (halos.empty() || halos.back().cluster_id != p.cluster_id) {
        halos.push_back(HaloStat{p.cluster_id, 0, 0, 0, 0});
      }
      HaloStat& h = halos.back();
      ++h.count;
      h.cx += p.x;
      h.cy += p.y;
      h.cz += p.z;
    }

    // Merge boundary-spanning halos globally (halos are few; gather all).
    auto all = world.allgatherv<HaloStat>(halos);
    std::sort(all.begin(), all.end(), [](const HaloStat& a, const HaloStat& b) {
      return a.cluster_id < b.cluster_id;
    });
    std::vector<HaloStat> merged;
    for (const HaloStat& h : all) {
      if (!merged.empty() && merged.back().cluster_id == h.cluster_id) {
        merged.back().count += h.count;
        merged.back().cx += h.cx;
        merged.back().cy += h.cy;
        merged.back().cz += h.cz;
      } else {
        merged.push_back(h);
      }
    }
    std::partial_sort(merged.begin(),
                      merged.begin() + std::min<std::ptrdiff_t>(
                                           5, static_cast<std::ptrdiff_t>(
                                                  merged.size())),
                      merged.end(), [](const HaloStat& a, const HaloStat& b) {
                        return a.count > b.count;
                      });

    const auto balance = measure_load_balance(world, sorted.size());
    if (world.rank() == 0) {
      std::printf("cosmology: %d ranks x %zu particles, %zu halos\n",
                  world.size(), kPerRank, merged.size());
      std::printf("sort by cluster ID: RDFA %.4f\n", balance.rdfa);
      std::printf("largest halos (id, particles, center of mass):\n");
      for (std::size_t i = 0; i < merged.size() && i < 5; ++i) {
        const HaloStat& h = merged[i];
        const double n = static_cast<double>(h.count);
        std::printf("  #%zu  id=%llu  n=%llu  com=(%.2f, %.2f, %.2f)\n",
                    i + 1, static_cast<unsigned long long>(h.cluster_id),
                    static_cast<unsigned long long>(h.count), h.cx / n,
                    h.cy / n, h.cz / n);
      }
    }
  });
  return 0;
}
