// PTF transient-survey pipeline (the paper's Section 4.2 motivation).
//
// The Palomar Transient Factory's real/bogus classifier scores every
// detection; analysts rank detections by score to pick follow-up targets.
// The score column is heavily duplicated (the classifier saturates), so a
// *stable* skew-aware sort is exactly what SDS-Sort provides: detections
// keep their catalog order within equal scores, and no rank drowns in the
// saturated-score pile.
//
// The pipeline: generate a synthetic catalog -> stable sds_sort by score ->
// compute the global score threshold for the top-K candidates -> each rank
// extracts its share of candidates.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "sdss.hpp"
#include "util/rng.hpp"
#include "workloads/ptf.hpp"

int main() {
  using namespace sdss;
  using workloads::PtfRecord;

  constexpr int kRanks = 8;
  constexpr std::size_t kPerRank = 250000;
  constexpr std::size_t kTopK = 1000;  // follow-up capacity per night

  sim::Cluster cluster(sim::ClusterConfig{kRanks, /*cores_per_node=*/2});
  cluster.run([](sim::Comm& world) {
    // 1) Each rank loads its catalog shard (synthetic: delta ~ 28% of the
    //    scores sit on the classifier's saturated value).
    auto catalog = workloads::ptf_records(
        kPerRank, derive_seed(7, static_cast<std::uint64_t>(world.rank())));

    // 2) Stable sort by score: equal scores stay in catalog order, which
    //    downstream dedup relies on. No secondary key needed.
    Config cfg;
    cfg.stable = true;
    auto key = [](const PtfRecord& r) { return r.rb_score; };
    auto sorted = sds_sort<PtfRecord>(world, std::move(catalog), cfg, key);

    // 3) The best candidates are the K highest scores. Ranks hold
    //    consecutive score ranges, so count from the top across ranks.
    const auto counts = world.allgather<std::size_t>(sorted.size());
    std::size_t remaining = kTopK;
    std::size_t my_take = 0;
    for (int r = world.size() - 1; r >= 0 && remaining > 0; --r) {
      const std::size_t here =
          std::min(remaining, counts[static_cast<std::size_t>(r)]);
      if (r == world.rank()) my_take = here;
      remaining -= here;
    }
    std::vector<PtfRecord> candidates(
        sorted.end() - static_cast<std::ptrdiff_t>(my_take), sorted.end());

    // 4) Report: global threshold score and the balance of the sort.
    const float local_min = candidates.empty()
                                ? 2.0f
                                : candidates.front().rb_score;
    const float threshold = world.allreduce<float>(
        local_min, [](float a, float b) { return a < b ? a : b; });
    const auto balance = measure_load_balance(world, sorted.size());
    if (world.rank() == 0) {
      std::printf("PTF survey: %d ranks x %zu detections\n", world.size(),
                  kPerRank);
      std::printf("stable sort by real-bogus score: RDFA %.4f\n",
                  balance.rdfa);
      std::printf("top-%zu follow-up threshold: score >= %.6f\n", kTopK,
                  static_cast<double>(threshold));
    }
    const auto takes = world.allgather<std::size_t>(my_take);
    if (world.rank() == 0) {
      std::printf("candidates per rank (top ranks hold the best scores):");
      for (std::size_t t : takes) std::printf(" %zu", t);
      std::printf("\n");
    }
  });
  return 0;
}
