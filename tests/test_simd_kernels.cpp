// SIMD shim + kernel tests: the dispatch machinery (util/simd.hpp), the
// three kernel families differentially against their scalar references
// under every ISA available on the host, the sorting network at every size
// 0..kSortNetworkMaxN, the order-preserving key bijections of key.hpp, and
// the dispatch-count discipline. Under -DSDSS_FORCE_SCALAR=ON the available
// ISA list collapses to {scalar} and every test still runs — that build is
// the differential baseline scripts/check.sh compares against.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "sortcore/arena.hpp"
#include "sortcore/kernel_stats.hpp"
#include "sortcore/key.hpp"
#include "sortcore/kway_merge.hpp"
#include "sortcore/local_sort.hpp"
#include "sortcore/radix.hpp"
#include "sortcore/seq_sort.hpp"
#include "sortcore/simd_kernels.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace {
using namespace sdss;

std::vector<simd::Isa> available_isas() {
  std::vector<simd::Isa> v;
  for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kSse42,
                        simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (simd::isa_available(isa)) v.push_back(isa);
  }
  return v;
}

/// RAII: force an ISA for a test body, restore detection on exit.
struct IsaGuard {
  explicit IsaGuard(simd::Isa isa) { simd::force_isa(isa); }
  ~IsaGuard() { simd::reset_isa(); }
};

// --- the shim itself --------------------------------------------------------

TEST(SimdShim, ScalarIsAlwaysAvailableAndDetectionIsSane) {
  EXPECT_TRUE(simd::isa_available(simd::Isa::kScalar));
  const simd::Isa detected = simd::detect_isa();
  EXPECT_TRUE(simd::isa_available(detected));
  EXPECT_EQ(simd::active_isa(), detected);
#if defined(SDSS_FORCE_SCALAR)
  EXPECT_EQ(detected, simd::Isa::kScalar);
#endif
}

TEST(SimdShim, NamesAndLanesAreConsistent) {
  EXPECT_STREQ(simd::isa_name(simd::Isa::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kSse42), "sse4.2");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kAvx2), "avx2");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kNeon), "neon");
  EXPECT_EQ(simd::isa_lanes_u64(simd::Isa::kScalar), 1);
  EXPECT_EQ(simd::isa_lanes_u64(simd::Isa::kSse42), 2);
  EXPECT_EQ(simd::isa_lanes_u64(simd::Isa::kAvx2), 4);
  EXPECT_EQ(simd::isa_lanes_u64(simd::Isa::kNeon), 2);
}

TEST(SimdShim, ForceAndResetRoundTrip) {
  for (simd::Isa isa : available_isas()) {
    simd::force_isa(isa);
    EXPECT_EQ(simd::active_isa(), isa) << simd::isa_name(isa);
  }
  simd::reset_isa();
  EXPECT_EQ(simd::active_isa(), simd::detect_isa());
}

TEST(SimdShim, ForcingAnUnavailableIsaThrows) {
  // At most one of NEON / AVX2 exists on any one machine, so one of these
  // is always a valid "unavailable" probe.
  const simd::Isa missing = simd::isa_available(simd::Isa::kNeon)
                                ? simd::Isa::kAvx2
                                : simd::Isa::kNeon;
  if (simd::isa_available(missing)) GTEST_SKIP() << "both somehow available";
  EXPECT_THROW(simd::force_isa(missing), sdss::Error);
  EXPECT_EQ(simd::active_isa(), simd::detect_isa());  // state unchanged
}

// --- sorting network: every size, every available ISA -----------------------

template <typename U>
void check_network_all_sizes(simd::Isa isa) {
  IsaGuard guard(isa);
  std::mt19937_64 rng(0xC0FFEE);
  for (std::size_t n = 0; n <= detail::kSortNetworkMaxN; ++n) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<U> v(n);
      switch (trial % 4) {
        case 0:  // random
          for (auto& x : v) x = static_cast<U>(rng());
          break;
        case 1:  // duplicate-heavy
          for (auto& x : v) x = static_cast<U>(rng() % 4);
          break;
        case 2:  // already sorted
          for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<U>(i);
          break;
        default:  // reverse sorted, with extremes
          for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<U>(n - i);
          if (n >= 2) {
            v.front() = std::numeric_limits<U>::max();
            v.back() = 0;
          }
          break;
      }
      std::vector<U> ref = v;
      std::stable_sort(ref.begin(), ref.end());
      simdk::sort_small(v.data(), n);
      ASSERT_EQ(v, ref) << "isa=" << simd::isa_name(isa) << " n=" << n
                        << " trial=" << trial;
    }
  }
}

TEST(SortingNetwork, MatchesStableSortAtEverySizeU64) {
  for (simd::Isa isa : available_isas()) {
    check_network_all_sizes<std::uint64_t>(isa);
  }
}

TEST(SortingNetwork, MatchesStableSortAtEverySizeU32) {
  for (simd::Isa isa : available_isas()) {
    check_network_all_sizes<std::uint32_t>(isa);
  }
}

// --- histogram + gallop: differential vs plain loops, per ISA ---------------

TEST(HistKernels, MatchNaiveCountsUnderEveryIsa) {
  std::mt19937_64 rng(7);
  for (simd::Isa isa : available_isas()) {
    IsaGuard guard(isa);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::uint64_t> v(n);
      for (auto& x : v) x = rng() % (n > 64 ? ~0ULL : 300);
      std::vector<std::size_t> h(8 * 256, 0), ref(8 * 256, 0);
      simdk::hist_all(v.data(), n, h.data());
      for (auto x : v) {
        for (int p = 0; p < 8; ++p) ++ref[p * 256 + ((x >> (8 * p)) & 0xFF)];
      }
      ASSERT_EQ(h, ref) << simd::isa_name(isa) << " n=" << n;

      for (int shift : {0, 8, 32, 56}) {
        std::vector<std::size_t> hp(256, 0), rp(256, 0);
        simdk::hist_pass(v.data(), n, shift, hp.data());
        for (auto x : v) ++rp[(x >> shift) & 0xFF];
        ASSERT_EQ(hp, rp) << simd::isa_name(isa) << " shift=" << shift;
      }

      std::vector<std::uint32_t> w(n);
      for (auto& x : w) x = static_cast<std::uint32_t>(rng());
      std::vector<std::size_t> h4(4 * 256, 0), r4(4 * 256, 0);
      simdk::hist_all(w.data(), n, h4.data());
      for (auto x : w) {
        for (int p = 0; p < 4; ++p) ++r4[p * 256 + ((x >> (8 * p)) & 0xFF)];
      }
      ASSERT_EQ(h4, r4) << simd::isa_name(isa) << " u32 n=" << n;
    }
  }
}

TEST(GallopKernel, MatchesLinearScanUnderEveryIsa) {
  std::mt19937_64 rng(9);
  for (simd::Isa isa : available_isas()) {
    IsaGuard guard(isa);
    for (int trial = 0; trial < 4000; ++trial) {
      const std::size_t n = rng() % 50;
      const bool inclusive = rng() & 1;
      std::vector<std::uint64_t> v(n);
      for (auto& x : v) x = rng() % 16;
      std::sort(v.begin(), v.end());
      const std::uint64_t lim = rng() % 16;
      std::size_t want = 0;
      while (want < n && (inclusive ? v[want] <= lim : v[want] < lim)) ++want;
      ASSERT_EQ(simdk::gallop(v.data(), n, lim, inclusive), want)
          << simd::isa_name(isa) << " n=" << n << " lim=" << lim
          << " inc=" << inclusive;

      std::vector<std::uint32_t> w(n);
      for (auto& x : w) x = static_cast<std::uint32_t>(rng() % 16);
      std::sort(w.begin(), w.end());
      const auto lim32 = static_cast<std::uint32_t>(rng() % 16);
      want = 0;
      while (want < n && (inclusive ? w[want] <= lim32 : w[want] < lim32)) {
        ++want;
      }
      ASSERT_EQ(simdk::gallop(w.data(), n, lim32, inclusive), want)
          << simd::isa_name(isa) << " u32";
    }
  }
}

TEST(GallopKernel, BoundaryLimits) {
  for (simd::Isa isa : available_isas()) {
    IsaGuard guard(isa);
    std::vector<std::uint64_t> v(37, 5);
    // limit below / equal / above every element, both tie rules.
    EXPECT_EQ(simdk::gallop(v.data(), v.size(), 4, true), 0u);
    EXPECT_EQ(simdk::gallop(v.data(), v.size(), 5, true), v.size());
    EXPECT_EQ(simdk::gallop(v.data(), v.size(), 5, false), 0u);
    EXPECT_EQ(simdk::gallop(v.data(), v.size(), 6, false), v.size());
    const std::uint64_t mx = std::numeric_limits<std::uint64_t>::max();
    std::vector<std::uint64_t> top(9, mx);
    EXPECT_EQ(simdk::gallop(top.data(), top.size(), mx, true), top.size());
    EXPECT_EQ(simdk::gallop(top.data(), top.size(), mx, false), 0u);
    EXPECT_EQ(simdk::gallop(top.data(), top.size(), 0, true), 0u);
  }
}

// --- whole-sort differential: every ISA produces identical output -----------

TEST(IsaDifferential, RadixAndLocalSortBitIdenticalAcrossIsas) {
  std::mt19937_64 rng(11);
  std::vector<std::uint64_t> input(20000);
  for (auto& x : input) x = rng() % 1000;  // duplicate-heavy

  std::vector<std::vector<std::uint64_t>> results;
  for (simd::Isa isa : available_isas()) {
    IsaGuard guard(isa);
    std::vector<std::uint64_t> radixed = input;
    radix_sort(radixed);
    std::vector<std::uint64_t> local = input;
    LocalSortConfig cfg;
    cfg.threads = 3;
    local_sort(local, cfg);
    ASSERT_EQ(radixed, local) << simd::isa_name(isa);
    results.push_back(std::move(radixed));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[0], results[i]) << "ISA output mismatch";
  }
  std::vector<std::uint64_t> ref = input;
  std::sort(ref.begin(), ref.end());
  ASSERT_EQ(results[0], ref);
}

TEST(IsaDifferential, KwayMergeIdenticalAcrossIsas) {
  std::mt19937_64 rng(13);
  constexpr std::size_t kRuns = 6, kLen = 700;
  std::vector<std::vector<std::uint64_t>> storage(kRuns);
  std::vector<std::span<const std::uint64_t>> runs(kRuns);
  for (std::size_t r = 0; r < kRuns; ++r) {
    storage[r].resize(kLen);
    for (auto& x : storage[r]) x = rng() % 40;  // heavy ties across runs
    std::sort(storage[r].begin(), storage[r].end());
    runs[r] = storage[r];
  }
  std::vector<std::vector<std::uint64_t>> outs;
  for (simd::Isa isa : available_isas()) {
    IsaGuard guard(isa);
    std::vector<std::uint64_t> out(kRuns * kLen);
    kway_merge(std::span<const std::span<const std::uint64_t>>(runs),
               std::span<std::uint64_t>(out));
    ASSERT_TRUE(std::is_sorted(out.begin(), out.end()));
    outs.push_back(std::move(out));
  }
  for (std::size_t i = 1; i < outs.size(); ++i) {
    ASSERT_EQ(outs[0], outs[i]);
  }
}

// --- key.hpp bijections -----------------------------------------------------

TEST(KeyTransforms, SignedToUnsignedPreservesTotalOrder) {
  const SignedToUnsignedKey kf;
  const std::vector<std::int64_t> probes = {
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::min() + 1,
      -1000000007LL,
      -2,
      -1,
      0,
      1,
      2,
      1000000007LL,
      std::numeric_limits<std::int64_t>::max() - 1,
      std::numeric_limits<std::int64_t>::max()};
  for (std::size_t i = 0; i < probes.size(); ++i) {
    for (std::size_t j = 0; j < probes.size(); ++j) {
      EXPECT_EQ(probes[i] < probes[j], kf(probes[i]) < kf(probes[j]))
          << probes[i] << " vs " << probes[j];
    }
  }
  EXPECT_EQ(kf(std::numeric_limits<std::int64_t>::min()), 0u);
  EXPECT_EQ(kf(std::numeric_limits<std::int64_t>::max()),
            std::numeric_limits<std::uint64_t>::max());
  // Narrower widths map through make_unsigned of the same width.
  const std::int32_t a = -5, b = 5;
  static_assert(
      std::is_same_v<decltype(kf(a)), std::uint32_t>);
  EXPECT_LT(kf(a), kf(b));
}

TEST(KeyTransforms, FloatToUnsignedPreservesTotalOrder) {
  const FloatToUnsignedKey kf;
  const std::vector<double> probes = {
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::lowest(),
      -1e100,
      -1.5,
      -std::numeric_limits<double>::min(),       // largest negative magnitude
      -std::numeric_limits<double>::denorm_min(),
      0.0,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      1.5,
      1e100,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity()};
  for (std::size_t i = 0; i < probes.size(); ++i) {
    for (std::size_t j = 0; j < probes.size(); ++j) {
      EXPECT_EQ(probes[i] < probes[j], kf(probes[i]) < kf(probes[j]))
          << probes[i] << " vs " << probes[j];
    }
  }
  // IEEE totalOrder semantics at the origin: -0.0 maps strictly below +0.0
  // even though they compare equal as doubles.
  EXPECT_LT(kf(-0.0), kf(0.0));
  // Same checks for float/uint32.
  const float fs[] = {-std::numeric_limits<float>::infinity(), -2.0f, -0.5f,
                      0.0f, 0.5f, 2.0f,
                      std::numeric_limits<float>::infinity()};
  for (const float x : fs) {
    for (const float y : fs) {
      EXPECT_EQ(x < y, kf(x) < kf(y)) << x << " vs " << y;
    }
  }
  EXPECT_LT(kf(-0.0f), kf(0.0f));
}

TEST(KeyTransforms, RadixSortsSignedAndFloatKeysCorrectly) {
  std::mt19937_64 rng(17);
  std::vector<std::int64_t> s(5000);
  for (auto& x : s) x = static_cast<std::int64_t>(rng()) % 1000;
  std::vector<std::int64_t> s_ref = s;
  radix_sort(s, SignedToUnsignedKey{});
  std::sort(s_ref.begin(), s_ref.end());
  EXPECT_EQ(s, s_ref);

  std::vector<double> d(5000);
  for (auto& x : d) {
    x = (static_cast<double>(rng() % 2000) - 1000.0) / 7.0;
  }
  std::vector<double> d_ref = d;
  radix_sort(d, FloatToUnsignedKey{});
  std::sort(d_ref.begin(), d_ref.end());
  EXPECT_EQ(d, d_ref);
}

// --- dispatch-count discipline ---------------------------------------------

TEST(DispatchCounters, CountsAreBumpedAndIsaIndependent) {
  std::mt19937_64 rng(23);
  std::vector<std::uint64_t> input(40000);
  for (auto& x : input) x = rng() % 64;

  auto run_once = [&] {
    const KernelSnapshot before = snapshot_kernel_counters();
    std::vector<std::uint64_t> v = input;
    radix_sort(v);  // hist_all
    std::vector<std::uint64_t> tiny(input.begin(), input.begin() + 32);
    seq_sort(std::span<std::uint64_t>(tiny), /*stable=*/true);  // sortnet
    // Three duplicate-heavy runs drive the merge through pop_run → gallop.
    std::vector<std::uint64_t> r0(v.begin(), v.begin() + 10000);
    std::vector<std::uint64_t> r1(v.begin() + 10000, v.begin() + 20000);
    std::vector<std::uint64_t> r2(v.begin() + 20000, v.end());
    std::vector<std::span<const std::uint64_t>> runs = {r0, r1, r2};
    std::vector<std::uint64_t> out(v.size());
    kway_merge(std::span<const std::span<const std::uint64_t>>(runs),
               std::span<std::uint64_t>(out));
    return snapshot_kernel_counters().delta_since(before);
  };

  std::vector<KernelSnapshot> deltas;
  for (simd::Isa isa : available_isas()) {
    IsaGuard guard(isa);
    deltas.push_back(run_once());
  }
  EXPECT_GE(deltas[0].simd_hist_calls, 1u);
  EXPECT_GE(deltas[0].simd_sortnet_calls, 1u);
  EXPECT_GE(deltas[0].simd_gallop_calls, 1u);
  EXPECT_GT(deltas[0].merge_gallop_bytes, 0u);
  for (std::size_t i = 1; i < deltas.size(); ++i) {
    // The cutoffs never consult the ISA, so dispatch counts and gallop
    // traffic are identical whichever ISA actually ran.
    EXPECT_EQ(deltas[0].simd_hist_calls, deltas[i].simd_hist_calls);
    EXPECT_EQ(deltas[0].simd_sortnet_calls, deltas[i].simd_sortnet_calls);
    EXPECT_EQ(deltas[0].simd_gallop_calls, deltas[i].simd_gallop_calls);
    EXPECT_EQ(deltas[0].merge_gallop_bytes, deltas[i].merge_gallop_bytes);
  }
}

TEST(DispatchCounters, SortSmallCountsBytesMoved) {
  std::vector<std::uint64_t> v = {5, 3, 1, 4, 2};
  const KernelSnapshot before = snapshot_kernel_counters();
  simdk::sort_small(v.data(), v.size());
  const KernelSnapshot d = snapshot_kernel_counters().delta_since(before);
  EXPECT_EQ(d.simd_sortnet_calls, 1u);
  EXPECT_EQ(d.bytes_moved, 2 * v.size() * sizeof(std::uint64_t));
}

// --- base-case integration: tiny inputs route through the network -----------

TEST(BaseCaseCutoff, TinySortsAreCorrectThroughEveryEntryPoint) {
  std::mt19937_64 rng(29);
  for (std::size_t n : {std::size_t{2}, std::size_t{17}, std::size_t{64}}) {
    std::vector<std::uint64_t> in(n);
    for (auto& x : in) x = rng() % 10;
    std::vector<std::uint64_t> ref = in;
    std::sort(ref.begin(), ref.end());

    std::vector<std::uint64_t> a = in;
    seq_sort(std::span<std::uint64_t>(a), false);
    EXPECT_EQ(a, ref);

    std::vector<std::uint64_t> b = in;
    radix_sort(b);
    EXPECT_EQ(b, ref);

    std::vector<std::uint64_t> c = in;
    LocalSortConfig cfg;
    local_sort(c, cfg);
    EXPECT_EQ(c, ref);
  }
}

}  // namespace
