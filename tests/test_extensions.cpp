// Tests for the extension features: scatter/reduce collectives, GraySort
// byte-string-key records end-to-end, the distributed radix sort baseline,
// and the dynamic local-sort kernel selection.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "baselines/radixsort.hpp"
#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sim/cluster.hpp"
#include "sortcore/local_sort.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/graysort.hpp"
#include "workloads/zipf.hpp"

namespace sdss {
namespace {

using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;

// --- scatter / reduce ---------------------------------------------------------

TEST(SimCollectivesExt, ScatterDistributesRootData) {
  Cluster(ClusterConfig{4}).run([](Comm& c) {
    std::vector<int> send;
    if (c.rank() == 1) {
      send = {100, 101, 102, 103};
    }
    const int mine = c.scatter_value<int>(send, /*root=*/1);
    EXPECT_EQ(mine, 100 + c.rank());
  });
}

TEST(SimCollectivesExt, ScatterWrongSizeThrows) {
  auto res = Cluster(ClusterConfig{3}).run_collect([](Comm& c) {
    std::vector<int> send(c.rank() == 0 ? 2u : 0u);  // root has too few
    c.scatter_value<int>(send, 0);
  });
  EXPECT_FALSE(res.ok);
}

TEST(SimCollectivesExt, ReduceOntoRoot) {
  Cluster(ClusterConfig{5}).run([](Comm& c) {
    const int r = c.reduce<int>(c.rank() + 1, [](int a, int b) { return a + b; },
                                /*root=*/3);
    if (c.rank() == 3) {
      EXPECT_EQ(r, 15);
    }
  });
}

// --- GraySort workload ------------------------------------------------------------

TEST(GraySort, DeterministicAndIndependentOfSharding) {
  // Records for indices [0, 100) equal the concatenation of [0,60)+[60,100).
  const auto whole = workloads::graysort_records(0, 100, 9);
  const auto a = workloads::graysort_records(0, 60, 9);
  const auto b = workloads::graysort_records(60, 40, 9);
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(whole[i].key, a[i].key);
  }
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(whole[60 + i].key, b[i].key);
  }
}

TEST(GraySort, PayloadCarriesRecordIndex) {
  const auto recs = workloads::graysort_records(1234, 3, 9);
  for (std::size_t i = 0; i < 3; ++i) {
    std::uint64_t idx = 0;
    for (int b = 0; b < 8; ++b) {
      idx = (idx << 8) | recs[i].payload[static_cast<std::size_t>(b)];
    }
    EXPECT_EQ(idx, 1234 + i);
  }
}

TEST(GraySort, SkewedVariantHasHotKey) {
  const auto recs = workloads::graysort_records_skewed(0, 10000, 9, 0.3);
  std::array<std::uint8_t, 10> hot;
  hot.fill(0x42);
  std::size_t hits = 0;
  for (const auto& r : recs) {
    if (r.key == hot) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.03);
}

TEST(GraySort, SdsSortHandlesByteStringKeys) {
  using workloads::GraySortRecord;
  Cluster(ClusterConfig{8}).run([](Comm& world) {
    const auto first = static_cast<std::uint64_t>(world.rank()) * 2000;
    auto shard = workloads::graysort_records(first, 2000, 77);
    const auto before = global_checksum<GraySortRecord>(world, shard);
    auto sorted = sds_sort<GraySortRecord>(world, std::move(shard), {},
                                           workloads::graysort_key);
    EXPECT_TRUE((is_globally_sorted<GraySortRecord>(
        world, sorted, workloads::graysort_key)));
    EXPECT_EQ(before, (global_checksum<GraySortRecord>(world, sorted)));
  });
}

TEST(GraySort, SkewedByteKeysStayBalanced) {
  using workloads::GraySortRecord;
  Cluster(ClusterConfig{8}).run([](Comm& world) {
    auto shard = workloads::graysort_records_skewed(
        static_cast<std::uint64_t>(world.rank()) * 2000, 2000, 78, 0.4);
    Config cfg;
    cfg.stable = true;  // byte keys + stability: the full hard case
    auto sorted = sds_sort<GraySortRecord>(world, std::move(shard), cfg,
                                           workloads::graysort_key);
    EXPECT_TRUE((is_globally_sorted<GraySortRecord>(
        world, sorted, workloads::graysort_key)));
    auto lb = measure_load_balance(world, sorted.size());
    EXPECT_LE(lb.rdfa, 4.0);  // the paper's O(4N/p) bound
  });
}

TEST(KeyLimitsTrait, ByteArrayMaxSortsLast) {
  const auto mx = KeyLimits<std::array<std::uint8_t, 10>>::max();
  std::array<std::uint8_t, 10> other;
  other.fill(0xfe);
  EXPECT_LT(other, mx);
  EXPECT_EQ(KeyLimits<std::uint32_t>::max(), 0xffffffffu);
}

// --- distributed radix sort ---------------------------------------------------------

TEST(RadixDistributed, SortsUniform) {
  Cluster(ClusterConfig{6}).run([](Comm& world) {
    auto shard = workloads::uniform_u64(
        3000, derive_seed(55, static_cast<std::uint64_t>(world.rank())),
        ~0ull);
    const auto before = global_checksum<std::uint64_t>(world, shard);
    auto out =
        baselines::radix_sort_distributed<std::uint64_t>(world, std::move(shard));
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(world, out)));
  });
}

TEST(RadixDistributed, BalancedOnUniform) {
  Cluster(ClusterConfig{8}).run([](Comm& world) {
    auto shard = workloads::uniform_u64(
        4000, derive_seed(56, static_cast<std::uint64_t>(world.rank())),
        ~0ull);
    auto out =
        baselines::radix_sort_distributed<std::uint64_t>(world, std::move(shard));
    auto lb = measure_load_balance(world, out.size());
    EXPECT_LE(lb.rdfa, 1.5);
  });
}

TEST(RadixDistributed, SingleRank) {
  Cluster(ClusterConfig{1}).run([](Comm& world) {
    auto out = baselines::radix_sort_distributed<std::uint64_t>(world,
                                                                {9, 2, 5});
    EXPECT_EQ(out, (std::vector<std::uint64_t>{2, 5, 9}));
  });
}

TEST(RadixDistributed, HotKeyOverloadsOneRank) {
  // Keys identical in the top bits cannot be split across buckets: the
  // bucket owner inherits everything, like a duplicated sample pivot.
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    std::vector<std::uint64_t> shard(2000, 0x1234567890abcdefull);
    auto out =
        baselines::radix_sort_distributed<std::uint64_t>(world, std::move(shard));
    auto lb = measure_load_balance(world, out.size());
    EXPECT_NEAR(lb.rdfa, 4.0, 0.01);
  });
}

TEST(RadixDistributed, OomOnSkewWithBudget) {
  auto res = Cluster(ClusterConfig{8}).run_collect([](Comm& world) {
    auto shard = workloads::zipf_keys(
        4000, 1.4, derive_seed(57, static_cast<std::uint64_t>(world.rank())));
    baselines::RadixSortConfig cfg;
    cfg.mem_limit_records = 8000;
    baselines::radix_sort_distributed<std::uint64_t>(world, std::move(shard),
                                                     cfg);
  });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.oom);
}

TEST(RadixDistributed, SortsRecordsWithProjection) {
  struct Rec {
    std::uint32_t key;
    std::uint32_t seq;
  };
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    SplitMix64 rng(derive_seed(58, static_cast<std::uint64_t>(world.rank())));
    std::vector<Rec> shard(2000);
    for (std::uint32_t i = 0; i < 2000; ++i) {
      shard[i] = {static_cast<std::uint32_t>(rng.next()), i};
    }
    auto key = [](const Rec& r) { return r.key; };
    auto out = baselines::radix_sort_distributed<Rec>(world, std::move(shard),
                                                      {}, key);
    EXPECT_TRUE((is_globally_sorted<Rec>(world, out, key)));
  });
}

// --- dynamic local-sort kernel selection ----------------------------------------------

TEST(LocalSortAlgoSelection, RadixKernelSortsCorrectly) {
  auto v = workloads::uniform_u64(50000, 59, ~0ull);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  LocalSortConfig cfg;
  cfg.threads = 4;
  cfg.algo = LocalSortAlgo::kRadix;
  local_sort(v, cfg);
  EXPECT_EQ(v, expect);
}

TEST(LocalSortAlgoSelection, AutoPicksRadixForUnsignedAndWorks) {
  auto v = workloads::uniform_u64(50000, 60, 1000);  // duplicate-heavy
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  LocalSortConfig cfg;
  cfg.threads = 3;
  cfg.algo = LocalSortAlgo::kAuto;
  local_sort(v, cfg);
  EXPECT_EQ(v, expect);
}

TEST(LocalSortAlgoSelection, AutoFallsBackForFloatKeys) {
  std::vector<double> v;
  SplitMix64 rng(61);
  for (int i = 0; i < 30000; ++i) v.push_back(rng.next_double());
  LocalSortConfig cfg;
  cfg.threads = 2;
  cfg.algo = LocalSortAlgo::kAuto;  // double key: must fall back, not throw
  local_sort(v, cfg);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(LocalSortAlgoSelection, RadixOnFloatKeysThrows) {
  std::vector<double> v(10000, 1.0);
  LocalSortConfig cfg;
  cfg.algo = LocalSortAlgo::kRadix;
  EXPECT_THROW(local_sort(v, cfg), std::invalid_argument);
}

TEST(LocalSortAlgoSelection, DriverPlumbsKernelChoice) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    auto shard = workloads::zipf_keys(
        5000, 1.4, derive_seed(62, static_cast<std::uint64_t>(world.rank())));
    Config cfg;
    cfg.local_algo = LocalSortAlgo::kRadix;
    auto out = sds_sort<std::uint64_t>(world, std::move(shard), cfg);
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
  });
}

TEST(LocalSortAlgoSelection, RadixKernelIsStable) {
  struct Rec {
    std::uint16_t key;
    std::uint32_t seq;
  };
  std::vector<Rec> v;
  SplitMix64 rng(63);
  for (std::uint32_t i = 0; i < 40000; ++i) {
    v.push_back({static_cast<std::uint16_t>(rng.next_below(8)), i});
  }
  LocalSortConfig cfg;
  cfg.threads = 4;
  cfg.stable = true;
  cfg.algo = LocalSortAlgo::kRadix;
  local_sort(v, cfg, [](const Rec& r) { return r.key; });
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) {
      ASSERT_LT(v[i - 1].seq, v[i].seq);
    }
  }
}

}  // namespace
}  // namespace sdss
