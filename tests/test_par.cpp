// Unit tests for the thread-pool substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "par/thread_pool.hpp"

namespace sdss::par {
namespace {

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  std::vector<int> hits(100, 0);
  pool.parallel_for(0, 100, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, OffsetRange) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 50,
                                 [&](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error("unlucky");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelInvokeRunsAllThunks) {
  ThreadPool pool(2);
  std::atomic<int> mask{0};
  std::vector<std::function<void()>> thunks;
  for (int i = 0; i < 5; ++i) {
    thunks.emplace_back([&mask, i] { mask.fetch_or(1 << i); });
  }
  pool.parallel_invoke(thunks);
  EXPECT_EQ(mask.load(), 0b11111);
}

TEST(ThreadPool, ConcurrentCallersDoNotInterfere) {
  ThreadPool pool(2);
  std::vector<std::thread> callers;
  std::vector<std::atomic<long>> sums(4);
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&pool, &sums, t] {
      pool.parallel_for(0, 200, [&sums, t](std::size_t i) {
        sums[static_cast<std::size_t>(t)].fetch_add(static_cast<long>(i));
      });
    });
  }
  for (auto& c : callers) c.join();
  for (auto& s : sums) EXPECT_EQ(s.load(), 19900);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> n{0};
  parallel_for(0, 64, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 64);
}

TEST(ThreadPool, NestedParallelForFromWorkerCompletes) {
  // parallel_for issued from inside a parallel task must not deadlock
  // (caller always participates).
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { n.fetch_add(1); });
  });
  EXPECT_EQ(n.load(), 32);
}

TEST(ThreadPool, ExplicitGrainRunsEveryIndexOnce) {
  ThreadPool pool(3);
  for (std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                            std::size_t{10000}}) {
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(
        0, hits.size(),
        [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
    for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, RangesCoverDisjointStrides) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(5000);
  std::atomic<int> calls{0};
  pool.parallel_for_ranges(
      100, 5100,
      [&](std::size_t lo, std::size_t hi) {
        ASSERT_LT(lo, hi);
        calls.fetch_add(1);
        for (std::size_t i = lo; i < hi; ++i) {
          hits[i - 100].fetch_add(1);
        }
      },
      /*grain=*/256);
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  // 5000 indices at grain 256 is at most ceil(5000/256) = 20 stride calls —
  // the whole point of chunking is orders fewer dispatches than indices.
  EXPECT_LE(calls.load(), 20);
}

TEST(ThreadPool, RangesRunInlineWithoutWorkers) {
  ThreadPool pool(0);
  std::atomic<int> calls{0};
  long sum = 0;
  pool.parallel_for_ranges(0, 1000, [&](std::size_t lo, std::size_t hi) {
    calls.fetch_add(1);
    for (std::size_t i = lo; i < hi; ++i) sum += static_cast<long>(i);
  });
  EXPECT_EQ(calls.load(), 1);  // one inline call over the whole range
  EXPECT_EQ(sum, 499500);
}

TEST(ThreadPool, RangeExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_ranges(
                   0, 1000,
                   [](std::size_t lo, std::size_t) {
                     if (lo >= 500) throw std::runtime_error("boom");
                   },
                   /*grain=*/100),
               std::runtime_error);
}

TEST(ThreadPool, ConcurrentRanksNestChunkedLoops) {
  // The SDS-Sort usage pattern under TSan: several concurrent submitters
  // (in the simulator, scheduler workers running rank fibers) share one
  // pool, and each submitter's parallel_for body issues further chunked
  // loops (sort_chunk -> merge). All claims must stay disjoint and all
  // writes must be ordered by the batch completion protocol.
  ThreadPool pool(3);
  constexpr std::size_t kRanks = 4;
  constexpr std::size_t kN = 2048;
  std::vector<std::vector<std::uint32_t>> out(kRanks,
                                              std::vector<std::uint32_t>(kN));
  std::vector<std::thread> ranks;
  for (std::size_t r = 0; r < kRanks; ++r) {
    ranks.emplace_back([&pool, &out, r] {
      pool.parallel_for(
          0, 8,
          [&](std::size_t part) {
            const std::size_t lo = part * kN / 8, hi = (part + 1) * kN / 8;
            pool.parallel_for_ranges(
                lo, hi,
                [&](std::size_t a, std::size_t b) {
                  for (std::size_t i = a; i < b; ++i) {
                    out[r][i] = static_cast<std::uint32_t>(i ^ r);
                  }
                },
                /*grain=*/64);
          },
          /*grain=*/1);
    });
  }
  for (auto& t : ranks) t.join();
  for (std::size_t r = 0; r < kRanks; ++r) {
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(out[r][i], static_cast<std::uint32_t>(i ^ r));
    }
  }
}

}  // namespace
}  // namespace sdss::par
