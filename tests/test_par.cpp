// Unit tests for the thread-pool substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "par/thread_pool.hpp"

namespace sdss::par {
namespace {

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  std::vector<int> hits(100, 0);
  pool.parallel_for(0, 100, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, OffsetRange) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 50,
                                 [&](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error("unlucky");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelInvokeRunsAllThunks) {
  ThreadPool pool(2);
  std::atomic<int> mask{0};
  std::vector<std::function<void()>> thunks;
  for (int i = 0; i < 5; ++i) {
    thunks.emplace_back([&mask, i] { mask.fetch_or(1 << i); });
  }
  pool.parallel_invoke(thunks);
  EXPECT_EQ(mask.load(), 0b11111);
}

TEST(ThreadPool, ConcurrentCallersDoNotInterfere) {
  ThreadPool pool(2);
  std::vector<std::thread> callers;
  std::vector<std::atomic<long>> sums(4);
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&pool, &sums, t] {
      pool.parallel_for(0, 200, [&sums, t](std::size_t i) {
        sums[static_cast<std::size_t>(t)].fetch_add(static_cast<long>(i));
      });
    });
  }
  for (auto& c : callers) c.join();
  for (auto& s : sums) EXPECT_EQ(s.load(), 19900);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> n{0};
  parallel_for(0, 64, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 64);
}

TEST(ThreadPool, NestedParallelForFromWorkerCompletes) {
  // parallel_for issued from inside a parallel task must not deadlock
  // (caller always participates).
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { n.fetch_add(1); });
  });
  EXPECT_EQ(n.load(), 32);
}

}  // namespace
}  // namespace sdss::par
