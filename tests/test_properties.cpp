// Cross-cutting property sweeps: for every distributed sorting algorithm in
// the repository, across rank counts, skew levels and adversarial input
// patterns, assert the universal invariants — global sortedness, exact
// multiset preservation — plus algorithm-specific guarantees (the O(4N/p)
// load bound for SDS-Sort, agreement between adaptive paths, idempotence on
// sorted input).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/bitonic.hpp"
#include "baselines/hyksort.hpp"
#include "baselines/radixsort.hpp"
#include "baselines/samplesort.hpp"
#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace sdss {
namespace {

using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;

enum class Pattern {
  kUniform,
  kZipf,
  kAllEqual,
  kSorted,
  kReverse,
  kSawtooth,
  kOrganPipe,
  kTwoValues,
};

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kUniform:
      return "uniform";
    case Pattern::kZipf:
      return "zipf";
    case Pattern::kAllEqual:
      return "all-equal";
    case Pattern::kSorted:
      return "sorted";
    case Pattern::kReverse:
      return "reverse";
    case Pattern::kSawtooth:
      return "sawtooth";
    case Pattern::kOrganPipe:
      return "organ-pipe";
    case Pattern::kTwoValues:
      return "two-values";
  }
  return "?";
}

std::vector<std::uint64_t> make_pattern(Pattern p, std::size_t n, int rank) {
  const std::uint64_t seed = derive_seed(606, static_cast<std::uint64_t>(rank));
  std::vector<std::uint64_t> v;
  switch (p) {
    case Pattern::kUniform:
      return workloads::uniform_u64(n, seed, 1ull << 40);
    case Pattern::kZipf:
      return workloads::zipf_keys(n, 1.4, seed);
    case Pattern::kAllEqual:
      return std::vector<std::uint64_t>(n, 42);
    case Pattern::kSorted:
      v = workloads::uniform_u64(n, seed, 1ull << 40);
      std::sort(v.begin(), v.end());
      return v;
    case Pattern::kReverse:
      v = workloads::uniform_u64(n, seed, 1ull << 40);
      std::sort(v.begin(), v.end(), std::greater<>());
      return v;
    case Pattern::kSawtooth:
      v.resize(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = i % 17;
      return v;
    case Pattern::kOrganPipe:
      v.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = i < n / 2 ? i : n - i;
      }
      return v;
    case Pattern::kTwoValues:
      SplitMix64 rng(seed);
      v.resize(n);
      for (auto& x : v) x = rng.next_below(2) == 0 ? 7 : 1000000;
      return v;
  }
  return v;
}

enum class SortAlgo { kSds, kSdsStable, kHyk, kSample, kRadix, kBitonic };

std::vector<std::uint64_t> run_algo(SortAlgo a, Comm& world,
                                    std::vector<std::uint64_t> data) {
  switch (a) {
    case SortAlgo::kSds: {
      return sds_sort<std::uint64_t>(world, std::move(data));
    }
    case SortAlgo::kSdsStable: {
      Config cfg;
      cfg.stable = true;
      return sds_sort<std::uint64_t>(world, std::move(data), cfg);
    }
    case SortAlgo::kHyk:
      return baselines::hyksort<std::uint64_t>(world, std::move(data));
    case SortAlgo::kSample:
      return baselines::sample_sort<std::uint64_t>(world, std::move(data));
    case SortAlgo::kRadix:
      return baselines::radix_sort_distributed<std::uint64_t>(world,
                                                              std::move(data));
    case SortAlgo::kBitonic:
      return baselines::bitonic_sort<std::uint64_t>(world, std::move(data));
  }
  return {};
}

struct PropertyCase {
  SortAlgo algo;
  Pattern pattern;
  int ranks;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  const char* algo = "";
  switch (info.param.algo) {
    case SortAlgo::kSds:
      algo = "Sds";
      break;
    case SortAlgo::kSdsStable:
      algo = "SdsStable";
      break;
    case SortAlgo::kHyk:
      algo = "Hyk";
      break;
    case SortAlgo::kSample:
      algo = "Sample";
      break;
    case SortAlgo::kRadix:
      algo = "Radix";
      break;
    case SortAlgo::kBitonic:
      algo = "Bitonic";
      break;
  }
  std::string pat = pattern_name(info.param.pattern);
  for (auto& ch : pat) {
    if (ch == '-') ch = '_';
  }
  return std::string(algo) + "_" + pat + "_p" +
         std::to_string(info.param.ranks);
}

class DistributedSortProperty
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(DistributedSortProperty, SortsAndPreservesMultiset) {
  const auto& pc = GetParam();
  Cluster(ClusterConfig{pc.ranks}).run([&](Comm& world) {
    auto shard = make_pattern(pc.pattern, 1500, world.rank());
    const auto before = global_checksum<std::uint64_t>(world, shard);
    auto out = run_algo(pc.algo, world, std::move(shard));
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)))
        << pattern_name(pc.pattern);
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(world, out)));
  });
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  const Pattern all_patterns[] = {
      Pattern::kUniform,  Pattern::kZipf,     Pattern::kAllEqual,
      Pattern::kSorted,   Pattern::kReverse,  Pattern::kSawtooth,
      Pattern::kOrganPipe, Pattern::kTwoValues};
  // Every algorithm on every pattern at p=8 (bitonic needs a power of two,
  // which 8 is).
  for (SortAlgo a : {SortAlgo::kSds, SortAlgo::kSdsStable, SortAlgo::kHyk,
                     SortAlgo::kSample, SortAlgo::kRadix, SortAlgo::kBitonic}) {
    for (Pattern p : all_patterns) {
      cases.push_back({a, p, 8});
    }
  }
  // SDS variants additionally on awkward rank counts.
  for (SortAlgo a : {SortAlgo::kSds, SortAlgo::kSdsStable}) {
    for (int ranks : {2, 3, 5, 12}) {
      cases.push_back({a, Pattern::kZipf, ranks});
      cases.push_back({a, Pattern::kAllEqual, ranks});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, DistributedSortProperty,
                         ::testing::ValuesIn(make_cases()), case_name);

// --- the O(4N/p) theorem across the alpha sweep -------------------------------

class LoadBoundSweep
    : public ::testing::TestWithParam<std::tuple<double, int, bool>> {};

TEST_P(LoadBoundSweep, MaxLoadWithinFourNOverP) {
  const auto [alpha, ranks, stable] = GetParam();
  Cluster(ClusterConfig{ranks}).run([&](Comm& world) {
    auto shard = workloads::zipf_keys(
        3000, alpha, derive_seed(607, static_cast<std::uint64_t>(world.rank())));
    Config cfg;
    cfg.stable = stable;
    auto out = sds_sort<std::uint64_t>(world, std::move(shard), cfg);
    auto lb = measure_load_balance(world, out.size());
    const double bound =
        4.0 * static_cast<double>(lb.total) / static_cast<double>(ranks) + 32;
    EXPECT_LE(static_cast<double>(lb.max_load), bound)
        << "alpha=" << alpha << " p=" << ranks << " stable=" << stable;
  });
}

INSTANTIATE_TEST_SUITE_P(
    AlphaByRanks, LoadBoundSweep,
    ::testing::Combine(::testing::Values(0.4, 0.7, 1.0, 1.4, 2.1),
                       ::testing::Values(4, 8, 16),
                       ::testing::Bool()));

// --- adaptive paths agree -------------------------------------------------------

TEST(PathAgreement, OverlappedAndBlockingProduceSameMultisetAndOrder) {
  // The fast version is not stable, so per-rank contents can differ in the
  // order of equal keys — but the sorted key sequence per rank must agree
  // exactly between the overlapped and blocking exchange paths.
  Cluster(ClusterConfig{6}).run([](Comm& world) {
    auto mk = [&] {
      return workloads::zipf_keys(
          2500, 1.0, derive_seed(608, static_cast<std::uint64_t>(world.rank())));
    };
    Config blocking;
    blocking.tau_o = 0;
    Config overlapped;
    overlapped.tau_o = 1u << 20;
    auto a = sds_sort<std::uint64_t>(world, mk(), blocking);
    auto b = sds_sort<std::uint64_t>(world, mk(), overlapped);
    EXPECT_EQ(a, b);  // keys only: identical partition => identical shards
  });
}

TEST(PathAgreement, MergeAllAndResortProduceSameShards) {
  Cluster(ClusterConfig{5}).run([](Comm& world) {
    auto mk = [&] {
      return workloads::uniform_u64(
          3000, derive_seed(609, static_cast<std::uint64_t>(world.rank())),
          1u << 20);
    };
    Config merge_path;
    merge_path.tau_o = 0;
    merge_path.tau_s = 1u << 20;
    Config sort_path;
    sort_path.tau_o = 0;
    sort_path.tau_s = 0;
    auto a = sds_sort<std::uint64_t>(world, mk(), merge_path);
    auto b = sds_sort<std::uint64_t>(world, mk(), sort_path);
    EXPECT_EQ(a, b);
  });
}

TEST(PathAgreement, PivotMethodsProduceSameShards) {
  Cluster(ClusterConfig{8}).run([](Comm& world) {
    auto mk = [&] {
      return workloads::zipf_keys(
          2000, 0.8, derive_seed(610, static_cast<std::uint64_t>(world.rank())));
    };
    Config bitonic;
    bitonic.pivot_selection = PivotSelection::kBitonic;
    Config gather;
    gather.pivot_selection = PivotSelection::kGather;
    auto a = sds_sort<std::uint64_t>(world, mk(), bitonic);
    auto b = sds_sort<std::uint64_t>(world, mk(), gather);
    EXPECT_EQ(a, b);
  });
}

TEST(PathAgreement, SortingTwiceIsIdempotentGlobally) {
  // Re-sorting already-sorted data may cut the duplicate runs at different
  // shard boundaries, but the gathered global sequence must be unchanged.
  Cluster(ClusterConfig{6}).run([](Comm& world) {
    auto shard = workloads::zipf_keys(
        2000, 1.4, derive_seed(611, static_cast<std::uint64_t>(world.rank())));
    auto once = sds_sort<std::uint64_t>(world, std::move(shard));
    auto copy = once;
    auto twice = sds_sort<std::uint64_t>(world, std::move(copy));
    EXPECT_EQ(gather_all<std::uint64_t>(world, once),
              (gather_all<std::uint64_t>(world, twice)));
  });
}

TEST(PathAgreement, StableAndFastAgreeOnBareKeys) {
  // On bare keys (no payload) stability is unobservable: both variants
  // must produce identical shards.
  Cluster(ClusterConfig{7}).run([](Comm& world) {
    auto mk = [&] {
      return workloads::zipf_keys(
          2200, 1.8, derive_seed(612, static_cast<std::uint64_t>(world.rank())));
    };
    Config fast;
    fast.tau_o = 0;  // same exchange path for a like-for-like comparison
    Config stable;
    stable.stable = true;
    auto a = sds_sort<std::uint64_t>(world, mk(), fast);
    auto b = sds_sort<std::uint64_t>(world, mk(), stable);
    // Shard *sizes* may differ (different duplicate splits) but the global
    // sequence must be identical: compare via gather.
    auto ga = gather_all<std::uint64_t>(world, a);
    auto gb = gather_all<std::uint64_t>(world, b);
    EXPECT_EQ(ga, gb);
  });
}

// --- seed sweep: many random instances ------------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, RandomInstanceSortsCorrectly) {
  const std::uint64_t seed = GetParam();
  Cluster(ClusterConfig{4 + static_cast<int>(seed % 5)}).run([&](Comm& world) {
    SplitMix64 rng(derive_seed(seed, static_cast<std::uint64_t>(world.rank())));
    // Random size, random universe, random stability.
    const std::size_t n = rng.next_below(4000);
    const std::uint64_t universe = 1 + rng.next_below(1u << 16);
    std::vector<std::uint64_t> shard(n);
    for (auto& x : shard) x = rng.next_below(universe);
    Config cfg;
    cfg.stable = seed % 2 == 0;
    const auto before = global_checksum<std::uint64_t>(world, shard);
    auto out = sds_sort<std::uint64_t>(world, std::move(shard), cfg);
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(world, out)));
  });
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace sdss
