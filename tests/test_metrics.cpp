// The metrics observability layer: registry registration discipline,
// single-writer emission and aggregation, histogram percentile math,
// deterministic series decimation, JSON round-trips (including the empty
// registry and non-finite numbers), the report's `metrics` object with its
// schema-stability and diff rules, flight-recorder bundles on forced
// failures, and worker-count determinism of the progress series on real
// cluster runs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "sdss.hpp"
#include "sim/cluster.hpp"
#include "sim/comm.hpp"
#include "telemetry/diff.hpp"
#include "telemetry/json.hpp"
#include "telemetry/report.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/zipf.hpp"

namespace sdss::obs {
namespace {

// --- registration ---------------------------------------------------------

TEST(MetricsRegistration, IdempotentByNameAndCheckedOnMismatch) {
  const MetricId a =
      register_metric("test.reg.c", MetricKind::kCounter, MetricUnit::kCount);
  const MetricId b =
      register_metric("test.reg.c", MetricKind::kCounter, MetricUnit::kCount);
  EXPECT_EQ(a, b);
  // Same name, different kind or unit: a programming error, must throw.
  EXPECT_THROW(
      register_metric("test.reg.c", MetricKind::kGauge, MetricUnit::kCount),
      Error);
  EXPECT_THROW(
      register_metric("test.reg.c", MetricKind::kCounter, MetricUnit::kBytes),
      Error);
}

// --- emission + aggregation ----------------------------------------------

const ScalarSnapshot* find_scalar(const std::vector<ScalarSnapshot>& v,
                                  const std::string& name) {
  for (const ScalarSnapshot& s : v) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(MetricsEmission, CountersSumAndGaugesMaxAcrossRanks) {
  static const MetricId c =
      register_metric("test.agg.c", MetricKind::kCounter, MetricUnit::kCount);
  static const MetricId g = register_metric("test.agg.g", MetricKind::kGauge,
                                            MetricUnit::kRecords);
  // Registered but never written: must be dropped from the snapshot.
  static const MetricId unused = register_metric(
      "test.agg.unused", MetricKind::kCounter, MetricUnit::kCount);
  (void)unused;

  MetricsRegistry reg;
  reg.reset(3);
  EXPECT_FALSE(active());
  for (std::size_t r = 0; r < 3; ++r) {
    bind_thread(&reg, r);
    ASSERT_TRUE(active());
    counter_add(c, 10 * (r + 1));
    gauge_set(g, 5 * (r + 1));
    unbind_thread();
  }
  EXPECT_FALSE(active());

  EXPECT_EQ(reg.live_scalar(c), 60u);  // 10+20+30
  EXPECT_EQ(reg.live_scalar(g), 15u);  // max(5,10,15)

  const MetricsSnapshot snap = reg.snapshot();
  const ScalarSnapshot* cs = find_scalar(snap.counters, "test.agg.c");
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->value, 60u);
  const ScalarSnapshot* gs = find_scalar(snap.gauges, "test.agg.g");
  ASSERT_NE(gs, nullptr);
  EXPECT_EQ(gs->value, 15u);
  EXPECT_EQ(find_scalar(snap.counters, "test.agg.unused"), nullptr);
}

TEST(MetricsEmission, GaugeMaxIsHighWater) {
  static const MetricId g = register_metric("test.hwm.g", MetricKind::kGauge,
                                            MetricUnit::kBytes);
  MetricsRegistry reg;
  reg.reset(1);
  bind_thread(&reg, 0);
  gauge_max(g, 100);
  gauge_max(g, 40);  // lower: must not regress the high-water
  unbind_thread();
  EXPECT_EQ(reg.live_scalar(g), 100u);
}

TEST(MetricsEmission, InstrumentationGateIsOffWhenUnbound) {
  // The emit helpers require a bound thread; every instrumentation site
  // gates with `if (obs::active())`. Off the gate, nothing records.
  static const MetricId c = register_metric(
      "test.unbound.c", MetricKind::kCounter, MetricUnit::kCount);
  ASSERT_FALSE(active());
  if (active()) counter_add(c, 7);  // the site idiom: gate skips the emit
  MetricsRegistry reg;
  reg.reset(1);
  EXPECT_EQ(reg.live_scalar(c), 0u);
}

// --- histograms -----------------------------------------------------------

TEST(MetricsHistogram, PercentileReturnsBucketUpperBounds) {
  static const MetricId h = register_metric(
      "test.hist.h", MetricKind::kHistogram, MetricUnit::kBytes);
  MetricsRegistry reg;
  reg.reset(1);
  bind_thread(&reg, 0);
  for (int i = 0; i < 100; ++i) hist_record(h, 1);  // bucket 1, bound 1
  hist_record(h, 1000);  // bit_width 10 -> bucket 10, bound 1023
  unbind_thread();

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0];
  EXPECT_EQ(hs.name, "test.hist.h");
  EXPECT_EQ(hs.count, 101u);
  EXPECT_EQ(hs.sum, 100u + 1000u);
  EXPECT_EQ(hs.percentile(0.50), 1u);
  EXPECT_EQ(hs.percentile(0.99), 1u);  // 100 of 101 values are <= 1
  EXPECT_EQ(hs.percentile(1.0), 1023u);
  EXPECT_EQ(hs.max_bound(), 1023u);
}

TEST(MetricsHistogram, ZeroValueLandsInBucketZero) {
  static const MetricId h = register_metric(
      "test.hist.zero", MetricKind::kHistogram, MetricUnit::kNanos);
  MetricsRegistry reg;
  reg.reset(1);
  bind_thread(&reg, 0);
  hist_record(h, 0);
  unbind_thread();
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].buckets[0], 1u);
  EXPECT_EQ(snap.histograms[0].percentile(0.5), 0u);
}

// --- deterministic series -------------------------------------------------

std::vector<std::uint64_t> marked_series(std::size_t n) {
  static const MetricId s = register_metric(
      "test.series.s", MetricKind::kGauge, MetricUnit::kRecords);
  MetricsRegistry reg;
  reg.reset(1);
  bind_thread(&reg, 0);
  for (std::size_t i = 0; i < n; ++i) series_mark(s, i);
  unbind_thread();
  const MetricsSnapshot snap = reg.snapshot();
  for (const SeriesSnapshot& row : snap.series) {
    if (row.name == "test.series.s") return row.per_rank.at(0);
  }
  return {};
}

TEST(MetricsSeries, DecimationBoundsTheSeriesAndStaysDeterministic) {
  const auto kept = marked_series(5000);
  EXPECT_LE(kept.size(), RankMetrics::kMaxSeriesPoints);
  EXPECT_GE(kept.size(), RankMetrics::kMaxSeriesPoints / 4);
  // Kept points preserve program order.
  for (std::size_t i = 1; i < kept.size(); ++i) {
    EXPECT_LT(kept[i - 1], kept[i]);
  }
  // Pure function of the append sequence: a second identical run keeps the
  // identical point set.
  EXPECT_EQ(kept, marked_series(5000));
  // Short series are kept verbatim.
  const auto small = marked_series(10);
  ASSERT_EQ(small.size(), 10u);
  EXPECT_EQ(small.front(), 0u);
  EXPECT_EQ(small.back(), 9u);
}

// --- snapshot JSON round-trip --------------------------------------------

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot s;
  s.counters.push_back({"a.count", MetricUnit::kCount, 42});
  s.gauges.push_back({"b.gauge", MetricUnit::kBytes, 1u << 20});
  HistogramSnapshot h;
  h.name = "c.hist";
  h.unit = MetricUnit::kNanos;
  h.count = 3;
  h.sum = 1034;
  h.buckets[1] = 2;
  h.buckets[10] = 1;
  s.histograms.push_back(h);
  SeriesSnapshot ser;
  ser.name = "d.series";
  ser.unit = MetricUnit::kRecords;
  ser.per_rank = {{1, 2, 3}, {}, {7}};
  s.series.push_back(ser);
  return s;
}

TEST(MetricsJson, SnapshotRoundTripsThroughText) {
  const MetricsSnapshot s = sample_snapshot();
  const telemetry::Json j =
      telemetry::Json::parse(to_json(s).dump(2));  // through actual text
  const MetricsSnapshot back = metrics_snapshot_from_json(j);
  ASSERT_EQ(back.counters.size(), 1u);
  EXPECT_EQ(back.counters[0].name, "a.count");
  EXPECT_EQ(back.counters[0].value, 42u);
  ASSERT_EQ(back.gauges.size(), 1u);
  EXPECT_EQ(back.gauges[0].unit, MetricUnit::kBytes);
  EXPECT_EQ(back.gauges[0].value, 1u << 20);
  ASSERT_EQ(back.histograms.size(), 1u);
  EXPECT_EQ(back.histograms[0].count, 3u);
  EXPECT_EQ(back.histograms[0].sum, 1034u);
  EXPECT_EQ(back.histograms[0].buckets, s.histograms[0].buckets);
  ASSERT_EQ(back.series.size(), 1u);
  EXPECT_EQ(back.series[0].per_rank, s.series[0].per_rank);
  // Serialization is deterministic: same snapshot, same bytes.
  EXPECT_EQ(to_json(s).dump(), to_json(back).dump());
}

TEST(MetricsJson, EmptySnapshotRoundTrips) {
  const MetricsSnapshot empty;
  const MetricsSnapshot back = metrics_snapshot_from_json(
      telemetry::Json::parse(to_json(empty).dump()));
  EXPECT_TRUE(back.empty());
}

// --- non-finite numbers (satellite: telemetry/json) -----------------------

TEST(MetricsJson, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(telemetry::Json(std::nan("")).dump(), "null");
  EXPECT_EQ(
      telemetry::Json(std::numeric_limits<double>::infinity()).dump(),
      "null");
  EXPECT_EQ(
      telemetry::Json(-std::numeric_limits<double>::infinity()).dump(),
      "null");
  const telemetry::Json j = telemetry::Json::parse("null");
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.number_or(42.0), 42.0);  // parse-back yields the default
}

TEST(MetricsJson, FiniteDoublesRoundTripAtFullPrecision) {
  for (double v : {0.1, 1.0 / 3.0, 1e-308, 1.7976931348623157e308,
                   123456789.123456789, -0.0}) {
    const telemetry::Json back = telemetry::Json::parse(
        telemetry::Json(v).dump());
    EXPECT_EQ(back.number_or(), v);
  }
}

// --- report schema + diff rules ------------------------------------------

telemetry::RunReport basic_report(const std::string& name) {
  telemetry::RunReport r;
  r.name = name;
  r.ok = true;
  r.ranks = 2;
  return r;
}

TEST(MetricsReport, RoundTripsInsideRunReport) {
  telemetry::RunReport r = basic_report("with-metrics");
  telemetry::set_metrics(r, sample_snapshot());
  const telemetry::Json j =
      telemetry::Json::parse(telemetry::to_json(r).dump(2));
  const telemetry::RunReport back = telemetry::report_from_json(j);
  ASSERT_TRUE(back.has_metrics);
  ASSERT_EQ(back.metrics.counters.size(), 1u);
  EXPECT_EQ(back.metrics.counters[0].value, 42u);
  EXPECT_EQ(back.metrics.series[0].per_rank,
            r.metrics.series[0].per_rank);
}

TEST(MetricsReport, OldReportsWithoutMetricsKeyStillParse) {
  // Schema stability: a pre-metrics report file has no "metrics" key; it
  // must parse with has_metrics=false and diff cleanly against a new one.
  const telemetry::RunReport r = basic_report("old");
  const telemetry::Json j = telemetry::to_json(r);
  EXPECT_EQ(j.find("metrics"), nullptr);
  const telemetry::RunReport back = telemetry::report_from_json(j);
  EXPECT_FALSE(back.has_metrics);
}

telemetry::DiffResult diff_two(const telemetry::RunReport& before,
                               const telemetry::RunReport& after,
                               telemetry::DiffOptions opts = [] {
                                 telemetry::DiffOptions o;
                                 o.bytes_only = true;
                                 return o;
                               }()) {
  telemetry::ReportRegistry b;
  telemetry::ReportRegistry a;
  b.add(before);
  a.add(after);
  return diff_registries(b, a, opts);
}

bool has_delta(const telemetry::DiffResult& d, const std::string& metric,
               bool regressed) {
  for (const telemetry::PhaseDelta& pd : d.deltas) {
    if (pd.metric == metric && pd.regressed == regressed) return true;
  }
  return false;
}

TEST(MetricsDiff, OneSidedMetricsObjectIsNotCompared) {
  telemetry::RunReport with = basic_report("run");
  telemetry::set_metrics(with, sample_snapshot());
  const telemetry::RunReport without = basic_report("run");
  const telemetry::DiffResult fwd = diff_two(without, with);
  const telemetry::DiffResult rev = diff_two(with, without);
  for (const telemetry::DiffResult* d : {&fwd, &rev}) {
    EXPECT_FALSE(d->any_regression);
    for (const telemetry::PhaseDelta& pd : d->deltas) {
      EXPECT_EQ(pd.metric.rfind("metrics.", 0), std::string::npos) << pd.metric;
    }
  }
}

TEST(MetricsDiff, DeterministicCountersGateExactly) {
  telemetry::RunReport before = basic_report("run");
  telemetry::set_metrics(before, sample_snapshot());
  telemetry::RunReport after = before;
  after.metrics.counters[0].value = 43;  // +1 on an exact gate
  const telemetry::DiffResult d = diff_two(before, after);
  EXPECT_TRUE(d.any_regression);
  EXPECT_TRUE(has_delta(d, "metrics.a.count", true));
  // Shrinking is reported but is not a regression.
  after.metrics.counters[0].value = 41;
  const telemetry::DiffResult d2 = diff_two(before, after);
  EXPECT_TRUE(has_delta(d2, "metrics.a.count", false));
  EXPECT_FALSE(has_delta(d2, "metrics.a.count", true));
  // Identical snapshots: clean.
  EXPECT_FALSE(diff_two(before, before).any_regression);
}

TEST(MetricsDiff, MissingCounterComparesAsZero) {
  telemetry::RunReport before = basic_report("run");
  telemetry::set_metrics(before, sample_snapshot());
  telemetry::RunReport after = before;
  after.metrics.counters.push_back({"new.count", MetricUnit::kCount, 5});
  const telemetry::DiffResult d = diff_two(before, after);
  EXPECT_TRUE(has_delta(d, "metrics.new.count", true));  // 0 -> 5 grows
}

TEST(MetricsDiff, NanosMetricsAreNeverCompared) {
  // c.hist in the sample snapshot is kNanos: change it wildly on one side
  // and the diff must not notice.
  telemetry::RunReport before = basic_report("run");
  telemetry::set_metrics(before, sample_snapshot());
  telemetry::RunReport after = before;
  after.metrics.histograms[0].count = 999999;
  after.metrics.histograms[0].sum = 999999;
  const telemetry::DiffResult d = diff_two(before, after);
  EXPECT_FALSE(d.any_regression);
  for (const telemetry::PhaseDelta& pd : d.deltas) {
    EXPECT_EQ(pd.metric.find("c.hist"), std::string::npos) << pd.metric;
  }
}

TEST(MetricsDiff, SeriesCompareOnSampleCountAndSum) {
  telemetry::RunReport before = basic_report("run");
  telemetry::set_metrics(before, sample_snapshot());
  telemetry::RunReport after = before;
  after.metrics.series[0].per_rank[0].push_back(100);  // extra sample
  const telemetry::DiffResult d = diff_two(before, after);
  EXPECT_TRUE(d.any_regression);
  EXPECT_TRUE(has_delta(d, "metrics.series.d.series.samples", true));
}

TEST(MetricsDiff, NonFiniteTimingsFollowBothSidesRule) {
  const double nan = std::nan("");
  telemetry::DiffOptions timing;  // default: timing comparison, CPU
  timing.use_cpu = false;         // compare wall_seconds directly
  // Both sides non-finite: equal, not a regression.
  telemetry::RunReport b1 = basic_report("run");
  telemetry::RunReport a1 = basic_report("run");
  b1.wall_seconds = nan;
  a1.wall_seconds = nan;
  EXPECT_FALSE(diff_two(b1, a1, timing).any_regression);
  // Finite before, non-finite after: always a regression.
  telemetry::RunReport b2 = basic_report("run");
  telemetry::RunReport a2 = basic_report("run");
  b2.wall_seconds = 1.0;
  a2.wall_seconds = nan;
  const telemetry::DiffResult d = diff_two(b2, a2, timing);
  EXPECT_TRUE(has_delta(d, "wall", true));
  // One side flipping non-finite in EITHER direction is a divergence the
  // ratio test cannot price: it always flags.
  EXPECT_TRUE(has_delta(diff_two(a2, b2, timing), "wall", true));
}

TEST(MetricsDiff, JsonRenderingIsValidNdjson) {
  telemetry::RunReport before = basic_report("run");
  telemetry::set_metrics(before, sample_snapshot());
  telemetry::RunReport after = before;
  after.metrics.counters[0].value = 43;
  const telemetry::DiffResult d = diff_two(before, after);
  telemetry::DiffOptions opts;
  opts.bytes_only = true;
  std::ostringstream os;
  telemetry::print_diff_json(os, d, opts);
  std::istringstream is(os.str());
  std::string line;
  int deltas = 0;
  int summaries = 0;
  while (std::getline(is, line)) {
    const telemetry::Json j = telemetry::Json::parse(line);  // throws if bad
    const std::string type = j.at("type").string_or("");
    if (type == "delta") ++deltas;
    if (type == "summary") {
      ++summaries;
      EXPECT_EQ(j.at("regressions").u64_or(), d.regressions().size());
    }
  }
  EXPECT_GT(deltas, 0);
  EXPECT_EQ(summaries, 1);
}

// --- flight recorder ------------------------------------------------------

TEST(FlightRecorder, BundleRoundTripsThroughFile) {
  FlightRecord fr;
  fr.failure_class = "oom";
  fr.failure_detail = "rank 1 exceeded mem_limit_records";
  fr.error = "SimOomError: ...";
  fr.failed_rank = 1;
  fr.blocked.push_back({0, "recv", 1, 7, 0, false, false});
  fr.blocked.push_back({1, "finished", -1, -1, 0, false, true});
  fr.trace_tails.resize(2);
  fr.trace_tails[0].push_back(
      {100, 50, 3, 0, "recv", 1, "span", "p2p"});
  fr.metrics = sample_snapshot();
  fr.sampled_gauges = {"sort.resident_records"};
  fr.live_samples.push_back({0, 1000, {42}});
  fr.chaos_events.push_back({"spill-fail", 2, 9, 0.0});

  const std::string path = "test_metrics_bundle.json";
  write_flight_record(path, fr);
  const FlightRecord back = load_flight_record(path);
  std::remove(path.c_str());

  EXPECT_EQ(back.schema_version, kFlightRecordSchemaVersion);
  EXPECT_EQ(back.failure_class, "oom");
  EXPECT_EQ(back.failed_rank, 1);
  ASSERT_EQ(back.blocked.size(), 2u);
  EXPECT_EQ(back.blocked[0].op, "recv");
  EXPECT_EQ(back.blocked[0].src, 1);
  EXPECT_TRUE(back.blocked[1].finished);
  ASSERT_EQ(back.trace_tails.size(), 2u);
  ASSERT_EQ(back.trace_tails[0].size(), 1u);
  EXPECT_EQ(back.trace_tails[0][0].kind, "span");
  EXPECT_EQ(back.trace_tails[0][0].peer, 1);
  ASSERT_EQ(back.metrics.counters.size(), 1u);
  EXPECT_EQ(back.metrics.counters[0].value, 42u);
  ASSERT_EQ(back.sampled_gauges.size(), 1u);
  ASSERT_EQ(back.live_samples.size(), 1u);
  EXPECT_EQ(back.live_samples[0].values, std::vector<std::uint64_t>{42});
  ASSERT_EQ(back.chaos_events.size(), 1u);
  EXPECT_EQ(back.chaos_events[0].kind, "spill-fail");
}

TEST(FlightRecorder, LoadRejectsUnknownSchemaVersion) {
  const std::string path = "test_metrics_bad_schema.json";
  {
    std::ofstream out(path);
    out << "{\"schema_version\": 999}";
  }
  EXPECT_THROW(load_flight_record(path), Error);
  std::remove(path.c_str());
}

// --- cluster integration --------------------------------------------------

void small_sort_body(sim::Comm& w) {
  auto data = workloads::zipf_keys(
      3000, 1.1, derive_seed(99, static_cast<std::uint64_t>(w.rank())));
  Config cfg;
  cfg.stable = true;
  sds_sort<std::uint64_t>(w, std::move(data), cfg);
}

sim::ClusterConfig small_cluster(int workers) {
  sim::ClusterConfig cc;
  cc.num_ranks = 4;
  cc.network = sim::NetworkModel::none();
  cc.sched_workers = workers;
  return cc;
}

TEST(MetricsCluster, RunCarriesSnapshotWithExpectedCounters) {
  const sim::RunResult res =
      sim::Cluster(small_cluster(2)).run_collect(small_sort_body);
  ASSERT_TRUE(res.ok);
  ASSERT_TRUE(res.has_metrics);
  const ScalarSnapshot* in =
      find_scalar(res.metrics.counters, "sort.records_in");
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(in->value, 4u * 3000u);
  const ScalarSnapshot* out =
      find_scalar(res.metrics.counters, "sort.records_out");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->value, 4u * 3000u);  // sort conserves records
  EXPECT_NE(find_scalar(res.metrics.counters, "p2p.sent_messages"), nullptr);
  // The progress series recorded marks for every rank.
  bool found_series = false;
  for (const SeriesSnapshot& s : res.metrics.series) {
    if (s.name == "sort.resident_records") {
      found_series = true;
      ASSERT_EQ(s.per_rank.size(), 4u);
      for (const auto& row : s.per_rank) EXPECT_FALSE(row.empty());
    }
  }
  EXPECT_TRUE(found_series);
}

TEST(MetricsCluster, DisabledMetricsLeaveNoSnapshot) {
  sim::ClusterConfig cc = small_cluster(2);
  cc.enable_metrics = false;
  const sim::RunResult res = sim::Cluster(cc).run_collect(small_sort_body);
  ASSERT_TRUE(res.ok);
  EXPECT_FALSE(res.has_metrics);
  EXPECT_TRUE(res.metrics.empty());
}

TEST(MetricsCluster, SeriesIdenticalAcrossWorkerCounts) {
  // The determinism contract of obs/sampler.hpp: progress series are a pure
  // function of workload and seed, byte-identical across worker counts.
  auto series_of = [](int workers) {
    const sim::RunResult res =
        sim::Cluster(small_cluster(workers)).run_collect(small_sort_body);
    EXPECT_TRUE(res.ok);
    return to_json(res.metrics).at("series").dump();
  };
  const std::string w1 = series_of(1);
  EXPECT_EQ(w1, series_of(4));
  EXPECT_NE(w1, "[]");
}

TEST(MetricsCluster, ForcedDeadlockLeavesWellFormedBundle) {
  const std::string path = "test_metrics_deadlock_bundle.json";
  std::remove(path.c_str());
  sim::ClusterConfig cc = small_cluster(2);
  cc.num_ranks = 2;
  cc.watchdog_timeout_s = 0.2;
  cc.postmortem_path = path;
  const sim::RunResult res = sim::Cluster(cc).run_collect([](sim::Comm& w) {
    w.recv_value<std::uint64_t>((w.rank() + 1) % w.size(), /*tag=*/3);
  });
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failure, sim::FailureClass::kDeadlock);
  EXPECT_EQ(res.postmortem_path, path);

  const FlightRecord fr = load_flight_record(path);
  std::remove(path.c_str());
  EXPECT_EQ(fr.failure_class, "deadlock");
  ASSERT_EQ(fr.blocked.size(), 2u);
  for (const BlockedOpRecord& b : fr.blocked) {
    EXPECT_EQ(b.op, "recv");
    EXPECT_FALSE(b.finished);
  }
}

TEST(MetricsCluster, CleanRunLeavesNoBundle) {
  const std::string path = "test_metrics_clean_bundle.json";
  std::remove(path.c_str());
  sim::ClusterConfig cc = small_cluster(2);
  cc.postmortem_path = path;
  const sim::RunResult res = sim::Cluster(cc).run_collect(small_sort_body);
  ASSERT_TRUE(res.ok);
  EXPECT_TRUE(res.postmortem_path.empty());
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
}

}  // namespace
}  // namespace sdss::obs
