// Tests for the ε-bounded splitter engine (histogram_eps_splitters), the
// fractional-splitter partition, and the degenerate sampling shards.
//
// The exact-λ assertions are the point of this file: on all-duplicate and
// two-value inputs the legacy histogram selection provably collapses, while
// the ε-bounded engine's fractional-rank splitters place every boundary at
// an exact global position — so the post-exchange receive volume is not
// merely bounded, it is *equal* across ranks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/driver.hpp"
#include "core/histogram_pivots.hpp"
#include "core/metrics.hpp"
#include "core/sampling.hpp"
#include "core/validate.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace sdss {
namespace {

using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;

// λ of the post-exchange receive volume, computed exactly from the
// SortReport counters (the same quantity the trace gate diffs).
double lambda_recv(Comm& w, const SortReport& rep) {
  const auto loads = w.allgather<std::uint64_t>(rep.recv_records);
  std::uint64_t max = 0, total = 0;
  for (auto l : loads) {
    max = std::max(max, l);
    total += l;
  }
  if (total == 0) return 1.0;
  return static_cast<double>(max) * static_cast<double>(loads.size()) /
         static_cast<double>(total);
}

// --- the engine ------------------------------------------------------------

TEST(EpsSplitters, ExactRanksOnDenseUniqueKeys) {
  Cluster(ClusterConfig{8}).run([](Comm& w) {
    // Rank r holds [r*1000, (r+1)*1000): every global rank is occupied by
    // exactly one key, so every boundary must resolve with error 0.
    std::vector<std::uint64_t> data(1000);
    for (std::size_t i = 0; i < 1000; ++i) {
      data[i] = static_cast<std::uint64_t>(w.rank()) * 1000 + i;
    }
    RefineStats stats;
    auto splitters = histogram_eps_splitters<std::uint64_t>(
        w, data, w.size(), HistogramEpsConfig{}, {}, &stats);
    ASSERT_EQ(splitters.size(), 7u);
    EXPECT_FALSE(stats.hit_round_cap);
    EXPECT_GE(stats.rounds, 1);
    EXPECT_LE(stats.achieved_epsilon, stats.target_epsilon);
    EXPECT_TRUE(std::is_sorted(splitters.begin(), splitters.end()));
    for (std::size_t g = 0; g < splitters.size(); ++g) {
      // Unique keys: boundary g resolves within tolerance of key
      // (g+1)*1000 (the key whose global rank is the target).
      const double target = static_cast<double>((g + 1) * 1000);
      EXPECT_NEAR(static_cast<double>(splitters[g].key), target,
                  static_cast<double>(stats.tolerance_records) + 1.0)
          << "boundary " << g;
    }
  });
}

TEST(EpsSplitters, FractionalSplittersWhereLegacyCollapses) {
  // The exact input of the legacy CollapseOntoDuplicatedValue test: 60% of
  // all records share one key. The legacy refiner parks >= 2 splitters on
  // the hot value (asserted in test_comm_stats_histogram.cpp); the
  // ε-bounded engine instead cuts *inside* the hot run with fractional
  // splitters, each boundary exact.
  Cluster(ClusterConfig{8}).run([](Comm& w) {
    SplitMix64 rng(derive_seed(809, static_cast<std::uint64_t>(w.rank())));
    std::vector<std::uint64_t> data(2000);
    for (auto& x : data) {
      x = rng.next_below(10) < 6 ? 5000u : rng.next_below(10000);
    }
    std::sort(data.begin(), data.end());
    RefineStats stats;
    auto splitters = histogram_eps_splitters<std::uint64_t>(
        w, data, w.size(), HistogramEpsConfig{}, {}, &stats);
    std::size_t hot_fractional = 0;
    for (const auto& s : splitters) {
      if (s.fractional && s.key == 5000u) ++hot_fractional;
    }
    EXPECT_GE(hot_fractional, 2u)
        << "the hot key's run should absorb several fractional boundaries";
    EXPECT_EQ(stats.fractional_splitters, hot_fractional);
    EXPECT_FALSE(stats.hit_round_cap);
    EXPECT_LE(stats.achieved_epsilon, stats.target_epsilon);
  });
}

TEST(EpsSplitters, CandidateCountNonIncreasingAcrossRounds) {
  Cluster(ClusterConfig{8}).run([](Comm& w) {
    auto data = workloads::zipf_keys(
        4000, 1.5, derive_seed(812, static_cast<std::uint64_t>(w.rank())));
    std::sort(data.begin(), data.end());
    HistogramEpsConfig cfg;
    cfg.epsilon = 0.01;  // tight bound forces several refinement rounds
    RefineStats stats;
    histogram_eps_splitters<std::uint64_t>(w, data, w.size(), cfg, {},
                                           &stats);
    ASSERT_GE(stats.rounds, 2) << "tight ε should need refinement";
    ASSERT_EQ(stats.per_round.size(), static_cast<std::size_t>(stats.rounds));
    for (std::size_t r = 1; r < stats.per_round.size(); ++r) {
      EXPECT_LE(stats.per_round[r].candidates,
                stats.per_round[r - 1].candidates)
          << "round " << r << ": interval pruning must shrink the gather";
      EXPECT_GT(stats.per_round[r].comm_bytes, 0u);
    }
    EXPECT_FALSE(stats.hit_round_cap);
    EXPECT_LE(stats.achieved_epsilon, cfg.epsilon);
  });
}

TEST(EpsSplitters, RoundCapFallsBackToBestBracket) {
  Cluster(ClusterConfig{8}).run([](Comm& w) {
    auto data = workloads::zipf_keys(
        4000, 1.5, derive_seed(813, static_cast<std::uint64_t>(w.rank())));
    std::sort(data.begin(), data.end());
    HistogramEpsConfig cfg;
    cfg.epsilon = 0.0001;
    cfg.max_rounds = 1;  // guaranteed too few for this ε
    RefineStats stats;
    auto splitters = histogram_eps_splitters<std::uint64_t>(
        w, data, w.size(), cfg, {}, &stats);
    EXPECT_EQ(stats.rounds, 1);
    ASSERT_EQ(splitters.size(), 7u);
    EXPECT_TRUE(std::is_sorted(splitters.begin(), splitters.end()));
    // The fallback reports honestly: either everything resolved in one
    // round (possible for duplicate-heavy zipf: fractional cuts are exact)
    // or the cap was hit and achieved ε exceeds the target.
    if (stats.hit_round_cap) {
      EXPECT_GT(stats.achieved_epsilon, cfg.epsilon);
    } else {
      EXPECT_LE(stats.achieved_epsilon, cfg.epsilon);
    }
  });
}

TEST(EpsSplitters, Degenerates) {
  Cluster(ClusterConfig{4}).run([](Comm& w) {
    std::vector<std::uint64_t> empty;
    RefineStats stats;
    auto splitters = histogram_eps_splitters<std::uint64_t>(
        w, empty, w.size(), HistogramEpsConfig{}, {}, &stats);
    ASSERT_EQ(splitters.size(), 3u);
    for (const auto& s : splitters) {
      EXPECT_EQ(s.key, KeyLimits<std::uint64_t>::max());
      EXPECT_FALSE(s.fractional);
    }
    EXPECT_EQ(stats.total_records, 0u);
    // k = 1: no boundaries at all.
    EXPECT_TRUE((histogram_eps_splitters<std::uint64_t>(w, empty, 1).empty()));
  });
}

// --- end-to-end λ guarantees through sds_sort ------------------------------

void expect_exact_lambda_all_duplicate(int p, std::size_t per_rank) {
  Cluster(ClusterConfig{p}).run([&](Comm& w) {
    // 100%-duplicate input: the worst case for any value-based splitter.
    std::vector<std::uint64_t> data(per_rank, 42u);
    Config cfg;
    cfg.pivot_selection = PivotSelection::kHistogramEps;
    SortReport rep;
    auto out = sds_sort<std::uint64_t>(w, std::move(data), cfg, {}, &rep);
    ASSERT_TRUE(rep.has_refinement);
    EXPECT_EQ(rep.refinement.fractional_splitters,
              static_cast<std::uint64_t>(w.size() - 1));
    EXPECT_EQ(rep.refinement.achieved_epsilon, 0.0);
    // Fractional cuts are exact: every rank receives exactly N/p records.
    EXPECT_EQ(rep.recv_records, per_rank);
    EXPECT_DOUBLE_EQ(lambda_recv(w, rep), 1.0);
    EXPECT_EQ(out.size(), per_rank);
  });
}

TEST(EpsSort, AllDuplicateExactLambdaP8) {
  expect_exact_lambda_all_duplicate(8, 4000);
}

TEST(EpsSort, AllDuplicateExactLambdaP64) {
  expect_exact_lambda_all_duplicate(64, 1000);
}

void expect_exact_lambda_two_value(int p, std::size_t per_rank) {
  Cluster(ClusterConfig{p}).run([&](Comm& w) {
    // Two values, 50/50: p/2 boundaries have no key value at their rank.
    std::vector<std::uint64_t> data(per_rank);
    for (std::size_t i = 0; i < per_rank; ++i) {
      data[i] = i < per_rank / 2 ? 7u : 9u;
    }
    Config cfg;
    cfg.pivot_selection = PivotSelection::kHistogramEps;
    SortReport rep;
    auto before = global_checksum<std::uint64_t>(w, data);
    auto out = sds_sort<std::uint64_t>(w, std::move(data), cfg, {}, &rep);
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(w, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(w, out)));
    EXPECT_EQ(rep.recv_records, per_rank);
    EXPECT_DOUBLE_EQ(lambda_recv(w, rep), 1.0);
  });
}

TEST(EpsSort, TwoValueExactLambdaP8) { expect_exact_lambda_two_value(8, 4000); }

TEST(EpsSort, TwoValueExactLambdaP64) {
  expect_exact_lambda_two_value(64, 1000);
}

void expect_eps_bound_on_zipf(int p, std::size_t per_rank) {
  Cluster(ClusterConfig{p}).run([&](Comm& w) {
    auto data = workloads::zipf_keys(
        per_rank, 1.5, derive_seed(814, static_cast<std::uint64_t>(w.rank())));
    Config cfg;
    cfg.pivot_selection = PivotSelection::kHistogramEps;
    cfg.histogram_eps.epsilon = 0.1;
    SortReport rep;
    auto before = global_checksum<std::uint64_t>(w, data);
    auto out = sds_sort<std::uint64_t>(w, std::move(data), cfg, {}, &rep);
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(w, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(w, out)));
    ASSERT_TRUE(rep.has_refinement);
    EXPECT_FALSE(rep.refinement.hit_round_cap);
    // λ <= 1+ε plus the integer rounding of the N/p targets themselves.
    EXPECT_LE(lambda_recv(w, rep),
              1.1 + static_cast<double>(p) /
                        static_cast<double>(p * per_rank));
  });
}

TEST(EpsSort, ZipfLambdaBoundedP8) { expect_eps_bound_on_zipf(8, 4000); }

TEST(EpsSort, ZipfLambdaBoundedP64) { expect_eps_bound_on_zipf(64, 1000); }

TEST(EpsSort, StableModePreservesDuplicateOrder) {
  // Records are (key << 32) | global-uid with a single key: the fractional
  // partition cuts the one duplicate run; stable mode must keep the
  // rank-major uid order, which makes the full 64-bit values globally
  // sorted under the identity comparison.
  struct KeyHi {
    std::uint64_t operator()(const std::uint64_t& x) const { return x >> 32; }
  };
  Cluster(ClusterConfig{8}).run([](Comm& w) {
    const std::size_t n = 3000;
    std::vector<std::uint64_t> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = (42ull << 32) |
                (static_cast<std::uint64_t>(w.rank()) * n + i);
    }
    Config cfg;
    cfg.stable = true;
    cfg.pivot_selection = PivotSelection::kHistogramEps;
    SortReport rep;
    auto out =
        sds_sort<std::uint64_t, KeyHi>(w, std::move(data), cfg, {}, &rep);
    EXPECT_EQ(rep.recv_records, n);  // exact split of the single run
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(w, out)))
        << "stable fractional cut must preserve source-rank order";
  });
}

TEST(EpsSort, HybridSeededSelectionBalances) {
  Cluster(ClusterConfig{8}).run([](Comm& w) {
    auto data = workloads::uniform_u64(
        4000, derive_seed(815, static_cast<std::uint64_t>(w.rank())),
        1ull << 40);
    Config cfg;
    cfg.pivot_selection = PivotSelection::kHistogramEps;
    cfg.histogram_eps.seed_with_samples = true;
    SortReport rep;
    auto out = sds_sort<std::uint64_t>(w, std::move(data), cfg, {}, &rep);
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(w, out)));
    ASSERT_TRUE(rep.has_refinement);
    EXPECT_FALSE(rep.refinement.hit_round_cap);
    EXPECT_LE(lambda_recv(w, rep), 1.1 + 1e-3);
  });
}

// --- sampling degenerate shards (satellite) --------------------------------

TEST(SampleLocalPivots, FewerRecordsThanPivots) {
  const std::vector<std::uint64_t> data{10, 20, 30};
  const auto s = sample_local_pivots<std::uint64_t>(data, 7);
  ASSERT_EQ(s.keys.size(), 7u);
  ASSERT_EQ(s.positions.size(), 7u);
  EXPECT_TRUE(std::is_sorted(s.keys.begin(), s.keys.end()));
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_LT(s.positions[i], data.size());
    EXPECT_EQ(s.keys[i], data[s.positions[i]]);
  }
  // Trailing pivots clamp to the last element instead of running off the
  // shard.
  EXPECT_EQ(s.keys.back(), 30u);
}

TEST(SampleLocalPivots, EmptyShardContributesSentinels) {
  const std::vector<std::uint64_t> data;
  const auto s = sample_local_pivots<std::uint64_t>(data, 5);
  ASSERT_EQ(s.keys.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(s.keys[i], KeyLimits<std::uint64_t>::max());
    EXPECT_EQ(s.positions[i], 0u);
  }
}

TEST(SampleLocalPivots, SingleRecordShard) {
  const std::vector<std::uint64_t> data{99};
  const auto s = sample_local_pivots<std::uint64_t>(data, 3);
  ASSERT_EQ(s.keys.size(), 3u);
  for (auto k : s.keys) EXPECT_EQ(k, 99u);
}

}  // namespace
}  // namespace sdss
