// Tests of the baseline algorithms (classic sample sort, HykSort,
// distributed bitonic) — correctness on friendly inputs, and the documented
// failure modes on skewed inputs that the paper's comparisons rest on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "baselines/bitonic.hpp"
#include "baselines/hyksort.hpp"
#include "baselines/samplesort.hpp"
#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace sdss::baselines {
namespace {

using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;

std::vector<std::uint64_t> uniform_shard(int rank, std::size_t n,
                                         std::uint64_t universe = 1ull << 40) {
  return workloads::uniform_u64(
      n, derive_seed(4321, static_cast<std::uint64_t>(rank)), universe);
}

// --- classic sample sort -----------------------------------------------------

TEST(SampleSort, SortsUniform) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    auto shard = uniform_shard(world.rank(), 3000);
    const auto before = global_checksum<std::uint64_t>(world, shard);
    auto out = sample_sort<std::uint64_t>(world, std::move(shard));
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(world, out)));
  });
}

TEST(SampleSort, SingleRank) {
  Cluster(ClusterConfig{1}).run([](Comm& world) {
    auto out = sample_sort<std::uint64_t>(world, {5, 3, 1, 4});
    EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 3, 4, 5}));
  });
}

TEST(SampleSort, ImbalancedOnAllEqualKeys) {
  // The classic algorithm's weakness: duplicated pivots pile every record
  // onto one rank.
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    std::vector<std::uint64_t> shard(1000, 9);
    auto out = sample_sort<std::uint64_t>(world, std::move(shard));
    auto lb = measure_load_balance(world, out.size());
    EXPECT_NEAR(lb.rdfa, 4.0, 0.01);  // all 4000 records on one rank
  });
}

TEST(SampleSort, OomOnSkewWithBudget) {
  auto res = Cluster(ClusterConfig{4}).run_collect([](Comm& world) {
    std::vector<std::uint64_t> shard(1000, 9);
    SampleSortConfig cfg;
    cfg.mem_limit_records = 2000;
    sample_sort<std::uint64_t>(world, std::move(shard), cfg);
  });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.oom);
}

// --- HykSort -------------------------------------------------------------------

struct HykCase {
  int ranks;
  int kway;
  std::size_t per_rank;
};

class HykSortSweep : public ::testing::TestWithParam<HykCase> {};

TEST_P(HykSortSweep, SortsUniform) {
  const auto& pc = GetParam();
  Cluster(ClusterConfig{pc.ranks}).run([&](Comm& world) {
    auto shard = uniform_shard(world.rank(), pc.per_rank);
    const auto before = global_checksum<std::uint64_t>(world, shard);
    HykSortConfig cfg;
    cfg.kway = pc.kway;
    auto out = hyksort<std::uint64_t>(world, std::move(shard), cfg);
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(world, out)));
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, HykSortSweep,
                         ::testing::Values(HykCase{1, 128, 500},
                                           HykCase{2, 128, 2000},
                                           HykCase{4, 2, 2000},
                                           HykCase{8, 2, 1500},
                                           HykCase{8, 4, 1500},
                                           HykCase{8, 128, 1500},
                                           HykCase{16, 4, 800},
                                           HykCase{6, 128, 1000}));

TEST(HykSort, GoodBalanceOnUniform) {
  Cluster(ClusterConfig{8}).run([](Comm& world) {
    auto shard = uniform_shard(world.rank(), 4000);
    auto out = hyksort<std::uint64_t>(world, std::move(shard));
    auto lb = measure_load_balance(world, out.size());
    // Paper Table 3: HykSort's RDFA on uniform data is ~1.01-1.07.
    EXPECT_LE(lb.rdfa, 1.35);
  });
}

TEST(HykSort, SevereImbalanceOnZipf) {
  Cluster(ClusterConfig{8}).run([](Comm& world) {
    auto shard = workloads::zipf_keys(
        4000, 1.4, derive_seed(777, static_cast<std::uint64_t>(world.rank())));
    auto out = hyksort<std::uint64_t>(world, std::move(shard));
    // Still a correct sort...
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    auto lb = measure_load_balance(world, out.size());
    // ...but the rank holding the duplicated key is far above average
    // (delta=32%: one rank holds >= 32% of all records => RDFA >= 2.5).
    EXPECT_GE(lb.rdfa, 2.0);
  });
}

TEST(HykSort, OomOnSkewWithBudget) {
  // The Figs. 8/10 failure: with a per-rank budget of 2x the average,
  // Zipf(1.4) data (one key holds 32% of all records) kills HykSort.
  auto res = Cluster(ClusterConfig{8}).run_collect([](Comm& world) {
    auto shard = workloads::zipf_keys(
        4000, 1.4, derive_seed(778, static_cast<std::uint64_t>(world.rank())));
    HykSortConfig cfg;
    cfg.mem_limit_records = 8000;  // 2x average
    hyksort<std::uint64_t>(world, std::move(shard), cfg);
  });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.oom);
}

TEST(HykSort, SortsRecordsWithProjection) {
  struct Rec {
    double key;
    std::uint64_t payload;
  };
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    SplitMix64 rng(derive_seed(42, static_cast<std::uint64_t>(world.rank())));
    std::vector<Rec> shard(1500);
    for (auto& r : shard) {
      r.key = rng.next_double();
      r.payload = rng.next();
    }
    auto key = [](const Rec& r) { return r.key; };
    auto out = hyksort<Rec>(world, std::move(shard), {}, key);
    EXPECT_TRUE((is_globally_sorted<Rec>(world, out, key)));
  });
}

// --- distributed bitonic ---------------------------------------------------------

TEST(BitonicSort, SortsEqualShards) {
  Cluster(ClusterConfig{8}).run([](Comm& world) {
    auto shard = uniform_shard(world.rank(), 1024);
    const auto before = global_checksum<std::uint64_t>(world, shard);
    auto out = bitonic_sort<std::uint64_t>(world, std::move(shard));
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(world, out)));
  });
}

TEST(BitonicSort, HandlesUnevenShardsViaPadding) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    auto shard = uniform_shard(world.rank(),
                               500 + 100 * static_cast<std::size_t>(world.rank()));
    const auto before = global_checksum<std::uint64_t>(world, shard);
    auto out = bitonic_sort<std::uint64_t>(world, std::move(shard));
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(world, out)));
  });
}

TEST(BitonicSort, RejectsNonPowerOfTwo) {
  auto res = Cluster(ClusterConfig{3}).run_collect([](Comm& world) {
    bitonic_sort<std::uint64_t>(world, {1, 2, 3});
  });
  EXPECT_FALSE(res.ok);
}

TEST(BitonicSort, SingleRank) {
  Cluster(ClusterConfig{1}).run([](Comm& world) {
    auto out = bitonic_sort<std::uint64_t>(world, {3, 1, 2});
    EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 2, 3}));
  });
}

TEST(BitonicSort, AllEqualKeysStillWork) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    std::vector<std::uint64_t> shard(256, 6);
    auto out = bitonic_sort<std::uint64_t>(world, std::move(shard));
    EXPECT_EQ(out.size(), 256u);  // bitonic keeps shards in place
    for (auto v : out) EXPECT_EQ(v, 6u);
  });
}

}  // namespace
}  // namespace sdss::baselines
