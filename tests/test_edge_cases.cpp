// Additional edge cases across the stack: uneven node sizes, degenerate
// shard shapes, extreme configurations, and end-to-end runs over the
// remaining workload generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace sdss {
namespace {

using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;

TEST(NodeEdge, UnevenLastNodeStillMergesAndSorts) {
  // 6 ranks, 4 cores/node: node 0 has 4 ranks, node 1 only 2.
  Cluster(ClusterConfig{6, /*cores_per_node=*/4}).run([](Comm& world) {
    auto shard = workloads::uniform_u64(
        500, derive_seed(901, static_cast<std::uint64_t>(world.rank())),
        1u << 20);
    const auto before = global_checksum<std::uint64_t>(world, shard);
    Config cfg;
    cfg.tau_m_bytes = 1u << 30;  // force node merging
    SortReport rep;
    auto out = sds_sort<std::uint64_t>(world, std::move(shard), cfg, {}, &rep);
    EXPECT_TRUE(rep.node_merged);
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(world, out)));
    // Leaders are world ranks 0 and 4.
    if (world.rank() == 0 || world.rank() == 4) {
      EXPECT_TRUE(rep.active);
    } else {
      EXPECT_FALSE(rep.active);
    }
  });
}

TEST(NodeEdge, WholeClusterIsOneNode) {
  // All ranks on a single node: node merge funnels everything to rank 0,
  // which then has a singleton leaders communicator (p' == 1).
  Cluster(ClusterConfig{4, /*cores_per_node=*/8}).run([](Comm& world) {
    auto shard = workloads::uniform_u64(
        300, derive_seed(902, static_cast<std::uint64_t>(world.rank())), 1000);
    Config cfg;
    cfg.tau_m_bytes = 1u << 30;
    auto out = sds_sort<std::uint64_t>(world, std::move(shard), cfg);
    if (world.rank() == 0) {
      EXPECT_EQ(out.size(), 1200u);
      EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST(NodeEdge, NodeMergeCombinedWithOverlapPath) {
  Cluster(ClusterConfig{8, /*cores_per_node=*/2}).run([](Comm& world) {
    auto shard = workloads::zipf_keys(
        400, 1.0, derive_seed(903, static_cast<std::uint64_t>(world.rank())));
    Config cfg;
    cfg.tau_m_bytes = 1u << 30;  // merge: 4 leaders remain
    cfg.tau_o = 1u << 20;        // then overlap among leaders
    SortReport rep;
    auto out = sds_sort<std::uint64_t>(world, std::move(shard), cfg, {}, &rep);
    if (rep.active) {
      EXPECT_EQ(rep.exchange, ExchangeMode::kOverlapped);
    }
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
  });
}

TEST(ShardShapes, OneRankHoldsEverything) {
  Cluster(ClusterConfig{5}).run([](Comm& world) {
    std::vector<std::uint64_t> shard;
    if (world.rank() == 3) {
      shard = workloads::zipf_keys(5000, 1.4, 904);
    }
    const auto before = global_checksum<std::uint64_t>(world, shard);
    auto out = sds_sort<std::uint64_t>(world, std::move(shard));
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(world, out)));
    // The sort must spread rank 3's data across ranks (that is the point
    // of a parallel sort: the load bound still applies).
    auto lb = measure_load_balance(world, out.size());
    EXPECT_LE(static_cast<double>(lb.max_load),
              4.0 * 5000.0 / 5.0 + 32.0);
  });
}

TEST(ShardShapes, WildlyUnevenInputs) {
  Cluster(ClusterConfig{6}).run([](Comm& world) {
    const std::size_t n = world.rank() % 2 == 0
                              ? 10u
                              : 3000u + 500u * static_cast<std::size_t>(world.rank());
    auto shard = workloads::uniform_u64(
        n, derive_seed(905, static_cast<std::uint64_t>(world.rank())),
        1u << 24);
    const auto before = global_checksum<std::uint64_t>(world, shard);
    auto out = sds_sort<std::uint64_t>(world, std::move(shard));
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(world, out)));
  });
}

TEST(ShardShapes, SingleRecordTotal) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    std::vector<std::uint64_t> shard;
    if (world.rank() == 2) shard.push_back(99);
    auto out = sds_sort<std::uint64_t>(world, std::move(shard));
    const auto sizes = world.allgather<std::size_t>(out.size());
    std::size_t total = 0;
    for (auto s : sizes) total += s;
    EXPECT_EQ(total, 1u);
  });
}

TEST(Workloads, GaussianEndToEnd) {
  Cluster(ClusterConfig{6}).run([](Comm& world) {
    auto shard = workloads::gaussian_doubles(
        3000, derive_seed(906, static_cast<std::uint64_t>(world.rank())),
        100.0, 15.0);
    const auto before = global_checksum<double>(world, shard);
    auto out = sds_sort<double>(world, std::move(shard));
    EXPECT_TRUE((is_globally_sorted<double>(world, out)));
    EXPECT_EQ(before, (global_checksum<double>(world, out)));
    // Gaussian bunches values near the mean; the load bound still holds.
    auto lb = measure_load_balance(world, out.size());
    EXPECT_LE(lb.rdfa, 4.0);
  });
}

TEST(Workloads, PartiallyOrderedInputIsSortedAndFastPathTaken) {
  // Globally partially ordered input: the initial local sort's run scan
  // must take the run-merge shortcut (asserted indirectly: correctness plus
  // the strategy flag on a local copy).
  auto local = workloads::partially_ordered_u64(20000, 907, /*runs=*/4, 0.0);
  auto copy = local;
  auto res = run_aware_sort(copy, /*stable=*/false);
  EXPECT_NE(res.strategy, OrderingStrategy::kFullSort);

  Cluster(ClusterConfig{4}).run([&](Comm& world) {
    auto shard = workloads::partially_ordered_u64(
        5000, derive_seed(908, static_cast<std::uint64_t>(world.rank())), 4,
        0.01);
    auto out = sds_sort<std::uint64_t>(world, std::move(shard));
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
  });
}

TEST(Config, ThreadsOverrideIsRespected) {
  Cluster(ClusterConfig{2, /*cores_per_node=*/4}).run([](Comm& world) {
    auto shard = workloads::uniform_u64(
        10000, derive_seed(909, static_cast<std::uint64_t>(world.rank())),
        1u << 20);
    Config cfg;
    cfg.threads = 1;  // explicit override of cores_per_node
    auto out = sds_sort<std::uint64_t>(world, std::move(shard), cfg);
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
  });
}

TEST(Config, ExtremeTauValuesAreSafe) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    auto mk = [&] {
      return workloads::uniform_u64(
          1000, derive_seed(910, static_cast<std::uint64_t>(world.rank())),
          1u << 16);
    };
    for (std::size_t tau_s : {std::size_t{0}, std::size_t{1} << 30}) {
      for (std::size_t tau_o : {std::size_t{0}, std::size_t{1} << 30}) {
        Config cfg;
        cfg.tau_s = tau_s;
        cfg.tau_o = tau_o;
        auto out = sds_sort<std::uint64_t>(world, mk(), cfg);
        ASSERT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
      }
    }
  });
}

TEST(Network, FullPipelineUnderEveryNetworkPreset) {
  for (auto net : {sim::NetworkModel::none(), sim::NetworkModel::aries_like(),
                   sim::NetworkModel::slow_ethernet_like()}) {
    Cluster(ClusterConfig{4, 2, net}).run([](Comm& world) {
      auto shard = workloads::zipf_keys(
          800, 1.4, derive_seed(911, static_cast<std::uint64_t>(world.rank())));
      auto out = sds_sort<std::uint64_t>(world, std::move(shard));
      EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    });
  }
}

TEST(Stability, TwoRanksManyDuplicateBlocks) {
  using Rec = workloads::Tagged<std::uint32_t>;
  Cluster(ClusterConfig{2}).run([](Comm& world) {
    std::vector<std::uint32_t> keys;
    for (std::uint32_t b = 0; b < 10; ++b) {
      for (int i = 0; i < 200; ++i) keys.push_back(b);
    }
    auto shard = workloads::tag_keys(keys, world.rank());
    Config cfg;
    cfg.stable = true;
    auto out = sds_sort<Rec>(world, std::move(shard), cfg,
                             [](const Rec& r) { return r.key; });
    auto all = gather_all<Rec>(world, out);
    for (std::size_t i = 1; i < all.size(); ++i) {
      ASSERT_LE(all[i - 1].key, all[i].key);
      if (all[i - 1].key == all[i].key) {
        ASSERT_TRUE(workloads::tagged_before(all[i - 1], all[i]));
      }
    }
  });
}

}  // namespace
}  // namespace sdss
