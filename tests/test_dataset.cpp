// Tests for the Dataset<T> convenience layer: distributed sort-by-key plus
// the order-based analytics the paper's motivating systems run on sorted
// data (quantiles, top-k, range extraction, histograms).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "api/dataset.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "workloads/cosmology.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace sdss {
namespace {

using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;

Dataset<std::uint64_t> make_sorted(Comm& world, std::size_t per_rank,
                                   std::uint64_t universe = 1ull << 32) {
  auto shard = workloads::uniform_u64(
      per_rank, derive_seed(2201, static_cast<std::uint64_t>(world.rank())),
      universe);
  return Dataset<std::uint64_t>(world, std::move(shard)).sorted_by();
}

TEST(Dataset, CountsAndSortFlag) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    Dataset<std::uint64_t> ds(world,
                              std::vector<std::uint64_t>(100, world.rank()));
    EXPECT_EQ(ds.local_count(), 100u);
    EXPECT_EQ(ds.global_count(), 400u);
    EXPECT_FALSE(ds.is_sorted());
    auto sorted = std::move(ds).sorted_by();
    EXPECT_TRUE(sorted.is_sorted());
    EXPECT_TRUE(sorted.verify_sorted());
    EXPECT_EQ(sorted.global_count(), 400u);
  });
}

TEST(Dataset, OrderQueriesRequireSorting) {
  Cluster(ClusterConfig{2}).run([](Comm& world) {
    Dataset<std::uint64_t> ds(world, {3, 1, 2});
    EXPECT_THROW(ds.at_global_index(0), Error);
    EXPECT_THROW(ds.top_k(1), Error);
  });
}

TEST(Dataset, GlobalIndexLookup) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    // Rank r holds {r, r+4, r+8, ...}: globally the values 0..39.
    std::vector<std::uint64_t> shard;
    for (std::uint64_t i = 0; i < 10; ++i) {
      shard.push_back(static_cast<std::uint64_t>(world.rank()) + 4 * i);
    }
    auto ds = Dataset<std::uint64_t>(world, std::move(shard)).sorted_by();
    for (std::uint64_t idx : {0u, 7u, 20u, 39u}) {
      auto v = ds.at_global_index(idx);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, idx);  // sorted order of 0..39 is the identity
    }
    EXPECT_FALSE(ds.at_global_index(40).has_value());
  });
}

TEST(Dataset, QuantilesOfKnownSequence) {
  Cluster(ClusterConfig{5}).run([](Comm& world) {
    // Global content: 0..999 (rank r holds a contiguous 200-block,
    // pre-shuffled within).
    std::vector<std::uint64_t> shard;
    for (std::uint64_t i = 0; i < 200; ++i) {
      shard.push_back(static_cast<std::uint64_t>(world.rank()) * 200 + i);
    }
    SplitMix64 rng(derive_seed(2202, static_cast<std::uint64_t>(world.rank())));
    for (std::size_t i = shard.size(); i > 1; --i) {
      std::swap(shard[i - 1], shard[rng.next_below(i)]);
    }
    auto ds = Dataset<std::uint64_t>(world, std::move(shard)).sorted_by();
    const std::vector<double> qs{0.0, 0.25, 0.5, 1.0};
    auto vals = ds.quantiles(qs);
    ASSERT_EQ(vals.size(), 4u);
    EXPECT_EQ(vals[0], 0u);
    EXPECT_NEAR(static_cast<double>(vals[1]), 250.0, 1.0);
    EXPECT_NEAR(static_cast<double>(vals[2]), 500.0, 1.0);
    EXPECT_EQ(vals[3], 999u);
  });
}

TEST(Dataset, TopKAcrossRankBoundaries) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    std::vector<std::uint64_t> shard;
    for (std::uint64_t i = 0; i < 50; ++i) {
      shard.push_back(static_cast<std::uint64_t>(world.rank()) * 50 + i);
    }
    auto ds = Dataset<std::uint64_t>(world, std::move(shard)).sorted_by();
    // k spanning more than the last rank's shard exercises the walk.
    auto top = ds.top_k(75);
    ASSERT_EQ(top.size(), 75u);
    for (std::size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i], 199u - i);
    }
  });
}

TEST(Dataset, TopKLargerThanDataset) {
  Cluster(ClusterConfig{3}).run([](Comm& world) {
    std::vector<std::uint64_t> shard(5, world.rank());
    auto ds = Dataset<std::uint64_t>(world, std::move(shard)).sorted_by();
    auto top = ds.top_k(1000);
    EXPECT_EQ(top.size(), 15u);
    EXPECT_TRUE(std::is_sorted(top.rbegin(), top.rend()));
  });
}

TEST(Dataset, LocalKeyRangeExtraction) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    auto ds = make_sorted(world, 2000, /*universe=*/10000);
    auto slice = ds.local_key_range<IdentityKey>(2500, 7500);
    for (const auto& v : slice) {
      EXPECT_GE(v, 2500u);
      EXPECT_LT(v, 7500u);
    }
    // Union over ranks covers every in-range record exactly once.
    const auto local = static_cast<std::uint64_t>(slice.size());
    const auto total = world.allreduce<std::uint64_t>(
        local, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    std::uint64_t expect = 0;
    for (int r = 0; r < 4; ++r) {
      for (auto v : workloads::uniform_u64(
               2000, derive_seed(2201, static_cast<std::uint64_t>(r)), 10000)) {
        if (v >= 2500 && v < 7500) ++expect;
      }
    }
    EXPECT_EQ(total, expect);
  });
}

TEST(Dataset, KeyHistogramSumsToCount) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    auto shard = workloads::zipf_keys(
        3000, 1.0, derive_seed(2203, static_cast<std::uint64_t>(world.rank())));
    Dataset<std::uint64_t> ds(world, std::move(shard));
    auto hist = ds.key_histogram(0.0, 10000.0, 20);
    std::uint64_t sum = 0;
    for (auto h : hist) sum += h;
    EXPECT_EQ(sum, ds.global_count());
    // Zipf: the first bin holds the most mass.
    EXPECT_EQ(std::max_element(hist.begin(), hist.end()) - hist.begin(), 0);
  });
}

TEST(Dataset, KeyExtrema) {
  Cluster(ClusterConfig{3}).run([](Comm& world) {
    std::vector<std::uint64_t> shard{
        static_cast<std::uint64_t>(world.rank()) * 10 + 5,
        static_cast<std::uint64_t>(world.rank()) * 10 + 7};
    Dataset<std::uint64_t> ds(world, std::move(shard));
    auto ext = ds.key_extrema();
    ASSERT_TRUE(ext.has_value());
    EXPECT_EQ(ext->first, 5u);
    EXPECT_EQ(ext->second, 27u);
  });
}

TEST(Dataset, KeyExtremaEmpty) {
  Cluster(ClusterConfig{2}).run([](Comm& world) {
    Dataset<std::uint64_t> ds(world, {});
    EXPECT_FALSE(ds.key_extrema().has_value());
    EXPECT_EQ(ds.global_count(), 0u);
  });
}

TEST(Dataset, RecordTypeWithProjectionEndToEnd) {
  using workloads::Particle;
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    auto parts = workloads::cosmology_particles(
        2000, derive_seed(2204, static_cast<std::uint64_t>(world.rank())));
    auto key = [](const Particle& p) { return p.cluster_id; };
    auto ds = Dataset<Particle>(world, std::move(parts)).sorted_by(key);
    EXPECT_TRUE(ds.verify_sorted(key));
    // Top-5 particles by cluster id live in the largest-id clusters.
    auto top = ds.top_k(5);
    ASSERT_EQ(top.size(), 5u);
    for (std::size_t i = 1; i < top.size(); ++i) {
      EXPECT_GE(top[i - 1].cluster_id, top[i].cluster_id);
    }
    EXPECT_LE(ds.load_rdfa(), 4.0);
  });
}

TEST(Dataset, StableSortThroughConfig) {
  using Rec = workloads::Tagged<std::uint32_t>;
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    SplitMix64 rng(derive_seed(2205, static_cast<std::uint64_t>(world.rank())));
    std::vector<std::uint32_t> keys(500);
    for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_below(4));
    auto shard = workloads::tag_keys(keys, world.rank());
    Config cfg;
    cfg.stable = true;
    auto key = [](const Rec& r) { return r.key; };
    auto ds = Dataset<Rec>(world, std::move(shard)).sorted_by(key, cfg);
    auto all = gather_all<Rec>(world, ds.shard());
    for (std::size_t i = 1; i < all.size(); ++i) {
      ASSERT_LE(all[i - 1].key, all[i].key);
      if (all[i - 1].key == all[i].key) {
        ASSERT_TRUE(workloads::tagged_before(all[i - 1], all[i]));
      }
    }
  });
}

}  // namespace
}  // namespace sdss

namespace sdss {
namespace {

TEST(DatasetEdge, EmptyDatasetQueries) {
  sim::Cluster(sim::ClusterConfig{3}).run([](sim::Comm& world) {
    auto ds = Dataset<std::uint64_t>(world, {}).sorted_by();
    EXPECT_EQ(ds.global_count(), 0u);
    EXPECT_TRUE(ds.quantiles(std::vector<double>{0.5}).empty());
    EXPECT_TRUE(ds.top_k(10).empty());
    EXPECT_FALSE(ds.at_global_index(0).has_value());
    EXPECT_TRUE(ds.verify_sorted());
  });
}

TEST(DatasetEdge, SingletonDataset) {
  sim::Cluster(sim::ClusterConfig{4}).run([](sim::Comm& world) {
    std::vector<std::uint64_t> shard;
    if (world.rank() == 1) shard.push_back(42);
    auto ds = Dataset<std::uint64_t>(world, std::move(shard)).sorted_by();
    auto v = ds.at_global_index(0);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42u);
    auto q = ds.quantiles(std::vector<double>{0.0, 1.0});
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0], 42u);
    EXPECT_EQ(q[1], 42u);
  });
}

}  // namespace
}  // namespace sdss
