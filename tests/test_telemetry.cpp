// Telemetry layer: JSON model round-trips, report serialization schema,
// registry files, and the report_diff regression-threshold logic.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "telemetry/diff.hpp"
#include "telemetry/json.hpp"
#include "telemetry/report.hpp"
#include "util/error.hpp"

namespace sdss::telemetry {
namespace {

// --- Json model ----------------------------------------------------------

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(Json::parse("null"), Json());
  EXPECT_EQ(Json::parse("true"), Json(true));
  EXPECT_EQ(Json::parse("false"), Json(false));
  EXPECT_EQ(Json::parse("42"), Json(42.0));
  EXPECT_EQ(Json::parse("-1.5e-3"), Json(-0.0015));
  EXPECT_EQ(Json::parse("\"hi\""), Json("hi"));
}

TEST(Json, NumberFormattingIsShortestRoundTrip) {
  EXPECT_EQ(Json(5.0).dump(), "5");
  EXPECT_EQ(Json(0.1).dump(), "0.1");
  EXPECT_EQ(Json(1234567890.0).dump(), "1234567890");
  // A value with no short decimal form survives dump -> parse exactly.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(Json::parse(Json(v).dump()).number_or(), v);
}

TEST(Json, LargeCountsRoundTripExactly) {
  const std::uint64_t bytes = (1ull << 52) + 12345;  // < 2^53: exact
  EXPECT_EQ(Json::parse(Json(bytes).dump()).u64_or(), bytes);
}

TEST(Json, StringEscaping) {
  const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
  const Json j(nasty);
  EXPECT_EQ(Json::parse(j.dump()).string_value(), nasty);
  EXPECT_NE(j.dump().find("\\u0001"), std::string::npos);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json obj = Json::object();
  obj.set("zebra", 1).set("alpha", 2).set("mid", 3);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  // Overwriting keeps the original position — serialization stays stable
  // when a field is updated.
  obj.set("alpha", 9);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
}

TEST(Json, SerializationIsDeterministic) {
  Json obj = Json::object();
  obj.set("a", 1.25);
  Json arr = Json::array();
  arr.push_back("x");
  arr.push_back(Json());
  obj.set("b", std::move(arr));
  EXPECT_EQ(obj.dump(2), obj.dump(2));
  EXPECT_EQ(Json::parse(obj.dump(2)), obj);  // pretty form parses back
}

TEST(Json, NestedRoundTrip) {
  const std::string text =
      R"({"a": [1, 2.5, {"b": "c"}], "d": {"e": [], "f": {}}, "g": null})";
  const Json j = Json::parse(text);
  EXPECT_EQ(Json::parse(j.dump()), j);
  EXPECT_EQ(j.at("a").items()[2].at("b").string_value(), "c");
  EXPECT_TRUE(j.at("g").is_null());
  EXPECT_TRUE(j.at("missing").is_null());  // at() never throws
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(Json::parse("nul"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("1e"), Error);
}

// --- RunReport serialization ---------------------------------------------

RunReport sample_report(const std::string& name) {
  RunReport r;
  r.name = name;
  r.experiment = "Fig. X — unit test";
  r.algorithm = "SDS-Sort";
  r.workload = "zipf:1.4";
  r.set_param("records_per_rank", "20000");
  r.set_param("exchange", "overlapped");
  r.ranks = 16;
  r.cores_per_node = 4;
  r.net_latency_s = 1e-6;
  r.net_bandwidth_Bps = 8e9;
  r.ok = true;
  r.oom = false;
  r.wall_seconds = 1.25;
  r.crit_path_cpu_seconds = 0.75;
  r.phases.add(Phase::kPivotSelection, 0.125, 0.1);
  r.phases.add(Phase::kExchange, 0.5, 0.25);
  r.phases.add(Phase::kLocalOrdering, 0.25, 0.2);
  r.phases.add(Phase::kNodeMerge, 0.0625, 0.05);
  r.phases.add(Phase::kOther, 0.3125, 0.15);
  r.comm_total = {100, 65536, 12, 4096};
  r.comm_per_rank = {{60, 40000, 6, 2048}, {40, 25536, 6, 2048}};
  r.rdfa = 1.75;
  r.max_load = 35000;
  r.total_records = 320000;
  return r;
}

TEST(RunReport, SchemaFieldsPresentInStableOrder) {
  const Json j = to_json(sample_report("r"));
  std::vector<std::string> keys;
  for (const auto& [k, v] : j.members()) keys.push_back(k);
  const std::vector<std::string> expected{
      "name",    "experiment", "algorithm", "workload",     "params",
      "cluster", "outcome",    "phases",    "comm",         "load_balance"};
  EXPECT_EQ(keys, expected);

  EXPECT_EQ(j.at("cluster").at("ranks").number_or(), 16.0);
  EXPECT_EQ(j.at("outcome").at("wall_seconds").number_or(), 1.25);
  EXPECT_EQ(j.at("phases").at("exchange").at("cpu_s").number_or(), 0.25);
  EXPECT_EQ(j.at("phases").at("total").at("wall_s").number_or(), 1.25);
  EXPECT_EQ(j.at("comm").at("p2p_bytes").u64_or(), 65536u);
  EXPECT_EQ(j.at("comm").at("total_bytes").u64_or(), 65536u + 4096u);
  EXPECT_EQ(j.at("comm").at("per_rank").size(), 2u);
  EXPECT_EQ(j.at("load_balance").at("rdfa").number_or(), 1.75);
  EXPECT_EQ(j.at("params").at("exchange").string_value(), "overlapped");
}

TEST(RunReport, RoundTripThroughJsonText) {
  const RunReport r = sample_report("round-trip");
  const RunReport back = report_from_json(Json::parse(to_json(r).dump(2)));

  EXPECT_EQ(back.name, r.name);
  EXPECT_EQ(back.experiment, r.experiment);
  EXPECT_EQ(back.algorithm, r.algorithm);
  EXPECT_EQ(back.workload, r.workload);
  EXPECT_EQ(back.params, r.params);
  EXPECT_EQ(back.ranks, r.ranks);
  EXPECT_EQ(back.cores_per_node, r.cores_per_node);
  EXPECT_EQ(back.net_latency_s, r.net_latency_s);
  EXPECT_EQ(back.net_bandwidth_Bps, r.net_bandwidth_Bps);
  EXPECT_EQ(back.ok, r.ok);
  EXPECT_EQ(back.oom, r.oom);
  EXPECT_EQ(back.wall_seconds, r.wall_seconds);
  EXPECT_EQ(back.crit_path_cpu_seconds, r.crit_path_cpu_seconds);
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const auto p = static_cast<Phase>(i);
    EXPECT_EQ(back.phases.seconds(p), r.phases.seconds(p));
    EXPECT_EQ(back.phases.cpu_seconds(p), r.phases.cpu_seconds(p));
  }
  ASSERT_EQ(back.comm_per_rank.size(), r.comm_per_rank.size());
  for (std::size_t i = 0; i < r.comm_per_rank.size(); ++i) {
    EXPECT_EQ(back.comm_per_rank[i].p2p_messages,
              r.comm_per_rank[i].p2p_messages);
    EXPECT_EQ(back.comm_per_rank[i].p2p_bytes, r.comm_per_rank[i].p2p_bytes);
  }
  EXPECT_EQ(back.comm_total.total_bytes(), r.comm_total.total_bytes());
  EXPECT_EQ(back.rdfa, r.rdfa);
  EXPECT_EQ(back.max_load, r.max_load);
  EXPECT_EQ(back.total_records, r.total_records);
}

TEST(RunReport, FailureAndChaosFieldsRoundTrip) {
  RunReport r = sample_report("chaos");
  r.ok = false;
  r.failure_class = "injected-crash";
  r.failed_rank = 3;
  r.has_chaos = true;
  r.chaos_seed = 12345;
  r.jittered_messages = 42;
  r.fault_events.push_back(
      sim::FaultEvent{sim::FaultKind::kStall, 1, 4, 0.002});
  r.fault_events.push_back(sim::FaultEvent{sim::FaultKind::kCrash, 3, 7, 0.0});

  const RunReport back = report_from_json(Json::parse(to_json(r).dump(2)));
  EXPECT_EQ(back.failure_class, "injected-crash");
  EXPECT_EQ(back.failed_rank, 3);
  EXPECT_TRUE(back.has_chaos);
  EXPECT_EQ(back.chaos_seed, 12345u);
  EXPECT_EQ(back.jittered_messages, 42u);
  EXPECT_EQ(back.fault_events, r.fault_events);
}

TEST(RunReport, OldFilesWithoutFailureFieldsReadAsDefaults) {
  // Simulate a pre-taxonomy report: serialize, strip the new members.
  Json j = to_json(sample_report("legacy"));
  Json outcome = Json::object();
  outcome.set("ok", true);
  outcome.set("oom", false);
  outcome.set("wall_seconds", 1.0);
  outcome.set("crit_path_cpu_seconds", 2.0);
  j.set("outcome", std::move(outcome));  // replaces: no failure_class/rank

  const RunReport back = report_from_json(j);
  EXPECT_EQ(back.failure_class, "none");
  EXPECT_EQ(back.failed_rank, -1);
  EXPECT_FALSE(back.has_chaos);
  EXPECT_TRUE(back.fault_events.empty());
}

TEST(ReportRegistry, WriteAndLoadFile) {
  ReportRegistry reg;
  reg.add(sample_report("a"));
  reg.add(sample_report("b"));

  std::ostringstream out;
  reg.write(out);
  const Json file = Json::parse(out.str());
  EXPECT_EQ(file.at("schema_version").number_or(), kReportSchemaVersion);
  EXPECT_EQ(file.at("generator").string_value(), kReportGenerator);
  EXPECT_EQ(file.at("reports").size(), 2u);

  const ReportRegistry back = ReportRegistry::load(file);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_NE(back.find("a"), nullptr);
  EXPECT_NE(back.find("b"), nullptr);
  EXPECT_EQ(back.find("missing"), nullptr);
  EXPECT_EQ(back.find("a")->rdfa, 1.75);
}

TEST(ReportRegistry, RejectsNewerSchema) {
  Json file = Json::object();
  file.set("schema_version", kReportSchemaVersion + 1);
  file.set("reports", Json::array());
  EXPECT_THROW(ReportRegistry::load(file), Error);
  file.set("schema_version", Json());  // missing entirely
  EXPECT_THROW(ReportRegistry::load(file), Error);
}

TEST(ReportRegistry, EnvVarFallbackResolvesPath) {
  // The test binary's own cmdline has no --json flag, so the env var wins.
  ::setenv("SDSS_BENCH_JSON", "/tmp/sdss-telemetry-test.json", 1);
  EXPECT_EQ(report_path_from_cmdline_or_env(),
            "/tmp/sdss-telemetry-test.json");
  ::unsetenv("SDSS_BENCH_JSON");
  EXPECT_EQ(report_path_from_cmdline_or_env(), "");
}

// --- report_diff threshold logic -----------------------------------------

ReportRegistry registry_with(const std::string& name, double exchange_cpu,
                             bool ok = true) {
  RunReport r = sample_report(name);
  r.ok = ok;
  r.phases.clear();
  r.phases.add(Phase::kExchange, exchange_cpu * 2.0, exchange_cpu);
  ReportRegistry reg;
  reg.add(std::move(r));
  return reg;
}

TEST(ReportDiff, IdenticalFilesShowNoRegression) {
  const auto before = registry_with("run", 0.5);
  const auto after = registry_with("run", 0.5);
  const DiffResult d = diff_registries(before, after, {});
  EXPECT_FALSE(d.any_regression);
  EXPECT_TRUE(d.regressions().empty());
  // 5 phases + total + wall compared for the one matched report.
  EXPECT_EQ(d.deltas.size(), kNumPhases + 2);
}

TEST(ReportDiff, FlagsRegressionPastThreshold) {
  const auto before = registry_with("run", 0.5);
  const auto after = registry_with("run", 0.6);  // +20%
  DiffOptions opts;
  opts.threshold = 0.10;
  const DiffResult d = diff_registries(before, after, opts);
  EXPECT_TRUE(d.any_regression);
  const auto regs = d.regressions();
  ASSERT_FALSE(regs.empty());
  EXPECT_EQ(regs.front().metric, "exchange");
  EXPECT_NEAR(regs.front().relative(), 0.2, 1e-9);
}

TEST(ReportDiff, ToleratesSlowdownWithinThreshold) {
  const auto before = registry_with("run", 0.5);
  const auto after = registry_with("run", 0.54);  // +8%
  DiffOptions opts;
  opts.threshold = 0.10;
  EXPECT_FALSE(diff_registries(before, after, opts).any_regression);
}

TEST(ReportDiff, ImprovementIsNeverARegression) {
  const auto before = registry_with("run", 0.5);
  const auto after = registry_with("run", 0.1);
  EXPECT_FALSE(diff_registries(before, after, {}).any_regression);
}

TEST(ReportDiff, AbsoluteFloorSuppressesMicroJitter) {
  // +100% relative but only +0.4 ms absolute: below the default 1 ms floor.
  const auto before = registry_with("run", 0.0004);
  const auto after = registry_with("run", 0.0008);
  EXPECT_FALSE(diff_registries(before, after, {}).any_regression);

  DiffOptions strict;
  strict.min_seconds = 1e-5;
  EXPECT_TRUE(diff_registries(before, after, strict).any_regression);
}

TEST(ReportDiff, WallClockModeComparesWallColumns) {
  // cpu equal, wall doubled (registry_with sets wall = 2 * cpu).
  auto before = registry_with("run", 0.5);
  auto after = registry_with("run", 0.5);
  ReportRegistry after2;
  {
    RunReport r = *after.find("run");
    r.phases.clear();
    r.phases.add(Phase::kExchange, 2.0, 0.5);  // wall regressed, cpu same
    after2.add(std::move(r));
  }
  DiffOptions cpu_mode;
  EXPECT_FALSE(diff_registries(before, after2, cpu_mode).any_regression);
  DiffOptions wall_mode;
  wall_mode.use_cpu = false;
  EXPECT_TRUE(diff_registries(before, after2, wall_mode).any_regression);
}

TEST(ReportDiff, StatusFlipDominatesTiming) {
  const auto before = registry_with("run", 0.5, /*ok=*/true);
  const auto after = registry_with("run", 0.5, /*ok=*/false);
  const DiffResult d = diff_registries(before, after, {});
  EXPECT_TRUE(d.any_regression);
  ASSERT_EQ(d.deltas.size(), 1u);
  EXPECT_EQ(d.deltas.front().metric, "status: ok -> FAIL");

  // The recovery direction is not a regression.
  const DiffResult r = diff_registries(after, before, {});
  EXPECT_FALSE(r.any_regression);
  // Two runs that both failed have nothing to compare.
  const DiffResult f = diff_registries(after, after, {});
  EXPECT_TRUE(f.deltas.empty());
  EXPECT_FALSE(f.any_regression);
}

TEST(ReportDiff, UnmatchedReportsAreListedNotCompared) {
  ReportRegistry before;
  before.add(sample_report("kept"));
  before.add(sample_report("removed"));
  ReportRegistry after;
  after.add(sample_report("kept"));
  after.add(sample_report("added"));
  const DiffResult d = diff_registries(before, after, {});
  EXPECT_EQ(d.only_before, std::vector<std::string>{"removed"});
  EXPECT_EQ(d.only_after, std::vector<std::string>{"added"});
  EXPECT_FALSE(d.any_regression);
}

// --- trace section + per-rank phases -------------------------------------

RunReport traced_report(const std::string& name, double lambda_records) {
  RunReport r = sample_report(name);
  PhaseLedger fast;
  fast.add(Phase::kExchange, 0.25, 0.2);
  PhaseLedger slow;
  slow.add(Phase::kExchange, 0.5, 0.25);
  slow.add(Phase::kLocalOrdering, 0.25, 0.2);
  r.phases_per_rank = {fast, slow};
  r.has_trace = true;
  RunReport::TracePhase p;
  p.name = "exchange";
  p.critical_rank = 1;
  p.max_s = 0.5;
  p.avg_s = 0.375;
  p.lambda = 0.5 / 0.375;
  p.margin_s = 0.25;
  p.blocked_s = 0.125;
  r.trace_phases.push_back(p);
  r.trace_lambda_records = lambda_records;
  r.trace_blocked_frac = 0.1;
  r.trace_events = 4242;
  return r;
}

TEST(RunReport, TraceAndPerRankPhasesRoundTrip) {
  const RunReport r = traced_report("traced", 1.5);
  const RunReport back = report_from_json(Json::parse(to_json(r).dump(2)));

  ASSERT_EQ(back.phases_per_rank.size(), 2u);
  EXPECT_EQ(back.phases_per_rank[0].seconds(Phase::kExchange), 0.25);
  EXPECT_EQ(back.phases_per_rank[1].seconds(Phase::kExchange), 0.5);
  EXPECT_EQ(back.phases_per_rank[1].cpu_seconds(Phase::kLocalOrdering), 0.2);

  EXPECT_TRUE(back.has_trace);
  EXPECT_EQ(back.trace_lambda_records, 1.5);
  EXPECT_EQ(back.trace_blocked_frac, 0.1);
  EXPECT_EQ(back.trace_events, 4242u);
  ASSERT_EQ(back.trace_phases.size(), 1u);
  EXPECT_EQ(back.trace_phases[0].name, "exchange");
  EXPECT_EQ(back.trace_phases[0].critical_rank, 1);
  EXPECT_EQ(back.trace_phases[0].max_s, 0.5);
  EXPECT_EQ(back.trace_phases[0].lambda, 0.5 / 0.375);
  EXPECT_EQ(back.trace_phases[0].margin_s, 0.25);
  EXPECT_EQ(back.trace_phases[0].blocked_s, 0.125);
}

TEST(RunReport, OldFilesWithoutTraceReadAsUntraced) {
  // A report written before the trace section existed: has_trace stays
  // false (so report_diff skips the λ gate) and per-rank phases stay empty.
  const Json j = to_json(sample_report("pre-trace"));
  EXPECT_EQ(j.find("trace"), nullptr);
  const RunReport back = report_from_json(j);
  EXPECT_FALSE(back.has_trace);
  EXPECT_TRUE(back.trace_phases.empty());
  EXPECT_TRUE(back.phases_per_rank.empty());
}

TEST(ReportDiff, FlagsTraceLambdaRegressionInBytesOnlyMode) {
  ReportRegistry before;
  before.add(traced_report("run", 1.2));
  ReportRegistry after;
  after.add(traced_report("run", 1.5));  // skew got worse
  DiffOptions opts;
  opts.bytes_only = true;
  const DiffResult d = diff_registries(before, after, opts);
  EXPECT_TRUE(d.any_regression);
  bool saw_lambda = false;
  for (const PhaseDelta& pd : d.regressions()) {
    if (pd.metric == "trace_lambda_records") saw_lambda = true;
  }
  EXPECT_TRUE(saw_lambda);
}

TEST(ReportDiff, TraceLambdaWithinToleranceAndImprovementPass) {
  ReportRegistry before;
  before.add(traced_report("run", 1.5));
  ReportRegistry after;
  after.add(traced_report("run", 1.5));
  DiffOptions opts;
  opts.bytes_only = true;
  EXPECT_FALSE(diff_registries(before, after, opts).any_regression);

  ReportRegistry better;
  better.add(traced_report("run", 1.1));
  EXPECT_FALSE(diff_registries(before, better, opts).any_regression);
}

TEST(ReportDiff, UntracedBaselineSkipsLambdaGate) {
  // Baseline predates tracing: the λ column must not fabricate a
  // regression from has_trace=false.
  ReportRegistry before;
  before.add(sample_report("run"));
  ReportRegistry after;
  after.add(traced_report("run", 2.0));
  DiffOptions opts;
  opts.bytes_only = true;
  const DiffResult d = diff_registries(before, after, opts);
  for (const PhaseDelta& pd : d.deltas) {
    EXPECT_NE(pd.metric, "trace_lambda_records");
  }
}

TEST(ReportDiff, PrintedSummaryMentionsRegressions) {
  const auto before = registry_with("run", 0.5);
  const auto after = registry_with("run", 1.0);
  const DiffOptions opts;
  const DiffResult d = diff_registries(before, after, opts);
  std::ostringstream os;
  print_diff(os, d, opts);
  EXPECT_NE(os.str().find("REGRESSION"), std::string::npos);
  EXPECT_NE(os.str().find("exchange"), std::string::npos);
}

}  // namespace
}  // namespace sdss::telemetry
