// Unit tests for the SDS-Sort core building blocks: regular sampling,
// global pivot selection (bitonic == gather), SdssReplicated, SdssPartition
// (fast + stable, windowed + full-scan), node-level merging, and the
// exchange machinery with the simulated memory budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/exchange.hpp"
#include "core/node_merge.hpp"
#include "core/partition.hpp"
#include "core/pivots.hpp"
#include "core/replicated.hpp"
#include "core/sampling.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace sdss {
namespace {

using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;

// --- sampling ---------------------------------------------------------------

TEST(Sampling, RegularStride) {
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto s = sample_local_pivots<int>(data, 4);
  ASSERT_EQ(s.keys.size(), 4u);
  // stride = 100/5 = 20: positions 20, 40, 60, 80.
  EXPECT_EQ(s.positions, (std::vector<std::size_t>{20, 40, 60, 80}));
  EXPECT_EQ(s.keys, (std::vector<int>{20, 40, 60, 80}));
}

TEST(Sampling, SmallArrayClamps) {
  std::vector<int> data{5, 6};
  auto s = sample_local_pivots<int>(data, 7);
  ASSERT_EQ(s.keys.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_LT(s.positions[i], 2u);
    EXPECT_TRUE(s.keys[i] == 5 || s.keys[i] == 6);
  }
  EXPECT_TRUE(std::is_sorted(s.keys.begin(), s.keys.end()));
}

TEST(Sampling, EmptyArrayYieldsMaxKeys) {
  std::vector<double> data;
  auto s = sample_local_pivots<double>(data, 3);
  ASSERT_EQ(s.keys.size(), 3u);
  for (double k : s.keys) {
    EXPECT_EQ(k, std::numeric_limits<double>::max());
  }
}

// --- pivot selection ----------------------------------------------------------

TEST(Pivots, BitonicBlocksSortGlobally) {
  Cluster(ClusterConfig{8}).run([](Comm& c) {
    SplitMix64 rng(derive_seed(77, static_cast<std::uint64_t>(c.rank())));
    std::vector<std::uint64_t> block(16);
    for (auto& x : block) x = rng.next_below(1000);
    std::sort(block.begin(), block.end());
    detail::bitonic_sort_blocks(c, block);
    EXPECT_TRUE(std::is_sorted(block.begin(), block.end()));
    // Global order across ranks: my max <= next rank's min.
    auto mins = c.allgather<std::uint64_t>(block.front());
    auto maxs = c.allgather<std::uint64_t>(block.back());
    for (int r = 1; r < c.size(); ++r) {
      EXPECT_LE(maxs[static_cast<std::size_t>(r - 1)],
                mins[static_cast<std::size_t>(r)]);
    }
  });
}

TEST(Pivots, BitonicRejectsNonPowerOfTwo) {
  Cluster(ClusterConfig{3}).run([](Comm& c) {
    std::vector<int> pl(2, c.rank());
    EXPECT_THROW(select_global_pivots<int>(c, pl, PivotSelection::kBitonic),
                 std::invalid_argument);
    c.barrier();
  });
}

TEST(Pivots, BitonicAndGatherAgree) {
  for (int p : {2, 4, 8}) {
    Cluster(ClusterConfig{p}).run([p](Comm& c) {
      // Deterministic sorted local pivots per rank.
      SplitMix64 rng(derive_seed(123, static_cast<std::uint64_t>(c.rank())));
      std::vector<std::uint64_t> pl(static_cast<std::size_t>(p - 1));
      for (auto& x : pl) x = rng.next_below(500);
      std::sort(pl.begin(), pl.end());
      auto a = select_global_pivots<std::uint64_t>(c, pl,
                                                   PivotSelection::kBitonic);
      auto b = select_global_pivots<std::uint64_t>(c, pl,
                                                   PivotSelection::kGather);
      EXPECT_EQ(a, b) << "p=" << p;
      EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    });
  }
}

TEST(Pivots, AutoFallsBackForOddCounts) {
  Cluster(ClusterConfig{6}).run([](Comm& c) {
    std::vector<int> pl(5);
    std::iota(pl.begin(), pl.end(), c.rank() * 5);
    auto piv = select_global_pivots<int>(c, pl, PivotSelection::kAuto);
    EXPECT_EQ(piv.size(), 5u);
    EXPECT_TRUE(std::is_sorted(piv.begin(), piv.end()));
    // Everyone agrees.
    auto all = c.allgatherv<int>(piv);
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(all[i], piv[i % piv.size()]);
    }
  });
}

TEST(Pivots, WeightedSelectionIgnoresWeightlessSentinels) {
  Cluster(ClusterConfig{4}).run([](Comm& c) {
    // Only rank 1 holds data: its samples must dominate the selection.
    std::vector<std::uint64_t> pl;
    std::uint64_t count = 0;
    if (c.rank() == 1) {
      pl = {100, 200, 300};
      count = 4000;
    } else {
      pl = {~0ull, ~0ull, ~0ull};  // sentinel pivots from empty shards
      count = 0;
    }
    auto piv = select_global_pivots_weighted<std::uint64_t>(c, pl, count);
    ASSERT_EQ(piv.size(), 3u);
    EXPECT_EQ(piv[0], 100u);
    EXPECT_EQ(piv[1], 200u);
    EXPECT_EQ(piv[2], 300u);
  });
}

TEST(Pivots, WeightedSelectionOnBalancedInputIsReasonable) {
  Cluster(ClusterConfig{4}).run([](Comm& c) {
    // Rank r samples {r*100+25, r*100+50, r*100+75}: globally the keys tile
    // [25, 375]; weighted selection must pick spread-out pivots.
    std::vector<std::uint64_t> pl{
        static_cast<std::uint64_t>(c.rank()) * 100 + 25,
        static_cast<std::uint64_t>(c.rank()) * 100 + 50,
        static_cast<std::uint64_t>(c.rank()) * 100 + 75};
    auto piv = select_global_pivots_weighted<std::uint64_t>(c, pl, 1000);
    ASSERT_EQ(piv.size(), 3u);
    EXPECT_TRUE(std::is_sorted(piv.begin(), piv.end()));
    EXPECT_LT(piv[0], piv[2]);
    // Agreement across ranks.
    auto all = c.allgatherv<std::uint64_t>(piv);
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(all[i], piv[i % 3]);
    }
  });
}

TEST(Pivots, WeightedSelectionAllEmpty) {
  Cluster(ClusterConfig{3}).run([](Comm& c) {
    std::vector<std::uint64_t> pl(2, ~0ull);
    auto piv = select_global_pivots_weighted<std::uint64_t>(c, pl, 0);
    ASSERT_EQ(piv.size(), 2u);
    EXPECT_EQ(piv[0], ~0ull);
  });
}

TEST(Pivots, SingleRankHasNone) {
  Cluster(ClusterConfig{1}).run([](Comm& c) {
    std::vector<int> pl;
    EXPECT_TRUE(select_global_pivots<int>(c, pl).empty());
  });
}

// --- SdssReplicated ------------------------------------------------------------

TEST(Replicated, NoDuplicates) {
  std::vector<int> pg{1, 3, 5, 7};
  for (std::size_t i = 0; i < pg.size(); ++i) {
    auto info = sdss_replicated<int>(pg, i);
    EXPECT_FALSE(info.replicated);
    EXPECT_EQ(info.run_size, 1u);
    EXPECT_EQ(info.rank_in_run, 0u);
    if (i > 0) {
      ASSERT_TRUE(info.prev_value.has_value());
      EXPECT_EQ(*info.prev_value, pg[i - 1]);
    } else {
      EXPECT_FALSE(info.prev_value.has_value());
    }
  }
}

TEST(Replicated, MiddleRun) {
  std::vector<int> pg{1, 4, 4, 4, 9};
  auto info = sdss_replicated<int>(pg, 2);
  EXPECT_TRUE(info.replicated);
  EXPECT_EQ(info.run_begin, 1u);
  EXPECT_EQ(info.run_size, 3u);
  EXPECT_EQ(info.rank_in_run, 1u);
  ASSERT_TRUE(info.prev_value.has_value());
  EXPECT_EQ(*info.prev_value, 1);
}

TEST(Replicated, RunAtStartHasNoPrev) {
  std::vector<int> pg{2, 2, 5};
  auto info = sdss_replicated<int>(pg, 0);
  EXPECT_TRUE(info.replicated);
  EXPECT_EQ(info.run_size, 2u);
  EXPECT_FALSE(info.prev_value.has_value());
}

TEST(Replicated, AllEqual) {
  std::vector<int> pg{7, 7, 7};
  auto info = sdss_replicated<int>(pg, 2);
  EXPECT_EQ(info.run_begin, 0u);
  EXPECT_EQ(info.run_size, 3u);
  EXPECT_EQ(info.rank_in_run, 2u);
}

// --- SdssPartition ---------------------------------------------------------------

/// Single-rank-free harness: run partition logic on p simulated ranks and
/// return all bounds (gathered) for inspection.
std::vector<std::vector<std::size_t>> run_partition(
    int p, const std::vector<std::vector<std::uint64_t>>& shards,
    const std::vector<std::uint64_t>& pivots, Config cfg) {
  std::vector<std::vector<std::size_t>> result(static_cast<std::size_t>(p));
  std::mutex mu;
  Cluster(ClusterConfig{p}).run([&](Comm& c) {
    auto data = shards[static_cast<std::size_t>(c.rank())];
    std::sort(data.begin(), data.end());
    auto samples = sample_local_pivots<std::uint64_t>(
        data, static_cast<std::size_t>(p - 1));
    auto bounds = sdss_partition<std::uint64_t>(c, data, samples, pivots, cfg);
    std::lock_guard<std::mutex> lk(mu);
    result[static_cast<std::size_t>(c.rank())] = bounds;
  });
  return result;
}

TEST(Partition, UniqueKeysMatchUpperBound) {
  const int p = 4;
  std::vector<std::vector<std::uint64_t>> shards;
  for (int r = 0; r < p; ++r) {
    shards.push_back(workloads::uniform_u64(
        500, derive_seed(9, static_cast<std::uint64_t>(r)), 1u << 20));
  }
  std::vector<std::uint64_t> pivots{1u << 18, 2u << 18, 3u << 18};
  Config cfg;
  auto bounds = run_partition(p, shards, pivots, cfg);
  for (int r = 0; r < p; ++r) {
    auto data = shards[static_cast<std::size_t>(r)];
    std::sort(data.begin(), data.end());
    const auto& b = bounds[static_cast<std::size_t>(r)];
    ASSERT_EQ(b.size(), static_cast<std::size_t>(p + 1));
    EXPECT_EQ(b[0], 0u);
    EXPECT_EQ(b[static_cast<std::size_t>(p)], data.size());
    for (std::size_t d = 0; d < pivots.size(); ++d) {
      const auto expect = static_cast<std::size_t>(
          std::upper_bound(data.begin(), data.end(), pivots[d]) -
          data.begin());
      EXPECT_EQ(b[d + 1], expect) << "rank " << r << " pivot " << d;
    }
  }
}

TEST(Partition, WindowedAndFullSearchAgree) {
  const int p = 8;
  std::vector<std::vector<std::uint64_t>> shards;
  for (int r = 0; r < p; ++r) {
    shards.push_back(workloads::zipf_keys(
        2000, 1.2, derive_seed(31, static_cast<std::uint64_t>(r))));
  }
  // Pivots with duplicates, from a zipf draw.
  std::vector<std::uint64_t> pivots{1, 1, 2, 4, 9, 9, 200};
  Config windowed;
  windowed.local_pivot_partition = true;
  Config full;
  full.local_pivot_partition = false;
  auto a = run_partition(p, shards, pivots, windowed);
  auto b = run_partition(p, shards, pivots, full);
  EXPECT_EQ(a, b);
}

TEST(Partition, FastSkewAwareSplitsDuplicates) {
  const int p = 4;
  // Every shard: 1000 copies of key 5 (plus a few distinct values).
  std::vector<std::vector<std::uint64_t>> shards(
      static_cast<std::size_t>(p));
  for (auto& s : shards) {
    s.assign(1000, 5);
    s.push_back(1);
    s.push_back(9);
  }
  // Pivot run: {5, 5, 5} — ranks 0..2 share the duplicates.
  std::vector<std::uint64_t> pivots{5, 5, 5};
  Config cfg;  // skew_aware on, fast version
  auto bounds = run_partition(p, shards, pivots, cfg);
  for (int r = 0; r < p; ++r) {
    const auto& b = bounds[static_cast<std::size_t>(r)];
    // Destination loads from this shard: each of ranks 0..2 gets ~1/3 of
    // the 5s; rank 3 gets only the key 9.
    const std::size_t d0 = b[1] - b[0];
    const std::size_t d1 = b[2] - b[1];
    const std::size_t d2 = b[3] - b[2];
    const std::size_t d3 = b[4] - b[3];
    EXPECT_NEAR(static_cast<double>(d0), 334.0, 2.0);  // includes key 1
    EXPECT_NEAR(static_cast<double>(d1), 333.0, 2.0);
    EXPECT_NEAR(static_cast<double>(d2), 334.0, 2.0);
    EXPECT_EQ(d3, 1u);  // key 9 only
  }
}

TEST(Partition, SkewAwareOffSendsAllDuplicatesToOneRank) {
  const int p = 4;
  std::vector<std::vector<std::uint64_t>> shards(
      static_cast<std::size_t>(p), std::vector<std::uint64_t>(1000, 5));
  std::vector<std::uint64_t> pivots{5, 5, 5};
  Config cfg;
  cfg.skew_aware = false;
  auto bounds = run_partition(p, shards, pivots, cfg);
  for (int r = 0; r < p; ++r) {
    const auto& b = bounds[static_cast<std::size_t>(r)];
    EXPECT_EQ(b[1] - b[0], 1000u);  // everything to rank 0
    EXPECT_EQ(b[4] - b[1], 0u);
  }
}

TEST(Partition, StableVersionIsRankMajor) {
  const int p = 4;
  // Rank r holds r*100 copies of key 7: global duplicate space = 0 + 100 +
  // 200 + 300 = 600, rs = 3 groups of sa = 200.
  std::vector<std::vector<std::uint64_t>> shards;
  for (int r = 0; r < p; ++r) {
    shards.emplace_back(static_cast<std::size_t>(r) * 100, 7);
  }
  std::vector<std::uint64_t> pivots{7, 7, 7};
  Config cfg;
  cfg.stable = true;
  auto bounds = run_partition(p, shards, pivots, cfg);
  // Global positions: rank1's 7s = [0,100), rank2's = [100,300),
  // rank3's = [300,600). Groups: [0,200) -> dest 0, [200,400) -> dest 1,
  // [400,600) -> dest 2.
  // rank 1 (100 records): all in group 0.
  EXPECT_EQ(bounds[1][1] - bounds[1][0], 100u);
  // rank 2 (200 records): [100,300) -> 100 to dest0, 100 to dest1.
  EXPECT_EQ(bounds[2][1] - bounds[2][0], 100u);
  EXPECT_EQ(bounds[2][2] - bounds[2][1], 100u);
  // rank 3 (300 records): [300,600) -> 100 to dest1, 200 to dest2.
  EXPECT_EQ(bounds[3][1] - bounds[3][0], 0u);
  EXPECT_EQ(bounds[3][2] - bounds[3][1], 100u);
  EXPECT_EQ(bounds[3][3] - bounds[3][2], 200u);
}

TEST(Partition, LoadBoundHoldsOnZipf) {
  // The headline theorem: max load <= ~4N/p on heavily skewed data.
  for (double alpha : {0.7, 1.4, 2.1}) {
    const int p = 8;
    const std::size_t per_rank = 4000;
    std::vector<std::size_t> loads(static_cast<std::size_t>(p), 0);
    std::mutex mu;
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      auto data = workloads::zipf_keys(
          per_rank, alpha,
          derive_seed(55, static_cast<std::uint64_t>(c.rank())));
      std::sort(data.begin(), data.end());
      auto samples = sample_local_pivots<std::uint64_t>(
          data, static_cast<std::size_t>(p - 1));
      auto pivots = select_global_pivots<std::uint64_t>(c, samples.keys);
      Config cfg;
      auto bounds =
          sdss_partition<std::uint64_t>(c, data, samples, pivots, cfg);
      auto plan = plan_exchange(c, bounds, 0);
      std::lock_guard<std::mutex> lk(mu);
      loads[static_cast<std::size_t>(c.rank())] = plan.recv_total;
    });
    const std::size_t total = per_rank * static_cast<std::size_t>(p);
    const std::size_t bound = 4 * total / static_cast<std::size_t>(p);
    for (int r = 0; r < p; ++r) {
      EXPECT_LE(loads[static_cast<std::size_t>(r)], bound)
          << "alpha=" << alpha << " rank=" << r;
    }
  }
}

TEST(Partition, FullScanMatchesBinarySearch) {
  auto data = workloads::zipf_keys(3000, 1.0, 77);
  std::sort(data.begin(), data.end());
  std::vector<std::uint64_t> pivots{1, 3, 3, 10, 40};
  auto scan = full_scan_partition<std::uint64_t>(data, pivots);
  ASSERT_EQ(scan.size(), 7u);
  EXPECT_EQ(scan[0], 0u);
  EXPECT_EQ(scan[6], data.size());
  for (std::size_t d = 0; d < pivots.size(); ++d) {
    const auto expect = static_cast<std::size_t>(
        std::upper_bound(data.begin(), data.end(), pivots[d]) - data.begin());
    EXPECT_EQ(scan[d + 1], expect) << "pivot " << d;
  }
}

// --- node merge ------------------------------------------------------------------

TEST(NodeMerge, LeaderCollectsNodeData) {
  Cluster(ClusterConfig{8, /*cores_per_node=*/4}).run([](Comm& c) {
    auto pair = refine_comm(c);
    EXPECT_EQ(pair.local.size(), 4);
    EXPECT_EQ(pair.leaders.valid(), pair.local.rank() == 0);
    std::vector<std::uint64_t> data = workloads::uniform_u64(
        200, derive_seed(88, static_cast<std::uint64_t>(c.rank())), 1000);
    std::sort(data.begin(), data.end());
    node_merge<std::uint64_t>(pair.local, data, /*stable=*/false);
    if (pair.local.rank() == 0) {
      EXPECT_EQ(data.size(), 800u);
      EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
    } else {
      EXPECT_TRUE(data.empty());
    }
  });
}

TEST(NodeMerge, StablePreservesRankOrder) {
  using Rec = workloads::Tagged<std::uint32_t>;
  Cluster(ClusterConfig{4, /*cores_per_node=*/4}).run([](Comm& c) {
    std::vector<std::uint32_t> keys(300);
    SplitMix64 rng(derive_seed(3, static_cast<std::uint64_t>(c.rank())));
    for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_below(4));
    std::sort(keys.begin(), keys.end());
    auto data = workloads::tag_keys(keys, c.rank());
    auto pair = refine_comm(c);
    node_merge<Rec>(pair.local, data, /*stable=*/true,
                    [](const Rec& r) { return r.key; });
    if (pair.local.rank() == 0) {
      ASSERT_EQ(data.size(), 1200u);
      for (std::size_t i = 1; i < data.size(); ++i) {
        ASSERT_LE(data[i - 1].key, data[i].key);
        if (data[i - 1].key == data[i].key) {
          ASSERT_TRUE(workloads::tagged_before(data[i - 1], data[i]));
        }
      }
    }
  });
}

TEST(NodeMerge, SingleRankNodeIsNoop) {
  Cluster(ClusterConfig{2, /*cores_per_node=*/1}).run([](Comm& c) {
    auto pair = refine_comm(c);
    std::vector<std::uint64_t> data{3, 1, 2};
    std::sort(data.begin(), data.end());
    node_merge<std::uint64_t>(pair.local, data, false);
    EXPECT_EQ(data.size(), 3u);
  });
}

// --- exchange ---------------------------------------------------------------------

TEST(Exchange, PlanRoundTripsCounts) {
  Cluster(ClusterConfig{3}).run([](Comm& c) {
    // Rank r sends r+1 records to every peer.
    const auto p = static_cast<std::size_t>(c.size());
    const auto mine = static_cast<std::size_t>(c.rank()) + 1;
    std::vector<std::size_t> bounds(p + 1, 0);
    for (std::size_t d = 0; d <= p; ++d) bounds[d] = d * mine;
    auto plan = plan_exchange(c, bounds, 0);
    EXPECT_EQ(plan.recv_total, 1u + 2u + 3u);
    for (std::size_t s = 0; s < p; ++s) {
      EXPECT_EQ(plan.rcounts[s], s + 1);
    }
  });
}

TEST(Exchange, MemLimitTriggersOom) {
  auto res = Cluster(ClusterConfig{2}).run_collect([](Comm& c) {
    const std::size_t n = 100;
    std::vector<std::size_t> bounds{0, c.rank() == 0 ? 0u : 0u, n};
    // Both ranks send everything to rank 1.
    plan_exchange(c, bounds, /*mem_limit_records=*/150);
    c.barrier();
  });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.oom);
  EXPECT_EQ(res.failed_rank, 1);
}

TEST(Exchange, SyncExchangeDelivers) {
  Cluster(ClusterConfig{4}).run([](Comm& c) {
    // Rank r's data: 4 blocks of 10, block d tagged with destination d.
    std::vector<std::uint64_t> data;
    for (std::uint64_t d = 0; d < 4; ++d) {
      for (int i = 0; i < 10; ++i) {
        data.push_back(d * 1000 + static_cast<std::uint64_t>(c.rank()));
      }
    }
    std::vector<std::size_t> bounds{0, 10, 20, 30, 40};
    auto plan = plan_exchange(c, bounds, 0);
    auto recv = sync_exchange<std::uint64_t>(c, data, plan);
    ASSERT_EQ(recv.size(), 40u);
    for (std::size_t s = 0; s < 4; ++s) {
      for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(recv[plan.rdispls[s] + i],
                  static_cast<std::uint64_t>(c.rank()) * 1000 + s);
      }
    }
  });
}

TEST(Exchange, OverlapMergeProducesSortedOutput) {
  Cluster(ClusterConfig{6}).run([](Comm& c) {
    auto data = workloads::uniform_u64(
        1200, derive_seed(17, static_cast<std::uint64_t>(c.rank())), 6000);
    std::sort(data.begin(), data.end());
    // Even partition by value range [r*1000, (r+1)*1000).
    std::vector<std::size_t> bounds(7, 0);
    for (std::size_t d = 1; d < 6; ++d) {
      bounds[d] = static_cast<std::size_t>(
          std::lower_bound(data.begin(), data.end(), d * 1000) - data.begin());
    }
    bounds[6] = data.size();
    auto plan = plan_exchange(c, bounds, 0);
    auto out = overlap_exchange_merge<std::uint64_t>(c, data, plan);
    EXPECT_EQ(out.size(), plan.recv_total);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    // Values are in my range.
    if (!out.empty()) {
      EXPECT_GE(out.front(), static_cast<std::uint64_t>(c.rank()) * 1000);
      EXPECT_LT(out.back(), static_cast<std::uint64_t>(c.rank() + 1) * 1000);
    }
  });
}

}  // namespace
}  // namespace sdss
