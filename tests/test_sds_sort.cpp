// End-to-end integration tests of sds_sort: every adaptive path (sync /
// overlapped exchange, merge-all / re-sort ordering, node merging), both
// stability modes, many rank counts and workloads, with invariants checked
// distributedly: global sortedness, multiset preservation, stability, and
// the O(4N/p) load bound on skewed inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "workloads/cosmology.hpp"
#include "workloads/generators.hpp"
#include "workloads/ptf.hpp"
#include "workloads/zipf.hpp"

namespace sdss {
namespace {

using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;

enum class Workload { kUniform, kZipfMild, kZipfHeavy, kAllEqual, kPresorted };

std::vector<std::uint64_t> make_shard(Workload w, std::size_t n, int rank) {
  const std::uint64_t seed =
      derive_seed(1234, static_cast<std::uint64_t>(rank));
  switch (w) {
    case Workload::kUniform:
      return workloads::uniform_u64(n, seed, 1ull << 40);
    case Workload::kZipfMild:
      return workloads::zipf_keys(n, 0.7, seed);
    case Workload::kZipfHeavy:
      return workloads::zipf_keys(n, 2.1, seed);
    case Workload::kAllEqual:
      return std::vector<std::uint64_t>(n, 77);
    case Workload::kPresorted: {
      auto v = workloads::uniform_u64(n, seed, 1ull << 40);
      std::sort(v.begin(), v.end());
      return v;
    }
  }
  return {};
}

struct EndToEndCase {
  int ranks;
  Workload workload;
  bool stable;
  bool overlap;  // force the overlapped exchange path (tau_o high/low)
  std::size_t per_rank;
};

class SdsSortEndToEnd : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(SdsSortEndToEnd, SortsPreservesAndBalances) {
  const auto& pc = GetParam();
  Cluster cluster(ClusterConfig{pc.ranks});
  cluster.run([&](Comm& world) {
    auto shard = make_shard(pc.workload, pc.per_rank, world.rank());
    const auto before = global_checksum<std::uint64_t>(world, shard);

    Config cfg;
    cfg.stable = pc.stable;
    cfg.tau_o = pc.overlap ? 1u << 20 : 0;  // force / forbid overlap
    SortReport rep;
    auto out = sds_sort<std::uint64_t>(world, std::move(shard), cfg, {}, &rep);

    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    const auto after = global_checksum<std::uint64_t>(world, out);
    EXPECT_EQ(before, after) << "multiset not preserved";
    EXPECT_EQ(rep.output_records, out.size());

    // The headline theorem: post-exchange load <= 4N/p (+ small-sample
    // slack at these tiny shard sizes).
    if (pc.ranks > 1) {
      auto lb = measure_load_balance(world, out.size());
      const double bound =
          4.2 * static_cast<double>(lb.total) / pc.ranks + 16;
      EXPECT_LE(static_cast<double>(lb.max_load), bound)
          << "rank load exceeds 4N/p bound";
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SdsSortEndToEnd,
    ::testing::Values(
        EndToEndCase{1, Workload::kUniform, false, false, 2000},
        EndToEndCase{2, Workload::kUniform, false, false, 2000},
        EndToEndCase{4, Workload::kUniform, false, false, 2000},
        EndToEndCase{4, Workload::kUniform, false, true, 2000},
        EndToEndCase{4, Workload::kUniform, true, false, 2000},
        EndToEndCase{8, Workload::kZipfMild, false, false, 2000},
        EndToEndCase{8, Workload::kZipfMild, false, true, 2000},
        EndToEndCase{8, Workload::kZipfMild, true, false, 2000},
        EndToEndCase{8, Workload::kZipfHeavy, false, true, 2000},
        EndToEndCase{8, Workload::kZipfHeavy, true, false, 2000},
        EndToEndCase{4, Workload::kAllEqual, false, false, 1500},
        EndToEndCase{4, Workload::kAllEqual, true, false, 1500},
        EndToEndCase{6, Workload::kPresorted, false, false, 2000},
        EndToEndCase{5, Workload::kZipfHeavy, false, false, 1000},
        EndToEndCase{7, Workload::kUniform, true, false, 1000},
        EndToEndCase{16, Workload::kZipfMild, false, true, 500}));

TEST(SdsSort, EmptyAndTinyShards) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    // Rank 2 holds nothing; others hold a handful.
    std::vector<std::uint64_t> shard;
    if (world.rank() != 2) {
      shard = workloads::uniform_u64(
          5, derive_seed(5, static_cast<std::uint64_t>(world.rank())), 100);
    }
    const auto before = global_checksum<std::uint64_t>(world, shard);
    auto out = sds_sort<std::uint64_t>(world, std::move(shard));
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(world, out)));
  });
}

TEST(SdsSort, AllRanksEmpty) {
  Cluster(ClusterConfig{3}).run([](Comm& world) {
    std::vector<double> shard;
    auto out = sds_sort<double>(world, std::move(shard));
    EXPECT_TRUE(out.empty());
  });
}

TEST(SdsSort, StabilityAcrossRanksOnHeavyDuplicates) {
  using Rec = workloads::Tagged<std::uint32_t>;
  Cluster(ClusterConfig{6}).run([](Comm& world) {
    SplitMix64 rng(derive_seed(99, static_cast<std::uint64_t>(world.rank())));
    std::vector<std::uint32_t> keys(1200);
    for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_below(5));
    auto shard = workloads::tag_keys(keys, world.rank());

    Config cfg;
    cfg.stable = true;
    auto out = sds_sort<Rec>(world, std::move(shard), cfg,
                             [](const Rec& r) { return r.key; });

    // Gather everything and verify total order: by key, ties by
    // (src_rank, src_index) — exactly what stable sorting promises.
    auto all = gather_all<Rec>(world, out);
    ASSERT_EQ(all.size(), 1200u * 6u);
    for (std::size_t i = 1; i < all.size(); ++i) {
      ASSERT_LE(all[i - 1].key, all[i].key);
      if (all[i - 1].key == all[i].key) {
        ASSERT_TRUE(workloads::tagged_before(all[i - 1], all[i]))
            << "stability violated at position " << i;
      }
    }
  });
}

TEST(SdsSort, FastVersionIsNotNecessarilyStableButSorted) {
  using Rec = workloads::Tagged<std::uint32_t>;
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    std::vector<std::uint32_t> keys(800, 3);  // all equal
    auto shard = workloads::tag_keys(keys, world.rank());
    auto out = sds_sort<Rec>(world, std::move(shard), Config{},
                             [](const Rec& r) { return r.key; });
    EXPECT_TRUE((is_globally_sorted<Rec>(
        world, out, [](const Rec& r) { return r.key; })));
    // Fast version still balances all-equal keys across ranks.
    auto lb = measure_load_balance(world, out.size());
    EXPECT_LE(lb.rdfa, 2.0);
  });
}

TEST(SdsSort, ReSortPathViaTauS) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    auto shard = workloads::uniform_u64(
        3000, derive_seed(7, static_cast<std::uint64_t>(world.rank())),
        1u << 20);
    Config cfg;
    cfg.tau_s = 2;  // force the re-sort ordering path
    cfg.tau_o = 0;  // forbid overlap so the ordering decision applies
    SortReport rep;
    auto out = sds_sort<std::uint64_t>(world, std::move(shard), cfg, {}, &rep);
    EXPECT_EQ(rep.ordering, FinalOrdering::kResort);
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
  });
}

TEST(SdsSort, ReportsExchangeMode) {
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    auto mk = [&] {
      return workloads::uniform_u64(
          500, derive_seed(8, static_cast<std::uint64_t>(world.rank())), 1000);
    };
    Config sync_cfg;
    sync_cfg.tau_o = 0;
    SortReport rep;
    sds_sort<std::uint64_t>(world, mk(), sync_cfg, {}, &rep);
    EXPECT_EQ(rep.exchange, ExchangeMode::kSync);
    EXPECT_EQ(rep.ordering, FinalOrdering::kMergeAll);

    Config async_cfg;
    async_cfg.tau_o = 1000;
    sds_sort<std::uint64_t>(world, mk(), async_cfg, {}, &rep);
    EXPECT_EQ(rep.exchange, ExchangeMode::kOverlapped);

    Config stable_cfg;
    stable_cfg.stable = true;
    stable_cfg.tau_o = 1000;  // stable forbids overlap regardless
    sds_sort<std::uint64_t>(world, mk(), stable_cfg, {}, &rep);
    EXPECT_EQ(rep.exchange, ExchangeMode::kSync);
  });
}

TEST(SdsSort, NodeMergePathProducesLeaderOnlyOutput) {
  Cluster(ClusterConfig{8, /*cores_per_node=*/4}).run([](Comm& world) {
    auto shard = workloads::uniform_u64(
        400, derive_seed(13, static_cast<std::uint64_t>(world.rank())),
        1u << 20);
    const auto before = global_checksum<std::uint64_t>(world, shard);
    Config cfg;
    cfg.tau_m_bytes = 1u << 30;  // force node merging
    SortReport rep;
    auto out = sds_sort<std::uint64_t>(world, std::move(shard), cfg, {}, &rep);
    EXPECT_TRUE(rep.node_merged);
    if (world.rank() % 4 != 0) {
      EXPECT_FALSE(rep.active);
      EXPECT_TRUE(out.empty());
    } else {
      EXPECT_TRUE(rep.active);
      EXPECT_FALSE(out.empty());
    }
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(world, out)));
  });
}

TEST(SdsSort, NodeMergeSkippedForLargeMessages) {
  Cluster(ClusterConfig{8, /*cores_per_node=*/4}).run([](Comm& world) {
    auto shard = workloads::uniform_u64(
        4000, derive_seed(14, static_cast<std::uint64_t>(world.rank())),
        1u << 20);
    Config cfg;
    cfg.tau_m_bytes = 8;  // threshold below the actual message size
    SortReport rep;
    auto out = sds_sort<std::uint64_t>(world, std::move(shard), cfg, {}, &rep);
    EXPECT_FALSE(rep.node_merged);
    EXPECT_TRUE(rep.active);
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
  });
}

TEST(SdsSort, StableNodeMergeKeepsGlobalStability) {
  using Rec = workloads::Tagged<std::uint32_t>;
  Cluster(ClusterConfig{8, /*cores_per_node=*/2}).run([](Comm& world) {
    SplitMix64 rng(derive_seed(15, static_cast<std::uint64_t>(world.rank())));
    std::vector<std::uint32_t> keys(300);
    for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_below(3));
    auto shard = workloads::tag_keys(keys, world.rank());
    Config cfg;
    cfg.stable = true;
    cfg.tau_m_bytes = 1u << 30;  // force node merging
    auto out = sds_sort<Rec>(world, std::move(shard), cfg,
                             [](const Rec& r) { return r.key; });
    auto all = gather_all<Rec>(world, out);
    ASSERT_EQ(all.size(), 300u * 8u);
    for (std::size_t i = 1; i < all.size(); ++i) {
      ASSERT_LE(all[i - 1].key, all[i].key);
      if (all[i - 1].key == all[i].key) {
        ASSERT_TRUE(workloads::tagged_before(all[i - 1], all[i]));
      }
    }
  });
}

TEST(SdsSort, MemLimitOnSkewAwareOffReproducesOom) {
  // Ablation: with skew-aware partitioning disabled and a memory budget,
  // all-equal keys crash exactly like the baselines do.
  auto res = Cluster(ClusterConfig{4}).run_collect([](Comm& world) {
    std::vector<std::uint64_t> shard(2000, 42);
    Config cfg;
    cfg.skew_aware = false;
    cfg.mem_limit_records = 4000;  // 2x average: fine if balanced
    sds_sort<std::uint64_t>(world, std::move(shard), cfg);
  });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.oom);

  // Skew-aware on: same budget succeeds.
  auto ok = Cluster(ClusterConfig{4}).run_collect([](Comm& world) {
    std::vector<std::uint64_t> shard(2000, 42);
    Config cfg;
    cfg.mem_limit_records = 4000;
    auto out = sds_sort<std::uint64_t>(world, std::move(shard), cfg);
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(world, out)));
  });
  EXPECT_TRUE(ok.ok) << ok.error;
}

TEST(SdsSort, SortsRealRecordTypes) {
  using workloads::Particle;
  using workloads::PtfRecord;
  Cluster(ClusterConfig{4}).run([](Comm& world) {
    auto particles = workloads::cosmology_particles(
        2000, derive_seed(16, static_cast<std::uint64_t>(world.rank())));
    auto key = [](const Particle& p) { return p.cluster_id; };
    auto sorted = sds_sort<Particle>(world, std::move(particles), {}, key);
    EXPECT_TRUE((is_globally_sorted<Particle>(world, sorted, key)));

    auto ptf = workloads::ptf_records(
        2000, derive_seed(17, static_cast<std::uint64_t>(world.rank())));
    Config stable;
    stable.stable = true;
    auto skey = [](const PtfRecord& r) { return r.rb_score; };
    auto sorted_ptf = sds_sort<PtfRecord>(world, std::move(ptf), stable, skey);
    EXPECT_TRUE((is_globally_sorted<PtfRecord>(world, sorted_ptf, skey)));
  });
}

TEST(SdsSort, LedgerRecordsPhases) {
  Cluster cluster(ClusterConfig{4});
  auto res = cluster.run_collect([](Comm& world) {
    auto shard = workloads::uniform_u64(
        20000, derive_seed(18, static_cast<std::uint64_t>(world.rank())),
        1u << 30);
    sds_sort<std::uint64_t>(world, std::move(shard));
  });
  ASSERT_TRUE(res.ok) << res.error;
  const auto breakdown = res.max_ledger();
  EXPECT_GT(breakdown.seconds(Phase::kOther), 0.0);          // local sort
  EXPECT_GT(breakdown.seconds(Phase::kPivotSelection), 0.0);
  EXPECT_GT(breakdown.seconds(Phase::kExchange), 0.0);
}

}  // namespace
}  // namespace sdss
