// Tests for the workload generators, including the Zipf alpha -> delta
// calibration the paper's Tables 1 and 2 depend on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/stats.hpp"
#include "workloads/cosmology.hpp"
#include "workloads/generators.hpp"
#include "workloads/ptf.hpp"
#include "workloads/zipf.hpp"

namespace sdss::workloads {
namespace {

TEST(Zipf, Deterministic) {
  EXPECT_EQ(zipf_keys(100, 0.7, 42), zipf_keys(100, 0.7, 42));
  EXPECT_NE(zipf_keys(100, 0.7, 42), zipf_keys(100, 0.7, 43));
}

TEST(Zipf, ValuesInUniverse) {
  auto keys = zipf_keys(10000, 1.0, 1, 500);
  for (auto k : keys) {
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 500u);
  }
}

TEST(Zipf, HigherAlphaIsMoreSkewed) {
  const auto low = zipf_keys(50000, 0.4, 9);
  const auto high = zipf_keys(50000, 2.1, 9);
  EXPECT_LT(measure_delta(low), measure_delta(high));
}

struct DeltaCase {
  double alpha;
  double paper_delta;  // Table 2 (and Table 1's alpha 1.4/2.1 rows)
};

class ZipfDeltaCalibration : public ::testing::TestWithParam<DeltaCase> {};

TEST_P(ZipfDeltaCalibration, MatchesPaperTable) {
  const auto& c = GetParam();
  ZipfGenerator gen(c.alpha);
  // Theoretical delta within 35% relative of the paper's reported value.
  EXPECT_NEAR(gen.theoretical_delta(), c.paper_delta, c.paper_delta * 0.35)
      << "alpha=" << c.alpha;
  // Empirical delta close to theoretical.
  const auto keys = zipf_keys(200000, c.alpha, 4242);
  EXPECT_NEAR(measure_delta(keys), gen.theoretical_delta(),
              0.1 * gen.theoretical_delta() + 0.002);
}

INSTANTIATE_TEST_SUITE_P(Table2, ZipfDeltaCalibration,
                         ::testing::Values(DeltaCase{0.4, 0.002},
                                           DeltaCase{0.5, 0.005},
                                           DeltaCase{0.6, 0.010},
                                           DeltaCase{0.7, 0.020},
                                           DeltaCase{0.8, 0.037},
                                           DeltaCase{0.9, 0.064},
                                           DeltaCase{1.4, 0.32},
                                           DeltaCase{2.1, 0.63}));

TEST(Uniform, RangeAndDeterminism) {
  auto v = uniform_doubles(1000, 3, 10.0, 20.0);
  for (double x : v) {
    EXPECT_GE(x, 10.0);
    EXPECT_LT(x, 20.0);
  }
  EXPECT_EQ(v, uniform_doubles(1000, 3, 10.0, 20.0));
  auto u = uniform_u64(1000, 4, 50);
  for (auto x : u) EXPECT_LT(x, 50u);
}

TEST(Gaussian, RoughMoments) {
  auto v = gaussian_doubles(100000, 5, 10.0, 2.0);
  double sum = 0;
  for (double x : v) sum += x;
  const double mean = sum / static_cast<double>(v.size());
  EXPECT_NEAR(mean, 10.0, 0.1);
  double var = 0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(PartiallyOrdered, RunStructure) {
  auto v = partially_ordered_u64(10000, 6, /*runs=*/8, /*disorder=*/0.0);
  // Count descents: should be about runs-1.
  std::size_t descents = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[i - 1]) ++descents;
  }
  EXPECT_LE(descents, 8u);
  auto noisy = partially_ordered_u64(10000, 6, 8, 0.2);
  std::size_t noisy_descents = 0;
  for (std::size_t i = 1; i < noisy.size(); ++i) {
    if (noisy[i] < noisy[i - 1]) ++noisy_descents;
  }
  EXPECT_GT(noisy_descents, descents);
}

TEST(Ptf, DeltaMatchesPaper) {
  const auto recs = ptf_records(200000, 11);
  std::vector<std::uint64_t> keys;
  keys.reserve(recs.size());
  for (const auto& r : recs) {
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(r.rb_score));
    std::memcpy(&bits, &r.rb_score, sizeof(bits));
    keys.push_back(bits);
  }
  // Paper: delta = 28.02% on the real-bogus score.
  EXPECT_NEAR(measure_delta(keys), 0.2802, 0.01);
}

TEST(Ptf, ScoresInRange) {
  for (const auto& r : ptf_records(5000, 12)) {
    EXPECT_GE(r.rb_score, 0.0f);
    EXPECT_LE(r.rb_score, 1.0f);
    EXPECT_GE(r.ra, 0.0f);
    EXPECT_LT(r.ra, 360.0f);
  }
}

TEST(Cosmology, DeltaMatchesPaper) {
  const auto parts = cosmology_particles(300000, 21);
  std::vector<std::uint64_t> keys;
  keys.reserve(parts.size());
  for (const auto& p : parts) keys.push_back(p.cluster_id);
  // Paper: delta = 0.73% on the cluster-ID key.
  EXPECT_NEAR(measure_delta(keys), 0.0073, 0.0025);
}

TEST(Cosmology, ParticlesInBox) {
  CosmologyOptions opt;
  for (const auto& p : cosmology_particles(2000, 22, opt)) {
    EXPECT_GE(p.cluster_id, 1u);
    EXPECT_LE(p.cluster_id, opt.clusters);
    EXPECT_GT(p.x, -0.02f * opt.box);
    EXPECT_LT(p.x, 1.02f * opt.box);
  }
}

TEST(Tagged, WrapsProvenance) {
  std::vector<std::uint64_t> keys{5, 6};
  auto tagged = tag_keys(keys, 3);
  ASSERT_EQ(tagged.size(), 2u);
  EXPECT_EQ(tagged[1].key, 6u);
  EXPECT_EQ(tagged[1].src_rank, 3u);
  EXPECT_EQ(tagged[1].src_index, 1u);
  EXPECT_TRUE(tagged_before(tagged[0], tagged[1]));
}

}  // namespace
}  // namespace sdss::workloads
