// Unit and property tests for the shared-memory sorting library: loser-tree
// k-way merge, natural-run detection, radix sort, skew-aware merge
// partitioning, and SdssLocalSort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <span>
#include <vector>

#include "sortcore/arena.hpp"
#include "sortcore/kernel_stats.hpp"
#include "sortcore/key.hpp"
#include "sortcore/kway_merge.hpp"
#include "sortcore/local_sort.hpp"
#include "sortcore/merge_partition.hpp"
#include "sortcore/radix.hpp"
#include "sortcore/runs.hpp"
#include "sortcore/seq_sort.hpp"
#include "util/rng.hpp"

namespace sdss {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed,
                                       std::uint64_t universe) {
  SplitMix64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(universe);
  return v;
}

template <typename T>
std::vector<std::span<const T>> as_spans(
    const std::vector<std::vector<T>>& chunks) {
  std::vector<std::span<const T>> s;
  s.reserve(chunks.size());
  for (const auto& c : chunks) s.emplace_back(c);
  return s;
}

// --- kway_merge -------------------------------------------------------------

TEST(KwayMerge, TwoRuns) {
  std::vector<std::vector<int>> runs{{1, 3, 5}, {2, 4, 6}};
  auto spans = as_spans(runs);
  auto out = kway_merge_to_vector<int>(spans);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(KwayMerge, EmptyInputs) {
  std::vector<std::vector<int>> runs{};
  auto spans = as_spans(runs);
  EXPECT_TRUE(kway_merge_to_vector<int>(spans).empty());

  std::vector<std::vector<int>> runs2{{}, {}, {}};
  auto spans2 = as_spans(runs2);
  EXPECT_TRUE(kway_merge_to_vector<int>(spans2).empty());
}

TEST(KwayMerge, MixedEmptyAndSingleton) {
  std::vector<std::vector<int>> runs{{}, {5}, {}, {1, 9}, {}};
  auto spans = as_spans(runs);
  auto out = kway_merge_to_vector<int>(spans);
  EXPECT_EQ(out, (std::vector<int>{1, 5, 9}));
}

TEST(KwayMerge, OutputSizeMismatchThrows) {
  std::vector<std::vector<int>> runs{{1, 2}};
  auto spans = as_spans(runs);
  std::vector<int> out(3);
  EXPECT_THROW((kway_merge<int>(spans, out)), std::invalid_argument);
}

TEST(KwayMerge, StableAcrossRuns) {
  // Records (key, origin); origins must appear in run order for equal keys.
  struct Rec {
    int key;
    int origin;
  };
  std::vector<std::vector<Rec>> runs;
  for (int r = 0; r < 5; ++r) {
    std::vector<Rec> run;
    for (int i = 0; i < 20; ++i) run.push_back({i / 4, r});
    runs.push_back(std::move(run));
  }
  std::vector<std::span<const Rec>> spans;
  for (const auto& r : runs) spans.emplace_back(r);
  std::vector<Rec> out(100);
  kway_merge<Rec>(spans, out, [](const Rec& r) { return r.key; });
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].key, out[i].key);
    if (out[i - 1].key == out[i].key) {
      ASSERT_LE(out[i - 1].origin, out[i].origin) << "tie broken out of order";
    }
  }
}

class KwayMergeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KwayMergeSweep, MatchesSortedConcatenation) {
  const std::size_t k = GetParam();
  SplitMix64 rng(k * 7919 + 3);
  std::vector<std::vector<std::uint64_t>> runs(k);
  std::vector<std::uint64_t> expect;
  for (auto& run : runs) {
    const std::size_t len = rng.next_below(200);
    run = random_keys(len, rng.next(), 50);  // heavy duplication
    std::sort(run.begin(), run.end());
    expect.insert(expect.end(), run.begin(), run.end());
  }
  std::sort(expect.begin(), expect.end());
  auto spans = as_spans(runs);
  EXPECT_EQ(kway_merge_to_vector<std::uint64_t>(spans), expect);
}

INSTANTIATE_TEST_SUITE_P(RunCounts, KwayMergeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64));

// --- runs / run-aware sort ---------------------------------------------------

TEST(Runs, CountRuns) {
  std::vector<int> v{1, 2, 3, 2, 3, 4, 1};
  EXPECT_EQ(count_runs<int>(v), 3u);
  EXPECT_EQ(count_runs<int>(std::vector<int>{}), 0u);
  EXPECT_EQ(count_runs<int>(std::vector<int>{5}), 1u);
  std::vector<int> sorted{1, 1, 2, 3};
  EXPECT_EQ(count_runs<int>(sorted), 1u);
}

TEST(Runs, SortedInputIsSingleRunAndO_N) {
  std::vector<int> v(1000);
  std::iota(v.begin(), v.end(), 0);
  auto res = run_aware_sort(v, /*stable=*/false);
  EXPECT_EQ(res.strategy, OrderingStrategy::kAlreadySorted);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(Runs, ReverseSortedBecomesSingleRunWhenUnstable) {
  std::vector<int> v(500);
  std::iota(v.begin(), v.end(), 0);
  std::reverse(v.begin(), v.end());
  auto res = run_aware_sort(v, /*stable=*/false);
  EXPECT_EQ(res.strategy, OrderingStrategy::kAlreadySorted);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(Runs, FewRunsUseMerge) {
  std::vector<int> v;
  for (int r = 0; r < 8; ++r) {
    for (int i = 0; i < 100; ++i) v.push_back(i * 8 + r);
  }
  auto res = run_aware_sort(v, /*stable=*/false);
  EXPECT_EQ(res.strategy, OrderingStrategy::kRunMerge);
  EXPECT_EQ(res.runs, 8u);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(Runs, RandomDataFallsBackToFullSort) {
  auto keys = random_keys(5000, 42, 1u << 30);
  std::vector<std::uint64_t> v(keys.begin(), keys.end());
  auto res = run_aware_sort(v, /*stable=*/false);
  EXPECT_EQ(res.strategy, OrderingStrategy::kFullSort);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(Runs, StablePreservesTieOrder) {
  struct Rec {
    int key;
    int seq;
  };
  // Two ascending runs with overlapping duplicated keys.
  std::vector<Rec> v;
  for (int i = 0; i < 50; ++i) v.push_back({i / 5, i});
  for (int i = 50; i < 100; ++i) v.push_back({(i - 50) / 5, i});
  auto res = run_aware_sort(
      v, /*stable=*/true, [](const Rec& r) { return r.key; });
  EXPECT_EQ(res.strategy, OrderingStrategy::kRunMerge);
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) {
      ASSERT_LT(v[i - 1].seq, v[i].seq);
    }
  }
}

class RunAwareSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(RunAwareSweep, SortsArbitraryRunStructures) {
  const auto [nruns, stable] = GetParam();
  SplitMix64 rng(nruns * 31 + (stable ? 1 : 0));
  std::vector<std::uint64_t> v;
  for (std::size_t r = 0; r < nruns; ++r) {
    auto run = random_keys(20 + rng.next_below(60), rng.next(), 1000);
    std::sort(run.begin(), run.end());
    if (rng.next_below(2) == 0) std::reverse(run.begin(), run.end());
    v.insert(v.end(), run.begin(), run.end());
  }
  std::vector<std::uint64_t> expect = v;
  std::sort(expect.begin(), expect.end());
  run_aware_sort(v, stable);
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Structures, RunAwareSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 20, 100, 400),
                       ::testing::Bool()));

// --- radix sort --------------------------------------------------------------

TEST(RadixSort, SortsUint64) {
  auto v = random_keys(10000, 7, ~0ull);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  radix_sort(v);
  EXPECT_EQ(v, expect);
}

TEST(RadixSort, SortsSmallUniverse) {
  auto v = random_keys(10000, 8, 3);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  radix_sort(v);
  EXPECT_EQ(v, expect);
}

TEST(RadixSort, EmptyAndSingle) {
  std::vector<std::uint64_t> v;
  radix_sort(v);
  EXPECT_TRUE(v.empty());
  v = {9};
  radix_sort(v);
  EXPECT_EQ(v[0], 9u);
}

TEST(RadixSort, StableOnRecords) {
  struct Rec {
    std::uint32_t key;
    std::uint32_t seq;
  };
  SplitMix64 rng(99);
  std::vector<Rec> v;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    v.push_back({static_cast<std::uint32_t>(rng.next_below(16)), i});
  }
  radix_sort(v, [](const Rec& r) { return r.key; });
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) {
      ASSERT_LT(v[i - 1].seq, v[i].seq);
    }
  }
}

TEST(RadixSort, AllEqualKeysPreserveOrder) {
  struct Rec {
    std::uint16_t key;
    int seq;
  };
  std::vector<Rec> v;
  for (int i = 0; i < 100; ++i) v.push_back({7, i});
  radix_sort(v, [](const Rec& r) { return r.key; });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)].seq, i);
}

// --- merge partition ----------------------------------------------------------

std::vector<std::vector<std::uint64_t>> sorted_chunks(std::size_t nchunks,
                                                      std::size_t per_chunk,
                                                      std::uint64_t universe,
                                                      std::uint64_t seed) {
  std::vector<std::vector<std::uint64_t>> chunks(nchunks);
  SplitMix64 rng(seed);
  for (auto& c : chunks) {
    c = random_keys(per_chunk, rng.next(), universe);
    std::sort(c.begin(), c.end());
  }
  return chunks;
}

TEST(MergePartition, CoversEveryElementExactlyOnce) {
  auto chunks = sorted_chunks(4, 1000, 1 << 20, 11);
  auto spans = as_spans(chunks);
  auto plan = plan_merge_partition<std::uint64_t>(spans, 4, false);
  std::size_t total = 0;
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t j = 0; j < 4; ++j) {
      ASSERT_LE(plan.bounds[t][j], plan.bounds[t + 1][j]);
    }
    total += plan.part_size(t);
  }
  EXPECT_EQ(total, 4000u);
}

TEST(MergePartition, PartsAreValueOrdered) {
  auto chunks = sorted_chunks(3, 500, 100, 13);  // heavy duplicates
  auto spans = as_spans(chunks);
  auto plan = plan_merge_partition<std::uint64_t>(spans, 5, false);
  // max key of part t must be <= min key of part t+1.
  std::uint64_t prev_max = 0;
  bool have_prev = false;
  for (std::size_t t = 0; t < 5; ++t) {
    std::uint64_t mn = ~0ull, mx = 0;
    bool any = false;
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t i = plan.bounds[t][j]; i < plan.bounds[t + 1][j]; ++i) {
        mn = std::min(mn, chunks[j][i]);
        mx = std::max(mx, chunks[j][i]);
        any = true;
      }
    }
    if (!any) continue;
    if (have_prev) {
      EXPECT_LE(prev_max, mn);
    }
    prev_max = mx;
    have_prev = true;
  }
}

TEST(MergePartition, SkewAwareBalancesAllEqualKeys) {
  // Every key identical: the adversarial case. Sample-only puts everything
  // in one part; skew-aware splits evenly.
  std::vector<std::vector<std::uint64_t>> chunks(4,
                                                 std::vector<std::uint64_t>(512, 42));
  auto spans = as_spans(chunks);

  // With all pivots equal, rs = parts-1 = 3 consecutive parts share the
  // duplicates (the part after the run holds values > v, of which there are
  // none); each sharing part gets ~total/rs — well inside the O(4N/p) bound.
  auto skew = plan_merge_partition<std::uint64_t>(
      spans, 4, false, MergePartitionMethod::kSkewAware);
  auto sizes = skew.part_sizes();
  const std::size_t bound = (2048 + 2) / 3 + 4;  // ceil(total/rs) + rounding
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_LE(sizes[t], bound) << "part " << t;
  }
  EXPECT_EQ(sizes[0] + sizes[1] + sizes[2] + sizes[3], 2048u);

  auto plain = plan_merge_partition<std::uint64_t>(
      spans, 4, false, MergePartitionMethod::kSampleOnly);
  auto plain_sizes = plain.part_sizes();
  EXPECT_EQ(*std::max_element(plain_sizes.begin(), plain_sizes.end()), 2048u);
}

TEST(MergePartition, SkewAwareBoundsZipfLikeLoad) {
  // 60% of all records share one key; parts must stay within ~2x average.
  std::vector<std::vector<std::uint64_t>> chunks(8);
  SplitMix64 rng(5);
  for (auto& c : chunks) {
    for (int i = 0; i < 1000; ++i) {
      c.push_back(rng.next_below(10) < 6 ? 500u : rng.next_below(1000));
    }
    std::sort(c.begin(), c.end());
  }
  auto spans = as_spans(chunks);
  auto plan = plan_merge_partition<std::uint64_t>(spans, 8, false);
  const auto sizes = plan.part_sizes();
  const std::size_t avg = 8000 / 8;
  for (std::size_t t = 0; t < sizes.size(); ++t) {
    EXPECT_LE(sizes[t], 2 * avg) << "part " << t << " overloaded";
  }
}

TEST(MergePartition, StableSplitIsChunkMajor) {
  // All-equal keys, stable: part boundaries must take chunks in order —
  // part 0 = all of chunk 0 (and possibly a prefix of chunk 1), etc.
  std::vector<std::vector<std::uint64_t>> chunks(4,
                                                 std::vector<std::uint64_t>(100, 7));
  auto spans = as_spans(chunks);
  auto plan = plan_merge_partition<std::uint64_t>(
      spans, 4, /*stable=*/true, MergePartitionMethod::kSkewAware);
  // rs = 3 parts share the 400 duplicates in groups of sa = ceil(400/3) =
  // 134, chunk-major: part 0 = chunk 0 (100) + 34 of chunk 1, part 1 = rest
  // of chunk 1 + prefix of chunk 2, ... and part 3 (values > 7) is empty.
  EXPECT_EQ(plan.part_size(0), 134u);
  EXPECT_EQ(plan.part_size(1), 134u);
  EXPECT_EQ(plan.part_size(2), 132u);
  EXPECT_EQ(plan.part_size(3), 0u);
  EXPECT_EQ(plan.bounds[1][0], 100u);  // all of chunk 0 in part 0
  EXPECT_EQ(plan.bounds[1][1], 34u);   // plus a prefix of chunk 1
  EXPECT_EQ(plan.bounds[1][2], 0u);
  EXPECT_EQ(plan.bounds[1][3], 0u);
}

TEST(MergePartition, SinglePartAndEmptyChunks) {
  std::vector<std::vector<std::uint64_t>> chunks{{}, {1, 2}, {}};
  auto spans = as_spans(chunks);
  auto plan = plan_merge_partition<std::uint64_t>(spans, 1, false);
  EXPECT_EQ(plan.part_size(0), 2u);

  std::vector<std::vector<std::uint64_t>> empties{{}, {}};
  auto espans = as_spans(empties);
  auto eplan = plan_merge_partition<std::uint64_t>(espans, 3, false);
  for (std::size_t t = 0; t < 3; ++t) EXPECT_EQ(eplan.part_size(t), 0u);
}

// --- parallel merge + local sort ----------------------------------------------

TEST(ParallelMerge, MatchesSerialMerge) {
  auto chunks = sorted_chunks(6, 800, 64, 17);
  auto spans = as_spans(chunks);
  std::vector<std::uint64_t> expect;
  for (const auto& c : chunks) expect.insert(expect.end(), c.begin(), c.end());
  std::sort(expect.begin(), expect.end());
  std::vector<std::uint64_t> out(expect.size());
  parallel_merge_chunks<std::uint64_t>(spans, out, 4, false,
                                       MergePartitionMethod::kSkewAware);
  EXPECT_EQ(out, expect);
}

TEST(ParallelMerge, StableAcrossChunks) {
  struct Rec {
    std::uint32_t key;
    std::uint32_t chunk;
    std::uint32_t pos;
  };
  std::vector<std::vector<Rec>> chunks(5);
  SplitMix64 rng(23);
  for (std::uint32_t c = 0; c < 5; ++c) {
    for (std::uint32_t i = 0; i < 400; ++i) {
      chunks[c].push_back({static_cast<std::uint32_t>(rng.next_below(4)), c, i});
    }
    std::stable_sort(chunks[c].begin(), chunks[c].end(),
                     [](const Rec& a, const Rec& b) { return a.key < b.key; });
  }
  std::vector<std::span<const Rec>> spans;
  for (const auto& c : chunks) spans.emplace_back(c);
  std::vector<Rec> out(2000);
  parallel_merge_chunks<Rec>(spans, out, 5, /*stable=*/true,
                             MergePartitionMethod::kSkewAware,
                             [](const Rec& r) { return r.key; });
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].key, out[i].key);
    if (out[i - 1].key == out[i].key) {
      // Stability order: (chunk, pos) lexicographic.
      ASSERT_TRUE(out[i - 1].chunk < out[i].chunk ||
                  (out[i - 1].chunk == out[i].chunk &&
                   out[i - 1].pos < out[i].pos))
          << "stability violated at " << i;
    }
  }
}

struct LocalSortCase {
  std::size_t n;
  int threads;
  bool stable;
  std::uint64_t universe;
};

class LocalSortSweep : public ::testing::TestWithParam<LocalSortCase> {};

TEST_P(LocalSortSweep, SortsAndPreservesMultiset) {
  const auto& pc = GetParam();
  auto v = random_keys(pc.n, pc.n * 13 + pc.universe, pc.universe);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  LocalSortConfig cfg;
  cfg.threads = pc.threads;
  cfg.stable = pc.stable;
  local_sort(v, cfg);
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LocalSortSweep,
    ::testing::Values(LocalSortCase{0, 4, false, 100},
                      LocalSortCase{1, 4, false, 100},
                      LocalSortCase{100, 1, false, 10},
                      LocalSortCase{10000, 1, false, 1u << 30},
                      LocalSortCase{10000, 2, false, 1u << 30},
                      LocalSortCase{10000, 4, false, 5},   // extreme skew
                      LocalSortCase{10000, 8, false, 1u << 30},
                      LocalSortCase{10000, 4, true, 100},
                      LocalSortCase{50000, 4, true, 3},
                      LocalSortCase{50000, 6, false, 1000}));

TEST(LocalSort, StablePreservesInputOrderOfDuplicates) {
  struct Rec {
    std::uint32_t key;
    std::uint32_t seq;
  };
  SplitMix64 rng(31);
  std::vector<Rec> v;
  for (std::uint32_t i = 0; i < 30000; ++i) {
    v.push_back({static_cast<std::uint32_t>(rng.next_below(8)), i});
  }
  LocalSortConfig cfg;
  cfg.threads = 4;
  cfg.stable = true;
  local_sort(v, cfg, [](const Rec& r) { return r.key; });
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) {
      ASSERT_LT(v[i - 1].seq, v[i].seq);
    }
  }
}

TEST(LocalSort, SortsFloatKeysViaProjection) {
  struct Particle {
    float score;
    std::uint64_t id;
  };
  SplitMix64 rng(77);
  std::vector<Particle> v;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    v.push_back({static_cast<float>(rng.next_double()), i});
  }
  LocalSortConfig cfg;
  cfg.threads = 4;
  local_sort(v, cfg, [](const Particle& p) { return p.score; });
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].score, v[i].score);
  }
}

// --- ScratchArena -----------------------------------------------------------

TEST(ScratchArena, MarkRewindReusesMemory) {
  ScratchArena arena;
  const auto m = arena.mark();
  auto a = arena.acquire<std::uint64_t>(100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_GE(arena.used(), 100 * sizeof(std::uint64_t));
  std::uint64_t* first = a.data();
  arena.rewind(m);
  EXPECT_EQ(arena.used(), 0u);
  auto b = arena.acquire<std::uint64_t>(100);
  EXPECT_EQ(b.data(), first);  // same storage handed back
}

TEST(ScratchArena, GrowthKeepsLiveSpansValid) {
  ScratchArena arena;
  auto a = arena.acquire<std::uint64_t>(16);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 1000 + i;
  // Force growth well past the first block: the arena must chain new blocks,
  // never move the bytes `a` points into.
  for (int round = 0; round < 8; ++round) {
    auto big = arena.acquire<std::uint64_t>(1u << (10 + round));
    std::fill(big.begin(), big.end(), std::uint64_t{0xDEAD});
  }
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], 1000 + i);
}

TEST(ScratchArena, SteadyStateDoesNotAllocate) {
  ScratchArena arena;
  // Warm up with the workload's shape, then rewind fully (which coalesces).
  {
    const auto m = arena.mark();
    arena.acquire<std::uint64_t>(5000);
    arena.acquire<std::uint32_t>(3000);
    arena.rewind(m);
  }
  const std::uint64_t allocs_before =
      kernel_counters().heap_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 50; ++round) {
    const auto m = arena.mark();
    arena.acquire<std::uint64_t>(5000);
    arena.acquire<std::uint32_t>(3000);
    arena.rewind(m);
  }
  const std::uint64_t allocs_after =
      kernel_counters().heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(allocs_after, allocs_before);
}

TEST(ScratchArena, NestedScopesStack) {
  ScratchArena arena;
  ArenaScope outer(arena);
  auto a = outer.acquire<std::uint32_t>(10);
  a[0] = 7;
  const std::size_t used_outer = arena.used();
  {
    ArenaScope inner(arena);
    inner.acquire<std::uint32_t>(1000);
    EXPECT_GT(arena.used(), used_outer);
  }
  EXPECT_EQ(arena.used(), used_outer);
  EXPECT_EQ(a[0], 7u);
  EXPECT_GE(arena.high_water(), used_outer + 1000 * sizeof(std::uint32_t));
}

// --- span-based radix vs vector API ----------------------------------------

TEST(RadixSpan, MatchesVectorApiOnRandomKeys) {
  auto expect = random_keys(30000, 991, ~std::uint64_t{0});
  std::vector<std::uint64_t> spanned = expect;
  radix_sort(expect);  // vector API (arena-backed wrapper)
  std::vector<std::uint64_t> scratch(spanned.size());
  radix_sort(std::span<std::uint64_t>(spanned),
             std::span<std::uint64_t>(scratch));
  EXPECT_EQ(spanned, expect);
}

TEST(RadixSpan, MatchesVectorApiOnAllEqualKeys) {
  std::vector<std::uint64_t> expect(10000, 42);
  std::vector<std::uint64_t> spanned = expect;
  radix_sort(expect);
  std::vector<std::uint64_t> scratch(spanned.size());
  radix_sort(std::span<std::uint64_t>(spanned),
             std::span<std::uint64_t>(scratch));
  EXPECT_EQ(spanned, expect);
}

TEST(RadixSpan, MatchesVectorApiOnAlreadySorted) {
  std::vector<std::uint64_t> expect(10000);
  for (std::size_t i = 0; i < expect.size(); ++i) expect[i] = i * 3;
  std::vector<std::uint64_t> spanned = expect;
  radix_sort(expect);
  std::vector<std::uint64_t> scratch(spanned.size());
  radix_sort(std::span<std::uint64_t>(spanned),
             std::span<std::uint64_t>(scratch));
  EXPECT_EQ(spanned, expect);
}

TEST(RadixSpan, UndersizedScratchThrows) {
  std::vector<std::uint64_t> v = random_keys(100, 5, 1000);
  std::vector<std::uint64_t> scratch(50);
  EXPECT_THROW(radix_sort(std::span<std::uint64_t>(v),
                          std::span<std::uint64_t>(scratch)),
               std::invalid_argument);
}

TEST(RadixParallel, MatchesSequentialRadix) {
  par::ThreadPool pool(3);
  auto expect = random_keys(100000, 313, ~std::uint64_t{0});
  std::vector<std::uint64_t> parallel = expect;
  radix_sort(expect);
  std::vector<std::uint64_t> scratch(parallel.size());
  radix_sort_parallel(std::span<std::uint64_t>(parallel),
                      std::span<std::uint64_t>(scratch), pool);
  EXPECT_EQ(parallel, expect);
}

TEST(RadixParallel, StableOnRecords) {
  struct Rec {
    std::uint16_t key;
    std::uint32_t seq;
  };
  par::ThreadPool pool(3);
  SplitMix64 rng(17);
  std::vector<Rec> v;
  for (std::uint32_t i = 0; i < 60000; ++i) {
    v.push_back({static_cast<std::uint16_t>(rng.next_below(64)), i});
  }
  std::vector<Rec> scratch(v.size());
  radix_sort_parallel(std::span<Rec>(v), std::span<Rec>(scratch), pool,
                      [](const Rec& r) { return r.key; });
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) {
      ASSERT_LT(v[i - 1].seq, v[i].seq);
    }
  }
}

// --- galloping merge: stability + correctness on duplicate-heavy runs -------

TEST(KwayMergeGallop, StableOnDuplicateHeavyRuns) {
  // Long stretches of equal keys inside and across 5 runs drive the drain
  // loop through the galloping bulk-copy path; every element carries its
  // (run, position) origin so stability violations are pinpointed exactly.
  struct Rec {
    std::uint32_t key;
    std::uint32_t run;
    std::uint32_t pos;
  };
  constexpr std::size_t kRuns = 5;
  SplitMix64 rng(271);
  std::vector<std::vector<Rec>> runs(kRuns);
  for (std::uint32_t r = 0; r < kRuns; ++r) {
    std::uint32_t key = 0;
    std::uint32_t pos = 0;
    while (runs[r].size() < 4000) {
      // Each run advances through keys 0..~40 in long duplicate stretches of
      // varying length, so runs repeatedly tie with each other.
      const std::size_t stretch = 1 + rng.next_below(200);
      for (std::size_t s = 0; s < stretch; ++s) {
        runs[r].push_back({key, r, pos++});
      }
      key += static_cast<std::uint32_t>(rng.next_below(3));
    }
  }
  auto spans = as_spans(runs);
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  std::vector<Rec> out(total);
  kway_merge<Rec>(spans, out, [](const Rec& r) { return r.key; });

  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].key, out[i].key);
    if (out[i - 1].key == out[i].key) {
      // Stable across runs: lower run index first; within a run, original
      // position order.
      ASSERT_LE(out[i - 1].run, out[i].run);
      if (out[i - 1].run == out[i].run) {
        ASSERT_LT(out[i - 1].pos, out[i].pos);
      }
    }
  }
}

TEST(KwayMergeGallop, DisjointRangesMatchConcatenation) {
  // Fully disjoint key ranges: the gallop should drain each run in a few
  // bulk copies; the result must equal the runs concatenated in key order.
  std::vector<std::vector<std::uint64_t>> runs(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::uint64_t i = 0; i < 5000; ++i) {
      runs[r].push_back(r * 1000000 + i);
    }
  }
  // Feed them in shuffled order (merge input order != key order).
  std::vector<std::vector<std::uint64_t>> shuffled{runs[2], runs[0], runs[3],
                                                   runs[1]};
  auto spans = as_spans(shuffled);
  std::vector<std::uint64_t> out(20000);
  kway_merge<std::uint64_t>(spans, out);
  std::vector<std::uint64_t> expect;
  for (const auto& r : runs) {
    expect.insert(expect.end(), r.begin(), r.end());
  }
  EXPECT_EQ(out, expect);
}

TEST(KwayMergeGallop, RepeatedMergesReuseArena) {
  // After a warm-up call, further identically-shaped merges must perform
  // zero heap allocations (satellite: live/tree/cursor tables live in the
  // arena, not in per-call vectors).
  std::vector<std::vector<std::uint64_t>> runs(6);
  SplitMix64 rng(99);
  for (auto& r : runs) {
    r = random_keys(2000, rng.next(), 1000);
    std::sort(r.begin(), r.end());
  }
  auto spans = as_spans(runs);
  std::vector<std::uint64_t> out(12000);
  kway_merge<std::uint64_t>(spans, out);  // warm-up: arena may grow
  const std::uint64_t allocs_before =
      kernel_counters().heap_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    kway_merge<std::uint64_t>(spans, out);
  }
  const std::uint64_t allocs_after =
      kernel_counters().heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(allocs_after, allocs_before);
}

// --- run_aware_sort span API ------------------------------------------------

TEST(Runs, SpanApiMatchesVectorApi) {
  SplitMix64 rng(1234);
  std::vector<std::uint64_t> expect;
  for (int run = 0; run < 10; ++run) {
    std::uint64_t v = rng.next_below(100);
    for (int i = 0; i < 500; ++i) {
      expect.push_back(v);
      v += rng.next_below(5);
    }
  }
  std::vector<std::uint64_t> spanned = expect;
  run_aware_sort(expect, /*stable=*/false);
  std::vector<std::uint64_t> scratch(spanned.size());
  const RunAwareResult res =
      run_aware_sort(std::span<std::uint64_t>(spanned),
                     std::span<std::uint64_t>(scratch), /*stable=*/false);
  EXPECT_EQ(res.strategy, OrderingStrategy::kRunMerge);
  EXPECT_EQ(spanned, expect);
}

}  // namespace
}  // namespace sdss
