// Spill-to-disk out-of-core path: SpillPool run-file round-trips, checksum
// verification, the budget-bounded external k-way merge (correctness,
// stability, multi-pass), the driver's MemoryPolicy::kSpill degradation
// (including the node-merge drain), OOM accounting via check_mem_budget, and
// the kSpillIoError failure taxonomy under the fiber scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "sim/cluster.hpp"
#include "sortcore/spill.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace sdss {
namespace {

using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;
using sim::FailureClass;
using sim::RunResult;

// --- SpillPool: framed run files -------------------------------------------

TEST(SpillPool, RoundTripsFramesByteForByte) {
  SpillConfig cfg;
  cfg.frame_records = 64;
  SpillPool pool(cfg);
  std::vector<std::uint64_t> data(200);
  std::iota(data.begin(), data.end(), 1000u);

  const std::size_t run = pool.begin_run();
  for (std::size_t off = 0; off < data.size(); off += 64) {
    const std::size_t n = std::min<std::size_t>(64, data.size() - off);
    pool.append_frame(run, data.data() + off, n * sizeof(std::uint64_t));
  }
  pool.end_run(run);
  EXPECT_EQ(pool.stats().runs_written, 1u);
  EXPECT_EQ(pool.stats().frames_written, 4u);  // 64+64+64+8
  EXPECT_EQ(pool.stats().bytes_spilled, data.size() * sizeof(std::uint64_t));

  pool.open_run(run);
  std::vector<std::uint64_t> back;
  std::vector<std::uint64_t> buf(64);
  for (;;) {
    const std::size_t b =
        pool.read_frame(run, buf.data(), buf.size() * sizeof(std::uint64_t));
    if (b == 0) break;
    back.insert(back.end(), buf.begin(),
                buf.begin() + static_cast<std::ptrdiff_t>(b / 8));
  }
  EXPECT_EQ(back, data);
  EXPECT_EQ(pool.stats().bytes_reloaded, pool.stats().bytes_spilled);
  pool.release_run(run);
}

TEST(SpillPool, SpillRunHelperAndCursor) {
  SpillConfig cfg;
  cfg.frame_records = 16;
  SpillPool pool(cfg);
  std::vector<std::uint64_t> data(100);
  std::iota(data.begin(), data.end(), 0u);
  const std::size_t run =
      spill_run<std::uint64_t>(pool, std::span<const std::uint64_t>(data));
  std::vector<std::uint64_t> back;
  SpillRunCursor<std::uint64_t> cur(pool, run);
  for (std::span<const std::uint64_t> f = cur.next(); !f.empty();
       f = cur.next()) {
    back.insert(back.end(), f.begin(), f.end());
  }
  EXPECT_EQ(back, data);
}

// A deterministic stand-in for the simulator's chaos hook: counts ops
// locally and corrupts the write issued as op `corrupt_at`.
struct CorruptHook final : SpillChaosHook {
  std::uint64_t next = 0;
  std::uint64_t corrupt_at = ~std::uint64_t{0};
  std::uint64_t before_op(const char* /*op*/) override { return next++; }
  bool corrupt_write(std::uint64_t k) override { return k == corrupt_at; }
};

TEST(SpillPool, ChecksumCatchesCorruptedFrame) {
  CorruptHook hook;
  hook.corrupt_at = 1;  // second frame written
  SpillConfig cfg;
  cfg.frame_records = 32;
  cfg.rank = 7;
  SpillPool pool(cfg, &hook);
  std::vector<std::uint64_t> data(96, 5);
  const std::size_t run =
      spill_run<std::uint64_t>(pool, std::span<const std::uint64_t>(data));
  pool.open_run(run);
  std::vector<std::uint64_t> buf(32);
  // Frame 0 is intact; frame 1 must fail checksum verification.
  EXPECT_GT(pool.read_frame(run, buf.data(), sizeof(std::uint64_t) * 32), 0u);
  try {
    pool.read_frame(run, buf.data(), sizeof(std::uint64_t) * 32);
    FAIL() << "corrupted frame read back without a checksum error";
  } catch (const SpillIoError& e) {
    EXPECT_EQ(e.rank(), 7);
    EXPECT_STREQ(e.op().c_str(), "spill-read");
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

// --- external k-way merge ---------------------------------------------------

struct Rec {
  std::uint64_t key;
  std::uint64_t tag;  ///< origin marker for stability checks
};
struct RecKey {
  std::uint64_t operator()(const Rec& r) const { return r.key; }
};

TEST(ExternalMerge, SortsAndKeepsRunOrderStability) {
  SpillConfig cfg;
  cfg.frame_records = 8;
  SpillPool pool(cfg);
  // Three sorted runs full of duplicate keys; tag encodes (run, position) so
  // the stable order — run id first, then position — is checkable.
  std::vector<std::size_t> runs;
  std::vector<Rec> expect;
  for (std::uint64_t r = 0; r < 3; ++r) {
    std::vector<Rec> v;
    for (std::uint64_t i = 0; i < 50; ++i) {
      v.push_back(Rec{i / 10, r * 1000 + i});
    }
    runs.push_back(spill_run<Rec>(pool, std::span<const Rec>(v)));
    expect.insert(expect.end(), v.begin(), v.end());
  }
  std::stable_sort(expect.begin(), expect.end(),
                   [](const Rec& a, const Rec& b) { return a.key < b.key; });
  const std::vector<Rec> out =
      external_kway_merge<Rec, RecKey>(pool, runs, /*budget=*/0);
  ASSERT_EQ(out.size(), expect.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key, expect[i].key) << i;
    EXPECT_EQ(out[i].tag, expect[i].tag) << i;
  }
  EXPECT_EQ(pool.stats().merge_passes, 1u);
}

TEST(ExternalMerge, MultiPassUnderTightBudgetStaysStableAndBounded) {
  SpillConfig cfg;
  cfg.frame_records = 16;
  SpillPool pool(cfg);
  // 20 runs but a budget that only admits a fan-in of 64/16 - 1 = 3 open
  // cursors: the merge needs intermediate passes.
  const std::size_t budget = 64;
  std::vector<std::size_t> runs;
  std::vector<Rec> expect;
  std::uint64_t tag = 0;
  for (std::uint64_t r = 0; r < 20; ++r) {
    std::vector<Rec> v;
    for (std::uint64_t i = 0; i < 37; ++i) {
      v.push_back(Rec{(i * 7 + r) % 13, tag++});
    }
    std::stable_sort(v.begin(), v.end(),
                     [](const Rec& a, const Rec& b) { return a.key < b.key; });
    runs.push_back(spill_run<Rec>(pool, std::span<const Rec>(v)));
    expect.insert(expect.end(), v.begin(), v.end());
  }
  std::stable_sort(expect.begin(), expect.end(),
                   [](const Rec& a, const Rec& b) { return a.key < b.key; });
  const std::vector<Rec> out =
      external_kway_merge<Rec, RecKey>(pool, runs, budget);
  ASSERT_EQ(out.size(), expect.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key, expect[i].key) << i;
    EXPECT_EQ(out[i].tag, expect[i].tag) << i;
  }
  EXPECT_GT(pool.stats().merge_passes, 1u);
  // The budget bounds *working* memory: open cursor frames + staging.
  EXPECT_LE(pool.stats().peak_resident_records, budget);
  EXPECT_GT(pool.stats().bytes_reloaded, pool.stats().bytes_spilled / 2);
}

// --- util: unified OOM accounting -------------------------------------------

TEST(CheckMemBudget, ThrowsPhaseTaggedOomOnlyWhenOverLimit) {
  EXPECT_NO_THROW(check_mem_budget(0, 100, 0));      // 0 = unlimited
  EXPECT_NO_THROW(check_mem_budget(0, 100, 100));    // at the limit is fine
  try {
    check_mem_budget(3, 101, 100, "merge");
    FAIL() << "over-limit did not throw";
  } catch (const SimOomError& e) {
    EXPECT_EQ(e.rank(), 3);
    EXPECT_EQ(e.phase(), "merge");
    const std::string what = e.what();
    EXPECT_NE(what.find("during merge"), std::string::npos) << what;
    EXPECT_NE(what.find("simulated out-of-memory on rank 3"),
              std::string::npos)
        << what;
  }
}

// --- the driver under MemoryPolicy::kSpill ----------------------------------

constexpr int kRanks = 16;
constexpr std::size_t kPerRank = 1500;

std::vector<Rec> rec_shard(int rank) {
  const auto keys = workloads::zipf_keys(
      kPerRank, 1.2, derive_seed(7001, static_cast<std::uint64_t>(rank)));
  std::vector<Rec> v(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    // Rank-major unique tags: the stable output must carry them in order.
    v[i] = Rec{keys[i], static_cast<std::uint64_t>(rank) * kPerRank + i};
  }
  return v;
}

/// Run sds_sort over the Rec workload and collect every rank's output.
RunResult run_rec_sort(const Config& cfg, std::vector<std::vector<Rec>>* outs,
                       std::vector<SortReport>* reports = nullptr,
                       int ranks = kRanks, int cores_per_node = 1) {
  outs->assign(static_cast<std::size_t>(ranks), {});
  if (reports != nullptr) {
    reports->assign(static_cast<std::size_t>(ranks), {});
  }
  Cluster cluster(ClusterConfig{ranks, cores_per_node});
  return cluster.run_collect([&, cfg](Comm& w) {
    SortReport rep;
    auto out = sds_sort<Rec, RecKey>(w, rec_shard(w.rank()), cfg, {}, &rep);
    (*outs)[static_cast<std::size_t>(w.rank())] = std::move(out);
    if (reports != nullptr) {
      (*reports)[static_cast<std::size_t>(w.rank())] = rep;
    }
  });
}

TEST(SpillSort, MatchesInCoreStableSortExactly) {
  // Reference: unlimited in-core stable sort.
  Config ref_cfg;
  ref_cfg.stable = true;
  std::vector<std::vector<Rec>> ref;
  const RunResult ref_res = run_rec_sort(ref_cfg, &ref);
  ASSERT_TRUE(ref_res.ok) << ref_res.error;

  // Same sort under a budget below the average receive volume: strict mode
  // would OOM (proved below); spill mode must complete with byte-identical
  // per-rank output.
  Config cfg = ref_cfg;
  cfg.mem_limit_records = kPerRank / 2;
  cfg.memory_policy = MemoryPolicy::kSpill;
  cfg.spill_frame_records = 128;
  std::vector<std::vector<Rec>> out;
  std::vector<SortReport> reports;
  const RunResult res = run_rec_sort(cfg, &out, &reports);
  ASSERT_TRUE(res.ok) << res.error;

  bool any_spilled = false;
  for (int r = 0; r < kRanks; ++r) {
    const auto i = static_cast<std::size_t>(r);
    ASSERT_EQ(out[i].size(), ref[i].size()) << "rank " << r;
    for (std::size_t j = 0; j < out[i].size(); ++j) {
      ASSERT_EQ(out[i][j].key, ref[i][j].key) << "rank " << r << " pos " << j;
      ASSERT_EQ(out[i][j].tag, ref[i][j].tag) << "rank " << r << " pos " << j;
    }
    if (reports[i].spilled) {
      any_spilled = true;
      EXPECT_EQ(reports[i].exchange, ExchangeMode::kSpill);
      EXPECT_EQ(reports[i].ordering, FinalOrdering::kExternalMerge);
      EXPECT_GT(reports[i].spill.runs_written, 0u);
      EXPECT_GT(reports[i].spill.bytes_spilled, 0u);
      EXPECT_EQ(reports[i].spill.bytes_reloaded,
                reports[i].spill.bytes_spilled);
      EXPECT_GE(reports[i].spill.merge_passes, 1u);
    }
  }
  EXPECT_TRUE(any_spilled);

  // Strict mode at the same budget OOMs in the exchange — the default
  // semantics are untouched by the spill machinery.
  Config strict = cfg;
  strict.memory_policy = MemoryPolicy::kStrict;
  std::vector<std::vector<Rec>> dummy;
  const RunResult oom = run_rec_sort(strict, &dummy);
  ASSERT_FALSE(oom.ok);
  EXPECT_EQ(oom.failure, FailureClass::kOom);
  EXPECT_EQ(oom.failure_detail, "exchange");
  EXPECT_TRUE(oom.oom);
}

TEST(SpillSort, NonStableSpillOutputMatchesStableReferenceKeys) {
  // The spill path is stable by construction even when stability wasn't
  // requested; keys must still match the in-core non-stable run's.
  Config cfg;
  cfg.mem_limit_records = kPerRank / 2;
  cfg.memory_policy = MemoryPolicy::kSpill;
  cfg.spill_frame_records = 64;
  std::vector<std::vector<Rec>> out;
  const RunResult res = run_rec_sort(cfg, &out);
  ASSERT_TRUE(res.ok) << res.error;

  Config ref_cfg;
  std::vector<std::vector<Rec>> ref;
  ASSERT_TRUE(run_rec_sort(ref_cfg, &ref).ok);
  for (int r = 0; r < kRanks; ++r) {
    const auto i = static_cast<std::size_t>(r);
    ASSERT_EQ(out[i].size(), ref[i].size()) << "rank " << r;
    for (std::size_t j = 0; j < out[i].size(); ++j) {
      ASSERT_EQ(out[i][j].key, ref[i][j].key) << "rank " << r << " pos " << j;
    }
  }
}

TEST(SpillSort, NodeMergeDrainsThroughSpillRuns) {
  // cores_per_node > 1 with a huge tau_m forces node merging; a budget below
  // the merged node volume sends the gather through the spill drain. The
  // leader's merged data must equal the in-core node-merge result.
  Config ref_cfg;
  ref_cfg.stable = true;
  ref_cfg.tau_m_bytes = ~std::size_t{0};
  std::vector<std::vector<Rec>> ref;
  const RunResult ref_res =
      run_rec_sort(ref_cfg, &ref, nullptr, 8, /*cores_per_node=*/4);
  ASSERT_TRUE(ref_res.ok) << ref_res.error;

  Config cfg = ref_cfg;
  // Each node leader gathers 4 shards x 1500 = 6000 records; a 4000-record
  // budget overflows the node merge (and the later 2-leader exchange).
  cfg.mem_limit_records = 4000;
  cfg.memory_policy = MemoryPolicy::kSpill;
  cfg.spill_frame_records = 256;
  std::vector<std::vector<Rec>> out;
  std::vector<SortReport> reports;
  const RunResult res =
      run_rec_sort(cfg, &out, &reports, 8, /*cores_per_node=*/4);
  ASSERT_TRUE(res.ok) << res.error;
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i].size(), ref[i].size()) << "rank " << i;
    for (std::size_t j = 0; j < out[i].size(); ++j) {
      ASSERT_EQ(out[i][j].key, ref[i][j].key) << "rank " << i << " pos " << j;
      ASSERT_EQ(out[i][j].tag, ref[i][j].tag) << "rank " << i << " pos " << j;
    }
  }
  // In strict mode the same configuration OOMs with the "merge" phase tag.
  Config strict = cfg;
  strict.memory_policy = MemoryPolicy::kStrict;
  std::vector<std::vector<Rec>> dummy;
  const RunResult oom = run_rec_sort(strict, &dummy, nullptr, 8, 4);
  ASSERT_FALSE(oom.ok);
  EXPECT_EQ(oom.failure, FailureClass::kOom);
  EXPECT_EQ(oom.failure_detail, "merge");
}

// --- taxonomy + watchdog ----------------------------------------------------

TEST(SpillTaxonomy, SpillIoErrorClassifiedWithOpDetail) {
  Cluster cluster(ClusterConfig{4});
  const RunResult res = cluster.run_collect([](Comm& w) {
    w.barrier();
    if (w.rank() == 2) {
      throw SpillIoError(2, 5, "spill-write", "fwrite short write");
    }
    w.barrier();
  });
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failure, FailureClass::kSpillIoError);
  EXPECT_EQ(res.failed_rank, 2);
  EXPECT_EQ(res.failure_detail, "spill-write");
  EXPECT_FALSE(res.oom);
  EXPECT_NE(res.error.find("spill I/O error on rank 2 at spill op 5"),
            std::string::npos)
      << res.error;
}

TEST(SpillWatchdog, FaultFreeSpillSuiteTripsNoFalseDeadlock) {
  // Spill I/O points must behave as scheduler yields: a tight watchdog over
  // a spill-heavy run must never produce a deadlock verdict.
  ClusterConfig ccfg{kRanks};
  ccfg.watchdog_timeout_s = 0.15;
  Cluster cluster(ccfg);
  const RunResult res = cluster.run_collect([](Comm& w) {
    Config cfg;
    cfg.stable = true;
    cfg.mem_limit_records = kPerRank / 2;
    cfg.memory_policy = MemoryPolicy::kSpill;
    cfg.spill_frame_records = 64;
    auto out = sds_sort<Rec, RecKey>(w, rec_shard(w.rank()), cfg);
    EXPECT_TRUE(std::is_sorted(
        out.begin(), out.end(),
        [](const Rec& a, const Rec& b) { return a.key < b.key; }));
  });
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.failure, FailureClass::kNone);
  // Spill ops were counted on every rank that went out-of-core.
  std::uint64_t total_ops = 0;
  for (const std::uint64_t n : res.spill_ops) total_ops += n;
  EXPECT_GT(total_ops, 0u);
}

}  // namespace
}  // namespace sdss
