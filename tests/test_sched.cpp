// Scheduler-invariant tests for the cooperative rank scheduler
// (sim/sched.hpp): large-P runs that thread-per-rank could never launch,
// same-seed determinism of the rank interleaving, watchdog semantics under
// cooperative scheduling (real deadlocks detected, no false positives on
// fault-free suites), chaos replay at P>=256 with identical fault
// taxonomies, and the timed-wait path of the modeled network.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <numeric>
#include <thread>
#include <vector>

#include "baselines/samplesort.hpp"
#include "core/driver.hpp"
#include "sim/chaos.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/zipf.hpp"

namespace sdss {
namespace {

using sim::ChaosSpec;
using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;
using sim::FailureClass;
using sim::FaultEvent;
using sim::NetworkModel;
using sim::RunResult;

std::function<void(Comm&)> sort_body(std::uint64_t seed, std::size_t n) {
  return [seed, n](Comm& w) {
    auto data = workloads::zipf_keys(
        n, 1.0, derive_seed(seed, static_cast<std::uint64_t>(w.rank())));
    sds_sort<std::uint64_t>(w, std::move(data));
  };
}

// --- large-P execution -----------------------------------------------------

// The point of the refactor: rank counts far past the thread-per-rank limit
// run on a two-worker pool. A P=1024 sort completes, globally sorted, with
// every rank's keys accounted for.
TEST(SchedLargeP, Sort1024RanksCompletes) {
  constexpr int kP = 1024;
  constexpr std::size_t kPerRank = 64;
  ClusterConfig cfg;
  cfg.num_ranks = kP;
  cfg.cores_per_node = 32;
  cfg.enable_trace = false;  // reclaim per-lane buffers at this scale
  std::vector<std::vector<std::uint64_t>> outputs(kP);
  Cluster cluster(cfg);
  cluster.run([&outputs](Comm& w) {
    auto data = workloads::zipf_keys(
        kPerRank, 1.0, derive_seed(77, static_cast<std::uint64_t>(w.rank())));
    auto out = sds_sort<std::uint64_t>(w, std::move(data));
    outputs[static_cast<std::size_t>(w.rank())] = std::move(out);
  });
  std::size_t total = 0;
  std::uint64_t prev = 0;
  for (const auto& part : outputs) {
    ASSERT_TRUE(std::is_sorted(part.begin(), part.end()));
    if (!part.empty()) {
      EXPECT_LE(prev, part.front());
      prev = part.back();
    }
    total += part.size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kP) * kPerRank);
}

// Stack sizing is honored: a deliberately small (but workable) fiber stack
// still completes a barrier-heavy run at P=512.
TEST(SchedLargeP, CustomStackSize) {
  ClusterConfig cfg;
  cfg.num_ranks = 512;
  cfg.enable_trace = false;
  cfg.fiber_stack_bytes = 256 * 1024;
  std::atomic<int> done{0};
  Cluster(cfg).run([&done](Comm& w) {
    w.barrier();
    const int sum =
        w.allreduce(w.rank(), [](int a, int b) { return a + b; });
    ASSERT_EQ(sum, 512 * 511 / 2);
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 512);
}

// --- interleaving determinism ----------------------------------------------

// With one worker and no network model, the schedule is a pure function of
// the program: two identical runs resume ranks in the identical order.
TEST(SchedDeterminism, SameSeedSameInterleavingP256) {
  constexpr int kP = 256;
  auto run_once = [] {
    ClusterConfig cfg;
    cfg.num_ranks = kP;
    cfg.enable_trace = false;
    cfg.sched_workers = 1;
    cfg.record_schedule = true;
    Cluster cluster(cfg);
    return cluster.run_collect(sort_body(4242, 32));
  };
  RunResult a = run_once();
  RunResult b = run_once();
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_FALSE(a.schedule.empty());
  EXPECT_EQ(a.schedule, b.schedule);
}

// record_schedule off → no schedule is accumulated (large runs shouldn't
// pay for it).
TEST(SchedDeterminism, ScheduleEmptyWhenNotRecorded) {
  ClusterConfig cfg;
  cfg.num_ranks = 8;
  RunResult r = Cluster(cfg).run_collect(sort_body(1, 64));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.schedule.empty());
}

// --- watchdog under cooperative scheduling ---------------------------------

// A genuine deadlock — every rank receives from a peer that never sends —
// is detected and classified, not hung, with the fiber pool far smaller
// than the rank count.
TEST(SchedWatchdog, DetectsDeadlockAtP64) {
  ClusterConfig cfg;
  cfg.num_ranks = 64;
  cfg.enable_trace = false;
  cfg.watchdog_timeout_s = 0.25;
  RunResult r = Cluster(cfg).run_collect([](Comm& w) {
    w.recv_value<std::uint64_t>((w.rank() + 1) % w.size(), /*tag=*/7);
  });
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failure, FailureClass::kDeadlock);
}

// No false positives: a fault-free collective-heavy run at P=256 with a
// tight watchdog completes cleanly even though at any instant almost every
// fiber is blocked and only a couple are on workers.
TEST(SchedWatchdog, NoFalsePositiveOnBusyLargeRun) {
  ClusterConfig cfg;
  cfg.num_ranks = 256;
  cfg.enable_trace = false;
  cfg.watchdog_timeout_s = 0.5;
  RunResult r = Cluster(cfg).run_collect(sort_body(99, 48));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.failure, FailureClass::kNone);
}

// A rank that computes (sleeps off-scheduler, op == nullptr) while every
// other rank waits on it must not trip the watchdog: "running" is progress.
TEST(SchedWatchdog, ComputeBoundRankIsNotADeadlock) {
  ClusterConfig cfg;
  cfg.num_ranks = 8;
  cfg.enable_trace = false;
  cfg.watchdog_timeout_s = 0.15;
  RunResult r = Cluster(cfg).run_collect([](Comm& w) {
    if (w.rank() == 0) {
      // Plain OS sleep, deliberately NOT the cooperative one: models a
      // genuinely compute-bound rank pinning its worker.
      std::this_thread::sleep_for(std::chrono::milliseconds(450));
    }
    w.barrier();
  });
  EXPECT_TRUE(r.ok) << r.error;
}

// --- chaos under cooperative scheduling ------------------------------------

// Fault plans are a pure function of (seed, rank, op index), and with one
// worker the schedule is deterministic too — so at P=256 the *fired* fault
// list and the classified per-rank taxonomy replay identically, not just
// the plan. (Which subset of a plan fires before abort propagation is
// schedule-dependent by nature; pinning workers=1 makes the schedule, and
// therefore the subset, reproducible.)
TEST(SchedChaos, ReplayIdenticalTaxonomiesP256) {
  auto run_once = [] {
    ChaosSpec spec;
    spec.seed = 31337;
    spec.crash_ranks = 2;
    spec.crash_op_range = 40;
    ClusterConfig cfg;
    cfg.num_ranks = 256;
    cfg.enable_trace = false;
    cfg.chaos = spec;
    cfg.sched_workers = 1;
    return Cluster(cfg).run_collect(sort_body(5, 32));
  };
  RunResult a = run_once();
  RunResult b = run_once();
  ASSERT_FALSE(a.ok);
  ASSERT_EQ(a.failure, FailureClass::kInjectedCrash);
  EXPECT_EQ(a.failure, b.failure);
  // fault_events are sorted by (rank, op, kind): same plan → same list.
  ASSERT_EQ(a.fault_events.size(), b.fault_events.size());
  for (std::size_t i = 0; i < a.fault_events.size(); ++i) {
    EXPECT_EQ(a.fault_events[i].rank, b.fault_events[i].rank);
    EXPECT_EQ(a.fault_events[i].op_index, b.fault_events[i].op_index);
    EXPECT_EQ(a.fault_events[i].kind, b.fault_events[i].kind);
  }
  // Classified per-rank failures match too (primary + peer aborts).
  ASSERT_EQ(a.rank_failures.size(), b.rank_failures.size());
  for (std::size_t i = 0; i < a.rank_failures.size(); ++i) {
    EXPECT_EQ(a.rank_failures[i].rank, b.rank_failures[i].rank);
    EXPECT_EQ(a.rank_failures[i].failure, b.rank_failures[i].failure);
  }
}

// Chaos stalls park the victim's fiber cooperatively: with 2 workers and a
// stalled rank, the other ranks keep making progress and the run completes.
TEST(SchedChaos, StallDoesNotStarveOtherRanks) {
  ChaosSpec spec;
  spec.seed = 7;
  spec.forced.push_back(
      FaultEvent{sim::FaultKind::kStall, /*rank=*/3, /*op_index=*/2, 0.2});
  ClusterConfig cfg;
  cfg.num_ranks = 32;
  cfg.enable_trace = false;
  cfg.chaos = spec;
  RunResult r = Cluster(cfg).run_collect(sort_body(11, 64));
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.fault_events.size(), 1u);
  EXPECT_EQ(r.fault_events[0].rank, 3);
}

// --- timed waits (modeled network) -----------------------------------------

// Under a network model every p2p delivery is a future deadline: the
// timed-wait path (timer heap, self-wake) must deliver everything.
TEST(SchedTimers, ModeledNetworkDeliversAtP128) {
  ClusterConfig cfg;
  cfg.num_ranks = 128;
  cfg.enable_trace = false;
  cfg.network = NetworkModel::aries_like();
  RunResult r = Cluster(cfg).run_collect([](Comm& w) {
    // Ring exchange: send right, receive left, twice.
    for (int round = 0; round < 2; ++round) {
      const std::uint64_t out =
          static_cast<std::uint64_t>(w.rank()) * 1000 + round;
      w.send_value(out, (w.rank() + 1) % w.size(), round);
      const int left = (w.rank() - 1 + w.size()) % w.size();
      const auto in = w.recv_value<std::uint64_t>(left, round);
      ASSERT_EQ(in, static_cast<std::uint64_t>(left) * 1000 + round);
    }
  });
  ASSERT_TRUE(r.ok) << r.error;
}

}  // namespace
}  // namespace sdss
