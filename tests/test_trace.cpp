// The unified tracing subsystem: recorder chunk mechanics, the analyzer's
// critical-path / λ / blocked-time math against hand-built event streams
// with known answers, chaos and watchdog instants on real runs, event-stream
// determinism for a fixed seed, and the Chrome-trace exporter's JSON.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "sdss.hpp"
#include "sim/chaos.hpp"
#include "sim/cluster.hpp"
#include "sim/comm.hpp"
#include "telemetry/json.hpp"
#include "trace/analyze.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"
#include "util/rng.hpp"
#include "workloads/zipf.hpp"

namespace sdss::trace {
namespace {

// --- recorder ------------------------------------------------------------

TEST(TraceRecorder, ChunkBoundaryPreservesOrderAndCount) {
  // 3000 events spans three 1024-event chunks: order and count must survive
  // the chunk chain.
  TraceRecorder rec;
  rec.reset(1);
  bind_thread(&rec, 0);
  ASSERT_TRUE(active());
  constexpr std::uint64_t kEvents = 3000;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    instant(EventCat::kP2p, "send", /*value=*/i, /*peer=*/1);
  }
  unbind_thread();
  EXPECT_FALSE(active());

  const TraceLog log = rec.collect();
  ASSERT_EQ(log.lanes.size(), 2u);  // rank 0 + cluster lane
  ASSERT_EQ(log.lanes[0].size(), kEvents);
  EXPECT_TRUE(log.lanes[1].empty());
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    EXPECT_EQ(log.lanes[0][i].value, i);
    EXPECT_EQ(log.lanes[0][i].kind, EventKind::kInstant);
  }
  EXPECT_EQ(log.total_events(), kEvents);
}

TEST(TraceRecorder, ResetDiscardsPreviousRun) {
  TraceRecorder rec;
  rec.reset(2);
  bind_thread(&rec, 0);
  instant(EventCat::kP2p, "send");
  unbind_thread();
  rec.reset(2);
  EXPECT_EQ(rec.collect().total_events(), 0u);
}

TEST(TraceRecorder, InactiveThreadEmitsNothing) {
  // No binding: active() is false and instrumentation sites skip emission.
  EXPECT_FALSE(active());
}

// --- analyzer against hand-built streams with known answers --------------

Event span(EventKind kind, const char* name, std::uint64_t t_ns) {
  Event e;
  e.t_ns = t_ns;
  e.name = name;
  e.kind = kind;
  e.cat = EventCat::kPhase;
  return e;
}

Event coll(std::uint64_t t_ns, std::uint64_t dur_ns, std::uint64_t bytes,
           std::uint64_t blocked_ns) {
  Event e;
  e.t_ns = t_ns;
  e.dur_ns = dur_ns;
  e.value = bytes;
  e.aux = blocked_ns;
  e.name = "alltoallv";
  e.kind = EventKind::kComplete;
  e.cat = EventCat::kCollective;
  return e;
}

Event counter_ev(const char* name, std::uint64_t value) {
  Event e;
  e.value = value;
  e.name = name;
  e.kind = EventKind::kCounter;
  e.cat = EventCat::kCounter;
  return e;
}

TEST(TraceAnalyze, CriticalPathLambdaMarginAndBlocked) {
  // Two ranks, one "exchange" phase: rank 0 takes 1s, rank 1 takes 3s of
  // which 1s is blocked inside a collective. Every summary statistic has a
  // closed-form expected value.
  TraceLog log;
  log.lanes.resize(3);
  log.lanes[0] = {span(EventKind::kSpanBegin, "exchange", 0),
                  span(EventKind::kSpanEnd, "exchange", 1'000'000'000)};
  log.lanes[1] = {span(EventKind::kSpanBegin, "exchange", 0),
                  coll(500'000'000, 1'200'000'000, 4096, 1'000'000'000),
                  span(EventKind::kSpanEnd, "exchange", 3'000'000'000)};

  const TraceAnalysis a = analyze_trace(log);
  ASSERT_EQ(a.phases.size(), 1u);
  const PhaseStat& p = a.phases[0];
  EXPECT_EQ(p.name, "exchange");
  EXPECT_EQ(p.critical_rank, 1);
  EXPECT_DOUBLE_EQ(p.max_s, 3.0);
  EXPECT_DOUBLE_EQ(p.avg_s, 2.0);
  EXPECT_DOUBLE_EQ(p.lambda, 1.5);
  EXPECT_DOUBLE_EQ(p.margin_s, 2.0);  // 3s max minus 1s runner-up
  EXPECT_DOUBLE_EQ(p.blocked_s, 1.0);
  ASSERT_EQ(p.per_rank_s.size(), 2u);
  EXPECT_DOUBLE_EQ(p.per_rank_s[0], 1.0);
  EXPECT_DOUBLE_EQ(p.per_rank_s[1], 3.0);
  // 1s blocked out of 4s total in-phase time across both ranks.
  EXPECT_DOUBLE_EQ(a.blocked_frac, 0.25);
  EXPECT_EQ(a.total_events, 5u);
}

TEST(TraceAnalyze, PhasesReduceInPipelineOrder) {
  // Emitted out of order on the lane; the summary must come back in the
  // paper's pipeline order (ledger enum order).
  TraceLog log;
  log.lanes.resize(2);
  log.lanes[0] = {span(EventKind::kSpanBegin, "local-ordering", 0),
                  span(EventKind::kSpanEnd, "local-ordering", 100),
                  span(EventKind::kSpanBegin, "pivot-selection", 200),
                  span(EventKind::kSpanEnd, "pivot-selection", 300),
                  span(EventKind::kSpanBegin, "exchange", 400),
                  span(EventKind::kSpanEnd, "exchange", 500)};
  const TraceAnalysis a = analyze_trace(log);
  ASSERT_EQ(a.phases.size(), 3u);
  EXPECT_EQ(a.phases[0].name, "pivot-selection");
  EXPECT_EQ(a.phases[1].name, "exchange");
  EXPECT_EQ(a.phases[2].name, "local-ordering");
}

TEST(TraceAnalyze, UnclosedSpanChargesUpToLaneEnd) {
  // A rank that crashed mid-phase never emits kSpanEnd; its open span
  // closes at the lane's last event time so the phase still shows up.
  TraceLog log;
  log.lanes.resize(2);
  Event crash;
  crash.t_ns = 2'000'000'000;
  crash.name = "crash";
  crash.kind = EventKind::kInstant;
  crash.cat = EventCat::kChaos;
  log.lanes[0] = {span(EventKind::kSpanBegin, "exchange", 0), crash};

  const TraceAnalysis a = analyze_trace(log);
  ASSERT_EQ(a.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(a.phases[0].max_s, 2.0);
  EXPECT_EQ(a.chaos_events, 1u);
}

TEST(TraceAnalyze, LambdaFromRecvRecordCounters) {
  // recv_records counters: 100 vs 300 → λ = 300 / 200 = 1.5, independent
  // of any wall time. The last counter per rank wins.
  TraceLog log;
  log.lanes.resize(3);
  log.lanes[0] = {counter_ev("recv_records", 700),
                  counter_ev("recv_records", 100)};
  log.lanes[1] = {counter_ev("recv_records", 300)};
  const TraceAnalysis a = analyze_trace(log);
  EXPECT_DOUBLE_EQ(a.lambda_records, 1.5);
}

TEST(TraceAnalyze, EmptyLogYieldsZeroAnalysis) {
  const TraceAnalysis a = analyze_trace(TraceLog{});
  EXPECT_TRUE(a.phases.empty());
  EXPECT_EQ(a.lambda_records, 0.0);
  EXPECT_EQ(a.total_events, 0u);
}

// --- real runs: chaos, watchdog, determinism -----------------------------

TEST(TraceRun, ForcedCrashLandsOnVictimLane) {
  sim::ClusterConfig cfg;
  cfg.num_ranks = 3;
  cfg.chaos.seed = 7;
  cfg.chaos.forced.push_back(
      sim::FaultEvent{sim::FaultKind::kCrash, /*rank=*/1, /*op_index=*/2});
  const sim::RunResult res =
      sim::Cluster(cfg).run_collect([](sim::Comm& w) {
        w.barrier();
        w.barrier();
        w.barrier();
        w.barrier();
      });
  ASSERT_FALSE(res.ok);
  ASSERT_EQ(res.trace.lanes.size(), 4u);
  std::size_t crashes = 0;
  for (const Event& e : res.trace.lanes[1]) {
    if (e.cat == EventCat::kChaos &&
        std::string_view(e.name) == "crash") {
      ++crashes;
    }
  }
  EXPECT_EQ(crashes, 1u);
  for (const std::size_t lane : {0u, 2u, 3u}) {
    for (const Event& e : res.trace.lanes[lane]) {
      EXPECT_NE(e.cat, EventCat::kChaos) << "chaos event on lane " << lane;
    }
  }
  EXPECT_EQ(analyze_trace(res.trace).chaos_events, 1u);
}

TEST(TraceRun, WatchdogVerdictLandsOnClusterLane) {
  sim::ClusterConfig cfg;
  cfg.num_ranks = 2;
  cfg.watchdog_timeout_s = 0.25;
  const sim::RunResult res =
      sim::Cluster(cfg).run_collect([](sim::Comm& w) {
        // Both ranks receive, nobody sends: a textbook deadlock.
        (void)w.recv_value<int>(1 - w.rank(), /*tag=*/5);
      });
  ASSERT_FALSE(res.ok);
  ASSERT_EQ(res.trace.lanes.size(), 3u);
  std::size_t verdicts = 0;
  for (const Event& e : res.trace.lanes[2]) {
    if (e.cat == EventCat::kWatchdog &&
        std::string_view(e.name) == "deadlock-verdict") {
      ++verdicts;
    }
  }
  EXPECT_EQ(verdicts, 1u);
  EXPECT_EQ(analyze_trace(res.trace).watchdog_events, 1u);
}

/// The timestamp-free shape of an event stream: everything that must be a
/// pure function of (seed, program) — kinds, categories, interned names,
/// peers, and payload sizes for comm events. Counter values are excluded
/// (kernel counters are process-wide) as are all clocks and blocked times.
using EventSig =
    std::tuple<EventKind, EventCat, std::string, int, std::uint64_t>;

std::vector<std::vector<EventSig>> signature(const TraceLog& log) {
  std::vector<std::vector<EventSig>> out(log.lanes.size());
  for (std::size_t lane = 0; lane < log.lanes.size(); ++lane) {
    for (const Event& e : log.lanes[lane]) {
      const bool comm =
          e.cat == EventCat::kP2p || e.cat == EventCat::kCollective;
      out[lane].emplace_back(e.kind, e.cat, std::string(e.name), e.peer,
                             comm ? e.value : 0);
    }
  }
  return out;
}

TEST(TraceRun, SameSeedSameEventSequenceModuloTimestamps) {
  // Two identical stable-mode zipf sorts: the per-lane event sequences must
  // match exactly once timestamps (and process-wide counter samples) are
  // masked out. Stable mode forces the synchronous exchange, whose message
  // order is a pure function of the data.
  auto run = [] {
    sim::ClusterConfig cc;
    cc.num_ranks = 4;
    return sim::Cluster(cc).run_collect([](sim::Comm& w) {
      auto data = workloads::zipf_keys(
          2000, 1.2, derive_seed(77, static_cast<std::uint64_t>(w.rank())));
      Config cfg;
      cfg.stable = true;
      sds_sort<std::uint64_t>(w, std::move(data), cfg);
    });
  };
  const sim::RunResult a = run();
  const sim::RunResult b = run();
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_FALSE(a.trace.lanes.empty());
  EXPECT_GT(a.trace.total_events(), 0u);
  EXPECT_EQ(signature(a.trace), signature(b.trace));
}

// --- Chrome-trace export -------------------------------------------------

TEST(ChromeTrace, OutputIsValidJsonWithExpectedRecords) {
  TraceLog log;
  log.lanes.resize(2);
  log.lanes[0] = {span(EventKind::kSpanBegin, "exchange", 1'000),
                  coll(2'000, 5'000'000, 4096, 2'000'000),
                  span(EventKind::kSpanEnd, "exchange", 6'000'000)};
  Event c = counter_ev("recv_records", 123);
  c.t_ns = 500;
  log.lanes[0].push_back(c);

  std::ostringstream os;
  write_chrome_trace(os, log);
  const telemetry::Json doc = telemetry::Json::parse(os.str());
  ASSERT_TRUE(doc.is_array());

  std::size_t meta = 0, begins = 0, ends = 0, completes = 0, counters = 0;
  for (const telemetry::Json& rec : doc.items()) {
    const std::string ph = rec.at("ph").string_value();
    if (ph == "M") {
      ++meta;
      EXPECT_EQ(rec.at("name").string_value(), "thread_name");
    } else if (ph == "B") {
      ++begins;
      EXPECT_EQ(rec.at("name").string_value(), "exchange");
    } else if (ph == "E") {
      ++ends;
    } else if (ph == "X") {
      ++completes;
      EXPECT_EQ(rec.at("args").at("bytes").u64_or(), 4096u);
      EXPECT_EQ(rec.at("dur").number_or(), 5000.0);  // µs
      EXPECT_EQ(rec.at("args").at("blocked_us").number_or(), 2000.0);
    } else if (ph == "C") {
      ++counters;
      EXPECT_EQ(rec.at("args").at("value").u64_or(), 123u);
    }
  }
  EXPECT_EQ(meta, 2u);  // one thread_name per lane
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
  EXPECT_EQ(completes, 1u);
  EXPECT_EQ(counters, 1u);
}

TEST(ChromeTrace, SubMicrosecondCompleteGetsVisibleSliver) {
  TraceLog log;
  log.lanes.resize(1);
  log.lanes[0] = {coll(0, /*dur_ns=*/40, /*bytes=*/8, /*blocked_ns=*/0)};
  std::ostringstream os;
  write_chrome_trace(os, log);
  const telemetry::Json doc = telemetry::Json::parse(os.str());
  EXPECT_EQ(doc.items().back().at("dur").number_or(), 1.0);
}

TEST(ChromeTrace, AdversarialNamesAreEscaped) {
  // Interning means names are static strings, but nothing stops a static
  // string from containing JSON-hostile characters. The writer must escape
  // them; the parser round-trips them.
  static const char kEvil[] = "q\"uote\\back\nnew\ttab";
  TraceLog log;
  log.lanes.resize(1);
  Event e;
  e.name = kEvil;
  e.kind = EventKind::kInstant;
  e.cat = EventCat::kChaos;
  log.lanes[0] = {e};
  std::ostringstream os;
  write_chrome_trace(os, log);
  const telemetry::Json doc = telemetry::Json::parse(os.str());
  bool found = false;
  for (const telemetry::Json& rec : doc.items()) {
    if (rec.at("ph").string_value() == "i") {
      EXPECT_EQ(rec.at("name").string_value(), kEvil);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(JsonString, EscapingRoundTripsEveryByteClass) {
  // The shared write_json_string routine behind both the document writer
  // and the streaming trace exporter: quotes, backslashes, named control
  // escapes, and raw control bytes all survive a parse.
  const std::string original =
      std::string("plain \"quoted\" back\\slash \n\r\t\b\f bell") + '\x07' +
      "nul-adjacent" + '\x1f' + " end";
  std::ostringstream os;
  telemetry::write_json_string(os, original);
  const telemetry::Json back = telemetry::Json::parse(os.str());
  EXPECT_EQ(back.string_value(), original);
}

}  // namespace
}  // namespace sdss::trace
