// Stress and fuzz tests for the simulated runtime: randomized traffic
// patterns, interleaved collective storms, split pyramids, delivery-delay
// ordering under the network model, and large rank counts. These are the
// tests that catch lost-wakeup and protocol-state bugs that the directed
// unit tests cannot.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/comm.hpp"
#include "util/rng.hpp"

namespace sdss::sim {
namespace {

TEST(SimStress, RandomizedPt2pNetwork) {
  // Every rank sends a deterministic pseudo-random number of messages to
  // every other rank; receivers drain with any-source receives and verify
  // per-source sequence numbers and totals.
  const int p = 6;
  Cluster(ClusterConfig{p}).run([p](Comm& c) {
    SplitMix64 rng(derive_seed(31337, static_cast<std::uint64_t>(c.rank())));
    std::vector<std::uint64_t> sent(static_cast<std::size_t>(p), 0);
    for (int d = 0; d < p; ++d) {
      if (d == c.rank()) continue;
      const std::uint64_t count = 1 + rng.next_below(20);
      sent[static_cast<std::size_t>(d)] = count;
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t payload =
            (static_cast<std::uint64_t>(c.rank()) << 32) | i;
        c.send_value<std::uint64_t>(payload, d, /*tag=*/5);
      }
    }
    // Everyone learns how much to expect from everyone.
    const auto expect = c.alltoall<std::uint64_t>(sent);
    std::uint64_t total = 0;
    for (auto e : expect) total += e;
    std::vector<std::uint64_t> next_seq(static_cast<std::size_t>(p), 0);
    for (std::uint64_t i = 0; i < total; ++i) {
      int src = -1;
      const std::uint64_t v = c.recv_value<std::uint64_t>(Comm::kAnySource, 5,
                                                          &src);
      const auto from = static_cast<std::size_t>(v >> 32);
      ASSERT_EQ(static_cast<int>(from), src);
      ASSERT_EQ(v & 0xffffffffu, next_seq[from]) << "per-source FIFO broken";
      ++next_seq[from];
    }
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(next_seq[static_cast<std::size_t>(s)],
                expect[static_cast<std::size_t>(s)]);
    }
  });
}

TEST(SimStress, CollectiveStorm) {
  // Hundreds of back-to-back mixed collectives; any protocol-state leak
  // between generations deadlocks or corrupts.
  Cluster(ClusterConfig{5}).run([](Comm& c) {
    SplitMix64 rng(99);  // same seed on all ranks: same op sequence
    long running = 0;
    for (int round = 0; round < 300; ++round) {
      switch (rng.next_below(5)) {
        case 0:
          c.barrier();
          break;
        case 1: {
          int v = c.rank() == 2 ? round : -1;
          c.bcast_value(v, 2);
          ASSERT_EQ(v, round);
          break;
        }
        case 2: {
          auto all = c.allgather<int>(c.rank() + round);
          for (int i = 0; i < c.size(); ++i) {
            ASSERT_EQ(all[static_cast<std::size_t>(i)], i + round);
          }
          break;
        }
        case 3: {
          running += c.allreduce<int>(1, [](int a, int b) { return a + b; });
          break;
        }
        case 4: {
          std::vector<int> send(static_cast<std::size_t>(c.size()), c.rank());
          auto recv = c.alltoall<int>(send);
          for (int s = 0; s < c.size(); ++s) {
            ASSERT_EQ(recv[static_cast<std::size_t>(s)], s);
          }
          break;
        }
      }
    }
    EXPECT_GE(running, 0);
  });
}

TEST(SimStress, Pt2pInterleavedWithCollectives) {
  Cluster(ClusterConfig{4}).run([](Comm& c) {
    for (int round = 0; round < 50; ++round) {
      const int partner = c.rank() ^ 1;
      c.send_value<int>(round * 10 + c.rank(), partner, round);
      c.barrier();  // collective between send and receive
      EXPECT_EQ(c.recv_value<int>(partner, round), round * 10 + partner);
      auto sum = c.allreduce<int>(round, [](int a, int b) { return a + b; });
      EXPECT_EQ(sum, round * 4);
    }
  });
}

TEST(SimStress, SplitPyramid) {
  // Repeated halving down to singleton communicators, with traffic at
  // every level; exercises context allocation and isolation.
  Cluster(ClusterConfig{16}).run([](Comm& world) {
    Comm cur = world;
    int level = 0;
    while (cur.size() > 1) {
      const int half = cur.size() / 2;
      const int color = cur.rank() / half;
      Comm next = cur.split(color, cur.rank());
      ASSERT_TRUE(next.valid());
      ASSERT_EQ(next.size(), half);
      // Ring send within the new communicator.
      const int dst = (next.rank() + 1) % next.size();
      const int src = (next.rank() + next.size() - 1) % next.size();
      next.send_value<int>(level * 100 + next.rank(), dst, 9);
      EXPECT_EQ(next.recv_value<int>(src, 9), level * 100 + src);
      cur = next;
      ++level;
    }
    EXPECT_EQ(level, 4);
    // The world communicator is still intact afterwards.
    auto all = world.allgather<int>(level);
    for (int v : all) EXPECT_EQ(v, 4);
  });
}

TEST(SimStress, ConcurrentSiblingSplitsCommunicateIndependently) {
  Cluster(ClusterConfig{12}).run([](Comm& world) {
    // Three groups of four; each group runs its own collective rounds with
    // group-specific values — cross-talk would be detected immediately.
    Comm g = world.split(world.rank() % 3, world.rank());
    ASSERT_EQ(g.size(), 4);
    for (int round = 0; round < 30; ++round) {
      auto sum = g.allreduce<int>(world.rank() % 3,
                                  [](int a, int b) { return a + b; });
      ASSERT_EQ(sum, 4 * (world.rank() % 3));
    }
  });
}

TEST(SimStress, DelayedMessagesPreserveFifoUnderNetworkModel) {
  NetworkModel net;
  net.latency_s = 2e-3;
  net.bandwidth_Bps = 1e7;  // size-dependent delays: big msgs arrive later
  Cluster(ClusterConfig{2, 1, net}).run([](Comm& c) {
    if (c.rank() == 0) {
      // A large (slow) message followed by small (fast) ones, same tag:
      // FIFO per (src, tag) must hold even though the later messages are
      // deliverable earlier.
      std::vector<std::uint64_t> big(20000, 1);
      c.send<std::uint64_t>(big, 1, 3);
      for (int i = 0; i < 5; ++i) c.send_value<std::uint64_t>(100 + i, 1, 3);
    } else {
      std::vector<std::uint64_t> buf(20000);
      EXPECT_EQ(c.recv<std::uint64_t>(buf, 0, 3), 20000u);
      for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(c.recv_value<std::uint64_t>(0, 3), 100u + i);
      }
    }
  });
}

TEST(SimStress, ManyRanksBarrierAndAllgather) {
  Cluster(ClusterConfig{128}).run([](Comm& c) {
    for (int i = 0; i < 5; ++i) c.barrier();
    auto all = c.allgather<int>(c.rank());
    ASSERT_EQ(all.size(), 128u);
    for (int i = 0; i < 128; ++i) {
      ASSERT_EQ(all[static_cast<std::size_t>(i)], i);
    }
  });
}

TEST(SimStress, ManyRanksAlltoallv) {
  // 96 ranks, irregular counts: rank r sends (r + d) % 7 records to d.
  Cluster(ClusterConfig{96}).run([](Comm& c) {
    const auto p = static_cast<std::size_t>(c.size());
    std::vector<std::size_t> scounts(p), sdispls(p);
    std::vector<std::uint32_t> send;
    for (std::size_t d = 0; d < p; ++d) {
      scounts[d] = (static_cast<std::size_t>(c.rank()) + d) % 7;
      sdispls[d] = send.size();
      for (std::size_t k = 0; k < scounts[d]; ++k) {
        send.push_back(static_cast<std::uint32_t>(c.rank()));
      }
    }
    auto rcounts = c.alltoall<std::size_t>(scounts);
    std::vector<std::size_t> rdispls(p);
    std::size_t off = 0;
    for (std::size_t s = 0; s < p; ++s) {
      rdispls[s] = off;
      off += rcounts[s];
    }
    std::vector<std::uint32_t> recv(off, ~0u);
    c.alltoallv<std::uint32_t>(send, scounts, sdispls, recv, rcounts, rdispls);
    for (std::size_t s = 0; s < p; ++s) {
      ASSERT_EQ(rcounts[s],
                (s + static_cast<std::size_t>(c.rank())) % 7);
      for (std::size_t k = 0; k < rcounts[s]; ++k) {
        ASSERT_EQ(recv[rdispls[s] + k], s);
      }
    }
  });
}

TEST(SimStress, AbortDuringCollectiveStormUnblocksEveryone) {
  for (int trial = 0; trial < 5; ++trial) {
    auto res = Cluster(ClusterConfig{8}).run_collect([trial](Comm& c) {
      for (int round = 0;; ++round) {
        if (c.rank() == trial % 8 && round == trial * 3 + 1) {
          throw Error("fuzz abort");
        }
        c.barrier();
        auto all = c.allgather<int>(round);
        (void)all;
      }
    });
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.failed_rank, trial % 8);
  }
}

TEST(SimStress, WaitAnyUnderConcurrentTraffic) {
  Cluster(ClusterConfig{8}).run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::vector<int>> bufs(7, std::vector<int>(16));
      std::vector<Request> reqs;
      for (int s = 1; s < 8; ++s) {
        reqs.push_back(c.irecv<int>(bufs[static_cast<std::size_t>(s - 1)], s, 2));
      }
      std::vector<char> done(7, 0);
      for (int completed = 0; completed < 7; ++completed) {
        const int idx = Request::wait_any(reqs, done);
        ASSERT_GE(idx, 0);
        done[static_cast<std::size_t>(idx)] = 1;
        for (int v : bufs[static_cast<std::size_t>(idx)]) {
          ASSERT_EQ(v, idx + 1);
        }
      }
    } else {
      std::vector<int> data(16, c.rank());
      c.send<int>(data, 0, 2);
    }
  });
}

}  // namespace
}  // namespace sdss::sim
