// Randomized differential tests for the collective layer: every collective
// is checked against a sequential reference computed from the same
// pseudo-random per-rank contributions. Because the contribution of rank r
// is a pure function of (seed, r), every rank can regenerate everyone
// else's input locally and verify its own result in isolation — no extra
// communication inside the checks.
//
// Communicator widths cover both power-of-two and odd sizes so every
// algorithm variant runs (recursive doubling AND Bruck/non-pow2 folds),
// payload sizes straddle the selection thresholds so both the
// latency-optimized and bandwidth-optimized paths run, and zero-length
// contributions exercise the degenerate cases.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/comm.hpp"
#include "util/rng.hpp"

namespace sdss {
namespace {

using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;

const std::vector<int> kSizes = {1, 2, 3, 5, 8, 16};

/// Deterministic contribution of `rank` for round `round`: `len` values any
/// rank can regenerate. Length may be zero.
std::vector<std::uint64_t> contribution(std::uint64_t seed, int rank,
                                        int round, std::size_t len) {
  SplitMix64 rng(derive_seed(seed, (static_cast<std::uint64_t>(rank) << 16) ^
                                       static_cast<std::uint64_t>(round)));
  std::vector<std::uint64_t> out(len);
  for (auto& x : out) x = rng.next();
  return out;
}

/// Variable per-rank length for the v-collectives: 0 for every third rank.
std::size_t vlen(int rank, std::size_t base) {
  return rank % 3 == 2 ? 0 : base + static_cast<std::size_t>(rank);
}

// Payload element counts straddling the algorithm-selection thresholds
// (allgather small/large at 64 KiB total, alltoall Bruck at 1 KiB/block).
const std::vector<std::size_t> kLens = {0, 1, 7, 300, 3000};

TEST(Collectives, BcastMatchesRoot) {
  for (int p : kSizes) {
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      for (std::size_t len : kLens) {
        for (int root = 0; root < c.size(); root += 3) {
          auto expect = contribution(11, root, root, len);
          auto buf = c.rank() == root ? expect
                                      : std::vector<std::uint64_t>(len);
          c.bcast<std::uint64_t>(buf, root);
          EXPECT_EQ(buf, expect) << "p=" << p << " len=" << len;
        }
      }
    });
  }
}

TEST(Collectives, GatherConcatenatesInRankOrder) {
  for (int p : kSizes) {
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      for (std::size_t len : kLens) {
        const int root = p - 1;
        auto mine = contribution(12, c.rank(), 0, len);
        std::vector<std::uint64_t> recv(
            static_cast<std::size_t>(p) * len);
        c.gather_bytes(mine.data(), len * sizeof(std::uint64_t), recv.data(),
                       root);
        if (c.rank() == root) {
          for (int r = 0; r < p; ++r) {
            auto expect = contribution(12, r, 0, len);
            for (std::size_t i = 0; i < len; ++i) {
              ASSERT_EQ(recv[static_cast<std::size_t>(r) * len + i],
                        expect[i])
                  << "p=" << p << " len=" << len << " src=" << r;
            }
          }
        }
      }
    });
  }
}

TEST(Collectives, ScatterDeliversOwnSlice) {
  for (int p : kSizes) {
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      for (std::size_t len : kLens) {
        const int root = 0;
        std::vector<std::uint64_t> send;
        if (c.rank() == root) {
          for (int r = 0; r < p; ++r) {
            auto part = contribution(13, r, 1, len);
            send.insert(send.end(), part.begin(), part.end());
          }
        }
        std::vector<std::uint64_t> mine(len);
        c.scatter_bytes(send.data(), len * sizeof(std::uint64_t), mine.data(),
                        root);
        EXPECT_EQ(mine, contribution(13, c.rank(), 1, len))
            << "p=" << p << " len=" << len;
      }
    });
  }
}

TEST(Collectives, AllgatherMatchesReference) {
  for (int p : kSizes) {
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      for (std::size_t len : kLens) {
        auto mine = contribution(14, c.rank(), 2, len);
        std::vector<std::uint64_t> recv(static_cast<std::size_t>(p) * len);
        c.allgather_bytes(mine.data(), len * sizeof(std::uint64_t),
                          recv.data());
        for (int r = 0; r < p; ++r) {
          auto expect = contribution(14, r, 2, len);
          for (std::size_t i = 0; i < len; ++i) {
            ASSERT_EQ(recv[static_cast<std::size_t>(r) * len + i], expect[i])
                << "p=" << p << " len=" << len << " src=" << r;
          }
        }
      }
    });
  }
}

TEST(Collectives, AllgathervHandlesEmptyRanks) {
  for (int p : kSizes) {
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      for (std::size_t base : {std::size_t{0}, std::size_t{5},
                               std::size_t{2000}}) {
        auto mine =
            contribution(15, c.rank(), 3, vlen(c.rank(), base));
        auto got = c.allgatherv<std::uint64_t>(mine);
        std::vector<std::uint64_t> expect;
        for (int r = 0; r < p; ++r) {
          auto part = contribution(15, r, 3, vlen(r, base));
          expect.insert(expect.end(), part.begin(), part.end());
        }
        EXPECT_EQ(got, expect) << "p=" << p << " base=" << base;
      }
    });
  }
}

TEST(Collectives, AlltoallTransposesBlocks) {
  for (int p : kSizes) {
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      // Block lengths on both sides of the Bruck/pairwise threshold
      // (1 KiB per block = 128 u64).
      for (std::size_t len : {std::size_t{1}, std::size_t{60},
                              std::size_t{500}}) {
        // Rank r's block for destination d: contribution keyed by (r, d).
        std::vector<std::uint64_t> send;
        for (int d = 0; d < p; ++d) {
          auto part = contribution(16, c.rank(), d, len);
          send.insert(send.end(), part.begin(), part.end());
        }
        std::vector<std::uint64_t> recv(static_cast<std::size_t>(p) * len);
        c.alltoall_bytes(send.data(), len * sizeof(std::uint64_t),
                         recv.data());
        for (int r = 0; r < p; ++r) {
          auto expect = contribution(16, r, c.rank(), len);
          for (std::size_t i = 0; i < len; ++i) {
            ASSERT_EQ(recv[static_cast<std::size_t>(r) * len + i], expect[i])
                << "p=" << p << " len=" << len << " src=" << r;
          }
        }
      }
    });
  }
}

TEST(Collectives, AlltoallvIrregularCounts) {
  for (int p : kSizes) {
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      // Count from src to dst is a function of both: (src + 2*dst) % 5,
      // scaled; several pairs exchange nothing.
      auto count = [](int src, int dst) {
        return static_cast<std::size_t>((src + 2 * dst) % 5) * 40;
      };
      const int me = c.rank();
      std::vector<std::size_t> scounts(static_cast<std::size_t>(p)),
          sdispls(static_cast<std::size_t>(p)),
          rcounts(static_cast<std::size_t>(p)),
          rdispls(static_cast<std::size_t>(p));
      std::vector<std::uint64_t> send;
      for (int d = 0; d < p; ++d) {
        sdispls[static_cast<std::size_t>(d)] = send.size();
        scounts[static_cast<std::size_t>(d)] = count(me, d);
        auto part = contribution(17, me, d, count(me, d));
        send.insert(send.end(), part.begin(), part.end());
      }
      std::size_t off = 0;
      for (int s = 0; s < p; ++s) {
        rdispls[static_cast<std::size_t>(s)] = off;
        rcounts[static_cast<std::size_t>(s)] = count(s, me);
        off += count(s, me);
      }
      std::vector<std::uint64_t> recv(off);
      c.alltoallv<std::uint64_t>(send, scounts, sdispls, recv, rcounts,
                                 rdispls);
      for (int s = 0; s < p; ++s) {
        auto expect = contribution(17, s, me, count(s, me));
        for (std::size_t i = 0; i < expect.size(); ++i) {
          ASSERT_EQ(recv[rdispls[static_cast<std::size_t>(s)] + i], expect[i])
              << "p=" << p << " src=" << s;
        }
      }
    });
  }
}

/// Bit-string concatenation: associative (as the reduction contract
/// requires) but NOT commutative — any combine that is not a strict
/// rank-order fold produces a different bit pattern.
struct Cat {
  std::uint64_t bits = 0;
  std::uint64_t len = 0;
  bool operator==(const Cat&) const = default;
};
Cat cat(Cat a, Cat b) {
  return Cat{(a.bits << b.len) | b.bits, a.len + b.len};
}

TEST(Collectives, ReduceFoldsInRankOrder) {
  for (int p : kSizes) {
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      const int root = p / 2;
      const Cat mine{static_cast<std::uint64_t>(c.rank()) & 0xF, 4};
      const Cat got = c.reduce<Cat>(mine, cat, root);
      if (c.rank() == root) {
        Cat expect{0, 4};  // rank 0's value
        for (int r = 1; r < p; ++r) {
          expect = cat(expect, Cat{static_cast<std::uint64_t>(r) & 0xF, 4});
        }
        EXPECT_EQ(got.bits, expect.bits) << "p=" << p;
        EXPECT_EQ(got.len, expect.len) << "p=" << p;
      }
    });
  }
}

TEST(Collectives, AllreduceAndExscanRespectRankOrder) {
  // Same non-commutative concatenation through allreduce (recursive
  // doubling with the non-pow2 fold) and exscan (dissemination).
  for (int p : kSizes) {
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      const Cat mine{static_cast<std::uint64_t>(c.rank()) & 0xF, 4};
      const Cat all = c.allreduce<Cat>(mine, cat);
      Cat expect{0, 4};
      for (int r = 1; r < p; ++r) {
        expect = cat(expect, Cat{static_cast<std::uint64_t>(r) & 0xF, 4});
      }
      EXPECT_EQ(all, expect) << "p=" << p;

      Cat pre{0, 0};  // identity pre-fill, as the exscan contract requires
      c.exscan_bytes(&mine, &pre, sizeof(Cat),
                     [](void* inout, const void* in) {
                       auto* a = static_cast<Cat*>(inout);
                       const auto* b = static_cast<const Cat*>(in);
                       *a = cat(*a, *b);
                     });
      Cat expect_pre{0, 0};
      for (int r = 0; r < c.rank(); ++r) {
        expect_pre = cat(expect_pre, Cat{static_cast<std::uint64_t>(r) & 0xF, 4});
      }
      EXPECT_EQ(pre, expect_pre) << "p=" << p << " rank=" << c.rank();
    });
  }
}

TEST(Collectives, AllreduceVecMatchesElementwiseReference) {
  for (int p : kSizes) {
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      // Vector lengths straddle nothing in particular — allreduce always
      // uses recursive doubling — but exercise the non-pow2 fold at p=3,5.
      for (std::size_t len : {std::size_t{1}, std::size_t{33},
                              std::size_t{4096}}) {
        auto mine = contribution(18, c.rank(), static_cast<int>(len), len);
        auto got = c.allreduce_vec<std::uint64_t>(
            mine, [](std::uint64_t a, std::uint64_t b) { return a + b; });
        std::vector<std::uint64_t> expect(len, 0);
        for (int r = 0; r < p; ++r) {
          auto part = contribution(18, r, static_cast<int>(len), len);
          for (std::size_t i = 0; i < len; ++i) expect[i] += part[i];
        }
        EXPECT_EQ(got, expect) << "p=" << p << " len=" << len;
      }
    });
  }
}

TEST(Collectives, ExscanIsExclusivePrefixSum) {
  for (int p : kSizes) {
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      const std::uint64_t mine =
          static_cast<std::uint64_t>(c.rank() * c.rank()) + 1;
      const std::uint64_t got = c.exscan_sum<std::uint64_t>(mine);
      std::uint64_t expect = 0;
      for (int r = 0; r < c.rank(); ++r) {
        expect += static_cast<std::uint64_t>(r * r) + 1;
      }
      EXPECT_EQ(got, expect) << "p=" << p;
    });
  }
}

TEST(Collectives, MixedSequenceKeepsOrdering) {
  // Back-to-back distinct collectives on the same communicator: per-op tag
  // namespaces must keep the rounds of one from matching another's.
  for (int p : kSizes) {
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      for (int round = 0; round < 20; ++round) {
        std::uint64_t v = static_cast<std::uint64_t>(c.rank() + round);
        c.bcast_value(v, round % p);
        EXPECT_EQ(v, static_cast<std::uint64_t>(round % p + round));
        const auto sum = c.allreduce<std::uint64_t>(
            static_cast<std::uint64_t>(c.rank()),
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
        EXPECT_EQ(sum, static_cast<std::uint64_t>(p * (p - 1) / 2));
        const auto pre =
            c.exscan_sum<std::uint64_t>(static_cast<std::uint64_t>(1));
        EXPECT_EQ(pre, static_cast<std::uint64_t>(c.rank()));
        c.barrier();
      }
    });
  }
}

TEST(Collectives, ConcurrentCollectivesOnSiblingComms) {
  // Split into sub-communicators that run DIFFERENT collective sequences
  // concurrently: context isolation means no cross-talk even though all
  // traffic shares the mailboxes.
  for (int p : {4, 5, 8, 16}) {
    Cluster(ClusterConfig{p}).run([&](Comm& c) {
      Comm half = c.split(c.rank() % 2, c.rank());
      ASSERT_TRUE(half.valid());
      if (c.rank() % 2 == 0) {
        for (int i = 0; i < 10; ++i) {
          auto all = half.allgather<int>(half.rank() * 10 + i);
          for (int r = 0; r < half.size(); ++r) {
            ASSERT_EQ(all[static_cast<std::size_t>(r)], r * 10 + i);
          }
        }
      } else {
        for (int i = 0; i < 10; ++i) {
          const auto sum = half.allreduce<int>(
              half.rank() + i, [](int a, int b) { return a + b; });
          const int q = half.size();
          ASSERT_EQ(sum, q * (q - 1) / 2 + q * i);
        }
      }
      // Rejoin the world for a final cross-check.
      const auto total = c.allreduce<int>(1, [](int a, int b) { return a + b; });
      EXPECT_EQ(total, p);
    });
  }
}

TEST(Collectives, SubCommunicatorRelativeRoots) {
  // Collectives on a split comm use ranks RELATIVE to that comm; a
  // three-way split with shuffled keys exercises the world-rank mapping.
  Cluster(ClusterConfig{12}).run([](Comm& c) {
    Comm third = c.split(c.rank() % 3, -c.rank());  // reversed rank order
    ASSERT_TRUE(third.valid());
    ASSERT_EQ(third.size(), 4);
    // Reversed key: parent rank 9..11 become rank 0 of their comm.
    std::uint64_t v = static_cast<std::uint64_t>(c.rank());
    third.bcast_value(v, 0);
    EXPECT_EQ(v, static_cast<std::uint64_t>(9 + c.rank() % 3));
    auto gathered = third.allgather<int>(c.rank());
    for (std::size_t i = 0; i + 1 < gathered.size(); ++i) {
      EXPECT_GT(gathered[i], gathered[i + 1]) << "descending parent ranks";
    }
  });
}

TEST(Collectives, SingletonCommIsIdentity) {
  Cluster(ClusterConfig{3}).run([](Comm& c) {
    Comm solo = c.split(c.rank(), 0);
    ASSERT_EQ(solo.size(), 1);
    auto data = contribution(19, c.rank(), 0, 100);
    auto expect = data;
    solo.bcast<std::uint64_t>(data, 0);
    EXPECT_EQ(data, expect);
    EXPECT_EQ(solo.allreduce<int>(41, [](int a, int b) { return a + b; }), 41);
    EXPECT_EQ(solo.exscan_sum<int>(5), 0);
    auto all = solo.allgatherv<std::uint64_t>(expect);
    EXPECT_EQ(all, expect);
    solo.barrier();
  });
}

}  // namespace
}  // namespace sdss
