// Tests for the communication counters and the histogram pivot-selection
// option.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baselines/bitonic.hpp"
#include "core/driver.hpp"
#include "core/histogram_pivots.hpp"
#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace sdss {
namespace {

using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;

// --- communication counters -----------------------------------------------------

TEST(CommStats, CountsPointToPointExactly) {
  auto res = Cluster(ClusterConfig{2}).run_collect([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint64_t> v(100);
      c.send<std::uint64_t>(v, 1);
      c.send_value<int>(7, 1);
      EXPECT_EQ(c.stats().p2p_messages, 2u);
      EXPECT_EQ(c.stats().p2p_bytes, 800u + sizeof(int));
    } else {
      std::vector<std::uint64_t> v(100);
      c.recv<std::uint64_t>(v, 0);
      c.recv_value<int>(0);
      EXPECT_EQ(c.stats().p2p_messages, 0u);  // receiving is free
    }
    c.barrier();
  });
  ASSERT_TRUE(res.ok) << res.error;
  const auto total = res.total_comm();
  EXPECT_EQ(total.p2p_messages, 2u);
  EXPECT_EQ(total.p2p_bytes, 800u + sizeof(int));
  EXPECT_EQ(total.collectives, 2u);  // one barrier per rank
}

TEST(CommStats, CountsCollectiveBytes) {
  auto res = Cluster(ClusterConfig{4}).run_collect([](Comm& c) {
    // alltoall of one u64 per peer: small blocks select the Bruck algorithm,
    // whose log2(4) = 2 rounds each ship 2 packed blocks per rank.
    std::vector<std::uint64_t> send(4, 1);
    c.alltoall<std::uint64_t>(send);
  });
  ASSERT_TRUE(res.ok);
  const auto total = res.total_comm();
  EXPECT_EQ(total.collectives, 4u);
  EXPECT_EQ(total.collective_bytes_out, 4u * 4u * 8u);
  EXPECT_EQ(total.collective_messages, 4u * 2u);
  EXPECT_EQ(total.alg(sim::CollAlg::kAlltoallBruck).calls, 4u);
  EXPECT_EQ(total.alg(sim::CollAlg::kAlltoallBruck).bytes_out, 4u * 4u * 8u);
}

TEST(CommStats, AccumulateOperator) {
  sim::CommStats a{1, 10, 2, 20};
  sim::CommStats b{3, 30, 4, 40};
  a += b;
  EXPECT_EQ(a.p2p_messages, 4u);
  EXPECT_EQ(a.p2p_bytes, 40u);
  EXPECT_EQ(a.collectives, 6u);
  EXPECT_EQ(a.collective_bytes_out, 60u);
  EXPECT_EQ(a.total_bytes(), 100u);
}

TEST(CommStats, BitonicMovesFarMoreDataThanSds) {
  // The paper's Section 5 rationale for sampling sorts: bitonic's
  // compare-exchange rounds move Theta(n log^2 p) bytes vs. ~n for a
  // single-exchange sampling sort.
  const int p = 8;
  const std::size_t n = 2000;
  auto shard = [&](int rank) {
    return workloads::uniform_u64(
        n, derive_seed(808, static_cast<std::uint64_t>(rank)), 1ull << 40);
  };
  auto sds_res = Cluster(ClusterConfig{p}).run_collect([&](Comm& w) {
    auto out = sds_sort<std::uint64_t>(w, shard(w.rank()));
  });
  auto bit_res = Cluster(ClusterConfig{p}).run_collect([&](Comm& w) {
    auto out = baselines::bitonic_sort<std::uint64_t>(w, shard(w.rank()));
  });
  ASSERT_TRUE(sds_res.ok);
  ASSERT_TRUE(bit_res.ok);
  const auto sds_bytes = sds_res.total_comm().total_bytes();
  const auto bit_bytes = bit_res.total_comm().total_bytes();
  EXPECT_GT(bit_bytes, 3 * sds_bytes)
      << "bitonic should move several times more data";
}

// --- histogram pivot selection ----------------------------------------------------

TEST(HistogramPivots, RanksNearTargetsOnUniqueKeys) {
  Cluster(ClusterConfig{8}).run([](Comm& w) {
    // Globally unique keys: rank r holds [r*1000, (r+1)*1000), shuffledless.
    std::vector<std::uint64_t> data(1000);
    for (std::size_t i = 0; i < 1000; ++i) {
      data[i] = static_cast<std::uint64_t>(w.rank()) * 1000 + i;
    }
    auto splitters =
        histogram_select_splitters<std::uint64_t>(w, data, w.size());
    ASSERT_EQ(splitters.size(), 7u);
    for (std::size_t g = 0; g < splitters.size(); ++g) {
      // Target rank of splitter g is (g+1)*1000; keys are dense, so the
      // splitter value should be within sampling resolution of it.
      const double target = static_cast<double>((g + 1) * 1000);
      EXPECT_NEAR(static_cast<double>(splitters[g]), target, 120.0)
          << "splitter " << g;
    }
    EXPECT_TRUE(std::is_sorted(splitters.begin(), splitters.end()));
  });
}

TEST(HistogramPivots, CollapseOntoDuplicatedValue) {
  // The documented blind spot: with 60% of all records on one key, several
  // consecutive targets have no distinct key value — splitters collapse
  // onto the hot key.
  Cluster(ClusterConfig{8}).run([](Comm& w) {
    SplitMix64 rng(derive_seed(809, static_cast<std::uint64_t>(w.rank())));
    std::vector<std::uint64_t> data(2000);
    for (auto& x : data) {
      x = rng.next_below(10) < 6 ? 5000u : rng.next_below(10000);
    }
    std::sort(data.begin(), data.end());
    auto splitters =
        histogram_select_splitters<std::uint64_t>(w, data, w.size());
    std::size_t hot = 0;
    for (auto s : splitters) {
      if (s == 5000u) ++hot;
    }
    EXPECT_GE(hot, 2u) << "duplicated value should absorb several splitters";
  });
}

TEST(HistogramPivots, SdsSortWithHistogramSelectionStillBalanced) {
  // Even with collapsed (duplicated) histogram pivots, SDS-Sort's
  // skew-aware partitioning keeps the load bounded — the combination the
  // paper never ran, enabled here as PivotSelection::kHistogram.
  Cluster(ClusterConfig{8}).run([](Comm& w) {
    auto data = workloads::zipf_keys(
        3000, 1.4, derive_seed(810, static_cast<std::uint64_t>(w.rank())));
    const auto before = global_checksum<std::uint64_t>(w, data);
    Config cfg;
    cfg.pivot_selection = PivotSelection::kHistogram;
    auto out = sds_sort<std::uint64_t>(w, std::move(data), cfg);
    EXPECT_TRUE((is_globally_sorted<std::uint64_t>(w, out)));
    EXPECT_EQ(before, (global_checksum<std::uint64_t>(w, out)));
    auto lb = measure_load_balance(w, out.size());
    EXPECT_LE(lb.rdfa, 4.0);
  });
}

TEST(HistogramPivots, UniformWorkloadBalancesTightly) {
  Cluster(ClusterConfig{8}).run([](Comm& w) {
    auto data = workloads::uniform_u64(
        4000, derive_seed(811, static_cast<std::uint64_t>(w.rank())),
        1ull << 40);
    Config cfg;
    cfg.pivot_selection = PivotSelection::kHistogram;
    auto out = sds_sort<std::uint64_t>(w, std::move(data), cfg);
    auto lb = measure_load_balance(w, out.size());
    // Histogramming targets exact global ranks: balance should beat plain
    // regular sampling on unique-ish keys.
    EXPECT_LE(lb.rdfa, 1.2);
  });
}

TEST(HistogramPivots, EmptyClusterDegenerates) {
  Cluster(ClusterConfig{4}).run([](Comm& w) {
    std::vector<std::uint64_t> empty;
    auto splitters =
        histogram_select_splitters<std::uint64_t>(w, empty, w.size());
    EXPECT_EQ(splitters.size(), 3u);
  });
}

}  // namespace
}  // namespace sdss
