// Unit tests for the simulated message-passing runtime: point-to-point
// semantics, every collective against a serial oracle, communicator
// splitting, abort propagation, and the network model's delivery delay.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string_view>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/comm.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"

namespace sdss::sim {
namespace {

Cluster make_cluster(int ranks, int cores_per_node = 1,
                     NetworkModel net = NetworkModel::none()) {
  return Cluster(ClusterConfig{ranks, cores_per_node, net});
}

TEST(SimCluster, SingleRankRuns) {
  make_cluster(1).run([](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    c.barrier();
  });
}

TEST(SimCluster, RejectsBadConfig) {
  EXPECT_THROW(make_cluster(0), CommError);
  EXPECT_THROW(Cluster(ClusterConfig{4, 0}), CommError);
}

TEST(SimCluster, RanksSeeDistinctIds) {
  std::atomic<int> seen_mask{0};
  make_cluster(4).run([&](Comm& c) {
    seen_mask.fetch_or(1 << c.rank());
    EXPECT_EQ(c.size(), 4);
    EXPECT_EQ(c.world_rank(), c.rank());
  });
  EXPECT_EQ(seen_mask.load(), 0b1111);
}

TEST(SimCluster, NodeMapping) {
  make_cluster(8, /*cores_per_node=*/4).run([](Comm& c) {
    EXPECT_EQ(c.node_id(), c.rank() / 4);
    EXPECT_EQ(c.cores_per_node(), 4);
  });
}

TEST(SimCluster, ReusableAcrossRuns) {
  Cluster cl = make_cluster(3);
  for (int iter = 0; iter < 3; ++iter) {
    cl.run([](Comm& c) { c.barrier(); });
  }
}

// --- point-to-point -------------------------------------------------------

TEST(SimPt2pt, SendRecvValue) {
  make_cluster(2).run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(42, 1, /*tag=*/7);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 7), 42);
    }
  });
}

TEST(SimPt2pt, SendRecvSpan) {
  make_cluster(2).run([](Comm& c) {
    std::vector<std::uint64_t> data{1, 2, 3, 4, 5};
    if (c.rank() == 0) {
      c.send<std::uint64_t>(data, 1);
    } else {
      std::vector<std::uint64_t> buf(5);
      EXPECT_EQ(c.recv<std::uint64_t>(buf, 0), 5u);
      EXPECT_EQ(buf, data);
    }
  });
}

TEST(SimPt2pt, ZeroByteMessage) {
  make_cluster(2).run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_bytes(nullptr, 0, 1, 3);
    } else {
      EXPECT_EQ(c.recv_bytes(nullptr, 0, 0, 3), 0u);
    }
  });
}

TEST(SimPt2pt, TagMatchingSelectsCorrectMessage) {
  make_cluster(2).run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(10, 1, /*tag=*/1);
      c.send_value<int>(20, 1, /*tag=*/2);
    } else {
      // Receive out of send order by tag.
      EXPECT_EQ(c.recv_value<int>(0, 2), 20);
      EXPECT_EQ(c.recv_value<int>(0, 1), 10);
    }
  });
}

TEST(SimPt2pt, FifoPerSourceAndTag) {
  make_cluster(2).run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.send_value<int>(i, 1, 0);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(c.recv_value<int>(0, 0), i);
    }
  });
}

TEST(SimPt2pt, AnySourceReceivesFromBoth) {
  make_cluster(3).run([](Comm& c) {
    if (c.rank() != 0) {
      c.send_value<int>(c.rank(), 0, 0);
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        int src = -2;
        sum += c.recv_value<int>(Comm::kAnySource, 0, &src);
        EXPECT_TRUE(src == 1 || src == 2);
      }
      EXPECT_EQ(sum, 3);
    }
  });
}

TEST(SimPt2pt, ProbeThenRecvAnySize) {
  make_cluster(2).run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> v(17, 3.5);
      c.send<double>(v, 1);
    } else {
      auto got = c.recv_any_size<double>(0);
      ASSERT_EQ(got.size(), 17u);
      EXPECT_EQ(got[16], 3.5);
    }
  });
}

TEST(SimPt2pt, RecvIntoTooSmallBufferThrows) {
  auto res = make_cluster(2).run_collect([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v(8, 1);
      c.send<int>(v, 1);
      c.barrier();
    } else {
      std::vector<int> buf(2);
      c.recv<int>(buf, 0);
      c.barrier();
    }
  });
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("larger than receive buffer"), std::string::npos);
}

TEST(SimPt2pt, SendToInvalidRankThrows) {
  auto res = make_cluster(2).run_collect([](Comm& c) {
    if (c.rank() == 0) c.send_value<int>(1, 5, 0);
    c.barrier();
  });
  EXPECT_FALSE(res.ok);
}

TEST(SimPt2pt, SendRecvExchange) {
  make_cluster(2).run([](Comm& c) {
    std::vector<int> out(4, c.rank());
    std::vector<int> in(4, -1);
    const int partner = 1 - c.rank();
    EXPECT_EQ(c.sendrecv<int>(out, in, partner), 4u);
    EXPECT_EQ(in[0], partner);
  });
}

TEST(SimPt2pt, NonblockingRoundtrip) {
  make_cluster(2).run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v{5, 6, 7};
      Request s = c.isend<int>(v, 1);
      EXPECT_TRUE(s.test());
      s.wait();
    } else {
      std::vector<int> buf(3);
      Request r = c.irecv<int>(buf, 0);
      r.wait();
      EXPECT_EQ(r.bytes(), 3 * sizeof(int));
      EXPECT_EQ(r.source(), 0);
      EXPECT_EQ(buf[2], 7);
    }
  });
}

TEST(SimPt2pt, WaitAnyFindsEachSender) {
  make_cluster(4).run([](Comm& c) {
    if (c.rank() != 0) {
      c.send_value<int>(100 + c.rank(), 0, 0);
      return;
    }
    std::vector<int> bufs(3);
    std::vector<Request> reqs;
    for (int s = 1; s < 4; ++s) {
      reqs.push_back(
          c.irecv<int>(std::span<int>(&bufs[static_cast<std::size_t>(s - 1)], 1), s));
    }
    std::vector<char> done(3, 0);
    int completed = 0;
    while (completed < 3) {
      int idx = Request::wait_any(reqs, done);
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, 3);
      EXPECT_FALSE(done[static_cast<std::size_t>(idx)]);
      done[static_cast<std::size_t>(idx)] = 1;
      EXPECT_EQ(bufs[static_cast<std::size_t>(idx)], 101 + idx);
      ++completed;
    }
    std::vector<char> all_done(3, 1);
    EXPECT_EQ(Request::wait_any(reqs, all_done), -1);
  });
}

// --- collectives ----------------------------------------------------------

TEST(SimCollectives, BarrierManyRounds) {
  std::atomic<int> counter{0};
  make_cluster(6).run([&](Comm& c) {
    for (int i = 0; i < 20; ++i) {
      counter.fetch_add(1);
      c.barrier();
      // After each barrier every rank must observe a multiple of 6.
      EXPECT_EQ(counter.load() % 6, 0);
      c.barrier();
    }
  });
}

TEST(SimCollectives, BcastFromEveryRoot) {
  make_cluster(5).run([](Comm& c) {
    for (int root = 0; root < c.size(); ++root) {
      int v = (c.rank() == root) ? 1000 + root : -1;
      c.bcast_value(v, root);
      EXPECT_EQ(v, 1000 + root);
    }
  });
}

TEST(SimCollectives, BcastSpan) {
  make_cluster(3).run([](Comm& c) {
    std::vector<double> v(64);
    if (c.rank() == 1) {
      for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
    }
    c.bcast<double>(v, 1);
    EXPECT_EQ(v[63], 63.0);
  });
}

TEST(SimCollectives, GatherCollectsInRankOrder) {
  make_cluster(4).run([](Comm& c) {
    const int mine = c.rank() * 11;
    std::vector<int> all(4, -1);
    c.gather_bytes(&mine, sizeof(int), all.data(), /*root=*/2);
    if (c.rank() == 2) {
      EXPECT_EQ(all, (std::vector<int>{0, 11, 22, 33}));
    }
  });
}

TEST(SimCollectives, Allgather) {
  make_cluster(4).run([](Comm& c) {
    auto all = c.allgather<int>(c.rank() * c.rank());
    ASSERT_EQ(all.size(), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(i)], i * i);
    }
  });
}

TEST(SimCollectives, AllgathervVariableSizes) {
  make_cluster(4).run([](Comm& c) {
    // Rank r contributes r copies of r.
    std::vector<int> mine(static_cast<std::size_t>(c.rank()), c.rank());
    std::vector<std::size_t> counts;
    auto all = c.allgatherv<int>(mine, &counts);
    ASSERT_EQ(all.size(), 0u + 1 + 2 + 3);
    EXPECT_EQ(counts, (std::vector<std::size_t>{0, 1, 2, 3}));
    EXPECT_EQ(all, (std::vector<int>{1, 2, 2, 3, 3, 3}));
  });
}

TEST(SimCollectives, Alltoall) {
  make_cluster(4).run([](Comm& c) {
    // Element for peer d is 10*me + d.
    std::vector<int> send(4);
    for (int d = 0; d < 4; ++d) {
      send[static_cast<std::size_t>(d)] = 10 * c.rank() + d;
    }
    auto recv = c.alltoall<int>(send);
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(recv[static_cast<std::size_t>(s)], 10 * s + c.rank());
    }
  });
}

TEST(SimCollectives, AlltoallvRedistributes) {
  make_cluster(3).run([](Comm& c) {
    // Rank r sends d+1 copies of value 100*r+d to peer d.
    const auto p = static_cast<std::size_t>(c.size());
    std::vector<std::size_t> scounts(p), sdispls(p);
    std::vector<int> send;
    for (std::size_t d = 0; d < p; ++d) {
      scounts[d] = d + 1;
      sdispls[d] = send.size();
      for (std::size_t k = 0; k <= d; ++k) {
        send.push_back(100 * c.rank() + static_cast<int>(d));
      }
    }
    // Everyone receives rank()+1 values from each peer.
    const std::size_t each = static_cast<std::size_t>(c.rank()) + 1;
    std::vector<std::size_t> rcounts(p, each), rdispls(p);
    for (std::size_t s = 0; s < p; ++s) rdispls[s] = s * each;
    std::vector<int> recv(p * each, -1);
    c.alltoallv<int>(send, scounts, sdispls, recv, rcounts, rdispls);
    for (std::size_t s = 0; s < p; ++s) {
      for (std::size_t k = 0; k < each; ++k) {
        EXPECT_EQ(recv[s * each + k], static_cast<int>(100 * s) + c.rank());
      }
    }
  });
}

TEST(SimCollectives, AlltoallvCountMismatchThrows) {
  auto res = make_cluster(2).run_collect([](Comm& c) {
    std::vector<int> send(2, 1);
    std::vector<std::size_t> scounts{1, 1}, sdispls{0, 1};
    // Receiver expects 2 from each: inconsistent.
    std::vector<std::size_t> rcounts{2, 2}, rdispls{0, 2};
    std::vector<int> recv(4);
    c.alltoallv<int>(send, scounts, sdispls, recv, rcounts, rdispls);
  });
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("alltoallv"), std::string::npos);
}

TEST(SimCollectives, AllreduceAndExscan) {
  make_cluster(5).run([](Comm& c) {
    const int sum =
        c.allreduce<int>(c.rank() + 1, [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 15);
    const int mx =
        c.allreduce<int>(c.rank(), [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(mx, 4);
    const long pre = c.exscan_sum<long>(c.rank() + 1);
    long expect = 0;
    for (int i = 0; i < c.rank(); ++i) expect += i + 1;
    EXPECT_EQ(pre, expect);
  });
}

TEST(SimCollectives, AllreduceVec) {
  make_cluster(3).run([](Comm& c) {
    std::vector<int> mine{c.rank(), 2 * c.rank(), 1};
    auto out =
        c.allreduce_vec<int>(mine, [](int a, int b) { return a + b; });
    EXPECT_EQ(out, (std::vector<int>{3, 6, 3}));
  });
}

TEST(SimCollectives, ConsecutiveCollectivesDoNotInterfere) {
  make_cluster(4).run([](Comm& c) {
    for (int i = 0; i < 50; ++i) {
      auto all = c.allgather<int>(c.rank() + i);
      for (int s = 0; s < 4; ++s) {
        ASSERT_EQ(all[static_cast<std::size_t>(s)], s + i);
      }
    }
  });
}

// --- split ----------------------------------------------------------------

TEST(SimSplit, EvenOddSplit) {
  make_cluster(6).run([](Comm& c) {
    Comm sub = c.split(c.rank() % 2, c.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), c.rank() / 2);
    // Communication stays within the subgroup.
    auto all = sub.allgather<int>(c.rank());
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(all[i] % 2, c.rank() % 2);
    }
  });
}

TEST(SimSplit, KeyReordersRanks) {
  make_cluster(4).run([](Comm& c) {
    // Reverse rank order within a single group.
    Comm sub = c.split(0, -c.rank());
    EXPECT_EQ(sub.rank(), c.size() - 1 - c.rank());
  });
}

TEST(SimSplit, UndefinedOptsOut) {
  make_cluster(4).run([](Comm& c) {
    Comm sub = c.split(c.rank() == 0 ? Comm::kUndefined : 7, c.rank());
    if (c.rank() == 0) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
      EXPECT_EQ(sub.rank(), c.rank() - 1);
    }
  });
}

TEST(SimSplit, SplitByNodeGroupsConsecutiveRanks) {
  make_cluster(8, /*cores_per_node=*/4).run([](Comm& c) {
    Comm node = c.split_by_node();
    ASSERT_TRUE(node.valid());
    EXPECT_EQ(node.size(), 4);
    EXPECT_EQ(node.rank(), c.rank() % 4);
    auto nodes = node.allgather<int>(c.node_id());
    for (int n : nodes) EXPECT_EQ(n, c.node_id());
  });
}

TEST(SimSplit, NestedSplits) {
  make_cluster(8).run([](Comm& c) {
    Comm half = c.split(c.rank() / 4, c.rank());
    ASSERT_EQ(half.size(), 4);
    Comm quarter = half.split(half.rank() / 2, half.rank());
    ASSERT_EQ(quarter.size(), 2);
    auto all = quarter.allgather<int>(c.rank());
    EXPECT_EQ(all.size(), 2u);
    EXPECT_EQ(all[1] - all[0], 1);  // consecutive world ranks grouped
  });
}

TEST(SimSplit, ParentStillUsableAfterSplit) {
  make_cluster(4).run([](Comm& c) {
    Comm sub = c.split(c.rank() % 2, c.rank());
    sub.barrier();
    auto all = c.allgather<int>(c.rank());
    EXPECT_EQ(all.size(), 4u);
  });
}

// --- abort / error propagation ---------------------------------------------

TEST(SimAbort, ExceptionUnblocksPeersAndIsReported) {
  auto res = make_cluster(4).run_collect([](Comm& c) {
    if (c.rank() == 2) throw Error("rank 2 exploded");
    c.barrier();  // would deadlock forever without abort propagation
  });
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.failed_rank, 2);
  EXPECT_NE(res.error.find("rank 2 exploded"), std::string::npos);
}

TEST(SimAbort, OomIsClassified) {
  auto res = make_cluster(2).run_collect([](Comm& c) {
    if (c.rank() == 1) throw SimOomError(1, 1000, 10);
    c.barrier();
  });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.oom);
  EXPECT_EQ(res.failed_rank, 1);
}

TEST(SimAbort, RunRethrowsConcreteType) {
  EXPECT_THROW(make_cluster(2).run([](Comm& c) {
    if (c.rank() == 0) throw SimOomError(0, 5, 1);
    c.recv_value<int>(1);  // blocks until aborted
  }),
               SimOomError);
}

TEST(SimAbort, UnblocksPointToPointWaiters) {
  auto res = make_cluster(3).run_collect([](Comm& c) {
    if (c.rank() == 0) throw Error("boom");
    c.recv_value<int>(0);  // never sent
  });
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.failed_rank, 0);
}

// --- network model ----------------------------------------------------------

TEST(SimNetwork, DelayedDeliveryIsObserved) {
  NetworkModel net;
  net.latency_s = 0.05;  // 50 ms: measurable, brief
  make_cluster(2, 1, net).run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(9, 1);
    } else {
      const auto t0 = std::chrono::steady_clock::now();
      EXPECT_EQ(c.recv_value<int>(0), 9);
      const double waited =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      EXPECT_GE(waited, 0.045);
    }
  });
}

TEST(SimNetwork, IntraNodeIsCheaper) {
  NetworkModel net;
  net.latency_s = 0.08;
  net.intra_node_latency_factor = 0.05;
  // Ranks 0,1 share node 0; rank 2 is alone on node 1.
  make_cluster(3, /*cores_per_node=*/2, net).run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, 1, 0);  // intra-node
      c.send_value<int>(2, 2, 0);  // inter-node
    } else {
      const auto t0 = std::chrono::steady_clock::now();
      c.recv_value<int>(0, 0);
      const double waited =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (c.rank() == 1) {
        EXPECT_LT(waited, 0.05);  // ~4 ms modeled
      } else {
        EXPECT_GE(waited, 0.07);  // ~80 ms modeled
      }
    }
  });
}

TEST(SimNetwork, TestPollsWithoutBlocking) {
  NetworkModel net;
  net.latency_s = 0.05;
  make_cluster(2, 1, net).run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(3, 1);
    } else {
      int buf = 0;
      Request r = c.irecv<int>(std::span<int>(&buf, 1), 0);
      // Immediately after send the message is still "in flight".
      int polls = 0;
      while (!r.test()) ++polls;
      EXPECT_EQ(buf, 3);
      EXPECT_GT(polls, 0);  // at least one poll saw it undelivered
    }
  });
}

TEST(SimNetwork, ExchangeTimeArithmetic) {
  NetworkModel m;
  m.latency_s = 1e-3;
  m.bandwidth_Bps = 1e6;
  // 4 peers, 2 KB out: 4 ms latency + 2 ms transfer.
  EXPECT_NEAR(m.exchange_time(4, 2000, 1000, false), 0.006, 1e-9);
  // Intra-node: latency/10, bandwidth*8 by default.
  EXPECT_NEAR(m.exchange_time(4, 2000, 1000, true),
              4 * 1e-4 + 2000.0 / 8e6, 1e-9);
  EXPECT_NEAR(m.message_time(1000, false), 1e-3 + 1e-3, 1e-9);
}

// --- ledger ------------------------------------------------------------------

TEST(SimLedger, PerRankLedgersAreCollected) {
  Cluster cl = make_cluster(3);
  auto res = cl.run_collect([](Comm& c) {
    c.ledger().add(Phase::kExchange, 0.5 * (c.rank() + 1));
  });
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.ledgers.size(), 3u);
  EXPECT_DOUBLE_EQ(res.ledgers[2].seconds(Phase::kExchange), 1.5);
  EXPECT_DOUBLE_EQ(res.max_ledger().seconds(Phase::kExchange), 1.5);
}

}  // namespace
}  // namespace sdss::sim

namespace sdss::sim {
namespace {

TEST(SimTrace, EnabledByDefault) {
  Cluster cl{ClusterConfig{2}};
  auto res = cl.run_collect([](Comm& c) {
    c.send_value<int>(1, 1 - c.rank(), 0);
    c.recv_value<int>(1 - c.rank(), 0);
    c.barrier();
  });
  ASSERT_TRUE(res.ok);
  // 2 rank lanes + the cluster lane, with events on every rank lane.
  ASSERT_EQ(res.trace.lanes.size(), 3u);
  EXPECT_EQ(res.trace.num_ranks(), 2);
  EXPECT_FALSE(res.trace.lanes[0].empty());
  EXPECT_FALSE(res.trace.lanes[1].empty());
  EXPECT_GT(res.trace.total_events(), 0u);
}

TEST(SimTrace, ExplicitlyDisabledCollectsNothing) {
  ClusterConfig cc{2};
  cc.enable_trace = false;
  auto res = Cluster(cc).run_collect([](Comm& c) {
    c.send_value<int>(1, 1 - c.rank(), 0);
    c.recv_value<int>(1 - c.rank(), 0);
    c.barrier();
  });
  ASSERT_TRUE(res.ok);
  EXPECT_TRUE(res.trace.empty());
  EXPECT_TRUE(res.trace.lanes.empty());
}

TEST(SimTrace, RecordsSendsAndCollectives) {
  ClusterConfig cc{3};
  auto res = Cluster(cc).run_collect([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v(10, 1);
      c.send<int>(v, 1, 5);
    } else if (c.rank() == 1) {
      std::vector<int> buf(10);
      c.recv<int>(buf, 0, 5);
    }
    c.barrier();
    auto all = c.allgather<int>(c.rank());
    (void)all;
  });
  ASSERT_TRUE(res.ok);
  std::size_t sends = 0, recvs = 0, collectives = 0;
  bool saw_send_bytes = false;
  for (std::size_t lane = 0; lane < res.trace.lanes.size(); ++lane) {
    for (const trace::Event& e : res.trace.lanes[lane]) {
      if (e.cat == trace::EventCat::kP2p) {
        if (std::string_view(e.name) == "send") {
          ++sends;
          if (e.kind == trace::EventKind::kInstant && e.value == 40 &&
              lane == 0 && e.peer == 1) {
            saw_send_bytes = true;
          }
        } else if (std::string_view(e.name) == "recv") {
          ++recvs;
        }
      } else if (e.cat == trace::EventCat::kCollective) {
        EXPECT_EQ(e.kind, trace::EventKind::kComplete);
        ++collectives;
      }
    }
  }
  EXPECT_EQ(sends, 1u);
  EXPECT_EQ(recvs, 1u);
  EXPECT_TRUE(saw_send_bytes);
  EXPECT_EQ(collectives, 6u);  // 3 ranks x (barrier + allgather)
}

TEST(SimTrace, ChromeTraceJsonShape) {
  trace::TraceLog log;
  log.lanes.resize(3);  // 2 rank lanes + cluster lane
  trace::Event send;
  send.t_ns = 1'000'000;
  send.value = 128;
  send.name = "send";
  send.peer = 1;
  send.kind = trace::EventKind::kInstant;
  send.cat = trace::EventCat::kP2p;
  log.lanes[0].push_back(send);
  trace::Event coll;
  coll.t_ns = 2'000'000;
  coll.dur_ns = 4'000'000;
  coll.value = 4096;
  coll.aux = 1'500'000;  // blocked ns
  coll.name = "alltoallv";
  coll.kind = trace::EventKind::kComplete;
  coll.cat = trace::EventCat::kCollective;
  log.lanes[1].push_back(coll);
  std::ostringstream os;
  write_chrome_trace(os, log);
  const std::string json = os.str();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"send\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alltoallv\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster\""), std::string::npos);
  EXPECT_NE(json.find("\"peer\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace sdss::sim
