// Chaos-engine tests: deterministic fault schedules (same seed → bit-for-bit
// identical fault sequence), crash-point sweeps over every comm-op index,
// straggler and jitter injection, the no-progress deadlock watchdog, and the
// classified failure taxonomy in RunResult.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "baselines/hyksort.hpp"
#include "baselines/samplesort.hpp"
#include "core/driver.hpp"
#include "sim/chaos.hpp"
#include "sim/cluster.hpp"
#include "telemetry/report.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/zipf.hpp"

namespace sdss {
namespace {

using sim::ChaosSpec;
using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;
using sim::FailureClass;
using sim::FaultEvent;
using sim::FaultKind;
using sim::FaultPlan;
using sim::RunResult;

constexpr int kRanks = 8;

std::function<void(Comm&)> sds_body(std::uint64_t seed, std::size_t n = 1200) {
  return [seed, n](Comm& w) {
    auto data = workloads::zipf_keys(
        n, 1.0, derive_seed(seed, static_cast<std::uint64_t>(w.rank())));
    sds_sort<std::uint64_t>(w, std::move(data));
  };
}

ClusterConfig chaos_config(ChaosSpec spec, double watchdog_s = 5.0) {
  ClusterConfig cfg;
  cfg.num_ranks = kRanks;
  cfg.chaos = std::move(spec);
  cfg.watchdog_timeout_s = watchdog_s;
  return cfg;
}

// --- the plan is a pure function of the seed -------------------------------

TEST(FaultPlan, SameSeedSameScheduleBitForBit) {
  ChaosSpec spec;
  spec.seed = 12345;
  spec.crash_ranks = 3;
  spec.crash_op_range = 32;
  spec.stall_prob = 0.25;
  spec.jitter_prob = 0.5;
  const FaultPlan a(spec, kRanks);
  const FaultPlan b(spec, kRanks);
  ASSERT_TRUE(a.enabled());
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(a.crash_op(r), b.crash_op(r));
    for (std::uint64_t k = 0; k < 64; ++k) {
      EXPECT_EQ(a.stall_before(r, k), b.stall_before(r, k));
      EXPECT_EQ(a.jitter_for(r, k), b.jitter_for(r, k));
    }
  }
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  ChaosSpec spec;
  spec.crash_ranks = 2;
  spec.stall_prob = 0.25;
  spec.seed = 1;
  const FaultPlan a(spec, kRanks);
  spec.seed = 2;
  const FaultPlan b(spec, kRanks);
  bool differ = false;
  for (int r = 0; r < kRanks && !differ; ++r) {
    if (a.crash_op(r) != b.crash_op(r)) differ = true;
    for (std::uint64_t k = 0; k < 64 && !differ; ++k) {
      if (a.stall_before(r, k) != b.stall_before(r, k)) differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(FaultPlan, ForcedEventRankOutOfRangeRejected) {
  ChaosSpec spec;
  spec.forced.push_back(FaultEvent{FaultKind::kCrash, kRanks, 0, 0.0});
  EXPECT_THROW(FaultPlan(spec, kRanks), Error);
}

TEST(FaultPlan, StableKindNames) {
  EXPECT_STREQ(sim::fault_kind_name(FaultKind::kCrash), "crash");
  EXPECT_STREQ(sim::fault_kind_name(FaultKind::kStall), "stall");
  EXPECT_STREQ(sim::fault_kind_name(FaultKind::kJitter), "jitter");
  EXPECT_STREQ(sim::fault_kind_name(FaultKind::kSpillFail), "spill-fail");
  EXPECT_STREQ(sim::fault_kind_name(FaultKind::kSpillCorrupt),
               "spill-corrupt");
  EXPECT_STREQ(sim::fault_kind_name(FaultKind::kSpillStall), "spill-stall");
  EXPECT_EQ(sim::fault_kind_from_name("stall"), FaultKind::kStall);
  EXPECT_EQ(sim::fault_kind_from_name("spill-fail"), FaultKind::kSpillFail);
  EXPECT_EQ(sim::fault_kind_from_name("spill-corrupt"),
            FaultKind::kSpillCorrupt);
  EXPECT_EQ(sim::fault_kind_from_name("spill-stall"), FaultKind::kSpillStall);
  EXPECT_STREQ(sim::failure_class_name(FailureClass::kNone), "none");
  EXPECT_STREQ(sim::failure_class_name(FailureClass::kOom), "oom");
  EXPECT_STREQ(sim::failure_class_name(FailureClass::kDeadlock), "deadlock");
  EXPECT_STREQ(sim::failure_class_name(FailureClass::kInjectedCrash),
               "injected-crash");
  EXPECT_STREQ(sim::failure_class_name(FailureClass::kPeerAbort),
               "peer-abort");
  EXPECT_STREQ(sim::failure_class_name(FailureClass::kSpillIoError),
               "spill-io");
  EXPECT_STREQ(sim::failure_class_name(FailureClass::kLogicError),
               "logic-error");
}

// --- deterministic replay (same seed twice → identical everything) ---------

TEST(Replay, CrashRunReplaysIdentically) {
  ChaosSpec spec;
  spec.seed = 99;
  spec.forced.push_back(FaultEvent{FaultKind::kCrash, 3, 5, 0.0});
  const RunResult a = Cluster(chaos_config(spec)).run_collect(sds_body(31));
  const RunResult b = Cluster(chaos_config(spec)).run_collect(sds_body(31));
  ASSERT_FALSE(a.ok);
  EXPECT_EQ(a.failure, FailureClass::kInjectedCrash);
  EXPECT_EQ(a.failed_rank, 3);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.failed_rank, b.failed_rank);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.fault_events, b.fault_events);
}

TEST(Replay, StallScheduleReplaysIdentically) {
  ChaosSpec spec;
  spec.seed = 7;
  spec.stall_prob = 0.3;
  spec.max_stall_s = 0.001;
  const RunResult a = Cluster(chaos_config(spec)).run_collect(sds_body(32));
  const RunResult b = Cluster(chaos_config(spec)).run_collect(sds_body(32));
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_FALSE(a.fault_events.empty());
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.comm_ops, b.comm_ops);
}

// --- crash-point sweep: kill a rank at every comm-op index -----------------

void sweep_all_ops(const std::function<void(Comm&)>& body, int victim) {
  // Probe run (no chaos) to learn the victim's op count, then crash it at
  // every single index. Every run must terminate classified — a hang would
  // trip the 5 s watchdog and fail the kInjectedCrash assertion instead.
  const RunResult probe = Cluster(chaos_config(ChaosSpec{})).run_collect(body);
  ASSERT_TRUE(probe.ok) << probe.error;
  ASSERT_EQ(probe.comm_ops.size(), static_cast<std::size_t>(kRanks));
  const std::uint64_t ops = probe.comm_ops[static_cast<std::size_t>(victim)];
  ASSERT_GT(ops, 0u);
  for (std::uint64_t k = 0; k < ops; ++k) {
    ChaosSpec spec;
    spec.seed = 1000 + k;
    spec.forced.push_back(FaultEvent{FaultKind::kCrash, victim, k, 0.0});
    const RunResult res = Cluster(chaos_config(spec)).run_collect(body);
    ASSERT_FALSE(res.ok) << "crash at op " << k << " did not fail";
    EXPECT_EQ(res.failure, FailureClass::kInjectedCrash)
        << "crash at op " << k << ": " << res.error;
    EXPECT_EQ(res.failed_rank, victim) << res.error;
    const FaultEvent crash{FaultKind::kCrash, victim, k, 0.0};
    EXPECT_NE(std::find(res.fault_events.begin(), res.fault_events.end(),
                        crash),
              res.fault_events.end());
    // Secondary unwinds are recorded, never swallowed, and all classified.
    bool victim_recorded = false;
    for (const sim::RankFailure& f : res.rank_failures) {
      EXPECT_NE(f.failure, FailureClass::kNone);
      if (f.rank == victim) {
        victim_recorded = true;
        EXPECT_EQ(f.failure, FailureClass::kInjectedCrash);
      }
    }
    EXPECT_TRUE(victim_recorded);
  }
}

TEST(CrashSweep, SdsSortEveryOpIndex) { sweep_all_ops(sds_body(41, 800), 2); }

TEST(CrashSweep, HykSortEveryOpIndex) {
  sweep_all_ops(
      [](Comm& w) {
        auto data = workloads::zipf_keys(
            800, 1.0, derive_seed(42, static_cast<std::uint64_t>(w.rank())));
        baselines::hyksort<std::uint64_t>(w, std::move(data));
      },
      5);
}

TEST(CrashSweep, SamplesortEveryOpIndex) {
  sweep_all_ops(
      [](Comm& w) {
        auto data = workloads::zipf_keys(
            800, 1.0, derive_seed(43, static_cast<std::uint64_t>(w.rank())));
        baselines::sample_sort<std::uint64_t>(w, std::move(data));
      },
      0);
}

// --- the deadlock watchdog -------------------------------------------------

TEST(Watchdog, ClassifiesCrossRecvDeadlock) {
  ClusterConfig cfg;
  cfg.num_ranks = 2;
  cfg.watchdog_timeout_s = 0.25;
  const RunResult res = Cluster(cfg).run_collect([](Comm& w) {
    // Both ranks receive, nobody sends: a textbook deadlock.
    (void)w.recv_value<int>(1 - w.rank(), /*tag=*/5);
  });
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failure, FailureClass::kDeadlock);
  EXPECT_EQ(res.failed_rank, -1);
  // The message carries the per-rank blocked-op dump.
  EXPECT_NE(res.error.find("deadlock"), std::string::npos) << res.error;
  EXPECT_NE(res.error.find("rank 0: recv(src=1, tag=5"), std::string::npos)
      << res.error;
  EXPECT_NE(res.error.find("rank 1: recv(src=0, tag=5"), std::string::npos)
      << res.error;
  // rank_failures covers the verdict (-1) plus both aborted ranks.
  bool saw_verdict = false;
  int peer_aborts = 0;
  for (const sim::RankFailure& f : res.rank_failures) {
    if (f.rank == -1) {
      saw_verdict = true;
      EXPECT_EQ(f.failure, FailureClass::kDeadlock);
    }
    if (f.failure == FailureClass::kPeerAbort) ++peer_aborts;
  }
  EXPECT_TRUE(saw_verdict);
  EXPECT_EQ(peer_aborts, 2);
}

TEST(Watchdog, DumpsCollectiveMismatchDeadlock) {
  ClusterConfig cfg;
  cfg.num_ranks = 4;
  cfg.watchdog_timeout_s = 0.25;
  const RunResult res = Cluster(cfg).run_collect([](Comm& w) {
    // Rank 3 skips the barrier: the other three block forever inside the
    // dissemination rounds.
    if (w.rank() != 3) w.barrier();
  });
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failure, FailureClass::kDeadlock);
  EXPECT_NE(res.error.find("coll_recv"), std::string::npos) << res.error;
  EXPECT_NE(res.error.find("rank 3: finished"), std::string::npos)
      << res.error;
}

TEST(Watchdog, NoFalsePositiveOnCleanSort) {
  ChaosSpec none;
  const RunResult res =
      Cluster(chaos_config(none, /*watchdog_s=*/0.15))
          .run_collect(sds_body(51, 4000));
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.failure, FailureClass::kNone);
  EXPECT_TRUE(res.rank_failures.empty());
}

TEST(Watchdog, NoFalsePositiveWhileOneRankComputes) {
  // Every other rank sits blocked in a collective for ~3x the watchdog
  // threshold while rank 0 does "compute" (sleeps). A computing rank is not
  // blocked, so the predicate must never fire.
  ClusterConfig cfg;
  cfg.num_ranks = 4;
  cfg.watchdog_timeout_s = 0.15;
  const RunResult res = Cluster(cfg).run_collect([](Comm& w) {
    if (w.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(450));
    }
    w.barrier();
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(Watchdog, ZeroTimeoutDisablesIt) {
  ClusterConfig cfg;
  cfg.num_ranks = 2;
  cfg.watchdog_timeout_s = 0.0;
  // A run that finishes instantly: just prove launch works without the
  // watchdog thread (a deadlock here would hang, so keep the body trivial).
  const RunResult res = Cluster(cfg).run_collect([](Comm& w) { w.barrier(); });
  EXPECT_TRUE(res.ok);
}

// --- stragglers and jitter -------------------------------------------------

TEST(Straggler, ForcedStallSlowsButCompletes) {
  ChaosSpec spec;
  spec.seed = 61;
  spec.forced.push_back(FaultEvent{FaultKind::kStall, 1, 2, 0.05});
  const RunResult res = Cluster(chaos_config(spec, /*watchdog_s=*/0.2))
                            .run_collect(sds_body(62));
  ASSERT_TRUE(res.ok) << res.error;
  const FaultEvent stall{FaultKind::kStall, 1, 2, 0.05};
  EXPECT_NE(
      std::find(res.fault_events.begin(), res.fault_events.end(), stall),
      res.fault_events.end());
}

TEST(Jitter, PreservesPerSourceFifoOrder) {
  constexpr int kMessages = 50;
  ChaosSpec spec;
  spec.seed = 71;
  spec.jitter_prob = 1.0;
  spec.max_jitter_s = 0.001;
  ClusterConfig cfg;
  cfg.num_ranks = 2;
  cfg.chaos = spec;
  const RunResult res = Cluster(cfg).run_collect([](Comm& w) {
    if (w.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) w.send_value<int>(i, /*dest=*/1);
    } else {
      for (int i = 0; i < kMessages; ++i) {
        ASSERT_EQ(w.recv_value<int>(/*src=*/0), i);
      }
    }
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GT(res.jittered_messages, 0u);
  EXPECT_LE(res.jittered_messages, static_cast<std::uint64_t>(kMessages));
}

TEST(Jitter, SortStaysCorrectUnderDeliveryJitter) {
  ChaosSpec spec;
  spec.seed = 72;
  spec.jitter_prob = 0.5;
  spec.max_jitter_s = 0.0005;
  const RunResult res =
      Cluster(chaos_config(spec)).run_collect([](Comm& w) {
        auto data = workloads::zipf_keys(
            1500, 1.2, derive_seed(73, static_cast<std::uint64_t>(w.rank())));
        auto out = sds_sort<std::uint64_t>(w, std::move(data));
        ASSERT_TRUE(std::is_sorted(out.begin(), out.end()));
      });
  EXPECT_TRUE(res.ok) << res.error;
}

// --- failure taxonomy ------------------------------------------------------

TEST(Taxonomy, OomMessageCarriesRankCountAndLimit) {
  const RunResult res = Cluster(ClusterConfig{kRanks}).run_collect([](Comm& w) {
    auto data = workloads::zipf_keys(
        2000, 0.8, derive_seed(81, static_cast<std::uint64_t>(w.rank())));
    Config cfg;
    cfg.mem_limit_records = 1;  // impossible: everyone receives more
    sds_sort<std::uint64_t>(w, std::move(data), cfg);
  });
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failure, FailureClass::kOom);
  EXPECT_TRUE(res.oom);
  EXPECT_NE(res.error.find("simulated out-of-memory on rank "),
            std::string::npos)
      << res.error;
  EXPECT_NE(res.error.find("would receive "), std::string::npos) << res.error;
  EXPECT_NE(res.error.find("mem_limit_records = 1"), std::string::npos)
      << res.error;
}

TEST(Taxonomy, PeerAbortSecondariesRecordedNotSwallowed) {
  ClusterConfig cfg;
  cfg.num_ranks = 4;
  const RunResult res = Cluster(cfg).run_collect([](Comm& w) {
    w.barrier();
    if (w.rank() == 1) throw Error("boom on purpose");
    w.barrier();  // cannot complete: rank 1 is gone
  });
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failure, FailureClass::kLogicError);
  EXPECT_EQ(res.failed_rank, 1);
  ASSERT_EQ(res.rank_failures.size(), 4u);  // primary + 3 secondaries
  int peer_aborts = 0;
  for (const sim::RankFailure& f : res.rank_failures) {
    ASSERT_NE(f.failure, FailureClass::kNone);
    if (f.rank == 1) {
      EXPECT_EQ(f.failure, FailureClass::kLogicError);
      EXPECT_NE(f.error.find("boom on purpose"), std::string::npos);
    } else {
      EXPECT_EQ(f.failure, FailureClass::kPeerAbort);
      ++peer_aborts;
    }
  }
  EXPECT_EQ(peer_aborts, 3);
}

// Satellite: the OOM taxonomy must not depend on how many OS workers drive
// the fibers. An all-duplicate workload with skew-aware splitting disabled
// routes every record to one deterministic victim at the exchange, so the
// classification, the failed rank, the phase detail, and the full per-rank
// failure list must be identical between the fully deterministic
// single-worker scheduler and a racy multi-worker one — at P=256, the
// large-scale regime the simulator exists for.
TEST(Taxonomy, ExchangeOomIdenticalAcrossSchedulerWorkers) {
  const auto run = [](int workers) {
    ClusterConfig cfg;
    cfg.num_ranks = 256;
    cfg.sched_workers = workers;
    return Cluster(cfg).run_collect([](Comm& w) {
      // 64 copies of one key per rank: with skew_aware off, the splitter
      // sends the whole population (16384 records) to a single rank, far
      // over the 1000-record budget.
      std::vector<std::uint64_t> data(64, 42);
      Config scfg;
      scfg.skew_aware = false;
      scfg.mem_limit_records = 1000;
      sds_sort<std::uint64_t>(w, std::move(data), scfg);
    });
  };
  const RunResult a = run(1);
  const RunResult b = run(4);
  ASSERT_FALSE(a.ok);
  ASSERT_FALSE(b.ok);
  EXPECT_EQ(a.failure, FailureClass::kOom);
  EXPECT_EQ(b.failure, a.failure);
  EXPECT_TRUE(a.oom);
  EXPECT_TRUE(b.oom);
  EXPECT_EQ(a.failure_detail, "exchange");
  EXPECT_EQ(b.failure_detail, a.failure_detail);
  EXPECT_EQ(a.failed_rank, b.failed_rank);
  EXPECT_EQ(a.error, b.error);
  // The casualty *vocabulary* is worker-count invariant: exactly one kOom
  // (the victim), everything else kPeerAbort. (The peer-abort *count* is
  // not: fibers that had not yet started when the abort fired never unwind.)
  for (const RunResult* res : {&a, &b}) {
    int ooms = 0;
    for (const sim::RankFailure& f : res->rank_failures) {
      if (f.failure == FailureClass::kOom) {
        ++ooms;
        EXPECT_EQ(f.rank, res->failed_rank);
      } else {
        EXPECT_EQ(f.failure, FailureClass::kPeerAbort);
      }
    }
    EXPECT_EQ(ooms, 1);
  }
}

// --- spill fault schedules: determinism + telemetry round-trip -------------

std::function<void(Comm&)> spill_body(std::uint64_t seed) {
  return [seed](Comm& w) {
    auto data = workloads::zipf_keys(
        800, 1.5, derive_seed(seed, static_cast<std::uint64_t>(w.rank())));
    Config cfg;
    cfg.stable = true;
    cfg.mem_limit_records = 600;
    cfg.memory_policy = MemoryPolicy::kSpill;
    cfg.spill_frame_records = 128;
    sds_sort<std::uint64_t>(w, std::move(data), cfg);
  };
}

TEST(SpillChaos, ForcedFailureReplaysIdentically) {
  // A single forced spill failure: the only scheduled event, so the fired
  // list, the classification, and the message replay bit-for-bit even
  // though peers unwind racily.
  ChaosSpec spec;
  spec.seed = 4242;
  spec.forced.push_back(FaultEvent{FaultKind::kSpillFail, 2, 9, 0.0});
  const RunResult a = Cluster(chaos_config(spec)).run_collect(spill_body(71));
  const RunResult b = Cluster(chaos_config(spec)).run_collect(spill_body(71));
  ASSERT_FALSE(a.ok);
  EXPECT_EQ(a.failure, FailureClass::kSpillIoError);
  EXPECT_EQ(a.failed_rank, 2);
  EXPECT_TRUE(a.failure_detail == "spill-write" ||
              a.failure_detail == "spill-read")
      << a.failure_detail;
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.failed_rank, b.failed_rank);
  EXPECT_EQ(a.failure_detail, b.failure_detail);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.fault_events, b.fault_events);
  ASSERT_EQ(a.fault_events.size(), 1u);
  EXPECT_EQ(a.fault_events[0],
            (FaultEvent{FaultKind::kSpillFail, 2, 9, 0.0}));
}

TEST(SpillChaos, SeededStallScheduleReplaysIdentically) {
  // Seeded slow-disk stalls complete the run, so the full fired schedule and
  // every rank's spill-op count are pure functions of (seed, data) —
  // identical run to run regardless of worker interleaving.
  ChaosSpec spec;
  spec.seed = 7979;
  spec.spill_stall_prob = 0.2;
  spec.max_spill_stall_s = 0.0005;
  const RunResult a = Cluster(chaos_config(spec)).run_collect(spill_body(72));
  const RunResult b = Cluster(chaos_config(spec)).run_collect(spill_body(72));
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_FALSE(a.fault_events.empty());
  for (const FaultEvent& e : a.fault_events) {
    EXPECT_EQ(e.kind, FaultKind::kSpillStall);
  }
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.spill_ops, b.spill_ops);
}

TEST(SpillChaos, FaultEventsRoundTripThroughTelemetryUnchanged) {
  // Fired spill events — real stalls from a completing run plus one of each
  // injected kind — must serialize through the telemetry `chaos` object and
  // parse back unchanged.
  ChaosSpec spec;
  spec.seed = 777;
  spec.spill_stall_prob = 0.3;
  spec.max_spill_stall_s = 0.0005;
  const RunResult res =
      Cluster(chaos_config(spec)).run_collect(spill_body(73));
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_FALSE(res.fault_events.empty());

  telemetry::RunReport rep;
  rep.name = "spill-chaos-roundtrip";
  rep.has_chaos = true;
  rep.chaos_seed = spec.seed;
  rep.fault_events = res.fault_events;
  rep.fault_events.push_back(FaultEvent{FaultKind::kSpillFail, 5, 11, 0.0});
  rep.fault_events.push_back(
      FaultEvent{FaultKind::kSpillCorrupt, 6, 12, 0.0});
  const telemetry::RunReport back =
      telemetry::report_from_json(telemetry::to_json(rep));
  EXPECT_TRUE(back.has_chaos);
  EXPECT_EQ(back.chaos_seed, spec.seed);
  ASSERT_EQ(back.fault_events.size(), rep.fault_events.size());
  for (std::size_t i = 0; i < rep.fault_events.size(); ++i) {
    EXPECT_EQ(back.fault_events[i], rep.fault_events[i]) << i;
  }
}

TEST(Taxonomy, InjectedFaultAccessorsAndMessage) {
  const SimInjectedFault e(3, 7, "allgather", 42);
  EXPECT_EQ(e.rank(), 3);
  EXPECT_EQ(e.op_index(), 7u);
  const std::string what = e.what();
  EXPECT_NE(what.find("injected crash on rank 3 at comm op 7"),
            std::string::npos);
  EXPECT_NE(what.find("allgather"), std::string::npos);
  EXPECT_NE(what.find("chaos seed 42"), std::string::npos);
}

}  // namespace
}  // namespace sdss
