// Failure-injection tests: every adaptive path of every distributed
// algorithm must fail *cleanly* (no hang, primary error surfaced, abort
// classified) when a rank dies at an arbitrary point, when the memory
// budget is violated mid-pipeline, and under API misuse.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baselines/hyksort.hpp"
#include "baselines/radixsort.hpp"
#include "baselines/samplesort.hpp"
#include "core/driver.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "workloads/zipf.hpp"

namespace sdss {
namespace {

using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;

// --- a draconian budget must OOM cleanly through every adaptive path ------------

struct OomPathCase {
  bool stable;
  std::size_t tau_o;        // forces sync (0) or overlap (big)
  std::size_t tau_s;        // forces merge-all (big) or re-sort (0)
  std::size_t tau_m_bytes;  // forces node merging when big
  int cores_per_node;
};

class OomThroughEveryPath : public ::testing::TestWithParam<OomPathCase> {};

TEST_P(OomThroughEveryPath, FailsCleanlyWithOom) {
  const auto& pc = GetParam();
  auto res =
      Cluster(ClusterConfig{8, pc.cores_per_node}).run_collect([&](Comm& w) {
        auto data = workloads::zipf_keys(
            2000, 0.8, derive_seed(717, static_cast<std::uint64_t>(w.rank())));
        Config cfg;
        cfg.stable = pc.stable;
        cfg.tau_o = pc.tau_o;
        cfg.tau_s = pc.tau_s;
        cfg.tau_m_bytes = pc.tau_m_bytes;
        cfg.mem_limit_records = 1;  // impossible: everyone receives more
        sds_sort<std::uint64_t>(w, std::move(data), cfg);
      });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.oom) << res.error;
}

INSTANTIATE_TEST_SUITE_P(
    Paths, OomThroughEveryPath,
    ::testing::Values(OomPathCase{false, 0, 1u << 20, 0, 1},      // sync+merge
                      OomPathCase{false, 0, 0, 0, 1},             // sync+resort
                      OomPathCase{false, 1u << 20, 1u << 20, 0, 1},  // overlap
                      OomPathCase{true, 0, 1u << 20, 0, 1},       // stable
                      OomPathCase{false, 0, 1u << 20, 1u << 30, 4},  // nodemerge
                      OomPathCase{true, 0, 1u << 20, 1u << 30, 4}));

// --- a rank dying at arbitrary points must never hang the cluster ----------------

TEST(RankDeath, DuringSdsSortAtVariousMoments) {
  for (int victim : {0, 3, 7}) {
    auto res = Cluster(ClusterConfig{8}).run_collect([&](Comm& w) {
      if (w.rank() == victim) throw Error("injected death");
      auto data = workloads::zipf_keys(
          1500, 1.0, derive_seed(718, static_cast<std::uint64_t>(w.rank())));
      sds_sort<std::uint64_t>(w, std::move(data));
    });
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.failed_rank, victim);
    EXPECT_FALSE(res.oom);
  }
}

TEST(RankDeath, AfterPartialTrafficInHykSort) {
  auto res = Cluster(ClusterConfig{8}).run_collect([&](Comm& w) {
    auto data = workloads::zipf_keys(
        1500, 1.0, derive_seed(719, static_cast<std::uint64_t>(w.rank())));
    if (w.rank() == 5) {
      // Participate in the first collectives, then die mid-algorithm.
      w.allgather<int>(w.rank());
      throw Error("late death");
    }
    w.allgather<int>(w.rank());
    baselines::hyksort<std::uint64_t>(w, std::move(data));
  });
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.failed_rank, 5);
}

TEST(RankDeath, OtherBaselinesAbortCleanly) {
  auto res1 = Cluster(ClusterConfig{4}).run_collect([](Comm& w) {
    if (w.rank() == 1) throw Error("boom");
    baselines::sample_sort<std::uint64_t>(w, std::vector<std::uint64_t>(100, 1));
  });
  EXPECT_FALSE(res1.ok);

  auto res2 = Cluster(ClusterConfig{4}).run_collect([](Comm& w) {
    if (w.rank() == 2) throw Error("boom");
    baselines::radix_sort_distributed<std::uint64_t>(
        w, std::vector<std::uint64_t>(100, 1));
  });
  EXPECT_FALSE(res2.ok);
  EXPECT_EQ(res2.failed_rank, 2);
}

// --- API misuse is rejected with errors, not corruption ---------------------------

TEST(Misuse, PartitionWithWrongPivotCount) {
  auto res = Cluster(ClusterConfig{3}).run_collect([](Comm& w) {
    std::vector<std::uint64_t> data{1, 2, 3};
    auto samples = sample_local_pivots<std::uint64_t>(data, 2);
    std::vector<std::uint64_t> wrong_pivots{5};  // needs p-1 = 2
    Config cfg;
    sdss_partition<std::uint64_t>(w, data, samples, wrong_pivots, cfg);
  });
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("p-1 global pivots"), std::string::npos);
}

TEST(Misuse, InvalidCommOperationsThrow) {
  sim::Comm invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_THROW(invalid.barrier(), CommError);
  EXPECT_THROW(invalid.send_value<int>(1, 0), CommError);
  std::vector<int> buf(1);
  EXPECT_THROW(invalid.recv<int>(buf, 0), CommError);
}

TEST(Misuse, EmptyRequestOperationsThrow) {
  sim::Request r;
  EXPECT_FALSE(r.valid());
  EXPECT_THROW(r.test(), CommError);
  EXPECT_THROW(r.wait(), CommError);
  EXPECT_THROW(r.bytes(), CommError);
  EXPECT_THROW(r.source(), CommError);
}

TEST(Misuse, AlltoallWrongElementCountThrows) {
  auto res = Cluster(ClusterConfig{3}).run_collect([](Comm& w) {
    std::vector<int> send(2, 0);  // needs 3
    w.alltoall<int>(send);
  });
  EXPECT_FALSE(res.ok);
}

TEST(Misuse, BcastRootOutOfRangeThrows) {
  auto res = Cluster(ClusterConfig{2}).run_collect([](Comm& w) {
    int v = 0;
    w.bcast_value(v, 5);
  });
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("root out of range"), std::string::npos);
}

// --- repeated failure/recovery cycles --------------------------------------------

TEST(Recovery, ClusterObjectSurvivesFailedRuns) {
  Cluster cl{ClusterConfig{4}};
  for (int i = 0; i < 5; ++i) {
    auto bad = cl.run_collect([i](Comm& w) {
      if (w.rank() == i % 4) throw Error("cycle " + std::to_string(i));
      w.barrier();
    });
    EXPECT_FALSE(bad.ok);
    // A fresh run on the same Cluster object works fine afterwards.
    cl.run([](Comm& w) {
      auto all = w.allgather<int>(w.rank());
      ASSERT_EQ(all.size(), 4u);
    });
  }
}

}  // namespace
}  // namespace sdss
