// Unit tests for the utility layer: stats (RDFA, delta), checksums,
// formatting, phase ledger, and RNG determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/format.hpp"
#include "util/hash.hpp"
#include "util/phase_ledger.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sdss {
namespace {

TEST(Stats, RdfaBalanced) {
  std::vector<std::size_t> loads{100, 100, 100, 100};
  EXPECT_DOUBLE_EQ(rdfa(loads), 1.0);
}

TEST(Stats, RdfaSkewed) {
  std::vector<std::size_t> loads{400, 0, 0, 0};
  EXPECT_DOUBLE_EQ(rdfa(loads), 4.0);
}

TEST(Stats, RdfaEdgeCases) {
  EXPECT_DOUBLE_EQ(rdfa(std::vector<std::size_t>{}), 1.0);
  EXPECT_DOUBLE_EQ(rdfa(std::vector<std::size_t>{0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(rdfa(std::vector<std::size_t>{7}), 1.0);
}

TEST(Stats, MeasureDelta) {
  std::vector<std::uint64_t> keys{1, 2, 2, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_DOUBLE_EQ(measure_delta(keys), 0.3);
  EXPECT_DOUBLE_EQ(measure_delta(std::vector<std::uint64_t>{}), 0.0);
  std::vector<std::uint64_t> all_same(50, 9);
  EXPECT_DOUBLE_EQ(measure_delta(all_same), 1.0);
}

TEST(Stats, OnlineStats) {
  OnlineStats s;
  for (double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Stats, Quantile) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Hash, ChecksumDetectsDifferences) {
  std::vector<std::uint64_t> a{1, 2, 3, 4};
  std::vector<std::uint64_t> b{4, 3, 2, 1};  // permutation: equal checksum
  std::vector<std::uint64_t> c{1, 2, 3, 5};  // different multiset
  EXPECT_EQ(multiset_checksum<std::uint64_t>(a),
            multiset_checksum<std::uint64_t>(b));
  EXPECT_NE(multiset_checksum<std::uint64_t>(a),
            multiset_checksum<std::uint64_t>(c));
}

TEST(Hash, ChecksumIsAdditive) {
  std::vector<int> a{1, 2};
  std::vector<int> b{3};
  std::vector<int> ab{1, 2, 3};
  auto ca = multiset_checksum<int>(a);
  ca += multiset_checksum<int>(b);
  EXPECT_EQ(ca, multiset_checksum<int>(ab));
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512B");
  EXPECT_EQ(human_bytes(4096), "4.0KB");
  EXPECT_EQ(human_bytes(160ull << 20), "160MB");
}

TEST(Format, HumanCount) {
  EXPECT_EQ(human_count(999), "999");
  EXPECT_EQ(human_count(1500), "1.5k");
  EXPECT_EQ(human_count(2500000), "2.5M");
}

TEST(Format, TextTableAligns) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(PhaseLedger, AccumulatesAndReduces) {
  PhaseLedger a, b;
  a.add(Phase::kExchange, 1.0);
  a.add(Phase::kExchange, 0.5);
  b.add(Phase::kExchange, 2.0);
  b.add(Phase::kOther, 0.25);
  EXPECT_DOUBLE_EQ(a.seconds(Phase::kExchange), 1.5);
  a.max_with(b);
  EXPECT_DOUBLE_EQ(a.seconds(Phase::kExchange), 2.0);
  EXPECT_DOUBLE_EQ(a.seconds(Phase::kOther), 0.25);
  EXPECT_DOUBLE_EQ(a.total(), 2.25);
  a.clear();
  EXPECT_DOUBLE_EQ(a.total(), 0.0);
}

TEST(PhaseLedger, ScopedPhaseMeasuresSomething) {
  PhaseLedger l;
  {
    ScopedPhase p(&l, Phase::kLocalOrdering);
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x = x + 1.0;
  }
  EXPECT_GT(l.seconds(Phase::kLocalOrdering), 0.0);
  { ScopedPhase p(nullptr, Phase::kOther); }  // null ledger is a no-op
}

TEST(PhaseLedger, Names) {
  EXPECT_EQ(phase_name(Phase::kPivotSelection), "pivot-selection");
  EXPECT_EQ(phase_name(Phase::kExchange), "exchange");
  EXPECT_EQ(phase_name(Phase::kLocalOrdering), "local-ordering");
  EXPECT_EQ(phase_name(Phase::kNodeMerge), "node-merge");
  EXPECT_EQ(phase_name(Phase::kOther), "other");
}

TEST(Rng, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DerivedSeedsDiffer) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  EXPECT_EQ(derive_seed(5, 3), derive_seed(5, 3));
}

TEST(Rng, DoublesInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Error, OomCarriesContext) {
  SimOomError e(3, 1000, 100);
  EXPECT_EQ(e.rank(), 3);
  EXPECT_EQ(e.required(), 1000u);
  EXPECT_EQ(e.limit(), 100u);
  EXPECT_NE(std::string(e.what()).find("rank 3"), std::string::npos);
}

}  // namespace
}  // namespace sdss
