// Adversarial tests for the distributed output validators in
// core/validate.hpp: duplicate runs spanning rank boundaries, empty ranks,
// boundary inversions (including across empty ranks), locally-unsorted data,
// and permutation-checksum corruption (dropped, duplicated, altered records).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/validate.hpp"
#include "sim/cluster.hpp"
#include "util/hash.hpp"

namespace sdss {
namespace {

using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;

using Keys = std::vector<std::uint64_t>;

std::span<const std::uint64_t> as_span(const Keys& v) {
  return std::span<const std::uint64_t>(v);
}

/// Run `body` on 4 ranks and require the run itself to succeed (the
/// validators must report verdicts, not throw).
void run4(const std::function<void(Comm&)>& body) {
  const auto res = Cluster(ClusterConfig{4}).run_collect(body);
  ASSERT_TRUE(res.ok) << res.error;
}

// --- global sortedness -----------------------------------------------------

TEST(GloballySorted, DuplicateRunSpanningEveryRankBoundary) {
  run4([](Comm& w) {
    // One giant run of equal keys across all ranks: min == max == prev_max
    // at every boundary, which is sorted (ties are allowed to touch).
    const Keys mine(5, 42);
    EXPECT_TRUE(is_globally_sorted<std::uint64_t>(w, as_span(mine)));
  });
}

TEST(GloballySorted, DuplicatesTouchingBoundariesAccepted) {
  run4([](Comm& w) {
    const Keys per_rank[4] = {{1, 5, 5}, {5, 5, 7}, {7, 7, 7}, {9}};
    const Keys& mine = per_rank[w.rank()];
    EXPECT_TRUE(is_globally_sorted<std::uint64_t>(w, as_span(mine)));
  });
}

TEST(GloballySorted, BoundaryInversionCaughtOnEveryRank) {
  run4([](Comm& w) {
    // Rank 1's minimum (9) undercuts rank 0's maximum (10); the verdict is
    // collective, so every rank — not just the offenders — sees false.
    const Keys per_rank[4] = {{1, 10}, {9, 20}, {21, 22}, {23}};
    const Keys& mine = per_rank[w.rank()];
    EXPECT_FALSE(is_globally_sorted<std::uint64_t>(w, as_span(mine)));
  });
}

TEST(GloballySorted, EmptyRanksAreSkipped) {
  run4([](Comm& w) {
    const Keys per_rank[4] = {{1, 2}, {}, {}, {3, 4}};
    const Keys& mine = per_rank[w.rank()];
    EXPECT_TRUE(is_globally_sorted<std::uint64_t>(w, as_span(mine)));
  });
}

TEST(GloballySorted, InversionAcrossEmptyRankCaught) {
  run4([](Comm& w) {
    // The previous *non-empty* rank's max must carry across empty ranks:
    // rank 0 ends at 6, rank 3 starts at 1.
    const Keys per_rank[4] = {{5, 6}, {}, {}, {1, 2}};
    const Keys& mine = per_rank[w.rank()];
    EXPECT_FALSE(is_globally_sorted<std::uint64_t>(w, as_span(mine)));
  });
}

TEST(GloballySorted, AllRanksEmptyIsSorted) {
  run4([](Comm& w) {
    const Keys mine;
    EXPECT_TRUE(is_globally_sorted<std::uint64_t>(w, as_span(mine)));
  });
}

TEST(GloballySorted, LocallyUnsortedCaughtEverywhere) {
  run4([](Comm& w) {
    // Rank 2's local data is unsorted even though the boundary extremes
    // (min=3, max=9) line up globally.
    const Keys per_rank[4] = {{1, 2}, {2, 3}, {3, 9, 4}, {10}};
    const Keys& mine = per_rank[w.rank()];
    EXPECT_FALSE(is_globally_sorted<std::uint64_t>(w, as_span(mine)));
  });
}

// --- permutation checksum --------------------------------------------------

TEST(GlobalChecksum, InvariantUnderRedistribution) {
  run4([](Comm& w) {
    const Keys before[4] = {{1, 2, 3}, {4, 5}, {}, {6}};
    // Same multiset, completely different placement and order.
    const Keys after[4] = {{6, 5}, {}, {3, 1}, {2, 4}};
    const auto a = global_checksum<std::uint64_t>(w, as_span(before[w.rank()]));
    const auto b = global_checksum<std::uint64_t>(w, as_span(after[w.rank()]));
    EXPECT_EQ(a, b);
  });
}

TEST(GlobalChecksum, DroppedRecordDetected) {
  run4([](Comm& w) {
    const Keys before[4] = {{1, 2, 3}, {4, 5}, {6}, {7}};
    const Keys after[4] = {{1, 2, 3}, {4, 5}, {}, {7}};  // rank 2 lost 6
    const auto a = global_checksum<std::uint64_t>(w, as_span(before[w.rank()]));
    const auto b = global_checksum<std::uint64_t>(w, as_span(after[w.rank()]));
    EXPECT_FALSE(a == b);
  });
}

TEST(GlobalChecksum, DuplicatedRecordDetected) {
  run4([](Comm& w) {
    const Keys before[4] = {{1, 2}, {3}, {4}, {5}};
    const Keys after[4] = {{1, 2}, {3, 3}, {4}, {5}};  // 3 appears twice
    const auto a = global_checksum<std::uint64_t>(w, as_span(before[w.rank()]));
    const auto b = global_checksum<std::uint64_t>(w, as_span(after[w.rank()]));
    EXPECT_FALSE(a == b);
  });
}

TEST(GlobalChecksum, CorruptedRecordDetected) {
  run4([](Comm& w) {
    // One bit flipped in one record on one rank.
    const Keys before[4] = {{10, 20}, {30}, {40}, {50}};
    const Keys after[4] = {{10, 20}, {30}, {41}, {50}};
    const auto a = global_checksum<std::uint64_t>(w, as_span(before[w.rank()]));
    const auto b = global_checksum<std::uint64_t>(w, as_span(after[w.rank()]));
    EXPECT_FALSE(a == b);
  });
}

TEST(GatherAll, ConcatenatesInRankOrder) {
  run4([](Comm& w) {
    const Keys per_rank[4] = {{1}, {}, {2, 3}, {4}};
    const auto all = gather_all<std::uint64_t>(w, as_span(per_rank[w.rank()]));
    EXPECT_EQ(all, (Keys{1, 2, 3, 4}));
  });
}

}  // namespace
}  // namespace sdss
