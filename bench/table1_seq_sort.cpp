// Table 1 — std::sort vs. std::stable_sort on 1 GB of floats, Uniform and
// Zipf(0.7 / 1.4 / 2.1) (paper Section 4.1.1).
//
// Paper results (268M floats on one Edison core):
//            Uniform  Zipf0.7(2%)  Zipf1.4(32%)  Zipf2.1(63%)
//   sort       26.1s      14.6s        8.9s         6.6s
//   stable     35.2s      24.3s       16.5s        12.5s
// Shapes to reproduce: stable_sort slower than sort everywhere; both get
// FASTER as skew rises (duplicate-heavy inputs branch predictably).
// Scaled-down: 4M floats via google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <vector>

#include "telemetry/report.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace {

constexpr std::size_t kN = 4u << 20;  // 4M floats = 16 MB (paper: 1 GB)

enum Dist : std::int64_t { kUniform = 0, kZipf07, kZipf14, kZipf21 };

std::vector<float> make_data(std::int64_t dist) {
  switch (dist) {
    case kUniform: {
      auto d = sdss::workloads::uniform_doubles(kN, 42);
      return {d.begin(), d.end()};
    }
    case kZipf07:
    case kZipf14:
    case kZipf21: {
      const double alpha = dist == kZipf07 ? 0.7 : dist == kZipf14 ? 1.4 : 2.1;
      auto keys = sdss::workloads::zipf_keys(kN, alpha, 42);
      std::vector<float> out(keys.size());
      for (std::size_t i = 0; i < keys.size(); ++i) {
        out[i] = static_cast<float>(keys[i]);
      }
      return out;
    }
    default:
      return {};
  }
}

const char* dist_name(std::int64_t d) {
  switch (d) {
    case kUniform:
      return "Uniform";
    case kZipf07:
      return "Zipf a=0.7 (delta~2%)";
    case kZipf14:
      return "Zipf a=1.4 (delta~32%)";
    case kZipf21:
      return "Zipf a=2.1 (delta~63%)";
    default:
      return "?";
  }
}

void BM_StdSort(benchmark::State& state) {
  const auto base = make_data(state.range(0));
  for (auto _ : state) {
    auto v = base;
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetLabel(dist_name(state.range(0)));
  state.SetItemsProcessed(static_cast<std::int64_t>(kN) *
                          state.iterations());
}

void BM_StdStableSort(benchmark::State& state) {
  const auto base = make_data(state.range(0));
  for (auto _ : state) {
    auto v = base;
    std::stable_sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetLabel(dist_name(state.range(0)));
  state.SetItemsProcessed(static_cast<std::int64_t>(kN) *
                          state.iterations());
}

BENCHMARK(BM_StdSort)->Arg(kUniform)->Arg(kZipf07)->Arg(kZipf14)->Arg(kZipf21)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StdStableSort)
    ->Arg(kUniform)->Arg(kZipf07)->Arg(kZipf14)->Arg(kZipf21)
    ->Unit(benchmark::kMillisecond);

// Console reporter that additionally records every benchmark run as a
// telemetry::RunReport, so this (sequential, google-benchmark-driven) table
// emits the same --json report files as the SPMD benches. The whole
// per-iteration time lands in the "other" phase — there is no distributed
// pipeline to break down — and the load is trivially balanced (1 rank).
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(sdss::telemetry::ReportRegistry* registry)
      : registry_(registry) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double iters = run.iterations > 0
                               ? static_cast<double>(run.iterations)
                               : 1.0;
      sdss::telemetry::RunReport rep;
      rep.name = run.benchmark_name();
      rep.experiment = "Table 1 — std::sort vs std::stable_sort";
      rep.algorithm = run.run_name.function_name;
      rep.workload = run.report_label;
      rep.set_param("records", std::to_string(kN));
      rep.ranks = 1;
      rep.wall_seconds = run.real_accumulated_time / iters;
      rep.crit_path_cpu_seconds = run.cpu_accumulated_time / iters;
      rep.phases.add(sdss::Phase::kOther, rep.wall_seconds,
                     rep.crit_path_cpu_seconds);
      rep.rdfa = 1.0;
      rep.max_load = kN;
      rep.total_records = kN;
      registry_->add(std::move(rep));
    }
  }

 private:
  sdss::telemetry::ReportRegistry* registry_;
};

}  // namespace

int main(int argc, char** argv) {
  std::cout << "\n=== Table 1 — std::sort vs std::stable_sort, Uniform vs "
               "Zipf ===\n"
               "paper (1GB/268M floats): sort 26.1/14.6/8.9/6.6 s, "
               "stable_sort 35.2/24.3/16.5/12.5 s for "
               "Uniform/a0.7/a1.4/a2.1.\n"
               "paper-shape: stable_sort > sort everywhere; both drop "
               "monotonically as skew (delta) rises.\n\n";
  // Strip --json before google-benchmark sees argv (it is ours, and this
  // bench reads it via the shared /proc/self/cmdline path anyway).
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      ++i;  // skip the path operand too
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) continue;
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);

  sdss::telemetry::ReportRegistry registry;
  RecordingReporter reporter(&registry);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const std::string json_path =
      sdss::telemetry::report_path_from_cmdline_or_env();
  if (!json_path.empty() && !registry.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "bench: cannot write report file " << json_path << "\n";
      return 1;
    }
    registry.write(out);
    std::cout << "wrote " << registry.size() << " run report(s) to "
              << json_path << "\n";
  }
  return 0;
}
