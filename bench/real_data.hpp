// Shared machinery for the real-application-data experiments (Figs. 9/10,
// Table 4): synthetic PTF detections sorted by real-bogus score and
// synthetic cosmology particles sorted by cluster ID.
//
// Scale notes. The imbalance that kills HykSort is relative: the duplicated
// key's population is delta*N = (delta*p) x the average per-rank load. The
// paper's PTF run (192 cores, delta=28%) has delta*p ~ 54 -> HykSort
// survives only because one Edison node can hold the whole 27 GB (RDFA
// 32.68, no OOM); its cosmology run (16K cores, delta=0.73%) has delta*p ~
// 120 >> the memory headroom -> OOM. We reproduce both regimes at reduced
// scale: PTF on 8 ranks with no budget (finite but large RDFA), cosmology
// on 256 ranks with a 2x-average budget (delta*p ~ 1.9 + the surrounding
// bucket exceeds it; SDS's skew-aware split stays well below).
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "baselines/hyksort.hpp"
#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "workloads/cosmology.hpp"
#include "workloads/ptf.hpp"

namespace sdss::bench {

struct RealDataResult {
  TimedResult timing;
  double rdfa = 0.0;
};

enum class RealAlgo { kHykSort, kSds, kSdsStable };

inline const char* real_algo_name(RealAlgo a) {
  switch (a) {
    case RealAlgo::kHykSort:
      return "HykSort";
    case RealAlgo::kSds:
      return "SDS-Sort";
    case RealAlgo::kSdsStable:
      return "SDS-Sort/stable";
  }
  return "?";
}

/// Run one algorithm over per-rank shards produced by `make_shard(rank)`,
/// sorting by `key`. Records both the phase breakdown and the RDFA, and
/// annotates the run's telemetry report with the dataset name and the
/// adaptive decisions the SDS driver took. `policy` applies to the SDS
/// variants only (HykSort has no spill path).
template <typename T, typename KeyFn, typename MakeShard>
RealDataResult run_real_data(int ranks, std::size_t mem_limit,
                             RealAlgo algo, MakeShard make_shard, KeyFn key,
                             const std::string& dataset = "real-data",
                             MemoryPolicy policy = MemoryPolicy::kStrict) {
  sim::Cluster cluster(
      sim::ClusterConfig{ranks, 1, sim::NetworkModel::aries_like()});
  const bool spill_leg = policy == MemoryPolicy::kSpill;
  RealDataResult result;
  std::mutex mu;
  LoadBalance balance;
  balance.rdfa = 0.0;
  SortReport decisions;
  SpillStats spill_sum;
  std::uint64_t spill_max_passes = 0, spill_max_peak = 0;
  bool any_spilled = false;
  RunMeta meta;
  meta.name = dataset + "/p=" + std::to_string(ranks) + "/" +
              real_algo_name(algo) + (spill_leg ? "/spill" : "");
  meta.algorithm = real_algo_name(algo);
  meta.workload = dataset;
  meta.params = {{"mem_budget_records", std::to_string(mem_limit)},
                 {"record_bytes", std::to_string(sizeof(T))}};
  if (spill_leg) meta.params.emplace_back("memory_policy", "spill");
  result.timing = time_spmd(
      cluster,
      [&](sim::Comm& world) {
        std::vector<T> data = make_shard(world.rank());
        std::vector<T> out;
        SortReport rank_report;
        const double secs = timed_section(world, [&] {
          switch (algo) {
            case RealAlgo::kHykSort: {
              baselines::HykSortConfig cfg;
              cfg.mem_limit_records = mem_limit;
              out = baselines::hyksort<T>(world, std::move(data), cfg, key);
              break;
            }
            case RealAlgo::kSds:
            case RealAlgo::kSdsStable: {
              Config cfg;
              cfg.stable = algo == RealAlgo::kSdsStable;
              cfg.mem_limit_records = mem_limit;
              cfg.memory_policy = policy;
              // Scaled-down tau_o: Edison's 4096-core overlap threshold
              // maps to ~256 simulated ranks, so the PTF run (64 ranks,
              // like the paper's 192 cores) overlaps and the cosmology run
              // (512 ranks, like the paper's 16K cores) uses the blocking
              // exchange — the same adaptive decisions the paper's runs
              // made.
              cfg.tau_o = 256;
              out = sds_sort<T>(world, std::move(data), cfg, key,
                                &rank_report);
              break;
            }
          }
        });
        auto lb = measure_load_balance(world, out.size());
        if (world.rank() == 0) {
          std::lock_guard<std::mutex> lk(mu);
          balance = std::move(lb);
          decisions = rank_report;
        }
        if (rank_report.spilled) {
          std::lock_guard<std::mutex> lk(mu);
          any_spilled = true;
          spill_sum += rank_report.spill;
          spill_max_passes =
              std::max(spill_max_passes, rank_report.spill.merge_passes);
          spill_max_peak = std::max(spill_max_peak,
                                    rank_report.spill.peak_resident_records);
        }
        return secs;
      },
      std::move(meta));
  result.rdfa = balance.rdfa;
  if (telemetry::RunReport* rep = last_report()) {
    rep->rdfa = balance.rdfa;
    rep->max_load = balance.max_load;
    rep->total_records = balance.total;
    if (algo != RealAlgo::kHykSort && result.timing.ok) {
      rep->set_param("tau_o", "256");
      rep->set_param("exchange", to_string(decisions.exchange));
      rep->set_param("ordering", to_string(decisions.ordering));
    }
    if (any_spilled) {
      spill_sum.merge_passes = spill_max_passes;
      spill_sum.peak_resident_records = spill_max_peak;
      telemetry::add_spill(*rep, spill_sum);
    }
  }
  return result;
}

/// Print the paper's stacked-bar breakdown as a table row. All per-phase
/// figures are max-over-ranks thread-CPU time: the honest parallel-makespan
/// proxy on a host with fewer cores than simulated ranks (wall time there
/// serializes every rank's work and hides load imbalance entirely).
inline void print_breakdown_rows(TextTable& table, const std::string& algo,
                                 const RealDataResult& r) {
  if (!r.timing.ok) {
    table.row({algo, "OOM", "-", "-", "-", "-"});
    return;
  }
  const PhaseLedger& b = r.timing.breakdown;
  const double other =
      b.cpu_seconds(Phase::kOther) + b.cpu_seconds(Phase::kNodeMerge);
  table.row({algo, fmt_seconds(r.timing.crit_path_cpu),
             fmt_seconds(b.cpu_seconds(Phase::kPivotSelection)),
             fmt_seconds(b.cpu_seconds(Phase::kExchange)),
             fmt_seconds(b.cpu_seconds(Phase::kLocalOrdering)),
             fmt_seconds(other)});
}

}  // namespace sdss::bench
