// Extension — GraySort-style benchmark records (paper Section 6 future
// work: "carry out more tests with well-known sorting benchmarks").
//
// Sort Benchmark records: 100 bytes, 10-byte binary key. Two workloads:
// the standard uniform-key GraySort, and a Daytona-style duplicate-stress
// variant with 40% of records on one hot key. The skewed run gives every
// algorithm a per-rank budget of 3x the average, so partition quality is
// pass/fail, not just a time.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "baselines/hyksort.hpp"
#include "baselines/samplesort.hpp"
#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "workloads/graysort.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;
using workloads::GraySortRecord;

constexpr int kRanks = 8;
constexpr std::size_t kPerRank = 20000;  // 2 MB/rank of 100-byte records

struct Point {
  TimedResult timing;
  double rdfa = 0.0;
};

Point run_algo(const std::string& algo, bool skewed, std::size_t budget) {
  sim::Cluster cluster(
      sim::ClusterConfig{kRanks, 1, sim::NetworkModel::aries_like()});
  Point point;
  std::mutex mu;
  point.timing = time_spmd(cluster, [&](sim::Comm& world) {
    const auto first = static_cast<std::uint64_t>(world.rank()) * kPerRank;
    auto data = skewed
                    ? workloads::graysort_records_skewed(first, kPerRank, 303,
                                                         0.4)
                    : workloads::graysort_records(first, kPerRank, 303);
    std::vector<GraySortRecord> out;
    const double secs = timed_section(world, [&] {
      if (algo == "SDS-Sort" || algo == "SDS-Sort/stable") {
        Config cfg;
        cfg.stable = algo == "SDS-Sort/stable";
        cfg.mem_limit_records = budget;
        out = sds_sort<GraySortRecord>(world, std::move(data), cfg,
                                       workloads::graysort_key);
      } else if (algo == "HykSort") {
        baselines::HykSortConfig cfg;
        cfg.mem_limit_records = budget;
        out = baselines::hyksort<GraySortRecord>(world, std::move(data), cfg,
                                                 workloads::graysort_key);
      } else {
        baselines::SampleSortConfig cfg;
        cfg.mem_limit_records = budget;
        out = baselines::sample_sort<GraySortRecord>(world, std::move(data),
                                                     cfg,
                                                     workloads::graysort_key);
      }
    });
    auto lb = measure_load_balance(world, out.size());
    std::lock_guard<std::mutex> lk(mu);
    if (lb.rdfa > point.rdfa) point.rdfa = lb.rdfa;
    return secs;
  });
  return point;
}
}  // namespace

int main() {
  print_header("Extension — GraySort benchmark records",
               "8 ranks x 20k 100-byte records (10-byte binary keys); "
               "skewed variant: 40% hot key, per-rank budget 3x average.");

  const std::uint64_t total_records =
      static_cast<std::uint64_t>(kRanks) * kPerRank;
  TextTable table;
  table.header({"workload", "algorithm", "time(s)", "RDFA",
                "throughput(MB/min)"});
  bool sds_skew_ok = true;
  for (bool skewed : {false, true}) {
    const std::size_t budget = skewed ? 3 * kPerRank : 0;
    for (const char* algo :
         {"SampleSort", "HykSort", "SDS-Sort", "SDS-Sort/stable"}) {
      auto pt = run_algo(algo, skewed, budget);
      if (skewed && std::string(algo).starts_with("SDS")) {
        sds_skew_ok = sds_skew_ok && pt.timing.ok;
      }
      table.row({skewed ? "skewed(40% hot)" : "uniform", algo,
                 time_cell(pt.timing), rdfa_cell(pt.rdfa, pt.timing.ok),
                 pt.timing.ok
                     ? fmt_seconds(mb_per_min(total_records, 100,
                                              pt.timing.seconds),
                                   0)
                     : "-"});
    }
  }
  std::cout << table.str() << "\n";
  print_shape(
      "uniform GraySort: everyone completes with comparable times; skewed "
      "GraySort: the sample/histogram baselines blow the budget (hot key "
      "on one rank) while both SDS variants stay within RDFA <= 4.");
  print_verdict(std::string("SDS variants completed the skewed workload: ") +
                (sds_skew_ok ? "yes" : "no") + ".");
  return 0;
}
