// Fig. 7 — weak scaling on the Uniform workload (paper Section 4.1.2).
//
// Paper: at 128K cores / 52.4 TB, SDS-Sort (111 TB/min) is ~51% faster than
// HykSort (73.8 TB/min); SDS-Sort/stable trails both (54 TB/min) because of
// its extra pivot-selection and ordering work. All three complete.
#include <cstring>
#include <iostream>

#include "weak_scaling.hpp"

int main(int argc, char** argv) {
  using namespace sdss;
  using namespace sdss::bench;
  // --large: extend the sweep into the 1k-rank regime (scheduler fibers;
  // smaller shards keep the single-host wall time in budget).
  bool large = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--large") == 0) large = true;
  }
  const auto& ranks = large ? kWeakRanksLarge : kWeakRanks;
  const std::size_t per_rank = large ? kWeakPerRankLarge : kWeakPerRank;
  print_header("Fig. 7 — weak scaling, Uniform workload",
               std::to_string(per_rank / 1000) +
                   "k records/rank, Aries-like model; end-to-end sort time "
                   "and throughput.");

  TextTable table;
  table.header({"p", "HykSort(s)", "SDS-Sort(s)", "SDS-Sort/stable(s)",
                "SDS thpt(MB/min)"});
  double last_hyk = 0.0, last_sds = 0.0, last_stable = 0.0;
  for (int p : ranks) {
    auto hyk =
        weak_scaling_point(p, WeakWorkload::kUniform, Algo::kHykSort, per_rank);
    auto sds =
        weak_scaling_point(p, WeakWorkload::kUniform, Algo::kSds, per_rank);
    auto stab = weak_scaling_point(p, WeakWorkload::kUniform, Algo::kSdsStable,
                                   per_rank);
    last_hyk = hyk.timing.seconds;
    last_sds = sds.timing.seconds;
    last_stable = stab.timing.seconds;
    const auto records = static_cast<std::uint64_t>(p) * per_rank;
    table.row({std::to_string(p), time_cell(hyk.timing),
               time_cell(sds.timing), time_cell(stab.timing),
               fmt_seconds(mb_per_min(records, sizeof(std::uint64_t),
                                      sds.timing.seconds),
                           0)});
  }
  std::cout << table.str() << "\n";
  print_shape(
      "all three algorithms complete; SDS-Sort is fastest (paper: 51% over "
      "HykSort at 128K cores), SDS-Sort/stable is slowest of the SDS "
      "variants.");
  print_verdict("at the largest scale: SDS " + fmt_seconds(last_sds) +
                "s vs HykSort " + fmt_seconds(last_hyk) + "s (ratio " +
                fmt_seconds(last_hyk / last_sds, 2) + "x); stable " +
                fmt_seconds(last_stable) + "s.");
  return 0;
}
