// Fig. 10 — sorting cosmology particles by cluster ID (paper Section 4.2).
//
// Paper: 2.1 TB / 68G particles on 16K cores, cluster-ID delta = 0.73%.
// HykSort dies with OOM (the duplicate population is ~120x the per-rank
// average); SDS-Sort (15.6 TB/min) and SDS-Sort/stable (7.9 TB/min)
// complete with RDFA 1.396. Scaled-down: 512 ranks x 2k particles with a
// 2.5x-average budget: HykSort's duplicate bucket reaches delta*p ~ 3.8x
// the average and blows the budget, while SDS-Sort's skew-aware split
// keeps every rank near 1.7x.
#include <cstring>
#include <iostream>

#include "real_data.hpp"
#include "util/rng.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr int kRanks = 512;
constexpr std::size_t kPerRank = 2000;

std::vector<workloads::Particle> cosmo_shard(int rank) {
  return workloads::cosmology_particles(
      kPerRank, derive_seed(91001, static_cast<std::uint64_t>(rank)));
}

std::uint64_t cosmo_key(const workloads::Particle& p) { return p.cluster_id; }
}  // namespace

int main(int argc, char** argv) {
  // --spill: add a HykSort-budget SDS leg under MemoryPolicy::kSpill — a
  // budget tight enough that even SDS's balanced split cannot hold the
  // receive volume, demonstrating the out-of-core degradation on the
  // cosmology key distribution.
  bool spill = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--spill") == 0) spill = true;
  }
  print_header("Fig. 10 — sorting cosmology particles by cluster ID",
               "512 ranks x 2k synthetic particles (delta ~ 0.73%), per-rank "
               "budget 2.5x average; per-phase breakdown in max-over-ranks CPU "
               "time (the critical path).");

  const std::size_t budget = kPerRank * 5 / 2;
  auto hyk = run_real_data<workloads::Particle>(
      kRanks, budget, RealAlgo::kHykSort, cosmo_shard, cosmo_key,
      "cosmology");
  auto sds = run_real_data<workloads::Particle>(
      kRanks, budget, RealAlgo::kSds, cosmo_shard, cosmo_key,
      "cosmology");
  auto stab = run_real_data<workloads::Particle>(
      kRanks, budget, RealAlgo::kSdsStable, cosmo_shard, cosmo_key,
      "cosmology");

  TextTable table;
  table.header({"algorithm", "crit-path(s)", "pivot-sel(s)", "exchange(s)",
                "local-ord(s)", "other(s)"});
  print_breakdown_rows(table, "HykSort", hyk);
  print_breakdown_rows(table, "SDS-Sort", sds);
  print_breakdown_rows(table, "SDS-Sort/stable", stab);
  bool spill_ok = true;
  if (spill) {
    // Budget below even the balanced per-rank receive volume: strict mode
    // would OOM on every rank; the spill leg completes out-of-core.
    auto sp = run_real_data<workloads::Particle>(
        kRanks, kPerRank / 2, RealAlgo::kSds, cosmo_shard, cosmo_key,
        "cosmology", MemoryPolicy::kSpill);
    print_breakdown_rows(table, "SDS-Sort/spill", sp);
    spill_ok = sp.timing.ok;
  }
  std::cout << table.str() << "\n";

  const std::uint64_t records =
      static_cast<std::uint64_t>(kRanks) * kPerRank;
  print_shape(
      "HykSort fails with OOM on the duplicated cluster IDs; both SDS "
      "variants complete quickly (paper: 15.6 and 7.9 TB/min), the stable "
      "version ~2x slower than the fast one.");
  std::string verdict = std::string("HykSort: ") +
                        (hyk.timing.oom ? "OOM (as in the paper)"
                                        : (hyk.timing.ok ? "completed" : "failed"));
  if (sds.timing.ok) {
    verdict += "; SDS throughput " +
               fmt_seconds(mb_per_min(records, sizeof(workloads::Particle),
                                      sds.timing.crit_path_cpu),
                           0) +
               " MB/min, RDFA " + fmt_seconds(sds.rdfa, 3);
  }
  if (stab.timing.ok) {
    verdict += "; stable/fast time ratio " +
               fmt_seconds(stab.timing.crit_path_cpu / sds.timing.crit_path_cpu, 2) + "x";
  }
  if (spill) {
    verdict += std::string("; spill leg (0.5x-average budget) ") +
               (spill_ok ? "completed" : "FAILED");
  }
  print_verdict(verdict + ".");
  return 0;
}
