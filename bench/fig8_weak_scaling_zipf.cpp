// Fig. 8 — weak scaling on the Zipf workload (paper Section 4.1.2).
//
// Paper: HykSort fails with out-of-memory at EVERY scale on the skewed
// workload (the duplicated key's whole population lands on one rank); both
// SDS-Sort variants deliver times similar to the Uniform runs (SDS-Sort
// 117 TB/min at 128K cores).
#include <cstring>
#include <iostream>

#include "weak_scaling.hpp"

int main(int argc, char** argv) {
  using namespace sdss;
  using namespace sdss::bench;
  // --large: extend the sweep into the 1k-rank regime (scheduler fibers;
  // smaller shards keep the single-host wall time in budget).
  // --spill: add an SDS-Sort leg under MemoryPolicy::kSpill — same budget,
  // but an over-budget exchange degrades to the out-of-core path instead of
  // OOMing (compare against the strict SDS column, which stays in-core at
  // 3x average on this workload).
  bool large = false;
  bool spill = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--large") == 0) large = true;
    if (std::strcmp(argv[i], "--spill") == 0) spill = true;
  }
  const auto& ranks = large ? kWeakRanksLarge : kWeakRanks;
  const std::size_t per_rank = large ? kWeakPerRankLarge : kWeakPerRank;
  print_header("Fig. 8 — weak scaling, Zipf workload",
               std::to_string(per_rank / 1000) +
                   "k records/rank, alpha=1.4 (delta~32%), per-rank budget "
                   "3x average; HykSort is expected to OOM.");

  std::vector<std::string> head{"p", "HykSort(s)", "SDS-Sort(s)",
                                "SDS-Sort/stable(s)", "SDS thpt(MB/min)"};
  if (spill) head.push_back("SDS/spill(s)");
  TextTable table;
  table.header(head);
  int hyk_ooms = 0;
  bool sds_all_ok = true;
  bool spill_all_ok = true;
  for (int p : ranks) {
    auto hyk =
        weak_scaling_point(p, WeakWorkload::kZipf, Algo::kHykSort, per_rank);
    auto sds = weak_scaling_point(p, WeakWorkload::kZipf, Algo::kSds, per_rank);
    auto stab =
        weak_scaling_point(p, WeakWorkload::kZipf, Algo::kSdsStable, per_rank);
    if (hyk.timing.oom) ++hyk_ooms;
    sds_all_ok = sds_all_ok && sds.timing.ok && stab.timing.ok;
    const auto records = static_cast<std::uint64_t>(p) * per_rank;
    std::vector<std::string> row{
        std::to_string(p), time_cell(hyk.timing), time_cell(sds.timing),
        time_cell(stab.timing),
        fmt_seconds(
            mb_per_min(records, sizeof(std::uint64_t), sds.timing.seconds),
            0)};
    if (spill) {
      auto sp = weak_scaling_point(p, WeakWorkload::kZipf, Algo::kSds,
                                   per_rank, MemoryPolicy::kSpill);
      spill_all_ok = spill_all_ok && sp.timing.ok;
      row.push_back(time_cell(sp.timing));
    }
    table.row(row);
  }
  std::cout << table.str() << "\n";
  print_shape(
      "HykSort hits OOM on the skewed workload (paper: at every scale); "
      "SDS-Sort and SDS-Sort/stable complete with times similar to the "
      "Uniform runs.");
  std::string verdict = "HykSort OOM at " + std::to_string(hyk_ooms) + "/" +
                        std::to_string(ranks.size()) +
                        " scales; SDS variants all completed: " +
                        (sds_all_ok ? "yes" : "no") + ".";
  if (spill) {
    verdict += " Spill leg completed: " + std::string(spill_all_ok ? "yes" : "no") + ".";
  }
  print_verdict(verdict);
  return 0;
}
