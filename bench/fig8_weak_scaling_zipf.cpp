// Fig. 8 — weak scaling on the Zipf workload (paper Section 4.1.2).
//
// Paper: HykSort fails with out-of-memory at EVERY scale on the skewed
// workload (the duplicated key's whole population lands on one rank); both
// SDS-Sort variants deliver times similar to the Uniform runs (SDS-Sort
// 117 TB/min at 128K cores).
#include <iostream>

#include "weak_scaling.hpp"

int main() {
  using namespace sdss;
  using namespace sdss::bench;
  print_header("Fig. 8 — weak scaling, Zipf workload",
               "20k records/rank, alpha=1.4 (delta~32%), per-rank budget 3x "
               "average; HykSort is expected to OOM.");

  TextTable table;
  table.header({"p", "HykSort(s)", "SDS-Sort(s)", "SDS-Sort/stable(s)",
                "SDS thpt(MB/min)"});
  int hyk_ooms = 0;
  bool sds_all_ok = true;
  for (int p : kWeakRanks) {
    auto hyk = weak_scaling_point(p, WeakWorkload::kZipf, Algo::kHykSort);
    auto sds = weak_scaling_point(p, WeakWorkload::kZipf, Algo::kSds);
    auto stab = weak_scaling_point(p, WeakWorkload::kZipf, Algo::kSdsStable);
    if (hyk.timing.oom) ++hyk_ooms;
    sds_all_ok = sds_all_ok && sds.timing.ok && stab.timing.ok;
    const auto records = static_cast<std::uint64_t>(p) * kWeakPerRank;
    table.row({std::to_string(p), time_cell(hyk.timing),
               time_cell(sds.timing), time_cell(stab.timing),
               fmt_seconds(mb_per_min(records, sizeof(std::uint64_t),
                                      sds.timing.seconds),
                           0)});
  }
  std::cout << table.str() << "\n";
  print_shape(
      "HykSort hits OOM on the skewed workload (paper: at every scale); "
      "SDS-Sort and SDS-Sort/stable complete with times similar to the "
      "Uniform runs.");
  print_verdict("HykSort OOM at " + std::to_string(hyk_ooms) + "/" +
                std::to_string(kWeakRanks.size()) +
                " scales; SDS variants all completed: " +
                (sds_all_ok ? "yes" : "no") + ".");
  return 0;
}
