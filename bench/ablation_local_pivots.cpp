// Ablation — global pivot selection: distributed bitonic sort vs.
// gather-sort-select (paper Section 2.4).
//
// The paper chooses a distributed bitonic sort of the p(p-1) local pivots
// because gathering them onto one process "might overflow the memory of a
// single process" at large p. This ablation measures both methods (they
// produce identical pivots — asserted in tests) and reports the gathered
// pool size that the bitonic method avoids.
//
// A second table isolates the local-pivot windowed partition search (paper
// Section 2.5.1) inside the full pipeline at a partition-heavy setting:
// many destinations over a large sorted shard, repeated partitions.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "core/partition.hpp"
#include "core/pivots.hpp"
#include "core/sampling.hpp"
#include "workloads/generators.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

double time_pivot_selection(int p, PivotSelection method) {
  sim::Cluster cluster(sim::ClusterConfig{p});
  auto res = time_spmd(cluster, [&](sim::Comm& world) {
    auto data = workloads::uniform_u64(
        20000, derive_seed(80803, static_cast<std::uint64_t>(world.rank())),
        1ull << 40);
    std::sort(data.begin(), data.end());
    auto samples = sample_local_pivots<std::uint64_t>(
        data, static_cast<std::size_t>(p - 1));
    return timed_section(world, [&] {
      auto pivots = select_global_pivots<std::uint64_t>(world, samples.keys,
                                                        method);
      if (pivots.size() + 1 != static_cast<std::size_t>(p)) std::abort();
    });
  });
  return res.seconds;
}
}  // namespace

int main() {
  print_header("Ablation — pivot selection: distributed bitonic vs. gather",
               "p-1 local pivots per rank; time to agree on the p-1 global "
               "pivots. 'pool' is the gathered-pivot memory the bitonic "
               "method never materializes on one rank.");

  TextTable table;
  table.header({"p", "bitonic(s)", "gather(s)", "gathered pool/rank"});
  for (int p : {16, 64, 256}) {
    const double t_bitonic = time_pivot_selection(p, PivotSelection::kBitonic);
    const double t_gather = time_pivot_selection(p, PivotSelection::kGather);
    const auto pool_bytes = static_cast<std::uint64_t>(p) *
                            static_cast<std::uint64_t>(p - 1) *
                            sizeof(std::uint64_t);
    table.row({std::to_string(p), fmt_seconds(t_bitonic),
               fmt_seconds(t_gather), human_bytes(pool_bytes)});
  }
  std::cout << table.str() << "\n";
  print_shape(
      "both methods select identical pivots (tested); gather is fine at "
      "small p but materializes an O(p^2) pivot pool on every rank, which "
      "is what the paper's bitonic selection avoids at 128K cores.");

  // Windowed vs. full binary-search partition, isolated and repeated.
  print_header("Ablation — local-pivot windowed partition search",
               "one rank's partition of a 4M-record sorted shard into 512 "
               "destinations, repeated 200 times.");
  auto data = workloads::uniform_u64(4u << 20, 80804, 1ull << 40);
  std::sort(data.begin(), data.end());
  const auto samples = sample_local_pivots<std::uint64_t>(data, 511);
  TextTable t2;
  t2.header({"method", "time for 200 partitions(s)"});
  for (bool windowed : {true, false}) {
    detail::WindowedSearch<std::uint64_t, IdentityKey> search(
        data, windowed ? &samples : nullptr, {});
    WallTimer timer;
    std::size_t sink = 0;
    for (int rep = 0; rep < 200; ++rep) {
      for (const std::uint64_t piv : samples.keys) {
        sink += search.upper(piv);
      }
    }
    const double t = timer.seconds();
    if (sink == 0) return 1;
    t2.row({windowed ? "windowed (local pivots)" : "full binary search",
            fmt_seconds(t, 5)});
  }
  std::cout << t2.str() << "\n";
  print_verdict("the windowed search touches an O(n/p) slice per pivot "
                "instead of O(n), the Section 2.5.1 claim.");
  return 0;
}
