// bench_local_sort — throughput and memory discipline of the local sort
// engine (sort_chunk / run_aware_sort / kway_merge / local_sort).
//
// Two kinds of gate, mirroring how bench_collectives gates wire volume:
//
//  * Deterministic counter cases (threads = 1, fixed seeds, fixed
//    iteration counts): the sortcore kernel counters — bytes moved, scratch
//    bytes acquired, arena high-water mark, kernel heap allocations — are
//    exactly reproducible, recorded into the run reports, and compared
//    against bench/baselines/bench_local_sort.json with
//    `report_diff --bytes-only` in scripts/check.sh. Any accidental
//    reintroduction of per-call allocation or extra copying fails CI.
//
//  * The headline in-process gate: the duplicate-heavy Zipf case (skewed
//    keys in concatenated sorted batches — the paper's motivating shape) is
//    run through both the current engine and a faithful copy of the
//    pre-arena engine (per-element loser-tree drain, per-chunk vector
//    copies, fresh O(n) scratch per call — see namespace `legacy` below).
//    This binary exits nonzero unless the current engine is at least 1.5x
//    faster on that case AND performs zero kernel heap allocations in
//    steady state.
//    Wall-clock ratios of two code paths in one process are stable across
//    machines in a way absolute timings are not, so this gate can run in CI.
//
//  * The scalar-vs-SIMD ablation (docs/BENCHMARKING.md): each vector kernel
//    family is timed under the forced scalar ISA and under the detected one
//    (simd::force_isa / reset_isa — same binary, same inputs). The sorting
//    network row is gated at >= 1.2x on uniform u64; when only the scalar
//    ISA is available the gate is skipped with a logged notice.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sortcore/arena.hpp"
#include "sortcore/kernel_stats.hpp"
#include "sortcore/simd_kernels.hpp"
#include "util/simd.hpp"
#include "workloads/zipf.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

// ---------------------------------------------------------------------------
// Legacy reference engine: the pre-arena implementation, kept verbatim in
// spirit — every transient buffer is a freshly allocated std::vector and the
// k-way merge drains one element per tournament replay. Changing this code
// invalidates the headline ratio; treat it as a frozen baseline.
// ---------------------------------------------------------------------------
namespace legacy {

template <typename T, typename KeyFn>
class LoserTree {
 public:
  LoserTree(std::span<const std::span<const T>> runs, KeyFn kf) : kf_(kf) {
    runs_.assign(runs.begin(), runs.end());
    const std::size_t k = runs_.size();
    cap_ = 1;
    while (cap_ < k) cap_ <<= 1;
    pos_.assign(k, 0);
    tree_.assign(cap_, kEmpty);
    remaining_ = 0;
    for (const auto& r : runs_) remaining_ += r.size();
    std::vector<std::size_t> w(2 * cap_, kEmpty);
    for (std::size_t i = 0; i < k; ++i) w[cap_ + i] = i;
    for (std::size_t node = cap_ - 1; node >= 1; --node) {
      const std::size_t a = w[2 * node];
      const std::size_t b = w[2 * node + 1];
      if (beats(a, b)) {
        w[node] = a;
        tree_[node] = b;
      } else {
        w[node] = b;
        tree_[node] = a;
      }
    }
    winner_ = cap_ > 1 ? w[1] : (k == 1 ? 0 : kEmpty);
  }

  bool empty() const { return remaining_ == 0; }

  const T& pop() {
    const std::size_t r = winner_;
    const T& v = runs_[r][pos_[r]];
    ++pos_[r];
    --remaining_;
    std::size_t winner = r;
    for (std::size_t node = (r + cap_) / 2; node >= 1; node /= 2) {
      if (beats(tree_[node], winner)) std::swap(tree_[node], winner);
    }
    winner_ = winner;
    return v;
  }

 private:
  static constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);

  bool exhausted(std::size_t run) const {
    return run == kEmpty || pos_[run] >= runs_[run].size();
  }

  bool beats(std::size_t a, std::size_t b) const {
    if (exhausted(b)) return true;
    if (exhausted(a)) return false;
    const auto& ka = kf_(runs_[a][pos_[a]]);
    const auto& kb = kf_(runs_[b][pos_[b]]);
    if (ka < kb) return true;
    if (kb < ka) return false;
    return a < b;
  }

  std::vector<std::span<const T>> runs_;
  std::vector<std::size_t> pos_;
  std::vector<std::size_t> tree_;
  std::size_t cap_ = 1;
  std::size_t remaining_ = 0;
  std::size_t winner_ = kEmpty;
  KeyFn kf_;
};

template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void kway_merge(std::span<const std::span<const T>> runs, std::span<T> out,
                KeyFn kf = {}) {
  std::vector<std::span<const T>> live;
  live.reserve(runs.size());
  for (const auto& r : runs) {
    if (!r.empty()) live.push_back(r);
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    std::copy(live[0].begin(), live[0].end(), out.begin());
    return;
  }
  if (live.size() == 2) {
    auto a = live[0].begin();
    auto b = live[1].begin();
    auto o = out.begin();
    while (a != live[0].end() && b != live[1].end()) {
      if (kf(*b) < kf(*a)) {
        *o++ = *b++;
      } else {
        *o++ = *a++;
      }
    }
    o = std::copy(a, live[0].end(), o);
    std::copy(b, live[1].end(), o);
    return;
  }
  legacy::LoserTree<T, KeyFn> tree(live, kf);
  auto o = out.begin();
  while (!tree.empty()) *o++ = tree.pop();
}

template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void run_aware_sort(std::vector<T>& data, bool stable, KeyFn kf = {},
                    std::size_t max_merge_runs = 64) {
  RunScan scan = find_runs<T, KeyFn>(data, /*reverse_descending=*/!stable, kf);
  if (scan.count() <= 1) return;
  if (scan.count() > max_merge_runs) {
    seq_sort<T, KeyFn>(data, stable, kf);
    return;
  }
  std::vector<std::span<const T>> runs;
  runs.reserve(scan.count());
  for (std::size_t r = 0; r + 1 < scan.bounds.size(); ++r) {
    runs.emplace_back(data.data() + scan.bounds[r],
                      scan.bounds[r + 1] - scan.bounds[r]);
  }
  std::vector<T> out(data.size());
  legacy::kway_merge<T, KeyFn>(runs, out, kf);
  data = std::move(out);
}

template <typename T, typename KeyFn>
void sort_chunk(std::span<T> chunk, const LocalSortConfig& cfg, KeyFn kf) {
  if (cfg.exploit_runs_below > 1 && chunk.size() > 1) {
    const std::size_t runs = count_runs<T, KeyFn>(chunk, kf);
    if (runs <= cfg.exploit_runs_below) {
      std::vector<T> tmp(chunk.begin(), chunk.end());
      legacy::run_aware_sort<T, KeyFn>(tmp, cfg.stable, kf,
                                       cfg.exploit_runs_below);
      std::copy(tmp.begin(), tmp.end(), chunk.begin());
      return;
    }
  }
  seq_sort<T, KeyFn>(chunk, cfg.stable, kf);
}

template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void parallel_merge_chunks(std::span<const std::span<const T>> chunks,
                           std::span<T> out, std::size_t parts, bool stable,
                           MergePartitionMethod method, KeyFn kf,
                           par::ThreadPool& tp) {
  const MergePartition plan =
      plan_merge_partition<T, KeyFn>(chunks, parts, stable, method, kf);
  std::vector<std::size_t> offsets(parts + 1, 0);
  for (std::size_t t = 0; t < parts; ++t) {
    offsets[t + 1] = offsets[t] + plan.part_size(t);
  }
  tp.parallel_for(
      0, parts,
      [&](std::size_t t) {
        std::vector<std::span<const T>> pieces;
        pieces.reserve(chunks.size());
        for (std::size_t j = 0; j < chunks.size(); ++j) {
          const std::size_t b = plan.bounds[t][j];
          const std::size_t e = plan.bounds[t + 1][j];
          pieces.push_back(chunks[j].subspan(b, e - b));
        }
        legacy::kway_merge<T, KeyFn>(
            pieces, out.subspan(offsets[t], offsets[t + 1] - offsets[t]), kf);
      },
      /*grain=*/1);
}

template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void local_sort(std::vector<T>& data, const LocalSortConfig& cfg,
                KeyFn kf = {}) {
  const std::size_t n = data.size();
  const auto c = static_cast<std::size_t>(cfg.threads < 1 ? 1 : cfg.threads);
  if (c == 1 || n < cfg.seq_threshold || n < 2 * c) {
    legacy::sort_chunk<T, KeyFn>(std::span<T>(data), cfg, kf);
    return;
  }
  std::vector<std::size_t> bounds(c + 1, 0);
  for (std::size_t i = 0; i <= c; ++i) bounds[i] = i * n / c;
  par::ThreadPool& tp = par::ThreadPool::global();
  tp.parallel_for(
      0, c,
      [&](std::size_t i) {
        legacy::sort_chunk<T, KeyFn>(
            std::span<T>(data.data() + bounds[i], bounds[i + 1] - bounds[i]),
            cfg, kf);
      },
      /*grain=*/1);
  std::vector<std::span<const T>> chunks(c);
  for (std::size_t i = 0; i < c; ++i) {
    chunks[i] = std::span<const T>(data.data() + bounds[i],
                                   bounds[i + 1] - bounds[i]);
  }
  std::vector<T> scratch(n);
  legacy::parallel_merge_chunks<T, KeyFn>(chunks, scratch, c, cfg.stable,
                                          cfg.method, kf, tp);
  data = std::move(scratch);
}

}  // namespace legacy

// ---------------------------------------------------------------------------
// Workload builders (deterministic in their seeds).
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> uniform_keys(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next();
  return v;
}

/// `runs` sorted runs of length n/runs each, concatenated — the partially
/// ordered shape the run-aware path exists for.
std::vector<std::uint64_t> presorted_runs(std::size_t n, std::size_t runs,
                                          std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::size_t r = 0; r < runs; ++r) {
    std::uint64_t key = rng.next_below(1000);
    for (std::size_t i = 0; i < n / runs; ++i) {
      v.push_back(key);
      key += rng.next_below(16);
    }
  }
  return v;
}

/// Duplicate-heavy partially ordered input: `runs` independently sorted
/// batches of Zipf keys, concatenated. This is the paper's Section 1/2.7
/// motivating shape (skewed AND partially ordered — e.g. the output of a
/// previous sort pass or a time-partitioned ingest) and the headline case
/// for this engine: long equal-key stretches drive the galloping merge, and
/// the run-aware path skips the O(n log n) re-sort entirely.
std::vector<std::uint64_t> zipf_runs(std::size_t n, std::size_t runs,
                                     double alpha, std::uint64_t seed) {
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::size_t r = 0; r < runs; ++r) {
    auto batch = workloads::zipf_keys(n / runs, alpha, seed + r);
    std::sort(batch.begin(), batch.end());
    v.insert(v.end(), batch.begin(), batch.end());
  }
  return v;
}

/// Record a deterministic single-thread case: fixed input, `iters` measured
/// repetitions, kernel counter deltas attached to the run report so
/// report_diff --bytes-only can gate them exactly.
void run_counter_case(const std::string& name, const std::string& workload,
                      std::vector<std::uint64_t> input,
                      const LocalSortConfig& cfg, int iters) {
  std::vector<std::uint64_t> work(input.size());
  // Warm-up: grows this thread's arena to the workload's footprint so the
  // measured region is the steady state.
  std::copy(input.begin(), input.end(), work.begin());
  local_sort(work, cfg);

  const KernelSnapshot before = snapshot_kernel_counters();
  WallTimer timer;
  for (int it = 0; it < iters; ++it) {
    std::copy(input.begin(), input.end(), work.begin());
    local_sort(work, cfg);
  }
  const double seconds = timer.seconds();
  const KernelSnapshot delta = snapshot_kernel_counters().delta_since(before);

  RunMeta meta;
  meta.name = name;
  meta.algorithm = cfg.algo == LocalSortAlgo::kRadix ? "radix" : "comparison";
  meta.workload = workload;
  meta.params = {{"n", std::to_string(input.size())},
                 {"threads", "1"},
                 {"iters", std::to_string(iters)}};
  auto& rep = record_local_run(std::move(meta), seconds, 0.0,
                               Phase::kLocalOrdering);
  rep.total_records = static_cast<std::uint64_t>(input.size()) * iters;
  rep.has_kernel = true;
  rep.kernel_bytes_moved = delta.bytes_moved;
  rep.kernel_scratch_bytes = delta.scratch_bytes;
  rep.kernel_heap_allocs = delta.heap_allocs;
  rep.kernel_arena_hwm = delta.arena_hwm;
  // SIMD shim section: the dispatch counts and gallop bytes are
  // ISA-independent (cutoffs never consult the active ISA), so the same
  // baseline gates the vectorized and the FORCE_SCALAR builds; the ISA
  // name/lanes are recorded for diagnosis and never diffed.
  rep.has_kernel_simd = true;
  rep.kernel_merge_gallop_bytes = delta.merge_gallop_bytes;
  rep.kernel_simd_isa = simd::isa_name(simd::active_isa());
  rep.kernel_simd_lanes = simd::isa_lanes_u64(simd::active_isa());
  rep.kernel_simd_hist_calls = delta.simd_hist_calls;
  rep.kernel_simd_sortnet_calls = delta.simd_sortnet_calls;
  rep.kernel_simd_gallop_calls = delta.simd_gallop_calls;
}

struct HeadlineResult {
  double new_seconds = 0.0;
  double legacy_seconds = 0.0;
  std::uint64_t steady_allocs = 0;
  double ratio() const {
    return new_seconds > 0.0 ? legacy_seconds / new_seconds : 0.0;
  }
};

/// Best-of-`reps` comparison of the current engine vs the frozen legacy
/// engine on the same input, plus the steady-state allocation count of the
/// current engine.
HeadlineResult run_headline(const std::vector<std::uint64_t>& input,
                            const LocalSortConfig& cfg, int reps) {
  std::vector<std::uint64_t> work(input.size());
  HeadlineResult out;
  out.new_seconds = 1e30;
  out.legacy_seconds = 1e30;

  // Warm both paths (first-touch faults, arena growth, pool spin-up).
  std::copy(input.begin(), input.end(), work.begin());
  local_sort(work, cfg);
  std::copy(input.begin(), input.end(), work.begin());
  legacy::local_sort(work, cfg);

  const KernelSnapshot before = snapshot_kernel_counters();
  for (int r = 0; r < reps; ++r) {
    std::copy(input.begin(), input.end(), work.begin());
    WallTimer t_new;
    local_sort(work, cfg);
    out.new_seconds = std::min(out.new_seconds, t_new.seconds());

    std::copy(input.begin(), input.end(), work.begin());
    WallTimer t_old;
    legacy::local_sort(work, cfg);
    out.legacy_seconds = std::min(out.legacy_seconds, t_old.seconds());
  }
  out.steady_allocs =
      snapshot_kernel_counters().delta_since(before).heap_allocs;
  return out;
}

/// Best-of-`reps` wall time of `fn`, with one unmeasured warm-up call.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e30;
  fn();
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

struct AblationRow {
  std::string kernel;
  std::string workload;
  double scalar_s = 0.0;
  double simd_s = 0.0;
  double ratio() const { return simd_s > 0.0 ? scalar_s / simd_s : 0.0; }
};

/// Time `fn` under the forced scalar ISA and under the detected one (same
/// binary, same input — simd::force_isa flips only the dispatch). Leaves
/// the ISA reset to the detected one.
template <typename Fn>
AblationRow run_ablation(std::string kernel, std::string workload, int reps,
                         Fn&& fn) {
  AblationRow row;
  row.kernel = std::move(kernel);
  row.workload = std::move(workload);
  simd::force_isa(simd::Isa::kScalar);
  row.scalar_s = time_best(reps, fn);
  simd::reset_isa();
  row.simd_s = time_best(reps, fn);
  return row;
}

}  // namespace

int main() {
  print_header(
      "Local sort engine — allocation-free kernels vs the legacy engine",
      "Single-thread cases pin the kernel memory counters (deterministic, "
      "gated against bench/baselines/bench_local_sort.json); the "
      "duplicate-heavy Zipf headline runs the current engine against a "
      "faithful copy of the pre-arena engine and this binary fails unless "
      "the speedup holds.");

  constexpr std::size_t kCounterN = 1u << 18;
  constexpr int kCounterIters = 2;  // fixed: counters must be reproducible

  // --- deterministic counter cases (threads = 1) ---------------------------
  {
    LocalSortConfig cfg;
    cfg.threads = 1;
    cfg.algo = LocalSortAlgo::kRadix;
    run_counter_case("local/radix/uniform/t=1", "uniform u64",
                     uniform_keys(kCounterN, 11), cfg, kCounterIters);
    run_counter_case("local/radix/zipf/t=1", "zipf:1.4",
                     workloads::zipf_keys(kCounterN, 1.4, 22), cfg,
                     kCounterIters);
  }
  {
    LocalSortConfig cfg;
    cfg.threads = 1;  // comparison engine, run-aware path
    run_counter_case("local/runs/presorted-8/t=1", "8 presorted runs",
                     presorted_runs(kCounterN, 8, 33), cfg, kCounterIters);
    run_counter_case("local/comparison/zipf/t=1", "zipf:1.4",
                     workloads::zipf_keys(kCounterN, 1.4, 44), cfg,
                     kCounterIters);
  }

  TextTable counters;
  counters.header({"case", "bytes_moved", "gallop_bytes", "scratch",
                   "arena_hwm", "allocs", "hist/net/gallop", "MB/min"});
  for (const auto& rep : BenchReporter::instance().registry().reports()) {
    counters.row({rep.name, std::to_string(rep.kernel_bytes_moved),
                  std::to_string(rep.kernel_merge_gallop_bytes),
                  std::to_string(rep.kernel_scratch_bytes),
                  std::to_string(rep.kernel_arena_hwm),
                  std::to_string(rep.kernel_heap_allocs),
                  std::to_string(rep.kernel_simd_hist_calls) + "/" +
                      std::to_string(rep.kernel_simd_sortnet_calls) + "/" +
                      std::to_string(rep.kernel_simd_gallop_calls),
                  fmt_seconds(mb_per_min(rep.total_records,
                                         sizeof(std::uint64_t),
                                         rep.wall_seconds),
                              0)});
  }
  std::cout << counters.str() << "\n";

  // --- headline: duplicate-heavy Zipf, current vs legacy engine ------------
  // The gated case is the engine's target shape from the paper: skewed
  // (Zipf) AND partially ordered (concatenated sorted batches). On it the
  // legacy engine pays three extra O(n) copies per chunk plus a per-element
  // tournament drain; the current engine runs in place and gallops through
  // the equal-key stretches. The randomly-ordered rows are informational —
  // there std::sort dominates both engines equally.
  constexpr std::size_t kHeadlineN = 1u << 21;
  constexpr int kReps = 3;
  LocalSortConfig cfg;
  cfg.threads = 4;

  const auto zipf_ordered = zipf_runs(kHeadlineN, 16, 1.4, 55);
  const HeadlineResult zipf = run_headline(zipf_ordered, cfg, kReps);
  const auto zipf_shuffled = workloads::zipf_keys(kHeadlineN, 1.4, 55);
  const HeadlineResult zipf_rand = run_headline(zipf_shuffled, cfg, kReps);
  const auto uni = uniform_keys(kHeadlineN, 66);
  const HeadlineResult uniform = run_headline(uni, cfg, kReps);

  TextTable head;
  head.header({"workload", "legacy", "current", "speedup", "steady allocs"});
  head.row({"zipf:1.4, 16 runs (gated)", fmt_seconds(zipf.legacy_seconds, 4),
            fmt_seconds(zipf.new_seconds, 4),
            fmt_seconds(zipf.ratio(), 2) + "x",
            std::to_string(zipf.steady_allocs)});
  head.row({"zipf:1.4, random order", fmt_seconds(zipf_rand.legacy_seconds, 4),
            fmt_seconds(zipf_rand.new_seconds, 4),
            fmt_seconds(zipf_rand.ratio(), 2) + "x",
            std::to_string(zipf_rand.steady_allocs)});
  head.row({"uniform u64", fmt_seconds(uniform.legacy_seconds, 4),
            fmt_seconds(uniform.new_seconds, 4),
            fmt_seconds(uniform.ratio(), 2) + "x",
            std::to_string(uniform.steady_allocs)});
  std::cout << head.str() << "\n";

  // --- scalar-vs-SIMD ablation ---------------------------------------------
  // Per-kernel wall-clock under forced-scalar vs the detected ISA. The
  // sorting-network row is the gated one (>= 1.2x on uniform u64): it is
  // pure compute on L1-resident data, so the vector win is robust. The
  // radix and gallop rows are informational — their scatter/copy halves
  // are memory-bound and inherently scalar, so honest ratios are modest.
  const simd::Isa detected = simd::detect_isa();
  std::vector<AblationRow> ablation;
  constexpr int kAblReps = 5;
  {
    // Many independent small sorts: the base-case shape the network serves.
    constexpr std::size_t kSmallRun = 48;
    const auto small_base = uniform_keys(1u << 16, 77);
    std::vector<std::uint64_t> small_work(small_base.size());
    ablation.push_back(run_ablation(
        "sortnet", "uniform u64, 48-element runs (gated)", kAblReps, [&] {
          std::copy(small_base.begin(), small_base.end(), small_work.begin());
          for (std::size_t off = 0; off + kSmallRun <= small_work.size();
               off += kSmallRun) {
            simdk::sort_small(small_work.data() + off, kSmallRun);
          }
        }));

    // hist_all stays scalar on every ISA by measurement (see
    // simd_kernels.cpp), so the histogram row times hist_pass — the
    // per-scatter re-histogram of the parallel radix — where the vector
    // shift+mask extraction genuinely runs ahead.
    const auto hist_base = uniform_keys(1u << 18, 78);
    std::vector<std::size_t> hist_out(256);
    ablation.push_back(run_ablation(
        "hist-pass", "uniform u64, n=2^18, 8 digit passes", kAblReps, [&] {
          for (int shift = 0; shift < 64; shift += 8) {
            std::fill(hist_out.begin(), hist_out.end(), 0);
            simdk::hist_pass(hist_base.data(), hist_base.size(), shift,
                             hist_out.data());
          }
        }));

    const auto gallop_base = zipf_runs(1u << 18, 16, 1.4, 88);
    const std::size_t run_len = gallop_base.size() / 16;
    std::vector<std::span<const std::uint64_t>> runs16(16);
    for (std::size_t r = 0; r < 16; ++r) {
      runs16[r] = std::span<const std::uint64_t>(
          gallop_base.data() + r * run_len, run_len);
    }
    std::vector<std::uint64_t> merged(run_len * 16);
    ablation.push_back(run_ablation(
        "gallop", "zipf:1.4, 16 sorted runs, 16-way merge", kAblReps, [&] {
          kway_merge(std::span<const std::span<const std::uint64_t>>(runs16),
                     std::span<std::uint64_t>(merged));
        }));
  }

  TextTable abl;
  abl.header({"kernel", "workload", "scalar", std::string(simd::isa_name(
                  detected)), "speedup"});
  for (const auto& row : ablation) {
    abl.row({row.kernel, row.workload, fmt_seconds(row.scalar_s, 4),
             fmt_seconds(row.simd_s, 4), fmt_seconds(row.ratio(), 2) + "x"});
  }
  std::cout << abl.str() << "\n";

  bool ablation_ok = true;
  if (detected == simd::Isa::kScalar) {
    std::cout << "ablation gate skipped: only the scalar ISA is available on "
                 "this build/CPU (forced-scalar build or pre-SSE4.2 host)\n\n";
  } else {
    ablation_ok = ablation[0].ratio() >= 1.20;
  }

  // Timing-only reports for the headline cases (no kernel section: thread
  // scheduling makes multi-thread counter values machine-dependent).
  RunMeta meta;
  meta.name = "local/headline/zipf/t=4";
  meta.algorithm = "comparison";
  meta.workload = "zipf:1.4, 16 sorted runs";
  meta.params = {{"n", std::to_string(kHeadlineN)},
                 {"threads", "4"},
                 {"legacy_seconds", fmt_seconds(zipf.legacy_seconds, 5)}};
  record_local_run(std::move(meta), zipf.new_seconds, 0.0,
                   Phase::kLocalOrdering);

  // Steady-state allocation gate on the deterministic single-thread cases:
  // after its warm-up run, every counter case must perform zero kernel heap
  // allocations. (The multi-thread headline cases are reported but not
  // alloc-gated: which pool workers serve a given call is scheduling-
  // dependent, so a cold worker's one-time arena growth would be flaky.)
  std::uint64_t counter_allocs = 0;
  for (const auto& rep : BenchReporter::instance().registry().reports()) {
    if (rep.has_kernel) counter_allocs += rep.kernel_heap_allocs;
  }

  print_shape(
      "the arena-backed engine with SIMD/branchless kernels and the "
      "galloping merge drain beats the allocating per-element engine by "
      ">= 1.5x on duplicate-heavy, partially ordered keys, with zero "
      "steady-state kernel heap allocations, and the vector sorting "
      "network beats its own scalar fallback by >= 1.2x.");
  print_verdict(
      "zipf-runs speedup " + fmt_seconds(zipf.ratio(), 2) +
      "x (gate >= 1.50x); random-order zipf " +
      fmt_seconds(zipf_rand.ratio(), 2) + "x, uniform " +
      fmt_seconds(uniform.ratio(), 2) + "x; sortnet scalar-vs-" +
      simd::isa_name(detected) + " " + fmt_seconds(ablation[0].ratio(), 2) +
      "x (gate >= 1.20x" +
      (detected == simd::Isa::kScalar ? ", skipped: scalar-only" : "") +
      "); steady-state kernel allocations: single-thread cases " +
      std::to_string(counter_allocs) + " (gate 0), headline " +
      std::to_string(zipf.steady_allocs) + " (informational)");

  const bool ok = zipf.ratio() >= 1.50 && counter_allocs == 0 && ablation_ok;
  if (!ok) {
    std::cerr << "bench_local_sort: GATE FAILED\n";
    return 1;
  }
  return 0;
}
