// Ablation — splitter selection under skew: one-shot sampling vs. legacy
// histogramming vs. ε-bounded refinement (plus the sample-seeded hybrid).
//
// Not a paper figure: the paper's answer to splitter-induced imbalance is
// to repair it downstream in the skew-aware partition. This sweep isolates
// what balance each *selection* method can guarantee by itself (skew-aware
// run-splitting disabled for the sampling and legacy-histogram columns;
// the ε-bounded engine brings its own fractional-splitter partition), over
// uniform / Zipf(1.5) / two-value / all-duplicate workloads at P=64, with
// an adversarial P=1024 fiber-scheduler leg.
//
// Gates (exit status):
//  * every ε-bounded run completes with λ(recv_records) <= 1+ε (+ integer
//    rounding) — on the adversarial workloads where one-shot sampling
//    exceeds the 3x memory budget (OOM) or exhibits λ > 2;
//  * per-round refinement candidate counts decrease monotonically (the
//    interval-pruning invariant).
// All seeds are fixed and no wall-clock enters any counter, so the comm +
// refinement counters and trace λ are exactly reproducible;
// scripts/check.sh diffs them against bench/baselines/ablation_splitters.json
// with `report_diff --bytes-only`.
#include <cstdint>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr double kEps = 0.1;

struct Method {
  const char* name;
  PivotSelection selection;
  bool skew_aware;       // off for the baselines: isolate the selection
  bool seed_with_samples;
  bool eps_gated;        // λ <= 1+ε enforced via exit status
};

const Method kMethods[] = {
    {"sampling", PivotSelection::kAuto, false, false, false},
    {"histogram", PivotSelection::kHistogram, false, false, false},
    {"hist-eps", PivotSelection::kHistogramEps, false, false, true},
    {"hybrid", PivotSelection::kHistogramEps, false, true, true},
};

struct Workload {
  const char* name;
  bool adversarial;  // sampling expected to OOM / blow past λ=2
};

const Workload kWorkloads[] = {
    {"uniform", false},
    {"zipf:1.5", true},
    {"two-value", true},
    {"all-dup", true},
};

std::vector<std::uint64_t> make_shard(const std::string& workload,
                                      std::size_t n, int rank) {
  const auto seed = derive_seed(81601, static_cast<std::uint64_t>(rank));
  if (workload == "uniform") {
    return workloads::uniform_u64(n, seed, 1ull << 40);
  }
  if (workload == "zipf:1.5") return workloads::zipf_keys(n, 1.5, seed);
  if (workload == "two-value") {
    std::vector<std::uint64_t> data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = i < n / 2 ? 7u : 9u;
    return data;
  }
  return std::vector<std::uint64_t>(n, 42u);  // all-dup
}

struct Point {
  TimedResult timed;
  double lambda = 0.0;  // λ of recv_records, exact (identical on all ranks)
  RefineStats refine;
  bool has_refine = false;
};

Point run_point(int p, std::size_t per_rank, const Method& m,
                const std::string& workload) {
  sim::ClusterConfig ccfg{p, /*cores_per_node=*/32};
  sim::Cluster cluster(ccfg);
  RunMeta meta;
  meta.name = "splitters/p=" + std::to_string(p) + "/" + workload + "/" +
              m.name;
  meta.algorithm = m.name;
  meta.workload = workload;
  meta.params = {{"records_per_rank", std::to_string(per_rank)},
                 {"epsilon", m.eps_gated ? std::to_string(kEps) : "-"},
                 {"mem_limit_records", std::to_string(3 * per_rank)}};
  Point point;
  std::mutex mu;
  point.timed = time_spmd(
      cluster,
      [&](sim::Comm& world) {
        auto data = make_shard(workload, per_rank, world.rank());
        Config cfg;
        cfg.skew_aware = m.skew_aware;
        cfg.pivot_selection = m.selection;
        cfg.histogram_eps.epsilon = kEps;
        cfg.histogram_eps.seed_with_samples = m.seed_with_samples;
        cfg.mem_limit_records = 3 * per_rank;  // the paper's OOM regime
        SortReport rep;
        const double secs = timed_section(world, [&] {
          auto out = sds_sort<std::uint64_t>(world, std::move(data), cfg, {},
                                             &rep);
        });
        const auto loads = world.allgather<std::uint64_t>(rep.recv_records);
        std::uint64_t max = 0, total = 0;
        for (auto l : loads) {
          max = std::max(max, l);
          total += l;
        }
        if (world.rank() == 0) {
          std::lock_guard<std::mutex> lk(mu);
          point.lambda = total == 0
                             ? 1.0
                             : static_cast<double>(max) *
                                   static_cast<double>(loads.size()) /
                                   static_cast<double>(total);
          point.has_refine = rep.has_refinement;
          point.refine = rep.refinement;
        }
        return secs;
      },
      std::move(meta));
  if (telemetry::RunReport* rep = last_report()) {
    if (point.timed.ok) {
      rep->set_param("lambda_recv", fmt_seconds(point.lambda, 6));
      rep->rdfa = point.lambda;
      rep->max_load = 0;
      rep->total_records = per_rank * static_cast<std::uint64_t>(p);
    }
    if (point.has_refine) telemetry::set_refinement(*rep, point.refine);
  }
  return point;
}

std::string rounds_cell(const Point& pt) {
  if (!pt.has_refine || !pt.timed.ok) return "-";
  std::string cells;
  for (const RefineRound& rr : pt.refine.per_round) {
    if (!cells.empty()) cells += ">";
    cells += std::to_string(rr.candidates);
  }
  return std::to_string(pt.refine.rounds) + " (" + cells + ")";
}

}  // namespace

int main() {
  print_header(
      "Ablation — splitter selection under skew (ε-bounded vs. sampling)",
      "P=64 x 5k records/rank + adversarial P=1024 leg, 3x memory budget, "
      "fixed seeds. Sampling and legacy histogram run WITHOUT downstream "
      "skew-aware repair to isolate the selection method; hist-eps/hybrid "
      "guarantee lambda <= 1+eps (eps=0.1) via fractional-rank splitters. "
      "Counters gated against bench/baselines/ablation_splitters.json.");

  bool gates_ok = true;
  bool sampling_failed_adversarial = false;
  std::vector<std::string> failures;

  auto check_point = [&](const Point& pt, const Method& m,
                         const Workload& w, int p, std::size_t per_rank) {
    const double n_total =
        static_cast<double>(per_rank) * static_cast<double>(p);
    if (m.eps_gated) {
      // The engine's contract: complete (no OOM possible at λ <= 1+ε under
      // a 3x budget) with boundary placement within ε — plus the integer
      // rounding of the N/p targets, O(p/N).
      const double bound =
          1.0 + kEps + static_cast<double>(p) / n_total + 1e-9;
      if (!pt.timed.ok || pt.lambda > bound) {
        gates_ok = false;
        failures.push_back(std::string(m.name) + " on " + w.name + "/p=" +
                           std::to_string(p) +
                           (pt.timed.ok
                                ? " lambda " + fmt_seconds(pt.lambda, 4) +
                                      " > " + fmt_seconds(bound, 4)
                                : " did not complete"));
      }
      if (pt.has_refine) {
        for (std::size_t r = 1; r < pt.refine.per_round.size(); ++r) {
          if (pt.refine.per_round[r].candidates >
              pt.refine.per_round[r - 1].candidates) {
            gates_ok = false;
            failures.push_back(std::string(m.name) + " on " + w.name +
                               ": candidate count grew in round " +
                               std::to_string(r + 1));
          }
        }
      }
    } else if (w.adversarial && std::string(m.name) == "sampling" &&
               (!pt.timed.ok || pt.lambda > 2.0)) {
      sampling_failed_adversarial = true;
    }
  };

  // ---- P=64 full sweep ----------------------------------------------------
  constexpr int kP = 64;
  constexpr std::size_t kPerRank = 5000;
  TextTable table;
  table.header({"workload", "method", "time(s)", "lambda", "achieved-eps",
                "rounds (cands)"});
  for (const Workload& w : kWorkloads) {
    for (const Method& m : kMethods) {
      const Point pt = run_point(kP, kPerRank, m, w.name);
      check_point(pt, m, w, kP, kPerRank);
      table.row({w.name, m.name, time_cell(pt.timed),
                 pt.timed.ok ? fmt_seconds(pt.lambda, 4) : "inf",
                 pt.has_refine && pt.timed.ok
                     ? fmt_seconds(pt.refine.achieved_epsilon, 4)
                     : "-",
                 rounds_cell(pt)});
    }
  }
  std::cout << table.str() << "\n";

  // ---- adversarial P=1024 leg (fiber scheduler) ---------------------------
  constexpr int kBigP = 1024;
  constexpr std::size_t kBigPerRank = 1000;
  TextTable big;
  big.header({"workload", "method", "time(s)", "lambda", "achieved-eps",
              "rounds (cands)"});
  const Method& sampling = kMethods[0];
  const Method& hist_eps = kMethods[2];
  for (const Workload& w : kWorkloads) {
    if (!w.adversarial) continue;
    const Point pt = run_point(kBigP, kBigPerRank, hist_eps, w.name);
    check_point(pt, hist_eps, w, kBigP, kBigPerRank);
    big.row({w.name, hist_eps.name, time_cell(pt.timed),
             pt.timed.ok ? fmt_seconds(pt.lambda, 4) : "inf",
             pt.has_refine && pt.timed.ok
                 ? fmt_seconds(pt.refine.achieved_epsilon, 4)
                 : "-",
             rounds_cell(pt)});
  }
  {
    // The contrast column: one-shot sampling on 100% duplicates at P=1024
    // concentrates everything on one rank — the paper's Fig. 8/10 OOM cell.
    const Workload all_dup{"all-dup", true};
    const Point pt = run_point(kBigP, kBigPerRank, sampling, all_dup.name);
    check_point(pt, sampling, all_dup, kBigP, kBigPerRank);
    big.row({all_dup.name, sampling.name, time_cell(pt.timed),
             pt.timed.ok ? fmt_seconds(pt.lambda, 4) : "inf", "-", "-"});
  }
  std::cout << big.str() << "\n";

  print_shape(
      "one-shot sampling (and legacy histogramming) collapse on duplicate-"
      "heavy keys — OOM under a 3x budget — while ε-bounded refinement "
      "completes everywhere with lambda <= 1.1, resolving duplicate runs "
      "exactly via fractional-rank splitters; its per-round candidate "
      "gather shrinks monotonically.");

  if (!sampling_failed_adversarial) {
    gates_ok = false;
    failures.push_back(
        "expected one-shot sampling to OOM (or exceed lambda 2) on at least "
        "one adversarial workload — the ablation's contrast is gone");
  }
  if (!gates_ok) {
    print_verdict("FAIL:");
    for (const std::string& f : failures) std::cout << "  - " << f << "\n";
    return 1;
  }
  print_verdict(
      "all ε-bounded runs completed with lambda <= 1+eps at P=64 and "
      "P=1024; candidate gathers monotone; sampling failed the adversarial "
      "workloads as expected.");
  return 0;
}
