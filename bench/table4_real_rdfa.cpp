// Table 4 — RDFA on the real-application data sets (paper Section 4.2).
//
// Paper:            HykSort   SDS-Sort   SDS-Sort/stable
//   PTF              32.6759   1.9908     1.6908
//   Cosmology        inf       1.3962     1.3962
// PTF's 28%-duplicated key gives HykSort a finite but huge RDFA (the data
// still fits on a node); the cosmology run's budget makes the same
// imbalance fatal (inf).
#include <iostream>

#include "real_data.hpp"
#include "util/rng.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;
}  // namespace

int main() {
  print_header("Table 4 — RDFA on PTF and cosmology data",
               "PTF: 8 ranks x 100k records, no budget. Cosmology: 512 "
               "ranks x 2k particles, 2.5x-average budget.");

  auto ptf_shard = [](int rank) {
    return workloads::ptf_records(
        100000, derive_seed(90901, static_cast<std::uint64_t>(rank)));
  };
  auto ptf_key = [](const workloads::PtfRecord& r) { return r.rb_score; };
  auto cosmo_shard = [](int rank) {
    return workloads::cosmology_particles(
        2000, derive_seed(91001, static_cast<std::uint64_t>(rank)));
  };
  auto cosmo_key = [](const workloads::Particle& p) { return p.cluster_id; };

  TextTable table;
  table.header({"dataset", "HykSort", "SDS-Sort", "SDS-Sort/stable"});

  auto ptf_h = run_real_data<workloads::PtfRecord>(
      8, 0, RealAlgo::kHykSort, ptf_shard, ptf_key, "ptf");
  auto ptf_s = run_real_data<workloads::PtfRecord>(
      8, 0, RealAlgo::kSds, ptf_shard, ptf_key, "ptf");
  auto ptf_t = run_real_data<workloads::PtfRecord>(
      8, 0, RealAlgo::kSdsStable, ptf_shard, ptf_key, "ptf");
  table.row({"PTF", rdfa_cell(ptf_h.rdfa, ptf_h.timing.ok),
             rdfa_cell(ptf_s.rdfa, ptf_s.timing.ok),
             rdfa_cell(ptf_t.rdfa, ptf_t.timing.ok)});

  const std::size_t budget = 2000 * 5 / 2;
  auto cos_h = run_real_data<workloads::Particle>(
      512, budget, RealAlgo::kHykSort, cosmo_shard, cosmo_key, "cosmology");
  auto cos_s = run_real_data<workloads::Particle>(
      512, budget, RealAlgo::kSds, cosmo_shard, cosmo_key, "cosmology");
  auto cos_t = run_real_data<workloads::Particle>(
      512, budget, RealAlgo::kSdsStable, cosmo_shard, cosmo_key,
      "cosmology");
  table.row({"Cosmology", rdfa_cell(cos_h.rdfa, cos_h.timing.ok),
             rdfa_cell(cos_s.rdfa, cos_s.timing.ok),
             rdfa_cell(cos_t.rdfa, cos_t.timing.ok)});

  std::cout << table.str() << "\n";
  print_shape(
      "PTF: HykSort's RDFA is far above SDS-Sort's ~2 (paper: 32.7 vs "
      "1.99/1.69). Cosmology: HykSort = inf (OOM) while both SDS variants "
      "stay near 1.4.");
  print_verdict("PTF HykSort/SDS RDFA ratio: " +
                fmt_seconds(ptf_h.rdfa / (ptf_s.rdfa > 0 ? ptf_s.rdfa : 1), 1) +
                "x; cosmology HykSort " +
                std::string(cos_h.timing.ok ? "completed (unexpected)" : "inf") +
                ", SDS RDFA " + fmt_seconds(cos_s.rdfa, 3) + ".");
  return 0;
}
