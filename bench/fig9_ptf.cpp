// Fig. 9 — sorting Palomar Transient Factory detections by real-bogus
// score (paper Section 4.2).
//
// Paper: 27 GB / 1G records on 192 cores; the score key is 28.02%
// duplicated. HykSort survives (the whole set fits on one 64 GB node) but
// with RDFA 32.68 its exchange/ordering dominates; SDS-Sort is 3.4x faster
// and SDS-Sort/stable 2.2x faster. Scaled-down: 8 ranks x 100k records.
#include <iostream>

#include "real_data.hpp"
#include "util/rng.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr int kRanks = 64;
constexpr std::size_t kPerRank = 12500;

std::vector<workloads::PtfRecord> ptf_shard(int rank) {
  return workloads::ptf_records(
      kPerRank, derive_seed(90901, static_cast<std::uint64_t>(rank)));
}

float ptf_key(const workloads::PtfRecord& r) { return r.rb_score; }
}  // namespace

int main() {
  print_header("Fig. 9 — sorting PTF data by real-bogus score",
               "64 ranks x 12.5k synthetic PTF records (delta ~ 28%), no "
               "memory budget (the paper's PTF set fits on one node); "
               "per-phase breakdown in max-over-ranks CPU time (the "
               "critical path).");

  auto hyk = run_real_data<workloads::PtfRecord>(
      kRanks, /*mem_limit=*/0, RealAlgo::kHykSort, ptf_shard, ptf_key,
      "ptf");
  auto sds = run_real_data<workloads::PtfRecord>(
      kRanks, 0, RealAlgo::kSds, ptf_shard, ptf_key, "ptf");
  auto stab = run_real_data<workloads::PtfRecord>(
      kRanks, 0, RealAlgo::kSdsStable, ptf_shard, ptf_key, "ptf");

  TextTable table;
  table.header({"algorithm", "crit-path(s)", "pivot-sel(s)", "exchange(s)",
                "local-ord(s)", "other(s)"});
  print_breakdown_rows(table, "HykSort", hyk);
  print_breakdown_rows(table, "SDS-Sort", sds);
  print_breakdown_rows(table, "SDS-Sort/stable", stab);
  std::cout << table.str() << "\n";

  const double speedup =
      hyk.timing.ok && sds.timing.ok
          ? hyk.timing.crit_path_cpu / sds.timing.crit_path_cpu
          : 0.0;
  const double speedup_stable =
      hyk.timing.ok && stab.timing.ok
          ? hyk.timing.crit_path_cpu / stab.timing.crit_path_cpu
          : 0.0;
  print_shape(
      "SDS-Sort beats HykSort clearly on the 28%-duplicated key (paper: "
      "3.4x; stable 2.2x); HykSort's loss concentrates in its "
      "exchange+ordering (it carries the duplicate pile on one rank).");
  print_verdict("SDS speedup over HykSort: " + fmt_seconds(speedup, 2) +
                "x; stable: " + fmt_seconds(speedup_stable, 2) +
                "x; RDFA HykSort " + fmt_seconds(hyk.rdfa, 2) + " vs SDS " +
                fmt_seconds(sds.rdfa, 2) + ".");
  return 0;
}
