// Chaos soak harness: exhaustive crash-point sweep plus straggler and
// delivery-jitter endurance runs over the three distributed sorts.
//
// For every algorithm (SDS-Sort, HykSort, samplesort) at P=8 the sweep
// crashes one rank at every communication-op index it executes — every such
// run must terminate with a classified kInjectedCrash result; a hang would
// instead trip the deadlock watchdog and show up as an unexpected
// classification. Straggler and jitter phases then inject rate-based stalls
// and point-to-point delivery delays across several fixed seeds and require
// the sorts to still complete correctly.
//
// All seeds are fixed, so the fault schedules — and therefore the printed
// classification table — are reproducible run to run. Exits nonzero on any
// unexpected classification, which is how scripts/check.sh gates it.
// `--quick` thins the sweep (3 victim ranks, strided op indices) for CI;
// the default sweeps every rank at every op index.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "baselines/hyksort.hpp"
#include "baselines/samplesort.hpp"
#include "bench_common.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/chaos.hpp"
#include "workloads/zipf.hpp"

namespace sdss {
namespace {

using sim::ChaosSpec;
using sim::Cluster;
using sim::ClusterConfig;
using sim::Comm;
using sim::FailureClass;
using sim::FaultEvent;
using sim::FaultKind;
using sim::RunResult;

constexpr int kRanks = 8;
constexpr std::size_t kRecordsPerRank = 600;

struct Algo {
  const char* name;
  std::function<void(Comm&)> body;
};

std::vector<std::uint64_t> shard(Comm& w, std::uint64_t salt) {
  return workloads::zipf_keys(
      kRecordsPerRank, 1.0,
      derive_seed(salt, static_cast<std::uint64_t>(w.rank())));
}

std::vector<Algo> algorithms() {
  return {
      {"sds-sort",
       [](Comm& w) { sds_sort<std::uint64_t>(w, shard(w, 11)); }},
      {"hyksort",
       [](Comm& w) { baselines::hyksort<std::uint64_t>(w, shard(w, 12)); }},
      {"samplesort",
       [](Comm& w) {
         baselines::sample_sort<std::uint64_t>(w, shard(w, 13));
       }},
  };
}

ClusterConfig chaos_config(ChaosSpec spec, double watchdog_s = 5.0) {
  ClusterConfig cfg;
  cfg.num_ranks = kRanks;
  cfg.chaos = std::move(spec);
  cfg.watchdog_timeout_s = watchdog_s;
  return cfg;
}

/// Flight-recorder bundle violations across the whole soak: a classified
/// failure that left no well-formed bundle, or a fault-free run that left
/// one. Counted into the exit status alongside misclassifications.
int g_bundle_violations = 0;

/// Run one soak leg with the flight recorder armed. Every classified
/// failure must leave a bundle that parses, carries the matching failure
/// class and a non-empty blocked-op table; every fault-free completion
/// must leave none.
RunResult soak_run(ClusterConfig cfg, const std::function<void(Comm&)>& body) {
  const std::string path = "chaos_soak_postmortem.json";
  std::remove(path.c_str());
  cfg.postmortem_path = path;
  const RunResult res = Cluster(cfg).run_collect(body);
  if (res.ok) {
    if (std::ifstream(path).good()) {
      std::cout << "  BUNDLE VIOLATION: fault-free run left " << path << "\n";
      ++g_bundle_violations;
    }
  } else {
    try {
      const obs::FlightRecord fr = obs::load_flight_record(path);
      if (fr.failure_class != sim::failure_class_name(res.failure)) {
        std::cout << "  BUNDLE VIOLATION: bundle class '" << fr.failure_class
                  << "' != run class '"
                  << sim::failure_class_name(res.failure) << "'\n";
        ++g_bundle_violations;
      } else if (fr.blocked.empty()) {
        std::cout << "  BUNDLE VIOLATION: empty blocked-op table for "
                  << fr.failure_class << "\n";
        ++g_bundle_violations;
      }
    } catch (const std::exception& e) {
      std::cout << "  BUNDLE VIOLATION: no well-formed bundle after "
                << sim::failure_class_name(res.failure) << " ("
                << e.what() << ")\n";
      ++g_bundle_violations;
    }
  }
  std::remove(path.c_str());
  return res;
}

/// Per-algorithm soak outcome, aggregated into the printed table and the
/// telemetry report.
struct Tally {
  int runs = 0;
  int unexpected = 0;
  std::map<std::string, int> by_class;

  void count(const RunResult& res, bool expected) {
    ++runs;
    ++by_class[sim::failure_class_name(res.failure)];
    if (!expected) ++unexpected;
  }
};

/// Crash the victim at every swept op index; every run must come back
/// classified kInjectedCrash with the victim as the failed rank.
void crash_sweep(const Algo& a, bool quick, Tally& tally) {
  const RunResult probe = soak_run(chaos_config(ChaosSpec{}), a.body);
  if (!probe.ok) {
    std::cout << "  " << a.name << ": fault-free probe run FAILED: "
              << probe.error << "\n";
    ++tally.unexpected;
    return;
  }

  std::vector<int> victims;
  if (quick) {
    victims = {0, kRanks / 2, kRanks - 1};
  } else {
    for (int r = 0; r < kRanks; ++r) victims.push_back(r);
  }

  for (int victim : victims) {
    const std::uint64_t ops =
        probe.comm_ops[static_cast<std::size_t>(victim)];
    const std::uint64_t step =
        quick ? std::max<std::uint64_t>(1, ops / 8) : 1;
    for (std::uint64_t k = 0; k < ops; k += step) {
      ChaosSpec spec;
      spec.seed = 0xC0FFEE + k;
      spec.forced.push_back(FaultEvent{FaultKind::kCrash, victim, k, 0.0});
      const RunResult res = soak_run(chaos_config(spec), a.body);
      const bool expected = !res.ok &&
                            res.failure == FailureClass::kInjectedCrash &&
                            res.failed_rank == victim;
      tally.count(res, expected);
      if (!expected) {
        std::cout << "  UNEXPECTED " << a.name << " victim=" << victim
                  << " op=" << k << ": class="
                  << sim::failure_class_name(res.failure)
                  << " failed_rank=" << res.failed_rank << " error=\""
                  << res.error << "\"\n";
      }
    }
  }
}

/// Rate-based stragglers: the sort must complete (correct and classified
/// kNone) and the stalls must not trip the watchdog.
void straggler_soak(const Algo& a, Tally& tally) {
  for (std::uint64_t seed : {101u, 102u, 103u, 104u, 105u}) {
    ChaosSpec spec;
    spec.seed = seed;
    spec.stall_prob = 0.25;
    spec.max_stall_s = 0.002;
    const RunResult res =
        soak_run(chaos_config(spec, /*watchdog_s=*/0.5), a.body);
    const bool expected = res.ok && res.failure == FailureClass::kNone;
    tally.count(res, expected);
    if (!expected) {
      std::cout << "  UNEXPECTED " << a.name << " straggler seed=" << seed
                << ": class=" << sim::failure_class_name(res.failure)
                << " error=\"" << res.error << "\"\n";
    }
  }
}

/// Point-to-point delivery jitter: reordering pressure on the record
/// exchange must never change the result or wedge the run.
void jitter_soak(const Algo& a, Tally& tally) {
  for (std::uint64_t seed : {201u, 202u, 203u}) {
    ChaosSpec spec;
    spec.seed = seed;
    spec.jitter_prob = 0.5;
    spec.max_jitter_s = 0.0005;
    const RunResult res = soak_run(chaos_config(spec), a.body);
    const bool expected = res.ok && res.failure == FailureClass::kNone;
    tally.count(res, expected);
    if (!expected) {
      std::cout << "  UNEXPECTED " << a.name << " jitter seed=" << seed
                << ": class=" << sim::failure_class_name(res.failure)
                << " error=\"" << res.error << "\"\n";
    }
  }
}

void record_report(const Algo& a, const Tally& tally) {
  auto& reporter = bench::BenchReporter::instance();
  telemetry::RunReport rep;
  rep.name = std::string("chaos-soak/") + a.name;
  rep.experiment = reporter.experiment();
  rep.algorithm = a.name;
  rep.workload = "zipf(1.0)";
  rep.ranks = kRanks;
  rep.ok = tally.unexpected == 0;
  rep.has_chaos = true;
  rep.chaos_seed = 0xC0FFEE;
  rep.params.emplace_back("soak_runs", std::to_string(tally.runs));
  rep.params.emplace_back("unexpected", std::to_string(tally.unexpected));
  for (const auto& [cls, n] : tally.by_class) {
    rep.params.emplace_back("class." + cls, std::to_string(n));
  }
  reporter.registry().add(std::move(rep));
}

int run_soak(bool quick) {
  bench::print_header(
      "chaos_soak",
      std::string("Fixed-seed fault-injection soak at P=") +
          std::to_string(kRanks) +
          (quick ? " (quick sweep)" : " (full sweep)") +
          ": crash every swept comm-op index on each victim rank, then\n"
          "straggler and delivery-jitter endurance runs. Every run must\n"
          "terminate with the expected classification — never hang.");

  int total_runs = 0;
  int total_unexpected = 0;
  std::map<std::string, int> totals;
  for (const Algo& a : algorithms()) {
    Tally tally;
    crash_sweep(a, quick, tally);
    straggler_soak(a, tally);
    jitter_soak(a, tally);
    record_report(a, tally);
    std::cout << "  " << a.name << ": " << tally.runs << " runs";
    for (const auto& [cls, n] : tally.by_class) {
      std::cout << "  " << cls << "=" << n;
      totals[cls] += n;
    }
    std::cout << "  unexpected=" << tally.unexpected << "\n";
    total_runs += tally.runs;
    total_unexpected += tally.unexpected;
  }

  std::cout << "\n  total: " << total_runs << " runs";
  for (const auto& [cls, n] : totals) std::cout << "  " << cls << "=" << n;
  std::cout << "  unexpected=" << total_unexpected
            << "  bundle_violations=" << g_bundle_violations << "\n\n";

  bench::print_shape(
      "every injected crash terminates classified (injected-crash, correct "
      "failed rank) and leaves a well-formed flight-recorder bundle; "
      "stragglers and jitter never corrupt or wedge a sort");
  bench::print_verdict(
      total_unexpected == 0 && g_bundle_violations == 0
          ? "all runs classified as expected, every failure left a bundle"
          : std::to_string(total_unexpected) +
                " run(s) with unexpected classification, " +
                std::to_string(g_bundle_violations) +
                " flight-recorder bundle violation(s)");
  return total_unexpected == 0 && g_bundle_violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sdss

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  return sdss::run_soak(quick);
}
