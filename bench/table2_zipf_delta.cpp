// Table 2 — the relationship between the Zipf exponent alpha and the
// maximum replication ratio delta (paper Section 4.1.2).
//
// Paper:  alpha  0.4   0.5   0.6   0.7   0.8   0.9
//         delta  0.2%  0.5%  1.0%  2.0%  3.7%  6.4%
// Our generator's universe (10,000 values) was calibrated so the same
// mapping holds; this bench prints paper vs. theoretical vs. empirical.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "workloads/zipf.hpp"

int main() {
  using namespace sdss;
  using namespace sdss::bench;
  print_header("Table 2 — Zipf alpha vs. replication ratio delta",
               "200k samples per alpha from the calibrated generator "
               "(universe 10,000).");

  const std::vector<std::pair<double, double>> rows{
      {0.4, 0.2}, {0.5, 0.5}, {0.6, 1.0}, {0.7, 2.0}, {0.8, 3.7}, {0.9, 6.4}};
  TextTable table;
  table.header({"alpha", "paper delta(%)", "theoretical(%)", "empirical(%)"});
  double worst_rel = 0.0;
  for (const auto& [alpha, paper] : rows) {
    workloads::ZipfGenerator gen(alpha);
    const auto keys = workloads::zipf_keys(200000, alpha, 20202);
    const double theo = gen.theoretical_delta() * 100.0;
    const double emp = measure_delta(keys) * 100.0;
    worst_rel = std::max(worst_rel, std::abs(theo - paper) / paper);
    RunMeta meta;
    meta.name = "zipf-delta/alpha=" + fmt_seconds(alpha, 1);
    meta.algorithm = "ZipfGenerator";
    meta.workload = "zipf:" + fmt_seconds(alpha, 1);
    meta.params = {{"samples", "200000"},
                   {"paper_delta_pct", fmt_seconds(paper, 1)},
                   {"theoretical_delta_pct", fmt_seconds(theo, 4)},
                   {"empirical_delta_pct", fmt_seconds(emp, 4)}};
    // A calibration check, not a timing: the deltas are the measurement.
    record_local_run(std::move(meta), 0.0);
    table.row({fmt_seconds(alpha, 1), fmt_seconds(paper, 1),
               fmt_seconds(theo, 2), fmt_seconds(emp, 2)});
  }
  std::cout << table.str() << "\n";
  print_shape("delta rises superlinearly with alpha: 0.2% -> 6.4% over "
              "alpha 0.4 -> 0.9.");
  print_verdict("worst relative deviation of theoretical delta from the "
                "paper's table: " +
                fmt_seconds(worst_rel * 100.0, 1) + "%.");
  return 0;
}
