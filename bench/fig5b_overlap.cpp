// Fig. 5b — overlapping the all-to-all exchange with local ordering vs. not
// overlapping, as a function of process count (paper Section 4.1.1, tau_o).
//
// Paper setup: overlap wins below ~4096 processes (per-rank network share is
// small, the CPU can merge while data is in flight); above that the
// bookkeeping of thousands of outstanding messages erases the benefit.
// Scaled-down setup: a moderate-latency model and p = 2..32; the expected
// shape is overlap ahead at small p with a shrinking (or inverting) gap as
// p grows.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "workloads/generators.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;
}  // namespace

int main() {
  print_header("Fig. 5b — overlapping vs. non-overlapping exchange",
               "full sds_sort time, uniform keys, 30k records/rank, "
               "moderate-latency network model.");

  sim::NetworkModel net;
  net.latency_s = 2e-4;       // per-message latency worth hiding
  net.bandwidth_Bps = 2.0e8;  // per-rank link

  TextTable table;
  table.header({"p", "Overlapping(s)", "No-overlapping(s)", "winner"});
  int largest_overlap_win = 0;
  int smallest_blocking_win_above = 0;
  const std::vector<int> procs{2, 4, 8, 16, 32, 64, 128};
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const int p = procs[i];
    sim::Cluster cluster(sim::ClusterConfig{p, 1, net});
    auto run_with = [&](std::size_t tau_o) {
      return time_spmd(cluster, [&](sim::Comm& world) {
        auto data = workloads::uniform_u64(
            30000, derive_seed(50502, static_cast<std::uint64_t>(world.rank())),
            1ull << 40);
        Config cfg;
        cfg.tau_o = tau_o;
        return timed_section(world, [&] {
          auto out = sds_sort<std::uint64_t>(world, std::move(data), cfg);
        });
      });
    };
    auto overlapped = run_with(/*tau_o=*/1u << 20);  // always overlap
    auto blocking = run_with(/*tau_o=*/0);           // never overlap
    const double gap = blocking.seconds - overlapped.seconds;
    if (gap > 0) {
      largest_overlap_win = p;
    } else if (largest_overlap_win > 0 && smallest_blocking_win_above == 0) {
      smallest_blocking_win_above = p;
    }
    table.row({std::to_string(p), time_cell(overlapped), time_cell(blocking),
               gap > 0 ? "Overlapping" : "No-overlapping"});
  }
  std::cout << table.str() << "\n";
  print_shape(
      "overlap is faster at small-to-moderate p; the advantage inverts as p "
      "grows (the bookkeeping of many outstanding messages eats the "
      "benefit); paper crossover ~4096 processes on Edison.");
  print_verdict(
      "overlap won up to p=" + std::to_string(largest_overlap_win) +
      (smallest_blocking_win_above > 0
           ? ", blocking won from p=" +
                 std::to_string(smallest_blocking_win_above) +
                 " (scaled-down analogue of the paper's tau_o crossover)."
           : "; no inversion within the simulated range."));
  return 0;
}
