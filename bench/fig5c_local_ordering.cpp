// Fig. 5c — final local ordering by merging vs. by sorting, as a function
// of the chunk count p (paper Sections 2.7 and 4.1.1, tau_s).
//
// After the exchange a rank holds p sorted chunks. Merging costs O(n log p)
// — rising with p — while re-sorting costs O(n log n) — flat in p. The
// paper measures merging rising sharply from 512 to 64K processes while
// sorting stays stable, crossing near ~4000. This bench reproduces the two
// curves on one rank's post-exchange buffer (the decision is purely local)
// with 32-byte payload records, the record shape of the paper's science
// workloads.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/local_order.hpp"
#include "util/rng.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr std::size_t kTotal = 1u << 20;  // records in the receive buffer

struct Rec {
  std::uint64_t key;
  std::uint64_t payload[3];
};

std::uint64_t rec_key(const Rec& r) { return r.key; }

/// Build a receive buffer of p sorted chunks over a shared value range.
std::vector<Rec> make_chunked(std::size_t p, std::vector<std::size_t>& displs,
                              std::vector<std::size_t>& counts) {
  std::vector<Rec> buf;
  buf.reserve(kTotal);
  displs.assign(p, 0);
  counts.assign(p, 0);
  SplitMix64 rng(50503 + p);
  for (std::size_t s = 0; s < p; ++s) {
    const std::size_t begin = s * kTotal / p;
    const std::size_t end = (s + 1) * kTotal / p;
    std::vector<Rec> chunk(end - begin);
    for (auto& r : chunk) r.key = rng.next();
    std::sort(chunk.begin(), chunk.end(),
              [](const Rec& a, const Rec& b) { return a.key < b.key; });
    displs[s] = buf.size();
    counts[s] = chunk.size();
    buf.insert(buf.end(), chunk.begin(), chunk.end());
  }
  return buf;
}
}  // namespace

int main() {
  print_header("Fig. 5c — final local ordering: merging vs. sorting",
               "1M 32-byte records received as p sorted chunks; single-core "
               "timings of SdssMergeAll vs. a full re-sort.");

  TextTable table;
  table.header({"p (chunks)", "Using Merge(s)", "Using Sort(s)", "winner"});
  bool merge_wins_small = false;
  bool sort_wins_large = false;
  const std::vector<std::size_t> chunk_counts{8, 32, 128, 512, 2048, 8192};
  for (std::size_t i = 0; i < chunk_counts.size(); ++i) {
    const std::size_t p = chunk_counts[i];
    std::vector<std::size_t> displs, counts;

    auto buf_m = make_chunked(p, displs, counts);
    WallTimer tm;
    auto merged = merge_all<Rec>(std::move(buf_m), counts, displs,
                                 /*stable=*/false, /*threads=*/1, rec_key);
    const double t_merge = tm.seconds();

    auto buf_s = make_chunked(p, displs, counts);
    WallTimer ts;
    // "Using Sort" is a plain comparison sort of the whole buffer (the
    // run-merge shortcut would be the merge path in disguise).
    std::sort(buf_s.begin(), buf_s.end(),
              [](const Rec& a, const Rec& b) { return a.key < b.key; });
    const double t_sort = ts.seconds();

    if (i == 0 && t_merge < t_sort) merge_wins_small = true;
    if (i + 1 == chunk_counts.size() && t_sort < t_merge) {
      sort_wins_large = true;
    }
    if (merged.size() != kTotal) return 1;  // keep the optimizer honest
    for (const auto& [method, secs] :
         {std::pair<const char*, double>{"merge-all", t_merge},
          {"re-sort", t_sort}}) {
      RunMeta meta;
      meta.name = "local-ordering/chunks=" + std::to_string(p) + "/" + method;
      meta.algorithm = method;
      meta.workload = "uniform 32B records";
      meta.params = {{"records", std::to_string(kTotal)},
                     {"chunks", std::to_string(p)}};
      record_local_run(std::move(meta), secs, 0.0, Phase::kLocalOrdering);
    }
    table.row({std::to_string(p), fmt_seconds(t_merge), fmt_seconds(t_sort),
               t_merge < t_sort ? "Merge" : "Sort"});
  }
  std::cout << table.str() << "\n";
  print_shape(
      "merge wins at small p, its O(n log p) cost rises with the chunk "
      "count while sort stays flat, and the curves cross (paper: ~4000 "
      "processes; the crossover point is machine-specific).");
  print_verdict(std::string("merge won at the smallest p: ") +
                (merge_wins_small ? "yes" : "no") +
                "; sort won at the largest p: " +
                (sort_wins_large ? "yes" : "no") + ".");
  return 0;
}
