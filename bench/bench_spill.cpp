// Out-of-core degradation bench: the Fig. 8 Zipf shape at a budget where
// both HykSort and strict SDS-Sort OOM, completed by MemoryPolicy::kSpill.
//
// Default mode (the CI gate, scripts/check.sh):
//   * reference leg — strict SDS-Sort, unlimited budget (in-core);
//   * strict leg   — the same sort at a budget below the per-rank receive
//     volume: must OOM (phase "exchange");
//   * HykSort leg  — same budget: must OOM (the paper's failure mode);
//   * spill leg    — same budget under kSpill: must complete, with per-rank
//     output byte-identical to the reference and wall time within a bounded
//     slowdown factor.
//   The spill leg's six telemetry counters (runs/frames/bytes spilled and
//   reloaded, merge passes, resident peak) are deterministic for the fixed
//   seed and are gated EXACTLY against bench/baselines/bench_spill.json
//   in-process (report_diff's counter comparison is growth-only, so the
//   bench itself enforces equality). --no-gate skips the comparison (used
//   to regenerate the baseline), --baseline <path> points elsewhere.
//
// --chaos mode (the spill-fault soak, scripts/check.sh):
//   probes a fault-free run for every rank's spill-op count, then sweeps a
//   forced spill-write failure and a forced frame corruption over EVERY
//   (rank, spill op) point, asserting the failure taxonomy: an injected
//   failure yields exactly kSpillIoError on the victim; a corruption either
//   fires and is caught by the reload checksum (kSpillIoError mentioning
//   "checksum") or lands on a read op and the run completes. Also: a
//   seeded slow-disk endurance leg under a tight watchdog (stalls must
//   never read as deadlock), a forced comm-crash during the spill window
//   (kInjectedCrash, not a spill class), and a fault-free tight-watchdog
//   suite. Any unexpected classification exits nonzero.
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/hyksort.hpp"
#include "bench_common.hpp"
#include "core/driver.hpp"
#include "telemetry/report.hpp"
#include "workloads/zipf.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr int kRanks = 64;
constexpr std::size_t kPerRank = 20000;
constexpr std::size_t kBudget = 6000;  // < per-rank average receive volume
constexpr std::size_t kFrame = 1024;
constexpr double kAlpha = 1.5;
constexpr double kMaxSlowdown = 50.0;  // spill vs in-core wall-time bound

std::vector<std::uint64_t> shard(int rank, std::size_t per_rank) {
  return workloads::zipf_keys(
      per_rank, kAlpha, derive_seed(8801, static_cast<std::uint64_t>(rank)));
}

struct Leg {
  TimedResult timing;
  std::vector<std::vector<std::uint64_t>> outputs;
};

Leg run_sds(std::size_t budget, MemoryPolicy policy, const char* leg_name) {
  sim::Cluster cluster(sim::ClusterConfig{kRanks, 1});
  Leg leg;
  leg.outputs.resize(kRanks);
  std::mutex mu;
  SpillStats spill_sum;
  std::uint64_t max_passes = 0, max_peak = 0;
  bool any_spilled = false;
  RunMeta meta;
  meta.name = std::string("bench_spill/p=") + std::to_string(kRanks) + "/" +
              leg_name;
  meta.algorithm = "SDS-Sort";
  meta.workload = "zipf-1.5";
  meta.params = {
      {"mem_budget_records", std::to_string(budget)},
      {"memory_policy",
       policy == MemoryPolicy::kSpill ? "spill" : "strict"},
      {"spill_frame_records", std::to_string(kFrame)}};
  leg.timing = time_spmd(
      cluster,
      [&](sim::Comm& world) {
        std::vector<std::uint64_t> data = shard(world.rank(), kPerRank);
        std::vector<std::uint64_t> out;
        SortReport rep;
        const double secs = timed_section(world, [&] {
          Config cfg;
          cfg.stable = true;
          cfg.mem_limit_records = budget;
          cfg.memory_policy = policy;
          cfg.spill_frame_records = kFrame;
          out = sds_sort<std::uint64_t>(world, std::move(data), cfg, {}, &rep);
        });
        leg.outputs[static_cast<std::size_t>(world.rank())] = std::move(out);
        if (rep.spilled) {
          std::lock_guard<std::mutex> lk(mu);
          any_spilled = true;
          spill_sum += rep.spill;
          max_passes = std::max(max_passes, rep.spill.merge_passes);
          max_peak = std::max(max_peak, rep.spill.peak_resident_records);
        }
        return secs;
      },
      std::move(meta));
  if (any_spilled) {
    if (telemetry::RunReport* rep = last_report()) {
      spill_sum.merge_passes = max_passes;
      spill_sum.peak_resident_records = max_peak;
      telemetry::add_spill(*rep, spill_sum);
    }
  }
  return leg;
}

TimedResult run_hyksort(std::size_t budget) {
  sim::Cluster cluster(sim::ClusterConfig{kRanks, 1});
  RunMeta meta;
  meta.name =
      std::string("bench_spill/p=") + std::to_string(kRanks) + "/hyksort";
  meta.algorithm = "HykSort";
  meta.workload = "zipf-1.5";
  meta.params = {{"mem_budget_records", std::to_string(budget)}};
  return time_spmd(
      cluster,
      [&](sim::Comm& world) {
        std::vector<std::uint64_t> data = shard(world.rank(), kPerRank);
        return timed_section(world, [&] {
          baselines::HykSortConfig cfg;
          cfg.mem_limit_records = budget;
          auto out = baselines::hyksort<std::uint64_t>(world, std::move(data),
                                                       cfg);
          (void)out;
        });
      },
      std::move(meta));
}

/// Exact six-counter comparison of the spill leg against the checked-in
/// baseline. Returns the number of mismatches (0 = gate passes).
int gate_spill_counters(const std::string& baseline_path,
                        const std::string& run_name) {
  const telemetry::RunReport* cur =
      BenchReporter::instance().registry().find(run_name);
  if (cur == nullptr || !cur->has_spill) {
    std::cerr << "gate: current run '" << run_name
              << "' has no spill telemetry\n";
    return 1;
  }
  telemetry::ReportRegistry base;
  try {
    base = telemetry::ReportRegistry::load_file(baseline_path);
  } catch (const std::exception& e) {
    std::cerr << "gate: cannot load baseline " << baseline_path << ": "
              << e.what() << "\n";
    return 1;
  }
  const telemetry::RunReport* ref = base.find(run_name);
  if (ref == nullptr || !ref->has_spill) {
    std::cerr << "gate: baseline " << baseline_path << " has no spill run '"
              << run_name << "'\n";
    return 1;
  }
  int bad = 0;
  const auto check = [&](const char* what, std::uint64_t got,
                         std::uint64_t want) {
    if (got != want) {
      std::cerr << "gate: spill." << what << " = " << got << ", baseline "
                << want << "\n";
      ++bad;
    }
  };
  check("runs_written", cur->spill_runs_written, ref->spill_runs_written);
  check("frames_written", cur->spill_frames_written,
        ref->spill_frames_written);
  check("bytes_spilled", cur->spill_bytes_spilled, ref->spill_bytes_spilled);
  check("bytes_reloaded", cur->spill_bytes_reloaded,
        ref->spill_bytes_reloaded);
  check("merge_passes", cur->spill_merge_passes, ref->spill_merge_passes);
  check("peak_resident_records", cur->spill_peak_resident_records,
        ref->spill_peak_resident_records);
  return bad;
}

int run_default(bool gate, const std::string& baseline_path) {
  print_header(
      "Out-of-core degradation — Zipf(1.5) under an OOM-tight budget",
      std::to_string(kRanks) + " ranks x " + std::to_string(kPerRank / 1000) +
          "k records, per-rank budget " + std::to_string(kBudget) +
          " records (< the average receive volume): HykSort and strict "
          "SDS-Sort must OOM; the spill policy must complete exactly.");

  const Leg ref = run_sds(0, MemoryPolicy::kStrict, "reference");
  const Leg strict = run_sds(kBudget, MemoryPolicy::kStrict, "strict");
  const TimedResult hyk = run_hyksort(kBudget);
  const Leg spill = run_sds(kBudget, MemoryPolicy::kSpill, "spill");

  TextTable table;
  table.header({"leg", "budget", "outcome", "wall(s)"});
  table.row({"SDS strict (reference)", "unlimited",
             ref.timing.ok ? "ok" : "FAIL", time_cell(ref.timing)});
  table.row({"SDS strict", std::to_string(kBudget),
             strict.timing.oom ? "OOM" : (strict.timing.ok ? "ok" : "FAIL"),
             time_cell(strict.timing)});
  table.row({"HykSort", std::to_string(kBudget),
             hyk.oom ? "OOM" : (hyk.ok ? "ok" : "FAIL"), time_cell(hyk)});
  table.row({"SDS spill", std::to_string(kBudget),
             spill.timing.ok ? "ok" : "FAIL", time_cell(spill.timing)});
  std::cout << table.str() << "\n";

  int bad = 0;
  if (!ref.timing.ok) {
    std::cerr << "FAIL: unlimited reference leg did not complete\n";
    ++bad;
  }
  if (!strict.timing.oom) {
    std::cerr << "FAIL: strict leg at budget " << kBudget
              << " did not OOM (out-of-core premise broken)\n";
    ++bad;
  }
  if (!hyk.oom) {
    std::cerr << "FAIL: HykSort at budget " << kBudget << " did not OOM\n";
    ++bad;
  }
  if (!spill.timing.ok) {
    std::cerr << "FAIL: spill leg did not complete\n";
    ++bad;
  } else {
    // Output validation: the spill path must reproduce the in-core stable
    // sort byte-for-byte on every rank.
    for (int r = 0; r < kRanks; ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (spill.outputs[i] != ref.outputs[i]) {
        std::cerr << "FAIL: spill output differs from reference on rank " << r
                  << "\n";
        ++bad;
        break;
      }
    }
    if (ref.timing.seconds > 0.0 &&
        spill.timing.seconds > kMaxSlowdown * ref.timing.seconds) {
      std::cerr << "FAIL: spill slowdown "
                << spill.timing.seconds / ref.timing.seconds << "x exceeds "
                << kMaxSlowdown << "x bound\n";
      ++bad;
    }
  }
  if (gate && bad == 0) {
    bad += gate_spill_counters(
        baseline_path,
        "bench_spill/p=" + std::to_string(kRanks) + "/spill");
  }

  print_shape(
      "The budget kills both in-core paths (the paper's Fig. 8 OOM column); "
      "the spill policy degrades to disk and finishes with identical "
      "output.");
  print_verdict(bad == 0 ? "spill leg completed, output exact, counters "
                           "match baseline."
                         : std::to_string(bad) + " gate failure(s).");
  return bad == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --chaos: exhaustive spill-fault sweep at small scale.

constexpr int kChaosRanks = 8;
constexpr std::size_t kChaosPerRank = 800;
constexpr std::size_t kChaosBudget = 600;
constexpr std::size_t kChaosFrame = 128;

sim::RunResult chaos_run(const sim::ChaosSpec& spec, double watchdog_s = 5.0) {
  sim::ClusterConfig cc{kChaosRanks};
  cc.chaos = spec;
  cc.watchdog_timeout_s = watchdog_s;
  sim::Cluster cluster(cc);
  return cluster.run_collect([](sim::Comm& w) {
    Config cfg;
    cfg.stable = true;
    cfg.mem_limit_records = kChaosBudget;
    cfg.memory_policy = MemoryPolicy::kSpill;
    cfg.spill_frame_records = kChaosFrame;
    auto out =
        sds_sort<std::uint64_t>(w, shard(w.rank(), kChaosPerRank), cfg);
    (void)out;
  });
}

int run_chaos() {
  print_header(
      "Spill-fault soak — every (rank, spill op) failure point",
      std::to_string(kChaosRanks) + " ranks, spill-mode Zipf sort; forced "
      "write failures and frame corruptions swept over every spill op, "
      "plus slow-disk endurance and a comm-crash leg.");

  const sim::RunResult probe = chaos_run({});
  if (!probe.ok) {
    std::cerr << "FAIL: fault-free probe run failed: " << probe.error << "\n";
    return 1;
  }
  std::uint64_t total_ops = 0;
  for (const std::uint64_t n : probe.spill_ops) total_ops += n;
  if (total_ops == 0) {
    std::cerr << "FAIL: probe run performed no spill ops (workload no "
                 "longer goes out-of-core)\n";
    return 1;
  }
  std::cout << "probe: " << total_ops << " spill ops across "
            << kChaosRanks << " ranks\n";

  int bad = 0;
  std::uint64_t fail_points = 0, corrupt_fired = 0, corrupt_missed = 0;
  for (int r = 0; r < kChaosRanks; ++r) {
    const std::uint64_t ops = probe.spill_ops[static_cast<std::size_t>(r)];
    for (std::uint64_t k = 0; k < ops; ++k) {
      // Forced spill-write/read failure at op k: must classify as
      // kSpillIoError on the victim, never anything else.
      sim::ChaosSpec fail_spec;
      fail_spec.forced = {
          {sim::FaultKind::kSpillFail, r, k, 0.0}};
      const sim::RunResult res = chaos_run(fail_spec);
      ++fail_points;
      if (res.ok || res.failure != sim::FailureClass::kSpillIoError ||
          res.failed_rank != r) {
        std::cerr << "FAIL: spill-fail rank " << r << " op " << k
                  << " classified as "
                  << sim::failure_class_name(res.failure) << " (failed_rank "
                  << res.failed_rank << ", ok=" << res.ok << "): "
                  << res.error << "\n";
        ++bad;
      }

      // Forced corruption of the frame written at op k: if op k is a write,
      // the reload's checksum must catch it (kSpillIoError mentioning
      // "checksum"); if op k is a read the corruption never lands and the
      // run completes.
      sim::ChaosSpec corrupt_spec;
      corrupt_spec.forced = {
          {sim::FaultKind::kSpillCorrupt, r, k, 0.0}};
      const sim::RunResult cres = chaos_run(corrupt_spec);
      bool fired = false;
      for (const sim::FaultEvent& e : cres.fault_events) {
        if (e.kind == sim::FaultKind::kSpillCorrupt) fired = true;
      }
      if (fired) {
        ++corrupt_fired;
        if (cres.ok || cres.failure != sim::FailureClass::kSpillIoError ||
            cres.error.find("checksum") == std::string::npos) {
          std::cerr << "FAIL: corruption at rank " << r << " op " << k
                    << " fired but was not caught by the checksum: "
                    << (cres.ok ? "run completed"
                                : sim::failure_class_name(cres.failure))
                    << ": " << cres.error << "\n";
          ++bad;
        }
      } else {
        ++corrupt_missed;
        if (!cres.ok) {
          std::cerr << "FAIL: corruption scheduled on a read op (rank " << r
                    << " op " << k << ") but the run failed: " << cres.error
                    << "\n";
          ++bad;
        }
      }
    }
  }
  std::cout << "swept " << fail_points << " spill-fail points; corruption "
            << "fired on " << corrupt_fired << " write ops, inert on "
            << corrupt_missed << " read ops\n";
  if (corrupt_fired == 0) {
    std::cerr << "FAIL: no corruption ever fired — sweep is vacuous\n";
    ++bad;
  }

  // Slow-disk endurance: seeded stalls on spill ops under a tight watchdog.
  // Stalled spill I/O counts as progress, so no deadlock may be reported.
  sim::ChaosSpec stall_spec;
  stall_spec.seed = 20260809;
  stall_spec.spill_stall_prob = 0.25;
  stall_spec.max_spill_stall_s = 0.001;
  const sim::RunResult stall_res = chaos_run(stall_spec, /*watchdog_s=*/0.2);
  bool stalled = false;
  for (const sim::FaultEvent& e : stall_res.fault_events) {
    if (e.kind == sim::FaultKind::kSpillStall) stalled = true;
  }
  if (!stall_res.ok || !stalled) {
    std::cerr << "FAIL: slow-disk endurance leg "
              << (stall_res.ok ? "fired no stalls" : "failed: " + stall_res.error)
              << "\n";
    ++bad;
  }

  // A comm-crash during the spill window stays an injected crash — the
  // spill machinery must not re-classify unrelated failures.
  sim::ChaosSpec crash_spec;
  crash_spec.forced = {
      {sim::FaultKind::kCrash, 3,
       probe.comm_ops[3] > 2 ? probe.comm_ops[3] / 2 : 0, 0.0}};
  const sim::RunResult crash_res = chaos_run(crash_spec);
  if (crash_res.ok ||
      crash_res.failure != sim::FailureClass::kInjectedCrash) {
    std::cerr << "FAIL: forced comm crash classified as "
              << sim::failure_class_name(crash_res.failure) << "\n";
    ++bad;
  }

  // Fault-free suite under the same tight watchdog: zero false deadlocks.
  for (int i = 0; i < 3; ++i) {
    const sim::RunResult res = chaos_run({}, /*watchdog_s=*/0.2);
    if (!res.ok) {
      std::cerr << "FAIL: fault-free tight-watchdog run " << i
                << " failed: " << res.error << "\n";
      ++bad;
    }
  }

  print_shape(
      "Every injected spill fault classifies as spill-io on its victim; "
      "corruption is caught by the reload checksum; stalls and tight "
      "watchdogs never produce false deadlocks.");
  print_verdict(bad == 0 ? "all " + std::to_string(2 * fail_points + 5) +
                               " chaos legs classified as expected."
                         : std::to_string(bad) + " unexpected outcome(s).");
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool chaos = false;
  bool gate = true;
  std::string baseline = "bench/baselines/bench_spill.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
    if (std::strcmp(argv[i], "--no-gate") == 0) gate = false;
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline = argv[++i];
    }
  }
  return chaos ? run_chaos() : run_default(gate, baseline);
}
