// Table 3 — RDFA (max/avg post-exchange load) of HykSort, SDS-Sort and
// SDS-Sort/stable across the weak-scaling sweeps (paper Section 4.1.2).
//
// Paper: Uniform — all methods near 1.0 (HykSort 1.007..1.21, SDS
// 1.003..1.05); Zipf — HykSort is infinity (OOM) everywhere while both SDS
// variants sit around 1.5..2.7, identical to each other.
#include <iostream>

#include "weak_scaling.hpp"

int main() {
  using namespace sdss;
  using namespace sdss::bench;
  print_header("Table 3 — RDFA of the weak-scaling runs",
               "RDFA = largest partition / average partition after the "
               "exchange; 'inf' marks an OOM run, as in the paper.");

  TextTable table;
  table.header({"workload", "p", "HykSort", "SDS-Sort", "SDS-Sort/stable"});
  double worst_sds_zipf = 0.0;
  bool hyk_inf_on_zipf = true;
  for (WeakWorkload w : {WeakWorkload::kUniform, WeakWorkload::kZipf}) {
    for (int p : kWeakRanks) {
      auto hyk = weak_scaling_point(p, w, Algo::kHykSort);
      auto sds = weak_scaling_point(p, w, Algo::kSds);
      auto stab = weak_scaling_point(p, w, Algo::kSdsStable);
      if (w == WeakWorkload::kZipf) {
        worst_sds_zipf = std::max(worst_sds_zipf, sds.rdfa);
        hyk_inf_on_zipf = hyk_inf_on_zipf && !hyk.timing.ok;
      }
      table.row({w == WeakWorkload::kUniform ? "Uniform" : "Zipf(1.4)",
                 std::to_string(p), rdfa_cell(hyk.rdfa, hyk.timing.ok),
                 rdfa_cell(sds.rdfa, sds.timing.ok),
                 rdfa_cell(stab.rdfa, stab.timing.ok)});
    }
  }
  std::cout << table.str() << "\n";
  print_shape(
      "Uniform: every algorithm near 1.0. Zipf: HykSort = inf (OOM); SDS "
      "variants bounded (paper: 1.49..2.68) and equal to each other.");
  print_verdict("HykSort inf on all Zipf scales: " +
                std::string(hyk_inf_on_zipf ? "yes" : "no") +
                "; worst SDS RDFA on Zipf: " + fmt_seconds(worst_sds_zipf, 2) +
                " (bound: 4.0 by the O(4N/p) theorem).");
  return 0;
}
