// Extension — head-to-head matrix of every distributed sort in the repo
// (paper Section 6 future work: "more comparisons against various parallel
// sorting methods").
//
// Six algorithms x two workloads, all under the same per-rank budget:
//   SDS-Sort, SDS-Sort/stable, HykSort, classic sample sort, distributed
//   radix sort, distributed bitonic sort.
// Expected outcome: all complete on Uniform (bitonic slowest — Θ(n log² p)
// communication); on Zipf only the SDS variants and bitonic survive
// (bitonic never moves data by value, so skew cannot imbalance it — its
// cost is that it always pays the worst-case communication volume).
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "baselines/bitonic.hpp"
#include "baselines/hyksort.hpp"
#include "baselines/radixsort.hpp"
#include "baselines/samplesort.hpp"
#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr int kRanks = 8;
constexpr std::size_t kPerRank = 25000;

enum class Algo { kSds, kSdsStable, kHyk, kSample, kRadix, kBitonic };

const char* name_of(Algo a) {
  switch (a) {
    case Algo::kSds:
      return "SDS-Sort";
    case Algo::kSdsStable:
      return "SDS-Sort/stable";
    case Algo::kHyk:
      return "HykSort";
    case Algo::kSample:
      return "SampleSort";
    case Algo::kRadix:
      return "RadixSort";
    case Algo::kBitonic:
      return "BitonicSort";
  }
  return "?";
}

struct Point {
  TimedResult timing;
  double rdfa = 0.0;
};

Point run_algo(Algo algo, bool zipf, std::size_t budget) {
  sim::Cluster cluster(
      sim::ClusterConfig{kRanks, 1, sim::NetworkModel::aries_like()});
  Point point;
  std::mutex mu;
  point.timing = time_spmd(cluster, [&](sim::Comm& world) {
    const std::uint64_t seed =
        derive_seed(404, static_cast<std::uint64_t>(world.rank()));
    auto data = zipf ? workloads::zipf_keys(kPerRank, 1.4, seed)
                     : workloads::uniform_u64(kPerRank, seed, 1ull << 40);
    std::vector<std::uint64_t> out;
    const double secs = timed_section(world, [&] {
      switch (algo) {
        case Algo::kSds:
        case Algo::kSdsStable: {
          Config cfg;
          cfg.stable = algo == Algo::kSdsStable;
          cfg.mem_limit_records = budget;
          out = sds_sort<std::uint64_t>(world, std::move(data), cfg);
          break;
        }
        case Algo::kHyk: {
          baselines::HykSortConfig cfg;
          cfg.mem_limit_records = budget;
          out = baselines::hyksort<std::uint64_t>(world, std::move(data), cfg);
          break;
        }
        case Algo::kSample: {
          baselines::SampleSortConfig cfg;
          cfg.mem_limit_records = budget;
          out = baselines::sample_sort<std::uint64_t>(world, std::move(data),
                                                      cfg);
          break;
        }
        case Algo::kRadix: {
          baselines::RadixSortConfig cfg;
          cfg.mem_limit_records = budget;
          out = baselines::radix_sort_distributed<std::uint64_t>(
              world, std::move(data), cfg);
          break;
        }
        case Algo::kBitonic:
          out = baselines::bitonic_sort<std::uint64_t>(world, std::move(data));
          break;
      }
    });
    auto lb = measure_load_balance(world, out.size());
    std::lock_guard<std::mutex> lk(mu);
    if (lb.rdfa > point.rdfa) point.rdfa = lb.rdfa;
    return secs;
  });
  return point;
}
}  // namespace

int main() {
  print_header("Extension — algorithm comparison matrix",
               "8 ranks x 25k u64 records, per-rank budget 3x average; "
               "every distributed sort in the repository.");

  const std::size_t budget = 3 * kPerRank;
  TextTable table;
  table.header({"workload", "algorithm", "time(s)", "RDFA"});
  int zipf_survivors = 0;
  for (bool zipf : {false, true}) {
    for (Algo a : {Algo::kSds, Algo::kSdsStable, Algo::kHyk, Algo::kSample,
                   Algo::kRadix, Algo::kBitonic}) {
      auto pt = run_algo(a, zipf, budget);
      if (zipf && pt.timing.ok) ++zipf_survivors;
      table.row({zipf ? "Zipf(1.4)" : "Uniform", name_of(a),
                 time_cell(pt.timing), rdfa_cell(pt.rdfa, pt.timing.ok)});
    }
  }
  std::cout << table.str() << "\n";
  print_shape(
      "Uniform: all six complete, value-partitioned sorts comparable, "
      "bitonic pays its log^2(p) communication. Zipf: the value-partitioned "
      "baselines (HykSort/SampleSort/RadixSort) hit the budget; SDS "
      "variants and bitonic survive.");
  print_verdict(std::to_string(zipf_survivors) +
                "/6 algorithms survived the skewed workload.");
  return 0;
}
