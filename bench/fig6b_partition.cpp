// Fig. 6b — data-partition cost: full sequential scan vs. whole-array
// binary search (HykSort's partition) vs. SDS-Sort's local-pivot windowed
// search (paper Sections 2.5.1 and 4.1.2).
//
// Paper: 2 GB per process; the local-pivot partition reduces partition time
// to "almost zero" while the sequential scan grows with n and HykSort's
// partition sits in between. Scaled-down: 4M records per rank, sweeping the
// number of destinations p (= number of pivots + 1).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/partition.hpp"
#include "core/sampling.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr std::size_t kN = 4u << 20;
}  // namespace

int main() {
  print_header("Fig. 6b — partition methods",
               "4M sorted records per rank; time to compute all-to-all send "
               "boundaries for p destinations (median of 5 runs).");

  auto data = workloads::uniform_u64(kN, 60603, 1ull << 40);
  std::sort(data.begin(), data.end());

  TextTable table;
  table.header({"p", "Sequential Scan(s)", "HykSort(s)", "SDS-Sort(s)"});
  double last_scan = 0.0, last_sds = 0.0;
  for (int p : {16, 64, 256, 1024}) {
    // Pivots: regular sample of the data itself (same on all methods).
    const auto samples = sample_local_pivots<std::uint64_t>(
        data, static_cast<std::size_t>(p - 1));
    const std::vector<std::uint64_t> pivots = samples.keys;

    auto median_of = [&](auto&& fn) {
      std::vector<double> runs;
      for (int r = 0; r < 5; ++r) {
        WallTimer t;
        fn();
        runs.push_back(t.seconds());
      }
      return quantile(runs, 0.5);
    };

    std::vector<std::size_t> sink;
    const double t_scan = median_of([&] {
      sink = full_scan_partition<std::uint64_t>(data, pivots);
    });
    // HykSort partitions with whole-array binary searches.
    const double t_binary = median_of([&] {
      detail::WindowedSearch<std::uint64_t, IdentityKey> search(
          data, /*samples=*/nullptr, {});
      sink.assign(static_cast<std::size_t>(p) + 1, 0);
      for (int d = 1; d < p; ++d) {
        sink[static_cast<std::size_t>(d)] =
            search.upper(pivots[static_cast<std::size_t>(d - 1)]);
      }
      sink[static_cast<std::size_t>(p)] = data.size();
    });
    // SDS-Sort windows each search by the local pivots.
    const double t_windowed = median_of([&] {
      detail::WindowedSearch<std::uint64_t, IdentityKey> search(data, &samples,
                                                                {});
      sink.assign(static_cast<std::size_t>(p) + 1, 0);
      for (int d = 1; d < p; ++d) {
        sink[static_cast<std::size_t>(d)] =
            search.upper(pivots[static_cast<std::size_t>(d - 1)]);
      }
      sink[static_cast<std::size_t>(p)] = data.size();
    });
    last_scan = t_scan;
    last_sds = t_windowed;
    for (const auto& [method, secs] :
         {std::pair<const char*, double>{"sequential-scan", t_scan},
          {"binary-search", t_binary},
          {"local-pivot-windowed", t_windowed}}) {
      RunMeta meta;
      meta.name =
          "partition/p=" + std::to_string(p) + "/" + method;
      meta.algorithm = method;
      meta.workload = "uniform u64, sorted";
      meta.params = {{"records", std::to_string(kN)},
                     {"destinations", std::to_string(p)}};
      record_local_run(std::move(meta), secs, 0.0, Phase::kPivotSelection);
    }
    table.row({std::to_string(p), fmt_seconds(t_scan, 6),
               fmt_seconds(t_binary, 6), fmt_seconds(t_windowed, 6)});
  }
  std::cout << table.str() << "\n";
  print_shape(
      "local-pivot partition is near zero and flat; the sequential scan is "
      "orders of magnitude slower; plain binary search sits in between.");
  print_verdict("at p=1024 the local-pivot partition is " +
                fmt_seconds(last_scan / (last_sds > 0 ? last_sds : 1e-9), 0) +
                "x faster than the sequential scan.");
  return 0;
}
