// bench_sched_scale — large-P weak scaling of the fiber scheduler
// (P in {256, 1024, 4096}), the regime the thread-per-rank launcher could
// never reach on one host.
//
// Each point runs the full SDS-Sort pipeline with a FIXED per-rank shard and
// no network model, so every CommStats counter — p2p and collective messages
// and bytes — is a pure function of the algorithm and exactly reproducible
// across machines and schedules. scripts/check.sh gates the counters against
// bench/baselines/bench_sched_scale.json with `report_diff --bytes-only`:
// a scheduler change that silently alters what the ranks communicate (a
// dropped wakeup would deadlock, a double delivery would change counters)
// or an algorithm change that grows large-P wire traffic fails CI.
//
// Wall time is reported for context but only the byte counters are gated.
// Note the sweep is deliberately NOT flattering at the top end: with the
// shard fixed at 256 records, p=4096 puts more ranks than records-per-rank
// on the wire, so O(p)-per-rank splitter and alltoallv metadata dominate —
// a wakeup-storm stress profile for the scheduler, not a kernel benchmark.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "workloads/generators.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr std::size_t kPerRank = 256;  // fixed: counters must be reproducible
const std::vector<int> kScaleRanks{256, 1024, 4096};

struct ScalePoint {
  TimedResult timed;
  std::uint64_t p2p_messages = 0;
  std::uint64_t p2p_bytes = 0;
  std::uint64_t coll_messages = 0;
  std::uint64_t coll_bytes = 0;
};

ScalePoint run_point(int p) {
  sim::ClusterConfig ccfg{p, /*cores_per_node=*/32};
  ccfg.enable_trace = false;  // per-lane buffers dominate memory at 4k ranks
  sim::Cluster cluster(ccfg);
  RunMeta meta;
  meta.name = "sched-scale/p=" + std::to_string(p);
  meta.algorithm = "SDS-Sort";
  meta.workload = "uniform";
  meta.params = {{"records_per_rank", std::to_string(kPerRank)}};
  ScalePoint point;
  point.timed = time_spmd(
      cluster,
      [&](sim::Comm& world) {
        auto data = workloads::uniform_u64(
            kPerRank,
            derive_seed(80801, static_cast<std::uint64_t>(world.rank())),
            1ull << 40);
        return timed_section(world, [&] {
          auto out = sds_sort<std::uint64_t>(world, std::move(data));
          if (!std::is_sorted(out.begin(), out.end())) std::abort();
        });
      },
      std::move(meta));
  if (point.timed.ok) {
    const sim::CommStats& total = last_report()->comm_total;
    point.p2p_messages = total.p2p_messages;
    point.p2p_bytes = total.p2p_bytes;
    point.coll_messages = total.collective_messages;
    point.coll_bytes = total.collective_bytes_out;
  }
  return point;
}

}  // namespace

int main() {
  print_header(
      "Scheduler scale — weak scaling at 256..4096 fiber ranks",
      std::to_string(kPerRank) +
          " records/rank, no network model, fixed seeds: the cluster-total "
          "message/byte counters are exactly reproducible and gated against "
          "bench/baselines/bench_sched_scale.json.");

  TextTable table;
  table.header({"p", "wall(s)", "p2p msgs", "p2p bytes", "coll msgs",
                "coll bytes", "coll msgs/p"});
  bool all_ok = true;
  double t_small = 0.0, t_large = 0.0;
  for (int p : kScaleRanks) {
    auto point = run_point(p);
    if (!point.timed.ok) {
      all_ok = false;
      table.row({std::to_string(p), "FAIL", "-", "-", "-", "-", "-"});
      continue;
    }
    if (p == kScaleRanks.front()) t_small = point.timed.seconds;
    if (p == kScaleRanks.back()) t_large = point.timed.seconds;
    table.row({std::to_string(p), fmt_seconds(point.timed.seconds, 3),
               std::to_string(point.p2p_messages),
               std::to_string(point.p2p_bytes),
               std::to_string(point.coll_messages),
               std::to_string(point.coll_bytes),
               fmt_seconds(static_cast<double>(point.coll_messages) /
                               static_cast<double>(p),
                           1)});
  }
  std::cout << table.str() << "\n";

  print_shape(
      "every scale point completes on a fixed worker pool. The p=4096 point "
      "is deliberately communication-dominated: with the shard (256) smaller "
      "than the rank count, splitter replication and alltoallv metadata — "
      "O(p) messages per rank — dwarf the payload, which is exactly the "
      "wakeup-storm profile that stresses the scheduler rather than the "
      "sort kernels.");
  if (!all_ok) {
    print_verdict("FAIL: at least one scale point did not complete.");
    return 1;
  }
  const double ratio = t_small > 0.0 ? t_large / t_small : 0.0;
  print_verdict("all scale points completed in-budget; wall(4096)/wall(256) "
                "= " +
                fmt_seconds(ratio, 2) +
                "x (communication-dominated at the top end by design).");
  return 0;
}
