// Fig. 5a — all-to-all data exchange with vs. without node-level merging,
// as a function of the per-node data size (paper Section 4.1.1, tau_m).
//
// Paper setup: Edison, merging wins below ~160 MB/node because it amortizes
// per-message latency; above that, letting every core feed the network wins.
// Scaled-down setup: 16 ranks on 4 nodes over the slow-Ethernet-like model,
// sweeping the per-node volume. The same crossover must appear: "Merging"
// below some volume, "No-Merging" above.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/exchange.hpp"
#include "core/node_merge.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace sdss;
using namespace sdss::bench;

constexpr int kRanks = 16;
constexpr int kCoresPerNode = 4;
constexpr std::uint64_t kUniverse = 1ull << 40;

/// Even value-range partition boundaries of sorted uniform data.
std::vector<std::size_t> even_bounds(const std::vector<std::uint64_t>& data,
                                     int p) {
  std::vector<std::size_t> bounds(static_cast<std::size_t>(p) + 1, 0);
  for (int d = 1; d < p; ++d) {
    const std::uint64_t cut =
        kUniverse / static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(d);
    bounds[static_cast<std::size_t>(d)] = static_cast<std::size_t>(
        std::lower_bound(data.begin(), data.end(), cut) - data.begin());
  }
  bounds[static_cast<std::size_t>(p)] = data.size();
  return bounds;
}

std::vector<std::uint64_t> shard_for(int rank, std::size_t n) {
  auto v = workloads::uniform_u64(
      n, derive_seed(50501, static_cast<std::uint64_t>(rank)), kUniverse);
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

int main() {
  print_header("Fig. 5a — node-level merging vs. direct exchange",
               "16 ranks / 4 nodes, slow-Ethernet network model; time of the "
               "all-to-all exchange phase only.");

  sim::ClusterConfig cc;
  cc.num_ranks = kRanks;
  cc.cores_per_node = kCoresPerNode;
  // The "low-throughput network" regime of paper Section 2.3: a high
  // per-message cost is what node-level merging amortizes.
  cc.network.latency_s = 1e-3;
  cc.network.bandwidth_Bps = 1.0e9;
  sim::Cluster cluster(cc);

  TextTable table;
  table.header({"bytes/node", "Merging(s)", "No-Merging(s)", "winner"});
  int merge_wins_small = 0;
  int direct_wins_large = 0;
  const std::vector<std::size_t> node_bytes{64u << 10, 256u << 10, 1u << 20,
                                            4u << 20, 16u << 20};
  for (std::size_t idx = 0; idx < node_bytes.size(); ++idx) {
    const std::size_t bytes = node_bytes[idx];
    const std::size_t per_rank =
        bytes / sizeof(std::uint64_t) / static_cast<std::size_t>(kCoresPerNode);

    auto direct = time_spmd(cluster, [&](sim::Comm& world) {
      auto data = shard_for(world.rank(), per_rank);
      return timed_section(world, [&] {
        const auto bounds = even_bounds(data, world.size());
        const auto plan = plan_exchange(world, bounds, 0);
        auto recv = sync_exchange<std::uint64_t>(world, data, plan);
      });
    });

    auto merged = time_spmd(cluster, [&](sim::Comm& world) {
      auto data = shard_for(world.rank(), per_rank);
      // Communicator refinement is one-time setup; the measured region is
      // the node merge plus the (leaders-only) exchange.
      auto pair = refine_comm(world);
      return timed_section(world, [&] {
        node_merge<std::uint64_t>(pair.local, data, /*stable=*/false);
        if (!pair.leaders.valid()) return;  // handed off to the leader
        const auto bounds = even_bounds(data, pair.leaders.size());
        const auto plan = plan_exchange(pair.leaders, bounds, 0);
        auto recv = sync_exchange<std::uint64_t>(pair.leaders, data, plan);
      });
    });

    const bool merging_wins = merged.seconds < direct.seconds;
    if (idx < 2 && merging_wins) ++merge_wins_small;
    if (idx + 2 >= node_bytes.size() && !merging_wins) ++direct_wins_large;
    table.row({human_bytes(bytes), time_cell(merged), time_cell(direct),
               merging_wins ? "Merging" : "No-Merging"});
  }
  std::cout << table.str() << "\n";
  print_shape(
      "merging wins for small per-node volumes (latency-bound), direct "
      "exchange wins for large ones (bandwidth-bound); paper crossover "
      "~160MB on Aries.");
  print_verdict("merging won " + std::to_string(merge_wins_small) +
                "/2 smallest sizes; direct won " +
                std::to_string(direct_wins_large) + "/2 largest sizes.");
  return 0;
}
