// Extension — systematic study of the configuration parameters tau_m,
// tau_o, tau_s (paper Section 6: "In the future, we plan to systematically
// study the configuration parameters").
//
// Three one-dimensional sweeps of the full sds_sort pipeline, each
// isolating one threshold while the others stay at their default/forced
// setting, on the slow-network profile where the thresholds matter most.
// The optimum of each sweep is the value the adaptive logic should choose
// on this "machine".
#include <cstdint>
#include <iostream>
#include <limits>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "workloads/generators.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

double run_cfg(sim::Cluster& cluster, std::size_t per_rank, const Config& cfg,
               std::uint64_t seed_base) {
  auto r = time_spmd(cluster, [&](sim::Comm& world) {
    auto data = workloads::uniform_u64(
        per_rank, derive_seed(seed_base, static_cast<std::uint64_t>(world.rank())),
        1ull << 40);
    return timed_section(world, [&] {
      auto out = sds_sort<std::uint64_t>(world, std::move(data), cfg);
    });
  });
  return r.seconds;
}
}  // namespace

int main() {
  print_header("Extension — systematic tau_m / tau_o / tau_s study",
               "16 ranks / 4 nodes, slow-network profile; full-pipeline "
               "time as each threshold sweeps across its decision range.");

  sim::ClusterConfig cc;
  cc.num_ranks = 16;
  cc.cores_per_node = 4;
  cc.network.latency_s = 5e-4;
  cc.network.bandwidth_Bps = 5e8;
  sim::Cluster cluster(cc);

  // --- tau_m: node merging on/off across shard sizes --------------------
  std::cout << "tau_m sweep (merge iff avg message <= tau_m):\n";
  TextTable tm;
  tm.header({"records/rank", "avg msg", "merge(s)", "no-merge(s)",
             "better tau_m"});
  for (std::size_t per_rank : {1000u, 8000u, 64000u}) {
    Config merge_cfg;
    merge_cfg.tau_m_bytes = std::numeric_limits<std::size_t>::max() / 2;
    Config plain_cfg;
    plain_cfg.tau_m_bytes = 0;
    const double t_m = run_cfg(cluster, per_rank, merge_cfg, 501);
    const double t_p = run_cfg(cluster, per_rank, plain_cfg, 501);
    const std::size_t avg_msg = per_rank * sizeof(std::uint64_t) / 16;
    tm.row({human_count(per_rank), human_bytes(avg_msg), fmt_seconds(t_m),
            fmt_seconds(t_p),
            t_m < t_p ? ">= " + human_bytes(avg_msg)
                      : "< " + human_bytes(avg_msg)});
  }
  std::cout << tm.str() << "\n";

  // --- tau_o: overlap on/off across shard sizes -------------------------
  std::cout << "tau_o sweep (overlap iff p < tau_o; p = 16):\n";
  TextTable to;
  to.header({"records/rank", "overlap(s)", "blocking(s)", "better policy"});
  for (std::size_t per_rank : {4000u, 32000u, 128000u}) {
    Config on;
    on.tau_o = 1u << 20;
    Config off;
    off.tau_o = 0;
    const double t_on = run_cfg(cluster, per_rank, on, 502);
    const double t_off = run_cfg(cluster, per_rank, off, 502);
    to.row({human_count(per_rank), fmt_seconds(t_on), fmt_seconds(t_off),
            t_on < t_off ? "overlap (tau_o > 16)" : "blocking (tau_o <= 16)"});
  }
  std::cout << to.str() << "\n";

  // --- tau_s: merge-all vs re-sort for the final ordering ----------------
  std::cout << "tau_s sweep (merge iff p < tau_s; p = 16):\n";
  TextTable tsb;
  tsb.header({"records/rank", "merge-all(s)", "re-sort(s)", "better policy"});
  for (std::size_t per_rank : {8000u, 64000u}) {
    Config merge_path;
    merge_path.tau_s = 1u << 20;
    merge_path.tau_o = 0;  // force the blocking path so tau_s applies
    Config sort_path;
    sort_path.tau_s = 0;
    sort_path.tau_o = 0;
    const double t_merge = run_cfg(cluster, per_rank, merge_path, 503);
    const double t_sort = run_cfg(cluster, per_rank, sort_path, 503);
    tsb.row({human_count(per_rank), fmt_seconds(t_merge), fmt_seconds(t_sort),
             t_merge < t_sort ? "merge (tau_s > 16)" : "sort (tau_s <= 16)"});
  }
  std::cout << tsb.str() << "\n";

  print_shape(
      "each threshold has a regime where both settings are defensible; the "
      "sweeps locate the machine-specific switch points the paper derived "
      "empirically for Edison (160MB / 4096 / 4000).");
  print_verdict("see per-sweep 'better' columns for this machine's values.");
  return 0;
}
