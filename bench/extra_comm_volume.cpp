// Extension — communication volume of the distributed sorts (quantifying
// the paper's Section 5 rationale: "these non-sampling based parallel
// sorting algorithms need a significant amount of communication and data
// exchange, which are expensive operations on parallel systems").
//
// The runtime counts every byte each rank pushes (point-to-point payloads
// plus collective contributions); this bench reports the totals per
// algorithm on the same workload. Expected ordering: sampling sorts move
// ~1x the data (one all-to-all) plus pivot chatter; HykSort ~log_k(p)
// rounds; bitonic Theta(log^2 p) compare-exchange rounds of the FULL data.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "baselines/bitonic.hpp"
#include "baselines/hyksort.hpp"
#include "baselines/radixsort.hpp"
#include "baselines/samplesort.hpp"
#include "core/driver.hpp"
#include "workloads/generators.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr int kRanks = 16;
constexpr std::size_t kPerRank = 20000;

TimedResult run_algo(const std::string& algo) {
  sim::Cluster cluster(sim::ClusterConfig{kRanks});
  RunMeta meta;
  meta.name = "comm-volume/" + algo;
  meta.algorithm = algo;
  meta.workload = "uniform u64";
  meta.params = {{"records_per_rank", std::to_string(kPerRank)}};
  return time_spmd(
      cluster,
      [&](sim::Comm& world) {
        auto data = workloads::uniform_u64(
            kPerRank,
            derive_seed(909, static_cast<std::uint64_t>(world.rank())),
            1ull << 40);
        return timed_section(world, [&] {
          if (algo == "SDS-Sort") {
            auto out = sds_sort<std::uint64_t>(world, std::move(data));
          } else if (algo == "HykSort k=2") {
            baselines::HykSortConfig cfg;
            cfg.kway = 2;  // log2(p) rounds: the deep-recursion configuration
            auto out =
                baselines::hyksort<std::uint64_t>(world, std::move(data), cfg);
          } else if (algo == "HykSort k=128") {
            auto out = baselines::hyksort<std::uint64_t>(world,
                                                         std::move(data));
          } else if (algo == "SampleSort") {
            auto out =
                baselines::sample_sort<std::uint64_t>(world, std::move(data));
          } else if (algo == "RadixSort") {
            auto out = baselines::radix_sort_distributed<std::uint64_t>(
                world, std::move(data));
          } else if (algo == "BitonicSort") {
            auto out =
                baselines::bitonic_sort<std::uint64_t>(world, std::move(data));
          }
        });
      },
      std::move(meta));
}
}  // namespace

int main() {
  print_header("Extension — communication volume per algorithm",
               "16 ranks x 20k u64 uniform records (2.4 MB of user data); "
               "total bytes pushed by all ranks, counted by the runtime.");

  const std::uint64_t payload =
      static_cast<std::uint64_t>(kRanks) * kPerRank * sizeof(std::uint64_t);
  TextTable table;
  table.header({"algorithm", "bytes moved", "x user data", "p2p msgs",
                "collectives"});
  std::uint64_t sds_bytes = 1;
  std::uint64_t bitonic_bytes = 0;
  for (const char* algo : {"SDS-Sort", "SampleSort", "RadixSort",
                           "HykSort k=128", "HykSort k=2", "BitonicSort"}) {
    auto res = run_algo(algo);
    if (!res.ok) {
      table.row({algo, "FAIL", "-", "-", "-"});
      continue;
    }
    const auto total = last_report()->comm_total;
    if (std::string(algo) == "SDS-Sort") sds_bytes = total.total_bytes();
    if (std::string(algo) == "BitonicSort") {
      bitonic_bytes = total.total_bytes();
    }
    table.row({algo, human_bytes(total.total_bytes()),
               fmt_seconds(static_cast<double>(total.total_bytes()) /
                               static_cast<double>(payload),
                           2),
               std::to_string(total.p2p_messages),
               std::to_string(total.collectives)});
  }
  std::cout << table.str() << "\n";
  print_shape(
      "single-exchange sampling sorts move ~1-2x the user data; HykSort "
      "multiplies by its round count; bitonic moves log^2(p)/2 full passes "
      "— the Section 5 argument for sampling sorts on distributed memory.");
  print_verdict("bitonic moved " +
                fmt_seconds(static_cast<double>(bitonic_bytes) /
                                static_cast<double>(sds_bytes),
                            1) +
                "x the bytes SDS-Sort moved on the same input.");
  return 0;
}
