// postmortem_analyze — human renderer + CI validator for flight-recorder
// bundles (obs/flight_recorder.hpp).
//
//   postmortem_analyze [--strict] <bundle.json> [more bundles...]
//
// Renders the failure classification, the per-rank blocked-op table, the
// final metrics snapshot (histograms with p50/p95/p99/max), the live-gauge
// samples leading up to the failure, and any fired chaos events. Exit
// codes: 0 rendered fine, 2 a bundle failed to load or parse. With
// --strict (the CI mode used by scripts/check.sh) also exit 1 when a
// bundle's blocked-op table or metrics snapshot is empty — a classified
// failure must leave both.
#include <iostream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "util/format.hpp"

namespace {
using namespace sdss;

std::string cell_or(const std::string& s, const char* fallback) {
  return s.empty() ? std::string(fallback) : s;
}

void render_blocked(const obs::FlightRecord& fr) {
  std::cout << "blocked-op table (at first abort):\n";
  TextTable t;
  t.header({"rank", "op", "src", "tag", "ctx", "deadline", "state"});
  for (const obs::BlockedOpRecord& b : fr.blocked) {
    t.row({std::to_string(b.rank), cell_or(b.op, "-"),
           b.src >= 0 ? std::to_string(b.src) : "-",
           b.tag >= 0 ? std::to_string(b.tag) : "-", std::to_string(b.ctx),
           b.has_deadline ? "yes" : "-",
           b.finished ? "finished" : "blocked"});
  }
  std::cout << t.str();
}

void render_metrics(const obs::MetricsSnapshot& m) {
  std::cout << "\nfinal metrics snapshot:\n";
  if (m.empty()) {
    std::cout << "  (empty)\n";
    return;
  }
  if (!m.counters.empty() || !m.gauges.empty()) {
    TextTable t;
    t.header({"scalar", "kind", "unit", "value"});
    for (const obs::ScalarSnapshot& s : m.counters) {
      t.row({s.name, "counter", obs::metric_unit_name(s.unit),
             std::to_string(s.value)});
    }
    for (const obs::ScalarSnapshot& s : m.gauges) {
      t.row({s.name, "gauge", obs::metric_unit_name(s.unit),
             std::to_string(s.value)});
    }
    std::cout << t.str();
  }
  if (!m.histograms.empty()) {
    TextTable t;
    t.header({"histogram", "unit", "count", "sum", "p50", "p95", "p99",
              "max<="});
    for (const obs::HistogramSnapshot& h : m.histograms) {
      t.row({h.name, obs::metric_unit_name(h.unit), std::to_string(h.count),
             std::to_string(h.sum), std::to_string(h.percentile(0.50)),
             std::to_string(h.percentile(0.95)),
             std::to_string(h.percentile(0.99)),
             std::to_string(h.max_bound())});
    }
    std::cout << t.str();
  }
  for (const obs::SeriesSnapshot& s : m.series) {
    std::size_t points = 0;
    for (const auto& row : s.per_rank) points += row.size();
    std::cout << "series " << s.name << ": " << s.per_rank.size()
              << " rank(s), " << points << " progress point(s)\n";
  }
}

void render_sampler(const obs::FlightRecord& fr) {
  if (fr.live_samples.empty()) return;
  std::cout << "\nlive-gauge samples before failure ("
            << fr.live_samples.size() << "):\n";
  TextTable t;
  std::vector<std::string> head = {"seq", "t(ms)"};
  for (const std::string& g : fr.sampled_gauges) head.push_back(g);
  t.header(head);
  // The tail matters most in a post-mortem: show at most the last 8.
  const std::size_t first =
      fr.live_samples.size() > 8 ? fr.live_samples.size() - 8 : 0;
  for (std::size_t i = first; i < fr.live_samples.size(); ++i) {
    const obs::LiveSample& s = fr.live_samples[i];
    std::vector<std::string> row = {
        std::to_string(s.seq),
        fmt_seconds(static_cast<double>(s.t_ns) / 1e6, 1)};
    for (std::uint64_t v : s.values) row.push_back(std::to_string(v));
    t.row(row);
  }
  std::cout << t.str();
}

void render_tails(const obs::FlightRecord& fr) {
  if (fr.trace_tails.empty()) return;
  std::cout << "\ntrace-lane tails:\n";
  for (std::size_t lane = 0; lane < fr.trace_tails.size(); ++lane) {
    const auto& tail = fr.trace_tails[lane];
    std::cout << "  lane " << lane
              << (lane + 1 == fr.trace_tails.size() ? " (runtime)" : "")
              << ": " << tail.size() << " event(s)";
    if (!tail.empty()) {
      const obs::TraceTailEvent& e = tail.back();
      std::cout << ", last: " << e.kind << " " << cell_or(e.name, "?") << " ["
                << e.cat << "] t=" << e.t_ns << "ns";
      if (e.peer >= 0) std::cout << " peer=" << e.peer;
    }
    std::cout << "\n";
  }
}

void render_chaos(const obs::FlightRecord& fr) {
  if (fr.chaos_events.empty()) return;
  std::cout << "\nfired chaos events:\n";
  TextTable t;
  t.header({"kind", "rank", "op#", "seconds"});
  for (const obs::ChaosEventRecord& e : fr.chaos_events) {
    t.row({e.kind, std::to_string(e.rank), std::to_string(e.op_index),
           fmt_seconds(e.seconds, 4)});
  }
  std::cout << t.str();
}

/// Render one bundle; returns 0 ok, 1 strict violation, 2 load failure.
int analyze(const std::string& path, bool strict) {
  obs::FlightRecord fr;
  try {
    fr = obs::load_flight_record(path);
  } catch (const std::exception& e) {
    std::cerr << "postmortem_analyze: cannot load " << path << ": "
              << e.what() << "\n";
    return 2;
  }

  std::cout << "=== " << path << " (schema v" << fr.schema_version
            << ") ===\n";
  std::cout << "failure: " << cell_or(fr.failure_class, "unclassified");
  if (fr.failed_rank >= 0) std::cout << " at rank " << fr.failed_rank;
  std::cout << "\n";
  if (!fr.failure_detail.empty())
    std::cout << "detail:  " << fr.failure_detail << "\n";
  if (!fr.error.empty()) std::cout << "error:   " << fr.error << "\n";
  std::cout << "\n";

  render_blocked(fr);
  render_metrics(fr.metrics);
  render_sampler(fr);
  render_tails(fr);
  render_chaos(fr);
  std::cout << "\n";

  if (strict) {
    if (fr.blocked.empty()) {
      std::cerr << "postmortem_analyze: --strict: " << path
                << " has an empty blocked-op table\n";
      return 1;
    }
    if (fr.metrics.empty()) {
      std::cerr << "postmortem_analyze: --strict: " << path
                << " has an empty metrics snapshot\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: postmortem_analyze [--strict] <bundle.json>...\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: postmortem_analyze [--strict] <bundle.json>...\n";
    return 2;
  }
  int worst = 0;
  for (const std::string& p : paths) {
    const int rc = analyze(p, strict);
    if (rc > worst) worst = rc;
  }
  return worst;
}
