// bench_collectives — latency and wire volume of every collective in the
// simulated runtime, per payload size and communicator width.
//
// Each (op, p, payload) cell runs the collective a FIXED number of
// iterations so the CommStats counters (messages and bytes per rank) are
// exactly reproducible across machines: the checked-in baseline
// bench/baselines/bench_collectives.json is compared with
// `report_diff --bytes-only` in scripts/check.sh, turning any accidental
// growth in collective wire traffic into a CI failure. Wall times are
// recorded too (and gated separately, with thresholds, like every bench).
//
// The headline measurement: at p = 64, allreduce and exscan move
// Θ(n log p) bytes per rank (recursive doubling / dissemination) — not the
// Θ(n·p) a gather-everywhere implementation costs.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr int kIters = 4;  // fixed: byte counters must be reproducible

struct CellResult {
  TimedResult timed;
  double msgs_per_rank_call = 0.0;  // fractional: tree roots send more
  std::uint64_t bytes_per_rank_call = 0;
  std::string algorithm;  // per_alg entries actually selected
};

/// Run `op` kIters times on a p-rank cluster with `payload` bytes per rank
/// (interpretation is per-op: per-peer block for alltoall, total vector for
/// the reductions) and pull the per-rank wire counters out of the report.
CellResult run_cell(const std::string& op, int p, std::size_t payload) {
  sim::Cluster cluster(sim::ClusterConfig{p});
  RunMeta meta;
  meta.name = "collectives/" + op + "/p=" + std::to_string(p) +
              "/bytes=" + std::to_string(payload);
  meta.algorithm = op;
  meta.workload = "synthetic bytes";
  meta.params = {{"payload_bytes", std::to_string(payload)},
                 {"iters", std::to_string(kIters)}};
  auto timed = time_spmd(
      cluster,
      [&](sim::Comm& c) {
        const auto np = static_cast<std::size_t>(c.size());
        const auto words = payload / sizeof(std::uint64_t);
        std::vector<std::uint64_t> send(words > 0 ? words : 1,
                                        static_cast<std::uint64_t>(c.rank()));
        std::vector<std::uint64_t> recv(send.size() * np);
        std::vector<std::size_t> counts(np, payload), displs(np);
        for (std::size_t i = 0; i < np; ++i) displs[i] = i * payload;
        auto sum = [](void* inout, const void* in) {
          auto* a = static_cast<std::uint64_t*>(inout);
          const auto* b = static_cast<const std::uint64_t*>(in);
          // Byte count is what this bench measures; fold the first word so
          // the op is not dead code.
          a[0] += b[0];
        };
        return timed_section(c, [&] {
          for (int it = 0; it < kIters; ++it) {
            if (op == "barrier") {
              c.barrier();
            } else if (op == "bcast") {
              c.bcast_bytes(send.data(), payload, 0);
            } else if (op == "gather") {
              c.gather_bytes(send.data(), payload, recv.data(), 0);
            } else if (op == "scatter") {
              c.scatter_bytes(recv.data(), payload, send.data(), 0);
            } else if (op == "allgather") {
              c.allgather_bytes(send.data(), payload, recv.data());
            } else if (op == "allgatherv") {
              c.allgatherv_bytes(send.data(), payload, recv.data(),
                                 counts.data(), displs.data());
            } else if (op == "alltoall") {
              // `payload` is the per-peer block here; recv holds p blocks.
              c.alltoall_bytes(send.data(), payload / np, recv.data());
            } else if (op == "alltoallv") {
              std::vector<std::size_t> cnt(np, payload / np), dsp(np);
              for (std::size_t i = 0; i < np; ++i) dsp[i] = i * (payload / np);
              c.alltoallv_bytes(send.data(), cnt.data(), dsp.data(),
                                recv.data(), cnt.data(), dsp.data());
            } else if (op == "reduce") {
              c.reduce_bytes(send.data(), recv.data(), payload, sum, 0);
            } else if (op == "allreduce") {
              c.allreduce_bytes(send.data(), recv.data(), payload, sum);
            } else if (op == "exscan") {
              recv.assign(recv.size(), 0);  // rank 0 keeps the identity
              c.exscan_bytes(send.data(), recv.data(), payload, sum);
            }
          }
        });
      },
      std::move(meta));

  CellResult out;
  out.timed = timed;
  if (!timed.ok) return out;
  // Attribute from the op's own per-algorithm entries: timed_section()
  // brackets the loop with barriers, and those must not pollute the cell.
  const sim::CommStats& total = last_report()->comm_total;
  const auto calls = static_cast<std::uint64_t>(p) * kIters;
  std::uint64_t msgs = 0, bytes = 0;
  for (std::size_t i = 0; i < sim::kNumCollAlgs; ++i) {
    if (total.per_alg[i].calls == 0) continue;
    const std::string name = sim::coll_alg_name(static_cast<sim::CollAlg>(i));
    const auto slash = name.find('/');
    if (name.substr(0, slash) != op) continue;
    msgs += total.per_alg[i].messages;
    bytes += total.per_alg[i].bytes_out;
    // Strip the "op/" prefix: the row already names the op.
    if (!out.algorithm.empty()) out.algorithm += "+";
    out.algorithm += name.substr(slash + 1);
  }
  out.msgs_per_rank_call =
      static_cast<double>(msgs) / static_cast<double>(calls);
  out.bytes_per_rank_call = bytes / calls;
  return out;
}

}  // namespace

int main() {
  print_header(
      "Collectives — latency and wire volume per algorithm",
      "Every collective at p in {8, 63, 64}, small vs bulk payloads, " +
          std::to_string(kIters) +
          " iterations per cell (fixed, so byte counters are exactly "
          "reproducible). Columns report per-rank per-call averages.");

  const std::vector<std::string> ops = {
      "barrier", "bcast",     "gather", "scatter",   "allgather", "allgatherv",
      "alltoall", "alltoallv", "reduce", "allreduce", "exscan"};
  // Small payloads exercise the latency-optimized algorithms (binomial /
  // recursive doubling / Bruck), bulk payloads the bandwidth-optimized ones
  // (ring, pairwise). 512 KiB total crosses every selection threshold.
  const std::vector<std::size_t> payloads = {64, 512 * 1024};

  TextTable table;
  table.header({"op", "p", "payload", "algorithm", "msgs/rank", "bytes/rank",
                "wall/call"});
  std::uint64_t allreduce_bytes_p64 = 0;
  std::uint64_t exscan_bytes_p64 = 0;
  std::size_t headline_payload = 0;
  for (const std::string& op : ops) {
    // p = 63 exercises the non-power-of-two paths (Bruck allgather, the
    // recursive-doubling fold-in) that 8 and 64 never select.
    for (int p : {8, 63, 64}) {
      for (std::size_t payload : payloads) {
        if (op == "barrier" && payload != payloads.front()) continue;
        auto cell = run_cell(op, p, payload);
        if (!cell.timed.ok) {
          table.row({op, std::to_string(p), human_bytes(payload), "FAIL", "-",
                     "-", "-"});
          continue;
        }
        if (p == 64 && payload == payloads.back()) {
          if (op == "allreduce") allreduce_bytes_p64 = cell.bytes_per_rank_call;
          if (op == "exscan") exscan_bytes_p64 = cell.bytes_per_rank_call;
          headline_payload = payload;
        }
        table.row({op, std::to_string(p),
                   op == "barrier" ? "-" : human_bytes(payload),
                   cell.algorithm, fmt_seconds(cell.msgs_per_rank_call, 1),
                   std::to_string(cell.bytes_per_rank_call),
                   fmt_seconds(cell.timed.seconds / kIters, 6)});
      }
    }
  }
  std::cout << table.str() << "\n";

  print_shape(
      "allreduce/exscan wire bytes per rank scale as n*log2(p), not n*p: "
      "at p=64 that is 6n (recursive doubling) vs the 63n a "
      "gather-everywhere implementation would push.");
  const double n = static_cast<double>(headline_payload);
  print_verdict(
      "p=64 allreduce moved " +
      fmt_seconds(static_cast<double>(allreduce_bytes_p64) / n, 2) +
      "x the payload per rank (log2(64) = 6), exscan " +
      fmt_seconds(static_cast<double>(exscan_bytes_p64) / n, 2) +
      "x; a linear-gather implementation would move 63x.");
  return 0;
}
