// report_diff — compare two bench report files and flag regressions.
//
// The seed of a perf-regression gate: capture a baseline once
// (`fig8_weak_scaling_zipf --json before.json`), re-run after a change,
// then `report_diff before.json after.json --threshold=0.15`. Reports are
// matched by name; every phase plus the total and wall time is compared.
// Exit status: 0 = no regression, 1 = at least one phase regressed past the
// threshold, 2 = usage or file error. See docs/BENCHMARKING.md.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "telemetry/diff.hpp"
#include "util/error.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: report_diff <before.json> <after.json> [options]\n"
      "  --threshold=FRAC   relative slowdown that counts as a regression\n"
      "                     (default 0.10 = 10%%)\n"
      "  --min-seconds=S    ignore regressions smaller than S absolute\n"
      "                     seconds (noise floor, default 0.001)\n"
      "  --wall             compare wall seconds instead of CPU seconds\n"
      "  --bytes            also compare simulated comm counters (bytes\n"
      "                     and message counts; deterministic, exact)\n"
      "  --bytes-only       compare ONLY the comm counters — the\n"
      "                     machine-independent CI regression gate\n"
      "  --bytes-threshold=FRAC  relative growth tolerated for counters\n"
      "                     (default 0 = any growth is a regression)\n"
      "  --json             machine-readable output: newline-delimited\n"
      "                     JSON, one object per compared metric plus a\n"
      "                     final summary object (exit codes unchanged)\n"
      "exit: 0 no regression, 1 regression found, 2 error\n");
  std::exit(2);
}

/// Parse a nonnegative decimal option value; usage() on anything else
/// (atof would turn a typo like --threshold=banana into silent 0.0).
double parse_value(const std::string& arg, std::size_t prefix_len) {
  const std::string text = arg.substr(prefix_len);
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || v < 0.0) {
    std::fprintf(stderr, "report_diff: bad option value: %s\n", arg.c_str());
    usage();
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdss::telemetry;

  std::string before_path;
  std::string after_path;
  DiffOptions opts;
  bool json = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      opts.threshold = parse_value(arg, 12);
    } else if (arg.rfind("--min-seconds=", 0) == 0) {
      opts.min_seconds = parse_value(arg, 14);
    } else if (arg == "--wall") {
      opts.use_cpu = false;
    } else if (arg == "--bytes") {
      opts.compare_bytes = true;
    } else if (arg == "--bytes-only") {
      opts.bytes_only = true;
    } else if (arg.rfind("--bytes-threshold=", 0) == 0) {
      opts.bytes_threshold = parse_value(arg, 18);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "-h" || arg == "--help") {
      usage();
    } else if (arg.rfind("--", 0) == 0) {
      usage();
    } else {
      switch (positional++) {
        case 0:
          before_path = arg;
          break;
        case 1:
          after_path = arg;
          break;
        default:
          usage();
      }
    }
  }
  if (positional != 2) usage();

  try {
    const ReportRegistry before = ReportRegistry::load_file(before_path);
    const ReportRegistry after = ReportRegistry::load_file(after_path);
    const DiffResult d = diff_registries(before, after, opts);
    if (json) {
      print_diff_json(std::cout, d, opts);
    } else {
      print_diff(std::cout, d, opts);
    }
    return d.any_regression ? 1 : 0;
  } catch (const sdss::Error& e) {
    std::fprintf(stderr, "report_diff: %s\n", e.what());
    return 2;
  }
}
