// Shared harness for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (Section 4): it prints the same rows/series the paper reports,
// plus a `paper-shape:` line stating the qualitative claim the measurement
// should reproduce, and a `measured:` verdict. Absolute numbers differ from
// Edison (this substrate is a simulated cluster on one box); the *shape* —
// who wins, by what rough factor, where crossovers fall — is the target.
//
// Telemetry: every time_spmd() call also records a telemetry::RunReport
// (phases, comm counters, cluster config) into a process-wide registry.
// When the process was started with `--json <path>` (recovered from
// /proc/self/cmdline, so argv-less bench mains honor it too) or with
// SDSS_BENCH_JSON=<path> in the environment, the registry is written to
// that path at exit — one schema-versioned file per process, one report per
// measured configuration. See docs/OBSERVABILITY.md for the schema and
// docs/BENCHMARKING.md for the regression workflow around report_diff.
#pragma once

#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sdss.hpp"
#include "telemetry/report.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace sdss::bench {

/// Process-wide report accumulator. Always collects (the registry is cheap
/// and lets tests inspect runs in-process); only writes a file when a
/// destination was configured. Flushes from its destructor so plain bench
/// mains need no teardown call.
class BenchReporter {
 public:
  static BenchReporter& instance() {
    static BenchReporter reporter;
    return reporter;
  }

  telemetry::ReportRegistry& registry() { return registry_; }
  const std::string& path() const { return path_; }

  /// print_header() routes the bench's title here so every report carries
  /// its experiment name.
  void set_experiment(std::string name) { experiment_ = std::move(name); }
  const std::string& experiment() const { return experiment_; }

  /// Name for a run whose caller provided none: "<experiment> #<seq>".
  std::string next_auto_name() {
    return (experiment_.empty() ? std::string("run") : experiment_) + " #" +
           std::to_string(++seq_);
  }

  void flush() {
    if (flushed_ || path_.empty() || registry_.empty()) return;
    flushed_ = true;
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "bench: cannot write report file " << path_ << "\n";
      return;
    }
    registry_.write(out);
    std::cout << "wrote " << registry_.size() << " run report(s) to "
              << path_ << "\n";
  }

  ~BenchReporter() { flush(); }

 private:
  BenchReporter() : path_(telemetry::report_path_from_cmdline_or_env()) {}

  std::string path_;
  std::string experiment_;
  telemetry::ReportRegistry registry_;
  int seq_ = 0;
  bool flushed_ = false;
};

/// The report recorded by the most recent time_spmd() — the hook for
/// enriching a run with data only the caller has (RDFA, adaptive
/// decisions, workload δ). Nullptr before the first run.
inline telemetry::RunReport* last_report() {
  return BenchReporter::instance().registry().last();
}

/// Optional identity of one measured configuration, passed to time_spmd().
/// Leave `name` empty for an auto-generated sequence name.
struct RunMeta {
  std::string name;
  std::string algorithm;
  std::string workload;
  std::vector<std::pair<std::string, std::string>> params;
};

/// Record a locally-timed (non-SPMD) measurement as a run report: the hook
/// for single-rank primitive benches (fig5c, fig6a/b, table2), which time
/// with a raw WallTimer instead of a simulated cluster. The seconds land in
/// `phase`; pass cpu_seconds 0 when only wall was measured.
inline telemetry::RunReport& record_local_run(RunMeta meta,
                                              double wall_seconds,
                                              double cpu_seconds = 0.0,
                                              Phase phase = Phase::kOther) {
  auto& reporter = BenchReporter::instance();
  telemetry::RunReport rep;
  rep.name =
      meta.name.empty() ? reporter.next_auto_name() : std::move(meta.name);
  rep.experiment = reporter.experiment();
  rep.algorithm = std::move(meta.algorithm);
  rep.workload = std::move(meta.workload);
  rep.params = std::move(meta.params);
  rep.ranks = 1;
  rep.wall_seconds = wall_seconds;
  rep.crit_path_cpu_seconds = cpu_seconds;
  rep.phases.add(phase, wall_seconds, cpu_seconds);
  rep.rdfa = 1.0;
  return reporter.registry().add(std::move(rep));
}

/// Barrier-bracketed measurement of one SPMD section: synchronizes all
/// ranks, runs fn, synchronizes again, returns this rank's elapsed seconds
/// (the max over ranks is the SPMD critical path).
inline double timed_section(sim::Comm& world,
                            const std::function<void()>& fn) {
  world.barrier();
  WallTimer timer;
  fn();
  world.barrier();
  return timer.seconds();
}

/// Run one timed SPMD experiment. `body` performs its own (untimed) setup,
/// then brackets the measured region with timed_section and returns the
/// seconds. The reported figure is the slowest rank. A failed run yields a
/// negative seconds value (-1 generic, -2 simulated OOM).
struct TimedResult {
  double seconds = -1.0;      ///< slowest rank's wall time
  double crit_path_cpu = 0.0; ///< max over ranks of total thread-CPU time:
                              ///< the parallel makespan proxy on a host with
                              ///< fewer cores than simulated ranks
  bool ok = false;
  bool oom = false;
  PhaseLedger breakdown;  ///< per-phase max over ranks
};

inline TimedResult time_spmd(
    sim::Cluster& cluster,
    const std::function<double(sim::Comm&)>& body, RunMeta meta = {}) {
  std::mutex mu;
  double max_seconds = 0.0;
  auto res = cluster.run_collect([&](sim::Comm& world) {
    world.ledger().clear();
    const double s = body(world);
    std::lock_guard<std::mutex> lk(mu);
    if (s > max_seconds) max_seconds = s;
  });
  TimedResult out;
  out.ok = res.ok;
  out.oom = res.oom;
  out.seconds = res.ok ? max_seconds : (res.oom ? -2.0 : -1.0);
  out.breakdown = res.max_ledger();
  for (const PhaseLedger& l : res.ledgers) {
    out.crit_path_cpu = std::max(out.crit_path_cpu, l.cpu_total());
  }

  // Record the run report. Callers with post-run knowledge (RDFA, adaptive
  // decisions) enrich it via last_report().
  auto& reporter = BenchReporter::instance();
  telemetry::RunReport rep;
  rep.name =
      meta.name.empty() ? reporter.next_auto_name() : std::move(meta.name);
  rep.experiment = reporter.experiment();
  rep.algorithm = std::move(meta.algorithm);
  rep.workload = std::move(meta.workload);
  rep.params = std::move(meta.params);
  const sim::ClusterConfig& cc = cluster.config();
  rep.ranks = cc.num_ranks;
  rep.cores_per_node = cc.cores_per_node;
  rep.net_latency_s = cc.network.latency_s;
  rep.net_bandwidth_Bps = cc.network.bandwidth_Bps;
  rep.ok = out.ok;
  rep.oom = out.oom;
  rep.failure_class = sim::failure_class_name(res.failure);
  rep.failure_detail = res.failure_detail;
  rep.failed_rank = res.failed_rank;
  if (cc.chaos.any()) {
    rep.has_chaos = true;
    rep.chaos_seed = cc.chaos.seed;
    rep.fault_events = std::move(res.fault_events);
    rep.jittered_messages = res.jittered_messages;
  }
  rep.wall_seconds = out.ok ? out.seconds : -1.0;
  rep.crit_path_cpu_seconds = out.crit_path_cpu;
  rep.phases = out.breakdown;
  rep.phases_per_rank = std::move(res.ledgers);
  rep.comm_total = res.total_comm();
  rep.comm_per_rank = std::move(res.comm_stats);
  // Tracing defaults on: analyze the event lanes into the critical-path /
  // λ / blocked-time summary the report's "trace" object carries.
  if (!res.trace.lanes.empty()) {
    telemetry::set_trace(rep, trace::analyze_trace(res.trace));
  }
  // Metrics default on too: the aggregated registry snapshot (counters,
  // gauges, histograms, deterministic progress series) rides along.
  if (res.has_metrics) telemetry::set_metrics(rep, res.metrics);
  reporter.registry().add(std::move(rep));
  return out;
}

/// Render a time cell: seconds, or the paper's failure annotations.
inline std::string time_cell(const TimedResult& r, int precision = 4) {
  if (r.ok) return fmt_seconds(r.seconds, precision);
  return r.oom ? "OOM" : "FAIL";
}

inline std::string rdfa_cell(double v, bool ok) {
  if (!ok) return "inf";  // paper Table 3 prints infinity for OOM runs
  return fmt_seconds(v, 4);
}

inline void print_header(const std::string& experiment,
                         const std::string& description) {
  BenchReporter::instance().set_experiment(experiment);
  std::cout << "\n=== " << experiment << " ===\n" << description << "\n\n";
}

inline void print_shape(const std::string& claim) {
  std::cout << "paper-shape: " << claim << "\n";
}

inline void print_verdict(const std::string& verdict) {
  std::cout << "measured:    " << verdict << "\n";
}

/// Throughput in MB/min from records, record size and seconds (the paper
/// quotes TB/min at Edison scale).
inline double mb_per_min(std::uint64_t records, std::size_t record_bytes,
                         double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(records) * static_cast<double>(record_bytes) /
         (1024.0 * 1024.0) / (seconds / 60.0);
}

}  // namespace sdss::bench
