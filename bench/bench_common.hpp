// Shared harness for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (Section 4): it prints the same rows/series the paper reports,
// plus a `paper-shape:` line stating the qualitative claim the measurement
// should reproduce, and a `measured:` verdict. Absolute numbers differ from
// Edison (this substrate is a simulated cluster on one box); the *shape* —
// who wins, by what rough factor, where crossovers fall — is the target.
#pragma once

#include <algorithm>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "sdss.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace sdss::bench {

/// Barrier-bracketed measurement of one SPMD section: synchronizes all
/// ranks, runs fn, synchronizes again, returns this rank's elapsed seconds
/// (the max over ranks is the SPMD critical path).
inline double timed_section(sim::Comm& world,
                            const std::function<void()>& fn) {
  world.barrier();
  WallTimer timer;
  fn();
  world.barrier();
  return timer.seconds();
}

/// Run one timed SPMD experiment. `body` performs its own (untimed) setup,
/// then brackets the measured region with timed_section and returns the
/// seconds. The reported figure is the slowest rank. A failed run yields a
/// negative seconds value (-1 generic, -2 simulated OOM).
struct TimedResult {
  double seconds = -1.0;      ///< slowest rank's wall time
  double crit_path_cpu = 0.0; ///< max over ranks of total thread-CPU time:
                              ///< the parallel makespan proxy on a host with
                              ///< fewer cores than simulated ranks
  bool ok = false;
  bool oom = false;
  PhaseLedger breakdown;  ///< per-phase max over ranks
};

inline TimedResult time_spmd(
    sim::Cluster& cluster,
    const std::function<double(sim::Comm&)>& body) {
  std::mutex mu;
  double max_seconds = 0.0;
  auto res = cluster.run_collect([&](sim::Comm& world) {
    world.ledger().clear();
    const double s = body(world);
    std::lock_guard<std::mutex> lk(mu);
    if (s > max_seconds) max_seconds = s;
  });
  TimedResult out;
  out.ok = res.ok;
  out.oom = res.oom;
  out.seconds = res.ok ? max_seconds : (res.oom ? -2.0 : -1.0);
  out.breakdown = res.max_ledger();
  for (const PhaseLedger& l : res.ledgers) {
    out.crit_path_cpu = std::max(out.crit_path_cpu, l.cpu_total());
  }
  return out;
}

/// Render a time cell: seconds, or the paper's failure annotations.
inline std::string time_cell(const TimedResult& r, int precision = 4) {
  if (r.ok) return fmt_seconds(r.seconds, precision);
  return r.oom ? "OOM" : "FAIL";
}

inline std::string rdfa_cell(double v, bool ok) {
  if (!ok) return "inf";  // paper Table 3 prints infinity for OOM runs
  return fmt_seconds(v, 4);
}

inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::cout << "\n=== " << experiment << " ===\n" << description << "\n\n";
}

inline void print_shape(const std::string& claim) {
  std::cout << "paper-shape: " << claim << "\n";
}

inline void print_verdict(const std::string& verdict) {
  std::cout << "measured:    " << verdict << "\n";
}

/// Throughput in MB/min from records, record size and seconds (the paper
/// quotes TB/min at Edison scale).
inline double mb_per_min(std::uint64_t records, std::size_t record_bytes,
                         double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(records) * static_cast<double>(record_bytes) /
         (1024.0 * 1024.0) / (seconds / 60.0);
}

}  // namespace sdss::bench
