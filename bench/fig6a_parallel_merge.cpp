// Fig. 6a — shared-memory parallel merging: SDS-Sort's skew-aware
// partition vs. HykSort's sample-based partition, Uniform vs. Zipf
// workloads, as a function of data size (paper Section 4.1.2).
//
// Paper: on a single node, HykSort's sample-based merge slows down on Zipf
// data (one core inherits nearly all duplicates) while SDS-Sort's
// skew-aware merge delivers stable times on both workloads.
//
// This host has one physical core, so wall time cannot show a parallel
// makespan; instead we report the *critical path* — the largest single
// merge task a core would execute — which is exactly what determines the
// parallel time on a real node. Wall time (total work) is printed as well.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sortcore/kway_merge.hpp"
#include "sortcore/merge_partition.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr std::size_t kChunks = 4;  // simulated cores

struct MergeTimes {
  double critical = 0.0;  ///< slowest single merge task (parallel makespan)
  double total = 0.0;     ///< sum over tasks (sequential wall time)
};

MergeTimes merge_with(const std::vector<std::vector<std::uint64_t>>& chunks,
                      MergePartitionMethod method) {
  std::vector<std::span<const std::uint64_t>> spans;
  std::size_t total_n = 0;
  for (const auto& c : chunks) {
    spans.emplace_back(c);
    total_n += c.size();
  }
  const auto plan = plan_merge_partition<std::uint64_t>(
      spans, kChunks, /*stable=*/false, method);
  std::vector<std::uint64_t> out(total_n);
  std::vector<std::size_t> offsets(kChunks + 1, 0);
  for (std::size_t t = 0; t < kChunks; ++t) {
    offsets[t + 1] = offsets[t] + plan.part_size(t);
  }
  MergeTimes times;
  for (std::size_t t = 0; t < kChunks; ++t) {
    std::vector<std::span<const std::uint64_t>> pieces;
    for (std::size_t j = 0; j < spans.size(); ++j) {
      pieces.push_back(spans[j].subspan(plan.bounds[t][j],
                                        plan.bounds[t + 1][j] -
                                            plan.bounds[t][j]));
    }
    WallTimer timer;
    kway_merge<std::uint64_t>(
        pieces, std::span<std::uint64_t>(out.data() + offsets[t],
                                         offsets[t + 1] - offsets[t]));
    const double s = timer.seconds();
    times.total += s;
    times.critical = std::max(times.critical, s);
  }
  if (!std::is_sorted(out.begin(), out.end())) std::abort();
  return times;
}

std::vector<std::vector<std::uint64_t>> make_chunks(bool zipf,
                                                    std::size_t total) {
  std::vector<std::vector<std::uint64_t>> chunks(kChunks);
  for (std::size_t c = 0; c < kChunks; ++c) {
    const std::size_t n = total / kChunks;
    chunks[c] = zipf ? workloads::zipf_keys(n, 2.1, derive_seed(60601, c))
                     : workloads::uniform_u64(n, derive_seed(60602, c),
                                              1ull << 40);
    std::sort(chunks[c].begin(), chunks[c].end());
  }
  return chunks;
}
}  // namespace

int main() {
  print_header("Fig. 6a — skew-aware vs. sample-based parallel merging",
               "4 sorted chunks merged with 4-way partitioning; critical "
               "path = slowest merge task = parallel time on 4 cores.");

  TextTable table;
  table.header({"records", "workload", "SDS crit(s)", "Hyk crit(s)",
                "SDS total(s)", "Hyk total(s)"});
  double worst_hyk_ratio = 0.0, worst_sds_ratio = 0.0;
  for (std::size_t total : {1u << 19, 1u << 20, 2u << 20, 4u << 20}) {
    for (bool zipf : {false, true}) {
      auto chunks = make_chunks(zipf, total);
      const auto sds = merge_with(chunks, MergePartitionMethod::kSkewAware);
      const auto hyk = merge_with(chunks, MergePartitionMethod::kSampleOnly);
      const char* workload = zipf ? "zipf:2.1" : "uniform";
      for (const auto& [method, times] :
           {std::pair<const char*, const MergeTimes&>{"skew-aware", sds},
            {"sample-based", hyk}}) {
        RunMeta meta;
        meta.name = std::string("parallel-merge/") + workload + "/n=" +
                    std::to_string(total) + "/" + method;
        meta.algorithm = method;
        meta.workload = workload;
        meta.params = {{"records", std::to_string(total)},
                       {"chunks", std::to_string(kChunks)},
                       {"total_merge_s", fmt_seconds(times.total, 6)}};
        // The critical path (slowest merge task) is the parallel makespan.
        record_local_run(std::move(meta), times.critical, 0.0,
                         Phase::kLocalOrdering);
      }
      // Imbalance measure: critical path over ideal (total/4).
      if (zipf) {
        worst_hyk_ratio =
            std::max(worst_hyk_ratio, hyk.critical / (hyk.total / kChunks));
        worst_sds_ratio =
            std::max(worst_sds_ratio, sds.critical / (sds.total / kChunks));
      }
      table.row({human_count(total), zipf ? "Zipf(2.1)" : "Uniform",
                 fmt_seconds(sds.critical), fmt_seconds(hyk.critical),
                 fmt_seconds(sds.total), fmt_seconds(hyk.total)});
    }
  }
  std::cout << table.str() << "\n";
  print_shape(
      "on Zipf data the sample-based (HykSort) merge's slowest task "
      "approaches the WHOLE merge (one core does everything) while the "
      "skew-aware merge stays near total/4 on both workloads.");
  print_verdict("worst Zipf critical/ideal ratio: skew-aware " +
                fmt_seconds(worst_sds_ratio, 2) + "x vs sample-based " +
                fmt_seconds(worst_hyk_ratio, 2) + "x (ideal = 1.0, serial = " +
                std::to_string(kChunks) + ".0).");
  return 0;
}
