// Shared machinery for the weak-scaling experiments (Figs. 7/8, Table 3).
//
// Paper setup: 400 MB (100M records) per process, 0.5K..128K cores, Uniform
// and Zipf(0.7-2.0) workloads; HykSort OOMs on the skewed workload at every
// scale. Scaled-down setup: 20k records/rank, 4..64 ranks, Aries-like
// model, HykSort budgeted at 3x the average load.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "baselines/hyksort.hpp"
#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "workloads/generators.hpp"
#include "workloads/zipf.hpp"

namespace sdss::bench {

inline constexpr std::size_t kWeakPerRank = 20000;
inline const std::vector<int> kWeakRanks{4, 8, 16, 32, 64};

/// Large-P sweep (figs 7/8 `--large`): rank counts in the regime the paper
/// actually evaluates, runnable since ranks became scheduler fibers instead
/// of OS threads. Fewer records per rank keep the total dataset (and the
/// single-host wall time) comparable to the standard sweep while the
/// communication structure — collective depth, splitter fan-in — scales.
inline constexpr std::size_t kWeakPerRankLarge = 2000;
inline const std::vector<int> kWeakRanksLarge{256, 1024};

enum class WeakWorkload { kUniform, kZipf };

inline std::vector<std::uint64_t> weak_shard(WeakWorkload w, int rank,
                                             std::size_t per_rank) {
  const std::uint64_t seed =
      derive_seed(70701, static_cast<std::uint64_t>(rank));
  if (w == WeakWorkload::kUniform) {
    return workloads::uniform_u64(per_rank, seed, 1ull << 40);
  }
  // Paper Fig. 8 labels the workload "Zipf(0.7-2.0)"; alpha 1.4 is the
  // midpoint and matches Table 1's delta = 32% row.
  return workloads::zipf_keys(per_rank, 1.4, seed);
}

enum class Algo { kHykSort, kSds, kSdsStable };

inline const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kHykSort:
      return "HykSort";
    case Algo::kSds:
      return "SDS-Sort";
    case Algo::kSdsStable:
      return "SDS-Sort/stable";
  }
  return "?";
}

struct WeakPoint {
  TimedResult timing;
  double rdfa = 0.0;  ///< valid only when timing.ok
};

inline const char* weak_workload_name(WeakWorkload w) {
  return w == WeakWorkload::kUniform ? "uniform" : "zipf:1.4";
}

/// One weak-scaling measurement: run `algo` on `p` ranks over `w`, with a
/// per-rank budget of 3x the average (the paper's OOM trigger for HykSort
/// on skewed data). `per_rank` defaults to the standard sweep's shard size;
/// the large-P sweep passes kWeakPerRankLarge. `policy` selects what the
/// budget means for SDS-Sort (strict OOM vs. out-of-core spill; HykSort has
/// no spill path and ignores it).
inline WeakPoint weak_scaling_point(int p, WeakWorkload w, Algo algo,
                                    std::size_t per_rank = kWeakPerRank,
                                    MemoryPolicy policy =
                                        MemoryPolicy::kStrict) {
  sim::ClusterConfig ccfg{p, 1, sim::NetworkModel::aries_like()};
  // Past a few hundred ranks the per-lane trace buffers dominate memory;
  // the weak-scaling measurement doesn't read the trace.
  if (p >= 256) ccfg.enable_trace = false;
  sim::Cluster cluster(ccfg);
  const std::size_t budget = 3 * per_rank;
  const bool spill_leg = policy == MemoryPolicy::kSpill;
  WeakPoint point;
  std::mutex mu;
  LoadBalance balance;
  balance.rdfa = 0.0;  // failed runs report 0, as before (printed as "inf")
  SortReport decisions;
  SpillStats spill_sum;
  std::uint64_t spill_max_passes = 0, spill_max_peak = 0;
  bool any_spilled = false;
  RunMeta meta;
  meta.name = std::string("weak-scaling/") + weak_workload_name(w) +
              "/p=" + std::to_string(p) + "/" + algo_name(algo) +
              (spill_leg ? "/spill" : "");
  meta.algorithm = algo_name(algo);
  meta.workload = weak_workload_name(w);
  meta.params = {{"records_per_rank", std::to_string(per_rank)},
                 {"mem_budget_records", std::to_string(budget)}};
  if (spill_leg) meta.params.emplace_back("memory_policy", "spill");
  point.timing = time_spmd(
      cluster,
      [&](sim::Comm& world) {
        auto data = weak_shard(w, world.rank(), per_rank);
        std::vector<std::uint64_t> out;
        SortReport rank_report;
        const double secs = timed_section(world, [&] {
          switch (algo) {
            case Algo::kHykSort: {
              baselines::HykSortConfig cfg;
              cfg.mem_limit_records = budget;
              out = baselines::hyksort<std::uint64_t>(world, std::move(data),
                                                      cfg);
              break;
            }
            case Algo::kSds:
            case Algo::kSdsStable: {
              Config cfg;
              cfg.stable = algo == Algo::kSdsStable;
              cfg.mem_limit_records = budget;
              cfg.memory_policy = policy;
              out = sds_sort<std::uint64_t>(world, std::move(data), cfg, {},
                                            &rank_report);
              break;
            }
          }
        });
        auto lb = measure_load_balance(world, out.size());
        if (world.rank() == 0) {
          // measure_load_balance is a collective: every rank computes the
          // same answer, so one capture suffices.
          std::lock_guard<std::mutex> lk(mu);
          balance = std::move(lb);
          decisions = rank_report;
        }
        if (rank_report.spilled) {
          std::lock_guard<std::mutex> lk(mu);
          any_spilled = true;
          spill_sum += rank_report.spill;
          spill_max_passes =
              std::max(spill_max_passes, rank_report.spill.merge_passes);
          spill_max_peak = std::max(spill_max_peak,
                                    rank_report.spill.peak_resident_records);
        }
        return secs;
      },
      std::move(meta));
  point.rdfa = balance.rdfa;
  if (telemetry::RunReport* rep = last_report()) {
    rep->rdfa = balance.rdfa;
    rep->max_load = balance.max_load;
    rep->total_records = balance.total;
    if (algo != Algo::kHykSort && point.timing.ok) {
      rep->set_param("exchange", to_string(decisions.exchange));
      rep->set_param("ordering", to_string(decisions.ordering));
    }
    if (any_spilled) {
      spill_sum.merge_passes = spill_max_passes;
      spill_sum.peak_resident_records = spill_max_peak;
      telemetry::add_spill(*rep, spill_sum);
    }
  }
  return point;
}

}  // namespace sdss::bench
