// trace_analyze — read a bench report file and explain its skew.
//
// For every report that carries a trace section this prints:
//   * the per-phase critical-path table: which rank bounded each phase, by
//     how much (margin over the runner-up), the paper's λ = max/avg, and
//     how much of the critical rank's time was spent blocked inside
//     collectives (skew showing up as wait time on the *other* ranks);
//   * a per-rank × per-phase heatmap shaded from the report's
//     phases.per_rank distribution (CPU seconds, each phase column
//     normalized to its own maximum) — the straggler is the dark row;
//   * a straggler ranking: ranks ordered by total CPU seconds.
//
// Gate mode (`--gate baseline.json`): compares the deterministic
// λ(recv_records) of every traced report against the same-named report in
// the baseline file. Record-count skew is a pure function of (workload
// seed, partitioner), so growth past the tolerance means the partitioner
// got worse at handling skew — exit 1. Used by scripts/check.sh with
// bench/baselines/bench_trace.json. See docs/BENCHMARKING.md for a worked
// diagnosis session.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "telemetry/report.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/phase_ledger.hpp"

namespace {
using namespace sdss;
using telemetry::ReportRegistry;
using telemetry::RunReport;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: trace_analyze <report.json> [options]\n"
      "  --gate=BASELINE.json  compare lambda(recv_records) per report\n"
      "                        name against BASELINE; exit 1 on regression\n"
      "  --tol=FRAC            relative lambda growth tolerated by the\n"
      "                        gate (default 0.02)\n"
      "exit: 0 ok, 1 lambda regression, 2 usage/file error\n");
  std::exit(2);
}

/// Shade a [0,1] intensity for the heatmap. The blank low end keeps idle
/// cells visually silent.
const char* shade(double frac) {
  static const char* kRamp[] = {"  ", "░░", "▒▒", "▓▓", "██"};
  const int idx = std::clamp(static_cast<int>(frac * 5.0), 0, 4);
  return kRamp[idx];
}

void print_report(const RunReport& r) {
  std::cout << "=== " << r.name << " ===\n";
  std::cout << "events " << r.trace_events << ", lambda(recv_records) "
            << fmt_seconds(r.trace_lambda_records, 4)
            << ", blocked fraction "
            << fmt_seconds(r.trace_blocked_frac * 100.0, 1) << "%\n\n";

  TextTable table;
  table.header({"phase", "crit rank", "max(s)", "avg(s)", "lambda",
                "margin(s)", "blocked(s)"});
  for (const RunReport::TracePhase& p : r.trace_phases) {
    table.row({p.name, std::to_string(p.critical_rank),
               fmt_seconds(p.max_s), fmt_seconds(p.avg_s),
               fmt_seconds(p.lambda, 3), fmt_seconds(p.margin_s),
               fmt_seconds(p.blocked_s)});
  }
  std::cout << table.str();

  // Heatmap + straggler ranking need the full per-rank distribution.
  const std::vector<PhaseLedger>& per_rank = r.phases_per_rank;
  if (per_rank.empty()) {
    std::cout << "(no phases.per_rank in this report: heatmap skipped)\n\n";
    return;
  }

  // Per-phase column maxima (CPU seconds) for normalization.
  std::vector<double> col_max(kNumPhases, 0.0);
  for (const PhaseLedger& l : per_rank) {
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      col_max[p] = std::max(col_max[p], l.cpu_seconds(static_cast<Phase>(p)));
    }
  }

  std::cout << "\nper-rank x per-phase heatmap (CPU s, each column "
               "normalized to its max):\n       ";
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    std::printf("%-6.5s", std::string(phase_name(static_cast<Phase>(p))).c_str());
  }
  std::printf("  total(s)\n");
  for (std::size_t rank = 0; rank < per_rank.size(); ++rank) {
    std::printf("  r%-3zu ", rank);
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      const double v = per_rank[rank].cpu_seconds(static_cast<Phase>(p));
      const double frac = col_max[p] > 0.0 ? v / col_max[p] : 0.0;
      std::printf("%s    ", shade(frac));
    }
    std::printf("  %s\n", fmt_seconds(per_rank[rank].cpu_total()).c_str());
  }

  std::vector<std::size_t> order(per_rank.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return per_rank[a].cpu_total() > per_rank[b].cpu_total();
  });
  double sum = 0.0;
  for (const PhaseLedger& l : per_rank) sum += l.cpu_total();
  const double avg = sum / static_cast<double>(per_rank.size());
  std::cout << "\nstragglers (total CPU s vs " << fmt_seconds(avg)
            << "s average):\n";
  const std::size_t top = std::min<std::size_t>(3, order.size());
  for (std::size_t i = 0; i < top; ++i) {
    const std::size_t rank = order[i];
    const double total = per_rank[rank].cpu_total();
    std::cout << "  " << (i + 1) << ". rank " << rank << "  "
              << fmt_seconds(total) << "s ("
              << fmt_seconds(avg > 0.0 ? total / avg : 0.0, 2) << "x avg)\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_path;
  std::string gate_path;
  double tol = 0.02;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--gate=", 0) == 0) {
      gate_path = arg.substr(7);
    } else if (arg == "--gate" && i + 1 < argc) {
      gate_path = argv[++i];
    } else if (arg.rfind("--tol=", 0) == 0) {
      tol = std::atof(arg.c_str() + 6);
    } else if (arg == "-h" || arg == "--help" || arg[0] == '-') {
      usage();
    } else if (report_path.empty()) {
      report_path = arg;
    } else {
      usage();
    }
  }
  if (report_path.empty()) usage();

  ReportRegistry reg;
  ReportRegistry baseline;
  try {
    reg = ReportRegistry::load_file(report_path);
    if (!gate_path.empty()) baseline = ReportRegistry::load_file(gate_path);
  } catch (const Error& e) {
    std::fprintf(stderr, "trace_analyze: %s\n", e.what());
    return 2;
  }

  std::size_t traced = 0;
  for (const RunReport& r : reg.reports()) {
    if (!r.has_trace) continue;
    ++traced;
    print_report(r);
  }
  if (traced == 0) {
    std::fprintf(stderr,
                 "trace_analyze: no report in %s carries a trace section\n",
                 report_path.c_str());
    return 2;
  }

  if (gate_path.empty()) return 0;

  // λ gate: any traced report whose name also appears (traced) in the
  // baseline must not have grown its record-count skew past the tolerance.
  std::size_t compared = 0;
  bool regressed = false;
  for (const RunReport& r : reg.reports()) {
    if (!r.has_trace || r.trace_lambda_records <= 0.0) continue;
    const RunReport* base = baseline.find(r.name);
    if (base == nullptr || !base->has_trace ||
        base->trace_lambda_records <= 0.0) {
      continue;
    }
    ++compared;
    const double bound = base->trace_lambda_records * (1.0 + tol) + 1e-9;
    const bool bad = r.trace_lambda_records > bound;
    regressed = regressed || bad;
    std::cout << "gate " << r.name << ": lambda "
              << fmt_seconds(base->trace_lambda_records, 4) << " -> "
              << fmt_seconds(r.trace_lambda_records, 4)
              << (bad ? "  LAMBDA REGRESSION" : "  ok") << "\n";
  }
  if (compared == 0) {
    std::fprintf(stderr,
                 "trace_analyze: gate found no matching traced reports "
                 "between %s and %s\n",
                 report_path.c_str(), gate_path.c_str());
    return 2;
  }
  return regressed ? 1 : 0;
}
