// bench_trace — the cost of always-on tracing, and the skew baseline the
// trace-aware CI gate diffs against.
//
// Two jobs, mirroring how bench_local_sort pairs a headline in-process gate
// with deterministic counter baselines:
//
//  * Overhead gate: the same P=8 Zipf SDS-Sort run is measured with the
//    recorder armed and disarmed, interleaved over several reps (so drift
//    in machine load hits both sides equally). The compared figure is each
//    side's MINIMUM critical-path CPU seconds — min-of-reps is the standard
//    noise filter for "how fast can this go", and CPU seconds are far less
//    sensitive to host oversubscription than wall time. This binary exits
//    nonzero unless traced_min <= untraced_min * 1.05 + 0.05s: the relative
//    bound is the documented <=5% promise, the absolute floor keeps a
//    sub-100ms workload from failing on scheduler jitter alone.
//
//  * Skew baseline: the traced run's report (stable name, fixed seed)
//    carries the trace section — per-phase λ and the deterministic
//    λ(recv_records). scripts/check.sh re-runs this bench and feeds the
//    fresh report plus bench/baselines/bench_trace.json to
//    `trace_analyze --gate`, which fails CI when the record-count skew
//    regresses.
//
// Options: --trace-out=PATH additionally writes one traced run's full
// timeline as a Perfetto-loadable Chrome trace (docs/OBSERVABILITY.md).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sdss.hpp"
#include "trace/export.hpp"
#include "util/rng.hpp"
#include "workloads/zipf.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr int kRanks = 8;
constexpr std::size_t kPerRank = 20000;
constexpr double kAlpha = 1.1;
constexpr std::uint64_t kSeed = 424242;
constexpr int kReps = 3;

// The documented overhead promise: traced <= untraced * (1 + 5%) + 50ms.
constexpr double kMaxRelOverhead = 0.05;
constexpr double kAbsFloorS = 0.05;

sim::ClusterConfig cluster_config(bool traced) {
  sim::ClusterConfig cc;
  cc.num_ranks = kRanks;
  cc.network = sim::NetworkModel::none();  // measure us, not the wire model
  cc.enable_trace = traced;
  return cc;
}

void sort_body(sim::Comm& w) {
  auto data = workloads::zipf_keys(
      kPerRank, kAlpha, derive_seed(kSeed, static_cast<std::uint64_t>(w.rank())));
  Config cfg;
  cfg.stable = true;  // sync exchange: fully deterministic event stream
  sds_sort<std::uint64_t>(w, std::move(data), cfg);
}

/// One measured rep; returns the run's critical-path CPU seconds.
double measure_rep(bool traced, const std::string& name) {
  sim::Cluster cluster(cluster_config(traced));
  RunMeta meta;
  meta.name = name;
  meta.algorithm = "SDS-Sort";
  meta.workload = "zipf:1.1";
  meta.params = {{"records_per_rank", std::to_string(kPerRank)},
                 {"tracing", traced ? "on" : "off"}};
  const TimedResult r = time_spmd(
      cluster,
      [](sim::Comm& w) {
        return timed_section(w, [&] { sort_body(w); });
      },
      std::move(meta));
  if (!r.ok) {
    std::cerr << "bench_trace: measured run failed\n";
    std::exit(2);
  }
  return r.crit_path_cpu;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) trace_out = arg.substr(12);
    // --json is consumed by bench_common's reporter via /proc/self/cmdline.
  }

  print_header("Tracing overhead — always-on recorder vs disarmed",
               "P=8 zipf SDS-Sort, " + std::to_string(kReps) +
                   " interleaved reps per side; compared figure is min "
                   "critical-path CPU seconds.");

  double traced_min = 1e30;
  double untraced_min = 1e30;
  TextTable table;
  table.header({"rep", "untraced(s)", "traced(s)"});
  for (int rep = 0; rep < kReps; ++rep) {
    // Interleaved: any slow drift in host load lands on both sides.
    const double off = measure_rep(
        false, "bench_trace/untraced rep " + std::to_string(rep));
    // Rep 0's traced report carries the stable name trace_analyze --gate
    // matches against the checked-in baseline.
    const double on = measure_rep(
        true, rep == 0 ? "bench_trace/zipf-1.1/p=8"
                       : "bench_trace/traced rep " + std::to_string(rep));
    untraced_min = std::min(untraced_min, off);
    traced_min = std::min(traced_min, on);
    table.row({std::to_string(rep), fmt_seconds(off), fmt_seconds(on)});
  }
  std::cout << table.str() << "\n";

  if (!trace_out.empty()) {
    const sim::RunResult res =
        sim::Cluster(cluster_config(true)).run_collect(sort_body);
    std::ofstream tf(trace_out);
    sim::write_chrome_trace(tf, res.trace);
    std::cout << "wrote " << res.trace.total_events() << " trace events to "
              << trace_out << " (load in Perfetto / chrome://tracing)\n";
  }

  const double bound = untraced_min * (1.0 + kMaxRelOverhead) + kAbsFloorS;
  const double rel = untraced_min > 0.0
                         ? (traced_min - untraced_min) / untraced_min
                         : 0.0;
  print_shape("always-on tracing costs <= " +
              fmt_seconds(kMaxRelOverhead * 100.0, 0) +
              "% critical-path CPU (plus a " + fmt_seconds(kAbsFloorS, 2) +
              "s jitter floor)");
  print_verdict("untraced min " + fmt_seconds(untraced_min) + "s, traced min " +
                fmt_seconds(traced_min) + "s (" +
                (rel >= 0 ? "+" : "") + fmt_seconds(rel * 100.0, 1) + "%)");
  if (traced_min > bound) {
    std::cout << "OVERHEAD GATE FAILED: traced min " << fmt_seconds(traced_min)
              << "s exceeds bound " << fmt_seconds(bound) << "s\n";
    return 1;
  }
  std::cout << "overhead gate passed\n";
  return 0;
}
