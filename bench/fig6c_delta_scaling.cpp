// Fig. 6c — end-to-end sort time on skewed data as the replication ratio
// delta grows (paper Section 4.1.2, Table 2's alpha sweep).
//
// Paper: SDS-Sort and SDS-Sort/stable scale smoothly across delta = 0.2% ..
// 6.4%; HykSort only survives small deltas and then dies of load-imbalance
// OOM ("certain nodes will be assigned so much data that the processes run
// out of memory").
//
// Scaled-down: 32 ranks, 8k records/rank, a per-rank budget of 3x the
// average. The sweep is extended into Table 1's heavier alphas so the OOM
// onset is visible at this scale (with only 32 ranks a duplicate population
// must exceed 3N/(32) ~ 9.4% of N to blow the budget; the paper hits the
// same wall at delta ~ 1% only because p is in the thousands).
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "baselines/hyksort.hpp"
#include "core/driver.hpp"
#include "workloads/zipf.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr int kRanks = 32;
constexpr std::size_t kPerRank = 8000;
}  // namespace

int main() {
  print_header("Fig. 6c — sorting skewed data across replication ratios",
               "32 ranks, 8k records/rank, per-rank memory budget = 3x "
               "average; Zipf alpha sweep.");

  sim::Cluster cluster(
      sim::ClusterConfig{kRanks, 1, sim::NetworkModel::aries_like()});
  const std::size_t budget = 3 * kPerRank;

  auto shard_for = [](int rank, double alpha) {
    return workloads::zipf_keys(
        kPerRank, alpha, derive_seed(60604, static_cast<std::uint64_t>(rank)));
  };

  TextTable table;
  table.header({"alpha", "delta(%)", "HykSort(s)", "SDS-Sort(s)",
                "SDS-Sort/stable(s)"});
  bool hyk_died = false;
  bool sds_all_ok = true;
  for (double alpha : {0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.8, 2.1}) {
    const workloads::ZipfGenerator gen(alpha);

    auto hyk = time_spmd(cluster, [&](sim::Comm& world) {
      auto data = shard_for(world.rank(), alpha);
      baselines::HykSortConfig cfg;
      cfg.mem_limit_records = budget;
      return timed_section(world, [&] {
        auto out = baselines::hyksort<std::uint64_t>(world, std::move(data),
                                                     cfg);
      });
    });
    auto run_sds = [&](bool stable) {
      return time_spmd(cluster, [&](sim::Comm& world) {
        auto data = shard_for(world.rank(), alpha);
        Config cfg;
        cfg.stable = stable;
        cfg.mem_limit_records = budget;
        return timed_section(world, [&] {
          auto out = sds_sort<std::uint64_t>(world, std::move(data), cfg);
        });
      });
    };
    auto sds = run_sds(false);
    auto sds_stable = run_sds(true);

    hyk_died = hyk_died || hyk.oom;
    sds_all_ok = sds_all_ok && sds.ok && sds_stable.ok;
    table.row({fmt_seconds(alpha, 1),
               fmt_seconds(gen.theoretical_delta() * 100.0, 1),
               time_cell(hyk), time_cell(sds), time_cell(sds_stable)});
  }
  std::cout << table.str() << "\n";
  print_shape(
      "SDS-Sort (fast and stable) completes at every delta with stable "
      "times; HykSort works only below an OOM threshold and fails beyond "
      "it (paper: delta > ~1% at Edison scale).");
  print_verdict(std::string("HykSort OOM observed: ") +
                (hyk_died ? "yes" : "no") + "; SDS-Sort completed all: " +
                (sds_all_ok ? "yes" : "no") + ".");
  return 0;
}
