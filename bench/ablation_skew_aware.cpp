// Ablation — skew-aware partitioning on vs. off inside SDS-Sort itself.
//
// Not a paper figure: this isolates the paper's central mechanism from the
// rest of the engineering. With `Config::skew_aware = false` SDS-Sort
// degrades to classic regular-sampling partitioning (duplicated global
// pivots collapse to one boundary), which is exactly the failure the
// baselines exhibit — demonstrating the fix is the partition method, not
// incidental implementation differences.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/metrics.hpp"
#include "workloads/zipf.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr int kRanks = 16;
constexpr std::size_t kPerRank = 10000;

struct AblationPoint {
  TimedResult timing;
  double rdfa = 0.0;
};

AblationPoint run_case(double alpha, bool skew_aware, std::size_t budget) {
  sim::Cluster cluster(sim::ClusterConfig{kRanks});
  AblationPoint point;
  std::mutex mu;
  point.timing = time_spmd(cluster, [&](sim::Comm& world) {
    auto data = workloads::zipf_keys(
        kPerRank, alpha,
        derive_seed(80801, static_cast<std::uint64_t>(world.rank())));
    Config cfg;
    cfg.skew_aware = skew_aware;
    cfg.mem_limit_records = budget;
    std::vector<std::uint64_t> out;
    const double secs = timed_section(world, [&] {
      out = sds_sort<std::uint64_t>(world, std::move(data), cfg);
    });
    auto lb = measure_load_balance(world, out.size());
    std::lock_guard<std::mutex> lk(mu);
    if (lb.rdfa > point.rdfa) point.rdfa = lb.rdfa;
    return secs;
  });
  return point;
}
}  // namespace

int main() {
  print_header("Ablation — skew-aware partitioning on/off",
               "16 ranks x 10k Zipf records, per-rank budget 3x average; "
               "identical pipeline except Config::skew_aware.");

  const std::size_t budget = 3 * kPerRank;
  TextTable table;
  table.header({"alpha", "skew-aware time(s)", "skew-aware RDFA",
                "plain time(s)", "plain RDFA"});
  bool plain_fails_heavy = false;
  bool aware_survives_all = true;
  for (double alpha : {0.7, 1.4, 2.1}) {
    auto aware = run_case(alpha, true, budget);
    auto plain = run_case(alpha, false, budget);
    aware_survives_all = aware_survives_all && aware.timing.ok;
    if (!plain.timing.ok && alpha > 1.0) plain_fails_heavy = true;
    table.row({fmt_seconds(alpha, 1), time_cell(aware.timing),
               rdfa_cell(aware.rdfa, aware.timing.ok), time_cell(plain.timing),
               rdfa_cell(plain.rdfa, plain.timing.ok)});
  }
  std::cout << table.str() << "\n";
  print_shape(
      "with skew-aware partitioning disabled, SDS-Sort inherits the classic "
      "algorithm's imbalance (RDFA explodes / OOM on heavy skew); enabling "
      "it bounds RDFA and always completes.");
  print_verdict(std::string("plain variant failed on heavy skew: ") +
                (plain_fails_heavy ? "yes" : "no") +
                "; skew-aware survived all: " +
                (aware_survives_all ? "yes" : "no") + ".");
  return 0;
}
