// bench_metrics — the cost of the always-on metrics registry, the
// determinism of its progress series, and the forced-failure legs that
// exercise the flight recorder end to end.
//
// Four jobs, mirroring bench_trace's structure:
//
//  * Overhead gate: the same P=8 Zipf SDS-Sort run is measured with the
//    registry armed and disarmed, interleaved over several reps so machine
//    drift hits both sides equally. Compared figure: each side's MINIMUM
//    critical-path CPU seconds. Exits nonzero unless
//    metered_min <= unmetered_min * 1.05 + 0.05s — the documented <=5%
//    promise with an absolute floor against scheduler jitter.
//
//  * Counter baseline: rep 0's metered report (stable name, fixed seed)
//    carries the metrics snapshot. scripts/check.sh re-runs this bench and
//    diffs the fresh report against bench/baselines/bench_metrics.json with
//    `report_diff --bytes-only`, which gates every deterministic counter,
//    gauge, byte histogram and series exactly (nanos histograms skipped).
//
//  * Series determinism gate: the same seeded run at sched_workers=1 and
//    sched_workers=4 must serialize byte-identical `series` JSON — the
//    contract of obs/sampler.hpp (progress marks, not wall-clock samples).
//
//  * --forced-failures --outdir=DIR: force one OOM, one deadlock and one
//    spill-io failure; assert each leaves a well-formed flight-recorder
//    bundle whose blocked-op table and metrics snapshot round-trip.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/flight_recorder.hpp"
#include "sdss.hpp"
#include "util/rng.hpp"
#include "workloads/zipf.hpp"

namespace {
using namespace sdss;
using namespace sdss::bench;

constexpr int kRanks = 8;
constexpr std::size_t kPerRank = 20000;
constexpr double kAlpha = 1.1;
constexpr std::uint64_t kSeed = 424242;
constexpr int kReps = 3;

// The documented overhead promise: metered <= unmetered * (1 + 5%) + 50ms.
constexpr double kMaxRelOverhead = 0.05;
constexpr double kAbsFloorS = 0.05;

sim::ClusterConfig cluster_config(bool metered) {
  sim::ClusterConfig cc;
  cc.num_ranks = kRanks;
  cc.network = sim::NetworkModel::none();  // measure us, not the wire model
  cc.enable_metrics = metered;
  return cc;
}

void sort_body(sim::Comm& w) {
  auto data = workloads::zipf_keys(
      kPerRank, kAlpha,
      derive_seed(kSeed, static_cast<std::uint64_t>(w.rank())));
  Config cfg;
  cfg.stable = true;  // sync exchange: fully deterministic counter stream
  sds_sort<std::uint64_t>(w, std::move(data), cfg);
}

/// One measured rep; returns the run's critical-path CPU seconds.
double measure_rep(bool metered, const std::string& name) {
  sim::Cluster cluster(cluster_config(metered));
  RunMeta meta;
  meta.name = name;
  meta.algorithm = "SDS-Sort";
  meta.workload = "zipf:1.1";
  meta.params = {{"records_per_rank", std::to_string(kPerRank)},
                 {"metrics", metered ? "on" : "off"}};
  const TimedResult r = time_spmd(
      cluster,
      [](sim::Comm& w) {
        return timed_section(w, [&] { sort_body(w); });
      },
      std::move(meta));
  if (!r.ok) {
    std::cerr << "bench_metrics: measured run failed\n";
    std::exit(2);
  }
  return r.crit_path_cpu;
}

/// The `series` JSON of one fixed-seed run at the given worker count.
std::string series_json(int workers) {
  sim::ClusterConfig cc = cluster_config(true);
  cc.sched_workers = workers;
  const sim::RunResult res = sim::Cluster(cc).run_collect(sort_body);
  if (!res.ok || !res.has_metrics) {
    std::cerr << "bench_metrics: determinism run failed\n";
    std::exit(2);
  }
  return obs::to_json(res.metrics).at("series").dump();
}

/// True when the two fixed-seed runs serialize identical progress series.
bool series_determinism_gate() {
  const std::string w1 = series_json(1);
  const std::string w4 = series_json(4);
  print_shape(
      "the metrics progress series is a pure function of input and seed: "
      "byte-identical across sched_workers 1 and 4");
  if (w1 != w4) {
    std::cout << "SERIES DETERMINISM GATE FAILED:\n  workers=1: " << w1
              << "\n  workers=4: " << w4 << "\n";
    return false;
  }
  print_verdict("series identical across worker counts (" +
                std::to_string(w1.size()) + " JSON bytes)");
  return true;
}

/// Load the bundle at `path` and validate what the forced-failure legs
/// promise: correct classification, a blocked-op entry per rank, and a
/// non-empty metrics snapshot. Returns false (after printing why) on any
/// violation.
bool validate_bundle(const std::string& path, const std::string& cls,
                     int ranks) {
  obs::FlightRecord fr;
  try {
    fr = obs::load_flight_record(path);
  } catch (const std::exception& e) {
    std::cout << "bundle " << path << " failed to load: " << e.what() << "\n";
    return false;
  }
  if (fr.failure_class != cls) {
    std::cout << "bundle " << path << ": failure_class '" << fr.failure_class
              << "', expected '" << cls << "'\n";
    return false;
  }
  if (fr.blocked.size() != static_cast<std::size_t>(ranks)) {
    std::cout << "bundle " << path << ": blocked-op table has "
              << fr.blocked.size() << " entries, expected " << ranks << "\n";
    return false;
  }
  if (fr.metrics.empty()) {
    std::cout << "bundle " << path << ": empty metrics snapshot\n";
    return false;
  }
  std::cout << "bundle " << path << ": ok (" << fr.failure_class << ", "
            << fr.blocked.size() << " blocked entries, "
            << fr.live_samples.size() << " live samples)\n";
  return true;
}

/// Force an OOM, a deadlock, and a spill-io failure; each must leave a
/// well-formed bundle in `outdir`. Returns the number of failed legs.
int run_forced_failures(const std::string& outdir) {
  int failures = 0;

  {  // OOM: strict memory budget far below the receive volume.
    sim::ClusterConfig cc = cluster_config(true);
    cc.num_ranks = 4;
    cc.postmortem_path = outdir + "/oom.json";
    const sim::RunResult r = sim::Cluster(cc).run_collect([](sim::Comm& w) {
      auto data = workloads::zipf_keys(
          4000, kAlpha,
          derive_seed(kSeed, static_cast<std::uint64_t>(w.rank())));
      Config cfg;
      cfg.stable = true;
      cfg.mem_limit_records = 64;
      cfg.memory_policy = MemoryPolicy::kStrict;
      sds_sort<std::uint64_t>(w, std::move(data), cfg);
    });
    if (r.ok || r.failure != sim::FailureClass::kOom ||
        r.postmortem_path != cc.postmortem_path ||
        !validate_bundle(cc.postmortem_path, "oom", cc.num_ranks)) {
      ++failures;
    }
  }

  {  // Deadlock: every rank receives from a peer that never sends.
    sim::ClusterConfig cc = cluster_config(true);
    cc.num_ranks = 4;
    cc.watchdog_timeout_s = 0.25;
    cc.postmortem_path = outdir + "/deadlock.json";
    const sim::RunResult r = sim::Cluster(cc).run_collect([](sim::Comm& w) {
      // One completed ring exchange first, so the bundle's metrics
      // snapshot has p2p activity to show; then a recv nobody serves.
      const std::uint64_t token = static_cast<std::uint64_t>(w.rank());
      w.send_value(token, (w.rank() + 1) % w.size(), /*tag=*/1);
      w.recv_value<std::uint64_t>((w.rank() + w.size() - 1) % w.size(),
                                  /*tag=*/1);
      w.recv_value<std::uint64_t>((w.rank() + 1) % w.size(), /*tag=*/7);
    });
    if (r.ok || r.failure != sim::FailureClass::kDeadlock ||
        r.postmortem_path != cc.postmortem_path ||
        !validate_bundle(cc.postmortem_path, "deadlock", cc.num_ranks)) {
      ++failures;
    }
  }

  {  // Spill I/O: a forced write failure on the out-of-core path.
    sim::ClusterConfig cc = cluster_config(true);
    cc.num_ranks = 4;
    cc.chaos.seed = kSeed;
    cc.chaos.forced.push_back(
        sim::FaultEvent{sim::FaultKind::kSpillFail, 2, 3, 0.0});
    cc.postmortem_path = outdir + "/spill-io.json";
    const sim::RunResult r = sim::Cluster(cc).run_collect([](sim::Comm& w) {
      auto data = workloads::zipf_keys(
          4000, kAlpha,
          derive_seed(kSeed, static_cast<std::uint64_t>(w.rank())));
      Config cfg;
      cfg.stable = true;
      cfg.mem_limit_records = 600;
      cfg.memory_policy = MemoryPolicy::kSpill;
      cfg.spill_frame_records = 128;
      sds_sort<std::uint64_t>(w, std::move(data), cfg);
    });
    if (r.ok || r.failure != sim::FailureClass::kSpillIoError ||
        r.postmortem_path != cc.postmortem_path ||
        !validate_bundle(cc.postmortem_path, "spill-io", cc.num_ranks)) {
      ++failures;
    }
  }

  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool forced_failures = false;
  std::string outdir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--forced-failures") forced_failures = true;
    if (arg.rfind("--outdir=", 0) == 0) outdir = arg.substr(9);
    // --json is consumed by bench_common's reporter via /proc/self/cmdline.
  }

  if (forced_failures) {
    print_header("Flight recorder — forced-failure bundles",
                 "OOM, deadlock and spill-io runs must each leave a "
                 "well-formed post-mortem bundle in " +
                     outdir + ".");
    const int failed = run_forced_failures(outdir);
    if (failed > 0) {
      std::cout << "FORCED-FAILURE GATE FAILED: " << failed << " leg(s)\n";
      return 1;
    }
    std::cout << "forced-failure gate passed\n";
    return 0;
  }

  print_header("Metrics overhead — always-on registry vs disarmed",
               "P=8 zipf SDS-Sort, " + std::to_string(kReps) +
                   " interleaved reps per side; compared figure is min "
                   "critical-path CPU seconds.");

  double metered_min = 1e30;
  double unmetered_min = 1e30;
  TextTable table;
  table.header({"rep", "metrics-off(s)", "metrics-on(s)"});
  for (int rep = 0; rep < kReps; ++rep) {
    // Interleaved: any slow drift in host load lands on both sides.
    const double off = measure_rep(
        false, "bench_metrics/unmetered rep " + std::to_string(rep));
    // Rep 0's metered report carries the stable name scripts/check.sh
    // diffs against bench/baselines/bench_metrics.json.
    const double on = measure_rep(
        true, rep == 0 ? "bench_metrics/zipf-1.1/p=8"
                       : "bench_metrics/metered rep " + std::to_string(rep));
    unmetered_min = std::min(unmetered_min, off);
    metered_min = std::min(metered_min, on);
    table.row({std::to_string(rep), fmt_seconds(off), fmt_seconds(on)});
  }
  std::cout << table.str() << "\n";

  bool ok = series_determinism_gate();

  const double bound = unmetered_min * (1.0 + kMaxRelOverhead) + kAbsFloorS;
  const double rel = unmetered_min > 0.0
                         ? (metered_min - unmetered_min) / unmetered_min
                         : 0.0;
  print_shape("always-on metrics cost <= " +
              fmt_seconds(kMaxRelOverhead * 100.0, 0) +
              "% critical-path CPU (plus a " + fmt_seconds(kAbsFloorS, 2) +
              "s jitter floor)");
  print_verdict("metrics-off min " + fmt_seconds(unmetered_min) +
                "s, metrics-on min " + fmt_seconds(metered_min) + "s (" +
                (rel >= 0 ? "+" : "") + fmt_seconds(rel * 100.0, 1) + "%)");
  if (metered_min > bound) {
    std::cout << "OVERHEAD GATE FAILED: metered min "
              << fmt_seconds(metered_min) << "s exceeds bound "
              << fmt_seconds(bound) << "s\n";
    ok = false;
  } else {
    std::cout << "overhead gate passed\n";
  }
  return ok ? 0 : 1;
}
