# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_comm[1]_include.cmake")
include("/root/repo/build/tests/test_par[1]_include.cmake")
include("/root/repo/build/tests/test_sortcore[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sds_sort[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_sim_stress[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_comm_stats_histogram[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
