file(REMOVE_RECURSE
  "CMakeFiles/test_sim_comm.dir/test_sim_comm.cpp.o"
  "CMakeFiles/test_sim_comm.dir/test_sim_comm.cpp.o.d"
  "test_sim_comm"
  "test_sim_comm.pdb"
  "test_sim_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
