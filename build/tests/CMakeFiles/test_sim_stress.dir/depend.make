# Empty dependencies file for test_sim_stress.
# This may be replaced when dependencies are built.
