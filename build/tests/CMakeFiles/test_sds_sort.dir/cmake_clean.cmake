file(REMOVE_RECURSE
  "CMakeFiles/test_sds_sort.dir/test_sds_sort.cpp.o"
  "CMakeFiles/test_sds_sort.dir/test_sds_sort.cpp.o.d"
  "test_sds_sort"
  "test_sds_sort.pdb"
  "test_sds_sort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sds_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
