# Empty compiler generated dependencies file for test_sds_sort.
# This may be replaced when dependencies are built.
