file(REMOVE_RECURSE
  "CMakeFiles/test_sortcore.dir/test_sortcore.cpp.o"
  "CMakeFiles/test_sortcore.dir/test_sortcore.cpp.o.d"
  "test_sortcore"
  "test_sortcore.pdb"
  "test_sortcore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sortcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
