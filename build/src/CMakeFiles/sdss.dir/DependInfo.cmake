
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/par/thread_pool.cpp" "src/CMakeFiles/sdss.dir/par/thread_pool.cpp.o" "gcc" "src/CMakeFiles/sdss.dir/par/thread_pool.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/CMakeFiles/sdss.dir/sim/cluster.cpp.o" "gcc" "src/CMakeFiles/sdss.dir/sim/cluster.cpp.o.d"
  "/root/repo/src/sim/comm.cpp" "src/CMakeFiles/sdss.dir/sim/comm.cpp.o" "gcc" "src/CMakeFiles/sdss.dir/sim/comm.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/sdss.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/sdss.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/sdss.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/sdss.dir/sim/trace.cpp.o.d"
  "/root/repo/src/util/error.cpp" "src/CMakeFiles/sdss.dir/util/error.cpp.o" "gcc" "src/CMakeFiles/sdss.dir/util/error.cpp.o.d"
  "/root/repo/src/util/format.cpp" "src/CMakeFiles/sdss.dir/util/format.cpp.o" "gcc" "src/CMakeFiles/sdss.dir/util/format.cpp.o.d"
  "/root/repo/src/util/phase_ledger.cpp" "src/CMakeFiles/sdss.dir/util/phase_ledger.cpp.o" "gcc" "src/CMakeFiles/sdss.dir/util/phase_ledger.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/sdss.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/sdss.dir/util/stats.cpp.o.d"
  "/root/repo/src/workloads/cosmology.cpp" "src/CMakeFiles/sdss.dir/workloads/cosmology.cpp.o" "gcc" "src/CMakeFiles/sdss.dir/workloads/cosmology.cpp.o.d"
  "/root/repo/src/workloads/ptf.cpp" "src/CMakeFiles/sdss.dir/workloads/ptf.cpp.o" "gcc" "src/CMakeFiles/sdss.dir/workloads/ptf.cpp.o.d"
  "/root/repo/src/workloads/zipf.cpp" "src/CMakeFiles/sdss.dir/workloads/zipf.cpp.o" "gcc" "src/CMakeFiles/sdss.dir/workloads/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
