file(REMOVE_RECURSE
  "CMakeFiles/sdss.dir/par/thread_pool.cpp.o"
  "CMakeFiles/sdss.dir/par/thread_pool.cpp.o.d"
  "CMakeFiles/sdss.dir/sim/cluster.cpp.o"
  "CMakeFiles/sdss.dir/sim/cluster.cpp.o.d"
  "CMakeFiles/sdss.dir/sim/comm.cpp.o"
  "CMakeFiles/sdss.dir/sim/comm.cpp.o.d"
  "CMakeFiles/sdss.dir/sim/network.cpp.o"
  "CMakeFiles/sdss.dir/sim/network.cpp.o.d"
  "CMakeFiles/sdss.dir/sim/trace.cpp.o"
  "CMakeFiles/sdss.dir/sim/trace.cpp.o.d"
  "CMakeFiles/sdss.dir/util/error.cpp.o"
  "CMakeFiles/sdss.dir/util/error.cpp.o.d"
  "CMakeFiles/sdss.dir/util/format.cpp.o"
  "CMakeFiles/sdss.dir/util/format.cpp.o.d"
  "CMakeFiles/sdss.dir/util/phase_ledger.cpp.o"
  "CMakeFiles/sdss.dir/util/phase_ledger.cpp.o.d"
  "CMakeFiles/sdss.dir/util/stats.cpp.o"
  "CMakeFiles/sdss.dir/util/stats.cpp.o.d"
  "CMakeFiles/sdss.dir/workloads/cosmology.cpp.o"
  "CMakeFiles/sdss.dir/workloads/cosmology.cpp.o.d"
  "CMakeFiles/sdss.dir/workloads/ptf.cpp.o"
  "CMakeFiles/sdss.dir/workloads/ptf.cpp.o.d"
  "CMakeFiles/sdss.dir/workloads/zipf.cpp.o"
  "CMakeFiles/sdss.dir/workloads/zipf.cpp.o.d"
  "libsdss.a"
  "libsdss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
