file(REMOVE_RECURSE
  "libsdss.a"
)
