# Empty compiler generated dependencies file for sdss.
# This may be replaced when dependencies are built.
