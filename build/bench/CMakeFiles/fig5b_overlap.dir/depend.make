# Empty dependencies file for fig5b_overlap.
# This may be replaced when dependencies are built.
