file(REMOVE_RECURSE
  "CMakeFiles/fig5b_overlap.dir/fig5b_overlap.cpp.o"
  "CMakeFiles/fig5b_overlap.dir/fig5b_overlap.cpp.o.d"
  "fig5b_overlap"
  "fig5b_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
