# Empty dependencies file for ablation_skew_aware.
# This may be replaced when dependencies are built.
