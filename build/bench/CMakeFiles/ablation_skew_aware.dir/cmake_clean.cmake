file(REMOVE_RECURSE
  "CMakeFiles/ablation_skew_aware.dir/ablation_skew_aware.cpp.o"
  "CMakeFiles/ablation_skew_aware.dir/ablation_skew_aware.cpp.o.d"
  "ablation_skew_aware"
  "ablation_skew_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skew_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
