# Empty dependencies file for fig6b_partition.
# This may be replaced when dependencies are built.
