file(REMOVE_RECURSE
  "CMakeFiles/fig6b_partition.dir/fig6b_partition.cpp.o"
  "CMakeFiles/fig6b_partition.dir/fig6b_partition.cpp.o.d"
  "fig6b_partition"
  "fig6b_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
