file(REMOVE_RECURSE
  "CMakeFiles/extra_tau_sweep.dir/extra_tau_sweep.cpp.o"
  "CMakeFiles/extra_tau_sweep.dir/extra_tau_sweep.cpp.o.d"
  "extra_tau_sweep"
  "extra_tau_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_tau_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
