# Empty compiler generated dependencies file for extra_tau_sweep.
# This may be replaced when dependencies are built.
