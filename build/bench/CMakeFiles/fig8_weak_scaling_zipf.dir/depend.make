# Empty dependencies file for fig8_weak_scaling_zipf.
# This may be replaced when dependencies are built.
