file(REMOVE_RECURSE
  "CMakeFiles/fig8_weak_scaling_zipf.dir/fig8_weak_scaling_zipf.cpp.o"
  "CMakeFiles/fig8_weak_scaling_zipf.dir/fig8_weak_scaling_zipf.cpp.o.d"
  "fig8_weak_scaling_zipf"
  "fig8_weak_scaling_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_weak_scaling_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
