# Empty compiler generated dependencies file for table1_seq_sort.
# This may be replaced when dependencies are built.
