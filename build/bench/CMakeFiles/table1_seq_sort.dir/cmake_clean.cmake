file(REMOVE_RECURSE
  "CMakeFiles/table1_seq_sort.dir/table1_seq_sort.cpp.o"
  "CMakeFiles/table1_seq_sort.dir/table1_seq_sort.cpp.o.d"
  "table1_seq_sort"
  "table1_seq_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_seq_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
