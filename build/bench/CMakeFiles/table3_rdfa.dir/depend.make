# Empty dependencies file for table3_rdfa.
# This may be replaced when dependencies are built.
