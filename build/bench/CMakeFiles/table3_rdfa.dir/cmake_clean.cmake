file(REMOVE_RECURSE
  "CMakeFiles/table3_rdfa.dir/table3_rdfa.cpp.o"
  "CMakeFiles/table3_rdfa.dir/table3_rdfa.cpp.o.d"
  "table3_rdfa"
  "table3_rdfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_rdfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
