file(REMOVE_RECURSE
  "CMakeFiles/fig5c_local_ordering.dir/fig5c_local_ordering.cpp.o"
  "CMakeFiles/fig5c_local_ordering.dir/fig5c_local_ordering.cpp.o.d"
  "fig5c_local_ordering"
  "fig5c_local_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_local_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
