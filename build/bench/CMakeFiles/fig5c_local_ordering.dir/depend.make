# Empty dependencies file for fig5c_local_ordering.
# This may be replaced when dependencies are built.
