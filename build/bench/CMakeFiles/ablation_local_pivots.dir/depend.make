# Empty dependencies file for ablation_local_pivots.
# This may be replaced when dependencies are built.
