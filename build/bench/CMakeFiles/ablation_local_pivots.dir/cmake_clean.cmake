file(REMOVE_RECURSE
  "CMakeFiles/ablation_local_pivots.dir/ablation_local_pivots.cpp.o"
  "CMakeFiles/ablation_local_pivots.dir/ablation_local_pivots.cpp.o.d"
  "ablation_local_pivots"
  "ablation_local_pivots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_pivots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
