# Empty dependencies file for fig6a_parallel_merge.
# This may be replaced when dependencies are built.
