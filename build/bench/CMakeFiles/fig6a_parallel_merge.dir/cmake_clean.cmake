file(REMOVE_RECURSE
  "CMakeFiles/fig6a_parallel_merge.dir/fig6a_parallel_merge.cpp.o"
  "CMakeFiles/fig6a_parallel_merge.dir/fig6a_parallel_merge.cpp.o.d"
  "fig6a_parallel_merge"
  "fig6a_parallel_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_parallel_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
