# Empty compiler generated dependencies file for table4_real_rdfa.
# This may be replaced when dependencies are built.
