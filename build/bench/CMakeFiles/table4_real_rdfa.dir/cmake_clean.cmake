file(REMOVE_RECURSE
  "CMakeFiles/table4_real_rdfa.dir/table4_real_rdfa.cpp.o"
  "CMakeFiles/table4_real_rdfa.dir/table4_real_rdfa.cpp.o.d"
  "table4_real_rdfa"
  "table4_real_rdfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_real_rdfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
