file(REMOVE_RECURSE
  "CMakeFiles/fig6c_delta_scaling.dir/fig6c_delta_scaling.cpp.o"
  "CMakeFiles/fig6c_delta_scaling.dir/fig6c_delta_scaling.cpp.o.d"
  "fig6c_delta_scaling"
  "fig6c_delta_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_delta_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
