# Empty dependencies file for fig6c_delta_scaling.
# This may be replaced when dependencies are built.
