file(REMOVE_RECURSE
  "CMakeFiles/fig5a_node_merging.dir/fig5a_node_merging.cpp.o"
  "CMakeFiles/fig5a_node_merging.dir/fig5a_node_merging.cpp.o.d"
  "fig5a_node_merging"
  "fig5a_node_merging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_node_merging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
