# Empty dependencies file for fig5a_node_merging.
# This may be replaced when dependencies are built.
