# Empty compiler generated dependencies file for extra_comm_volume.
# This may be replaced when dependencies are built.
