file(REMOVE_RECURSE
  "CMakeFiles/extra_comm_volume.dir/extra_comm_volume.cpp.o"
  "CMakeFiles/extra_comm_volume.dir/extra_comm_volume.cpp.o.d"
  "extra_comm_volume"
  "extra_comm_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_comm_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
