# Empty dependencies file for extra_comm_volume.
# This may be replaced when dependencies are built.
