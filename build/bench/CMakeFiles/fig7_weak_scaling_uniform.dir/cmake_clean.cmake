file(REMOVE_RECURSE
  "CMakeFiles/fig7_weak_scaling_uniform.dir/fig7_weak_scaling_uniform.cpp.o"
  "CMakeFiles/fig7_weak_scaling_uniform.dir/fig7_weak_scaling_uniform.cpp.o.d"
  "fig7_weak_scaling_uniform"
  "fig7_weak_scaling_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_weak_scaling_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
