file(REMOVE_RECURSE
  "CMakeFiles/fig9_ptf.dir/fig9_ptf.cpp.o"
  "CMakeFiles/fig9_ptf.dir/fig9_ptf.cpp.o.d"
  "fig9_ptf"
  "fig9_ptf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_ptf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
