# Empty compiler generated dependencies file for fig9_ptf.
# This may be replaced when dependencies are built.
