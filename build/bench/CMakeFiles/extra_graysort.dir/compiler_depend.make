# Empty compiler generated dependencies file for extra_graysort.
# This may be replaced when dependencies are built.
