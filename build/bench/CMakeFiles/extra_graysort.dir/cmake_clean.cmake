file(REMOVE_RECURSE
  "CMakeFiles/extra_graysort.dir/extra_graysort.cpp.o"
  "CMakeFiles/extra_graysort.dir/extra_graysort.cpp.o.d"
  "extra_graysort"
  "extra_graysort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_graysort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
