# Empty compiler generated dependencies file for table2_zipf_delta.
# This may be replaced when dependencies are built.
