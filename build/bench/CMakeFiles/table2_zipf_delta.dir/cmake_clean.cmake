file(REMOVE_RECURSE
  "CMakeFiles/table2_zipf_delta.dir/table2_zipf_delta.cpp.o"
  "CMakeFiles/table2_zipf_delta.dir/table2_zipf_delta.cpp.o.d"
  "table2_zipf_delta"
  "table2_zipf_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_zipf_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
