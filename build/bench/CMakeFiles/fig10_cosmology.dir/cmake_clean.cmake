file(REMOVE_RECURSE
  "CMakeFiles/fig10_cosmology.dir/fig10_cosmology.cpp.o"
  "CMakeFiles/fig10_cosmology.dir/fig10_cosmology.cpp.o.d"
  "fig10_cosmology"
  "fig10_cosmology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cosmology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
