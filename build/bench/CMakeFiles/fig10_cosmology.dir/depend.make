# Empty dependencies file for fig10_cosmology.
# This may be replaced when dependencies are built.
