file(REMOVE_RECURSE
  "CMakeFiles/extra_algorithm_matrix.dir/extra_algorithm_matrix.cpp.o"
  "CMakeFiles/extra_algorithm_matrix.dir/extra_algorithm_matrix.cpp.o.d"
  "extra_algorithm_matrix"
  "extra_algorithm_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_algorithm_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
