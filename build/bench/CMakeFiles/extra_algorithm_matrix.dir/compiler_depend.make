# Empty compiler generated dependencies file for extra_algorithm_matrix.
# This may be replaced when dependencies are built.
