file(REMOVE_RECURSE
  "CMakeFiles/sort_cli.dir/sort_cli.cpp.o"
  "CMakeFiles/sort_cli.dir/sort_cli.cpp.o.d"
  "sort_cli"
  "sort_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
