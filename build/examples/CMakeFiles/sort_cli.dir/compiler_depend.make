# Empty compiler generated dependencies file for sort_cli.
# This may be replaced when dependencies are built.
