file(REMOVE_RECURSE
  "CMakeFiles/ptf_survey.dir/ptf_survey.cpp.o"
  "CMakeFiles/ptf_survey.dir/ptf_survey.cpp.o.d"
  "ptf_survey"
  "ptf_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptf_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
