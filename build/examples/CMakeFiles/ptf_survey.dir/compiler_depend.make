# Empty compiler generated dependencies file for ptf_survey.
# This may be replaced when dependencies are built.
