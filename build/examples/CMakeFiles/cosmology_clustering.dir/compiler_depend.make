# Empty compiler generated dependencies file for cosmology_clustering.
# This may be replaced when dependencies are built.
