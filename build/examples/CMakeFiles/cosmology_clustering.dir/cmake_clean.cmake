file(REMOVE_RECURSE
  "CMakeFiles/cosmology_clustering.dir/cosmology_clustering.cpp.o"
  "CMakeFiles/cosmology_clustering.dir/cosmology_clustering.cpp.o.d"
  "cosmology_clustering"
  "cosmology_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmology_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
