#include "trace/export.hpp"

#include <ostream>
#include <string>

#include "telemetry/json.hpp"

namespace sdss::trace {

namespace {

/// Timestamps: the trace-event format wants microseconds; emit fractional
/// µs to keep the recorder's nanosecond resolution.
double us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void key(std::ostream& os, const char* name) {
  telemetry::write_json_string(os, name);
  os << ":";
}

void prelude(std::ostream& os, bool& first, const Event& e, const char* ph,
             std::size_t tid) {
  if (!first) os << ",";
  first = false;
  os << "\n  {";
  key(os, "name");
  telemetry::write_json_string(os, e.name);
  os << ",";
  key(os, "cat");
  telemetry::write_json_string(os, event_cat_name(e.cat));
  os << ",";
  key(os, "ph");
  os << "\"" << ph << "\",";
  key(os, "pid");
  os << "1,";
  key(os, "tid");
  os << tid << ",";
  key(os, "ts");
  os << us(e.t_ns);
}

void args_open(std::ostream& os) {
  os << ",";
  key(os, "args");
  os << "{";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceLog& log) {
  os << "[";
  bool first = true;
  const std::size_t ranks = static_cast<std::size_t>(log.num_ranks());
  for (std::size_t tid = 0; tid < log.lanes.size(); ++tid) {
    // Track naming metadata so Perfetto labels lanes "rank N" / "cluster".
    if (!first) os << ",";
    first = false;
    const std::string label =
        tid < ranks ? "rank " + std::to_string(tid) : std::string("cluster");
    os << "\n  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << tid << ",\"args\":{\"name\":";
    telemetry::write_json_string(os, label);
    os << "}}";

    for (const Event& e : log.lanes[tid]) {
      switch (e.kind) {
        case EventKind::kSpanBegin:
          prelude(os, first, e, "B", tid);
          os << "}";
          break;
        case EventKind::kSpanEnd:
          prelude(os, first, e, "E", tid);
          os << "}";
          break;
        case EventKind::kComplete: {
          prelude(os, first, e, "X", tid);
          os << ",";
          key(os, "dur");
          // Sub-µs ops still get a visible sliver.
          os << (e.dur_ns < 1000 ? 1.0 : us(e.dur_ns));
          args_open(os);
          key(os, "bytes");
          os << e.value;
          if (e.peer >= 0) {
            os << ",";
            key(os, "peer");
            os << e.peer;
          }
          if (e.aux > 0) {
            os << ",";
            key(os, "blocked_us");
            os << us(e.aux);
          }
          os << "}}";
          break;
        }
        case EventKind::kInstant: {
          prelude(os, first, e, "i", tid);
          os << ",";
          key(os, "s");
          os << "\"t\"";
          args_open(os);
          key(os, "value");
          os << e.value;
          if (e.peer >= 0) {
            os << ",";
            key(os, "peer");
            os << e.peer;
          }
          os << "}}";
          break;
        }
        case EventKind::kCounter: {
          prelude(os, first, e, "C", tid);
          args_open(os);
          key(os, "value");
          os << e.value;
          os << "}}";
          break;
        }
      }
    }
  }
  os << "\n]\n";
}

}  // namespace sdss::trace
