#include "trace/recorder.hpp"

#include <utility>

#include "sortcore/kernel_stats.hpp"

namespace sdss::trace {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kSpanBegin: return "span-begin";
    case EventKind::kSpanEnd: return "span-end";
    case EventKind::kComplete: return "complete";
    case EventKind::kInstant: return "instant";
    case EventKind::kCounter: return "counter";
  }
  return "?";
}

const char* event_cat_name(EventCat c) {
  switch (c) {
    case EventCat::kPhase: return "phase";
    case EventCat::kP2p: return "p2p";
    case EventCat::kCollective: return "collective";
    case EventCat::kChaos: return "chaos";
    case EventCat::kWatchdog: return "watchdog";
    case EventCat::kCounter: return "counter";
    case EventCat::kSpill: return "spill";
  }
  return "?";
}

// The chunk chain is singly linked through unique_ptr; a long run would
// otherwise tear it down by recursion, one stack frame per chunk.
TraceLane::~TraceLane() {
  std::unique_ptr<Chunk> cur = std::move(head_);
  while (cur) cur = std::move(cur->next);
}

TraceLane::TraceLane(TraceLane&& other) noexcept
    : head_(std::move(other.head_)),
      tail_(std::exchange(other.tail_, nullptr)) {}

TraceLane& TraceLane::operator=(TraceLane&& other) noexcept {
  if (this != &other) {
    this->~TraceLane();
    head_ = std::move(other.head_);
    tail_ = std::exchange(other.tail_, nullptr);
  }
  return *this;
}

void TraceLane::grow() {
  auto chunk = std::make_unique<Chunk>();
  Chunk* raw = chunk.get();
  if (tail_ == nullptr) {
    head_ = std::move(chunk);
  } else {
    tail_->next = std::move(chunk);
  }
  tail_ = raw;
}

std::size_t TraceLane::size() const {
  std::size_t n = 0;
  for (const Chunk* c = head_.get(); c != nullptr; c = c->next.get()) {
    n += c->used;
  }
  return n;
}

std::vector<Event> TraceLane::collect() const {
  std::vector<Event> out;
  out.reserve(size());
  for (const Chunk* c = head_.get(); c != nullptr; c = c->next.get()) {
    out.insert(out.end(), c->events.begin(), c->events.begin() + c->used);
  }
  return out;
}

bool TraceLog::empty() const {
  for (const auto& lane : lanes) {
    if (!lane.empty()) return false;
  }
  return true;
}

std::size_t TraceLog::total_events() const {
  std::size_t n = 0;
  for (const auto& lane : lanes) n += lane.size();
  return n;
}

void TraceRecorder::reset(int num_ranks) {
  lanes_.clear();
  lanes_.resize(static_cast<std::size_t>(num_ranks) + 1);
  epoch_ = std::chrono::steady_clock::now();
}

std::uint64_t TraceRecorder::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceLog TraceRecorder::collect() const {
  TraceLog log;
  log.lanes.reserve(lanes_.size());
  for (const TraceLane& lane : lanes_) log.lanes.push_back(lane.collect());
  return log;
}

namespace detail {
thread_local ThreadLane t_lane;
}  // namespace detail

// noinline: see the header comment on active() — callers run on migrating
// fibers, and the TLS address must be re-derived on every call.
[[gnu::noinline]] bool active() { return detail::t_lane.lane != nullptr; }

[[gnu::noinline]] std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - detail::t_lane.epoch)
          .count());
}

[[gnu::noinline]] void emit(const Event& e) { detail::t_lane.lane->append(e); }

void bind_thread(TraceRecorder* rec, std::size_t index) {
  detail::t_lane.lane = rec->lane(index);
  detail::t_lane.epoch = rec->epoch();
}

void unbind_thread() { detail::t_lane = detail::ThreadLane{}; }

void phase_begin(const char* phase) {
  Event e;
  e.t_ns = now_ns();
  e.name = phase;
  e.kind = EventKind::kSpanBegin;
  e.cat = EventCat::kPhase;
  emit(e);
}

void phase_end(const char* phase) {
  // Sample the process-wide kernel counters just inside the closing span so
  // Perfetto plots their growth per phase. The values are cumulative across
  // all ranks of the process (the counters are process-wide by design), so
  // they chart totals, not per-rank attribution.
  const KernelSnapshot s = snapshot_kernel_counters();
  counter("kernel_bytes_moved", s.bytes_moved);
  counter("kernel_scratch_bytes", s.scratch_bytes);
  counter("kernel_heap_allocs", s.heap_allocs);
  Event e;
  e.t_ns = now_ns();
  e.name = phase;
  e.kind = EventKind::kSpanEnd;
  e.cat = EventCat::kPhase;
  emit(e);
}

}  // namespace sdss::trace
