// Post-run trace analysis: per-phase critical path (which rank bounded the
// phase and by how much), the paper's load-imbalance factor λ = max/avg —
// both from wall time per phase and, deterministically, from per-rank
// received-record counts — and blocked-vs-compute attribution inside
// collectives. Consumes the TraceLog a Cluster run collects; feeds the
// telemetry RunReport "trace" object and the trace_analyze CLI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/recorder.hpp"

namespace sdss::trace {

/// Summary of one phase across all rank lanes.
struct PhaseStat {
  std::string name;
  int critical_rank = -1;  ///< rank with the largest in-phase wall time
  double max_s = 0.0;      ///< that rank's time: the phase's critical path
  double avg_s = 0.0;      ///< mean over all ranks (absent ranks count 0)
  double lambda = 0.0;     ///< max/avg — the paper's imbalance factor
  double margin_s = 0.0;   ///< max minus runner-up: the slack the critical
                           ///< rank alone adds to the makespan
  double blocked_s = 0.0;  ///< of the critical rank's phase time, how much
                           ///< was spent blocked inside collectives
  std::vector<double> per_rank_s;          ///< in-phase wall time per rank
  std::vector<double> per_rank_blocked_s;  ///< collective blocked time "
};

struct TraceAnalysis {
  std::vector<PhaseStat> phases;  ///< phases that appeared, canonical order
  /// λ from the last "recv_records" counter per rank: exactly reproducible
  /// for a fixed seed (no clocks involved), which is what the CI gate
  /// diffs. 0 when no rank emitted the counter.
  double lambda_records = 0.0;
  /// Fraction of all in-phase rank time spent blocked inside collectives.
  double blocked_frac = 0.0;
  std::uint64_t chaos_events = 0;
  std::uint64_t watchdog_events = 0;
  std::uint64_t total_events = 0;
};

TraceAnalysis analyze_trace(const TraceLog& log);

}  // namespace sdss::trace
