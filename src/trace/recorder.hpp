// Always-on event recorder: one single-writer chunked buffer ("lane") per
// simulated rank, plus one for the cluster runtime (watchdog).
//
// Cost model (why this can stay on during timed benches): each lane has at
// most one writer at a time — the scheduler worker currently running that
// rank's fiber binds the lane on resume and unbinds it on suspend — so an
// append is a bump-pointer store into the lane's current chunk: no lock, no
// atomic, no allocation in steady state (chunks are 1024 events and are
// only allocated when one fills). Op names are interned as static string
// literals, so an Event stores a `const char*`, never copies characters.
// Successive writers of one lane are ordered by the scheduler's fiber
// handoff (the off_cpu acquire/release edge in sim/sched.cpp); readers (the
// analyzer and the Chrome-trace exporter) only run after Cluster::launch()
// has joined the scheduler workers, which makes the lock-free writes
// visible, exactly like the existing per-rank `op_counts`.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sdss::trace {

enum class EventKind : std::uint8_t {
  kSpanBegin,  ///< open a nested span (phases) — paired with kSpanEnd
  kSpanEnd,
  kComplete,   ///< a finished span recorded in one event (comm ops)
  kInstant,    ///< a point in time (p2p sends, chaos firings, verdicts)
  kCounter,    ///< a sampled value (records received, kernel counters)
};

enum class EventCat : std::uint8_t {
  kPhase,
  kP2p,
  kCollective,
  kChaos,
  kWatchdog,
  kCounter,
  kSpill,  ///< spill-to-disk run writes/reloads (sortcore/spill.hpp)
};

const char* event_kind_name(EventKind k);
const char* event_cat_name(EventCat c);

/// One trace record. Timestamps are nanoseconds of steady_clock since the
/// recorder's epoch (set at Cluster::launch()). `name` must be a string
/// with static storage duration — the interning convention.
struct Event {
  std::uint64_t t_ns = 0;    ///< begin time (kComplete) or event time
  std::uint64_t dur_ns = 0;  ///< kComplete only
  std::uint64_t value = 0;   ///< bytes (comm), counter value, op index
  std::uint64_t aux = 0;     ///< blocked ns inside a collective; stall ns
  const char* name = "";     ///< interned: op/phase/counter name
  std::int32_t peer = -1;    ///< destination/source world rank, or -1
  EventKind kind = EventKind::kInstant;
  EventCat cat = EventCat::kP2p;
};

/// Single-producer append-only event buffer: a chain of fixed-size chunks
/// written bump-pointer style by exactly one thread. Never shrinks; read
/// only after the writer thread has been joined.
class TraceLane {
 public:
  TraceLane() = default;
  ~TraceLane();
  TraceLane(TraceLane&& other) noexcept;
  TraceLane& operator=(TraceLane&& other) noexcept;

  void append(const Event& e) {
    if (tail_ == nullptr || tail_->used == kChunkEvents) grow();
    tail_->events[tail_->used++] = e;
  }

  std::size_t size() const;
  std::vector<Event> collect() const;

 private:
  static constexpr std::size_t kChunkEvents = 1024;
  struct Chunk {
    std::array<Event, kChunkEvents> events;
    std::size_t used = 0;
    std::unique_ptr<Chunk> next;
  };

  void grow();

  std::unique_ptr<Chunk> head_;
  Chunk* tail_ = nullptr;
};

/// The collected, immutable result of a traced run: lanes[0..R-1] are the
/// rank timelines, lanes[R] is the cluster runtime (watchdog verdicts).
/// Empty when the run was launched with tracing disabled.
struct TraceLog {
  std::vector<std::vector<Event>> lanes;

  int num_ranks() const {
    return lanes.empty() ? 0 : static_cast<int>(lanes.size()) - 1;
  }
  bool empty() const;
  std::size_t total_events() const;
};

/// Owns the lanes for one cluster run. reset() arms it; collect() snapshots
/// everything after the scheduler workers have joined.
class TraceRecorder {
 public:
  /// Arm the recorder with num_ranks rank lanes plus the cluster lane, and
  /// stamp the timestamp epoch. Discards any previous run's events.
  void reset(int num_ranks);

  bool enabled() const { return !lanes_.empty(); }
  TraceLane* lane(std::size_t index) { return &lanes_[index]; }
  TraceLane* cluster_lane() { return &lanes_.back(); }
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }
  std::uint64_t now_ns() const;

  TraceLog collect() const;

 private:
  std::chrono::steady_clock::time_point epoch_{};
  std::vector<TraceLane> lanes_;
};

namespace detail {
/// The calling thread's lane binding. Null lane = tracing inactive on this
/// thread; every emit helper is a no-op behind one TLS pointer test.
struct ThreadLane {
  TraceLane* lane = nullptr;
  std::chrono::steady_clock::time_point epoch{};
};
extern thread_local ThreadLane t_lane;
}  // namespace detail

/// True iff the calling thread is bound to a lane (the fast-path gate every
/// instrumentation site checks first).
///
/// active/now_ns/emit are deliberately out-of-line (and noinline in the
/// .cpp): instrumented code runs on rank fibers that can migrate between
/// scheduler workers at any blocking call, and an inlined accessor would
/// let the compiler cache the computed address of the previous worker's
/// t_lane across a yield — appending events through a stale binding into
/// another rank's lane. Out-of-line calls re-derive the TLS address of the
/// worker actually executing the instruction.
bool active();

/// Bind/unbind the calling thread to lane `index` of `rec`. The rank
/// scheduler binds a worker to rank r's lane whenever it resumes rank r's
/// fiber (and unbinds on suspend), so the binding follows the fiber across
/// workers; the watchdog thread binds the cluster lane. Each lane must have
/// at most one writer thread at a time.
void bind_thread(TraceRecorder* rec, std::size_t index);
void unbind_thread();

/// Nanoseconds since the bound recorder's epoch. Only valid when active().
std::uint64_t now_ns();

/// Emit helpers. All require active(); callers gate with `if (active())`
/// so an untraced run pays one call, TLS load, and branch per site.
void emit(const Event& e);

inline void instant(EventCat cat, const char* name, std::uint64_t value = 0,
                    std::int32_t peer = -1, std::uint64_t aux = 0) {
  Event e;
  e.t_ns = now_ns();
  e.value = value;
  e.aux = aux;
  e.name = name;
  e.peer = peer;
  e.kind = EventKind::kInstant;
  e.cat = cat;
  emit(e);
}

inline void complete(EventCat cat, const char* name, std::uint64_t begin_ns,
                     std::uint64_t value = 0, std::int32_t peer = -1,
                     std::uint64_t aux = 0) {
  Event e;
  const std::uint64_t end_ns = now_ns();
  e.t_ns = begin_ns;
  e.dur_ns = end_ns > begin_ns ? end_ns - begin_ns : 0;
  e.value = value;
  e.aux = aux;
  e.name = name;
  e.peer = peer;
  e.kind = EventKind::kComplete;
  e.cat = cat;
  emit(e);
}

inline void counter(const char* name, std::uint64_t value) {
  Event e;
  e.t_ns = now_ns();
  e.value = value;
  e.name = name;
  e.kind = EventKind::kCounter;
  e.cat = EventCat::kCounter;
  emit(e);
}

/// Phase hooks, outlined because the end hook also samples the process-wide
/// kernel counters (sortcore/kernel_stats) into counter events. Callers
/// gate with active().
void phase_begin(const char* phase);
void phase_end(const char* phase);

}  // namespace sdss::trace
