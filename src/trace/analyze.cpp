#include "trace/analyze.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "util/phase_ledger.hpp"

namespace sdss::trace {

namespace {

struct PhaseAccum {
  std::vector<double> seconds;
  std::vector<double> blocked;
  std::size_t first_seen = 0;  ///< tie-break ordering for non-ledger names
};

double ns_to_s(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

/// Canonical position of a phase name: ledger phases sort in their enum
/// order (the paper's pipeline order), anything else after, by appearance.
std::size_t canonical_rank(const std::string& name) {
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    if (name == phase_name(static_cast<Phase>(p))) return p;
  }
  return kNumPhases;
}

}  // namespace

TraceAnalysis analyze_trace(const TraceLog& log) {
  TraceAnalysis out;
  out.total_events = log.total_events();
  const int ranks = log.num_ranks();
  if (ranks <= 0) return out;

  std::map<std::string, PhaseAccum> phases;
  std::size_t name_seq = kNumPhases + 1;
  std::vector<double> recv_records(static_cast<std::size_t>(ranks), -1.0);

  for (std::size_t lane = 0; lane < log.lanes.size(); ++lane) {
    const bool is_rank = lane < static_cast<std::size_t>(ranks);
    // Open phase spans on this lane, innermost last. A span left open by a
    // mid-phase failure closes at the lane's last event time.
    std::vector<std::pair<const char*, std::uint64_t>> open;
    std::uint64_t lane_end = 0;

    auto charge = [&](const char* name, std::uint64_t begin,
                      std::uint64_t end, double blocked) {
      PhaseAccum& acc = phases[name];
      if (acc.seconds.empty()) {
        acc.seconds.assign(static_cast<std::size_t>(ranks), 0.0);
        acc.blocked.assign(static_cast<std::size_t>(ranks), 0.0);
        acc.first_seen = name_seq++;
      }
      if (end > begin) acc.seconds[lane] += ns_to_s(end - begin);
      acc.blocked[lane] += blocked;
    };

    for (const Event& e : log.lanes[lane]) {
      lane_end = std::max(lane_end, e.t_ns + e.dur_ns);
      switch (e.kind) {
        case EventKind::kSpanBegin:
          if (is_rank && e.cat == EventCat::kPhase) {
            open.emplace_back(e.name, e.t_ns);
          }
          break;
        case EventKind::kSpanEnd:
          if (is_rank && e.cat == EventCat::kPhase && !open.empty()) {
            // Close the innermost span with this name (normally the top).
            for (std::size_t i = open.size(); i-- > 0;) {
              if (std::strcmp(open[i].first, e.name) == 0) {
                charge(open[i].first, open[i].second, e.t_ns, 0.0);
                open.erase(open.begin() + static_cast<std::ptrdiff_t>(i));
                break;
              }
            }
          }
          break;
        case EventKind::kComplete:
          if (is_rank && e.cat == EventCat::kCollective && !open.empty()) {
            charge(open.back().first, 0, 0, ns_to_s(e.aux));
          }
          break;
        case EventKind::kCounter:
          if (is_rank && std::strcmp(e.name, "recv_records") == 0) {
            recv_records[lane] = static_cast<double>(e.value);
          }
          break;
        case EventKind::kInstant:
          if (e.cat == EventCat::kChaos) ++out.chaos_events;
          if (e.cat == EventCat::kWatchdog) ++out.watchdog_events;
          break;
      }
    }
    // Spans the lane never closed (crash unwound past the dtor, or a
    // deadlock verdict aborted the run) still count up to the last event.
    for (const auto& [name, begin] : open) charge(name, begin, lane_end, 0.0);
  }

  // Reduce per-phase, in canonical order.
  std::vector<std::pair<std::size_t, const std::string*>> order;
  order.reserve(phases.size());
  for (const auto& [name, acc] : phases) {
    const std::size_t rank = canonical_rank(name);
    order.emplace_back(rank < kNumPhases ? rank : acc.first_seen, &name);
  }
  std::sort(order.begin(), order.end());

  double total_s = 0.0;
  double total_blocked_s = 0.0;
  for (const auto& [key, name] : order) {
    const PhaseAccum& acc = phases[*name];
    PhaseStat stat;
    stat.name = *name;
    stat.per_rank_s = acc.seconds;
    stat.per_rank_blocked_s = acc.blocked;
    double sum = 0.0;
    double runner_up = 0.0;
    for (int r = 0; r < ranks; ++r) {
      const double s = acc.seconds[static_cast<std::size_t>(r)];
      sum += s;
      total_blocked_s += acc.blocked[static_cast<std::size_t>(r)];
      if (s > stat.max_s) {
        runner_up = stat.max_s;
        stat.max_s = s;
        stat.critical_rank = r;
      } else if (s > runner_up) {
        runner_up = s;
      }
    }
    total_s += sum;
    stat.avg_s = sum / ranks;
    stat.lambda = stat.avg_s > 0.0 ? stat.max_s / stat.avg_s : 0.0;
    stat.margin_s = stat.max_s - runner_up;
    if (stat.critical_rank >= 0) {
      stat.blocked_s =
          acc.blocked[static_cast<std::size_t>(stat.critical_rank)];
    }
    out.phases.push_back(std::move(stat));
  }
  out.blocked_frac = total_s > 0.0 ? total_blocked_s / total_s : 0.0;

  // Deterministic λ from received-record counts (ranks that never reached
  // the exchange — e.g. handed their data to a node leader — are skipped).
  double rec_sum = 0.0;
  double rec_max = 0.0;
  int rec_n = 0;
  for (const double v : recv_records) {
    if (v < 0.0) continue;
    rec_sum += v;
    rec_max = std::max(rec_max, v);
    ++rec_n;
  }
  if (rec_n > 0 && rec_sum > 0.0) {
    out.lambda_records = rec_max / (rec_sum / rec_n);
  }
  return out;
}

}  // namespace sdss::trace
