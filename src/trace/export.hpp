// Chrome trace-event export: serialize a TraceLog as the JSON array format
// that chrome://tracing and https://ui.perfetto.dev load directly. Each
// rank gets its own named track (tid), the cluster runtime a final one;
// phases render as nested B/E spans, comm ops as X spans/instants beneath
// them, chaos firings and watchdog verdicts as flagged instants, and
// counter samples as "C" series.
#pragma once

#include <iosfwd>

#include "trace/recorder.hpp"

namespace sdss::trace {

void write_chrome_trace(std::ostream& os, const TraceLog& log);

}  // namespace sdss::trace
