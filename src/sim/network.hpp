// LogGP-style interconnect model for the simulated cluster.
//
// The paper's adaptive decisions (node-level merging below τm, overlap of
// exchange and ordering below τo) are driven by the latency/bandwidth ratio
// of the machine's interconnect. Real hardware is not available here, so the
// runtime charges each message a modeled cost:
//
//    t(message) = latency + bytes / bandwidth
//
// applied as (a) a delivery delay on point-to-point messages (a receiver
// cannot match a message before its deliver-at time) and (b) a post-exchange
// stall on collectives proportional to the number of peer messages and the
// bytes moved. Intra-node traffic uses a cheaper profile (shared memory vs.
// NIC), which is what makes node-level merging profitable on slow networks.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace sdss::sim {

struct NetworkModel {
  /// Per-message latency, seconds, for inter-node traffic.
  double latency_s = 0.0;
  /// Link bandwidth, bytes/second, for inter-node traffic. 0 = infinite.
  double bandwidth_Bps = 0.0;
  /// Multipliers applied to intra-node (same simulated node) traffic:
  /// latency shrinks, bandwidth grows.
  double intra_node_latency_factor = 0.1;
  double intra_node_bandwidth_factor = 8.0;

  bool enabled() const { return latency_s > 0.0 || bandwidth_Bps > 0.0; }

  /// Modeled transfer time for one message of `bytes` bytes.
  double message_time(std::size_t bytes, bool intra_node) const;

  /// Modeled time for a rank that exchanges with `peer_messages` peers,
  /// pushing `bytes_out` and pulling `bytes_in` in total.
  double exchange_time(std::size_t peer_messages, std::size_t bytes_out,
                       std::size_t bytes_in, bool intra_node) const;

  std::chrono::steady_clock::duration to_duration(double seconds) const;

  /// No modeled network: messages are instantaneous (pure shared memory).
  static NetworkModel none() { return {}; }

  /// Roughly Edison's Aries: ~1 us latency, ~8 GB/s per-rank bandwidth,
  /// scaled so that laptop-size runs show Aries-like ratios.
  static NetworkModel aries_like();

  /// A commodity cluster: ~50 us latency, ~1 GB/s. Node-level merging pays
  /// off on this profile, as in the paper's "low-throughput network" case.
  static NetworkModel slow_ethernet_like();
};

}  // namespace sdss::sim
