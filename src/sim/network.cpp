#include "sim/network.hpp"

namespace sdss::sim {

double NetworkModel::message_time(std::size_t bytes, bool intra_node) const {
  double lat = latency_s;
  double bw = bandwidth_Bps;
  if (intra_node) {
    lat *= intra_node_latency_factor;
    bw *= intra_node_bandwidth_factor;
  }
  double t = lat;
  if (bw > 0.0) t += static_cast<double>(bytes) / bw;
  return t;
}

double NetworkModel::exchange_time(std::size_t peer_messages,
                                   std::size_t bytes_out, std::size_t bytes_in,
                                   bool intra_node) const {
  double lat = latency_s;
  double bw = bandwidth_Bps;
  if (intra_node) {
    lat *= intra_node_latency_factor;
    bw *= intra_node_bandwidth_factor;
  }
  double t = lat * static_cast<double>(peer_messages);
  if (bw > 0.0) {
    const std::size_t dominant = bytes_out > bytes_in ? bytes_out : bytes_in;
    t += static_cast<double>(dominant) / bw;
  }
  return t;
}

std::chrono::steady_clock::duration NetworkModel::to_duration(
    double seconds) const {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

NetworkModel NetworkModel::aries_like() {
  NetworkModel m;
  m.latency_s = 2e-6;
  m.bandwidth_Bps = 8.0e9;
  return m;
}

NetworkModel NetworkModel::slow_ethernet_like() {
  NetworkModel m;
  m.latency_s = 5e-5;
  m.bandwidth_Bps = 1.0e9;
  return m;
}

}  // namespace sdss::sim
