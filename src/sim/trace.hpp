// Event tracing for the simulated cluster — forwarding header.
//
// The recorder itself lives in src/trace/ (see trace/recorder.hpp): one
// single-writer chunked lane per rank, bump-pointer appends, interned op
// names. An append costs a TLS load, a branch, and a ~64-byte store — no
// lock and no allocation in steady state — so `ClusterConfig::enable_trace`
// defaults ON and stays on while timing benches (the overhead gate in
// bench/bench_trace.cpp holds it under 5%). Set enable_trace = false only
// to reclaim the per-lane buffer memory on very large runs.
//
// Collect a run's events from RunResult::trace, feed them to
// trace::analyze_trace() for critical-path/λ summaries, or write them with
// write_chrome_trace() and load the file in chrome://tracing or Perfetto.
#pragma once

#include "trace/export.hpp"
#include "trace/recorder.hpp"

namespace sdss::sim {

using sdss::trace::TraceLog;
using sdss::trace::write_chrome_trace;

}  // namespace sdss::sim
