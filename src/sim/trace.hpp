// Communication tracing: an optional per-run event log of every
// point-to-point send and collective a rank issues, exportable in the
// Chrome trace-event JSON format (load in chrome://tracing or Perfetto to
// see each simulated rank as a timeline row).
//
// Enable with ClusterConfig::enable_trace; retrieve the events from
// RunResult::trace and write them with write_chrome_trace(). Tracing adds
// one locked vector append per operation — fine for algorithm study, not
// meant to be on while timing benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace sdss::sim {

struct TraceEvent {
  enum class Kind : std::uint8_t { kSend, kCollective };
  Kind kind = Kind::kSend;
  int rank = 0;        ///< issuing rank (world)
  int peer = -1;       ///< destination world rank (sends) or -1
  const char* op = ""; ///< operation name ("send", "alltoallv", ...)
  std::uint64_t bytes = 0;
  double t_begin = 0;  ///< seconds since the run started
  double t_end = 0;
};

/// Serialize events as a Chrome trace-event JSON array. Each rank is a
/// "thread"; sends and collectives are complete ("X") events with byte
/// counts in args.
void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events);

}  // namespace sdss::sim
