#include "sim/cluster.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "sim/state.hpp"
#include "util/error.hpp"

namespace sdss::sim {

using detail::ClusterState;
using detail::ContextInfo;

PhaseLedger RunResult::max_ledger() const {
  PhaseLedger out;
  for (const PhaseLedger& l : ledgers) out.max_with(l);
  return out;
}

CommStats RunResult::total_comm() const {
  CommStats out;
  for (const CommStats& s : comm_stats) out += s;
  return out;
}

Cluster::Cluster(ClusterConfig cfg) : cfg_(cfg) {
  if (cfg_.num_ranks < 1) throw CommError("cluster needs at least one rank");
  if (cfg_.cores_per_node < 1) {
    throw CommError("cluster needs at least one core per node");
  }
}

namespace {

/// Launch one thread per rank, run fn, join; returns the first non-abort
/// exception (if any), the rank that raised it, and the per-rank ledgers.
struct LaunchOutcome {
  std::exception_ptr primary;
  int failed_rank = -1;
  std::vector<PhaseLedger> ledgers;
  std::vector<CommStats> comm_stats;
  std::vector<TraceEvent> trace;
};

LaunchOutcome launch(const ClusterConfig& cfg,
                     const std::function<void(Comm&)>& fn) {
  // Fresh state per run so a Cluster object is reusable and an aborted run
  // leaves no residue.
  ClusterState st;
  st.num_ranks = cfg.num_ranks;
  st.cores_per_node = cfg.cores_per_node;
  st.network = cfg.network;
  st.mailboxes.resize(static_cast<std::size_t>(cfg.num_ranks));
  st.posted_coll.resize(static_cast<std::size_t>(cfg.num_ranks), nullptr);
  st.ledgers.resize(static_cast<std::size_t>(cfg.num_ranks));
  st.comm_stats.resize(static_cast<std::size_t>(cfg.num_ranks));
  st.trace_enabled = cfg.enable_trace;
  st.trace_epoch = detail::Clock::now();
  st.rank_cvs.reserve(static_cast<std::size_t>(cfg.num_ranks));
  for (int r = 0; r < cfg.num_ranks; ++r) {
    st.rank_cvs.push_back(std::make_unique<std::condition_variable>());
  }

  ContextInfo world;
  world.world_ranks.resize(static_cast<std::size_t>(cfg.num_ranks));
  for (int r = 0; r < cfg.num_ranks; ++r) {
    world.world_ranks[static_cast<std::size_t>(r)] = r;
  }
  world.intra_node = cfg.num_ranks <= cfg.cores_per_node;
  st.contexts.emplace(0, std::move(world));

  std::mutex err_mu;
  LaunchOutcome out;

  auto abort_cluster = [&st](const std::string& cause) {
    std::lock_guard<std::mutex> lk(st.mu);
    if (!st.aborted) {
      st.aborted = true;
      st.abort_cause = cause;
    }
    st.cv.notify_all();
    for (auto& cv : st.rank_cvs) cv->notify_all();
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg.num_ranks));
  for (int r = 0; r < cfg.num_ranks; ++r) {
    threads.emplace_back([&, r] {
      Comm world_comm = detail::make_comm(&st, /*ctx=*/0, /*rank=*/r,
                                          cfg.num_ranks, /*world_rank=*/r);
      try {
        fn(world_comm);
      } catch (const SimAbortError&) {
        // Secondary casualty of another rank's failure; ignore.
      } catch (const std::exception& e) {
        {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!out.primary) {
            out.primary = std::current_exception();
            out.failed_rank = r;
          }
        }
        abort_cluster(e.what());
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!out.primary) {
            out.primary = std::current_exception();
            out.failed_rank = r;
          }
        }
        abort_cluster("unknown exception");
      }
    });
  }
  for (auto& t : threads) t.join();
  out.ledgers = std::move(st.ledgers);
  out.comm_stats = std::move(st.comm_stats);
  out.trace = std::move(st.trace);
  return out;
}

}  // namespace

RunResult Cluster::run_collect(const std::function<void(Comm&)>& fn) {
  LaunchOutcome lo = launch(cfg_, fn);
  RunResult res;
  res.ledgers = std::move(lo.ledgers);
  res.comm_stats = std::move(lo.comm_stats);
  res.trace = std::move(lo.trace);
  if (lo.primary) {
    res.ok = false;
    res.failed_rank = lo.failed_rank;
    try {
      std::rethrow_exception(lo.primary);
    } catch (const SimOomError& e) {
      res.oom = true;
      res.error = e.what();
    } catch (const std::exception& e) {
      res.error = e.what();
    } catch (...) {
      res.error = "unknown exception";
    }
  }
  return res;
}

void Cluster::run(const std::function<void(Comm&)>& fn) {
  LaunchOutcome lo = launch(cfg_, fn);
  if (lo.primary) std::rethrow_exception(lo.primary);
}

void Cluster::run_once(const ClusterConfig& cfg,
                       const std::function<void(Comm&)>& fn) {
  Cluster(cfg).run(fn);
}

}  // namespace sdss::sim
