#include "sim/cluster.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "sim/state.hpp"
#include "trace/recorder.hpp"
#include "util/error.hpp"

namespace sdss::sim {

using detail::BlockedOp;
using detail::Clock;
using detail::ClusterState;
using detail::ContextInfo;

PhaseLedger RunResult::max_ledger() const {
  PhaseLedger out;
  for (const PhaseLedger& l : ledgers) out.max_with(l);
  return out;
}

CommStats RunResult::total_comm() const {
  CommStats out;
  for (const CommStats& s : comm_stats) out += s;
  return out;
}

const char* failure_class_name(FailureClass c) {
  switch (c) {
    case FailureClass::kNone:
      return "none";
    case FailureClass::kOom:
      return "oom";
    case FailureClass::kDeadlock:
      return "deadlock";
    case FailureClass::kInjectedCrash:
      return "injected-crash";
    case FailureClass::kPeerAbort:
      return "peer-abort";
    case FailureClass::kSpillIoError:
      return "spill-io";
    case FailureClass::kLogicError:
      return "logic-error";
  }
  return "unknown";
}

Cluster::Cluster(ClusterConfig cfg) : cfg_(cfg) {
  if (cfg_.num_ranks < 1) throw CommError("cluster needs at least one rank");
  if (cfg_.cores_per_node < 1) {
    throw CommError("cluster needs at least one core per node");
  }
}

namespace {

/// Classify one rank's exception into the failure taxonomy.
FailureClass classify_failure(const std::exception_ptr& e) {
  if (!e) return FailureClass::kNone;
  try {
    std::rethrow_exception(e);
  } catch (const SimOomError&) {
    return FailureClass::kOom;
  } catch (const SimDeadlockError&) {
    return FailureClass::kDeadlock;
  } catch (const SimInjectedFault&) {
    return FailureClass::kInjectedCrash;
  } catch (const SimAbortError&) {
    return FailureClass::kPeerAbort;
  } catch (const SpillIoError&) {
    return FailureClass::kSpillIoError;
  } catch (...) {
    return FailureClass::kLogicError;
  }
}

/// One-line refinement of the classification (RunResult::failure_detail):
/// the phase that OOMed, or the spill op class that failed.
std::string classify_detail(const std::exception_ptr& e) {
  if (!e) return "";
  try {
    std::rethrow_exception(e);
  } catch (const SimOomError& oom) {
    return oom.phase();
  } catch (const SpillIoError& io) {
    return io.op();
  } catch (...) {
    return "";
  }
}

std::string failure_what(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// Run one fiber per rank on the scheduler's worker pool; returns the first
/// non-abort exception (if any), every rank's classified unwind, and the
/// per-rank ledgers and chaos accounting.
struct LaunchOutcome {
  std::exception_ptr primary;
  int failed_rank = -1;
  /// Every rank that unwound (primary and secondaries), unsorted.
  std::vector<std::pair<int, std::exception_ptr>> unwound;
  std::vector<PhaseLedger> ledgers;
  std::vector<CommStats> comm_stats;
  TraceLog trace;
  std::vector<FaultEvent> fired;
  std::uint64_t jittered_messages = 0;
  std::vector<std::uint64_t> op_counts;
  std::vector<std::uint64_t> spill_op_counts;
  std::vector<std::int32_t> schedule;
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;
  /// Live-gauge samples from the sampler service fiber (flight recorder
  /// only — wall-clock paced, machine-dependent).
  std::vector<std::string> sampled_gauges;
  std::vector<obs::LiveSample> live_samples;
  /// Blocked-op table snapshotted at the first abort (empty on success).
  std::vector<BlockedOp> failure_blocked;
  std::vector<std::uint8_t> failure_finished;
};

/// The no-progress watchdog. Runs on its own OS thread, outside the fiber
/// scheduler; fires only when every live rank has sat blocked
/// (deadline-free) with no mailbox progress for the full threshold — and
/// the scheduler is idle, so a woken-but-not-yet-resumed fiber (whose stale
/// BlockedOp is still published) is never mistaken for a dead one — and
/// even then only after a probe wake-up gives every rank one more chance to
/// advance.
class Watchdog {
 public:
  Watchdog(ClusterState* st, double timeout_s)
      : st_(st), timeout_(std::chrono::duration<double>(timeout_s)) {}

  void stop() {
    {
      std::lock_guard<std::mutex> lk(st_->mu);
      stop_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until stop(); sets *fired to the deadlock error if it fired.
  void run(std::exception_ptr* fired_error) {
    std::unique_lock<std::mutex> lk(st_->mu);
    const auto tick = std::min(
        std::chrono::duration_cast<Clock::duration>(timeout_ / 4),
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::milliseconds(100)));
    std::uint64_t last_epoch = st_->progress_epoch;
    auto window_start = Clock::now();
    bool probed = false;
    while (!stop_ && !st_->aborted) {
      cv_.wait_for(lk, std::max(tick, Clock::duration(1)));
      if (stop_ || st_->aborted) return;

      if (st_->progress_epoch != last_epoch || !all_live_blocked()) {
        last_epoch = st_->progress_epoch;
        window_start = Clock::now();
        probed = false;
        continue;
      }
      if (Clock::now() - window_start < timeout_) continue;
      if (!probed) {
        // Probe: wake every rank for one spurious rescan. A rank with a
        // deliverable message will consume it and bump the epoch; a truly
        // deadlocked cluster stays silent through the grace tick.
        probed = true;
        window_start = Clock::now() - std::chrono::duration_cast<
                                          Clock::duration>(timeout_) + tick;
        st_->sched->wake_all();
        continue;
      }
      // Verdict: deadlock. Snapshot the blocked-op table for the flight
      // recorder before the abort unwinds it, then build the per-rank dump.
      if (st_->failure_blocked.empty()) {
        st_->failure_blocked = st_->blocked;
        st_->failure_finished = st_->finished;
      }
      std::vector<BlockedRankDump> dump;
      dump.reserve(static_cast<std::size_t>(st_->num_ranks));
      for (int r = 0; r < st_->num_ranks; ++r) {
        const auto i = static_cast<std::size_t>(r);
        BlockedRankDump d;
        d.rank = r;
        if (st_->finished[i] != 0u) {
          d.finished = true;
        } else {
          const BlockedOp& b = st_->blocked[i];
          d.op = b.op != nullptr ? b.op : "running";
          d.src = b.src;
          d.tag = b.tag;
          d.ctx = b.ctx;
        }
        dump.push_back(std::move(d));
      }
      // The watchdog thread is the sole writer of the recorder's cluster
      // lane, so the verdict instant needs no lock either.
      if (st_->recorder.enabled()) {
        trace::Event ev;
        ev.t_ns = st_->recorder.now_ns();
        ev.name = "deadlock-verdict";
        ev.kind = trace::EventKind::kInstant;
        ev.cat = trace::EventCat::kWatchdog;
        st_->recorder.cluster_lane()->append(ev);
      }
      *fired_error = std::make_exception_ptr(SimDeadlockError(
          std::move(dump), std::chrono::duration<double>(timeout_).count()));
      st_->aborted = true;
      st_->abort_cause = "deadlock watchdog: no progress";
      st_->sched->wake_all();
      return;
    }
  }

 private:
  /// Caller holds st_->mu. True iff at least one rank is still running,
  /// every unfinished rank is blocked with no self-wake deadline pending,
  /// and the scheduler has nothing queued or on a worker — a fiber that was
  /// woken but not yet resumed still publishes its stale BlockedOp, and
  /// only idle() separates "waiting for CPU" from "waiting on a peer".
  bool all_live_blocked() const {
    int live = 0;
    for (int r = 0; r < st_->num_ranks; ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (st_->finished[i] != 0u) continue;
      ++live;
      const BlockedOp& b = st_->blocked[i];
      if (b.op == nullptr || b.has_deadline) return false;
    }
    return live > 0 && st_->sched->idle();
  }

  ClusterState* st_;
  std::chrono::duration<double> timeout_;
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by st_->mu
};

/// Destination of the flight-recorder bundle: the explicit config path, or
/// an auto-numbered file in $SDSS_POSTMORTEM_DIR, or "" (no bundle).
std::string resolve_postmortem_path(const ClusterConfig& cfg) {
  if (!cfg.postmortem_path.empty()) return cfg.postmortem_path;
  const char* dir = std::getenv("SDSS_POSTMORTEM_DIR");
  if (dir == nullptr || *dir == '\0') return "";
  static std::atomic<std::uint64_t> counter{0};
  return std::string(dir) + "/postmortem-" +
         std::to_string(counter.fetch_add(1)) + ".json";
}

/// Assemble the post-mortem bundle for a failed run from the launch
/// outcome and the already-classified RunResult.
obs::FlightRecord build_flight_record(const LaunchOutcome& lo,
                                      const RunResult& res) {
  obs::FlightRecord fr;
  fr.failure_class = failure_class_name(res.failure);
  fr.failure_detail = res.failure_detail;
  fr.error = res.error;
  fr.failed_rank = res.failed_rank;

  for (std::size_t r = 0; r < lo.failure_blocked.size(); ++r) {
    obs::BlockedOpRecord b;
    b.rank = static_cast<int>(r);
    const bool fin =
        r < lo.failure_finished.size() && lo.failure_finished[r] != 0u;
    const BlockedOp& src = lo.failure_blocked[r];
    b.op = fin ? "finished" : (src.op != nullptr ? src.op : "running");
    b.src = src.src;
    b.tag = src.tag;
    b.ctx = src.ctx;
    b.has_deadline = src.has_deadline;
    b.finished = fin;
    fr.blocked.push_back(std::move(b));
  }

  for (const auto& lane : res.trace.lanes) {
    std::vector<obs::TraceTailEvent> tail;
    const std::size_t keep =
        std::min(lane.size(), obs::FlightRecord::kTraceTailEvents);
    for (std::size_t i = lane.size() - keep; i < lane.size(); ++i) {
      const trace::Event& e = lane[i];
      obs::TraceTailEvent ev;
      ev.t_ns = e.t_ns;
      ev.dur_ns = e.dur_ns;
      ev.value = e.value;
      ev.aux = e.aux;
      ev.name = e.name;
      ev.peer = e.peer;
      ev.kind = trace::event_kind_name(e.kind);
      ev.cat = trace::event_cat_name(e.cat);
      tail.push_back(std::move(ev));
    }
    fr.trace_tails.push_back(std::move(tail));
  }

  if (lo.has_metrics) fr.metrics = lo.metrics;
  fr.sampled_gauges = lo.sampled_gauges;
  fr.live_samples = lo.live_samples;

  for (const FaultEvent& e : res.fault_events) {
    obs::ChaosEventRecord c;
    c.kind = fault_kind_name(e.kind);
    c.rank = e.rank;
    c.op_index = e.op_index;
    c.seconds = e.seconds;
    fr.chaos_events.push_back(std::move(c));
  }
  return fr;
}

LaunchOutcome launch(const ClusterConfig& cfg,
                     const std::function<void(Comm&)>& fn) {
  // Fresh state per run so a Cluster object is reusable and an aborted run
  // leaves no residue.
  ClusterState st;
  st.num_ranks = cfg.num_ranks;
  st.cores_per_node = cfg.cores_per_node;
  st.network = cfg.network;
  st.mailboxes.resize(static_cast<std::size_t>(cfg.num_ranks));
  st.posted_coll.resize(static_cast<std::size_t>(cfg.num_ranks), nullptr);
  st.ledgers.resize(static_cast<std::size_t>(cfg.num_ranks));
  st.comm_stats.resize(static_cast<std::size_t>(cfg.num_ranks));
  st.trace_enabled = cfg.enable_trace;
  if (cfg.enable_trace) st.recorder.reset(cfg.num_ranks);
  if (cfg.enable_metrics) st.metrics.reset(cfg.num_ranks);
  st.chaos = FaultPlan(cfg.chaos, cfg.num_ranks);
  st.op_counts.assign(static_cast<std::size_t>(cfg.num_ranks), 0);
  st.spill_op_counts.assign(static_cast<std::size_t>(cfg.num_ranks), 0);
  st.spill_hooks.resize(static_cast<std::size_t>(cfg.num_ranks));
  for (int r = 0; r < cfg.num_ranks; ++r) {
    st.spill_hooks[static_cast<std::size_t>(r)].init(&st, r);
  }
  st.blocked.resize(static_cast<std::size_t>(cfg.num_ranks));
  st.finished.assign(static_cast<std::size_t>(cfg.num_ranks), 0);

  detail::RankScheduler::Config scfg;
  scfg.workers = cfg.sched_workers;
  scfg.stack_bytes = cfg.fiber_stack_bytes;
  scfg.record_schedule = cfg.record_schedule;
  detail::RankScheduler sched(&st.mu, cfg.num_ranks, scfg);
  st.sched = &sched;
  if (cfg.enable_trace) sched.set_trace(&st.recorder);
  if (cfg.enable_metrics) sched.set_metrics(&st.metrics);

  // Live-gauge sampler: a service fiber that wakes on a wall-clock tick and
  // snapshots the registered gauges into a bounded ring. Wall-clock paced,
  // so its output feeds ONLY the flight-recorder bundle, never the report
  // (obs/sampler.hpp documents the determinism contract). It is a service
  // fiber — excluded from idle() — so its periodic readiness cannot reset
  // the deadlock watchdog's no-progress window.
  if (cfg.enable_metrics && cfg.metrics_sampler_interval_s > 0.0 &&
      cfg.metrics_sampler_capacity > 0) {
    st.sampler.configure(&st.metrics, cfg.metrics_sampler_capacity);
    const auto tick = std::max(
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(cfg.metrics_sampler_interval_s)),
        Clock::duration(1));
    const auto epoch = Clock::now();
    sched.add_service([&st, tick, epoch] {
      for (;;) {
        st.sched->sleep_for(tick);
        std::lock_guard<std::mutex> lk(st.mu);
        if (st.aborted) return;
        bool all_done = true;
        for (std::uint8_t f : st.finished) {
          if (f == 0u) {
            all_done = false;
            break;
          }
        }
        if (all_done) return;
        st.sampler.take(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 epoch)
                .count()));
      }
    });
  }

  ContextInfo world;
  world.world_ranks.resize(static_cast<std::size_t>(cfg.num_ranks));
  for (int r = 0; r < cfg.num_ranks; ++r) {
    world.world_ranks[static_cast<std::size_t>(r)] = r;
  }
  world.intra_node = cfg.num_ranks <= cfg.cores_per_node;
  st.contexts.emplace(0, std::move(world));

  std::mutex err_mu;
  LaunchOutcome out;

  auto abort_cluster = [&st](const std::string& cause) {
    std::lock_guard<std::mutex> lk(st.mu);
    if (!st.aborted) {
      st.aborted = true;
      st.abort_cause = cause;
      // First abort: freeze the blocked-op table for the flight recorder.
      // The live table is useless post-mortem — BlockedGuards clear it as
      // the peer fibers unwind with SimAbortError.
      st.failure_blocked = st.blocked;
      st.failure_finished = st.finished;
    }
    st.sched->wake_all();
  };

  // The watchdog breaks genuine deadlocks (which would otherwise hang the
  // joins below forever) by aborting the cluster with a classified error.
  Watchdog watchdog(&st, cfg.watchdog_timeout_s);
  std::exception_ptr watchdog_error;
  std::thread watchdog_thread;
  if (cfg.watchdog_timeout_s > 0.0) {
    watchdog_thread = std::thread(
        [&watchdog, &watchdog_error] { watchdog.run(&watchdog_error); });
  }

  // Each rank body runs as a fiber; the scheduler binds the rank's trace
  // lane to whichever worker resumes it, so no bind here.
  sched.run([&](int r) {
    Comm world_comm = detail::make_comm(&st, /*ctx=*/0, /*rank=*/r,
                                        cfg.num_ranks, /*world_rank=*/r);
    auto record = [&](bool primary_candidate) {
      std::lock_guard<std::mutex> lk(err_mu);
      out.unwound.emplace_back(r, std::current_exception());
      if (primary_candidate && !out.primary) {
        out.primary = std::current_exception();
        out.failed_rank = r;
      }
    };
    try {
      fn(world_comm);
    } catch (const SimAbortError&) {
      // Secondary casualty of another rank's failure: recorded (and later
      // classified kPeerAbort), but never the primary.
      record(false);
    } catch (const std::exception& e) {
      record(true);
      abort_cluster(e.what());
    } catch (...) {
      record(true);
      abort_cluster("unknown exception");
    }
    {
      std::lock_guard<std::mutex> lk(st.mu);
      st.finished[static_cast<std::size_t>(r)] = 1;
      ++st.progress_epoch;
    }
  });
  watchdog.stop();
  if (watchdog_thread.joinable()) watchdog_thread.join();
  if (watchdog_error) {
    std::lock_guard<std::mutex> lk(err_mu);
    // The deadlock verdict outranks the secondary unwinds it triggered —
    // but a real rank error that raced the verdict keeps primacy.
    if (!out.primary) {
      out.primary = watchdog_error;
      out.failed_rank = -1;
    }
  }
  out.ledgers = std::move(st.ledgers);
  out.comm_stats = std::move(st.comm_stats);
  // Safe to read the lanes lock-free: every scheduler worker is joined
  // inside sched.run() above.
  if (st.recorder.enabled()) out.trace = st.recorder.collect();
  out.fired = std::move(st.fired);
  out.jittered_messages = st.jittered_messages;
  out.op_counts = std::move(st.op_counts);
  out.spill_op_counts = std::move(st.spill_op_counts);
  out.schedule = sched.schedule();
  if (cfg.enable_metrics) {
    // All workers joined inside sched.run(): the per-rank blocks are
    // quiescent and the full (series-bearing) snapshot is safe.
    out.has_metrics = true;
    out.metrics = st.metrics.snapshot();
    out.sampled_gauges = st.sampler.names();
    out.live_samples = st.sampler.samples();
  }
  out.failure_blocked = std::move(st.failure_blocked);
  out.failure_finished = std::move(st.failure_finished);
  st.sched = nullptr;
  return out;
}

}  // namespace

RunResult Cluster::run_collect(const std::function<void(Comm&)>& fn) {
  LaunchOutcome lo = launch(cfg_, fn);
  RunResult res;
  res.ledgers = std::move(lo.ledgers);
  res.comm_stats = std::move(lo.comm_stats);
  res.trace = std::move(lo.trace);
  res.comm_ops = std::move(lo.op_counts);
  res.spill_ops = std::move(lo.spill_op_counts);
  res.schedule = std::move(lo.schedule);
  res.jittered_messages = lo.jittered_messages;
  res.fault_events = std::move(lo.fired);
  std::sort(res.fault_events.begin(), res.fault_events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.op_index != b.op_index) return a.op_index < b.op_index;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  if (lo.primary) {
    res.ok = false;
    res.failed_rank = lo.failed_rank;
    res.failure = classify_failure(lo.primary);
    res.failure_detail = classify_detail(lo.primary);
    res.oom = res.failure == FailureClass::kOom;
    res.error = failure_what(lo.primary);
  }
  for (const auto& [rank, e] : lo.unwound) {
    res.rank_failures.push_back(
        RankFailure{rank, classify_failure(e), failure_what(e)});
  }
  if (lo.primary && lo.failed_rank < 0) {
    // Watchdog verdict: surface the deadlock itself in the per-rank list
    // position -1 so rank_failures covers the primary too.
    res.rank_failures.push_back(
        RankFailure{-1, res.failure, res.error});
  }
  std::sort(res.rank_failures.begin(), res.rank_failures.end(),
            [](const RankFailure& a, const RankFailure& b) {
              return a.rank < b.rank;
            });
  if (!res.ok) {
    const std::string path = resolve_postmortem_path(cfg_);
    if (!path.empty()) {
      // Best-effort by design: a bundle-write failure must never mask the
      // run failure being reported.
      try {
        write_flight_record(path, build_flight_record(lo, res));
        res.postmortem_path = path;
      } catch (const std::exception&) {
      }
    }
  }
  res.has_metrics = lo.has_metrics;
  res.metrics = std::move(lo.metrics);
  return res;
}

void Cluster::run(const std::function<void(Comm&)>& fn) {
  LaunchOutcome lo = launch(cfg_, fn);
  if (lo.primary) std::rethrow_exception(lo.primary);
}

void Cluster::run_once(const ClusterConfig& cfg,
                       const std::function<void(Comm&)>& fn) {
  Cluster(cfg).run(fn);
}

}  // namespace sdss::sim
