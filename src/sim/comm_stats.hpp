// Per-rank communication accounting.
//
// The runtime counts every point-to-point message and every collective a
// rank issues, with the bytes it pushes into the network. This is how the
// benches quantify claims like the paper's Section 5 observation that
// non-sampling sorts (bitonic: Θ(n log² p) volume) "need a significant
// amount of communication" compared to single-exchange sampling sorts.
//
// Collectives are implemented over internal point-to-point messages with
// scalable (logarithmic) algorithms; every internal message is attributed
// to the *algorithm* that issued it (CollAlg), so a bench report can show
// e.g. that an allreduce moved O(n log p) bytes per rank via recursive
// doubling instead of the O(p·n) a gather-to-root would cost.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace sdss::sim {

/// The collective algorithms the runtime can select. Each collective picks
/// by payload size: latency-optimal trees / Bruck for small payloads,
/// bandwidth-optimal ring / pairwise exchange for bulk data (thresholds in
/// sim/comm.cpp; rationale in DESIGN.md §7).
enum class CollAlg : std::uint8_t {
  kBarrierDissemination,
  kBcastBinomial,
  kGatherBinomial,
  kScatterBinomial,
  kAllgatherRecDoubling,
  kAllgatherBruck,
  kAllgatherRing,
  kAllgathervGatherBcast,
  kAllgathervRing,
  kAlltoallBruck,
  kAlltoallPairwise,
  kAlltoallvPairwise,
  kReduceBinomial,
  kAllreduceRecDoubling,
  kExscanDissemination,
};

inline constexpr std::size_t kNumCollAlgs = 15;

/// Stable identifier used in telemetry JSON ("algorithms" object keys).
constexpr const char* coll_alg_name(CollAlg a) {
  switch (a) {
    case CollAlg::kBarrierDissemination: return "barrier/dissemination";
    case CollAlg::kBcastBinomial: return "bcast/binomial";
    case CollAlg::kGatherBinomial: return "gather/binomial";
    case CollAlg::kScatterBinomial: return "scatter/binomial";
    case CollAlg::kAllgatherRecDoubling: return "allgather/recursive-doubling";
    case CollAlg::kAllgatherBruck: return "allgather/bruck";
    case CollAlg::kAllgatherRing: return "allgather/ring";
    case CollAlg::kAllgathervGatherBcast: return "allgatherv/gather-bcast";
    case CollAlg::kAllgathervRing: return "allgatherv/ring";
    case CollAlg::kAlltoallBruck: return "alltoall/bruck";
    case CollAlg::kAlltoallPairwise: return "alltoall/pairwise";
    case CollAlg::kAlltoallvPairwise: return "alltoallv/pairwise";
    case CollAlg::kReduceBinomial: return "reduce/binomial";
    case CollAlg::kAllreduceRecDoubling: return "allreduce/recursive-doubling";
    case CollAlg::kExscanDissemination: return "exscan/dissemination";
  }
  return "unknown";
}

/// Per-algorithm attribution: how many collective calls selected this
/// algorithm on this rank, and the internal messages/bytes it sent for them.
struct CollAlgStats {
  std::uint64_t calls = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes_out = 0;

  CollAlgStats& operator+=(const CollAlgStats& o) {
    calls += o.calls;
    messages += o.messages;
    bytes_out += o.bytes_out;
    return *this;
  }
};

struct CommStats {
  std::uint64_t p2p_messages = 0;   ///< point-to-point sends issued
  std::uint64_t p2p_bytes = 0;      ///< ... and their payload bytes
  std::uint64_t collectives = 0;    ///< collective operations entered
  std::uint64_t collective_bytes_out = 0;  ///< bytes this rank sent in them
  std::uint64_t collective_messages = 0;   ///< internal messages it sent

  /// Breakdown of the collective traffic by algorithm, indexed by CollAlg.
  std::array<CollAlgStats, kNumCollAlgs> per_alg{};

  const CollAlgStats& alg(CollAlg a) const {
    return per_alg[static_cast<std::size_t>(a)];
  }

  std::uint64_t total_bytes() const { return p2p_bytes + collective_bytes_out; }

  CommStats& operator+=(const CommStats& o) {
    p2p_messages += o.p2p_messages;
    p2p_bytes += o.p2p_bytes;
    collectives += o.collectives;
    collective_bytes_out += o.collective_bytes_out;
    collective_messages += o.collective_messages;
    for (std::size_t i = 0; i < kNumCollAlgs; ++i) per_alg[i] += o.per_alg[i];
    return *this;
  }
};

}  // namespace sdss::sim
