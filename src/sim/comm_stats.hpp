// Per-rank communication accounting.
//
// The runtime counts every point-to-point message and every collective a
// rank issues, with the bytes it pushes into the network. This is how the
// benches quantify claims like the paper's Section 5 observation that
// non-sampling sorts (bitonic: Θ(n log² p) volume) "need a significant
// amount of communication" compared to single-exchange sampling sorts.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sdss::sim {

struct CommStats {
  std::uint64_t p2p_messages = 0;   ///< point-to-point sends issued
  std::uint64_t p2p_bytes = 0;      ///< ... and their payload bytes
  std::uint64_t collectives = 0;    ///< collective operations entered
  std::uint64_t collective_bytes_out = 0;  ///< bytes contributed to them

  std::uint64_t total_bytes() const { return p2p_bytes + collective_bytes_out; }

  CommStats& operator+=(const CommStats& o) {
    p2p_messages += o.p2p_messages;
    p2p_bytes += o.p2p_bytes;
    collectives += o.collectives;
    collective_bytes_out += o.collective_bytes_out;
    return *this;
  }
};

}  // namespace sdss::sim
