// Cluster: the launcher of a simulated SPMD run.
//
// A Cluster runs one cooperatively scheduled fiber per simulated MPI rank
// on a small worker pool (sim/sched.hpp), hands each a world `Comm`, and
// waits for all of them. Decoupling ranks from OS threads is what lets a
// single host sweep 1k–8k ranks — the regime where the paper's weak-scaling
// figures live. Ranks are grouped into simulated nodes of
// `cores_per_node` consecutive ranks; the `NetworkModel` prices inter- and
// intra-node traffic. If any rank throws, the cluster aborts: all peers
// blocked in communication unwind with `SimAbortError` and the primary
// exception is surfaced (run) or captured (run_collect).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/chaos.hpp"
#include "sim/comm.hpp"
#include "sim/comm_stats.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"
#include "util/phase_ledger.hpp"

namespace sdss::sim {

struct ClusterConfig {
  int num_ranks = 1;
  int cores_per_node = 1;
  NetworkModel network{};
  /// Record phase spans, comm ops, chaos firings and counters into
  /// RunResult::trace. Defaults ON: the recorder is a lock-free per-rank
  /// bump-append buffer (see sim/trace.hpp) cheap enough for timed benches
  /// — bench/bench_trace.cpp gates the overhead at <= 5%. Disable only to
  /// reclaim the per-lane buffer memory on very large runs.
  bool enable_trace = true;
  /// Deterministic fault injection (see sim/chaos.hpp). Default: none.
  ChaosSpec chaos{};
  /// No-progress watchdog: when every live rank has been blocked in a
  /// receive/collective with no mailbox activity for this long (wall
  /// clock), the run aborts with a classified SimDeadlockError instead of
  /// hanging. 0 disables. The predicate is exact — a rank doing local
  /// compute, sleeping in the network model, or waiting on a modeled
  /// delivery time never counts as deadlocked — so the threshold only
  /// bounds detection latency, not correctness.
  double watchdog_timeout_s = 5.0;
  /// OS worker threads driving the rank fibers. 0 = scheduler default (2).
  /// 1 makes the rank interleaving fully deterministic (FIFO run-queue, no
  /// cross-thread races) when the network model is also deterministic.
  int sched_workers = 0;
  /// Stack bytes per rank fiber (0 = scheduler default, 512 KiB). Stacks
  /// are lazily committed with a guard page, so large-P runs reserve
  /// address space, not RAM.
  std::size_t fiber_stack_bytes = 0;
  /// Record the scheduler's resume order into RunResult::schedule (the
  /// interleaving-determinism tests use it; off by default).
  bool record_schedule = false;
  /// Always-on metrics registry (obs/metrics.hpp): counters, gauges and
  /// latency histograms emitted by comm/spill/driver instrumentation,
  /// aggregated into RunResult::metrics. bench/bench_metrics.cpp gates the
  /// overhead at <= 5% of critical-path CPU. Disable to reclaim the
  /// per-rank blocks on very large runs.
  bool enable_metrics = true;
  /// Wall-clock period of the live-gauge sampler service fiber. Its
  /// samples feed only the flight-recorder bundle (they are wall-clock
  /// paced, hence machine-dependent — see obs/sampler.hpp). 0 disables
  /// the sampler fiber entirely.
  double metrics_sampler_interval_s = 0.005;
  /// Bounded ring capacity of the live sampler (oldest samples dropped).
  std::size_t metrics_sampler_capacity = 256;
  /// Where to write the flight-recorder bundle on a classified failure.
  /// Empty = fall back to $SDSS_POSTMORTEM_DIR (bundle named
  /// postmortem-<n>.json there); both empty = no bundle.
  std::string postmortem_path;
};

/// How a failed run failed. `kPeerAbort` marks ranks that were unwound by
/// the cluster abort after another rank's primary failure; it never
/// classifies a whole run.
enum class FailureClass : std::uint8_t {
  kNone = 0,       ///< the run succeeded
  kOom,            ///< SimOomError: simulated memory budget exceeded
  kDeadlock,       ///< SimDeadlockError: the no-progress watchdog fired
  kInjectedCrash,  ///< SimInjectedFault: a chaos-engine crash
  kPeerAbort,      ///< SimAbortError: collateral of another rank's failure
  kSpillIoError,   ///< SpillIoError: spill-to-disk I/O failed (injected
                   ///< write failure, short read, checksum mismatch)
  kLogicError,     ///< anything else (CommError, std::exception, ...)
};

/// Stable lowercase-hyphen names ("none", "oom", "deadlock",
/// "injected-crash", "peer-abort", "spill-io", "logic-error") used in
/// telemetry reports.
const char* failure_class_name(FailureClass c);

/// One rank's classified failure. run_collect records an entry for every
/// rank that unwound — the primary *and* the secondary peer-abort
/// casualties — so nothing is swallowed.
struct RankFailure {
  int rank = -1;
  FailureClass failure = FailureClass::kNone;
  std::string error;  ///< what() of that rank's exception
};

/// Outcome of a run_collect(): per-rank phase ledgers plus error state, so a
/// bench harness can report simulated failures (e.g. HykSort's OOM) without
/// exceptions escaping.
struct RunResult {
  bool ok = true;
  std::string error;       ///< what() of the primary exception, if any
  int failed_rank = -1;    ///< rank that raised it (-1 for a deadlock)
  bool oom = false;        ///< primary exception was a SimOomError
  /// Classification of the primary failure (kNone when ok).
  FailureClass failure = FailureClass::kNone;
  /// One-line refinement of `failure` for triage without trace spelunking:
  /// the pipeline phase for an OOM ("exchange", "merge", ...), the spill op
  /// class for a spill I/O error ("spill-write", "spill-read"), empty
  /// otherwise.
  std::string failure_detail;
  /// Every rank that unwound, sorted by rank: the primary failure plus the
  /// peer-abort secondaries.
  std::vector<RankFailure> rank_failures;

  /// Chaos events that actually fired, sorted by (rank, op_index) so the
  /// same seed yields the same list run-to-run.
  std::vector<FaultEvent> fault_events;
  std::uint64_t jittered_messages = 0;  ///< p2p sends that got delivery jitter
  /// Per-rank count of public Comm operations issued (crash-point sweeps
  /// probe a fault-free run to learn the sweep range).
  std::vector<std::uint64_t> comm_ops;
  /// Per-rank count of spill I/O ops (writes + reloads); spill-fault sweeps
  /// probe a fault-free run to learn their sweep range the same way.
  std::vector<std::uint64_t> spill_ops;

  std::vector<PhaseLedger> ledgers;  ///< indexed by world rank
  std::vector<CommStats> comm_stats;  ///< indexed by world rank
  TraceLog trace;  ///< per-rank event timelines (empty when trace disabled)

  /// Fiber resume order (ranks, in sequence) when
  /// ClusterConfig::record_schedule was set; empty otherwise.
  std::vector<std::int32_t> schedule;

  /// Aggregated metrics snapshot (counters summed, gauges maxed, histogram
  /// buckets merged over ranks) when ClusterConfig::enable_metrics.
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;

  /// Path of the flight-recorder bundle actually written for this run's
  /// failure (empty when the run succeeded or no destination was
  /// configured).
  std::string postmortem_path;

  /// Critical-path breakdown: element-wise max over ranks.
  PhaseLedger max_ledger() const;

  /// Whole-cluster communication totals.
  CommStats total_comm() const;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);

  const ClusterConfig& config() const { return cfg_; }
  int num_ranks() const { return cfg_.num_ranks; }
  int num_nodes() const {
    return (cfg_.num_ranks + cfg_.cores_per_node - 1) / cfg_.cores_per_node;
  }

  /// Run `fn(world)` on every rank. Rethrows the first real exception any
  /// rank raised (ranks unwound by the abort are not reported).
  void run(const std::function<void(Comm&)>& fn);

  /// Like run(), but captures failure into the result instead of throwing.
  RunResult run_collect(const std::function<void(Comm&)>& fn);

  /// One-shot convenience: configure, run, discard.
  static void run_once(const ClusterConfig& cfg,
                       const std::function<void(Comm&)>& fn);

 private:
  ClusterConfig cfg_;
};

}  // namespace sdss::sim
