// Cluster: the launcher of a simulated SPMD run.
//
// A Cluster spawns one thread per simulated MPI rank, hands each a world
// `Comm`, and joins them. Ranks are grouped into simulated nodes of
// `cores_per_node` consecutive ranks; the `NetworkModel` prices inter- and
// intra-node traffic. If any rank throws, the cluster aborts: all peers
// blocked in communication unwind with `SimAbortError` and the primary
// exception is surfaced (run) or captured (run_collect).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/comm.hpp"
#include "sim/comm_stats.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"
#include "util/phase_ledger.hpp"

namespace sdss::sim {

struct ClusterConfig {
  int num_ranks = 1;
  int cores_per_node = 1;
  NetworkModel network{};
  /// Record every send/collective into RunResult::trace (see sim/trace.hpp).
  bool enable_trace = false;
};

/// Outcome of a run_collect(): per-rank phase ledgers plus error state, so a
/// bench harness can report simulated failures (e.g. HykSort's OOM) without
/// exceptions escaping.
struct RunResult {
  bool ok = true;
  std::string error;       ///< what() of the primary exception, if any
  int failed_rank = -1;    ///< rank that raised it
  bool oom = false;        ///< primary exception was a SimOomError
  std::vector<PhaseLedger> ledgers;  ///< indexed by world rank
  std::vector<CommStats> comm_stats;  ///< indexed by world rank
  std::vector<TraceEvent> trace;      ///< populated when enable_trace is set

  /// Critical-path breakdown: element-wise max over ranks.
  PhaseLedger max_ledger() const;

  /// Whole-cluster communication totals.
  CommStats total_comm() const;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);

  const ClusterConfig& config() const { return cfg_; }
  int num_ranks() const { return cfg_.num_ranks; }
  int num_nodes() const {
    return (cfg_.num_ranks + cfg_.cores_per_node - 1) / cfg_.cores_per_node;
  }

  /// Run `fn(world)` on every rank. Rethrows the first real exception any
  /// rank raised (ranks unwound by the abort are not reported).
  void run(const std::function<void(Comm&)>& fn);

  /// Like run(), but captures failure into the result instead of throwing.
  RunResult run_collect(const std::function<void(Comm&)>& fn);

  /// One-shot convenience: configure, run, discard.
  static void run_once(const ClusterConfig& cfg,
                       const std::function<void(Comm&)>& fn);

 private:
  ClusterConfig cfg_;
};

}  // namespace sdss::sim
