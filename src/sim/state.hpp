// Internal shared state of a simulated cluster run. Not part of the public
// API: include only from sim/*.cpp.
//
// Concurrency design: one big mutex (`mu`) guards all mailboxes, context
// registration, and the rank scheduler's run-queue. Ranks execute as
// cooperatively scheduled fibers (sim/sched.hpp): every blocking operation
// loops on a predicate that also observes the abort flag, yielding to the
// scheduler between tests, and wakers target the destination rank through
// `sched->wake()` under mu — level-triggered, so the lost-wakeup hazard of
// condition variables does not exist. A single lock is deliberately chosen
// over fine-grained locking: the runtime simulates a cluster for
// algorithm-behaviour studies, it is not itself the object of performance
// measurement, and one lock makes the blocking semantics easy to reason
// about and impossible to deadlock by lock ordering.
//
// Collectives are message-based: they run over the same mailboxes as user
// point-to-point traffic, but their messages carry `internal = true` and
// live in a separate matching namespace, so a collective can never steal a
// user receive (or vice versa) even under kAnySource/kAnyTag.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "sim/chaos.hpp"
#include "sim/comm_stats.hpp"
#include "sim/network.hpp"
#include "sim/sched.hpp"
#include "sim/trace.hpp"
#include "sortcore/spill_hook.hpp"
#include "util/phase_ledger.hpp"

namespace sdss::sim::detail {

using Clock = std::chrono::steady_clock;

/// Sender-side completion state for zero-copy collective sends: the number
/// of published blocks peers have not yet copied out. Guarded by
/// ClusterState::mu; lives on the sending rank's stack for the duration of
/// one collective call, which drains it to zero before returning.
struct ZcState {
  std::size_t outstanding = 0;
};

/// One in-flight point-to-point message. When `zc_data` is set the message
/// carries no payload copy: it is a loan of the sender's buffer, which stays
/// valid until the receiver copies it out and acknowledges via `zc_state`
/// (the sender blocks in its collective until all loans are returned).
struct Message {
  int ctx = 0;        ///< communicator context id
  int src = 0;        ///< sender's rank *within that communicator*
  int tag = 0;
  bool internal = false;  ///< collective-protocol traffic (separate namespace)
  Clock::time_point deliver_at{};  ///< earliest matchable time (network model)
  std::vector<std::byte> payload;
  const std::byte* zc_data = nullptr;  ///< borrowed sender buffer (or null)
  std::size_t zc_bytes = 0;
  ZcState* zc_state = nullptr;    ///< sender's completion counter
  int zc_sender_world = -1;       ///< world rank to wake on last ack
};

/// Per-world-rank mailbox: FIFO per (ctx, src, tag) by construction because
/// messages are appended in send order and matched front-to-back.
struct Mailbox {
  std::deque<Message> messages;
};

/// A blocked internal (collective-protocol) receive, published so a matching
/// sender can deposit straight into the receiver's buffer — no intermediate
/// Message, no allocation, one memcpy. Each rank runs at most one blocking
/// collective receive at a time, so one slot per world rank suffices. The
/// slot lives on the receiver's (fiber) stack; it is registered,
/// filled, and cleared entirely under ClusterState::mu.
///
/// Per-(ctx, src, tag) FIFO is preserved: the receiver only publishes a slot
/// after scanning its mailbox and finding no queued match, and sends are
/// serialized under the same mutex, so a direct deposit is always the oldest
/// message of its (ctx, src, tag) stream.
struct PostedCollRecv {
  int ctx = 0;
  int src = 0;  ///< sender's rank within the communicator (never wildcard)
  int tag = 0;
  std::size_t capacity = 0;
  std::size_t received = 0;  ///< payload size (valid once done)
  bool done = false;
  bool oversize = false;  ///< payload exceeded capacity; receiver throws
  /// Payload handed over by the sender (moved, not copied, under the lock);
  /// the receiver copies it into its own buffer outside the lock. Keeping
  /// every memcpy outside the mutex matters: on an oversubscribed host a
  /// copy under the one global lock convoys every other rank.
  std::vector<std::byte> stash;
  /// Zero-copy variant: instead of a stash the sender lends its buffer and
  /// the receiver copies from it directly, then acknowledges through
  /// `zc_state` (see Message).
  const std::byte* zc_data = nullptr;
  std::size_t zc_bytes = 0;
  ZcState* zc_state = nullptr;
  int zc_sender_world = -1;
};

/// A communicator's identity: the world ranks of its members, in
/// communicator-rank order. Stable once registered (contexts are never
/// erased), so collectives may hold a pointer to `world_ranks` across
/// unlocked regions.
struct ContextInfo {
  std::vector<int> world_ranks;
  bool intra_node = false;  ///< all members on the same simulated node
};

/// What a rank is currently blocked on, published for the deadlock watchdog
/// (guarded by ClusterState::mu; set and cleared inside the wait loops,
/// which already hold the lock). `op == nullptr` means the rank is running.
/// `has_deadline` marks a wait that will self-wake (a modeled-network
/// delivery time is pending) — such a rank is making progress, so the
/// watchdog never counts it toward a deadlock.
struct BlockedOp {
  const char* op = nullptr;  ///< "recv", "probe", "req_wait", "coll_recv", ...
  int src = -1;
  int tag = -1;
  int ctx = 0;
  bool has_deadline = false;
};

struct ClusterState;

/// Per-rank implementation of the spill subsystem's fault-injection surface
/// (sortcore/spill_hook.hpp): counts spill ops in `spill_op_counts` exactly
/// like comm ops, fires slow-disk stalls as cooperative scheduler sleeps
/// (watchdog-safe: a sleeping fiber is running, not blocked), and throws
/// SpillIoError for injected write failures. Handed to SpillPool via
/// Comm::spill_hook(). Methods are defined in chaos.cpp.
class RankSpillHook final : public SpillChaosHook {
 public:
  void init(ClusterState* st, int world_rank) {
    st_ = st;
    world_rank_ = world_rank;
  }
  std::uint64_t before_op(const char* op) override;
  bool corrupt_write(std::uint64_t k) override;

 private:
  ClusterState* st_ = nullptr;
  int world_rank_ = -1;
};

struct ClusterState {
  std::mutex mu;
  /// Fiber scheduler running the rank bodies; owned by launch() for the
  /// duration of the run. All wakeups — mailbox pushes, rendezvous fills,
  /// zero-copy acks, abort — go through sched->wake()/wake_all() with mu
  /// held, targeting exactly the destination rank so point-to-point traffic
  /// does not stampede every blocked fiber in the cluster.
  RankScheduler* sched = nullptr;

  int num_ranks = 0;
  int cores_per_node = 1;
  NetworkModel network;

  bool aborted = false;
  std::string abort_cause;

  std::vector<Mailbox> mailboxes;           // indexed by world rank
  /// Outstanding blocked collective receives, one slot per world rank
  /// (nullptr when that rank is not waiting). Guarded by mu.
  std::vector<PostedCollRecv*> posted_coll;
  std::map<int, ContextInfo> contexts;      // ctx id -> info
  int next_ctx = 1;                         // 0 is the world communicator

  std::vector<PhaseLedger> ledgers;         // indexed by world rank
  std::vector<CommStats> comm_stats;        // indexed by world rank

  bool trace_enabled = false;
  /// Per-rank metric blocks (obs/metrics.hpp). The scheduler rebinds a
  /// rank's block on every fiber resume, mirroring the trace lanes; the
  /// sampler service fiber reads live gauges concurrently through relaxed
  /// atomics. Disabled (0 ranks) when ClusterConfig::enable_metrics is off.
  obs::MetricsRegistry metrics;
  /// Live-gauge ring fed by the sampler service fiber. Wall-clock paced,
  /// so its samples are machine-dependent: they go ONLY into the
  /// flight-recorder bundle, never the telemetry report (see
  /// obs/sampler.hpp for the determinism contract). Guarded by mu.
  obs::LiveSampler sampler;
  /// Lock-free per-rank event lanes (plus one for the watchdog). The
  /// scheduler binds a rank's lane to whichever worker resumes its fiber
  /// (the fiber handoff orders cross-worker appends), and the worker joins
  /// at the end of RankScheduler::run() order the collect() read, like
  /// op_counts below.
  trace::TraceRecorder recorder;

  // --- chaos engine (see sim/chaos.hpp) ---------------------------------
  /// Immutable after launch; read concurrently by every rank.
  FaultPlan chaos;
  /// Per-rank count of public Comm operations issued. Each slot is written
  /// only by its owning rank fiber (no lock: the scheduler's fiber handoff
  /// orders writes across workers, and the worker joins at the end of the
  /// run order the final reads), so chaos decisions stay off the global
  /// mutex.
  std::vector<std::uint64_t> op_counts;
  /// Per-rank count of spill I/O ops (writes + reloads), same single-writer
  /// discipline as op_counts. Spill fault schedules index into this stream.
  std::vector<std::uint64_t> spill_op_counts;
  /// Per-rank spill chaos hooks (stable addresses: sized once at launch).
  std::vector<RankSpillHook> spill_hooks;
  std::vector<FaultEvent> fired;        ///< chaos events that fired (mu)
  std::uint64_t jittered_messages = 0;  ///< p2p sends that got jitter (mu)

  // --- deadlock watchdog bookkeeping (guarded by mu) --------------------
  std::vector<BlockedOp> blocked;       ///< indexed by world rank
  std::vector<std::uint8_t> finished;   ///< rank returned from fn
  /// Bumped on every state change a blocked rank could observe: a mailbox
  /// push, a message match/erase, a posted-slot fill, a zero-copy ack, a
  /// rank finishing. If every live rank is blocked (deadline-free) and this
  /// stays unchanged past the watchdog threshold, the run is deadlocked.
  std::uint64_t progress_epoch = 0;

  // --- failure forensics (guarded by mu) --------------------------------
  /// Snapshot of `blocked` / `finished` taken at the FIRST abort (a rank's
  /// primary exception or the watchdog verdict). The live tables are
  /// useless post-mortem: BlockedGuards clear them as the fibers unwind.
  /// Consumed by the flight recorder (obs/flight_recorder.hpp).
  std::vector<BlockedOp> failure_blocked;
  std::vector<std::uint8_t> failure_finished;

  int node_of(int world_rank) const { return world_rank / cores_per_node; }
};

/// Chaos hook: count one public Comm operation on `world_rank`, firing any
/// scheduled stall (sleeps) or crash (throws SimInjectedFault) for that op
/// index. Returns the op's 0-based ordinal. Called without st->mu held.
std::uint64_t chaos_before_op(ClusterState* st, int world_rank,
                              const char* op);

}  // namespace sdss::sim::detail
