// Internal shared state of a simulated cluster run. Not part of the public
// API: include only from sim/*.cpp.
//
// Concurrency design: one big mutex (`mu`) plus one condition variable (`cv`)
// guard all mailboxes, collective slots and context registration. Every
// blocking operation waits on `cv` with a predicate that also observes the
// abort flag, so a failing rank wakes every blocked peer. A single lock is
// deliberately chosen over fine-grained locking: the runtime simulates a
// cluster for algorithm-behaviour studies, it is not itself the object of
// performance measurement, and one lock makes the blocking semantics easy to
// reason about and impossible to deadlock by lock ordering.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/comm_stats.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"
#include "util/phase_ledger.hpp"

namespace sdss::sim::detail {

using Clock = std::chrono::steady_clock;

/// One in-flight point-to-point message.
struct Message {
  int ctx = 0;        ///< communicator context id
  int src = 0;        ///< sender's rank *within that communicator*
  int tag = 0;
  Clock::time_point deliver_at{};  ///< earliest matchable time (network model)
  std::vector<std::byte> payload;
};

/// Per-world-rank mailbox: FIFO per (ctx, src, tag) by construction because
/// messages are appended in send order and matched front-to-back.
struct Mailbox {
  std::deque<Message> messages;
};

/// Collective rendezvous slot: two-phase (arrive/deposit, then copy/depart)
/// protocol keyed by the communicator's context. All ranks of a communicator
/// must issue collectives in the same order, as in MPI.
struct CollSlot {
  enum class PhaseState { kArriving, kCopying };
  PhaseState phase = PhaseState::kArriving;
  std::uint64_t generation = 0;
  int arrived = 0;
  int departed = 0;

  // Deposited views of each participant's arguments; valid for the duration
  // of the collective because depositors block until everyone departed.
  std::vector<const void*> send_ptr;
  std::vector<std::size_t> send_bytes;
  std::vector<const std::size_t*> send_counts;  // per-peer byte counts (v-ops)
  std::vector<const std::size_t*> send_displs;  // per-peer byte displs (v-ops)

  void resize(int p) {
    send_ptr.assign(static_cast<std::size_t>(p), nullptr);
    send_bytes.assign(static_cast<std::size_t>(p), 0);
    send_counts.assign(static_cast<std::size_t>(p), nullptr);
    send_displs.assign(static_cast<std::size_t>(p), nullptr);
  }
};

/// A communicator's identity: the world ranks of its members, in
/// communicator-rank order.
struct ContextInfo {
  std::vector<int> world_ranks;
  CollSlot slot;
  bool intra_node = false;  ///< all members on the same simulated node
};

struct ClusterState {
  std::mutex mu;
  /// Collective-protocol and abort wakeups.
  std::condition_variable cv;
  /// Per-rank mailbox wakeups: a sender notifies only the destination
  /// rank's variable, so point-to-point traffic does not stampede every
  /// blocked thread in the cluster.
  std::vector<std::unique_ptr<std::condition_variable>> rank_cvs;

  std::condition_variable& rank_cv(int world_rank) {
    return *rank_cvs[static_cast<std::size_t>(world_rank)];
  }

  int num_ranks = 0;
  int cores_per_node = 1;
  NetworkModel network;

  bool aborted = false;
  std::string abort_cause;

  std::vector<Mailbox> mailboxes;           // indexed by world rank
  std::map<int, ContextInfo> contexts;      // ctx id -> info
  int next_ctx = 1;                         // 0 is the world communicator

  std::vector<PhaseLedger> ledgers;         // indexed by world rank
  std::vector<CommStats> comm_stats;        // indexed by world rank

  bool trace_enabled = false;
  Clock::time_point trace_epoch{};
  std::vector<TraceEvent> trace;            // guarded by mu

  double trace_now() const {
    return std::chrono::duration<double>(Clock::now() - trace_epoch).count();
  }

  int node_of(int world_rank) const { return world_rank / cores_per_node; }
};

}  // namespace sdss::sim::detail
