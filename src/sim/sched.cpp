#include "sim/sched.hpp"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "trace/recorder.hpp"
#include "util/error.hpp"
#include "util/fls.hpp"
#include "util/phase_ledger.hpp"

// ThreadSanitizer cannot see through a raw ucontext switch: its unwinder
// walks whatever stack the thread is on using the OS thread's recorded
// bounds, so the first event on a fiber stack reads into the guard page and
// kills the process. The TSan fiber API announces every stack switch.
#if defined(__SANITIZE_THREAD__)
#define SDSS_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SDSS_TSAN_FIBERS 1
#endif
#endif
#ifdef SDSS_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace sdss::sim::detail {

namespace {
constexpr int kDefaultWorkers = 2;
constexpr std::size_t kDefaultStackBytes = 512u * 1024u;
}  // namespace

struct Fiber {
  enum class St : std::uint8_t {
    kReady,        ///< in the run-queue
    kRunning,      ///< on a worker (or between "queued" and "switched in")
    kBlocked,      ///< parked in wait(); wake() re-queues it
    kBlockedTimed, ///< parked in wait_until(); wake() or the timer re-queues
    kSleeping,     ///< parked in sleep_for(); only its timer re-queues it
    kFinished,     ///< body returned; never resumed again
  };

  ucontext_t ctx{};
  /// Where to switch back to: the resuming worker's loop context. Rewritten
  /// by that worker before every switch-in, so it is correct even after the
  /// fiber migrates between workers.
  ucontext_t* ret = nullptr;
  RankScheduler* sched = nullptr;
  int rank = -1;
  /// Service fiber (sampler): runs its own body, excluded from idle(),
  /// schedule recording, finished counting, and trace/metrics binding.
  bool service = false;
  std::function<void()> service_fn;

  // Guarded by the cluster mutex.
  St state = St::kReady;
  /// Bumped whenever the fiber leaves a parked state; timer-heap entries
  /// carry the gen at arming time so entries that were superseded by an
  /// early wake() are recognized as stale and dropped.
  std::uint64_t gen = 0;

  /// Off-CPU handoff: true once the fiber's register state is fully saved
  /// and no worker is executing on its stack. The next resumer spins on it,
  /// closing the race where a wake lands between "state published under mu"
  /// and "switched out".
  std::atomic<bool> off_cpu{true};

  void* map_base = nullptr;  ///< mmap'd guard page + stack
  std::size_t map_len = 0;
  void* tsan_fiber = nullptr;  ///< TSan shadow state for this stack (or null)

  /// Context that follows the fiber across workers (see sched.hpp).
  fls::Block fls_block;
  double cpu_accum = 0.0;        ///< CPU seconds from completed time slices
  double cpu_resume_base = 0.0;  ///< worker's raw CPU clock at switch-in

  ~Fiber() {
#ifdef SDSS_TSAN_FIBERS
    if (tsan_fiber != nullptr) __tsan_destroy_fiber(tsan_fiber);
#endif
    if (map_base != nullptr) ::munmap(map_base, map_len);
  }
};

namespace {

using St = Fiber::St;

/// The fiber currently executing on this OS thread (null in worker loops
/// and on non-scheduler threads), and the worker loop's own context. Read
/// these only from frames that cannot straddle a context switch — or, in
/// wait()/sleep_for(), exactly once before the switch.
thread_local Fiber* t_fiber = nullptr;
thread_local ucontext_t t_worker_ctx;
#ifdef SDSS_TSAN_FIBERS
/// TSan's handle for the worker loop's own stack, captured at loop entry so
/// suspending fibers can announce the switch back.
thread_local void* t_worker_tsan_fiber = nullptr;
#endif

/// Announce an imminent swapcontext to TSan. Must be the last TSan-visible
/// operation before the switch itself (no locks/atomics in between).
inline void tsan_switch_to(Fiber* f) {
#ifdef SDSS_TSAN_FIBERS
  __tsan_switch_to_fiber(f->tsan_fiber, 0);
#else
  (void)f;
#endif
}
inline void tsan_switch_to_worker() {
#ifdef SDSS_TSAN_FIBERS
  __tsan_switch_to_fiber(t_worker_tsan_fiber, 0);
#endif
}

double raw_thread_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Virtualized CPU clock installed into util/phase_ledger: per-fiber when a
/// fiber is on this thread (its own accumulated slices, so a ledger span
/// that migrates workers still measures one rank's work), raw per-thread
/// otherwise. noinline: called around suspension points.
[[gnu::noinline]] double sched_cpu_seconds() {
  Fiber* f = t_fiber;
  if (f == nullptr) return raw_thread_cpu_seconds();
  return f->cpu_accum + (raw_thread_cpu_seconds() - f->cpu_resume_base);
}

void alloc_stack(Fiber* f, std::size_t stack_bytes) {
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t stack = (stack_bytes + page - 1) & ~(page - 1);
  const std::size_t len = stack + page;  // + low guard page
  void* base =
      ::mmap(nullptr, len, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) throw Error("sched: fiber stack mmap failed");
  if (::mprotect(static_cast<char*>(base) + page, stack,
                 PROT_READ | PROT_WRITE) != 0) {
    ::munmap(base, len);
    throw Error("sched: fiber stack mprotect failed");
  }
  f->map_base = base;
  f->map_len = len;
}

}  // namespace

/// Runs on the fiber's own stack. Never returns: after the body finishes
/// (the launcher's wrapper has already caught every exception) the fiber
/// marks itself finished and switches back to the worker for the last time.
void fiber_entry_point(Fiber* f) {
  RankScheduler* s = f->sched;
  if (f->service) {
    f->service_fn();
  } else {
    s->body_(f->rank);
  }
  {
    std::lock_guard<std::mutex> lk(*s->mu_);
    f->state = St::kFinished;
  }
  tsan_switch_to_worker();
  swapcontext(&f->ctx, f->ret);
  std::abort();  // a finished fiber must never be resumed
}

namespace {
/// makecontext entry (plain void() function): recover the fiber from the
/// worker's TLS, set immediately before the first switch-in.
void fiber_trampoline() { fiber_entry_point(t_fiber); }
}  // namespace

RankScheduler::RankScheduler(std::mutex* mu, int num_ranks, Config cfg)
    : mu_(mu), num_ranks_(num_ranks), cfg_(cfg) {
  // Route phase-ledger CPU attribution through the fiber-aware clock. The
  // override is global and permanent; it degrades to the raw per-thread
  // clock on any thread not running a fiber.
  sdss::detail::set_thread_cpu_clock(&sched_cpu_seconds);
}

RankScheduler::~RankScheduler() = default;

int RankScheduler::current_rank() {
  Fiber* f = t_fiber;
  return f != nullptr ? f->rank : -1;
}

void RankScheduler::make_ready(Fiber* f) {
  f->state = St::kReady;
  ++f->gen;
  if (!f->service) ++ready_ranks_;
  runq_.push_back(f);
  workers_cv_.notify_one();
}

void RankScheduler::add_service(std::function<void()> fn) {
  services_.push_back(std::move(fn));
}

void RankScheduler::wake(int world_rank) {
  if (fibers_.empty()) return;  // before run() / after teardown
  Fiber* f = fibers_[static_cast<std::size_t>(world_rank)].get();
  if (f->state == St::kBlocked || f->state == St::kBlockedTimed) {
    make_ready(f);
  }
}

void RankScheduler::wake_all() {
  for (auto& f : fibers_) {
    if (f->state == St::kBlocked || f->state == St::kBlockedTimed) {
      make_ready(f.get());
    }
  }
}

void RankScheduler::wait(std::unique_lock<std::mutex>& lk) {
  Fiber* f = t_fiber;  // read once: stale after the switch
  f->state = St::kBlocked;
  lk.unlock();
  tsan_switch_to_worker();
  swapcontext(&f->ctx, f->ret);
  lk.lock();
}

void RankScheduler::wait_until(std::unique_lock<std::mutex>& lk,
                               Clock::time_point deadline) {
  Fiber* f = t_fiber;
  f->state = St::kBlockedTimed;
  timers_.push(TimerEntry{deadline, f, f->gen});
  workers_cv_.notify_one();  // an idle worker may need the earlier deadline
  lk.unlock();
  tsan_switch_to_worker();
  swapcontext(&f->ctx, f->ret);
  lk.lock();
}

void RankScheduler::sleep_for(Clock::duration d) {
  Fiber* f = t_fiber;
  if (f == nullptr) {
    std::this_thread::sleep_for(d);
    return;
  }
  if (d <= Clock::duration::zero()) return;
  std::unique_lock<std::mutex> lk(*mu_);
  f->state = St::kSleeping;
  timers_.push(TimerEntry{Clock::now() + d, f, f->gen});
  workers_cv_.notify_one();
  lk.unlock();
  tsan_switch_to_worker();
  swapcontext(&f->ctx, f->ret);
}

void RankScheduler::resume(Fiber* f, std::unique_lock<std::mutex>& lk) {
  f->state = St::kRunning;
  if (!f->service) ++running_;
  if (cfg_.record_schedule && !f->service) schedule_.push_back(f->rank);
  lk.unlock();
  // Wait for the previous worker to fully vacate the fiber's stack. The
  // window is one swapcontext wide; yield instead of pure spinning because
  // on a single-core host the vacating worker needs the CPU to finish.
  while (!f->off_cpu.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  f->off_cpu.store(false, std::memory_order_relaxed);
  f->ret = &t_worker_ctx;
  t_fiber = f;
  // Service fibers never bind a lane or metric block: lane index R belongs
  // to the watchdog thread, and binding would make the sampler a second
  // writer of some rank's single-writer storage.
  if (rec_ != nullptr && !f->service) {
    trace::bind_thread(rec_, static_cast<std::size_t>(f->rank));
  }
  if (mreg_ != nullptr && !f->service) {
    obs::bind_thread(mreg_, static_cast<std::size_t>(f->rank));
  }
  fls::set_current(&f->fls_block);
  f->cpu_resume_base = raw_thread_cpu_seconds();
  tsan_switch_to(f);
  swapcontext(&t_worker_ctx, &f->ctx);
  // The fiber suspended (or finished). Tear its context off this thread
  // BEFORE publishing off_cpu: the release store is what licenses the next
  // worker to switch it back in.
  f->cpu_accum += raw_thread_cpu_seconds() - f->cpu_resume_base;
  fls::set_current(nullptr);
  if (rec_ != nullptr && !f->service) trace::unbind_thread();
  if (mreg_ != nullptr && !f->service) obs::unbind_thread();
  t_fiber = nullptr;
  f->off_cpu.store(true, std::memory_order_release);
  lk.lock();
  if (!f->service) --running_;
  if (f->state == St::kFinished && !f->service) {
    ++finished_;
    if (finished_ == num_ranks_) workers_cv_.notify_all();
  }
}

void RankScheduler::worker_loop() {
#ifdef SDSS_TSAN_FIBERS
  t_worker_tsan_fiber = __tsan_get_current_fiber();
#endif
  std::unique_lock<std::mutex> lk(*mu_);
  while (finished_ < num_ranks_) {
    // Promote expired timers (timed waits and sleeps) to the run-queue.
    const auto now = Clock::now();
    while (!timers_.empty() && timers_.top().when <= now) {
      const TimerEntry e = timers_.top();
      timers_.pop();
      if (e.gen == e.fiber->gen &&
          (e.fiber->state == St::kBlockedTimed ||
           e.fiber->state == St::kSleeping)) {
        make_ready(e.fiber);
      }
    }
    if (!runq_.empty()) {
      Fiber* f = runq_.front();
      runq_.pop_front();
      if (!f->service) --ready_ranks_;
      resume(f, lk);
      continue;
    }
    if (finished_ == num_ranks_) break;
    if (!timers_.empty()) {
      workers_cv_.wait_until(lk, timers_.top().when);
    } else {
      workers_cv_.wait(lk);
    }
  }
  workers_cv_.notify_all();
}

void RankScheduler::run(const std::function<void(int)>& body) {
  body_ = body;
  const std::size_t stack_bytes =
      cfg_.stack_bytes != 0 ? cfg_.stack_bytes : kDefaultStackBytes;
  {
    std::lock_guard<std::mutex> lk(*mu_);
    schedule_.clear();
    finished_ = 0;
    running_ = 0;
    ready_ranks_ = 0;
    // Rank fibers first (so fibers_[world_rank] indexing in wake() holds),
    // then the service fibers.
    fibers_.reserve(static_cast<std::size_t>(num_ranks_) + services_.size());
    auto make_fiber = [&](int rank) {
      auto f = std::make_unique<Fiber>();
      f->sched = this;
      f->rank = rank;
      alloc_stack(f.get(), stack_bytes);
      // getcontext fills uc_stack with the calling thread's stack; point it
      // at the fiber's own mapping (above the guard page) before makecontext.
      if (getcontext(&f->ctx) != 0) throw Error("sched: getcontext failed");
      const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
      f->ctx.uc_stack.ss_sp = static_cast<char*>(f->map_base) + page;
      f->ctx.uc_stack.ss_size = f->map_len - page;
      f->ctx.uc_link = nullptr;
      makecontext(&f->ctx, &fiber_trampoline, 0);
#ifdef SDSS_TSAN_FIBERS
      f->tsan_fiber = __tsan_create_fiber(0);
#endif
      runq_.push_back(f.get());
      fibers_.push_back(std::move(f));
      return fibers_.back().get();
    };
    for (int r = 0; r < num_ranks_; ++r) {
      make_fiber(r);
      ++ready_ranks_;
    }
    for (std::function<void()>& fn : services_) {
      Fiber* f = make_fiber(/*rank=*/-1);
      f->service = true;
      f->service_fn = std::move(fn);
    }
  }
  const int workers = cfg_.workers > 0 ? cfg_.workers : kDefaultWorkers;
  std::vector<std::thread> extra;
  extra.reserve(static_cast<std::size_t>(workers - 1));
  for (int i = 1; i < workers; ++i) {
    extra.emplace_back([this] { worker_loop(); });
  }
  worker_loop();  // the calling thread is worker 0
  for (auto& t : extra) t.join();
  {
    // All fibers finished and all workers joined: release the stacks now
    // rather than at destructor time (4k ranks hold ~2 GB of reservations).
    std::lock_guard<std::mutex> lk(*mu_);
    fibers_.clear();
    runq_.clear();
    ready_ranks_ = 0;
    while (!timers_.empty()) timers_.pop();
  }
  body_ = nullptr;
  services_.clear();
}

}  // namespace sdss::sim::detail
