// Public communicator interface of the simulated message-passing runtime.
//
// `Comm` mirrors the MPI subset SDS-Sort is written against: blocking and
// nonblocking point-to-point with tag matching, the collectives used by the
// algorithm (barrier, bcast, gather, allgather(v), alltoall(v), allreduce,
// exscan), and communicator splitting including split-by-node (the analogue
// of MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)). Ranks are cooperatively
// scheduled fibers inside a `Cluster` (see sim/cluster.hpp and
// sim/sched.hpp); every blocking call below parks the calling fiber on the
// rank scheduler instead of an OS condition variable. A Comm is a cheap
// value handle.
//
// Typed convenience wrappers (templates at the bottom) operate on
// trivially-copyable element types and element counts; the raw *_bytes
// methods are the actual transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "sim/comm_stats.hpp"
#include "util/error.hpp"
#include "util/phase_ledger.hpp"

namespace sdss {
class SpillChaosHook;  // sortcore/spill_hook.hpp
}

namespace sdss::sim {

class Comm;

namespace detail {
struct ClusterState;
struct RequestImpl;
/// Internal factory used by the Cluster launcher.
Comm make_comm(ClusterState* st, int ctx, int rank, int size, int world_rank);
}  // namespace detail

template <typename T>
concept Transportable = std::is_trivially_copyable_v<T>;

/// Handle to a nonblocking operation. Copyable (shared state); completed
/// send requests are trivially done, receive requests complete when a
/// matching message has been delivered (network model included).
class Request {
 public:
  Request() = default;

  /// True once the operation has completed. Non-blocking; a receive request
  /// polls its mailbox.
  bool test();

  /// Block until complete.
  void wait();

  /// Completed receive: number of bytes received.
  std::size_t bytes() const;
  /// Completed receive: actual source rank (useful with kAnySource).
  int source() const;

  bool valid() const { return impl_ != nullptr; }

  /// Block until at least one of `reqs` completes; returns the index of a
  /// newly completed request (requests already completed are skipped if
  /// `skip_done[i]` is true). Returns -1 if every request is already done.
  static int wait_any(std::span<Request> reqs, std::span<const char> skip_done);

 private:
  friend class Comm;
  std::shared_ptr<detail::RequestImpl> impl_;
};

class Comm {
 public:
  static constexpr int kAnySource = -1;
  static constexpr int kAnyTag = -1;
  /// Pass as `color` to split() to receive an invalid Comm (the rank opts
  /// out of the new communicator, like MPI_UNDEFINED).
  static constexpr int kUndefined = -1;

  Comm() = default;

  bool valid() const { return st_ != nullptr; }
  int rank() const { return rank_; }
  int size() const { return size_; }
  /// Rank within the whole cluster (the world communicator).
  int world_rank() const { return world_rank_; }
  /// Simulated node this rank lives on (world_rank / cores_per_node).
  int node_id() const;
  int cores_per_node() const;

  /// Per-rank phase ledger for time-breakdown reporting (Figs. 9/10).
  PhaseLedger& ledger() const;

  /// This rank's spill-op chaos/accounting hook, to hand to a SpillPool
  /// (sortcore/spill.hpp). Always non-null inside a cluster run: it counts
  /// spill ops into RunResult::spill_ops even with chaos disabled, and
  /// fires injected spill faults (stall/fail/corrupt) when enabled.
  SpillChaosHook* spill_hook() const;

  /// Per-rank communication counters (messages and bytes this rank sent).
  const CommStats& stats() const;

  // --- Point-to-point (raw bytes) -------------------------------------
  void send_bytes(const void* data, std::size_t bytes, int dest, int tag);
  /// Blocking receive; returns bytes received. Throws CommError if the
  /// message exceeds `capacity`. `out_src` receives the sender's rank.
  std::size_t recv_bytes(void* buf, std::size_t capacity, int src, int tag,
                         int* out_src = nullptr);
  /// Blocking probe: size in bytes of the next matching message, without
  /// removing it.
  std::size_t probe_bytes(int src, int tag, int* out_src = nullptr);
  Request isend_bytes(const void* data, std::size_t bytes, int dest, int tag);
  Request irecv_bytes(void* buf, std::size_t capacity, int src, int tag);

  // --- Collectives (raw bytes). All ranks of the communicator must call
  // the same collective in the same order. ------------------------------
  void barrier();
  void bcast_bytes(void* buf, std::size_t bytes, int root);
  /// Equal-size gather; `recv` (size * bytes) is used on the root only.
  void gather_bytes(const void* send, std::size_t bytes, void* recv, int root);
  void allgather_bytes(const void* send, std::size_t bytes, void* recv);
  void allgatherv_bytes(const void* send, std::size_t send_bytes, void* recv,
                        const std::size_t* recv_bytes,
                        const std::size_t* recv_displs);
  /// Equal-size scatter: root's `send` (size * bytes) is split by rank;
  /// every rank receives its `bytes` slice into `recv`.
  void scatter_bytes(const void* send, std::size_t bytes, void* recv,
                     int root);
  void alltoall_bytes(const void* send, std::size_t per_peer, void* recv);
  /// Irregular all-to-all; counts/displacements are in bytes, indexed by
  /// peer rank. Send and receive buffers must not alias. Each pair
  /// (scounts[me→s], rcounts[s→me]) is cross-validated; mismatch throws.
  void alltoallv_bytes(const void* send, const std::size_t* scounts,
                       const std::size_t* sdispls, void* recv,
                       const std::size_t* rcounts, const std::size_t* rdispls);

  // --- Reductions (raw bytes). The operator combines two whole buffers:
  // op(inout, in) must fold `in` into `inout`, where `inout` always holds
  // the lower-ranked segment — reductions combine in strict rank order, so
  // associativity suffices (commutativity is not required). ---------------
  using ReduceFn = std::function<void(void* inout, const void* in)>;
  /// Binomial-tree reduction onto `root`; `recv` is written on the root
  /// only. O(log p) messages and bytes per rank.
  void reduce_bytes(const void* send, void* recv, std::size_t bytes,
                    const ReduceFn& op, int root);
  /// Recursive-doubling allreduce (with non-power-of-two fold): every rank's
  /// `recv` gets the full reduction at O(bytes · log p) wire cost per rank.
  void allreduce_bytes(const void* send, void* recv, std::size_t bytes,
                       const ReduceFn& op);
  /// Dissemination exclusive scan: rank r's `recv` gets the fold of ranks
  /// 0..r-1. Rank 0's `recv` is left untouched — pre-fill it with the
  /// identity.
  void exscan_bytes(const void* send, void* recv, std::size_t bytes,
                    const ReduceFn& op);

  // --- Communicator management ----------------------------------------
  /// Split into sub-communicators by `color` (kUndefined opts out), ranked
  /// by (`key`, parent rank).
  Comm split(int color, int key) const;
  /// Sub-communicator of the ranks sharing this rank's simulated node.
  Comm split_by_node() const;

  // --- Typed convenience wrappers --------------------------------------
  template <Transportable T>
  void send(std::span<const T> data, int dest, int tag = 0) {
    send_bytes(data.data(), data.size_bytes(), dest, tag);
  }

  template <Transportable T>
  void send_value(const T& v, int dest, int tag = 0) {
    send_bytes(&v, sizeof(T), dest, tag);
  }

  /// Receive into `buf`; returns the number of elements received.
  template <Transportable T>
  std::size_t recv(std::span<T> buf, int src, int tag = 0,
                   int* out_src = nullptr) {
    const std::size_t b =
        recv_bytes(buf.data(), buf.size_bytes(), src, tag, out_src);
    if (b % sizeof(T) != 0) throw CommError("recv: size not element-aligned");
    return b / sizeof(T);
  }

  template <Transportable T>
  T recv_value(int src, int tag = 0, int* out_src = nullptr) {
    T v;
    if (recv_bytes(&v, sizeof(T), src, tag, out_src) != sizeof(T)) {
      throw CommError("recv_value: short message");
    }
    return v;
  }

  /// Probe-then-receive a message of unknown length.
  template <Transportable T>
  std::vector<T> recv_any_size(int src, int tag = 0, int* out_src = nullptr) {
    int actual = kAnySource;
    const std::size_t bytes = probe_bytes(src, tag, &actual);
    if (bytes % sizeof(T) != 0) {
      throw CommError("recv_any_size: size not element-aligned");
    }
    std::vector<T> out(bytes / sizeof(T));
    recv_bytes(out.data(), bytes, actual, tag, out_src);
    return out;
  }

  template <Transportable T>
  Request isend(std::span<const T> data, int dest, int tag = 0) {
    return isend_bytes(data.data(), data.size_bytes(), dest, tag);
  }

  template <Transportable T>
  Request irecv(std::span<T> buf, int src, int tag = 0) {
    return irecv_bytes(buf.data(), buf.size_bytes(), src, tag);
  }

  /// Buffered exchange with a partner (both sides send then receive; sends
  /// are buffered by the runtime so this cannot deadlock). Returns elements
  /// received.
  template <Transportable T>
  std::size_t sendrecv(std::span<const T> out, std::span<T> in, int partner,
                       int tag = 0) {
    send(out, partner, tag);
    return recv(in, partner, tag);
  }

  template <Transportable T>
  void bcast_value(T& v, int root) {
    bcast_bytes(&v, sizeof(T), root);
  }

  template <Transportable T>
  void bcast(std::span<T> data, int root) {
    bcast_bytes(data.data(), data.size_bytes(), root);
  }

  /// Gather one value per rank onto every rank.
  template <Transportable T>
  std::vector<T> allgather(const T& mine) {
    std::vector<T> out(static_cast<std::size_t>(size()));
    allgather_bytes(&mine, sizeof(T), out.data());
    return out;
  }

  /// Gather variable-length spans from every rank onto every rank,
  /// concatenated in rank order. `counts_out`, if non-null, receives the
  /// per-rank element counts.
  template <Transportable T>
  std::vector<T> allgatherv(std::span<const T> mine,
                            std::vector<std::size_t>* counts_out = nullptr) {
    const auto counts = allgather<std::size_t>(mine.size());
    std::vector<std::size_t> byte_counts(counts.size()), displs(counts.size());
    std::size_t off = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      byte_counts[i] = counts[i] * sizeof(T);
      displs[i] = off;
      off += byte_counts[i];
    }
    std::vector<T> out(off / sizeof(T));
    allgatherv_bytes(mine.data(), mine.size_bytes(), out.data(),
                     byte_counts.data(), displs.data());
    if (counts_out != nullptr) *counts_out = counts;
    return out;
  }

  /// One value to and from each peer.
  template <Transportable T>
  std::vector<T> alltoall(std::span<const T> one_per_peer) {
    if (one_per_peer.size() != static_cast<std::size_t>(size())) {
      throw CommError("alltoall: need exactly one element per peer");
    }
    std::vector<T> out(static_cast<std::size_t>(size()));
    alltoall_bytes(one_per_peer.data(), sizeof(T), out.data());
    return out;
  }

  /// Typed irregular all-to-all with element counts; writes into a
  /// preallocated receive buffer (counts must have been exchanged already,
  /// mirroring the paper's explicit count exchange in Fig. 1 steps 11-16).
  template <Transportable T>
  void alltoallv(std::span<const T> send, std::span<const std::size_t> scounts,
                 std::span<const std::size_t> sdispls, std::span<T> recv,
                 std::span<const std::size_t> rcounts,
                 std::span<const std::size_t> rdispls) {
    const auto p = static_cast<std::size_t>(size());
    if (scounts.size() != p || sdispls.size() != p || rcounts.size() != p ||
        rdispls.size() != p) {
      throw CommError("alltoallv: count/displacement arrays must have size p");
    }
    std::vector<std::size_t> sb(p), sd(p), rb(p), rd(p);
    for (std::size_t i = 0; i < p; ++i) {
      sb[i] = scounts[i] * sizeof(T);
      sd[i] = sdispls[i] * sizeof(T);
      rb[i] = rcounts[i] * sizeof(T);
      rd[i] = rdispls[i] * sizeof(T);
    }
    alltoallv_bytes(send.data(), sb.data(), sd.data(), recv.data(), rb.data(),
                    rd.data());
  }

  /// Scatter one value per rank from the root.
  template <Transportable T>
  T scatter_value(std::span<const T> send, int root) {
    if (rank() == root &&
        send.size() != static_cast<std::size_t>(size())) {
      throw CommError("scatter: root needs one element per rank");
    }
    T out;
    scatter_bytes(send.data(), sizeof(T), &out, root);
    return out;
  }

  /// Reduce a single value onto `root` via a binomial tree (other ranks get
  /// their own value back unchanged — check rank() == root before using the
  /// result). `op` must be associative; values combine in rank order.
  template <Transportable T, typename Op>
  T reduce(const T& mine, Op op, int root) {
    T out = mine;
    reduce_bytes(&mine, &out, sizeof(T), elementwise_fn<T>(op, 1), root);
    return out;
  }

  /// Reduce a single value with an associative op, result on all ranks.
  /// Recursive doubling: O(log p) messages per rank instead of the O(p)
  /// an allgather-everywhere would cost.
  template <Transportable T, typename Op>
  T allreduce(const T& mine, Op op) {
    T out;
    allreduce_bytes(&mine, &out, sizeof(T), elementwise_fn<T>(op, 1));
    return out;
  }

  /// Element-wise allreduce over equal-length vectors: recursive doubling
  /// on the whole vector, O(n log p) bytes per rank instead of the O(p·n)
  /// a gather-reduce-broadcast would cost.
  template <Transportable T, typename Op>
  std::vector<T> allreduce_vec(std::span<const T> mine, Op op) {
    std::vector<T> out(mine.begin(), mine.end());
    if (size() > 1) {
      allreduce_bytes(mine.data(), out.data(), mine.size_bytes(),
                      elementwise_fn<T>(op, mine.size()));
    }
    return out;
  }

  /// Exclusive prefix sum of one value per rank (rank 0 gets T{}).
  /// Dissemination scan: O(log p) messages per rank.
  template <Transportable T>
  T exscan_sum(const T& mine) {
    T out{};
    exscan_bytes(&mine, &out, sizeof(T),
                 elementwise_fn<T>([](const T& a, const T& b) { return a + b; },
                                   1));
    return out;
  }

 private:
  /// Wrap a binary element operator into a whole-buffer ReduceFn applied to
  /// `n` consecutive elements.
  template <Transportable T, typename Op>
  static ReduceFn elementwise_fn(Op op, std::size_t n) {
    return [op, n](void* inout, const void* in) {
      T* a = static_cast<T*>(inout);
      const T* b = static_cast<const T*>(in);
      for (std::size_t i = 0; i < n; ++i) a[i] = op(a[i], b[i]);
    };
  }

  friend Comm detail::make_comm(detail::ClusterState*, int, int, int, int);
  Comm(detail::ClusterState* st, int ctx, int rank, int size, int world_rank)
      : st_(st), ctx_(ctx), rank_(rank), size_(size), world_rank_(world_rank) {}

  void require_valid() const {
    if (!valid()) throw CommError("operation on an invalid communicator");
  }
  int world_rank_of(int comm_rank) const;

  detail::ClusterState* st_ = nullptr;
  int ctx_ = 0;
  int rank_ = 0;
  int size_ = 0;
  int world_rank_ = 0;
};

}  // namespace sdss::sim
