// RankScheduler: cooperative execution of simulated MPI ranks.
//
// Each rank runs as a stackful fiber (ucontext, mmap'd stack with a guard
// page) driven by an explicit run-queue on a small pool of OS worker
// threads. A rank holds a worker only while it is computing; every blocking
// point in sim/comm.cpp — p2p waits, collective rendezvous, zero-copy
// drains, modeled-network and chaos-stall sleeps — yields the fiber back to
// the scheduler, which resumes the next ready rank. That decouples the rank
// count from the OS thread count: the thread-per-rank launcher capped sweeps
// at ~64–128 ranks per host, while fibers run 1k–8k ranks in a handful of
// threads (the regime where the paper's weak-scaling figures live). See
// docs/SIMULATOR.md for the full design.
//
// Locking: the scheduler has no lock of its own. Run-queue, timer heap and
// fiber states are guarded by the same ClusterState::mu that already guards
// every mailbox, so the existing wait loops keep their shape — the
// condition-variable wait simply becomes a fiber yield under the same lock.
// The one hard rule is that mu is NEVER held across a context switch
// (unlocking a mutex from a different OS thread than locked it is undefined
// behaviour): a fiber publishes its state under mu, releases mu, and only
// then switches out. The gap this opens — a waker can see the fiber
// "blocked" and re-queue it before the old worker has actually switched off
// its stack — is closed by a per-fiber `off_cpu` handoff flag that the next
// worker spins on before switching in.
//
// Wakeups (wake / wake_all) are level-triggered and run under mu, so the
// lost-wakeup race of condition variables cannot occur: a waker either sees
// the fiber blocked and queues it, or the fiber has not yet blocked and
// will re-test its predicate (which the waker already made true) before
// yielding... the wait loops re-scan after every resume, as they always did.
//
// Timed waits (a modeled in-flight message's delivery time) and cooperative
// sleeps (the per-collective network charge, chaos stalls) park the fiber in
// a timer min-heap; idle workers sleep until the earliest deadline. A sleep
// is NOT interruptible by wake() — it models elapsed time, exactly like the
// std::this_thread::sleep_for it replaces — while a timed wait is.
//
// Per-rank context that used to ride on the rank's OS thread follows the
// fiber instead: the scheduler rebinds the trace lane (trace::bind_thread)
// and the fiber-local-storage block (util/fls.hpp) on every resume, and
// virtualizes the per-thread CPU clock (util/phase_ledger.hpp) so phase CPU
// attribution is per rank, not per worker.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

namespace sdss::trace {
class TraceRecorder;
}

namespace sdss::obs {
class MetricsRegistry;
}

namespace sdss::sim::detail {

struct Fiber;

class RankScheduler {
 public:
  using Clock = std::chrono::steady_clock;

  struct Config {
    /// OS worker threads that run the fibers. 0 = default (2). With 1, the
    /// interleaving is a deterministic function of the run-queue: FIFO
    /// resume order, no cross-thread races (the determinism tests and
    /// RunResult::schedule rely on this).
    int workers = 0;
    /// Stack bytes per fiber, rounded up to whole pages; 0 = default
    /// (512 KiB). Stacks are mmap'd lazily-committed with a PROT_NONE guard
    /// page below, so 4k ranks reserve ~2 GB of address space but touch
    /// only what they use — and an overflow faults loudly instead of
    /// corrupting a neighbouring stack.
    std::size_t stack_bytes = 0;
    /// Append each resumed fiber's rank to schedule() (the interleaving
    /// determinism tests read it back via RunResult::schedule).
    bool record_schedule = false;
  };

  /// `mu` is ClusterState::mu: all scheduler state is guarded by it.
  RankScheduler(std::mutex* mu, int num_ranks, Config cfg);
  ~RankScheduler();
  RankScheduler(const RankScheduler&) = delete;
  RankScheduler& operator=(const RankScheduler&) = delete;

  /// Bind rank fibers to this recorder's lanes on every resume (null = no
  /// tracing). Set before run().
  void set_trace(trace::TraceRecorder* rec) { rec_ = rec; }

  /// Bind rank fibers to this registry's per-rank metric blocks on every
  /// resume (null = no metrics). Set before run().
  void set_metrics(obs::MetricsRegistry* reg) { mreg_ = reg; }

  /// Register a service fiber to run alongside the ranks (the live-gauge
  /// sampler). Service fibers are runtime plumbing, not simulated ranks:
  /// they are excluded from idle() (so the deadlock watchdog's predicate
  /// stays exact), from schedule() recording (the interleaving determinism
  /// tests), and from trace/metrics lane binding (lane R belongs to the
  /// watchdog). run() does NOT wait for them — when the last rank finishes,
  /// a parked service fiber is simply never resumed again and its stack is
  /// torn down with the rest; a service body must yield promptly (sleep) so
  /// workers can observe the run ending. Call before run(); cleared after.
  void add_service(std::function<void()> fn);

  /// Run body(rank) for every rank to completion. The calling thread acts
  /// as worker 0; workers-1 extra threads are spawned for the duration.
  void run(const std::function<void(int)>& body);

  // --- fiber side (call only from inside a rank body) ---------------------

  /// Yield until wake(); `lk` (on the cluster mutex) is released across the
  /// switch and re-acquired before returning. Spurious returns are allowed
  /// and expected — callers loop on their predicate.
  void wait(std::unique_lock<std::mutex>& lk);

  /// Like wait(), but also self-wakes at `deadline` (modeled message
  /// delivery times).
  void wait_until(std::unique_lock<std::mutex>& lk, Clock::time_point deadline);

  /// Cooperatively sleep for `d`, yielding the worker meanwhile. Not
  /// interruptible by wake() — models elapsed simulated time. Falls back to
  /// std::this_thread::sleep_for off-fiber. Call WITHOUT the cluster mutex.
  void sleep_for(Clock::duration d);

  /// World rank of the calling fiber, -1 when not on a fiber.
  static int current_rank();

  // --- waker side (caller holds the cluster mutex) ------------------------

  /// Queue `world_rank` for resumption if it is blocked (timed or not).
  /// No-op on running/ready/sleeping/finished fibers.
  void wake(int world_rank);

  /// wake() every blocked fiber: cluster abort, watchdog probe/verdict.
  void wake_all();

  /// True iff no RANK fiber is ready to run or currently on a worker. The
  /// watchdog requires this before a deadlock verdict: a woken-but-not-yet-
  /// resumed fiber still shows its (stale) BlockedOp, and only idle()
  /// distinguishes "queued for CPU" from "waiting on a peer". Service
  /// fibers (the sampler) are deliberately excluded — they run on a timer
  /// regardless of rank progress, and counting them would reset the
  /// watchdog's no-progress window forever.
  bool idle() const { return ready_ranks_ == 0 && running_ == 0; }

  /// Resume order of the last run() (ranks, in resume sequence). Filled
  /// only when Config::record_schedule.
  const std::vector<std::int32_t>& schedule() const { return schedule_; }

 private:
  struct TimerEntry {
    Clock::time_point when;
    Fiber* fiber;
    std::uint64_t gen;  ///< stale once the fiber's gen moves on
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      return a.when > b.when;
    }
  };

  void worker_loop();
  void resume(Fiber* f, std::unique_lock<std::mutex>& lk);
  void make_ready(Fiber* f);

  std::mutex* mu_;
  const int num_ranks_;
  Config cfg_;
  trace::TraceRecorder* rec_ = nullptr;
  obs::MetricsRegistry* mreg_ = nullptr;
  std::function<void(int)> body_;
  std::vector<std::function<void()>> services_;

  // All below guarded by *mu_.
  std::condition_variable workers_cv_;
  std::deque<Fiber*> runq_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerLater> timers_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  int running_ = 0;      ///< rank fibers on a worker (service excluded)
  int ready_ranks_ = 0;  ///< rank fibers in the run-queue (service excluded)
  int finished_ = 0;
  std::vector<std::int32_t> schedule_;

  friend void fiber_entry_point(Fiber* f);
};

}  // namespace sdss::sim::detail
