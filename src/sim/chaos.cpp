#include "sim/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>

#include "sim/state.hpp"
#include "trace/recorder.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace sdss::sim {

namespace {

// Domain-separation salts for the per-decision hash streams: the same
// (seed, rank, op) must give independent stall and jitter draws.
constexpr std::uint64_t kSaltStallGate = 0x5354414c4c3f0001ULL;
constexpr std::uint64_t kSaltStallLen = 0x5354414c4c3f0002ULL;
constexpr std::uint64_t kSaltJitterGate = 0x4a49545445520001ULL;
constexpr std::uint64_t kSaltJitterLen = 0x4a49545445520002ULL;
constexpr std::uint64_t kSaltCrashRank = 0x435241534852414bULL;
constexpr std::uint64_t kSaltCrashOp = 0x43524153482d4f50ULL;
constexpr std::uint64_t kSaltSpillGate = 0x5350494c4c3f0001ULL;
constexpr std::uint64_t kSaltSpillLen = 0x5350494c4c3f0002ULL;

/// Pure-function 64-bit draw: no generator state, so the value a rank sees
/// for its op K never depends on what other ranks drew in the meantime.
std::uint64_t draw(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
                   std::uint64_t b) {
  std::uint64_t h = mix64(seed ^ salt);
  h = mix64(h ^ (a + 0x9e3779b97f4a7c15ULL));
  h = mix64(h ^ (b + 0x517cc1b727220a95ULL));
  return h;
}

double draw_u01(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
                std::uint64_t b) {
  return static_cast<double>(draw(seed, salt, a, b) >> 11) * 0x1.0p-53;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kJitter:
      return "jitter";
    case FaultKind::kSpillFail:
      return "spill-fail";
    case FaultKind::kSpillCorrupt:
      return "spill-corrupt";
    case FaultKind::kSpillStall:
      return "spill-stall";
  }
  return "unknown";
}

FaultKind fault_kind_from_name(const char* name) {
  if (std::strcmp(name, "stall") == 0) return FaultKind::kStall;
  if (std::strcmp(name, "jitter") == 0) return FaultKind::kJitter;
  if (std::strcmp(name, "spill-fail") == 0) return FaultKind::kSpillFail;
  if (std::strcmp(name, "spill-corrupt") == 0) return FaultKind::kSpillCorrupt;
  if (std::strcmp(name, "spill-stall") == 0) return FaultKind::kSpillStall;
  return FaultKind::kCrash;
}

FaultPlan::FaultPlan(const ChaosSpec& spec, int num_ranks) {
  if (num_ranks < 1 || !spec.any()) return;
  enabled_ = true;
  seed_ = spec.seed;
  stall_prob_ = spec.stall_prob;
  max_stall_s_ = spec.max_stall_s;
  jitter_prob_ = spec.jitter_prob;
  max_jitter_s_ = spec.max_jitter_s;
  spill_stall_prob_ = spec.spill_stall_prob;
  max_spill_stall_s_ = spec.max_spill_stall_s;
  crash_op_.assign(static_cast<std::size_t>(num_ranks), kNever);
  spill_fail_op_.assign(static_cast<std::size_t>(num_ranks), kNever);
  spill_corrupt_op_.assign(static_cast<std::size_t>(num_ranks), kNever);
  forced_stalls_.resize(static_cast<std::size_t>(num_ranks));
  forced_spill_stalls_.resize(static_cast<std::size_t>(num_ranks));

  // Derived crashes: pick `crash_ranks` distinct victims by iterating the
  // draw stream (deterministic; duplicates advance the stream).
  const int want = std::min(spec.crash_ranks, num_ranks);
  int chosen = 0;
  for (std::uint64_t i = 0; chosen < want; ++i) {
    const int victim = static_cast<int>(
        draw(seed_, kSaltCrashRank, i, 0) %
        static_cast<std::uint64_t>(num_ranks));
    auto& slot = crash_op_[static_cast<std::size_t>(victim)];
    if (slot != kNever) continue;
    const std::uint64_t range = std::max<std::uint64_t>(spec.crash_op_range, 1);
    slot = draw(seed_, kSaltCrashOp, i, static_cast<std::uint64_t>(victim)) %
           range;
    ++chosen;
  }

  // Forced events override/extend the derived schedule.
  for (const FaultEvent& e : spec.forced) {
    if (e.rank < 0 || e.rank >= num_ranks) {
      throw Error("chaos: forced fault event rank out of range");
    }
    const auto r = static_cast<std::size_t>(e.rank);
    switch (e.kind) {
      case FaultKind::kCrash:
        crash_op_[r] = std::min(crash_op_[r], e.op_index);
        break;
      case FaultKind::kStall:
        forced_stalls_[r].push_back(e);
        break;
      case FaultKind::kJitter:
        break;  // jitter is rate-based only
      case FaultKind::kSpillFail:
        spill_fail_op_[r] = std::min(spill_fail_op_[r], e.op_index);
        break;
      case FaultKind::kSpillCorrupt:
        spill_corrupt_op_[r] = std::min(spill_corrupt_op_[r], e.op_index);
        break;
      case FaultKind::kSpillStall:
        forced_spill_stalls_[r].push_back(e);
        break;
    }
  }
  for (auto* lists : {&forced_stalls_, &forced_spill_stalls_}) {
    for (auto& stalls : *lists) {
      std::sort(stalls.begin(), stalls.end(),
                [](const FaultEvent& a, const FaultEvent& b) {
                  return a.op_index < b.op_index;
                });
    }
  }
}

std::uint64_t FaultPlan::crash_op(int rank) const {
  if (!enabled_ || rank < 0 ||
      static_cast<std::size_t>(rank) >= crash_op_.size()) {
    return kNever;
  }
  return crash_op_[static_cast<std::size_t>(rank)];
}

double FaultPlan::stall_before(int rank, std::uint64_t k) const {
  if (!enabled_) return 0.0;
  double total = 0.0;
  const auto& stalls = forced_stalls_[static_cast<std::size_t>(rank)];
  // The per-rank forced list is tiny (a sweep schedules one or two events).
  for (const FaultEvent& e : stalls) {
    if (e.op_index == k) total += e.seconds;
    if (e.op_index > k) break;
  }
  if (stall_prob_ > 0.0 &&
      draw_u01(seed_, kSaltStallGate, static_cast<std::uint64_t>(rank), k) <
          stall_prob_) {
    total += max_stall_s_ *
             draw_u01(seed_, kSaltStallLen, static_cast<std::uint64_t>(rank), k);
  }
  return total;
}

std::uint64_t FaultPlan::spill_fail_op(int rank) const {
  if (!enabled_ || rank < 0 ||
      static_cast<std::size_t>(rank) >= spill_fail_op_.size()) {
    return kNever;
  }
  return spill_fail_op_[static_cast<std::size_t>(rank)];
}

std::uint64_t FaultPlan::spill_corrupt_op(int rank) const {
  if (!enabled_ || rank < 0 ||
      static_cast<std::size_t>(rank) >= spill_corrupt_op_.size()) {
    return kNever;
  }
  return spill_corrupt_op_[static_cast<std::size_t>(rank)];
}

double FaultPlan::spill_stall_before(int rank, std::uint64_t k) const {
  if (!enabled_) return 0.0;
  double total = 0.0;
  const auto& stalls = forced_spill_stalls_[static_cast<std::size_t>(rank)];
  for (const FaultEvent& e : stalls) {
    if (e.op_index == k) total += e.seconds;
    if (e.op_index > k) break;
  }
  if (spill_stall_prob_ > 0.0 &&
      draw_u01(seed_, kSaltSpillGate, static_cast<std::uint64_t>(rank), k) <
          spill_stall_prob_) {
    total += max_spill_stall_s_ *
             draw_u01(seed_, kSaltSpillLen, static_cast<std::uint64_t>(rank), k);
  }
  return total;
}

double FaultPlan::jitter_for(int rank, std::uint64_t k) const {
  if (!enabled_ || jitter_prob_ <= 0.0) return 0.0;
  if (draw_u01(seed_, kSaltJitterGate, static_cast<std::uint64_t>(rank), k) >=
      jitter_prob_) {
    return 0.0;
  }
  return max_jitter_s_ *
         draw_u01(seed_, kSaltJitterLen, static_cast<std::uint64_t>(rank), k);
}

namespace detail {

std::uint64_t chaos_before_op(ClusterState* st, int world_rank,
                              const char* op) {
  const auto r = static_cast<std::size_t>(world_rank);
  const std::uint64_t k = st->op_counts[r]++;
  const FaultPlan& plan = st->chaos;
  if (!plan.enabled()) return k;

  const double stall = plan.stall_before(world_rank, k);
  if (stall > 0.0) {
    {
      std::lock_guard<std::mutex> lk(st->mu);
      st->fired.push_back(
          FaultEvent{FaultKind::kStall, world_rank, k, stall});
    }
    // Runs on the victim rank's fiber, so the instant lands on its lane —
    // visible in the Perfetto timeline right where the stall began.
    if (trace::active()) {
      trace::instant(trace::EventCat::kChaos, "stall", k, -1,
                     static_cast<std::uint64_t>(stall * 1e9));
    }
    // Cooperative sleep outside the lock: a straggler parks only its own
    // fiber; the worker keeps running other ranks meanwhile.
    st->sched->sleep_for(std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(stall)));
  }
  if (plan.crash_op(world_rank) == k) {
    {
      std::lock_guard<std::mutex> lk(st->mu);
      st->fired.push_back(FaultEvent{FaultKind::kCrash, world_rank, k, 0.0});
    }
    if (trace::active()) {
      trace::instant(trace::EventCat::kChaos, "crash", k);
    }
    throw SimInjectedFault(world_rank, k, op, plan.seed());
  }
  return k;
}

std::uint64_t RankSpillHook::before_op(const char* op) {
  ClusterState* st = st_;
  const auto r = static_cast<std::size_t>(world_rank_);
  const std::uint64_t k = st->spill_op_counts[r]++;
  const FaultPlan& plan = st->chaos;
  if (!plan.enabled()) return k;

  const double stall = plan.spill_stall_before(world_rank_, k);
  if (stall > 0.0) {
    {
      std::lock_guard<std::mutex> lk(st->mu);
      st->fired.push_back(
          FaultEvent{FaultKind::kSpillStall, world_rank_, k, stall});
    }
    if (trace::active()) {
      trace::instant(trace::EventCat::kChaos, "spill-stall", k, -1,
                     static_cast<std::uint64_t>(stall * 1e9));
    }
    // Cooperative sleep, never a blocked wait: a slow disk parks only this
    // fiber and keeps counting as progress, so the deadlock watchdog never
    // mistakes spill I/O for a hang.
    st->sched->sleep_for(std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(stall)));
  }
  if (plan.spill_fail_op(world_rank_) == k) {
    {
      std::lock_guard<std::mutex> lk(st->mu);
      st->fired.push_back(
          FaultEvent{FaultKind::kSpillFail, world_rank_, k, 0.0});
    }
    if (trace::active()) {
      trace::instant(trace::EventCat::kChaos, "spill-fail", k);
    }
    throw SpillIoError(world_rank_, k, op,
                       "injected spill I/O failure (chaos seed " +
                           std::to_string(plan.seed()) + ")");
  }
  return k;
}

bool RankSpillHook::corrupt_write(std::uint64_t k) {
  ClusterState* st = st_;
  const FaultPlan& plan = st->chaos;
  if (!plan.enabled() || plan.spill_corrupt_op(world_rank_) != k) return false;
  {
    std::lock_guard<std::mutex> lk(st->mu);
    st->fired.push_back(
        FaultEvent{FaultKind::kSpillCorrupt, world_rank_, k, 0.0});
  }
  if (trace::active()) {
    trace::instant(trace::EventCat::kChaos, "spill-corrupt", k);
  }
  return true;
}

}  // namespace detail

}  // namespace sdss::sim

