#include "sim/comm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <exception>
#include <thread>

#include "sim/state.hpp"

namespace sdss::sim {

namespace detail {
Comm make_comm(ClusterState* st, int ctx, int rank, int size, int world_rank) {
  return Comm(st, ctx, rank, size, world_rank);
}
}  // namespace detail

using detail::Clock;
using detail::CollSlot;
using detail::ClusterState;
using detail::ContextInfo;
using detail::Mailbox;
using detail::Message;

namespace {

void check_abort(const ClusterState& st) {
  if (st.aborted) throw SimAbortError(st.abort_cause);
}

/// Result of scanning a mailbox for a match.
struct MatchScan {
  bool ready = false;                     // a deliverable match exists
  std::deque<Message>::iterator it{};     // ... at this position
  bool future = false;                    // a match exists but is in flight
  Clock::time_point deadline{};           // ... deliverable at this time
};

/// Find the first matching message. Per-source FIFO is preserved: if the
/// first match from some source is still in flight, later messages from that
/// source are not allowed to overtake it.
MatchScan scan_mailbox(Mailbox& mb, int ctx, int src, int tag,
                       Clock::time_point now) {
  MatchScan r;
  // Sources whose earliest match is still in flight; at most a handful of
  // distinct sources have traffic pending in practice, linear scan is fine.
  std::vector<int> blocked;
  for (auto it = mb.messages.begin(); it != mb.messages.end(); ++it) {
    if (it->ctx != ctx) continue;
    if (src != Comm::kAnySource && it->src != src) continue;
    if (tag != Comm::kAnyTag && it->tag != tag) continue;
    if (std::find(blocked.begin(), blocked.end(), it->src) != blocked.end()) {
      continue;
    }
    if (it->deliver_at <= now) {
      r.ready = true;
      r.it = it;
      return r;
    }
    if (!r.future || it->deliver_at < r.deadline) {
      r.future = true;
      r.deadline = it->deliver_at;
    }
    if (src != Comm::kAnySource) return r;  // specific source: stop here
    blocked.push_back(it->src);
  }
  return r;
}

std::size_t ceil_log2(std::size_t p) {
  std::size_t bits = 0;
  std::size_t v = 1;
  while (v < p) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

/// Record a collective's contribution to this rank's counters and trace,
/// then sleep for its modeled network cost (outside any lock).
void charge(ClusterState& st, int world_rank, bool intra_node,
            std::size_t messages, std::size_t bytes_out, std::size_t bytes_in,
            const char* op) {
  CommStats& cs = st.comm_stats[static_cast<std::size_t>(world_rank)];
  ++cs.collectives;
  cs.collective_bytes_out += bytes_out;
  double modeled = 0.0;
  if (st.network.enabled() &&
      (messages != 0 || bytes_out != 0 || bytes_in != 0)) {
    modeled =
        st.network.exchange_time(messages, bytes_out, bytes_in, intra_node);
  }
  if (st.trace_enabled) {
    std::lock_guard<std::mutex> lk(st.mu);
    const double now = st.trace_now();
    st.trace.push_back(TraceEvent{TraceEvent::Kind::kCollective, world_rank,
                                  -1, op, bytes_out, now, now + modeled});
  }
  if (modeled > 0.0) std::this_thread::sleep_for(st.network.to_duration(modeled));
}

}  // namespace

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

namespace detail {
struct RequestImpl {
  ClusterState* st = nullptr;
  int ctx = 0;
  int world_rank = 0;  // owner's world rank (mailbox index)
  bool is_recv = false;
  void* buf = nullptr;
  std::size_t capacity = 0;
  int src = Comm::kAnySource;
  int tag = Comm::kAnyTag;

  bool completed = false;
  std::size_t received = 0;
  int actual_src = -1;

  /// Try to complete a receive. Caller holds st->mu. Returns the deadline of
  /// an in-flight match via `out` when not completable yet.
  bool try_complete(MatchScan* out) {
    if (completed) return true;
    Mailbox& mb = st->mailboxes[static_cast<std::size_t>(world_rank)];
    MatchScan m = scan_mailbox(mb, ctx, src, tag, Clock::now());
    if (m.ready) {
      const Message& msg = *m.it;
      if (msg.payload.size() > capacity) {
        throw CommError("irecv: message larger than receive buffer");
      }
      std::memcpy(buf, msg.payload.data(), msg.payload.size());
      received = msg.payload.size();
      actual_src = msg.src;
      mb.messages.erase(m.it);
      completed = true;
      return true;
    }
    if (out != nullptr) *out = m;
    return false;
  }
};
}  // namespace detail

bool Request::test() {
  if (!impl_) throw CommError("test() on an empty request");
  if (impl_->completed) return true;
  std::lock_guard<std::mutex> lk(impl_->st->mu);
  check_abort(*impl_->st);
  return impl_->try_complete(nullptr);
}

void Request::wait() {
  if (!impl_) throw CommError("wait() on an empty request");
  if (impl_->completed) return;
  std::unique_lock<std::mutex> lk(impl_->st->mu);
  auto& cv = impl_->st->rank_cv(impl_->world_rank);
  for (;;) {
    check_abort(*impl_->st);
    MatchScan m;
    if (impl_->try_complete(&m)) return;
    if (m.future) {
      cv.wait_until(lk, m.deadline);
    } else {
      cv.wait(lk);
    }
  }
}

std::size_t Request::bytes() const {
  if (!impl_) throw CommError("bytes() on an empty request");
  return impl_->received;
}

int Request::source() const {
  if (!impl_) throw CommError("source() on an empty request");
  return impl_->actual_src;
}

int Request::wait_any(std::span<Request> reqs, std::span<const char> skip) {
  ClusterState* st = nullptr;
  for (auto& r : reqs) {
    if (r.impl_) {
      st = r.impl_->st;
      break;
    }
  }
  if (st == nullptr) return -1;
  int owner = -1;
  for (auto& r : reqs) {
    if (r.impl_) {
      owner = r.impl_->world_rank;
      break;
    }
  }
  std::unique_lock<std::mutex> lk(st->mu);
  auto& owner_cv = st->rank_cv(owner);
  for (;;) {
    check_abort(*st);
    bool any_pending = false;
    bool have_deadline = false;
    Clock::time_point deadline{};
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (i < skip.size() && skip[i]) continue;
      auto& impl = reqs[i].impl_;
      if (!impl) continue;
      if (impl->completed) return static_cast<int>(i);
      any_pending = true;
      MatchScan m;
      if (impl->try_complete(&m)) return static_cast<int>(i);
      if (m.future && (!have_deadline || m.deadline < deadline)) {
        have_deadline = true;
        deadline = m.deadline;
      }
    }
    if (!any_pending) return -1;
    if (have_deadline) {
      owner_cv.wait_until(lk, deadline);
    } else {
      owner_cv.wait(lk);
    }
  }
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

int Comm::world_rank_of(int comm_rank) const {
  // Caller must hold st_->mu.
  const ContextInfo& info = st_->contexts.at(ctx_);
  return info.world_ranks[static_cast<std::size_t>(comm_rank)];
}

void Comm::send_bytes(const void* data, std::size_t bytes, int dest, int tag) {
  require_valid();
  if (dest < 0 || dest >= size_) throw CommError("send: destination out of range");
  Message msg;
  msg.ctx = ctx_;
  msg.src = rank_;
  msg.tag = tag;
  msg.payload.resize(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);

  std::lock_guard<std::mutex> lk(st_->mu);
  check_abort(*st_);
  const int dest_world = world_rank_of(dest);
  const bool intra = st_->node_of(dest_world) == st_->node_of(world_rank_);
  msg.deliver_at = Clock::now();
  if (st_->network.enabled()) {
    msg.deliver_at += st_->network.to_duration(
        st_->network.message_time(bytes, intra));
  }
  st_->mailboxes[static_cast<std::size_t>(dest_world)].messages.push_back(
      std::move(msg));
  CommStats& cs = st_->comm_stats[static_cast<std::size_t>(world_rank_)];
  ++cs.p2p_messages;
  cs.p2p_bytes += bytes;
  if (st_->trace_enabled) {
    const double now = st_->trace_now();
    st_->trace.push_back(TraceEvent{TraceEvent::Kind::kSend, world_rank_,
                                    dest_world, "send", bytes, now, now});
  }
  st_->rank_cv(dest_world).notify_all();
}

std::size_t Comm::recv_bytes(void* buf, std::size_t capacity, int src, int tag,
                             int* out_src) {
  require_valid();
  std::unique_lock<std::mutex> lk(st_->mu);
  Mailbox& mb = st_->mailboxes[static_cast<std::size_t>(world_rank_)];
  auto& cv = st_->rank_cv(world_rank_);
  for (;;) {
    check_abort(*st_);
    MatchScan m = scan_mailbox(mb, ctx_, src, tag, Clock::now());
    if (m.ready) {
      const Message& msg = *m.it;
      if (msg.payload.size() > capacity) {
        throw CommError("recv: message larger than receive buffer");
      }
      const std::size_t n = msg.payload.size();
      if (n > 0) std::memcpy(buf, msg.payload.data(), n);
      if (out_src != nullptr) *out_src = msg.src;
      mb.messages.erase(m.it);
      return n;
    }
    if (m.future) {
      cv.wait_until(lk, m.deadline);
    } else {
      cv.wait(lk);
    }
  }
}

std::size_t Comm::probe_bytes(int src, int tag, int* out_src) {
  require_valid();
  std::unique_lock<std::mutex> lk(st_->mu);
  Mailbox& mb = st_->mailboxes[static_cast<std::size_t>(world_rank_)];
  auto& cv = st_->rank_cv(world_rank_);
  for (;;) {
    check_abort(*st_);
    MatchScan m = scan_mailbox(mb, ctx_, src, tag, Clock::now());
    if (m.ready) {
      if (out_src != nullptr) *out_src = m.it->src;
      return m.it->payload.size();
    }
    if (m.future) {
      cv.wait_until(lk, m.deadline);
    } else {
      cv.wait(lk);
    }
  }
}

Request Comm::isend_bytes(const void* data, std::size_t bytes, int dest,
                          int tag) {
  // Eager buffered send: the payload is copied into the destination mailbox
  // immediately, so the request completes at once. The network model still
  // delays *matching* on the receiver side via deliver_at.
  send_bytes(data, bytes, dest, tag);
  Request r;
  r.impl_ = std::make_shared<detail::RequestImpl>();
  r.impl_->st = st_;
  r.impl_->completed = true;
  return r;
}

Request Comm::irecv_bytes(void* buf, std::size_t capacity, int src, int tag) {
  require_valid();
  Request r;
  r.impl_ = std::make_shared<detail::RequestImpl>();
  auto& impl = *r.impl_;
  impl.st = st_;
  impl.ctx = ctx_;
  impl.world_rank = world_rank_;
  impl.is_recv = true;
  impl.buf = buf;
  impl.capacity = capacity;
  impl.src = src;
  impl.tag = tag;
  return r;
}

// ---------------------------------------------------------------------------
// Collective machinery
// ---------------------------------------------------------------------------

namespace {

/// Runs the two-phase collective protocol. `deposit` publishes this rank's
/// arguments into the slot (called under the lock); `copy` moves data (called
/// WITHOUT the lock; peer deposits are stable because every rank blocks until
/// all ranks departed).
template <typename DepositFn, typename CopyFn>
void run_collective(ClusterState* st, int ctx, int size, DepositFn&& deposit,
                    CopyFn&& copy) {
  std::unique_lock<std::mutex> lk(st->mu);
  ContextInfo& info = st->contexts.at(ctx);
  CollSlot& slot = info.slot;

  // Wait for the slot to accept a new collective (the previous one must have
  // fully drained).
  while (slot.phase != CollSlot::PhaseState::kArriving) {
    check_abort(*st);
    st->cv.wait(lk);
  }
  check_abort(*st);

  deposit(slot);
  const std::uint64_t my_gen = slot.generation;
  if (++slot.arrived == size) {
    slot.phase = CollSlot::PhaseState::kCopying;
    st->cv.notify_all();
  } else {
    while (!(slot.phase == CollSlot::PhaseState::kCopying &&
             slot.generation == my_gen)) {
      check_abort(*st);
      st->cv.wait(lk);
    }
  }

  // The copy runs without the lock; peer buffers stay valid because every
  // rank blocks below until all ranks departed. If OUR copy throws (e.g. a
  // count-validation error), the departure bookkeeping must still happen
  // before unwinding — otherwise peers still copying could read this
  // rank's send buffer after the caller destroys it.
  lk.unlock();
  std::exception_ptr copy_error;
  try {
    copy(static_cast<const CollSlot&>(slot),
         static_cast<const ContextInfo&>(info));
  } catch (...) {
    copy_error = std::current_exception();
  }
  lk.lock();

  if (++slot.departed == size) {
    slot.arrived = 0;
    slot.departed = 0;
    slot.phase = CollSlot::PhaseState::kArriving;
    ++slot.generation;
    st->cv.notify_all();
  } else {
    while (slot.generation == my_gen) {
      if (st->aborted) break;  // peers are unwinding; don't wait on them
      st->cv.wait(lk);
    }
  }
  if (copy_error) std::rethrow_exception(copy_error);
  check_abort(*st);
}

}  // namespace

void Comm::barrier() {
  require_valid();
  bool intra = false;
  run_collective(
      st_, ctx_, size_, [](CollSlot&) {},
      [&](const CollSlot&, const ContextInfo& info) {
        intra = info.intra_node;
      });
  charge(*st_, world_rank_, intra,
         ceil_log2(static_cast<std::size_t>(size_)), 0, 0, "barrier");
}

void Comm::bcast_bytes(void* buf, std::size_t bytes, int root) {
  require_valid();
  if (root < 0 || root >= size_) throw CommError("bcast: root out of range");
  const int me = rank_;
  bool intra = false;
  run_collective(
      st_, ctx_, size_,
      [&](CollSlot& slot) {
        slot.send_ptr[static_cast<std::size_t>(me)] = buf;
        slot.send_bytes[static_cast<std::size_t>(me)] = bytes;
      },
      [&](const CollSlot& slot, const ContextInfo& info) {
        intra = info.intra_node;
        if (me != root && bytes > 0) {
          std::memcpy(buf, slot.send_ptr[static_cast<std::size_t>(root)],
                      bytes);
        }
      });
  if (me == root) {
    charge(*st_, world_rank_, intra, ceil_log2(static_cast<std::size_t>(size_)),
           bytes, 0, "bcast");
  } else {
    charge(*st_, world_rank_, intra, 1, 0, bytes, "bcast");
  }
}

void Comm::gather_bytes(const void* send, std::size_t bytes, void* recv,
                        int root) {
  require_valid();
  if (root < 0 || root >= size_) throw CommError("gather: root out of range");
  const int me = rank_;
  bool intra = false;
  run_collective(
      st_, ctx_, size_,
      [&](CollSlot& slot) {
        slot.send_ptr[static_cast<std::size_t>(me)] = send;
        slot.send_bytes[static_cast<std::size_t>(me)] = bytes;
      },
      [&](const CollSlot& slot, const ContextInfo& info) {
        intra = info.intra_node;
        if (me == root && bytes > 0) {
          auto* out = static_cast<std::byte*>(recv);
          for (int s = 0; s < size_; ++s) {
            std::memcpy(out + static_cast<std::size_t>(s) * bytes,
                        slot.send_ptr[static_cast<std::size_t>(s)], bytes);
          }
        }
      });
  if (me == root) {
    charge(*st_, world_rank_, intra, static_cast<std::size_t>(size_ - 1), 0,
           bytes * static_cast<std::size_t>(size_ - 1), "gather");
  } else {
    charge(*st_, world_rank_, intra, 1, bytes, 0, "gather");
  }
}

void Comm::allgather_bytes(const void* send, std::size_t bytes, void* recv) {
  require_valid();
  const int me = rank_;
  bool intra = false;
  run_collective(
      st_, ctx_, size_,
      [&](CollSlot& slot) {
        slot.send_ptr[static_cast<std::size_t>(me)] = send;
        slot.send_bytes[static_cast<std::size_t>(me)] = bytes;
      },
      [&](const CollSlot& slot, const ContextInfo& info) {
        intra = info.intra_node;
        if (bytes == 0) return;
        auto* out = static_cast<std::byte*>(recv);
        for (int s = 0; s < size_; ++s) {
          std::memcpy(out + static_cast<std::size_t>(s) * bytes,
                      slot.send_ptr[static_cast<std::size_t>(s)], bytes);
        }
      });
  const auto others = static_cast<std::size_t>(size_ - 1);
  charge(*st_, world_rank_, intra, others, bytes * others, bytes * others, "allgather");
}

void Comm::allgatherv_bytes(const void* send, std::size_t send_bytes,
                            void* recv, const std::size_t* recv_bytes,
                            const std::size_t* recv_displs) {
  require_valid();
  const int me = rank_;
  bool intra = false;
  std::size_t total_in = 0;
  run_collective(
      st_, ctx_, size_,
      [&](CollSlot& slot) {
        slot.send_ptr[static_cast<std::size_t>(me)] = send;
        slot.send_bytes[static_cast<std::size_t>(me)] = send_bytes;
      },
      [&](const CollSlot& slot, const ContextInfo& info) {
        intra = info.intra_node;
        auto* out = static_cast<std::byte*>(recv);
        for (int s = 0; s < size_; ++s) {
          const auto si = static_cast<std::size_t>(s);
          if (recv_bytes[si] != slot.send_bytes[si]) {
            throw CommError("allgatherv: receive size disagrees with sender");
          }
          if (recv_bytes[si] > 0) {
            std::memcpy(out + recv_displs[si], slot.send_ptr[si],
                        recv_bytes[si]);
          }
          if (s != me) total_in += recv_bytes[si];
        }
      });
  const auto others = static_cast<std::size_t>(size_ - 1);
  charge(*st_, world_rank_, intra, others, send_bytes * others, total_in, "allgatherv");
}

void Comm::scatter_bytes(const void* send, std::size_t bytes, void* recv,
                         int root) {
  require_valid();
  if (root < 0 || root >= size_) throw CommError("scatter: root out of range");
  const int me = rank_;
  bool intra = false;
  run_collective(
      st_, ctx_, size_,
      [&](CollSlot& slot) {
        slot.send_ptr[static_cast<std::size_t>(me)] = send;
        slot.send_bytes[static_cast<std::size_t>(me)] = bytes;
      },
      [&](const CollSlot& slot, const ContextInfo& info) {
        intra = info.intra_node;
        if (bytes == 0) return;
        const auto* in = static_cast<const std::byte*>(
            slot.send_ptr[static_cast<std::size_t>(root)]);
        std::memcpy(recv, in + static_cast<std::size_t>(me) * bytes, bytes);
      });
  if (me == root) {
    charge(*st_, world_rank_, intra, static_cast<std::size_t>(size_ - 1),
           bytes * static_cast<std::size_t>(size_ - 1), 0, "scatter");
  } else {
    charge(*st_, world_rank_, intra, 1, 0, bytes, "scatter");
  }
}

void Comm::alltoall_bytes(const void* send, std::size_t per_peer, void* recv) {
  require_valid();
  const int me = rank_;
  bool intra = false;
  run_collective(
      st_, ctx_, size_,
      [&](CollSlot& slot) {
        slot.send_ptr[static_cast<std::size_t>(me)] = send;
        slot.send_bytes[static_cast<std::size_t>(me)] = per_peer;
      },
      [&](const CollSlot& slot, const ContextInfo& info) {
        intra = info.intra_node;
        if (per_peer == 0) return;
        auto* out = static_cast<std::byte*>(recv);
        for (int s = 0; s < size_; ++s) {
          const auto* in =
              static_cast<const std::byte*>(slot.send_ptr[static_cast<std::size_t>(s)]);
          std::memcpy(out + static_cast<std::size_t>(s) * per_peer,
                      in + static_cast<std::size_t>(me) * per_peer, per_peer);
        }
      });
  const auto others = static_cast<std::size_t>(size_ - 1);
  charge(*st_, world_rank_, intra, others, per_peer * others, per_peer * others, "alltoall");
}

void Comm::alltoallv_bytes(const void* send, const std::size_t* scounts,
                           const std::size_t* sdispls, void* recv,
                           const std::size_t* rcounts,
                           const std::size_t* rdispls) {
  require_valid();
  const int me = rank_;
  bool intra = false;
  std::size_t bytes_out = 0;
  std::size_t bytes_in = 0;
  std::size_t peers = 0;
  for (int s = 0; s < size_; ++s) {
    if (s == me) continue;
    const auto si = static_cast<std::size_t>(s);
    bytes_out += scounts[si];
    if (scounts[si] > 0 || rcounts[si] > 0) ++peers;
  }
  run_collective(
      st_, ctx_, size_,
      [&](CollSlot& slot) {
        const auto mi = static_cast<std::size_t>(me);
        slot.send_ptr[mi] = send;
        slot.send_counts[mi] = scounts;
        slot.send_displs[mi] = sdispls;
      },
      [&](const CollSlot& slot, const ContextInfo& info) {
        intra = info.intra_node;
        auto* out = static_cast<std::byte*>(recv);
        for (int s = 0; s < size_; ++s) {
          const auto si = static_cast<std::size_t>(s);
          const std::size_t len = slot.send_counts[si][me];
          if (len != rcounts[si]) {
            throw CommError(
                "alltoallv: send count from peer disagrees with expected "
                "receive count");
          }
          if (len == 0) continue;
          const auto* in = static_cast<const std::byte*>(slot.send_ptr[si]);
          std::memcpy(out + rdispls[si], in + slot.send_displs[si][me], len);
          if (s != me) bytes_in += len;
        }
      });
  charge(*st_, world_rank_, intra, peers, bytes_out, bytes_in, "alltoallv");
}

// ---------------------------------------------------------------------------
// Communicator management
// ---------------------------------------------------------------------------

int Comm::node_id() const {
  require_valid();
  return st_->node_of(world_rank_);
}

int Comm::cores_per_node() const {
  require_valid();
  return st_->cores_per_node;
}

PhaseLedger& Comm::ledger() const {
  require_valid();
  return st_->ledgers[static_cast<std::size_t>(world_rank_)];
}

const CommStats& Comm::stats() const {
  require_valid();
  return st_->comm_stats[static_cast<std::size_t>(world_rank_)];
}

Comm Comm::split(int color, int key) const {
  require_valid();
  struct Triple {
    int color;
    int key;
    int parent_rank;
  };
  // const_cast-free: allgather is non-const because collectives mutate the
  // slot; split is logically const on the communicator itself.
  Comm& self = *const_cast<Comm*>(this);
  const Triple mine{color, key, rank_};
  const auto all = self.allgather(mine);

  // Distinct participating colors, sorted: group g is the g-th color.
  std::vector<int> colors;
  for (const Triple& t : all) {
    if (t.color != kUndefined) colors.push_back(t.color);
  }
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  const int ngroups = static_cast<int>(colors.size());

  // Parent rank 0 reserves a contiguous block of context ids.
  int base = 0;
  if (rank_ == 0) {
    std::lock_guard<std::mutex> lk(st_->mu);
    base = st_->next_ctx;
    st_->next_ctx += ngroups;
  }
  self.bcast_value(base, 0);

  if (color == kUndefined) return Comm();

  // Members of my group, ordered by (key, parent rank).
  std::vector<Triple> members;
  for (const Triple& t : all) {
    if (t.color == color) members.push_back(t);
  }
  std::stable_sort(members.begin(), members.end(),
                   [](const Triple& a, const Triple& b) {
                     return a.key != b.key ? a.key < b.key
                                           : a.parent_rank < b.parent_rank;
                   });
  int new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].parent_rank == rank_) {
      new_rank = static_cast<int>(i);
      break;
    }
  }
  const auto group_it = std::find(colors.begin(), colors.end(), color);
  const int ctx = base + static_cast<int>(group_it - colors.begin());

  // Register the new context (idempotent: every member computes the same
  // info; the first to take the lock inserts it).
  {
    std::lock_guard<std::mutex> lk(st_->mu);
    if (st_->contexts.find(ctx) == st_->contexts.end()) {
      const ContextInfo& parent = st_->contexts.at(ctx_);
      ContextInfo info;
      info.world_ranks.reserve(members.size());
      for (const Triple& t : members) {
        info.world_ranks.push_back(
            parent.world_ranks[static_cast<std::size_t>(t.parent_rank)]);
      }
      info.slot.resize(static_cast<int>(members.size()));
      info.intra_node = true;
      for (int wr : info.world_ranks) {
        if (st_->node_of(wr) != st_->node_of(info.world_ranks.front())) {
          info.intra_node = false;
          break;
        }
      }
      st_->contexts.emplace(ctx, std::move(info));
      st_->cv.notify_all();
    }
  }
  return Comm(st_, ctx, new_rank, static_cast<int>(members.size()),
              world_rank_);
}

Comm Comm::split_by_node() const {
  require_valid();
  return split(node_id(), rank_);
}

}  // namespace sdss::sim
