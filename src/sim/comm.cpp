#include "sim/comm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/state.hpp"
#include "trace/recorder.hpp"

namespace sdss::sim {

namespace detail {
Comm make_comm(ClusterState* st, int ctx, int rank, int size, int world_rank) {
  return Comm(st, ctx, rank, size, world_rank);
}
}  // namespace detail

using detail::Clock;
using detail::ClusterState;
using detail::ContextInfo;
using detail::Mailbox;
using detail::Message;
using detail::PostedCollRecv;
using detail::ZcState;

namespace {

// Metric ids interned once at static init, so emission sites never touch
// the registry lock. Every emit is gated on obs::active() — free when the
// run was launched with metrics disabled.
const obs::MetricId kMSendBytes = obs::register_metric(
    "p2p.send_bytes", obs::MetricKind::kHistogram, obs::MetricUnit::kBytes);
const obs::MetricId kMSentMessages = obs::register_metric(
    "p2p.sent_messages", obs::MetricKind::kCounter, obs::MetricUnit::kCount);
const obs::MetricId kMRecvBytes = obs::register_metric(
    "p2p.recv_bytes", obs::MetricKind::kHistogram, obs::MetricUnit::kBytes);
const obs::MetricId kMP2pBlockedNs = obs::register_metric(
    "p2p.blocked_ns", obs::MetricKind::kHistogram, obs::MetricUnit::kNanos);
const obs::MetricId kMCollCalls = obs::register_metric(
    "coll.calls", obs::MetricKind::kCounter, obs::MetricUnit::kCount);
const obs::MetricId kMCollBytesOut = obs::register_metric(
    "coll.bytes_out", obs::MetricKind::kHistogram, obs::MetricUnit::kBytes);
const obs::MetricId kMCollBlockedNs = obs::register_metric(
    "coll.blocked_ns", obs::MetricKind::kHistogram, obs::MetricUnit::kNanos);

/// Wall nanoseconds since `t0` (blocked-duration histograms).
std::uint64_t elapsed_ns(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

void check_abort(const ClusterState& st) {
  if (st.aborted) throw SimAbortError(st.abort_cause);
}

/// RAII publication of the calling rank's blocked state for the deadlock
/// watchdog. All writes happen under st->mu: set()/clear() are called with
/// the lock held, and the destructor only writes when still armed — i.e. on
/// exception unwinds, which run before the enclosing unique_lock releases
/// (declare the guard AFTER the lock). Success paths clear() explicitly
/// before unlocking.
class BlockedGuard {
 public:
  BlockedGuard(ClusterState* st, int world_rank)
      : st_(st), rank_(static_cast<std::size_t>(world_rank)) {}
  BlockedGuard(const BlockedGuard&) = delete;
  BlockedGuard& operator=(const BlockedGuard&) = delete;
  ~BlockedGuard() { clear(); }

  void set(const char* op, int src, int tag, int ctx, bool has_deadline) {
    st_->blocked[rank_] = detail::BlockedOp{op, src, tag, ctx, has_deadline};
    armed_ = true;
  }

  void clear() {
    if (armed_) {
      st_->blocked[rank_].op = nullptr;
      armed_ = false;
    }
  }

 private:
  ClusterState* st_;
  std::size_t rank_;
  bool armed_ = false;
};

/// Per-worker free list of message payload buffers. Senders draw from it,
/// receivers refill it as they drain messages; since every scheduler worker
/// both sends and receives on behalf of the ranks it runs, each pool
/// reaches a steady state and the messaging hot path stops allocating.
/// Deliberately left per OS thread rather than moved to fiber-local storage:
/// it is only a cache, so which worker's pool a buffer lands in does not
/// affect correctness — but the accessors must stay out of line so the TLS
/// address is never cached across a fiber suspension. Bounded so a burst of
/// bulk traffic cannot pin unbounded memory; oversized buffers are dropped
/// rather than cached.
constexpr std::size_t kPayloadPoolSlots = 4;
constexpr std::size_t kPayloadPoolMaxBytes = 1u << 20;
thread_local std::vector<std::vector<std::byte>> t_payload_pool;

[[gnu::noinline]] std::vector<std::byte> pool_acquire(std::size_t bytes) {
  std::vector<std::byte> v;
  if (!t_payload_pool.empty()) {
    v = std::move(t_payload_pool.back());
    t_payload_pool.pop_back();
  }
  v.resize(bytes);
  return v;
}

[[gnu::noinline]] void pool_release(std::vector<std::byte>&& v) {
  if (t_payload_pool.size() < kPayloadPoolSlots &&
      v.capacity() <= kPayloadPoolMaxBytes) {
    v.clear();
    t_payload_pool.push_back(std::move(v));
  }
}

/// Result of scanning a mailbox for a match.
struct MatchScan {
  bool ready = false;                     // a deliverable match exists
  std::deque<Message>::iterator it{};     // ... at this position
  bool future = false;                    // a match exists but is in flight
  Clock::time_point deadline{};           // ... deliverable at this time
};

/// Find the first matching message. Per-source FIFO is preserved: if the
/// first match from some source is still in flight, later messages from that
/// source are not allowed to overtake it. `internal` selects the matching
/// namespace: collective-protocol messages never match user receives and
/// vice versa, even under kAnySource/kAnyTag.
MatchScan scan_mailbox(Mailbox& mb, int ctx, int src, int tag,
                       Clock::time_point now, bool internal) {
  MatchScan r;
  // Sources whose earliest match is still in flight; at most a handful of
  // distinct sources have traffic pending in practice, linear scan is fine.
  std::vector<int> blocked;
  for (auto it = mb.messages.begin(); it != mb.messages.end(); ++it) {
    if (it->internal != internal) continue;
    if (it->ctx != ctx) continue;
    if (src != Comm::kAnySource && it->src != src) continue;
    if (tag != Comm::kAnyTag && it->tag != tag) continue;
    if (std::find(blocked.begin(), blocked.end(), it->src) != blocked.end()) {
      continue;
    }
    if (it->deliver_at <= now) {
      r.ready = true;
      r.it = it;
      return r;
    }
    if (!r.future || it->deliver_at < r.deadline) {
      r.future = true;
      r.deadline = it->deliver_at;
    }
    if (src != Comm::kAnySource) return r;  // specific source: stop here
    blocked.push_back(it->src);
  }
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

namespace detail {
struct RequestImpl {
  ClusterState* st = nullptr;
  int ctx = 0;
  int world_rank = 0;  // owner's world rank (mailbox index)
  bool is_recv = false;
  void* buf = nullptr;
  std::size_t capacity = 0;
  int src = Comm::kAnySource;
  int tag = Comm::kAnyTag;

  bool completed = false;
  std::size_t received = 0;
  int actual_src = -1;
  /// Matched payload awaiting copy-out (finish_detached). Detaching under
  /// the lock and copying outside it keeps bulk memcpys from serializing
  /// every other rank on the one cluster mutex.
  std::vector<std::byte> detached;
  bool has_detached = false;

  /// Try to complete a receive by detaching a matched message. Caller holds
  /// st->mu and must call finish_detached() after releasing it. Returns the
  /// deadline of an in-flight match via `out` when not completable yet.
  bool try_complete(MatchScan* out) {
    if (completed) return true;
    Mailbox& mb = st->mailboxes[static_cast<std::size_t>(world_rank)];
    MatchScan m =
        scan_mailbox(mb, ctx, src, tag, Clock::now(), /*internal=*/false);
    if (m.ready) {
      if (m.it->payload.size() > capacity) {
        throw CommError("irecv: message larger than receive buffer");
      }
      received = m.it->payload.size();
      actual_src = m.it->src;
      detached = std::move(m.it->payload);
      has_detached = true;
      mb.messages.erase(m.it);
      ++st->progress_epoch;
      completed = true;
      return true;
    }
    if (out != nullptr) *out = m;
    return false;
  }

  /// Copy a detached payload into the user buffer. Caller must NOT hold
  /// st->mu. No-op unless try_complete just detached a message.
  void finish_detached() {
    if (!has_detached) return;
    if (received > 0) std::memcpy(buf, detached.data(), received);
    pool_release(std::move(detached));
    has_detached = false;
  }
};
}  // namespace detail

bool Request::test() {
  if (!impl_) throw CommError("test() on an empty request");
  if (impl_->completed) return true;
  bool done = false;
  {
    std::lock_guard<std::mutex> lk(impl_->st->mu);
    check_abort(*impl_->st);
    done = impl_->try_complete(nullptr);
  }
  impl_->finish_detached();
  return done;
}

void Request::wait() {
  if (!impl_) throw CommError("wait() on an empty request");
  if (impl_->completed) return;
  const std::uint64_t t_wait = trace::active() ? trace::now_ns() : 0;
  const bool metered = obs::active();
  const Clock::time_point m_t0 = metered ? Clock::now() : Clock::time_point{};
  {
    std::unique_lock<std::mutex> lk(impl_->st->mu);
    BlockedGuard guard(impl_->st, impl_->world_rank);
    detail::RankScheduler* sched = impl_->st->sched;
    for (;;) {
      check_abort(*impl_->st);
      MatchScan m;
      if (impl_->try_complete(&m)) break;
      guard.set("req_wait", impl_->src, impl_->tag, impl_->ctx, m.future);
      if (m.future) {
        sched->wait_until(lk, m.deadline);
      } else {
        sched->wait(lk);
      }
    }
  }
  impl_->finish_detached();
  if (trace::active()) {
    trace::complete(trace::EventCat::kP2p, "req_wait", t_wait,
                    impl_->received, impl_->actual_src);
  }
  if (metered) {
    obs::hist_record(kMRecvBytes, impl_->received);
    obs::hist_record(kMP2pBlockedNs, elapsed_ns(m_t0));
  }
}

std::size_t Request::bytes() const {
  if (!impl_) throw CommError("bytes() on an empty request");
  return impl_->received;
}

int Request::source() const {
  if (!impl_) throw CommError("source() on an empty request");
  return impl_->actual_src;
}

int Request::wait_any(std::span<Request> reqs, std::span<const char> skip) {
  ClusterState* st = nullptr;
  for (auto& r : reqs) {
    if (r.impl_) {
      st = r.impl_->st;
      break;
    }
  }
  if (st == nullptr) return -1;
  const std::uint64_t t_wait = trace::active() ? trace::now_ns() : 0;
  int owner = -1;
  for (auto& r : reqs) {
    if (r.impl_) {
      owner = r.impl_->world_rank;
      break;
    }
  }
  int found = -1;
  {
    std::unique_lock<std::mutex> lk(st->mu);
    BlockedGuard guard(st, owner);
    detail::RankScheduler* sched = st->sched;
    while (found < 0) {
      check_abort(*st);
      bool any_pending = false;
      bool have_deadline = false;
      Clock::time_point deadline{};
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (i < skip.size() && skip[i]) continue;
        auto& impl = reqs[i].impl_;
        if (!impl) continue;
        if (impl->completed) {
          found = static_cast<int>(i);
          break;
        }
        any_pending = true;
        MatchScan m;
        if (impl->try_complete(&m)) {
          found = static_cast<int>(i);
          break;
        }
        if (m.future && (!have_deadline || m.deadline < deadline)) {
          have_deadline = true;
          deadline = m.deadline;
        }
      }
      if (found >= 0) break;
      if (!any_pending) return -1;
      guard.set("req_wait_any", Comm::kAnySource, Comm::kAnyTag, 0,
                have_deadline);
      if (have_deadline) {
        sched->wait_until(lk, deadline);
      } else {
        sched->wait(lk);
      }
    }
  }
  reqs[static_cast<std::size_t>(found)].impl_->finish_detached();
  if (trace::active()) {
    auto& impl = reqs[static_cast<std::size_t>(found)].impl_;
    trace::complete(trace::EventCat::kP2p, "req_wait_any", t_wait,
                    impl->received, impl->actual_src);
  }
  return found;
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

int Comm::world_rank_of(int comm_rank) const {
  // Caller must hold st_->mu.
  const ContextInfo& info = st_->contexts.at(ctx_);
  return info.world_ranks[static_cast<std::size_t>(comm_rank)];
}

void Comm::send_bytes(const void* data, std::size_t bytes, int dest, int tag) {
  require_valid();
  if (dest < 0 || dest >= size_) throw CommError("send: destination out of range");
  const std::uint64_t op_k = detail::chaos_before_op(st_, world_rank_, "send");
  // Jitter only user p2p traffic: internal collective messages must stay
  // immediately deliverable or a posted rendezvous slot would never fill.
  const double jitter = st_->chaos.jitter_for(world_rank_, op_k);
  Message msg;
  msg.ctx = ctx_;
  msg.src = rank_;
  msg.tag = tag;
  msg.payload = pool_acquire(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);

  int dest_world = -1;
  {
    std::lock_guard<std::mutex> lk(st_->mu);
    check_abort(*st_);
    dest_world = world_rank_of(dest);
    const bool intra = st_->node_of(dest_world) == st_->node_of(world_rank_);
    msg.deliver_at = Clock::now();
    if (st_->network.enabled()) {
      msg.deliver_at += st_->network.to_duration(
          st_->network.message_time(bytes, intra));
    }
    if (jitter > 0.0) {
      msg.deliver_at += st_->network.to_duration(jitter);
      ++st_->jittered_messages;
    }
    st_->mailboxes[static_cast<std::size_t>(dest_world)].messages.push_back(
        std::move(msg));
    ++st_->progress_epoch;
    CommStats& cs = st_->comm_stats[static_cast<std::size_t>(world_rank_)];
    ++cs.p2p_messages;
    cs.p2p_bytes += bytes;
    // Wake exactly the destination rank. Scheduler wakes are queue pushes
    // under the lock we already hold — the woken fiber cannot "run into"
    // the held mutex the way a notified thread could, it just becomes
    // ready and is resumed by a worker later.
    st_->sched->wake(dest_world);
  }
  if (trace::active()) {
    trace::instant(trace::EventCat::kP2p, "send", bytes, dest_world);
  }
  if (obs::active()) {
    obs::counter_add(kMSentMessages, 1);
    obs::hist_record(kMSendBytes, bytes);
  }
}

std::size_t Comm::recv_bytes(void* buf, std::size_t capacity, int src, int tag,
                             int* out_src) {
  require_valid();
  detail::chaos_before_op(st_, world_rank_, "recv");
  const std::uint64_t t_recv = trace::active() ? trace::now_ns() : 0;
  const bool metered = obs::active();
  const Clock::time_point m_t0 = metered ? Clock::now() : Clock::time_point{};
  std::unique_lock<std::mutex> lk(st_->mu);
  BlockedGuard guard(st_, world_rank_);
  Mailbox& mb = st_->mailboxes[static_cast<std::size_t>(world_rank_)];
  detail::RankScheduler* sched = st_->sched;
  for (;;) {
    check_abort(*st_);
    MatchScan m =
        scan_mailbox(mb, ctx_, src, tag, Clock::now(), /*internal=*/false);
    if (m.ready) {
      if (m.it->payload.size() > capacity) {
        throw CommError("recv: message larger than receive buffer");
      }
      // Detach the message and copy it out WITHOUT the cluster lock: a bulk
      // payload memcpy must not serialize every other rank's progress.
      Message msg = std::move(*m.it);
      mb.messages.erase(m.it);
      ++st_->progress_epoch;
      guard.clear();
      lk.unlock();
      const std::size_t n = msg.payload.size();
      if (n > 0) std::memcpy(buf, msg.payload.data(), n);
      pool_release(std::move(msg.payload));
      if (out_src != nullptr) *out_src = msg.src;
      if (trace::active()) {
        trace::complete(trace::EventCat::kP2p, "recv", t_recv, n, msg.src);
      }
      if (metered) {
        obs::hist_record(kMRecvBytes, n);
        obs::hist_record(kMP2pBlockedNs, elapsed_ns(m_t0));
      }
      return n;
    }
    guard.set("recv", src, tag, ctx_, m.future);
    if (m.future) {
      sched->wait_until(lk, m.deadline);
    } else {
      sched->wait(lk);
    }
  }
}

std::size_t Comm::probe_bytes(int src, int tag, int* out_src) {
  require_valid();
  detail::chaos_before_op(st_, world_rank_, "probe");
  const std::uint64_t t_probe = trace::active() ? trace::now_ns() : 0;
  std::unique_lock<std::mutex> lk(st_->mu);
  BlockedGuard guard(st_, world_rank_);
  Mailbox& mb = st_->mailboxes[static_cast<std::size_t>(world_rank_)];
  detail::RankScheduler* sched = st_->sched;
  for (;;) {
    check_abort(*st_);
    MatchScan m =
        scan_mailbox(mb, ctx_, src, tag, Clock::now(), /*internal=*/false);
    if (m.ready) {
      if (out_src != nullptr) *out_src = m.it->src;
      if (trace::active()) {
        trace::complete(trace::EventCat::kP2p, "probe", t_probe,
                        m.it->payload.size(), m.it->src);
      }
      return m.it->payload.size();
    }
    guard.set("probe", src, tag, ctx_, m.future);
    if (m.future) {
      sched->wait_until(lk, m.deadline);
    } else {
      sched->wait(lk);
    }
  }
}

Request Comm::isend_bytes(const void* data, std::size_t bytes, int dest,
                          int tag) {
  // Eager buffered send: the payload is copied into the destination mailbox
  // immediately, so the request completes at once. The network model still
  // delays *matching* on the receiver side via deliver_at.
  send_bytes(data, bytes, dest, tag);
  Request r;
  r.impl_ = std::make_shared<detail::RequestImpl>();
  r.impl_->st = st_;
  r.impl_->completed = true;
  return r;
}

Request Comm::irecv_bytes(void* buf, std::size_t capacity, int src, int tag) {
  require_valid();
  detail::chaos_before_op(st_, world_rank_, "irecv");
  Request r;
  r.impl_ = std::make_shared<detail::RequestImpl>();
  auto& impl = *r.impl_;
  impl.st = st_;
  impl.ctx = ctx_;
  impl.world_rank = world_rank_;
  impl.is_recv = true;
  impl.buf = buf;
  impl.capacity = capacity;
  impl.src = src;
  impl.tag = tag;
  return r;
}

// ---------------------------------------------------------------------------
// Collective machinery
//
// Collectives run over internal point-to-point messages (Message::internal),
// using the scalable algorithms a real MPI library would pick: binomial
// trees for rooted ops, recursive doubling / dissemination for symmetric
// ones, Bruck for small alltoall/allgather on non-power-of-two sizes, and
// ring / pairwise exchange for bulk payloads. All ranks of a communicator
// must issue collectives in the same order (as in MPI); correctness across
// back-to-back collectives follows from per-(ctx, src, tag) FIFO matching —
// within any one algorithm, a rank's receives from a given source happen in
// the same order as that source's sends to it.
// ---------------------------------------------------------------------------

namespace {

/// Internal message tags, one per collective family. The `internal` flag
/// already separates these from user tags; distinct values just keep the
/// algorithms' matching patterns disjoint.
enum : int {
  kTagBarrier = 0,
  kTagBcast,
  kTagGather,
  kTagScatter,
  kTagAllgather,
  kTagAllgatherv,
  kTagAlltoall,
  kTagAlltoallv,
  kTagReduce,
  kTagAllreduce,
  kTagExscan,
};

// Algorithm-selection thresholds (see DESIGN.md, "Collective algorithms").
// Small payloads take the latency-optimal O(log p)-round algorithm; bulk
// payloads take the bandwidth-optimal one that moves each byte exactly once.
constexpr std::size_t kAllgatherSmallTotal = 64u * 1024u;   // gathered bytes
constexpr std::size_t kAllgathervSmallTotal = 64u * 1024u;  // gathered bytes
constexpr std::size_t kAlltoallBruckMaxBlock = 1024u;       // per-peer bytes
// Bulk blocks at or above this size go zero-copy (the receiver copies
// straight from the sender's buffer); below it the extra acknowledgement
// round-trip costs more than the pooled double copy saves.
constexpr std::size_t kZeroCopyMinBytes = 4096u;

/// Per-call context for one collective on one rank: identity plus the tally
/// of internal messages/bytes this rank sent and received, folded into
/// CommStats, the trace, and the modeled network charge by coll_finish().
struct CollCtx {
  ClusterState* st = nullptr;
  int ctx = 0;
  int rank = 0;
  int size = 0;
  int world_rank = 0;
  const std::vector<int>* world_ranks = nullptr;  // comm rank -> world rank
  bool intra_node = false;  // all members of this comm share one node
  std::size_t messages = 0;
  std::size_t bytes_out = 0;
  std::size_t bytes_in = 0;  // feeds the network model, not CommStats
  std::uint64_t t_begin_ns = 0;
  /// Time this rank spent blocked inside the call — waiting on a posted
  /// receive, draining zero-copy loans, or sleeping for the modeled network
  /// — as opposed to computing (packing, reducing, copying). Lands in the
  /// collective span's `aux` for blocked-vs-compute attribution.
  std::uint64_t blocked_ns = 0;
  /// Zero-copy bookkeeping: `zc.outstanding` counts buffer loans peers have
  /// not yet copied out (guarded by st->mu); `zc_used` is written only by
  /// this rank's thread, so the drain can skip locking when no loan was
  /// ever made.
  ZcState zc;
  bool zc_used = false;
};

CollCtx coll_begin(ClusterState* st, int ctx, int rank, int size,
                   int world_rank) {
  CollCtx c;
  c.st = st;
  c.ctx = ctx;
  c.rank = rank;
  c.size = size;
  c.world_rank = world_rank;
  {
    std::lock_guard<std::mutex> lk(st->mu);
    check_abort(*st);
    // Context entries are never erased and std::map nodes are stable, so the
    // pointer stays valid across the unlocked algorithm rounds.
    const ContextInfo& info = st->contexts.at(ctx);
    c.world_ranks = &info.world_ranks;
    c.intra_node = info.intra_node;
  }
  if (trace::active()) c.t_begin_ns = trace::now_ns();
  return c;
}

/// Close out one collective call: per-rank counters (this thread is the only
/// writer of its own CommStats entry), one kCollective trace event named
/// after the algorithm that ran, and one modeled-network sleep covering the
/// whole call. Internal messages deliver instantaneously (deliver_at is not
/// pushed into the future); instead each rank sleeps once here for
/// exchange_time over the messages and bytes its part of the algorithm
/// actually moved. Charging at call granularity keeps the modeled cost
/// proportional to the selected algorithm's wire traffic without paying an
/// OS-level timed wait per hop — on an oversubscribed host, per-hop waits
/// serialize the dependent rounds into context-switch chains and swamp the
/// measurement the simulation exists to take.
/// Wait until every zero-copy buffer loan made during this collective has
/// been copied out by its receiver. Must run before any lent buffer can be
/// reused or go out of scope — i.e. before the collective returns to the
/// caller, who owns the buffers.
void coll_zc_drain(CollCtx& c) {
  if (!c.zc_used) return;
  ClusterState* st = c.st;
  std::unique_lock<std::mutex> lk(st->mu);
  BlockedGuard guard(st, c.world_rank);
  guard.set("zc_drain", Comm::kAnySource, Comm::kAnyTag, c.ctx,
            /*has_deadline=*/false);
  const bool traced = trace::active();
  const std::uint64_t t0 = traced ? trace::now_ns() : 0;
  while (c.zc.outstanding > 0 && !st->aborted) st->sched->wait(lk);
  if (traced) c.blocked_ns += trace::now_ns() - t0;
  guard.clear();
  check_abort(*st);
}

void coll_finish(CollCtx& c, CollAlg alg) {
  coll_zc_drain(c);
  CommStats& cs = c.st->comm_stats[static_cast<std::size_t>(c.world_rank)];
  ++cs.collectives;
  cs.collective_bytes_out += c.bytes_out;
  cs.collective_messages += c.messages;
  CollAlgStats& as = cs.per_alg[static_cast<std::size_t>(alg)];
  ++as.calls;
  as.messages += c.messages;
  as.bytes_out += c.bytes_out;
  const NetworkModel& net = c.st->network;
  if (net.enabled() &&
      (c.messages != 0 || c.bytes_out != 0 || c.bytes_in != 0)) {
    const double t =
        net.exchange_time(c.messages, c.bytes_out, c.bytes_in, c.intra_node);
    // Cooperative sleep: the fiber parks in the scheduler's timer heap and
    // the worker runs other ranks meanwhile.
    c.st->sched->sleep_for(std::chrono::duration_cast<detail::Clock::duration>(
        net.to_duration(t)));
    c.blocked_ns += static_cast<std::uint64_t>(t * 1e9);
  }
  // One span per collective call, named after the algorithm that actually
  // ran, spanning begin-to-return (modeled network sleep included) with the
  // blocked share in aux. Lock-free append on this rank's own lane.
  if (trace::active()) {
    trace::complete(trace::EventCat::kCollective, coll_alg_name(alg),
                    c.t_begin_ns, c.bytes_out, -1, c.blocked_ns);
  }
  if (obs::active()) {
    obs::counter_add(kMCollCalls, 1);
    obs::hist_record(kMCollBytesOut, c.bytes_out);
    obs::hist_record(kMCollBlockedNs, c.blocked_ns);
  }
}

// --- internal transport ----------------------------------------------------
//
// The collective algorithms below are round-structured: within one call a
// rank alternates sends and blocking receives, and on a host with fewer
// cores than ranks the receiver of any given message is usually already
// blocked when the send happens. The transport exploits that with a
// rendezvous fast path: a blocked receiver publishes a slot in
// ClusterState::posted_coll, and a matching sender hands its (pooled)
// payload buffer over by move — no allocation, no copy under the lock —
// waking only that rank. When the receiver has not arrived yet, the payload
// is buffered in a mailbox Message like any other send. Neither path
// changes what is counted: CommStats sees the same messages and bytes
// either way.

/// Internal send: collective-namespace traffic — it does not count as
/// point-to-point traffic and emits no kSend trace event (the collective
/// gets one summary event). Delivery is immediate; the network model is
/// charged once per collective in coll_finish(). If the destination rank is
/// already blocked in a matching coll_recv, the payload goes straight into
/// its buffer; otherwise it is buffered in the mailbox.
void coll_send(CollCtx& c, const void* data, std::size_t bytes, int dest,
               int tag) {
  ClusterState* st = c.st;
  const int dest_world = (*c.world_ranks)[static_cast<std::size_t>(dest)];
  // Copy the payload into a pooled buffer before taking the lock; inside the
  // critical section the buffer only changes hands by move. The mutex is
  // held for deque/pointer work only — never across a memcpy or malloc.
  std::vector<std::byte> payload = pool_acquire(bytes);
  if (bytes > 0) std::memcpy(payload.data(), data, bytes);
  {
    std::lock_guard<std::mutex> lk(st->mu);
    check_abort(*st);
    PostedCollRecv* slot =
        st->posted_coll[static_cast<std::size_t>(dest_world)];
    if (slot != nullptr && !slot->done && slot->ctx == c.ctx &&
        slot->src == c.rank && slot->tag == tag) {
      // Rendezvous: hand the buffer to the blocked receiver, which copies it
      // out (and returns it to its own pool) after waking.
      if (bytes > slot->capacity) {
        slot->oversize = true;
      } else {
        slot->stash = std::move(payload);
      }
      slot->received = bytes;
      slot->done = true;
    } else {
      Message msg;
      msg.ctx = c.ctx;
      msg.src = c.rank;
      msg.tag = tag;
      msg.internal = true;
      msg.deliver_at = Clock::time_point{};  // epoch: always deliverable
      msg.payload = std::move(payload);
      st->mailboxes[static_cast<std::size_t>(dest_world)].messages.push_back(
          std::move(msg));
    }
    ++st->progress_epoch;
    // Wake under the lock: a scheduler wake is just a run-queue push, so
    // there is no run-into-the-held-mutex hazard to dodge.
    st->sched->wake(dest_world);
  }
  ++c.messages;
  c.bytes_out += bytes;
}

/// Zero-copy internal send for bulk blocks: publishes a loan of `data`
/// instead of copying it into a pooled buffer. The receiver memcpys straight
/// from `data` (outside the lock) and acknowledges; coll_zc_drain() blocks
/// until every loan is returned, so `data` must stay valid and UNMODIFIED
/// until the enclosing collective finishes. Only algorithms that never
/// rewrite a region they have sent may use this (alltoall(v) sending from
/// the caller's send buffer, ring allgather(v) forwarding write-once blocks
/// of the output) — fold-in-place reductions must keep the copying path.
void coll_send_zc(CollCtx& c, const void* data, std::size_t bytes, int dest,
                  int tag) {
  if (bytes < kZeroCopyMinBytes) {
    coll_send(c, data, bytes, dest, tag);
    return;
  }
  ClusterState* st = c.st;
  const int dest_world = (*c.world_ranks)[static_cast<std::size_t>(dest)];
  c.zc_used = true;
  {
    std::lock_guard<std::mutex> lk(st->mu);
    check_abort(*st);
    ++c.zc.outstanding;
    PostedCollRecv* slot =
        st->posted_coll[static_cast<std::size_t>(dest_world)];
    if (slot != nullptr && !slot->done && slot->ctx == c.ctx &&
        slot->src == c.rank && slot->tag == tag) {
      if (bytes > slot->capacity) slot->oversize = true;
      slot->zc_data = static_cast<const std::byte*>(data);
      slot->zc_bytes = bytes;
      slot->zc_state = &c.zc;
      slot->zc_sender_world = c.world_rank;
      slot->received = bytes;
      slot->done = true;
    } else {
      Message msg;
      msg.ctx = c.ctx;
      msg.src = c.rank;
      msg.tag = tag;
      msg.internal = true;
      msg.deliver_at = Clock::time_point{};  // epoch: always deliverable
      msg.zc_data = static_cast<const std::byte*>(data);
      msg.zc_bytes = bytes;
      msg.zc_state = &c.zc;
      msg.zc_sender_world = c.world_rank;
      st->mailboxes[static_cast<std::size_t>(dest_world)].messages.push_back(
          std::move(msg));
    }
    ++st->progress_epoch;
    st->sched->wake(dest_world);
  }
  ++c.messages;
  c.bytes_out += bytes;
}

/// Return a zero-copy loan after copying it out: decrement the sender's
/// outstanding count under the lock and wake the sender if it is already
/// draining. Called by the receiver with the lock NOT held.
void coll_zc_ack(ClusterState* st, ZcState* zc, int sender_world) {
  std::lock_guard<std::mutex> lk(st->mu);
  ++st->progress_epoch;
  if (--zc->outstanding == 0) st->sched->wake(sender_world);
}

/// Internal receive; returns the payload size. The payload memcpy happens
/// outside the cluster lock. `size_err`, when given, replaces the generic
/// buffer-overflow message so validation errors read as the collective's own.
std::size_t coll_recv(CollCtx& c, void* buf, std::size_t capacity, int src,
                      int tag, const char* size_err = nullptr) {
  ClusterState* st = c.st;
  std::unique_lock<std::mutex> lk(st->mu);
  check_abort(*st);
  Mailbox& mb = st->mailboxes[static_cast<std::size_t>(c.world_rank)];
  // Already buffered? Internal messages are always deliverable (no modeled
  // per-message delay), so a ready scan is a plain front-to-back match.
  MatchScan m = scan_mailbox(mb, c.ctx, src, tag, Clock::now(),
                             /*internal=*/true);
  if (m.ready) {
    const std::size_t n =
        m.it->zc_data != nullptr ? m.it->zc_bytes : m.it->payload.size();
    if (n > capacity) {
      throw CommError(size_err != nullptr
                          ? size_err
                          : "collective: internal message exceeds buffer");
    }
    Message msg = std::move(*m.it);
    mb.messages.erase(m.it);
    ++st->progress_epoch;
    lk.unlock();
    if (msg.zc_data != nullptr) {
      // Zero-copy loan: the sender's buffer stays valid until we ack (the
      // sender blocks in coll_zc_drain before reusing it).
      std::memcpy(buf, msg.zc_data, n);
      coll_zc_ack(st, msg.zc_state, msg.zc_sender_world);
    } else {
      if (n > 0) std::memcpy(buf, msg.payload.data(), n);
      pool_release(std::move(msg.payload));
    }
    c.bytes_in += n;
    return n;
  }
  // Nothing queued: publish a slot so the sender can hand its buffer over
  // directly, and wait. No rescan is needed on wakeup — while the slot is
  // published, a matching sender always takes the rendezvous path, so the
  // message cannot arrive through the mailbox.
  PostedCollRecv slot;
  slot.ctx = c.ctx;
  slot.src = src;
  slot.tag = tag;
  slot.capacity = capacity;
  PostedCollRecv*& posted =
      st->posted_coll[static_cast<std::size_t>(c.world_rank)];
  posted = &slot;
  BlockedGuard guard(st, c.world_rank);
  guard.set("coll_recv", src, tag, c.ctx, /*has_deadline=*/false);
  const bool traced = trace::active();
  const std::uint64_t t0 = traced ? trace::now_ns() : 0;
  while (!slot.done && !st->aborted) st->sched->wait(lk);
  if (traced) c.blocked_ns += trace::now_ns() - t0;
  posted = nullptr;
  guard.clear();
  check_abort(*st);
  if (slot.oversize) {
    throw CommError(size_err != nullptr
                        ? size_err
                        : "collective: internal message exceeds buffer");
  }
  lk.unlock();
  const std::size_t n = slot.received;
  if (slot.zc_data != nullptr) {
    std::memcpy(buf, slot.zc_data, n);
    coll_zc_ack(st, slot.zc_state, slot.zc_sender_world);
  } else {
    if (n > 0) std::memcpy(buf, slot.stash.data(), n);
    pool_release(std::move(slot.stash));
  }
  c.bytes_in += n;
  return n;
}

// --- algorithms -----------------------------------------------------------

/// Dissemination barrier: ceil(log2 p) rounds, any p. Round k: signal
/// (rank+k) and wait for (rank-k).
void dissemination_barrier(CollCtx& c) {
  const int p = c.size;
  for (int k = 1; k < p; k <<= 1) {
    coll_send(c, nullptr, 0, (c.rank + k) % p, kTagBarrier);
    coll_recv(c, nullptr, 0, (c.rank - k + p) % p, kTagBarrier);
  }
}

/// Binomial-tree broadcast from `root`, any p, on relative ranks
/// rel = (rank - root) mod p: receive from the parent, forward to children.
void binomial_bcast(CollCtx& c, void* buf, std::size_t bytes, int root,
                    int tag) {
  const int p = c.size;
  const int rel = (c.rank - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      coll_recv(c, buf, bytes, (rel - mask + root) % p, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      coll_send(c, buf, bytes, (rel + mask + root) % p, tag);
    }
    mask >>= 1;
  }
}

/// Binomial-tree gather of equal `bytes` blocks to `root`: each rank
/// accumulates its subtree's blocks (relative ranks [rel, rel+cap)) and
/// sends them to its parent in one message; the root rotates the
/// relative-ordered buffer into absolute rank order.
void binomial_gather(CollCtx& c, const void* send, std::size_t bytes,
                     void* recv, int root) {
  const int p = c.size;
  const int rel = (c.rank - root + p) % p;
  const int cap = (rel == 0) ? p : std::min(rel & -rel, p - rel);
  std::vector<std::byte> tmp(static_cast<std::size_t>(cap) * bytes);
  if (bytes > 0) std::memcpy(tmp.data(), send, bytes);
  int mask = 1;
  while (mask < p) {
    if (rel & mask) break;
    const int src_rel = rel + mask;
    if (src_rel < p) {
      const int cnt = std::min(mask, p - src_rel);
      coll_recv(c, tmp.data() + static_cast<std::size_t>(src_rel - rel) * bytes,
                static_cast<std::size_t>(cnt) * bytes, (src_rel + root) % p,
                kTagGather);
    }
    mask <<= 1;
  }
  if (rel != 0) {
    // mask is now the lowest set bit of rel: the level at which this rank's
    // subtree (cap blocks) hands off to its parent.
    coll_send(c, tmp.data(), static_cast<std::size_t>(cap) * bytes,
              (rel - mask + root) % p, kTagGather);
  } else if (bytes > 0) {
    auto* out = static_cast<std::byte*>(recv);
    for (int i = 0; i < p; ++i) {
      std::memcpy(out + static_cast<std::size_t>((i + root) % p) * bytes,
                  tmp.data() + static_cast<std::size_t>(i) * bytes, bytes);
    }
  }
}

/// Binomial-tree scatter from `root` (gather's mirror): each rank receives
/// its subtree's blocks from its parent and forwards the sub-subtrees.
void binomial_scatter(CollCtx& c, const void* send, std::size_t bytes,
                      void* recv, int root) {
  const int p = c.size;
  const int rel = (c.rank - root + p) % p;
  std::vector<std::byte> tmp;
  const std::byte* data = nullptr;  // blocks for relative ranks [rel, rel+cap)
  int subtree;                      // pow2 span of this rank's subtree
  if (rel == 0) {
    subtree = 1;
    while (subtree < p) subtree <<= 1;
    if (root == 0) {
      data = static_cast<const std::byte*>(send);
    } else {
      // Rotate into relative order once so every subtree is contiguous.
      tmp.resize(static_cast<std::size_t>(p) * bytes);
      const auto* in = static_cast<const std::byte*>(send);
      for (int i = 0; i < p; ++i) {
        if (bytes > 0) {
          std::memcpy(tmp.data() + static_cast<std::size_t>(i) * bytes,
                      in + static_cast<std::size_t>((i + root) % p) * bytes,
                      bytes);
        }
      }
      data = tmp.data();
    }
  } else {
    subtree = rel & -rel;
    const int cap = std::min(subtree, p - rel);
    const int parent = (rel - subtree + root) % p;
    if (cap == 1) {
      coll_recv(c, recv, bytes, parent, kTagScatter);
      data = static_cast<const std::byte*>(recv);
    } else {
      tmp.resize(static_cast<std::size_t>(cap) * bytes);
      coll_recv(c, tmp.data(), tmp.size(), parent, kTagScatter);
      data = tmp.data();
    }
  }
  for (int m = subtree >> 1; m >= 1; m >>= 1) {
    if (rel + m < p) {
      const int cnt = std::min(m, p - (rel + m));
      coll_send(c, data + static_cast<std::size_t>(m) * bytes,
                static_cast<std::size_t>(cnt) * bytes, (rel + m + root) % p,
                kTagScatter);
    }
  }
  if (data != recv && bytes > 0) std::memcpy(recv, data, bytes);
}

/// Recursive-doubling allgather, power-of-two p only: in round k each rank
/// swaps its accumulated 2^k-block window with partner rank^2^k, in place in
/// the receive buffer. log2(p) rounds, (p-1)·bytes sent per rank.
void rd_allgather(CollCtx& c, const void* send, std::size_t bytes, void* recv) {
  const int p = c.size;
  const int r = c.rank;
  auto* out = static_cast<std::byte*>(recv);
  if (bytes > 0) std::memcpy(out + static_cast<std::size_t>(r) * bytes, send, bytes);
  for (int mask = 1; mask < p; mask <<= 1) {
    const int partner = r ^ mask;
    const int my_base = r & ~(mask - 1);
    const int partner_base = partner & ~(mask - 1);
    const std::size_t blk = static_cast<std::size_t>(mask) * bytes;
    coll_send(c, out + static_cast<std::size_t>(my_base) * bytes, blk, partner,
              kTagAllgather);
    coll_recv(c, out + static_cast<std::size_t>(partner_base) * bytes, blk,
              partner, kTagAllgather);
  }
}

/// Bruck allgather, any p: tmp[i] accumulates the block of rank (rank+i)%p;
/// round k ships the first min(k, p-k) blocks to (rank-k), doubling the
/// prefix held; a final rotation restores absolute order.
void bruck_allgather(CollCtx& c, const void* send, std::size_t bytes,
                     void* recv) {
  const int p = c.size;
  const int r = c.rank;
  std::vector<std::byte> tmp(static_cast<std::size_t>(p) * bytes);
  if (bytes > 0) std::memcpy(tmp.data(), send, bytes);
  for (int k = 1; k < p; k <<= 1) {
    const std::size_t cnt =
        static_cast<std::size_t>(std::min(k, p - k)) * bytes;
    coll_send(c, tmp.data(), cnt, (r - k + p) % p, kTagAllgather);
    coll_recv(c, tmp.data() + static_cast<std::size_t>(k) * bytes, cnt,
              (r + k) % p, kTagAllgather);
  }
  if (bytes > 0) {
    auto* out = static_cast<std::byte*>(recv);
    for (int i = 0; i < p; ++i) {
      std::memcpy(out + static_cast<std::size_t>((r + i) % p) * bytes,
                  tmp.data() + static_cast<std::size_t>(i) * bytes, bytes);
    }
  }
}

/// Ring allgather for bulk payloads: p-1 rounds, each rank forwards the
/// block it received last round to its right neighbor. Bandwidth-optimal:
/// every byte crosses each link exactly once.
void ring_allgather(CollCtx& c, const void* send, std::size_t bytes,
                    void* recv) {
  const int p = c.size;
  const int r = c.rank;
  auto* out = static_cast<std::byte*>(recv);
  if (bytes > 0) std::memcpy(out + static_cast<std::size_t>(r) * bytes, send, bytes);
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  for (int k = 0; k < p - 1; ++k) {
    const int sidx = (r - k + p) % p;
    const int ridx = (r - k - 1 + p) % p;
    // Zero-copy is safe here: each block of `out` is written exactly once
    // (own block before the loop, received blocks as they arrive) and never
    // after it has been forwarded.
    coll_send_zc(c, out + static_cast<std::size_t>(sidx) * bytes, bytes, right,
                 kTagAllgather);
    coll_recv(c, out + static_cast<std::size_t>(ridx) * bytes, bytes, left,
              kTagAllgather);
  }
}

constexpr const char* kAllgathervMismatch =
    "allgatherv: receive size disagrees with sender";

/// Small-payload allgatherv: binomial gatherv into a packed buffer on rank
/// 0 (everyone knows every count, so subtree sizes are computable locally),
/// binomial bcast of the packed buffer, then a local scatter to the caller's
/// displacements.
void allgatherv_gather_bcast(CollCtx& c, const void* send,
                             std::size_t send_bytes, void* recv,
                             const std::size_t* recv_bytes,
                             const std::size_t* recv_displs) {
  const int p = c.size;
  const int r = c.rank;
  std::vector<std::size_t> off(static_cast<std::size_t>(p) + 1, 0);
  for (int i = 0; i < p; ++i) {
    off[static_cast<std::size_t>(i) + 1] =
        off[static_cast<std::size_t>(i)] + recv_bytes[i];
  }
  const std::size_t total = off[static_cast<std::size_t>(p)];

  // Binomial gatherv to rank 0 (root 0, so relative rank == rank and each
  // subtree [r, r+cap) is a contiguous packed byte range).
  const int cap = (r == 0) ? p : std::min(r & -r, p - r);
  std::vector<std::byte> tmp(off[static_cast<std::size_t>(r + cap)] -
                             off[static_cast<std::size_t>(r)]);
  if (send_bytes > 0) std::memcpy(tmp.data(), send, send_bytes);
  int mask = 1;
  while (mask < p) {
    if (r & mask) break;
    const int src = r + mask;
    if (src < p) {
      const int scnt = std::min(mask, p - src);
      const std::size_t sub = off[static_cast<std::size_t>(src + scnt)] -
                              off[static_cast<std::size_t>(src)];
      const std::size_t n = coll_recv(
          c,
          tmp.data() + (off[static_cast<std::size_t>(src)] -
                        off[static_cast<std::size_t>(r)]),
          sub, src, kTagAllgatherv, kAllgathervMismatch);
      if (n != sub) throw CommError(kAllgathervMismatch);
    }
    mask <<= 1;
  }
  if (r != 0) coll_send(c, tmp.data(), tmp.size(), r - mask, kTagAllgatherv);

  std::vector<std::byte> packed;
  if (r != 0) packed.resize(total);
  std::byte* pk = (r == 0) ? tmp.data() : packed.data();
  binomial_bcast(c, pk, total, /*root=*/0, kTagAllgatherv);

  auto* out = static_cast<std::byte*>(recv);
  for (int i = 0; i < p; ++i) {
    if (recv_bytes[i] > 0) {
      std::memcpy(out + recv_displs[i], pk + off[static_cast<std::size_t>(i)],
                  recv_bytes[i]);
    }
  }
}

/// Bulk allgatherv: ring, as in ring_allgather but with per-rank counts.
void ring_allgatherv(CollCtx& c, const void* send, std::size_t send_bytes,
                     void* recv, const std::size_t* recv_bytes,
                     const std::size_t* recv_displs) {
  const int p = c.size;
  const int r = c.rank;
  auto* out = static_cast<std::byte*>(recv);
  if (send_bytes > 0) std::memcpy(out + recv_displs[r], send, send_bytes);
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  for (int k = 0; k < p - 1; ++k) {
    const int sidx = (r - k + p) % p;
    const int ridx = (r - k - 1 + p) % p;
    // Write-once blocks, as in ring_allgather: zero-copy forwarding is safe.
    coll_send_zc(c, out + recv_displs[sidx], recv_bytes[sidx], right,
                 kTagAllgatherv);
    const std::size_t n =
        coll_recv(c, out + recv_displs[ridx], recv_bytes[ridx], left,
                  kTagAllgatherv, kAllgathervMismatch);
    if (n != recv_bytes[ridx]) throw CommError(kAllgathervMismatch);
  }
}

/// Bruck alltoall for small blocks: O(log p) rounds of packed block
/// exchanges instead of p-1 point messages. Round k ships every block whose
/// index has bit k set to rank+k; two local rotations bracket the rounds.
void bruck_alltoall(CollCtx& c, const void* send, std::size_t bytes,
                    void* recv) {
  const int p = c.size;
  const int r = c.rank;
  const auto* in = static_cast<const std::byte*>(send);
  std::vector<std::byte> tmp(static_cast<std::size_t>(p) * bytes);
  if (bytes > 0) {
    for (int i = 0; i < p; ++i) {
      std::memcpy(tmp.data() + static_cast<std::size_t>(i) * bytes,
                  in + static_cast<std::size_t>((r + i) % p) * bytes, bytes);
    }
  }
  std::vector<std::byte> pack, unpack;
  for (int k = 1; k < p; k <<= 1) {
    std::size_t nblk = 0;
    for (int i = 0; i < p; ++i) {
      if (i & k) ++nblk;
    }
    pack.resize(nblk * bytes);
    unpack.resize(nblk * bytes);
    if (bytes > 0) {
      std::size_t o = 0;
      for (int i = 0; i < p; ++i) {
        if (i & k) {
          std::memcpy(pack.data() + o,
                      tmp.data() + static_cast<std::size_t>(i) * bytes, bytes);
          o += bytes;
        }
      }
    }
    coll_send(c, pack.data(), pack.size(), (r + k) % p, kTagAlltoall);
    coll_recv(c, unpack.data(), unpack.size(), (r - k + p) % p, kTagAlltoall);
    if (bytes > 0) {
      std::size_t o = 0;
      for (int i = 0; i < p; ++i) {
        if (i & k) {
          std::memcpy(tmp.data() + static_cast<std::size_t>(i) * bytes,
                      unpack.data() + o, bytes);
          o += bytes;
        }
      }
    }
  }
  if (bytes > 0) {
    auto* out = static_cast<std::byte*>(recv);
    for (int i = 0; i < p; ++i) {
      std::memcpy(out + static_cast<std::size_t>((r - i + p) % p) * bytes,
                  tmp.data() + static_cast<std::size_t>(i) * bytes, bytes);
    }
  }
}

constexpr const char* kAlltoallvMismatch =
    "alltoallv: send count from peer disagrees with expected receive count";

/// Where one rank's alltoallv send data lives. Published to every peer via a
/// small allgather; peers copy their blocks straight out of the owner's
/// buffer. All three pointers stay valid until the owner passes the
/// departure barrier at the end of the exchange.
struct AtavDesc {
  const std::byte* base;
  const std::size_t* counts;
  const std::size_t* displs;
};

/// Pairwise-exchange alltoallv — the bulk record exchange. Modeled (and
/// counted) as the classic pairwise schedule: p-1 messages per rank, every
/// byte crossing the wire exactly once. The *transport*, however, is
/// pull-based: ranks allgather {buffer, counts, displs} descriptors
/// (O(log p) tiny messages), then each rank copies its p-1 incoming blocks
/// directly out of the senders' buffers with no lock held, and a
/// dissemination barrier holds every rank until all peers have finished
/// copying. Moving the bulk bytes through the mailbox instead would cost a
/// lock acquisition and a wakeup per block — O(p) lock handoffs per rank,
/// O(p^2) cluster-wide — which on an oversubscribed host turns into a
/// context-switch storm that dwarfs the copies themselves.
void pairwise_alltoallv(CollCtx& c, const void* send,
                        const std::size_t* scounts, const std::size_t* sdispls,
                        void* recv, const std::size_t* rcounts,
                        const std::size_t* rdispls) {
  const int p = c.size;
  const int r = c.rank;
  const auto* in = static_cast<const std::byte*>(send);
  auto* out = static_cast<std::byte*>(recv);
  if (scounts[r] != rcounts[r]) throw CommError(kAlltoallvMismatch);
  if (scounts[r] > 0) std::memcpy(out + rdispls[r], in + sdispls[r], scounts[r]);

  // The control traffic below is simulator bookkeeping, not modeled data
  // movement: snapshot the counters and re-model the exchange afterwards.
  const std::size_t m0 = c.messages;
  const std::size_t bo0 = c.bytes_out;
  const std::size_t bi0 = c.bytes_in;

  AtavDesc mine{in, scounts, sdispls};
  std::vector<AtavDesc> descs(static_cast<std::size_t>(p));
  bruck_allgather(c, &mine, sizeof(AtavDesc), descs.data());

  // Pull in pairwise order (round k reads from rank r-k). The sender's
  // counts array is readable here too, so a count mismatch is validated
  // against what the peer actually intends to send.
  std::exception_ptr copy_error;
  try {
    for (int k = 1; k < p; ++k) {
      const int src = (r - k + p) % p;
      const AtavDesc& d = descs[static_cast<std::size_t>(src)];
      const std::size_t n = d.counts[r];
      if (n != rcounts[src]) throw CommError(kAlltoallvMismatch);
      if (n > 0) std::memcpy(out + rdispls[src], d.base + d.displs[r], n);
    }
  } catch (...) {
    copy_error = std::current_exception();
  }
  // Departure barrier: peers may still be reading this rank's buffers. Runs
  // even when our own validation failed — unwinding early could free the
  // send buffer under a peer's memcpy. (If the cluster aborts meanwhile the
  // barrier throws; prefer reporting the original error.)
  try {
    dissemination_barrier(c);
  } catch (...) {
    if (!copy_error) copy_error = std::current_exception();
  }
  if (copy_error) std::rethrow_exception(copy_error);

  c.messages = m0 + static_cast<std::size_t>(p) - 1;
  c.bytes_out = bo0;
  c.bytes_in = bi0;
  for (int i = 0; i < p; ++i) {
    if (i == r) continue;
    c.bytes_out += scounts[i];
    c.bytes_in += rcounts[i];
  }
}

/// Pairwise-exchange alltoall for bulk blocks: the uniform-block special
/// case of pairwise_alltoallv (same pull transport, same wire model).
void pairwise_alltoall(CollCtx& c, const void* send, std::size_t bytes,
                       void* recv) {
  const int p = c.size;
  std::vector<std::size_t> cnt(static_cast<std::size_t>(p), bytes);
  std::vector<std::size_t> dsp(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    dsp[static_cast<std::size_t>(i)] = static_cast<std::size_t>(i) * bytes;
  }
  pairwise_alltoallv(c, send, cnt.data(), dsp.data(), recv, cnt.data(),
                     dsp.data());
}

/// Binomial-tree reduce toward rank 0, then one hop to `root` if different.
/// Anchoring the tree at rank 0 keeps the combine order the strict rank-
/// order left fold (op(inout=lower-rank segment, in=higher-rank segment)),
/// so associative but non-commutative operators reduce deterministically.
void binomial_reduce(CollCtx& c, const void* send, void* recv,
                     std::size_t bytes, const Comm::ReduceFn& op, int root) {
  const int p = c.size;
  const int r = c.rank;
  std::vector<std::byte> acc(bytes), incoming(bytes);
  if (bytes > 0) std::memcpy(acc.data(), send, bytes);
  int mask = 1;
  while (mask < p) {
    if (r & mask) {
      coll_send(c, acc.data(), bytes, r - mask, kTagReduce);
      break;
    }
    const int src = r + mask;
    if (src < p) {
      coll_recv(c, incoming.data(), bytes, src, kTagReduce);
      if (bytes > 0) op(acc.data(), incoming.data());
    }
    mask <<= 1;
  }
  if (root != 0) {
    if (r == 0) coll_send(c, acc.data(), bytes, root, kTagReduce);
    if (r == root) coll_recv(c, acc.data(), bytes, 0, kTagReduce);
  }
  if (r == root && bytes > 0) std::memcpy(recv, acc.data(), bytes);
}

/// Recursive-doubling allreduce with the MPICH-style non-power-of-two fold:
/// the first 2·rem ranks pair up (even sends to odd), the surviving
/// power-of-two set runs log2(p2) doubling rounds, and the folded-out even
/// ranks get the result back at the end. Combine order respects newrank
/// order, which is monotone in rank, so non-commutative-but-associative
/// operators still reduce in rank order.
void rd_allreduce(CollCtx& c, const void* send, void* recv, std::size_t bytes,
                  const Comm::ReduceFn& op) {
  const int p = c.size;
  const int r = c.rank;
  std::vector<std::byte> acc(bytes), other(bytes);
  if (bytes > 0) std::memcpy(acc.data(), send, bytes);
  int p2 = 1;
  while (p2 * 2 <= p) p2 *= 2;
  const int rem = p - p2;

  int newrank;
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      coll_send(c, acc.data(), bytes, r + 1, kTagAllreduce);
      newrank = -1;
    } else {
      coll_recv(c, other.data(), bytes, r - 1, kTagAllreduce);
      if (bytes > 0) {
        op(other.data(), acc.data());  // lower rank's segment first
        acc.swap(other);
      }
      newrank = r / 2;
    }
  } else {
    newrank = r - rem;
  }

  if (newrank >= 0) {
    for (int mask = 1; mask < p2; mask <<= 1) {
      const int newpartner = newrank ^ mask;
      const int partner =
          (newpartner < rem) ? newpartner * 2 + 1 : newpartner + rem;
      coll_send(c, acc.data(), bytes, partner, kTagAllreduce);
      coll_recv(c, other.data(), bytes, partner, kTagAllreduce);
      if (bytes > 0) {
        if (newrank < newpartner) {
          op(acc.data(), other.data());
        } else {
          op(other.data(), acc.data());
          acc.swap(other);
        }
      }
    }
  }

  if (r < 2 * rem) {
    if (r % 2 != 0) {
      coll_send(c, acc.data(), bytes, r - 1, kTagAllreduce);
    } else {
      coll_recv(c, acc.data(), bytes, r + 1, kTagAllreduce);
    }
  }
  if (bytes > 0) std::memcpy(recv, acc.data(), bytes);
}

/// Dissemination (Hillis–Steele) exclusive scan, any p: in round k each rank
/// sends its inclusive window accumulator to rank+k and prepends what it
/// receives from rank-k to both its result and its window. Rank 0's recv
/// buffer is left untouched — the caller pre-fills the identity.
void dissemination_exscan(CollCtx& c, const void* send, void* recv,
                          std::size_t bytes, const Comm::ReduceFn& op) {
  const int p = c.size;
  const int r = c.rank;
  std::vector<std::byte> window(bytes), t(bytes), pre(bytes);
  if (bytes > 0) std::memcpy(window.data(), send, bytes);
  bool have_result = false;
  for (int k = 1; k < p; k <<= 1) {
    if (r + k < p) coll_send(c, window.data(), bytes, r + k, kTagExscan);
    if (r - k >= 0) {
      coll_recv(c, t.data(), bytes, r - k, kTagExscan);
      if (bytes > 0) {
        if (have_result) {
          std::memcpy(pre.data(), t.data(), bytes);
          op(pre.data(), recv);  // result = incoming ⊕ result
          std::memcpy(recv, pre.data(), bytes);
        } else {
          std::memcpy(recv, t.data(), bytes);
          have_result = true;
        }
        op(t.data(), window.data());  // window = incoming ⊕ window
        window.swap(t);
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Collective entry points (algorithm selection + accounting)
// ---------------------------------------------------------------------------

void Comm::barrier() {
  require_valid();
  detail::chaos_before_op(st_, world_rank_, "barrier");
  CollCtx c = coll_begin(st_, ctx_, rank_, size_, world_rank_);
  dissemination_barrier(c);
  coll_finish(c, CollAlg::kBarrierDissemination);
}

void Comm::bcast_bytes(void* buf, std::size_t bytes, int root) {
  require_valid();
  if (root < 0 || root >= size_) throw CommError("bcast: root out of range");
  detail::chaos_before_op(st_, world_rank_, "bcast");
  CollCtx c = coll_begin(st_, ctx_, rank_, size_, world_rank_);
  if (size_ > 1) binomial_bcast(c, buf, bytes, root, kTagBcast);
  coll_finish(c, CollAlg::kBcastBinomial);
}

void Comm::gather_bytes(const void* send, std::size_t bytes, void* recv,
                        int root) {
  require_valid();
  if (root < 0 || root >= size_) throw CommError("gather: root out of range");
  detail::chaos_before_op(st_, world_rank_, "gather");
  CollCtx c = coll_begin(st_, ctx_, rank_, size_, world_rank_);
  if (size_ == 1) {
    if (bytes > 0) std::memcpy(recv, send, bytes);
  } else {
    binomial_gather(c, send, bytes, recv, root);
  }
  coll_finish(c, CollAlg::kGatherBinomial);
}

void Comm::scatter_bytes(const void* send, std::size_t bytes, void* recv,
                         int root) {
  require_valid();
  if (root < 0 || root >= size_) throw CommError("scatter: root out of range");
  detail::chaos_before_op(st_, world_rank_, "scatter");
  CollCtx c = coll_begin(st_, ctx_, rank_, size_, world_rank_);
  if (size_ == 1) {
    if (bytes > 0) std::memcpy(recv, send, bytes);
  } else {
    binomial_scatter(c, send, bytes, recv, root);
  }
  coll_finish(c, CollAlg::kScatterBinomial);
}

void Comm::allgather_bytes(const void* send, std::size_t bytes, void* recv) {
  require_valid();
  detail::chaos_before_op(st_, world_rank_, "allgather");
  CollCtx c = coll_begin(st_, ctx_, rank_, size_, world_rank_);
  CollAlg alg = CollAlg::kAllgatherRecDoubling;
  if (size_ == 1) {
    if (bytes > 0) std::memcpy(recv, send, bytes);
  } else if (bytes * static_cast<std::size_t>(size_) > kAllgatherSmallTotal) {
    alg = CollAlg::kAllgatherRing;
    ring_allgather(c, send, bytes, recv);
  } else if ((size_ & (size_ - 1)) == 0) {
    rd_allgather(c, send, bytes, recv);
  } else {
    alg = CollAlg::kAllgatherBruck;
    bruck_allgather(c, send, bytes, recv);
  }
  coll_finish(c, alg);
}

void Comm::allgatherv_bytes(const void* send, std::size_t send_bytes,
                            void* recv, const std::size_t* recv_bytes,
                            const std::size_t* recv_displs) {
  require_valid();
  if (send_bytes != recv_bytes[static_cast<std::size_t>(rank_)]) {
    throw CommError(kAllgathervMismatch);
  }
  detail::chaos_before_op(st_, world_rank_, "allgatherv");
  CollCtx c = coll_begin(st_, ctx_, rank_, size_, world_rank_);
  CollAlg alg = CollAlg::kAllgathervGatherBcast;
  if (size_ == 1) {
    if (send_bytes > 0) {
      std::memcpy(static_cast<std::byte*>(recv) + recv_displs[0], send,
                  send_bytes);
    }
  } else {
    std::size_t total = 0;
    for (int i = 0; i < size_; ++i) total += recv_bytes[i];
    if (total > kAllgathervSmallTotal) {
      alg = CollAlg::kAllgathervRing;
      ring_allgatherv(c, send, send_bytes, recv, recv_bytes, recv_displs);
    } else {
      allgatherv_gather_bcast(c, send, send_bytes, recv, recv_bytes,
                              recv_displs);
    }
  }
  coll_finish(c, alg);
}

void Comm::alltoall_bytes(const void* send, std::size_t per_peer, void* recv) {
  require_valid();
  detail::chaos_before_op(st_, world_rank_, "alltoall");
  CollCtx c = coll_begin(st_, ctx_, rank_, size_, world_rank_);
  CollAlg alg = CollAlg::kAlltoallBruck;
  if (size_ == 1) {
    if (per_peer > 0) std::memcpy(recv, send, per_peer);
  } else if (per_peer > kAlltoallBruckMaxBlock) {
    alg = CollAlg::kAlltoallPairwise;
    pairwise_alltoall(c, send, per_peer, recv);
  } else {
    bruck_alltoall(c, send, per_peer, recv);
  }
  coll_finish(c, alg);
}

void Comm::alltoallv_bytes(const void* send, const std::size_t* scounts,
                           const std::size_t* sdispls, void* recv,
                           const std::size_t* rcounts,
                           const std::size_t* rdispls) {
  require_valid();
  detail::chaos_before_op(st_, world_rank_, "alltoallv");
  CollCtx c = coll_begin(st_, ctx_, rank_, size_, world_rank_);
  if (size_ == 1) {
    if (scounts[0] != rcounts[0]) throw CommError(kAlltoallvMismatch);
    if (scounts[0] > 0) {
      std::memcpy(static_cast<std::byte*>(recv) + rdispls[0],
                  static_cast<const std::byte*>(send) + sdispls[0],
                  scounts[0]);
    }
  } else {
    pairwise_alltoallv(c, send, scounts, sdispls, recv, rcounts, rdispls);
  }
  coll_finish(c, CollAlg::kAlltoallvPairwise);
}

void Comm::reduce_bytes(const void* send, void* recv, std::size_t bytes,
                        const ReduceFn& op, int root) {
  require_valid();
  if (root < 0 || root >= size_) throw CommError("reduce: root out of range");
  detail::chaos_before_op(st_, world_rank_, "reduce");
  CollCtx c = coll_begin(st_, ctx_, rank_, size_, world_rank_);
  if (size_ == 1) {
    if (bytes > 0) std::memcpy(recv, send, bytes);
  } else {
    binomial_reduce(c, send, recv, bytes, op, root);
  }
  coll_finish(c, CollAlg::kReduceBinomial);
}

void Comm::allreduce_bytes(const void* send, void* recv, std::size_t bytes,
                           const ReduceFn& op) {
  require_valid();
  detail::chaos_before_op(st_, world_rank_, "allreduce");
  CollCtx c = coll_begin(st_, ctx_, rank_, size_, world_rank_);
  if (size_ == 1) {
    if (bytes > 0) std::memcpy(recv, send, bytes);
  } else {
    rd_allreduce(c, send, recv, bytes, op);
  }
  coll_finish(c, CollAlg::kAllreduceRecDoubling);
}

void Comm::exscan_bytes(const void* send, void* recv, std::size_t bytes,
                        const ReduceFn& op) {
  require_valid();
  detail::chaos_before_op(st_, world_rank_, "exscan");
  CollCtx c = coll_begin(st_, ctx_, rank_, size_, world_rank_);
  if (size_ > 1) dissemination_exscan(c, send, recv, bytes, op);
  coll_finish(c, CollAlg::kExscanDissemination);
}

// ---------------------------------------------------------------------------
// Communicator management
// ---------------------------------------------------------------------------

int Comm::node_id() const {
  require_valid();
  return st_->node_of(world_rank_);
}

int Comm::cores_per_node() const {
  require_valid();
  return st_->cores_per_node;
}

PhaseLedger& Comm::ledger() const {
  require_valid();
  return st_->ledgers[static_cast<std::size_t>(world_rank_)];
}

SpillChaosHook* Comm::spill_hook() const {
  require_valid();
  return &st_->spill_hooks[static_cast<std::size_t>(world_rank_)];
}

const CommStats& Comm::stats() const {
  require_valid();
  return st_->comm_stats[static_cast<std::size_t>(world_rank_)];
}

Comm Comm::split(int color, int key) const {
  require_valid();
  struct Triple {
    int color;
    int key;
    int parent_rank;
  };
  // const_cast-free: allgather is non-const because collectives mutate
  // per-rank state; split is logically const on the communicator itself.
  Comm& self = *const_cast<Comm*>(this);
  const Triple mine{color, key, rank_};
  const auto all = self.allgather(mine);

  // Distinct participating colors, sorted: group g is the g-th color.
  std::vector<int> colors;
  for (const Triple& t : all) {
    if (t.color != kUndefined) colors.push_back(t.color);
  }
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  const int ngroups = static_cast<int>(colors.size());

  // Parent rank 0 reserves a contiguous block of context ids.
  int base = 0;
  if (rank_ == 0) {
    std::lock_guard<std::mutex> lk(st_->mu);
    base = st_->next_ctx;
    st_->next_ctx += ngroups;
  }
  self.bcast_value(base, 0);

  if (color == kUndefined) return Comm();

  // Members of my group, ordered by (key, parent rank).
  std::vector<Triple> members;
  for (const Triple& t : all) {
    if (t.color == color) members.push_back(t);
  }
  std::stable_sort(members.begin(), members.end(),
                   [](const Triple& a, const Triple& b) {
                     return a.key != b.key ? a.key < b.key
                                           : a.parent_rank < b.parent_rank;
                   });
  int new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].parent_rank == rank_) {
      new_rank = static_cast<int>(i);
      break;
    }
  }
  const auto group_it = std::find(colors.begin(), colors.end(), color);
  const int ctx = base + static_cast<int>(group_it - colors.begin());

  // Register the new context (idempotent: every member computes the same
  // info; the first to take the lock inserts it).
  {
    std::lock_guard<std::mutex> lk(st_->mu);
    if (st_->contexts.find(ctx) == st_->contexts.end()) {
      const ContextInfo& parent = st_->contexts.at(ctx_);
      ContextInfo info;
      info.world_ranks.reserve(members.size());
      for (const Triple& t : members) {
        info.world_ranks.push_back(
            parent.world_ranks[static_cast<std::size_t>(t.parent_rank)]);
      }
      info.intra_node = true;
      for (int wr : info.world_ranks) {
        if (st_->node_of(wr) != st_->node_of(info.world_ranks.front())) {
          info.intra_node = false;
          break;
        }
      }
      st_->contexts.emplace(ctx, std::move(info));
    }
  }
  return Comm(st_, ctx, new_rank, static_cast<int>(members.size()),
              world_rank_);
}

Comm Comm::split_by_node() const {
  require_valid();
  return split(node_id(), rank_);
}

}  // namespace sdss::sim
