// Deterministic, seeded fault injection for the simulated cluster.
//
// A `ChaosSpec` describes *what kinds* of faults to inject (crashes,
// stragglers, delivery jitter) and with which seed; a `FaultPlan` is the
// fully materialized, deterministic schedule derived from it. Every decision
// the plan makes is a pure function of (seed, rank, comm-op index), so the
// same seed replays the same fault sequence bit-for-bit regardless of thread
// scheduling — the foundation of the crash-point sweep harness
// (bench/chaos_soak.cpp, tests/test_chaos.cpp).
//
// Fault model (see DESIGN.md §9):
//  * crash — the victim rank throws `SimInjectedFault` immediately before
//    executing its K-th communication operation (public Comm entry points
//    count; a collective counts as one op). Peers unwind via the normal
//    abort machinery and the run is classified kInjectedCrash.
//  * stall — the victim sleeps for a bounded wall-clock duration before a
//    communication op: a straggler. Stalls never change results, only
//    timing, and must not trip the deadlock watchdog (a stalled rank is
//    running, not blocked).
//  * jitter — a point-to-point message's delivery time is pushed into the
//    future by a bounded amount. FIFO per (src, tag) still holds: the
//    mailbox matcher never lets a later message from the same source
//    overtake an earlier in-flight one. Collective-internal messages are
//    never jittered (their transport relies on immediate delivery).
#pragma once

#include <cstdint>
#include <vector>

namespace sdss::sim {

enum class FaultKind : std::uint8_t {
  kCrash,
  kStall,
  kJitter,
  // Spill-to-disk I/O faults (sortcore/spill.hpp; op_index counts *spill*
  // ops on the victim rank, not comm ops):
  kSpillFail,     ///< the K-th spill op throws SpillIoError (failed write)
  kSpillCorrupt,  ///< frame written by the K-th spill op is corrupted on
                  ///< disk; the reload's checksum verification catches it
  kSpillStall,    ///< slow-disk straggler: sleep before the K-th spill op
};

/// Stable lowercase names used in telemetry reports ("crash", "stall",
/// "jitter", "spill-fail", "spill-corrupt", "spill-stall"). Round-trips via
/// fault_kind_from_name.
const char* fault_kind_name(FaultKind k);
FaultKind fault_kind_from_name(const char* name);

/// One scheduled — or, in RunResult::fault_events, one fired — fault.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  int rank = -1;                ///< victim world rank
  std::uint64_t op_index = 0;   ///< comm-op ordinal on that rank (0-based)
  double seconds = 0.0;         ///< stall duration / jitter delay; 0 for crash

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Declarative chaos configuration. Default-constructed = no chaos at all.
/// `forced` events are deterministic regardless of the seed; the *_prob /
/// crash_ranks knobs derive a random-but-reproducible schedule from it.
struct ChaosSpec {
  std::uint64_t seed = 0;

  /// Number of distinct ranks that get one scheduled crash each, at an op
  /// index drawn uniformly from [0, crash_op_range).
  int crash_ranks = 0;
  std::uint64_t crash_op_range = 64;

  /// Per-op probability that the rank stalls before the op, and the stall
  /// duration bound (uniform in (0, max_stall_s]).
  double stall_prob = 0.0;
  double max_stall_s = 0.005;

  /// Per-message probability of extra point-to-point delivery delay,
  /// uniform in (0, max_jitter_s].
  double jitter_prob = 0.0;
  double max_jitter_s = 0.0005;

  /// Per-spill-op probability of a slow-disk stall (uniform in
  /// (0, max_spill_stall_s]) — the endurance knob for the spill path.
  double spill_stall_prob = 0.0;
  double max_spill_stall_s = 0.002;

  /// Explicit events (e.g. "crash rank 3 at op 17" for a crash-point
  /// sweep; kSpillFail/kSpillCorrupt/kSpillStall index *spill* ops).
  /// kJitter entries are ignored — jitter is rate-based only.
  std::vector<FaultEvent> forced;

  /// True when this spec injects anything at all.
  bool any() const {
    return crash_ranks > 0 || stall_prob > 0.0 || jitter_prob > 0.0 ||
           spill_stall_prob > 0.0 || !forced.empty();
  }
};

/// The materialized schedule: cheap value, immutable after construction,
/// safe to read concurrently from every rank fiber and scheduler worker.
class FaultPlan {
 public:
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  FaultPlan() = default;
  FaultPlan(const ChaosSpec& spec, int num_ranks);

  bool enabled() const { return enabled_; }
  std::uint64_t seed() const { return seed_; }

  /// Op index at which `rank` is scheduled to crash, or kNever.
  std::uint64_t crash_op(int rank) const;

  /// Stall duration before op `k` on `rank`, 0 when none is scheduled.
  double stall_before(int rank, std::uint64_t k) const;

  /// Extra delivery delay for the point-to-point message `rank` sends as
  /// its op `k`, 0 when the message is not jittered.
  double jitter_for(int rank, std::uint64_t k) const;

  /// Spill-op index at which `rank`'s spill I/O throws, or kNever.
  std::uint64_t spill_fail_op(int rank) const;

  /// Spill-op index whose written frame is corrupted on disk, or kNever.
  std::uint64_t spill_corrupt_op(int rank) const;

  /// Stall duration before spill op `k` on `rank` (forced + seeded slow-disk
  /// draws), 0 when none is scheduled.
  double spill_stall_before(int rank, std::uint64_t k) const;

 private:
  bool enabled_ = false;
  std::uint64_t seed_ = 0;
  double stall_prob_ = 0.0;
  double max_stall_s_ = 0.0;
  double jitter_prob_ = 0.0;
  double max_jitter_s_ = 0.0;
  double spill_stall_prob_ = 0.0;
  double max_spill_stall_s_ = 0.0;
  std::vector<std::uint64_t> crash_op_;                 // per rank
  std::vector<std::uint64_t> spill_fail_op_;            // per rank
  std::vector<std::uint64_t> spill_corrupt_op_;         // per rank
  std::vector<std::vector<FaultEvent>> forced_stalls_;  // per rank, op-sorted
  std::vector<std::vector<FaultEvent>> forced_spill_stalls_;  // per rank
};

}  // namespace sdss::sim
