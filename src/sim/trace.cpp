#include "sim/trace.hpp"

namespace sdss::sim {

void write_chrome_trace(std::ostream& os,
                        std::span<const TraceEvent> events) {
  os << "[\n";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",\n";
    first = false;
    // Durations below 1 us still need to render; clamp to 1 us.
    const double us_begin = e.t_begin * 1e6;
    double us_dur = (e.t_end - e.t_begin) * 1e6;
    if (us_dur < 1.0) us_dur = 1.0;
    os << R"(  {"name": ")" << e.op << R"(", "cat": ")"
       << (e.kind == TraceEvent::Kind::kSend ? "p2p" : "collective")
       << R"(", "ph": "X", "pid": 1, "tid": )" << e.rank << R"(, "ts": )"
       << us_begin << R"(, "dur": )" << us_dur << R"(, "args": {"bytes": )"
       << e.bytes;
    if (e.peer >= 0) os << R"(, "peer": )" << e.peer;
    os << "}}";
  }
  os << "\n]\n";
}

}  // namespace sdss::sim
