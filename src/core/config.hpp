// SDS-Sort configuration: the paper's tunables (stable flag sf; thresholds
// τm, τo, τs; cores per node c) plus simulation and ablation knobs.
#pragma once

#include <cstddef>

#include "sortcore/algo.hpp"

namespace sdss {

enum class PivotSelection {
  kAuto,      ///< distributed bitonic when p is a power of two, else gather
  kBitonic,   ///< force distributed bitonic (p must be a power of two)
  kGather,    ///< allgather local pivots, sort locally, select
  kHistogram, ///< iterative histogramming of the data (Solomonik & Kale,
              ///< discussed in paper Section 2.4; the skew-aware partition
              ///< repairs its duplicate-key blind spot downstream)
};

struct Config {
  /// sf: preserve the relative order of duplicate keys (paper Section 2.5.2).
  bool stable = false;

  /// τm: node-level merging happens when the average all-to-all message
  /// (local bytes / p) is at most this size (paper Section 2.3; empirically
  /// 160 MB on Edison's Aries). 0 disables node merging. The default is the
  /// laptop-scale equivalent: merge only genuinely small exchanges.
  std::size_t tau_m_bytes = 0;

  /// τo: overlap the exchange with local ordering only when p < τo and
  /// stable sorting is not requested (paper Section 2.6; 4096 on Edison).
  std::size_t tau_o = 4096;

  /// τs: below τs processes the final local ordering merges the p received
  /// chunks; at or above it, a full re-sort is cheaper (paper Section 2.7;
  /// 4000 on Edison).
  std::size_t tau_s = 4000;

  /// c: shared-memory parallelism for local sorting/merging. 0 means "use
  /// the communicator's cores-per-node".
  int threads = 0;

  /// Simulated per-rank memory budget, in records, applied to the post-
  /// exchange receive volume. 0 = unlimited. Models Edison's 64 GB nodes;
  /// exceeding it throws SimOomError (how HykSort fails in Figs. 8/10).
  std::size_t mem_limit_records = 0;

  /// Ablation: disable to use plain duplicated-pivot partitioning (the
  /// behaviour SDS-Sort fixes).
  bool skew_aware = true;

  /// Ablation: disable to binary-search the whole local array instead of
  /// the O(n/p) window bracketed by local pivots (paper Section 2.5.1).
  bool local_pivot_partition = true;

  PivotSelection pivot_selection = PivotSelection::kAuto;

  /// Per-chunk kernel of the shared-memory local sorts (paper: "dynamic
  /// selection of data processing algorithms"). kRadix/kAuto apply only to
  /// unsigned-integer keys.
  LocalSortAlgo local_algo = LocalSortAlgo::kComparison;

  /// Run count at or below which the re-sort path merges natural runs.
  std::size_t run_merge_threshold = 64;
};

}  // namespace sdss
