// SDS-Sort configuration: the paper's tunables (stable flag sf; thresholds
// τm, τo, τs; cores per node c) plus simulation and ablation knobs.
#pragma once

#include <cstddef>
#include <string>

#include "sortcore/algo.hpp"

namespace sdss {

/// What exceeding `mem_limit_records` means (see sortcore/spill.hpp and
/// DESIGN.md §12).
enum class MemoryPolicy {
  /// Today's semantics: throw SimOomError. Every existing gate/baseline
  /// runs under this, so its counters stay byte-identical.
  kStrict,
  /// Graceful out-of-core degradation: an oversized exchange drains into
  /// checksummed spill runs on disk and the final ordering becomes an
  /// external k-way merge bounded by the same budget — the job completes
  /// slowly instead of dying (ROADMAP item 5; turns Figs. 8/10's "OOM"
  /// cells into measured slowdowns).
  kSpill,
};

enum class PivotSelection {
  kAuto,      ///< distributed bitonic when p is a power of two, else gather
  kBitonic,   ///< force distributed bitonic (p must be a power of two)
  kGather,    ///< allgather local pivots, sort locally, select
  kHistogram, ///< iterative histogramming of the data (Solomonik & Kale,
              ///< discussed in paper Section 2.4; the skew-aware partition
              ///< repairs its duplicate-key blind spot downstream)
  kHistogramEps, ///< ε-bounded histogram refinement (HSS-style): iterate
                 ///< until every boundary's global rank is within
                 ///< ε·N/(2p) of target, cutting inside duplicate runs
                 ///< with fractional-rank splitters when no key value has
                 ///< the target rank. Guarantees λ(recv_records) <= 1+ε.
};

/// Tunables of the ε-bounded refinement (PivotSelection::kHistogramEps).
/// See DESIGN.md "ε-bounded histogram splitters".
struct HistogramEpsConfig {
  /// Load-imbalance bound: post-exchange λ = max/avg receive volume is at
  /// most 1+ε (each boundary is placed within ε·N/(2p) records of its
  /// target, so adjacent-boundary errors sum to at most ε·N/p).
  double epsilon = 0.1;
  /// Refinement-round cap. On hitting it the engine falls back to the best
  /// bracketing key per unresolved boundary and reports the achieved ε.
  int max_rounds = 32;
  /// Candidate keys contributed per rank per round. 0 = auto:
  /// max(8, 4k/p). Each round's contribution is additionally capped at the
  /// previous round's, so the gathered candidate payload never grows.
  std::size_t samples_per_round = 0;
  /// Hybrid mode: seed the first round with the rank's regular stride
  /// samples (the sampling path's pivot candidates) instead of fresh
  /// whole-array probes — typically resolves near-uniform boundaries in
  /// round one and leaves refinement to the skewed ones.
  bool seed_with_samples = false;
};

struct Config {
  /// sf: preserve the relative order of duplicate keys (paper Section 2.5.2).
  bool stable = false;

  /// τm: node-level merging happens when the average all-to-all message
  /// (local bytes / p) is at most this size (paper Section 2.3; empirically
  /// 160 MB on Edison's Aries). 0 disables node merging. The default is the
  /// laptop-scale equivalent: merge only genuinely small exchanges.
  std::size_t tau_m_bytes = 0;

  /// τo: overlap the exchange with local ordering only when p < τo and
  /// stable sorting is not requested (paper Section 2.6; 4096 on Edison).
  std::size_t tau_o = 4096;

  /// τs: below τs processes the final local ordering merges the p received
  /// chunks; at or above it, a full re-sort is cheaper (paper Section 2.7;
  /// 4000 on Edison).
  std::size_t tau_s = 4000;

  /// c: shared-memory parallelism for local sorting/merging. 0 means "use
  /// the communicator's cores-per-node".
  int threads = 0;

  /// Simulated per-rank memory budget, in records, applied to the post-
  /// exchange receive volume. 0 = unlimited. Models Edison's 64 GB nodes;
  /// exceeding it throws SimOomError (how HykSort fails in Figs. 8/10).
  std::size_t mem_limit_records = 0;

  /// What exceeding the budget does: kStrict throws SimOomError (default,
  /// preserves all existing semantics), kSpill degrades to the spill-to-disk
  /// exchange + external merge.
  MemoryPolicy memory_policy = MemoryPolicy::kStrict;

  /// Spill tuning (kSpill only): records per spill frame — the checksum,
  /// reload, and staging granularity of the out-of-core path.
  std::size_t spill_frame_records = 4096;

  /// Directory for spill run files; "" uses the system temp directory.
  std::string spill_dir;

  /// Ablation: disable to use plain duplicated-pivot partitioning (the
  /// behaviour SDS-Sort fixes).
  bool skew_aware = true;

  /// Ablation: disable to binary-search the whole local array instead of
  /// the O(n/p) window bracketed by local pivots (paper Section 2.5.1).
  bool local_pivot_partition = true;

  PivotSelection pivot_selection = PivotSelection::kAuto;

  /// ε-bounded refinement tunables, used when pivot_selection is
  /// kHistogramEps.
  HistogramEpsConfig histogram_eps;

  /// Per-chunk kernel of the shared-memory local sorts (paper: "dynamic
  /// selection of data processing algorithms"). kRadix/kAuto apply only to
  /// unsigned-integer keys.
  LocalSortAlgo local_algo = LocalSortAlgo::kComparison;

  /// Run count at or below which the re-sort path merges natural runs.
  std::size_t run_merge_threshold = 64;
};

}  // namespace sdss
