// Adaptive final local ordering (paper Section 2.7, Fig. 1 lines 17-21).
//
// After a blocking exchange the receive buffer is p sorted chunks. Two ways
// to finish:
//  * merging (SdssMergeAll): k-way merge of the p chunks — O(n log p), the
//    winner while p is modest;
//  * sorting (SdssLocalSort): re-sort the whole buffer — O(n log n) but flat
//    in p, and run-aware sorting exploits the partial order, so it wins for
//    very large p.
// The driver picks by τs. Stability: the merge path is stable across source
// ranks by construction; the sort path uses a stable sort.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sortcore/arena.hpp"
#include "sortcore/key.hpp"
#include "sortcore/local_sort.hpp"
#include "sortcore/runs.hpp"

namespace sdss {

/// SdssMergeAll: merge the p received chunks (laid out at `displs` in
/// `recv`) with `threads`-way parallel skew-aware merging.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<T> merge_all(std::vector<T>&& recv,
                         std::span<const std::size_t> counts,
                         std::span<const std::size_t> displs, bool stable,
                         int threads, KeyFn kf = {}) {
  ArenaScope scope(ScratchArena::for_thread());
  auto chunks = scope.acquire<std::span<const T>>(counts.size());
  for (std::size_t s = 0; s < counts.size(); ++s) {
    chunks[s] = std::span<const T>(recv.data() + displs[s], counts[s]);
  }
  std::vector<T> out(recv.size());
  parallel_merge_chunks<T, KeyFn>(chunks, out,
                                  static_cast<std::size_t>(threads < 1 ? 1
                                                                       : threads),
                                  stable, MergePartitionMethod::kSkewAware, kf);
  return out;
}

/// The sorting alternative: re-sort the receive buffer. Sequential calls are
/// run-aware (O(n) on already-ordered data); parallel calls use
/// SdssLocalSort.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<T> resort_all(std::vector<T>&& recv, bool stable, int threads,
                          std::size_t run_merge_threshold, KeyFn kf = {}) {
  if (threads <= 1) {
    run_aware_sort<T, KeyFn>(recv, stable, kf, run_merge_threshold);
  } else {
    LocalSortConfig cfg;
    cfg.threads = threads;
    cfg.stable = stable;
    local_sort<T, KeyFn>(recv, cfg, kf);
  }
  return std::move(recv);
}

}  // namespace sdss
