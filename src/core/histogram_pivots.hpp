// Histogram-based splitter selection.
//
// Two engines live here:
//
//  * histogram_select_splitters — the legacy 2-round refiner (Solomonik &
//    Kale, the paper's [24]; discussed and set aside in Section 2.4).
//    Iteratively refine a candidate set of key values so that the global
//    rank of splitter g approaches g·N/k. Its documented weakness — the
//    paper's reason for preferring regular sampling + skew-aware
//    partitioning — is that on duplicate-heavy keys no key VALUE has the
//    target rank, so the chosen splitters collapse onto the duplicated
//    value; SDS-Sort's partitioner then has to repair the imbalance
//    downstream, while HykSort's plain partition cannot.
//
//  * histogram_eps_splitters — the ε-bounded production engine (HSS-style:
//    Harsh, Kalé & Solomonik 2019; the (α,k)-minimal bound is the
//    theoretical target, see PAPERS.md). It fixes the duplicate blind spot
//    instead of working around it: refinement terminates only when every
//    boundary's global rank is within ε·N/(2k) of target, and when no key
//    value has the target rank — the duplicate case — it emits a
//    *fractional-rank* splitter (core/splitter.hpp) that cuts inside the
//    duplicated value's run at an exact global position. Candidate sets are
//    interval-pruned: each round samples only inside the still-unresolved
//    brackets, and each rank's contribution is capped at its previous
//    round's, so the per-round allgather/allreduce payload is
//    non-increasing (and in practice shrinks geometrically as boundaries
//    resolve). The partition consumes the result via
//    sdss_partition_splitters, giving λ(recv_records) <= 1+ε even on
//    100%-duplicate input.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/splitter.hpp"
#include "sim/comm.hpp"
#include "sortcore/key.hpp"

namespace sdss {

struct HistogramSelectConfig {
  std::size_t samples_per_rank = 64;  ///< candidates contributed per round
  int refine_rounds = 2;
};

/// Select k-1 splitter keys over the distributed sorted data such that
/// splitter g's global rank is close to g·N/k. Collective; every rank
/// returns the same non-decreasing splitter vector. Best effort: no bound
/// on the residual rank error (use histogram_eps_splitters for that).
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<KeyType<KeyFn, T>> histogram_select_splitters(
    sim::Comm& comm, std::span<const T> sorted, int k,
    const HistogramSelectConfig& cfg = {}, KeyFn kf = {}) {
  using K = KeyType<KeyFn, T>;
  const std::uint64_t total = comm.allreduce<std::uint64_t>(
      static_cast<std::uint64_t>(sorted.size()),
      [](std::uint64_t a, std::uint64_t b) { return a + b; });

  auto sample_range = [&](std::size_t lo, std::size_t hi, std::size_t count) {
    std::vector<K> out;
    if (hi <= lo || count == 0) return out;
    const std::size_t len = hi - lo;
    const std::size_t c = std::min(count, len);
    out.reserve(c);
    for (std::size_t i = 0; i < c; ++i) {
      out.push_back(kf(sorted[lo + i * len / c]));
    }
    return out;
  };

  auto global_ranks = [&](const std::vector<K>& cands) {
    std::vector<std::uint64_t> local(cands.size());
    auto less_key = [&kf](const K& key, const T& e) { return key < kf(e); };
    for (std::size_t i = 0; i < cands.size(); ++i) {
      local[i] = static_cast<std::uint64_t>(
          std::upper_bound(sorted.begin(), sorted.end(), cands[i], less_key) -
          sorted.begin());
    }
    return comm.allreduce_vec<std::uint64_t>(
        local, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  };

  std::vector<K> cands = comm.allgatherv<K>(
      sample_range(0, sorted.size(), cfg.samples_per_rank));
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end()), cands.end());

  std::vector<K> splitters(static_cast<std::size_t>(k - 1));
  for (int round = 0;; ++round) {
    if (cands.empty()) {
      // Degenerate (no data anywhere).
      splitters.assign(static_cast<std::size_t>(k - 1), KeyLimits<K>::max());
      return splitters;
    }
    const auto ranks = global_ranks(cands);
    // Candidates are sorted and ranks are cumulative counts, so `ranks` is
    // non-decreasing: for every target the best candidate and the
    // bracketing pair sit at the boundary index "first rank >= target",
    // and because targets increase with g one pointer sweeps the whole
    // candidate/target merge in O(|cands| + k) instead of O(k·|cands|).
    if (round + 1 >= cfg.refine_rounds) {
      std::size_t j = 0;
      for (int g = 1; g < k; ++g) {
        const std::uint64_t target = total * static_cast<std::uint64_t>(g) /
                                     static_cast<std::uint64_t>(k);
        while (j < cands.size() && ranks[j] < target) ++j;
        std::size_t best;
        if (j == 0) {
          best = 0;
        } else if (j == cands.size()) {
          best = cands.size() - 1;
        } else {
          // Prefer the lower candidate on an error tie (the legacy scan
          // kept the first strict minimum, which was the lower index).
          best = (target - ranks[j - 1] <= ranks[j] - target) ? j - 1 : j;
        }
        splitters[static_cast<std::size_t>(g - 1)] = cands[best];
      }
      std::sort(splitters.begin(), splitters.end());
      return splitters;
    }
    // Refinement: resample locally inside the bracket around each target,
    // and prune candidates that bracket no target — without pruning the
    // allgatherv/allreduce payloads grow monotonically across rounds.
    std::vector<K> local_next;
    std::vector<char> keep(cands.size(), 0);
    auto less_key = [&kf](const K& key, const T& e) { return key < kf(e); };
    auto key_less = [&kf](const T& e, const K& key) { return kf(e) < key; };
    const std::size_t per_target = std::max<std::size_t>(
        2, cfg.samples_per_rank / static_cast<std::size_t>(k));
    std::size_t j = 0;
    for (int g = 1; g < k; ++g) {
      const std::uint64_t target = total * static_cast<std::uint64_t>(g) /
                                   static_cast<std::uint64_t>(k);
      while (j < cands.size() && ranks[j] < target) ++j;
      const bool have_lo = j > 0;
      const bool have_hi = j < cands.size();
      std::size_t lo = 0;
      std::size_t hi = sorted.size();
      if (have_lo) {
        keep[j - 1] = 1;
        lo = static_cast<std::size_t>(
            std::lower_bound(sorted.begin(), sorted.end(), cands[j - 1],
                             key_less) -
            sorted.begin());
      }
      if (have_hi) {
        keep[j] = 1;
        hi = static_cast<std::size_t>(
            std::upper_bound(sorted.begin(), sorted.end(), cands[j],
                             less_key) -
            sorted.begin());
      }
      auto extra = sample_range(lo, hi, per_target);
      local_next.insert(local_next.end(), extra.begin(), extra.end());
    }
    std::vector<K> pruned;
    pruned.reserve(2 * static_cast<std::size_t>(k));
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (keep[i]) pruned.push_back(cands[i]);
    }
    auto next = comm.allgatherv<K>(local_next);
    cands = std::move(pruned);
    cands.insert(cands.end(), next.begin(), next.end());
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
  }
}

namespace detail {

/// Append up to `count` evenly spaced midpoint keys of sorted[lo, hi).
/// Midpoints (not prefix positions) make a single sample bisect its window,
/// which is what gives the refinement its per-round geometric shrink.
template <typename T, typename KeyFn, typename K>
void midpoint_samples(std::span<const T> sorted, std::size_t lo,
                      std::size_t hi, std::size_t count, KeyFn& kf,
                      std::vector<K>& out) {
  if (hi <= lo || count == 0) return;
  const std::size_t len = hi - lo;
  const std::size_t c = std::min(count, len);
  for (std::size_t i = 0; i < c; ++i) {
    out.push_back(kf(sorted[lo + (2 * i + 1) * len / (2 * c)]));
  }
}

}  // namespace detail

/// ε-bounded splitter refinement. Returns k-1 splitters (plain or
/// fractional, sorted, identical on every rank) such that the number of
/// records below boundary g differs from g·N/k by at most ε·N/(2k) — so
/// adjacent-boundary errors sum to ε·N/k and the post-exchange
/// λ = max/avg receive volume is at most 1+ε (plus the O(k/N) integer
/// rounding of the targets themselves). Duplicate-heavy data resolves
/// *exactly* (err 0) via fractional splitters, including 100%-duplicate
/// input. Collective and deterministic: every counter in `stats_out` is a
/// pure function of the distributed data, so CI can diff it.
///
/// `seed_keys` (optional, the hybrid mode) pre-loads round 1 with the
/// caller's regular stride samples instead of fresh whole-array probes.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<Splitter<KeyType<KeyFn, T>>> histogram_eps_splitters(
    sim::Comm& comm, std::span<const T> sorted, int k,
    const HistogramEpsConfig& cfg = {}, KeyFn kf = {},
    RefineStats* stats_out = nullptr,
    std::span<const KeyType<KeyFn, T>> seed_keys = {}) {
  using K = KeyType<KeyFn, T>;
  RefineStats local_stats;
  RefineStats& stats = stats_out != nullptr ? *stats_out : local_stats;
  stats = RefineStats{};
  stats.target_epsilon = cfg.epsilon;

  std::vector<Splitter<K>> splitters;
  if (k <= 1) return splitters;
  const auto m = static_cast<std::size_t>(k - 1);
  const std::size_t n = sorted.size();
  const std::uint64_t total = comm.allreduce<std::uint64_t>(
      static_cast<std::uint64_t>(n),
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  stats.total_records = total;
  if (total == 0) {
    splitters.assign(m, Splitter<K>{KeyLimits<K>::max(),
                                    Splitter<K>::kTakeAll, false});
    return splitters;
  }
  // Half the ε budget per boundary: a partition's size is bounded by the
  // errors of BOTH its boundaries, so ε/2 each keeps λ <= 1+ε.
  const auto tol = static_cast<std::uint64_t>(
      cfg.epsilon * static_cast<double>(total) /
      (2.0 * static_cast<double>(k)));
  stats.tolerance_records = tol;

  auto key_less = [&kf](const T& e, const K& key) { return kf(e) < key; };
  auto less_key = [&kf](const K& key, const T& e) { return key < kf(e); };
  auto lower_idx = [&](const K& key) {
    return static_cast<std::size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), key, key_less) -
        sorted.begin());
  };
  auto upper_idx = [&](const K& key) {
    return static_cast<std::size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), key, less_key) -
        sorted.begin());
  };

  // Per-boundary state. `want` is the desired number of records strictly
  // below the boundary. The bracket keys have KNOWN global ranks:
  // lo_below_eq = #{key <= lo_key} < want, and hi_below = #{key < hi_key}
  // > want, so the boundary key always lies strictly between the brackets
  // and the local resample window [upper(lo_key), lower(hi_key)) only ever
  // shrinks.
  struct Target {
    std::uint64_t want = 0;
    bool resolved = false;
    bool have_lo = false, have_hi = false;
    K lo_key{}, hi_key{};
    std::uint64_t lo_below_eq = 0;
    std::uint64_t hi_below = 0;
    Splitter<K> chosen{};
    std::uint64_t err = 0;
  };
  std::vector<Target> targets(m);
  for (std::size_t g = 1; g <= m; ++g) {
    targets[g - 1].want =
        total * static_cast<std::uint64_t>(g) / static_cast<std::uint64_t>(k);
  }
  auto interval_records = [&](const Target& t) {
    return (t.have_hi ? t.hi_below : total) -
           (t.have_lo ? t.lo_below_eq : 0);
  };

  const std::size_t budget =
      cfg.samples_per_round != 0
          ? cfg.samples_per_round
          : std::max<std::size_t>(
                8, 4 * static_cast<std::size_t>(k) /
                       static_cast<std::size_t>(comm.size()));
  // Each round's contribution is capped at the previous round's: together
  // with windows that only shrink this makes the gathered candidate count
  // non-increasing by construction — the telemetry gate asserts it.
  std::size_t prev_contrib = std::numeric_limits<std::size_t>::max();

  int round = 0;
  while (round < cfg.max_rounds) {
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < m; ++i) {
      if (!targets[i].resolved) active.push_back(i);
    }
    if (active.empty()) break;
    ++round;

    // ---- contribute candidates (keys of records in unresolved windows) --
    std::vector<K> mine;
    const std::size_t cap = std::min(budget, prev_contrib);
    if (round == 1) {
      if (!seed_keys.empty()) {
        const std::size_t c = std::min(cap, seed_keys.size());
        for (std::size_t i = 0; i < c; ++i) {
          mine.push_back(seed_keys[i * seed_keys.size() / c]);
        }
      }
      if (mine.size() < cap) {
        detail::midpoint_samples(sorted, 0, n, cap - mine.size(), kf, mine);
      }
    } else {
      // Serve widest intervals first (interval sizes are global knowledge
      // — the bracket ranks came out of an allreduce — so the order is
      // identical on every rank), but rotate each rank's starting offset:
      // when the per-rank cap covers only a few targets, p rotated windows
      // of ~cap targets tile the whole active list, so every target gets
      // ~p·cap/actives probes per round instead of the same few targets
      // hogging all p contributions (which would need O(k/cap) rounds).
      std::vector<std::size_t> order = active;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return interval_records(targets[a]) >
                                interval_records(targets[b]);
                       });
      const std::size_t per_target =
          std::max<std::size_t>(1, cap / active.size());
      const std::size_t start =
          (static_cast<std::size_t>(comm.rank()) * order.size()) /
          static_cast<std::size_t>(comm.size());
      for (std::size_t q = 0; q < order.size(); ++q) {
        if (mine.size() >= cap) break;
        const Target& t = targets[order[(start + q) % order.size()]];
        const std::size_t lo = t.have_lo ? upper_idx(t.lo_key) : 0;
        const std::size_t hi = t.have_hi ? lower_idx(t.hi_key) : n;
        detail::midpoint_samples(
            sorted, lo, hi, std::min(per_target, cap - mine.size()), kf,
            mine);
      }
    }
    std::sort(mine.begin(), mine.end());
    mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
    prev_contrib = mine.size();

    auto gathered = comm.allgatherv<K>(mine);
    RefineRound rr;
    rr.active_targets = active.size();
    rr.candidates = gathered.size();
    rr.comm_bytes = gathered.size() * sizeof(K);
    std::sort(gathered.begin(), gathered.end());
    gathered.erase(std::unique(gathered.begin(), gathered.end()),
                   gathered.end());
    rr.unique_candidates = gathered.size();
    stats.rounds = round;
    if (gathered.empty()) {
      stats.per_round.push_back(rr);
      break;  // nothing left to probe anywhere: fall back below
    }

    // ---- global ranks: below(v) and below_eq(v) for every candidate ----
    const std::size_t nc = gathered.size();
    std::vector<std::uint64_t> local(2 * nc);
    for (std::size_t i = 0; i < nc; ++i) {
      local[i] = lower_idx(gathered[i]);
      local[nc + i] = upper_idx(gathered[i]);
    }
    const auto ranks = comm.allreduce_vec<std::uint64_t>(
        local, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    rr.comm_bytes += 2 * nc * sizeof(std::uint64_t);
    const auto below = [&](std::size_t i) { return ranks[i]; };
    const auto below_eq = [&](std::size_t i) { return ranks[nc + i]; };

    // ---- merged resolution sweep -----------------------------------------
    // Candidates sorted by key => below/below_eq non-decreasing; actives
    // visited in increasing `want`, so one pointer covers all targets.
    std::size_t j = 0;
    for (std::size_t idx : active) {
      Target& t = targets[idx];
      while (j < nc && below_eq(j) < t.want) ++j;
      if (j < nc && below(j) <= t.want) {
        // Candidate j's duplicate run covers global position `want`: the
        // boundary resolves EXACTLY. A cut at the run's end is a plain
        // splitter; anywhere inside is a fractional one.
        if (below_eq(j) == t.want) {
          t.chosen = Splitter<K>{gathered[j], Splitter<K>::kTakeAll, false};
        } else {
          t.chosen = Splitter<K>{gathered[j], t.want - below(j), true};
        }
        t.err = 0;
        t.resolved = true;
        continue;
      }
      // Nearest plain cut: the candidates bracketing `want`.
      std::uint64_t best_err = std::numeric_limits<std::uint64_t>::max();
      std::size_t best = nc;
      if (j < nc) {
        best_err = below_eq(j) - t.want;
        best = j;
      }
      if (j > 0 && t.want - below_eq(j - 1) < best_err) {
        best_err = t.want - below_eq(j - 1);
        best = j - 1;
      }
      if (best != nc && best_err <= tol) {
        t.chosen = Splitter<K>{gathered[best], Splitter<K>::kTakeAll, false};
        t.err = best_err;
        t.resolved = true;
        continue;
      }
      // Unresolved: tighten the bracket. j-1 has below_eq < want (lower),
      // j has below > want (upper — the straddle test above failed).
      if (j > 0 && (!t.have_lo || below_eq(j - 1) > t.lo_below_eq)) {
        t.lo_key = gathered[j - 1];
        t.lo_below_eq = below_eq(j - 1);
        t.have_lo = true;
      }
      if (j < nc && (!t.have_hi || below(j) < t.hi_below)) {
        t.hi_key = gathered[j];
        t.hi_below = below(j);
        t.have_hi = true;
      }
      if (best != nc && best_err > rr.max_err) rr.max_err = best_err;
    }
    stats.per_round.push_back(rr);
  }

  // Fallback for targets the round cap (or a dry probe pool) left
  // unresolved: the best bracketing cut, with the residual error reported.
  std::uint64_t max_err = 0;
  for (Target& t : targets) {
    if (!t.resolved) {
      stats.hit_round_cap = true;
      const std::uint64_t lo_err =
          t.have_lo ? t.want - t.lo_below_eq
                    : std::numeric_limits<std::uint64_t>::max();
      const std::uint64_t hi_err =
          t.have_hi ? t.hi_below - t.want
                    : std::numeric_limits<std::uint64_t>::max();
      if (t.have_lo && lo_err <= hi_err) {
        t.chosen = Splitter<K>{t.lo_key, Splitter<K>::kTakeAll, false};
        t.err = lo_err;
      } else if (t.have_hi) {
        // take_below = 0: the boundary sits immediately below hi_key's run.
        t.chosen = Splitter<K>{t.hi_key, 0, true};
        t.err = hi_err;
      } else {
        t.chosen = Splitter<K>{KeyLimits<K>::max(), Splitter<K>::kTakeAll,
                               false};
        t.err = total - t.want;
      }
    }
    if (t.err > max_err) max_err = t.err;
    if (t.chosen.fractional) ++stats.fractional_splitters;
    splitters.push_back(t.chosen);
  }
  stats.achieved_epsilon =
      static_cast<double>(max_err) * 2.0 * static_cast<double>(k) /
      static_cast<double>(total);
  // Boundary positions are monotone in (key, take_below), so sorting the
  // splitters guarantees monotone exchange bounds even when tolerance slop
  // resolved two nearby targets out of key order.
  std::sort(splitters.begin(), splitters.end());
  return splitters;
}

}  // namespace sdss
