// Histogram-based splitter selection (Solomonik & Kale, the paper's [24];
// discussed and set aside in Section 2.4).
//
// Iteratively refine a candidate set of key values so that the global rank
// of splitter g approaches g·N/k: sample candidates from the local sorted
// data, allreduce their global ranks, keep the closest per target, resample
// inside the bracketing interval. HykSort selects its k-way splitters this
// way, and SDS-Sort can optionally use it for global pivots
// (PivotSelection::kHistogram). Its documented weakness — the paper's
// reason for preferring regular sampling + skew-aware partitioning — is
// that on duplicate-heavy keys no key VALUE has the target rank, so the
// chosen splitters collapse onto the duplicated value; SDS-Sort's
// partitioner then has to repair the imbalance downstream, while HykSort's
// plain partition cannot.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/comm.hpp"
#include "sortcore/key.hpp"

namespace sdss {

struct HistogramSelectConfig {
  std::size_t samples_per_rank = 64;  ///< candidates contributed per round
  int refine_rounds = 2;
};

/// Select k-1 splitter keys over the distributed sorted data such that
/// splitter g's global rank is close to g·N/k. Collective; every rank
/// returns the same non-decreasing splitter vector.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<KeyType<KeyFn, T>> histogram_select_splitters(
    sim::Comm& comm, std::span<const T> sorted, int k,
    const HistogramSelectConfig& cfg = {}, KeyFn kf = {}) {
  using K = KeyType<KeyFn, T>;
  const std::uint64_t total = comm.allreduce<std::uint64_t>(
      static_cast<std::uint64_t>(sorted.size()),
      [](std::uint64_t a, std::uint64_t b) { return a + b; });

  auto sample_range = [&](std::size_t lo, std::size_t hi, std::size_t count) {
    std::vector<K> out;
    if (hi <= lo || count == 0) return out;
    const std::size_t len = hi - lo;
    const std::size_t c = std::min(count, len);
    out.reserve(c);
    for (std::size_t i = 0; i < c; ++i) {
      out.push_back(kf(sorted[lo + i * len / c]));
    }
    return out;
  };

  auto global_ranks = [&](const std::vector<K>& cands) {
    std::vector<std::uint64_t> local(cands.size());
    auto less_key = [&kf](const K& key, const T& e) { return key < kf(e); };
    for (std::size_t i = 0; i < cands.size(); ++i) {
      local[i] = static_cast<std::uint64_t>(
          std::upper_bound(sorted.begin(), sorted.end(), cands[i], less_key) -
          sorted.begin());
    }
    return comm.allreduce_vec<std::uint64_t>(
        local, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  };

  std::vector<K> cands = comm.allgatherv<K>(
      sample_range(0, sorted.size(), cfg.samples_per_rank));
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end()), cands.end());

  std::vector<K> splitters(static_cast<std::size_t>(k - 1));
  for (int round = 0;; ++round) {
    if (cands.empty()) {
      // Degenerate (no data anywhere).
      splitters.assign(static_cast<std::size_t>(k - 1), KeyLimits<K>::max());
      return splitters;
    }
    const auto ranks = global_ranks(cands);
    if (round + 1 >= cfg.refine_rounds) {
      for (int g = 1; g < k; ++g) {
        const std::uint64_t target = total * static_cast<std::uint64_t>(g) /
                                     static_cast<std::uint64_t>(k);
        std::size_t best = 0;
        std::uint64_t best_err = std::numeric_limits<std::uint64_t>::max();
        for (std::size_t i = 0; i < cands.size(); ++i) {
          const std::uint64_t err =
              ranks[i] > target ? ranks[i] - target : target - ranks[i];
          if (err < best_err) {
            best_err = err;
            best = i;
          }
        }
        splitters[static_cast<std::size_t>(g - 1)] = cands[best];
      }
      std::sort(splitters.begin(), splitters.end());
      return splitters;
    }
    // Refinement: resample locally inside the bracket around each target.
    std::vector<K> local_next;
    auto less_key = [&kf](const K& key, const T& e) { return key < kf(e); };
    auto key_less = [&kf](const T& e, const K& key) { return kf(e) < key; };
    const std::size_t per_target = std::max<std::size_t>(
        2, cfg.samples_per_rank / static_cast<std::size_t>(k));
    for (int g = 1; g < k; ++g) {
      const std::uint64_t target = total * static_cast<std::uint64_t>(g) /
                                   static_cast<std::uint64_t>(k);
      std::size_t lo_idx = 0;
      bool have_lo = false;
      std::size_t hi_idx = cands.size() - 1;
      bool have_hi = false;
      for (std::size_t i = 0; i < cands.size(); ++i) {
        if (ranks[i] < target) {
          lo_idx = i;
          have_lo = true;
        } else if (!have_hi) {
          hi_idx = i;
          have_hi = true;
        }
      }
      std::size_t lo = 0;
      std::size_t hi = sorted.size();
      if (have_lo) {
        lo = static_cast<std::size_t>(
            std::lower_bound(sorted.begin(), sorted.end(), cands[lo_idx],
                             key_less) -
            sorted.begin());
      }
      if (have_hi) {
        hi = static_cast<std::size_t>(
            std::upper_bound(sorted.begin(), sorted.end(), cands[hi_idx],
                             less_key) -
            sorted.begin());
      }
      auto extra = sample_range(lo, hi, per_target);
      local_next.insert(local_next.end(), extra.begin(), extra.end());
    }
    auto next = comm.allgatherv<K>(local_next);
    cands.insert(cands.end(), next.begin(), next.end());
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
  }
}

}  // namespace sdss
