// The all-to-all data exchange (paper Fig. 1 lines 10-16 and Section 2.6).
//
// `plan_exchange` turns the partition boundaries into the count/displacement
// quadruple, exchanging counts with one alltoall and enforcing the simulated
// per-rank memory budget (the OOM that kills HykSort on skewed data).
//
// Two exchange modes:
//  * sync_exchange: blocking alltoallv (required for stable sorting, whose
//    source-rank order the blocking collective preserves; also used above
//    τo processes).
//  * overlap_exchange_merge: SdssAlltoallvAsync + SdssFinished +
//    SdssMergeTwo — post all nonblocking sends/receives, then merge chunk
//    pairs as they complete, overlapping communication with local ordering.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "sim/comm.hpp"
#include "sortcore/key.hpp"
#include "sortcore/kway_merge.hpp"
#include "sortcore/spill.hpp"
#include "util/error.hpp"

namespace sdss {

struct ExchangePlan {
  std::vector<std::size_t> scounts, sdispls, rcounts, rdispls;
  std::size_t recv_total = 0;
  /// kSpill planning only: the receive volume exceeds the budget, so the
  /// exchange must go through the spill path (spill_exchange) instead of
  /// materializing recv_total records in memory.
  bool overflow = false;
};

/// Exchange counts and build the plan. Under MemoryPolicy::kStrict (the
/// default) a receive volume above `mem_limit_records` throws SimOomError
/// (0 = unlimited); under kSpill it sets plan.overflow instead.
inline ExchangePlan plan_exchange(sim::Comm& comm,
                                  std::span<const std::size_t> bounds,
                                  std::size_t mem_limit_records,
                                  MemoryPolicy policy = MemoryPolicy::kStrict,
                                  const char* phase = "exchange") {
  const auto p = static_cast<std::size_t>(comm.size());
  ExchangePlan plan;
  plan.scounts.resize(p);
  plan.sdispls.resize(p);
  for (std::size_t d = 0; d < p; ++d) {
    plan.sdispls[d] = bounds[d];
    plan.scounts[d] = bounds[d + 1] - bounds[d];
  }
  plan.rcounts = comm.alltoall<std::size_t>(plan.scounts);
  plan.rdispls.resize(p);
  std::size_t off = 0;
  for (std::size_t s = 0; s < p; ++s) {
    plan.rdispls[s] = off;
    off += plan.rcounts[s];
  }
  plan.recv_total = off;
  if (mem_limit_records != 0) {
    const bool local_over = plan.recv_total > mem_limit_records;
    if (policy == MemoryPolicy::kStrict) {
      if (local_over) {
        check_mem_budget(comm.rank(), plan.recv_total, mem_limit_records,
                         phase);
      }
    } else {
      // Spilling changes the wire protocol (framed p2p sends instead of the
      // alltoallv), so the decision must be collective: one over-budget rank
      // sends the whole cluster down the spill exchange.
      plan.overflow = comm.allreduce<std::uint8_t>(
                          local_over ? std::uint8_t{1} : std::uint8_t{0},
                          [](std::uint8_t a, std::uint8_t b) {
                            return static_cast<std::uint8_t>(a | b);
                          }) != 0;
    }
  }
  return plan;
}

/// Blocking exchange: returns the receive buffer (p sorted chunks laid out
/// by source rank at plan.rdispls).
template <typename T>
std::vector<T> sync_exchange(sim::Comm& comm, std::span<const T> data,
                             const ExchangePlan& plan) {
  std::vector<T> recv(plan.recv_total);
  comm.alltoallv<T>(data, plan.scounts, plan.sdispls, recv, plan.rcounts,
                    plan.rdispls);
  return recv;
}

/// Out-of-core exchange (MemoryPolicy::kSpill, overflow plans): instead of
/// materializing recv_total records, each incoming chunk drains frame by
/// frame into a checksummed spill run on disk. Resident memory is bounded by
/// one staging frame (plus the sender-side views into `data`, which already
/// exist). Returns the run ids, one per source rank with data, in source-rank
/// order — so run-id order equals source-rank order and a stable external
/// merge of these runs preserves the source-rank tie order that
/// sync_exchange would have produced.
///
/// Senders post all non-self chunks as eager framed isends (the simulator
/// buffers eagerly, so no send/recv deadlock); the receiver then walks
/// sources in rank order, spilling the self chunk directly and receiving
/// remote frames into the staging buffer. Every recv is a comm op and every
/// frame append/read is a spill op, so both chaos sweeps cover this path.
template <typename T>
std::vector<std::size_t> spill_exchange(sim::Comm& comm,
                                        std::span<const T> data,
                                        const ExchangePlan& plan,
                                        SpillPool& pool) {
  static constexpr int kTag = 3002;
  const auto p = static_cast<std::size_t>(comm.size());
  const auto me = static_cast<std::size_t>(comm.rank());
  const std::size_t frame = pool.config().frame_records;

  for (std::size_t d = 0; d < p; ++d) {
    if (d == me) continue;
    std::size_t off = plan.sdispls[d];
    std::size_t left = plan.scounts[d];
    while (left > 0) {
      const std::size_t n = left < frame ? left : frame;
      comm.isend<T>(std::span<const T>(data.data() + off, n),
                    static_cast<int>(d), kTag);
      off += n;
      left -= n;
    }
  }

  pool.resident_acquire(frame);
  std::vector<T> stage(frame);
  std::vector<std::size_t> run_ids;
  for (std::size_t s = 0; s < p; ++s) {
    if (plan.rcounts[s] == 0) continue;
    const std::size_t run = pool.begin_run();
    if (s == me) {
      std::size_t off = plan.sdispls[me];
      std::size_t left = plan.scounts[me];
      while (left > 0) {
        const std::size_t n = left < frame ? left : frame;
        pool.append_frame(run, data.data() + off, n * sizeof(T));
        off += n;
        left -= n;
      }
    } else {
      std::size_t left = plan.rcounts[s];
      while (left > 0) {
        const std::size_t n = comm.recv<T>(
            std::span<T>(stage.data(), frame), static_cast<int>(s), kTag);
        pool.append_frame(run, stage.data(), n * sizeof(T));
        left -= n;
      }
    }
    pool.end_run(run);
    run_ids.push_back(run);
  }
  pool.resident_release(frame);
  return run_ids;
}

/// Asynchronous exchange overlapped with incremental merging: chunks are
/// merged pairwise (smallest two first, Huffman-style, ~O(n log p) total) as
/// they arrive, so by the time the last message lands most ordering work is
/// done. Non-stable only (completion order is arrival order).
///
/// Allocation-free hot path: chunks enter the merge pool as spans over
/// existing storage (the caller's send buffer for the self-chunk, the
/// receive buffer for arrivals) — never as per-chunk copies. Incremental
/// merge outputs go into ONE lazily-allocated scratch buffer of
/// `recv_total` records, used as a bump arena; when the arena fills, dead
/// regions (consumed merge inputs) are compacted away, and if a merge still
/// does not fit it is simply deferred to the final k-way drain. Returns the
/// fully merged, sorted local output.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<T> overlap_exchange_merge(sim::Comm& comm, std::span<const T> data,
                                      const ExchangePlan& plan, KeyFn kf = {}) {
  const auto p = static_cast<std::size_t>(comm.size());
  const auto me = static_cast<std::size_t>(comm.rank());

  // Post receives first, then sends (sends are eager-buffered; receives
  // complete as the network model delivers them).
  std::vector<T> recv(plan.recv_total);
  std::vector<sim::Request> reqs;
  std::vector<std::size_t> req_src;
  reqs.reserve(p);
  for (std::size_t s = 0; s < p; ++s) {
    if (s == me || plan.rcounts[s] == 0) continue;
    reqs.push_back(comm.irecv<T>(
        std::span<T>(recv.data() + plan.rdispls[s], plan.rcounts[s]),
        static_cast<int>(s), /*tag=*/3001));
    req_src.push_back(s);
  }
  for (std::size_t d = 0; d < p; ++d) {
    if (d == me || plan.scounts[d] == 0) continue;
    comm.isend<T>(
        std::span<const T>(data.data() + plan.sdispls[d], plan.scounts[d]),
        static_cast<int>(d), /*tag=*/3001);
  }

  // Pool of sorted chunks awaiting merging, as views over existing storage.
  // The self-chunk is available immediately — straight out of `data`, which
  // outlives this call.
  std::vector<std::span<const T>> pool;
  pool.reserve(p);
  if (plan.scounts[me] > 0) {
    pool.push_back(data.subspan(plan.sdispls[me], plan.scounts[me]));
  }

  // Bump arena for incremental merge outputs. Total live records never
  // exceed recv_total, but merge inputs stay live while the output is
  // written, so the arena can fill with dead (already-consumed) regions.
  std::vector<T> scratch;
  std::size_t bump = 0;
  auto in_scratch = [&](std::span<const T> s) {
    return !scratch.empty() && s.data() >= scratch.data() &&
           s.data() < scratch.data() + scratch.size();
  };

  // Slide every live scratch-resident span left (in address order, so the
  // moves never clobber a not-yet-moved source) and rebase the pool views.
  auto compact = [&]() {
    std::size_t w = 0;
    const T* prev = nullptr;
    for (;;) {
      std::size_t next = pool.size();
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (!in_scratch(pool[i])) continue;
        if (prev != nullptr && pool[i].data() <= prev) continue;
        if (next == pool.size() || pool[i].data() < pool[next].data()) next = i;
      }
      if (next == pool.size()) break;
      prev = pool[next].data();
      if (pool[next].data() != scratch.data() + w) {
        std::memmove(scratch.data() + w, pool[next].data(),
                     pool[next].size() * sizeof(T));
      }
      pool[next] = std::span<const T>(scratch.data() + w, pool[next].size());
      w += pool[next].size();
    }
    bump = w;
  };

  // SdssMergeTwo: merge the two smallest chunks in the pool into the arena.
  // Returns false (merge deferred) when even a compacted arena cannot hold
  // the output alongside the still-live inputs.
  auto merge_two = [&]() {
    std::size_t a = 0, b = 1;
    if (pool[b].size() < pool[a].size()) std::swap(a, b);
    for (std::size_t i = 2; i < pool.size(); ++i) {
      if (pool[i].size() < pool[a].size()) {
        b = a;
        a = i;
      } else if (pool[i].size() < pool[b].size()) {
        b = i;
      }
    }
    const std::size_t need = pool[a].size() + pool[b].size();
    if (scratch.empty()) scratch.resize(plan.recv_total);
    if (bump + need > scratch.size()) compact();
    if (bump + need > scratch.size()) return false;
    std::span<T> out(scratch.data() + bump, need);
    const std::array<std::span<const T>, 2> two{pool[a], pool[b]};
    kway_merge<T, KeyFn>(two, out, kf);
    bump += need;
    if (a > b) std::swap(a, b);
    pool[a] = out;
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(b));
    return true;
  };

  // SdssFinished loop: whenever a receive completes, its chunk joins the
  // pool as a view of the receive buffer; merge opportunistically while
  // more data is in flight.
  std::vector<char> done(reqs.size(), 0);
  std::size_t outstanding = reqs.size();
  while (outstanding > 0) {
    const int idx = sim::Request::wait_any(reqs, done);
    if (idx < 0) break;
    done[static_cast<std::size_t>(idx)] = 1;
    --outstanding;
    const std::size_t s = req_src[static_cast<std::size_t>(idx)];
    pool.push_back(std::span<const T>(recv.data() + plan.rdispls[s],
                                      plan.rcounts[s]));
    // One smallest-pair merge per arrival keeps the pool shallow without
    // degenerating into repeated prefix accumulation (always merging the
    // two smallest keeps the total work at ~O(n log p), Huffman-style).
    if (pool.size() >= 2 && outstanding > 0) merge_two();
  }

  // Drain: one k-way merge of everything still unmerged (including any
  // deferred pairs). If a single span already covers a whole owned buffer,
  // hand that buffer back without the final pass.
  if (pool.empty()) return {};
  if (pool.size() == 1) {
    if (!recv.empty() && pool[0].data() == recv.data() &&
        pool[0].size() == recv.size()) {
      return recv;
    }
    if (!scratch.empty() && pool[0].data() == scratch.data() &&
        pool[0].size() == scratch.size()) {
      return scratch;
    }
  }
  std::vector<T> out(plan.recv_total);
  kway_merge<T, KeyFn>(pool, out, kf);
  return out;
}

}  // namespace sdss
