// Global pivot selection (paper Section 2.4, Fig. 1 step 9: SdssSelectPivots).
//
// The p(p-1) local pivots are sorted globally and the p-1 global pivots are
// taken at regular stride p. The paper selects with a distributed bitonic
// sort so no single process must hold all p(p-1) pivots; we implement that
// (block-wise hypercube bitonic, valid for power-of-two p) with a
// gather-sort-select fallback for arbitrary p — the classic PSRS approach.
// Both produce identical pivots (the selection is deterministic on the
// sorted pivot pool), which the tests assert.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/config.hpp"
#include "sim/comm.hpp"
#include "sortcore/kway_merge.hpp"

namespace sdss {

namespace detail {

inline bool is_power_of_two(int p) { return p > 0 && (p & (p - 1)) == 0; }

/// One compare-exchange step of block bitonic sort: exchange whole blocks
/// with `partner`, merge, keep the low or high half. Blocks stay sorted.
template <typename T, typename KeyFn>
void bitonic_merge_split(sim::Comm& comm, std::vector<T>& block, int partner,
                         bool keep_low, int tag, KeyFn kf) {
  std::vector<T> theirs(block.size());
  comm.sendrecv<T>(block, theirs, partner, tag);
  const std::size_t m = block.size();
  std::vector<T> keep(m);
  auto less = by_key(kf);
  if (keep_low) {
    // m smallest of the merged 2m.
    std::size_t a = 0, b = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (b >= m || (a < m && !less(theirs[b], block[a]))) {
        keep[i] = block[a++];
      } else {
        keep[i] = theirs[b++];
      }
    }
  } else {
    // m largest, produced back-to-front.
    std::size_t a = m, b = m;
    for (std::size_t i = m; i-- > 0;) {
      if (b == 0 || (a > 0 && !less(block[a - 1], theirs[b - 1]))) {
        keep[i] = block[--a];
      } else {
        keep[i] = theirs[--b];
      }
    }
  }
  block = std::move(keep);
}

/// Distributed bitonic sort of equal-size sorted blocks across a
/// power-of-two communicator. Afterwards the concatenation of blocks in
/// rank order is globally sorted.
template <typename T, typename KeyFn = IdentityKey>
void bitonic_sort_blocks(sim::Comm& comm, std::vector<T>& block,
                         KeyFn kf = {}) {
  const int p = comm.size();
  if (!is_power_of_two(p)) {
    throw std::invalid_argument("bitonic_sort_blocks: p must be a power of 2");
  }
  const int rank = comm.rank();
  int tag = 1000;
  for (int k = 2; k <= p; k <<= 1) {
    for (int j = k >> 1; j > 0; j >>= 1) {
      const int partner = rank ^ j;
      const bool ascending = (rank & k) == 0;
      const bool keep_low = ascending == (rank < partner);
      bitonic_merge_split(comm, block, partner, keep_low, tag++, kf);
    }
  }
}

}  // namespace detail

/// Weighted global pivot selection for unbalanced inputs. Regular stride-p
/// selection implicitly assumes every rank holds ~N/p records: each sample
/// stands for the same number of records. When shard sizes differ wildly
/// (extreme: all data on one rank, every other rank contributing sentinel
/// samples), the stride walks mostly over weightless sentinels and the
/// chosen pivots collapse. Here each sample carries its source shard's
/// record count as a weight, and pivot t is placed where the cumulative
/// weight reaches (t+1)/p of the total — reducing to regular selection on
/// balanced input. Collective; every rank returns the same sorted vector.
template <typename K>
std::vector<K> select_global_pivots_weighted(sim::Comm& comm,
                                             std::span<const K> local_pivots,
                                             std::uint64_t local_count) {
  const int p = comm.size();
  if (p <= 1) return {};
  struct Weighted {
    K key;
    std::uint64_t weight;
  };
  std::vector<Weighted> mine;
  mine.reserve(local_pivots.size());
  for (const K& k : local_pivots) {
    mine.push_back(Weighted{k, local_count});
  }
  auto pool = comm.allgatherv<Weighted>(mine);
  std::sort(pool.begin(), pool.end(),
            [](const Weighted& a, const Weighted& b) { return a.key < b.key; });
  std::uint64_t total = 0;
  for (const auto& w : pool) total += w.weight;

  std::vector<K> pivots;
  pivots.reserve(static_cast<std::size_t>(p - 1));
  if (total == 0) {
    pivots.assign(static_cast<std::size_t>(p - 1), KeyLimits<K>::max());
    return pivots;
  }
  std::uint64_t acc = 0;
  std::size_t idx = 0;
  for (int t = 1; t < p; ++t) {
    const std::uint64_t target =
        total * static_cast<std::uint64_t>(t) / static_cast<std::uint64_t>(p);
    while (idx + 1 < pool.size() && acc + pool[idx].weight < target) {
      acc += pool[idx].weight;
      ++idx;
    }
    pivots.push_back(pool[idx].key);
  }
  return pivots;
}

/// Select the p-1 global pivots from each rank's p-1 sorted local pivots.
/// Every rank returns the same pivot vector, sorted non-decreasing.
template <typename K>
std::vector<K> select_global_pivots(sim::Comm& comm,
                                    std::span<const K> local_pivots,
                                    PivotSelection method =
                                        PivotSelection::kAuto) {
  const int p = comm.size();
  if (p <= 1) return {};
  const auto m = static_cast<std::size_t>(p - 1);
  if (local_pivots.size() != m) {
    throw std::invalid_argument(
        "select_global_pivots: expected p-1 local pivots");
  }

  bool use_bitonic = false;
  switch (method) {
    case PivotSelection::kAuto:
      use_bitonic = detail::is_power_of_two(p);
      break;
    case PivotSelection::kBitonic:
      if (!detail::is_power_of_two(p)) {
        throw std::invalid_argument(
            "bitonic pivot selection requires a power-of-two process count");
      }
      use_bitonic = true;
      break;
    case PivotSelection::kGather:
      use_bitonic = false;
      break;
    case PivotSelection::kHistogram:
      throw std::invalid_argument(
          "histogram pivot selection operates on the data itself; use "
          "histogram_select_splitters (the sds_sort driver does this "
          "automatically for Config::pivot_selection = kHistogram)");
    case PivotSelection::kHistogramEps:
      throw std::invalid_argument(
          "ε-bounded histogram selection operates on the data itself; use "
          "histogram_eps_splitters (the sds_sort driver does this "
          "automatically for Config::pivot_selection = kHistogramEps)");
  }

  std::vector<K> pivots(m);
  if (use_bitonic) {
    // Sort the p(p-1) pivots in place across ranks, then each rank extracts
    // the selected positions falling into its block and allgathers them.
    std::vector<K> block(local_pivots.begin(), local_pivots.end());
    std::sort(block.begin(), block.end());
    detail::bitonic_sort_blocks(comm, block);

    const std::size_t my_begin = static_cast<std::size_t>(comm.rank()) * m;
    std::vector<K> mine;
    std::vector<std::size_t> mine_idx;
    for (std::size_t t = 0; t < m; ++t) {
      // Global pivot t sits at sorted position (t+1)*p - 1 (stride p).
      const std::size_t pos = (t + 1) * static_cast<std::size_t>(p) - 1;
      if (pos >= my_begin && pos < my_begin + m) {
        mine.push_back(block[pos - my_begin]);
        mine_idx.push_back(t);
      }
    }
    const auto all = comm.allgatherv<K>(mine);
    const auto all_idx = comm.allgatherv<std::size_t>(mine_idx);
    for (std::size_t i = 0; i < all.size(); ++i) pivots[all_idx[i]] = all[i];
  } else {
    // Fallback: every rank gathers the full pivot pool and selects locally.
    auto pool = comm.allgatherv<K>(local_pivots);
    std::sort(pool.begin(), pool.end());
    for (std::size_t t = 0; t < m; ++t) {
      pivots[t] = pool[(t + 1) * static_cast<std::size_t>(p) - 1];
    }
  }
  return pivots;
}

}  // namespace sdss
