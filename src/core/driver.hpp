// The SDS-Sort driver (paper Fig. 1).
//
// Pipeline, with every adaptive decision the paper describes:
//   1. skew-aware shared-memory local sort (SdssLocalSort, §2.2);
//   2. node-level merging when the average exchange message is below τm
//      (SdssRefineComm + SdssNodeMerge, §2.3);
//   3. regular sampling of p-1 local pivots and global pivot selection via
//      distributed bitonic sort (§2.4);
//   4. fast/stable skew-aware partitioning accelerated by local pivots
//      (SdssPartition, §2.5) — O(4N/p) workload bound;
//   5. adaptive all-to-all: blocking alltoallv, or nonblocking exchange
//      overlapped with pairwise merging when p < τo and not stable (§2.6);
//   6. adaptive final ordering: merge-all below τs, run-aware re-sort above
//      (§2.7).
//
// The output is distributed: rank d holds the d-th value range, globally
// sorted across ranks; with cfg.stable, duplicate keys keep their original
// (rank-major) relative order. After node merging only node leaders hold
// data — exactly the paper's semantics of continuing with p/c processes.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/exchange.hpp"
#include "core/histogram_pivots.hpp"
#include "core/splitter.hpp"
#include "core/local_order.hpp"
#include "core/node_merge.hpp"
#include "core/partition.hpp"
#include "core/pivots.hpp"
#include "core/sampling.hpp"
#include "obs/metrics.hpp"
#include "sim/comm.hpp"
#include "sortcore/key.hpp"
#include "sortcore/local_sort.hpp"
#include "util/phase_ledger.hpp"

namespace sdss {

namespace detail {
// Driver progress metrics (obs/metrics.hpp), interned at static init. The
// resident-records gauge doubles as the deterministic progress series:
// series_mark() at the phase checkpoints below writes values (record
// counts) that are pure functions of input and seed, so the report's time
// series is byte-identical across sched_workers settings.
inline const obs::MetricId kMSortRecordsIn = obs::register_metric(
    "sort.records_in", obs::MetricKind::kCounter, obs::MetricUnit::kRecords);
inline const obs::MetricId kMSortRecordsOut = obs::register_metric(
    "sort.records_out", obs::MetricKind::kCounter, obs::MetricUnit::kRecords);
inline const obs::MetricId kMSortRecvRecords = obs::register_metric(
    "sort.recv_records", obs::MetricKind::kCounter, obs::MetricUnit::kRecords);
inline const obs::MetricId kMSortResident = obs::register_metric(
    "sort.resident_records", obs::MetricKind::kGauge,
    obs::MetricUnit::kRecords);

/// Phase checkpoint: update the live gauge (the sampler fiber watches it)
/// and append to the deterministic progress series.
inline void mark_resident(std::size_t records) {
  obs::gauge_set(kMSortResident, records);
  obs::series_mark(kMSortResident, records);
}
}  // namespace detail

enum class ExchangeMode { kSync, kOverlapped, kSpill, kNone };
enum class FinalOrdering {
  kMergeAll,
  kResort,
  kOverlapMerge,
  kExternalMerge,
  kNone
};

/// Stable names for the adaptive decisions, used by telemetry reports and
/// bench output (docs/OBSERVABILITY.md documents the vocabulary).
inline const char* to_string(ExchangeMode m) {
  switch (m) {
    case ExchangeMode::kSync:
      return "sync";
    case ExchangeMode::kOverlapped:
      return "overlapped";
    case ExchangeMode::kSpill:
      return "spill";
    case ExchangeMode::kNone:
      return "none";
  }
  return "?";
}

inline const char* to_string(FinalOrdering o) {
  switch (o) {
    case FinalOrdering::kMergeAll:
      return "merge-all";
    case FinalOrdering::kResort:
      return "re-sort";
    case FinalOrdering::kOverlapMerge:
      return "overlap-merge";
    case FinalOrdering::kExternalMerge:
      return "external-merge";
    case FinalOrdering::kNone:
      return "none";
  }
  return "?";
}

/// Per-rank account of what the adaptive machinery decided, for tests and
/// benches.
struct SortReport {
  std::size_t output_records = 0;
  std::size_t recv_records = 0;   ///< post-exchange load (RDFA numerator)
  bool node_merged = false;       ///< node-level merging was performed
  bool active = true;             ///< false: handed data to the node leader
  ExchangeMode exchange = ExchangeMode::kNone;
  FinalOrdering ordering = FinalOrdering::kNone;
  /// Filled when pivot_selection == kHistogramEps: per-round refinement
  /// telemetry (identical on every active rank).
  bool has_refinement = false;
  RefineStats refinement;
  /// Filled when the exchange went out-of-core (MemoryPolicy::kSpill and the
  /// receive volume exceeded the budget): spill run/byte/pass counters.
  bool spilled = false;
  SpillStats spill;
};

/// Sort the distributed vector `data` (one shard per rank of `comm`) by
/// kf(record). Returns this rank's shard of the globally sorted output.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<T> sds_sort(sim::Comm& comm, std::vector<T> data,
                        const Config& cfg = {}, KeyFn kf = {},
                        SortReport* report = nullptr) {
  using K = KeyType<KeyFn, T>;
  PhaseLedger& ledger = comm.ledger();
  SortReport local_report;
  SortReport& rep = report != nullptr ? *report : local_report;
  rep = SortReport{};

  int c = cfg.threads > 0 ? cfg.threads : comm.cores_per_node();

  const bool metered = obs::active();
  if (metered) obs::counter_add(detail::kMSortRecordsIn, data.size());

  {
    // Initial local ordering: lets regular sampling see the local value
    // distribution and makes every later step run-/merge-friendly.
    ScopedPhase phase(&ledger, Phase::kOther);
    LocalSortConfig lcfg;
    lcfg.threads = c;
    lcfg.stable = cfg.stable;
    lcfg.algo = cfg.local_algo;
    local_sort<T, KeyFn>(data, lcfg, kf);
  }
  if (metered) detail::mark_resident(data.size());

  sim::Comm active = comm;
  if (comm.size() > 1 && cfg.tau_m_bytes > 0 && comm.cores_per_node() > 1) {
    ScopedPhase phase(&ledger, Phase::kNodeMerge);
    // Merge decision must be identical on every rank: use the global
    // average shard size (paper: n/p <= tau_m).
    const auto total = comm.allreduce<std::uint64_t>(
        static_cast<std::uint64_t>(data.size()),
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    const auto p = static_cast<std::uint64_t>(comm.size());
    const std::uint64_t avg_msg_bytes = total * sizeof(T) / (p * p);
    if (avg_msg_bytes <= cfg.tau_m_bytes) {
      NodeCommPair pair = refine_comm(comm);
      NodeMergeBudget nb;
      nb.mem_limit_records = cfg.mem_limit_records;
      nb.policy = cfg.memory_policy;
      nb.spill_frame_records = cfg.spill_frame_records;
      nb.spill_dir = cfg.spill_dir;
      nb.spilled = &rep.spilled;
      nb.stats = &rep.spill;
      node_merge<T, KeyFn>(pair.local, data, cfg.stable, kf, c, nb);
      rep.node_merged = true;
      if (!pair.leaders.valid()) {
        // This rank handed its data to the node leader and is done.
        rep.active = false;
        rep.output_records = 0;
        if (metered) detail::mark_resident(0);
        return {};
      }
      active = pair.leaders;
      c = 1;  // paper Fig. 1 line 6: leaders continue single-threaded
    }
  }

  const int p = active.size();
  if (p <= 1) {
    rep.output_records = data.size();
    if (metered) {
      obs::counter_add(detail::kMSortRecordsOut, data.size());
      detail::mark_resident(data.size());
    }
    return data;
  }

  // Pivot selection + partitioning.
  std::vector<std::size_t> bounds;
  {
    ScopedPhase phase(&ledger, Phase::kPivotSelection);
    const LocalSamples<K> samples = sample_local_pivots<T, KeyFn>(
        data, static_cast<std::size_t>(p - 1), kf);
    if (cfg.pivot_selection == PivotSelection::kHistogramEps) {
      // ε-bounded refinement yields (possibly fractional) splitters and its
      // own partition path; it bypasses select_global_pivots entirely.
      const auto seeds = cfg.histogram_eps.seed_with_samples
                             ? std::span<const K>(samples.keys)
                             : std::span<const K>();
      const auto splitters = histogram_eps_splitters<T, KeyFn>(
          active, data, p, cfg.histogram_eps, kf, &rep.refinement, seeds);
      rep.has_refinement = true;
      bounds = sdss_partition_splitters<T, KeyFn>(
          active, data, samples, std::span<const Splitter<K>>(splitters), cfg,
          kf);
    } else if (cfg.pivot_selection == PivotSelection::kHistogram) {
      const std::vector<K> pivots =
          histogram_select_splitters<T, KeyFn>(active, data, p, {}, kf);
      bounds =
          sdss_partition<T, KeyFn>(active, data, samples, pivots, cfg, kf);
    } else {
      // Unbalanced input defeats stride-p selection (samples from small
      // shards outvote those from big ones); kAuto detects it and switches
      // to weighted selection. Forced kBitonic/kGather stay literal.
      struct SizeAgg {
        std::uint64_t max;
        std::uint64_t sum;
      };
      const SizeAgg agg = active.allreduce<SizeAgg>(
          SizeAgg{data.size(), data.size()},
          [](const SizeAgg& a, const SizeAgg& b) {
            return SizeAgg{a.max > b.max ? a.max : b.max, a.sum + b.sum};
          });
      const bool unbalanced =
          agg.max * static_cast<std::uint64_t>(p) > 2 * agg.sum + 64;
      std::vector<K> pivots;
      if (cfg.pivot_selection == PivotSelection::kAuto && unbalanced) {
        pivots = select_global_pivots_weighted<K>(active, samples.keys,
                                                  data.size());
      } else {
        pivots = select_global_pivots<K>(active, samples.keys,
                                         cfg.pivot_selection);
      }
      bounds =
          sdss_partition<T, KeyFn>(active, data, samples, pivots, cfg, kf);
    }
  }

  ExchangePlan plan;
  {
    ScopedPhase phase(&ledger, Phase::kExchange);
    plan = plan_exchange(active, bounds, cfg.mem_limit_records,
                         cfg.memory_policy);
  }
  rep.recv_records = plan.recv_total;
  // The per-rank receive volume is the trace's deterministic skew signal:
  // λ = max/avg of these counters is exactly reproducible for a fixed seed,
  // unlike the wall-clock λ, so it is what the CI gate diffs.
  if (trace::active()) trace::counter("recv_records", plan.recv_total);
  if (metered) {
    obs::counter_add(detail::kMSortRecvRecords, plan.recv_total);
    detail::mark_resident(plan.recv_total);
  }

  std::vector<T> out;
  if (plan.overflow && cfg.memory_policy == MemoryPolicy::kSpill) {
    // Out-of-core degradation: drain the exchange into checksummed spill
    // runs (one per source rank, so run order preserves the stable
    // source-rank tie order) and produce the output with a budget-bounded
    // external merge instead of an in-memory ordering.
    rep.exchange = ExchangeMode::kSpill;
    rep.ordering = FinalOrdering::kExternalMerge;
    rep.spilled = true;
    SpillConfig scfg;
    scfg.dir = cfg.spill_dir;
    scfg.frame_records = cfg.spill_frame_records;
    scfg.rank = active.rank();
    SpillPool pool(scfg, active.spill_hook());
    std::vector<std::size_t> runs;
    {
      ScopedPhase phase(&ledger, Phase::kExchange);
      runs = spill_exchange<T>(active, data, plan, pool);
    }
    {
      ScopedPhase phase(&ledger, Phase::kLocalOrdering);
      out = external_kway_merge<T, KeyFn>(pool, runs, cfg.mem_limit_records,
                                          kf);
    }
    rep.spill += pool.stats();  // += : node_merge may have spilled already
    rep.output_records = out.size();
    if (metered) {
      obs::counter_add(detail::kMSortRecordsOut, out.size());
      detail::mark_resident(out.size());
    }
    return out;
  }
  const bool overlap =
      !cfg.stable && static_cast<std::size_t>(p) < cfg.tau_o;
  if (!overlap) {
    rep.exchange = ExchangeMode::kSync;
    std::vector<T> recv;
    {
      ScopedPhase phase(&ledger, Phase::kExchange);
      recv = sync_exchange<T>(active, data, plan);
    }
    {
      ScopedPhase phase(&ledger, Phase::kLocalOrdering);
      if (static_cast<std::size_t>(p) < cfg.tau_s) {
        rep.ordering = FinalOrdering::kMergeAll;
        out = merge_all<T, KeyFn>(std::move(recv), plan.rcounts, plan.rdispls,
                                  cfg.stable, c, kf);
      } else {
        rep.ordering = FinalOrdering::kResort;
        out = resort_all<T, KeyFn>(std::move(recv), cfg.stable, c,
                                   cfg.run_merge_threshold, kf);
      }
    }
  } else {
    rep.exchange = ExchangeMode::kOverlapped;
    rep.ordering = FinalOrdering::kOverlapMerge;
    ScopedPhase phase(&ledger, Phase::kExchange);
    out = overlap_exchange_merge<T, KeyFn>(active, data, plan, kf);
  }

  rep.output_records = out.size();
  if (metered) {
    obs::counter_add(detail::kMSortRecordsOut, out.size());
    detail::mark_resident(out.size());
  }
  return out;
}

}  // namespace sdss
