// SdssReplicated (paper Fig. 3): detect runs of duplicated global pivots.
//
// For a pivot index i, reports whether Pg[i] is duplicated among its
// neighbours, the size rs of the duplicate run, the rank rr of Pg[i] within
// the run, and the index of the last distinct pivot before the run (the
// paper's ppv), if any.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

namespace sdss {

template <typename K>
struct ReplicatedInfo {
  bool replicated = false;   ///< fr: Pg[i] equals a neighbouring pivot
  std::size_t run_begin = 0; ///< first pivot index of the run containing i
  std::size_t run_size = 1;  ///< rs: how many pivots share the value
  std::size_t rank_in_run = 0;  ///< rr: position of i within the run
  std::optional<K> prev_value;  ///< ppv: last distinct pivot before the run
};

template <typename K>
ReplicatedInfo<K> sdss_replicated(std::span<const K> pivots, std::size_t i) {
  ReplicatedInfo<K> info;
  const K& v = pivots[i];
  auto equal = [](const K& a, const K& b) { return !(a < b) && !(b < a); };

  std::size_t begin = i;
  while (begin > 0 && equal(pivots[begin - 1], v)) --begin;
  std::size_t end = i + 1;
  while (end < pivots.size() && equal(pivots[end], v)) ++end;

  info.run_begin = begin;
  info.run_size = end - begin;
  info.rank_in_run = i - begin;
  info.replicated = info.run_size > 1;
  if (begin > 0) info.prev_value = pivots[begin - 1];
  return info;
}

}  // namespace sdss
