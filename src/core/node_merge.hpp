// Node-level merging (paper Section 2.3, Fig. 1 lines 3-7).
//
// When the average all-to-all message would be small (n/p ≤ τm), SDS-Sort
// first merges the sorted arrays of all ranks on a node onto the node
// leader, then continues with the leaders-only communicator: p' = p/c ranks
// each holding c·n records. Fewer, larger messages amortize the per-message
// network latency — the win on low-throughput interconnects; on fast
// networks the merge overhead and the leader's c× injection volume lose
// (Fig. 5a).
//
// SdssRefineComm maps to split_by_node() (the analogue of
// MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)) plus a leaders-only split;
// SdssNodeMerge is the skew-aware k-way merge of local_sort.hpp driven over
// the intra-node communicator.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "sim/comm.hpp"
#include "sortcore/arena.hpp"
#include "sortcore/key.hpp"
#include "sortcore/local_sort.hpp"
#include "sortcore/spill.hpp"
#include "util/error.hpp"

namespace sdss {

struct NodeCommPair {
  sim::Comm local;    ///< ranks sharing this rank's node
  sim::Comm leaders;  ///< node leaders only; invalid on non-leaders
};

/// SdssRefineComm: build the intra-node communicator cl and the global
/// leaders communicator cg.
inline NodeCommPair refine_comm(sim::Comm& comm) {
  NodeCommPair pair;
  pair.local = comm.split_by_node();
  const bool leader = pair.local.rank() == 0;
  pair.leaders =
      comm.split(leader ? 0 : sim::Comm::kUndefined, comm.rank());
  return pair;
}

/// Memory-budget handling for node_merge. The default (mem_limit_records ==
/// 0) keeps the historical path byte-identical: no extra collectives, no
/// budget check. With a budget, the node ranks allgather their sizes; when
/// the leader's merged total would bust the budget, kStrict throws
/// SimOomError(phase "merge") and kSpill drains the gather into spill runs
/// and external-merges them under the budget.
struct NodeMergeBudget {
  std::size_t mem_limit_records = 0;  ///< 0 = unlimited (historical path)
  MemoryPolicy policy = MemoryPolicy::kStrict;
  std::size_t spill_frame_records = 4096;
  std::string spill_dir;
  bool* spilled = nullptr;      ///< out (leader only): merge went out-of-core
  SpillStats* stats = nullptr;  ///< out (leader only): spill counters, +='d
};

/// Out-of-core node merge: the leader drains the gather into one spill run
/// per node rank (run-id order = node-rank order = consecutive global ranks,
/// so the stable tie order survives) and external-merges under the budget.
/// Peers send framed so the leader never stages more than one frame per
/// message.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void node_merge_spill(sim::Comm& local, std::vector<T>& data,
                      std::span<const std::size_t> sizes, KeyFn kf,
                      const NodeMergeBudget& budget) {
  constexpr int kTag = 2002;
  const std::size_t frame =
      budget.spill_frame_records != 0 ? budget.spill_frame_records : 4096;

  if (local.rank() != 0) {
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t n =
          data.size() - off < frame ? data.size() - off : frame;
      local.send<T>(std::span<const T>(data.data() + off, n), 0, kTag);
      off += n;
    }
    data.clear();
    data.shrink_to_fit();
    return;
  }

  SpillConfig scfg;
  scfg.dir = budget.spill_dir;
  scfg.frame_records = frame;
  scfg.rank = local.rank();
  SpillPool pool(scfg, local.spill_hook());
  pool.resident_acquire(frame);
  std::vector<T> stage(frame);
  std::vector<std::size_t> runs;
  for (int src = 0; src < local.size(); ++src) {
    if (sizes[static_cast<std::size_t>(src)] == 0) continue;
    const std::size_t run = pool.begin_run();
    if (src == 0) {
      std::size_t off = 0;
      while (off < data.size()) {
        const std::size_t n =
            data.size() - off < frame ? data.size() - off : frame;
        pool.append_frame(run, data.data() + off, n * sizeof(T));
        off += n;
      }
    } else {
      std::size_t left = sizes[static_cast<std::size_t>(src)];
      while (left > 0) {
        const std::size_t n =
            local.recv<T>(std::span<T>(stage.data(), frame), src, kTag);
        pool.append_frame(run, stage.data(), n * sizeof(T));
        left -= n;
      }
    }
    pool.end_run(run);
    runs.push_back(run);
  }
  data.clear();
  data.shrink_to_fit();
  pool.resident_release(frame);
  data = external_kway_merge<T, KeyFn>(pool, runs, budget.mem_limit_records,
                                       kf);
  if (budget.spilled != nullptr) *budget.spilled = true;
  if (budget.stats != nullptr) *budget.stats += pool.stats();
}

/// SdssNodeMerge: gather every node rank's sorted `data` onto the node
/// leader and merge (skew-aware, stable across source-rank order). On
/// return the leader holds the merged node data; other ranks hold nothing.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void node_merge(sim::Comm& local, std::vector<T>& data, bool stable,
                KeyFn kf = {}, int merge_threads = 1,
                const NodeMergeBudget& budget = {}) {
  constexpr int kTag = 2001;
  if (local.size() <= 1) return;

  if (budget.mem_limit_records != 0) {
    const auto sizes = local.allgather<std::size_t>(data.size());
    std::size_t total = 0;
    for (const std::size_t s : sizes) total += s;
    if (total > budget.mem_limit_records) {
      if (budget.policy == MemoryPolicy::kStrict) {
        // Only the leader materializes the merged node data, so only it
        // OOMs; peers finish their sends normally (eager buffering).
        if (local.rank() == 0) {
          check_mem_budget(local.rank(), total, budget.mem_limit_records,
                           "merge");
        }
      } else {
        node_merge_spill<T, KeyFn>(local, data, sizes, kf, budget);
        return;
      }
    }
  }

  if (local.rank() != 0) {
    local.send<T>(data, 0, kTag);
    data.clear();
    data.shrink_to_fit();
    return;
  }
  // Leader: receive chunks in node-rank order (stability order: node ranks
  // are consecutive global ranks).
  std::vector<std::vector<T>> chunks;
  chunks.reserve(static_cast<std::size_t>(local.size()));
  chunks.push_back(std::move(data));
  for (int src = 1; src < local.size(); ++src) {
    chunks.push_back(local.recv_any_size<T>(src, kTag));
  }
  std::size_t total = 0;
  ArenaScope scope(ScratchArena::for_thread());
  auto spans = scope.acquire<std::span<const T>>(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    spans[i] = std::span<const T>(chunks[i]);
    total += chunks[i].size();
  }
  std::vector<T> merged(total);
  parallel_merge_chunks<T, KeyFn>(spans, merged,
                                  static_cast<std::size_t>(
                                      merge_threads < 1 ? 1 : merge_threads),
                                  stable, MergePartitionMethod::kSkewAware, kf);
  data = std::move(merged);
}

}  // namespace sdss
