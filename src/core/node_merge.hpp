// Node-level merging (paper Section 2.3, Fig. 1 lines 3-7).
//
// When the average all-to-all message would be small (n/p ≤ τm), SDS-Sort
// first merges the sorted arrays of all ranks on a node onto the node
// leader, then continues with the leaders-only communicator: p' = p/c ranks
// each holding c·n records. Fewer, larger messages amortize the per-message
// network latency — the win on low-throughput interconnects; on fast
// networks the merge overhead and the leader's c× injection volume lose
// (Fig. 5a).
//
// SdssRefineComm maps to split_by_node() (the analogue of
// MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)) plus a leaders-only split;
// SdssNodeMerge is the skew-aware k-way merge of local_sort.hpp driven over
// the intra-node communicator.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "sim/comm.hpp"
#include "sortcore/arena.hpp"
#include "sortcore/key.hpp"
#include "sortcore/local_sort.hpp"

namespace sdss {

struct NodeCommPair {
  sim::Comm local;    ///< ranks sharing this rank's node
  sim::Comm leaders;  ///< node leaders only; invalid on non-leaders
};

/// SdssRefineComm: build the intra-node communicator cl and the global
/// leaders communicator cg.
inline NodeCommPair refine_comm(sim::Comm& comm) {
  NodeCommPair pair;
  pair.local = comm.split_by_node();
  const bool leader = pair.local.rank() == 0;
  pair.leaders =
      comm.split(leader ? 0 : sim::Comm::kUndefined, comm.rank());
  return pair;
}

/// SdssNodeMerge: gather every node rank's sorted `data` onto the node
/// leader and merge (skew-aware, stable across source-rank order). On
/// return the leader holds the merged node data; other ranks hold nothing.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
void node_merge(sim::Comm& local, std::vector<T>& data, bool stable,
                KeyFn kf = {}, int merge_threads = 1) {
  constexpr int kTag = 2001;
  if (local.size() <= 1) return;
  if (local.rank() != 0) {
    local.send<T>(data, 0, kTag);
    data.clear();
    data.shrink_to_fit();
    return;
  }
  // Leader: receive chunks in node-rank order (stability order: node ranks
  // are consecutive global ranks).
  std::vector<std::vector<T>> chunks;
  chunks.reserve(static_cast<std::size_t>(local.size()));
  chunks.push_back(std::move(data));
  for (int src = 1; src < local.size(); ++src) {
    chunks.push_back(local.recv_any_size<T>(src, kTag));
  }
  std::size_t total = 0;
  ArenaScope scope(ScratchArena::for_thread());
  auto spans = scope.acquire<std::span<const T>>(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    spans[i] = std::span<const T>(chunks[i]);
    total += chunks[i].size();
  }
  std::vector<T> merged(total);
  parallel_merge_chunks<T, KeyFn>(spans, merged,
                                  static_cast<std::size_t>(
                                      merge_threads < 1 ? 1 : merge_threads),
                                  stable, MergePartitionMethod::kSkewAware, kf);
  data = std::move(merged);
}

}  // namespace sdss
