// Load-balance metrics over a communicator: the paper's RDFA (Tables 3/4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/comm.hpp"
#include "util/stats.hpp"

namespace sdss {

struct LoadBalance {
  std::vector<std::size_t> loads;  ///< per-rank record counts, rank order
  double rdfa = 1.0;               ///< max/avg (Li et al.)
  std::size_t max_load = 0;
  std::uint64_t total = 0;
};

/// Collective: gather per-rank loads and compute RDFA on every rank.
inline LoadBalance measure_load_balance(sim::Comm& comm, std::size_t my_load) {
  LoadBalance lb;
  lb.loads = comm.allgather<std::size_t>(my_load);
  lb.rdfa = rdfa(lb.loads);
  for (std::size_t m : lb.loads) {
    lb.max_load = lb.max_load > m ? lb.max_load : m;
    lb.total += m;
  }
  return lb;
}

}  // namespace sdss
