// Splitter representation shared by the ε-bounded histogram refinement
// engine (core/histogram_pivots.hpp) and the partition (core/partition.hpp).
//
// A Splitter generalizes a plain pivot key. A *plain* splitter is the
// classic "everything with key <= v goes below the boundary". A
// *fractional* splitter additionally prescribes how many duplicates of its
// key — counted globally, in source-rank order — fall below the boundary.
// Fractional splitters are what make duplicate-heavy data partitionable
// with a rank guarantee: when no key VALUE has the target global rank
// (because one value covers a whole stretch of the sorted order), the
// boundary is placed *inside* that value's duplicate run, at an exact
// position. The ranks sharing the duplicated value then split it by
// position instead of collapsing onto one destination.
#pragma once

#include <cstdint>
#include <vector>

namespace sdss {

template <typename K>
struct Splitter {
  K key{};
  /// Records with key == `key` (global count, source-rank order) that fall
  /// below this boundary. Meaningful only when `fractional`; plain
  /// splitters use the kTakeAll sentinel so that sorting by (key,
  /// take_below) orders a plain splitter after every fractional cut of the
  /// same key (plain = take the whole run).
  std::uint64_t take_below = 0;
  bool fractional = false;

  static constexpr std::uint64_t kTakeAll = ~std::uint64_t{0};

  friend bool operator<(const Splitter& a, const Splitter& b) {
    if (a.key < b.key) return true;
    if (b.key < a.key) return false;
    return a.take_below < b.take_below;
  }
};

/// Per-round telemetry of one ε-bounded refinement. All counters are
/// identical on every rank (they describe global, collective state), so any
/// rank's copy can be reported.
struct RefineRound {
  std::uint64_t candidates = 0;        ///< gathered candidate keys (pre-dedup);
                                       ///< structurally non-increasing by round
  std::uint64_t unique_candidates = 0; ///< after global sort+unique
  std::uint64_t active_targets = 0;    ///< unresolved boundaries entering round
  std::uint64_t comm_bytes = 0;        ///< logical payload: allgathered keys +
                                       ///< allreduced rank vectors
  std::uint64_t max_err = 0;           ///< worst |rank−target| of the targets
                                       ///< still unresolved after the round
};

/// Outcome of one ε-bounded refinement (histogram_eps_splitters).
struct RefineStats {
  int rounds = 0;
  bool hit_round_cap = false;       ///< fell back to best bracket on >= 1 target
  std::uint64_t total_records = 0;  ///< N
  std::uint64_t tolerance_records = 0;  ///< per-boundary rank slack ε·N/(2k)
  double target_epsilon = 0.0;
  /// max over boundaries of err / (N/(2k)) — comparable to target_epsilon;
  /// <= target_epsilon whenever the round cap was not hit.
  double achieved_epsilon = 0.0;
  std::uint64_t fractional_splitters = 0;
  std::vector<RefineRound> per_round;
};

}  // namespace sdss
