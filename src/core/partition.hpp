// SdssPartition (paper Section 2.5, Fig. 2): compute the all-to-all send
// boundaries from the global pivots — fast and skew-aware.
//
// Three ingredients:
//  * Local-pivot acceleration (Section 2.5.1): each global pivot is first
//    ranked among the rank's own p-1 local samples, which brackets an
//    O(n/p) window of the sorted local array; the binary search runs inside
//    that window instead of the whole array.
//  * Fast skew-aware partitioning (Section 2.5.2): a run of rs duplicated
//    global pivots with value v makes each rank split its own run of v's
//    evenly across the rs processes sharing v. (Per DESIGN.md Section 4 we
//    split the exact duplicate run [lower_bound(v), upper_bound(v)), which
//    is the paper's evident intent and is provably order-correct.)
//  * Stable skew-aware partitioning: the global sequence of v's, ordered by
//    source rank, is cut into rs contiguous groups of ⌈total/rs⌉; each
//    process computes its intersection with each group in closed form from
//    an allgather of per-rank duplicate counts (the paper's cv vector).
//
// Returns boundaries b[0..p]: rank d receives local elements [b[d], b[d+1]).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/config.hpp"
#include "core/replicated.hpp"
#include "core/sampling.hpp"
#include "core/splitter.hpp"
#include "sim/comm.hpp"
#include "sortcore/key.hpp"

namespace sdss {

namespace detail {

/// Binary searches over the sorted local array, optionally windowed by the
/// local samples (positions of known values bracketing the target).
template <typename T, typename KeyFn>
class WindowedSearch {
 public:
  using K = KeyType<KeyFn, T>;

  WindowedSearch(std::span<const T> data, const LocalSamples<K>* samples,
                 KeyFn kf)
      : data_(data), samples_(samples), kf_(kf) {}

  /// Index of the first element with key > v.
  std::size_t upper(const K& v) const {
    auto [lo, hi] = window_upper(v);
    auto less_key = [this](const K& k, const T& e) { return k < kf_(e); };
    return static_cast<std::size_t>(
        std::upper_bound(data_.begin() + static_cast<std::ptrdiff_t>(lo),
                         data_.begin() + static_cast<std::ptrdiff_t>(hi), v,
                         less_key) -
        data_.begin());
  }

  /// Index of the first element with key >= v.
  std::size_t lower(const K& v) const {
    auto [lo, hi] = window_lower(v);
    auto key_less = [this](const T& e, const K& k) { return kf_(e) < k; };
    return static_cast<std::size_t>(
        std::lower_bound(data_.begin() + static_cast<std::ptrdiff_t>(lo),
                         data_.begin() + static_cast<std::ptrdiff_t>(hi), v,
                         key_less) -
        data_.begin());
  }

 private:
  /// [lo, hi) window guaranteed to contain upper_bound(v).
  std::pair<std::size_t, std::size_t> window_upper(const K& v) const {
    if (samples_ == nullptr || samples_->keys.empty()) {
      return {0, data_.size()};
    }
    const auto& keys = samples_->keys;
    const auto c = static_cast<std::size_t>(
        std::upper_bound(keys.begin(), keys.end(), v) - keys.begin());
    const std::size_t lo = c > 0 ? samples_->positions[c - 1] + 1 : 0;
    const std::size_t hi =
        c < keys.size() ? samples_->positions[c] + 1 : data_.size();
    return {std::min(lo, data_.size()), std::min(hi, data_.size())};
  }

  /// [lo, hi) window guaranteed to contain lower_bound(v).
  std::pair<std::size_t, std::size_t> window_lower(const K& v) const {
    if (samples_ == nullptr || samples_->keys.empty()) {
      return {0, data_.size()};
    }
    const auto& keys = samples_->keys;
    const auto c = static_cast<std::size_t>(
        std::lower_bound(keys.begin(), keys.end(), v) - keys.begin());
    const std::size_t lo = c > 0 ? samples_->positions[c - 1] + 1 : 0;
    const std::size_t hi =
        c < keys.size() ? samples_->positions[c] + 1 : data_.size();
    return {std::min(lo, data_.size()), std::min(hi, data_.size())};
  }

  std::span<const T> data_;
  const LocalSamples<K>* samples_;
  KeyFn kf_;
};

}  // namespace detail

/// Compute the send boundaries of this rank's sorted `data` for the
/// all-to-all exchange. Collective when cfg.stable (allgathers per-run
/// duplicate counts); pure local computation otherwise.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<std::size_t> sdss_partition(
    sim::Comm& comm, std::span<const T> data,
    const LocalSamples<KeyType<KeyFn, T>>& samples,
    std::span<const KeyType<KeyFn, T>> global_pivots, const Config& cfg,
    KeyFn kf = {}) {
  using K = KeyType<KeyFn, T>;
  const auto p = static_cast<std::size_t>(comm.size());
  if (global_pivots.size() + 1 != p) {
    throw std::invalid_argument("sdss_partition: need p-1 global pivots");
  }
  std::vector<std::size_t> bounds(p + 1, 0);
  bounds[p] = data.size();
  if (p == 1) return bounds;

  detail::WindowedSearch<T, KeyFn> search(
      data, cfg.local_pivot_partition ? &samples : nullptr, kf);

  std::size_t i = 0;
  while (i < global_pivots.size()) {
    const auto info = sdss_replicated<K>(global_pivots, i);
    const K& v = global_pivots[i];
    const std::size_t rs = info.run_size;

    if (!info.replicated || !cfg.skew_aware) {
      // Traditional partitioning (paper Fig. 2 line 30): everything <= v
      // goes below the boundary. With a duplicated pivot and skew_aware
      // off, every boundary of the run collapses to the same position —
      // the imbalance SDS-Sort is designed to avoid.
      const std::size_t pd = search.upper(v);
      for (std::size_t q = 0; q < rs; ++q) bounds[i + q + 1] = pd;
      i += rs;
      continue;
    }

    // Duplicated pivot v shared by ranks [i, i+rs).
    const std::size_t lo = search.lower(v);
    const std::size_t hi = search.upper(v);
    const std::size_t cnt = hi - lo;
    if (!cfg.stable) {
      // Fast version: split this rank's v-run evenly across the rs ranks.
      for (std::size_t q = 1; q <= rs; ++q) {
        bounds[i + q] = lo + cnt * q / rs;
      }
    } else {
      // Stable version: cut the global v-space (ordered by source rank)
      // into rs groups of sa; my slice is [sb, sb+cnt).
      const auto counts = comm.allgather<std::uint64_t>(cnt);
      std::uint64_t total = 0;
      std::uint64_t sb = 0;
      for (std::size_t r = 0; r < counts.size(); ++r) {
        if (static_cast<int>(r) < comm.rank()) sb += counts[r];
        total += counts[r];
      }
      const std::uint64_t sa = total == 0 ? 1 : (total + rs - 1) / rs;
      for (std::size_t q = 1; q <= rs; ++q) {
        const std::uint64_t target = std::min<std::uint64_t>(q * sa, total);
        const std::uint64_t taken =
            target <= sb ? 0
                         : std::min<std::uint64_t>(target - sb, cnt);
        bounds[i + q] = lo + static_cast<std::size_t>(taken);
      }
    }
    i += rs;
  }
  // Monotonicity is structural, but guard against key-comparison anomalies
  // (e.g. NaN keys) corrupting the exchange.
  for (std::size_t d = 0; d < p; ++d) {
    if (bounds[d] > bounds[d + 1]) {
      throw std::logic_error("sdss_partition: non-monotone boundaries");
    }
  }
  return bounds;
}

/// Send boundaries from ε-bounded splitters (histogram_eps_splitters),
/// honouring fractional-rank cuts. For a fractional splitter (v, take) the
/// global number of records with key == v falling below the boundary must
/// be exactly `take`; this rank's share is determined by an exclusive
/// prefix sum of per-rank duplicate counts (source-rank order), which makes
/// the cut exact, deterministic, and stable-compatible — duplicates keep
/// their source-rank relative order across the boundary. Collective
/// whenever any splitter key group contains a fractional cut (the group
/// structure is identical on every rank, so the exscan matches up).
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<std::size_t> sdss_partition_splitters(
    sim::Comm& comm, std::span<const T> data,
    const LocalSamples<KeyType<KeyFn, T>>& samples,
    std::span<const Splitter<KeyType<KeyFn, T>>> splitters, const Config& cfg,
    KeyFn kf = {}) {
  using K = KeyType<KeyFn, T>;
  const auto p = static_cast<std::size_t>(comm.size());
  if (splitters.size() + 1 != p) {
    throw std::invalid_argument(
        "sdss_partition_splitters: need p-1 splitters");
  }
  std::vector<std::size_t> bounds(p + 1, 0);
  bounds[p] = data.size();
  if (p == 1) return bounds;

  detail::WindowedSearch<T, KeyFn> search(
      data, cfg.local_pivot_partition ? &samples : nullptr, kf);

  std::size_t i = 0;
  while (i < splitters.size()) {
    const K& v = splitters[i].key;
    std::size_t gs = 1;  // group of splitters sharing the key value v
    bool any_fractional = splitters[i].fractional;
    while (i + gs < splitters.size() &&
           !(v < splitters[i + gs].key)) {
      any_fractional = any_fractional || splitters[i + gs].fractional;
      ++gs;
    }
    if (!any_fractional) {
      const std::size_t pd = search.upper(v);
      for (std::size_t q = 0; q < gs; ++q) bounds[i + q + 1] = pd;
      i += gs;
      continue;
    }
    const std::size_t lo = search.lower(v);
    const std::size_t hi = search.upper(v);
    const auto cnt = static_cast<std::uint64_t>(hi - lo);
    // Records with key == v held by ranks before me, in source-rank order.
    const std::uint64_t sb = comm.exscan_sum<std::uint64_t>(cnt);
    for (std::size_t q = 0; q < gs; ++q) {
      const Splitter<K>& s = splitters[i + q];
      if (!s.fractional) {
        bounds[i + q + 1] = hi;
        continue;
      }
      // My slice of the global v-run is [sb, sb+cnt); the boundary cuts the
      // global run at position `take_below`.
      const std::uint64_t taken =
          s.take_below <= sb
              ? 0
              : std::min<std::uint64_t>(s.take_below - sb, cnt);
      bounds[i + q + 1] = lo + static_cast<std::size_t>(taken);
    }
    i += gs;
  }
  // Monotone by construction: groups are key-sorted, and within a group
  // fractional cuts (sorted by take_below) precede plain ones (kTakeAll).
  for (std::size_t d = 0; d < p; ++d) {
    if (bounds[d] > bounds[d + 1]) {
      throw std::logic_error(
          "sdss_partition_splitters: non-monotone boundaries");
    }
  }
  return bounds;
}

/// Baseline partition used by Fig. 6b's "Sequential Scan" series: a single
/// linear pass over the local data counting records per destination range.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::vector<std::size_t> full_scan_partition(
    std::span<const T> data, std::span<const KeyType<KeyFn, T>> global_pivots,
    KeyFn kf = {}) {
  const std::size_t p = global_pivots.size() + 1;
  std::vector<std::size_t> bounds(p + 1, 0);
  bounds[p] = data.size();
  std::size_t d = 0;
  for (std::size_t idx = 0; idx < data.size(); ++idx) {
    const auto k = kf(data[idx]);
    while (d < global_pivots.size() && global_pivots[d] < k) {
      ++d;
      bounds[d] = idx;
    }
  }
  for (std::size_t q = d + 1; q < p; ++q) bounds[q] = data.size();
  return bounds;
}

}  // namespace sdss
