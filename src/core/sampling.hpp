// Regular sampling of local pivots (paper Section 2.4, Fig. 1 step 8).
//
// After the initial local sort, each rank picks p-1 keys at regular stride
// ⌊n/p⌋. Because the data is sorted, each local pivot represents at most
// 2N/p² records — the property the O(4N/p) workload bound rests on. The
// sample *positions* are kept alongside the keys: they bracket the O(n/p)
// search windows used by the local-pivot-accelerated partition.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "sortcore/key.hpp"

namespace sdss {

template <typename K>
struct LocalSamples {
  std::vector<K> keys;             ///< p-1 sampled keys, non-decreasing
  std::vector<std::size_t> positions;  ///< index in the local array of each
};

/// Sample `count` local pivots from sorted `data`. When the rank holds fewer
/// records than pivots, trailing samples clamp to the last element; an empty
/// rank contributes the maximum key value so its pivots sort harmlessly to
/// the top of the global pivot pool.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
LocalSamples<KeyType<KeyFn, T>> sample_local_pivots(std::span<const T> data,
                                                    std::size_t count,
                                                    KeyFn kf = {}) {
  using K = KeyType<KeyFn, T>;
  LocalSamples<K> s;
  s.keys.reserve(count);
  s.positions.reserve(count);
  const std::size_t n = data.size();
  if (n == 0) {
    s.keys.assign(count, KeyLimits<K>::max());
    s.positions.assign(count, 0);
    return s;
  }
  // Positions are computed per index, (i+1)·n/(count+1), NOT by
  // accumulating a floored stride: an accumulated ⌊n/p⌋ drifts by up to p
  // records by the last sample, which systematically shifts every pivot low
  // and overloads the top value range (an O(p/n) relative error that
  // dominates at large p with small shards).
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t pos = (i + 1) * n / (count + 1);
    if (pos >= n) pos = n - 1;
    s.keys.push_back(kf(data[pos]));
    s.positions.push_back(pos);
  }
  return s;
}

}  // namespace sdss
