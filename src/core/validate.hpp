// Distributed validation of a parallel sort's output:
//  * global sortedness — every rank locally sorted, and each rank's minimum
//    at or above the previous non-empty rank's maximum;
//  * permutation — order-independent multiset checksum equal before/after;
//  * stability (for origin-tagged records) — checked by the caller on
//    gathered data or via the boundary condition on equal keys.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "sim/comm.hpp"
#include "sortcore/key.hpp"
#include "sortcore/seq_sort.hpp"
#include "util/hash.hpp"

namespace sdss {

/// Collective: true on every rank iff the distributed data (rank order) is
/// globally sorted by kf.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
bool is_globally_sorted(sim::Comm& comm, std::span<const T> data,
                        KeyFn kf = {}) {
  using K = KeyType<KeyFn, T>;
  struct Extremes {
    K min;
    K max;
    std::uint8_t has;
  };
  Extremes mine{};
  mine.has = data.empty() ? 0 : 1;
  if (mine.has != 0u) {
    mine.min = kf(data.front());
    mine.max = kf(data.back());
  }
  const bool local_ok = is_sorted_by_key<T, KeyFn>(data, kf);
  const auto all = comm.allgather<Extremes>(mine);
  bool ok = local_ok;
  std::optional<K> prev_max;
  for (const auto& e : all) {
    if (e.has == 0u) continue;
    if (prev_max.has_value() && e.min < *prev_max) ok = false;
    prev_max = e.max;
  }
  // Everyone must agree (a rank with unsorted local data fails everywhere).
  const int votes =
      comm.allreduce<int>(ok ? 1 : 0, [](int a, int b) { return a + b; });
  return votes == comm.size();
}

/// Collective: order-independent checksum of the distributed multiset.
template <typename T>
MultisetChecksum global_checksum(sim::Comm& comm, std::span<const T> data) {
  const MultisetChecksum mine = multiset_checksum<T>(data);
  struct Pair {
    std::uint64_t sum;
    std::uint64_t count;
  };
  const Pair p = comm.allreduce<Pair>(
      Pair{mine.sum, mine.count}, [](const Pair& a, const Pair& b) {
        return Pair{a.sum + b.sum, a.count + b.count};
      });
  return MultisetChecksum{p.sum, p.count};
}

/// Collective: concatenate every rank's data onto all ranks, in rank order
/// (for small test workloads only).
template <typename T>
std::vector<T> gather_all(sim::Comm& comm, std::span<const T> data) {
  return comm.allgatherv<T>(data);
}

}  // namespace sdss
