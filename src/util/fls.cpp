#include "util/fls.hpp"

#include <atomic>
#include <stdexcept>

namespace sdss::fls {

namespace {

std::atomic<int> g_next_slot{0};

/// Fallback block for plain OS threads, plus the override the scheduler
/// installs while a fiber is on this thread. Touched only through the
/// noinline accessors below, so the TLS addresses are always computed fresh
/// inside a frame that cannot straddle a fiber suspension.
thread_local Block t_block;
thread_local Block* t_current = nullptr;

[[gnu::noinline]] Block* current_block() {
  Block* b = t_current;
  return b != nullptr ? b : &t_block;
}

}  // namespace

Block::~Block() {
  for (int i = kMaxSlots - 1; i >= 0; --i) {
    if (slots[i].p != nullptr && slots[i].cleanup != nullptr) {
      slots[i].cleanup(slots[i].p);
    }
    slots[i] = Entry{};
  }
}

int alloc_slot() {
  const int s = g_next_slot.fetch_add(1, std::memory_order_relaxed);
  if (s >= kMaxSlots) throw std::runtime_error("fls: out of slots");
  return s;
}

[[gnu::noinline]] void* get(int slot) { return current_block()->slots[slot].p; }

[[gnu::noinline]] void set(int slot, void* p, void (*cleanup)(void*)) {
  Block::Entry& e = current_block()->slots[slot];
  e.p = p;
  e.cleanup = cleanup;
}

[[gnu::noinline]] void set_current(Block* b) { t_current = b; }

}  // namespace sdss::fls
