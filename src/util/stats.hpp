// Small statistics helpers: load-balance metrics (RDFA, the paper's
// headline balance measure), replication ratio delta, and an online
// mean/min/max accumulator used by the bench harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace sdss {

/// RDFA = max_i(m_i) / avg_i(m_i): Relative Deviation of the largest
/// partition From the Average (Li et al. '93; paper Tables 3 and 4).
/// Returns +inf if the average is zero but the max is not (degenerate), and
/// 1.0 for an empty or all-zero load vector.
double rdfa(std::span<const std::size_t> loads);

/// delta = d / N where d is the multiplicity of the most frequent key:
/// the paper's "maximum replication ratio" (Section 4.1). Keys are taken as
/// already projected 64-bit values.
double measure_delta(std::span<const std::uint64_t> keys);

/// Streaming min/mean/max accumulator.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact p-quantile (nearest-rank) of a copy of `xs`.
double quantile(std::vector<double> xs, double q);

}  // namespace sdss
