// Monotonic wall-clock timer used by benches and the phase ledger.
#pragma once

#include <chrono>

namespace sdss {

/// A simple RAII-free stopwatch over std::chrono::steady_clock.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sdss
