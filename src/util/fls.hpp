// Fiber-local storage (FLS): thread_local that follows a cooperatively
// scheduled execution context across OS threads.
//
// The simulated cluster runs each rank as a stackful fiber that can suspend
// at a communication blocking point on one scheduler worker and resume on
// another (see sim/sched.hpp). Plain `thread_local` state written by rank
// code — the scratch arena is the prime case — would then be shared between
// unrelated ranks that happen to land on the same worker, and a compiler is
// free to cache a TLS address across the suspension point, which after a
// migration points into the *previous* worker's thread. FLS fixes both: a
// slot read resolves against the current fiber's block when one is active,
// and against a per-OS-thread fallback block otherwise (thread-pool workers,
// tests, main), so code using it is correct under either execution model.
//
// The accessors are deliberately out-of-line (and kept non-inlinable in the
// .cpp): every TLS address computation happens inside a call frame that
// contains no suspension point, so it can never be stale.
#pragma once

namespace sdss::fls {

/// Slots available per block. alloc_slot() throws past this; bump it if a
/// new subsystem needs a slot (each unused slot costs two pointers).
inline constexpr int kMaxSlots = 4;

/// One context's worth of slots. The scheduler embeds a Block in each fiber
/// and installs it around every resume; a thread_local Block backs every
/// plain OS thread. The destructor runs the registered cleanups (reverse
/// slot order), which is what ends a fiber-lifetime object when its fiber
/// is destroyed and a thread-lifetime object at thread exit.
struct Block {
  struct Entry {
    void* p = nullptr;
    void (*cleanup)(void*) = nullptr;
  };
  Entry slots[kMaxSlots];

  Block() = default;
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;
  ~Block();
};

/// Reserve a process-wide slot index. Call once per subsystem (from a
/// function-local `static const int slot = fls::alloc_slot();`).
int alloc_slot();

/// Value of `slot` in the calling context's block (nullptr when unset).
void* get(int slot);

/// Bind `p` to `slot` in the calling context's block. `cleanup` (may be
/// nullptr) runs when the block is destroyed.
void set(int slot, void* p, void (*cleanup)(void*));

/// Scheduler-only: route get/set on this OS thread to `b` (a fiber's block),
/// or back to the thread's own fallback block when null. Called around every
/// fiber resume/suspend.
void set_current(Block* b);

}  // namespace sdss::fls
