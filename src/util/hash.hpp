// Order-independent checksums used to verify that a parallel sort is an
// exact permutation of its input: each rank hashes every record, the
// per-record hashes are summed (addition is commutative, so redistribution
// does not change the sum), and the global sums before/after the sort are
// compared with an allreduce.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

namespace sdss {

/// 64-bit avalanche mix (finalizer of MurmurHash3 / SplitMix64).
inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash the object representation of a trivially copyable value.
template <typename T>
std::uint64_t hash_bytes(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(&value);
  std::size_t i = 0;
  // FNV-style over whole 8-byte words, then the tail.
  for (; i + 8 <= sizeof(T); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, bytes + i, 8);
    h = mix64(h ^ w);
  }
  if (i < sizeof(T)) {
    std::uint64_t w = 0;
    std::memcpy(&w, bytes + i, sizeof(T) - i);
    h = mix64(h ^ w);
  }
  return h;
}

/// Commutative multiset checksum of a range: sum of per-record hashes plus
/// the count. Equal multisets give equal checksums; a lost, duplicated, or
/// corrupted record changes the sum with overwhelming probability.
struct MultisetChecksum {
  std::uint64_t sum = 0;
  std::uint64_t count = 0;

  friend bool operator==(const MultisetChecksum&,
                         const MultisetChecksum&) = default;

  MultisetChecksum& operator+=(const MultisetChecksum& o) {
    sum += o.sum;
    count += o.count;
    return *this;
  }
};

template <typename T>
MultisetChecksum multiset_checksum(std::span<const T> data) {
  MultisetChecksum c;
  for (const T& v : data) {
    c.sum += hash_bytes(v);
    ++c.count;
  }
  return c;
}

}  // namespace sdss
