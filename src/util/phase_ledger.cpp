#include "util/phase_ledger.hpp"

#include <time.h>

#include <algorithm>
#include <atomic>

namespace sdss {

namespace {
std::atomic<double (*)()> g_cpu_clock{nullptr};
}  // namespace

namespace detail {
void set_thread_cpu_clock(double (*fn)()) {
  g_cpu_clock.store(fn, std::memory_order_release);
}
}  // namespace detail

const char* phase_cname(Phase p) {
  switch (p) {
    case Phase::kPivotSelection:
      return "pivot-selection";
    case Phase::kExchange:
      return "exchange";
    case Phase::kLocalOrdering:
      return "local-ordering";
    case Phase::kNodeMerge:
      return "node-merge";
    case Phase::kOther:
      return "other";
  }
  return "unknown";
}

std::string_view phase_name(Phase p) { return phase_cname(p); }

double thread_cpu_seconds() {
  if (double (*fn)() = g_cpu_clock.load(std::memory_order_acquire)) {
    return fn();
  }
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

double PhaseLedger::total() const {
  double t = 0.0;
  for (double s : wall_) t += s;
  return t;
}

double PhaseLedger::cpu_total() const {
  double t = 0.0;
  for (double s : cpu_) t += s;
  return t;
}

void PhaseLedger::max_with(const PhaseLedger& other) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    wall_[i] = std::max(wall_[i], other.wall_[i]);
    cpu_[i] = std::max(cpu_[i], other.cpu_[i]);
  }
}

void PhaseLedger::add_all(const PhaseLedger& other) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    wall_[i] += other.wall_[i];
    cpu_[i] += other.cpu_[i];
  }
}

}  // namespace sdss
