#include "util/simd.hpp"

#include <atomic>

#include "util/error.hpp"

namespace sdss::simd {

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse42:
      return "sse4.2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "scalar";
}

int isa_lanes_u64(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return 1;
    case Isa::kSse42:
      return 2;
    case Isa::kAvx2:
      return 4;
    case Isa::kNeon:
      return 2;
  }
  return 1;
}

Isa detect_isa() {
#if defined(SDSS_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Isa::kSse42;
  return Isa::kScalar;
#elif defined(SDSS_SIMD_NEON)
  return Isa::kNeon;  // NEON is baseline on aarch64
#else
  return Isa::kScalar;
#endif
}

bool isa_available(Isa isa) {
  if (isa == Isa::kScalar) return true;
#if defined(SDSS_SIMD_X86)
  if (isa == Isa::kAvx2) return __builtin_cpu_supports("avx2") != 0;
  if (isa == Isa::kSse42) return __builtin_cpu_supports("sse4.2") != 0;
  return false;
#elif defined(SDSS_SIMD_NEON)
  return isa == Isa::kNeon;
#else
  return false;
#endif
}

namespace {

// -1 = unresolved; otherwise the cached Isa value. One relaxed load on the
// kernel dispatch path; the (idempotent) detection race is benign.
std::atomic<int> g_active{-1};

}  // namespace

Isa active_isa() {
  int v = g_active.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(detect_isa());
    g_active.store(v, std::memory_order_relaxed);
  }
  return static_cast<Isa>(v);
}

void force_isa(Isa isa) {
  if (!isa_available(isa)) {
    throw Error(std::string("simd::force_isa: ") + isa_name(isa) +
                " is not available on this build/CPU");
  }
  g_active.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void reset_isa() {
  g_active.store(static_cast<int>(detect_isa()), std::memory_order_relaxed);
}

}  // namespace sdss::simd
