// Feature-detected SIMD instruction-set shim.
//
// The sortcore hot loops (histogramming, small-array sorting networks, the
// galloping merge scan) come in per-ISA variants; this header is the single
// place that decides which variant runs. The model:
//
//  * **Compile-time availability.** An ISA variant exists in the binary only
//    when the compiler can emit it: x86 variants are built with per-function
//    target attributes (no global -mavx2, so every other translation unit
//    stays portable), NEON is baseline on aarch64. A build with
//    -DSDSS_FORCE_SCALAR=ON compiles none of them — the portable scalar
//    kernels are always compiled and are the only ones in that build.
//
//  * **Runtime resolution, once.** The first query probes the CPU
//    (__builtin_cpu_supports on x86) and caches the best ISA that is both
//    compiled in and supported by the hardware. Kernels dispatch through
//    that cached value, so the decision costs one relaxed load per kernel
//    invocation and is recorded in telemetry (the `kernel.simd` object).
//
//  * **Scalar is a first-class citizen, not an afterthought.** The scalar
//    kernels are real implementations (branchless, ILP-conscious), used for
//    differential testing against every vector variant and forceable at
//    runtime (`force_isa`) for in-process scalar-vs-SIMD ablations.
#pragma once

#include <cstdint>
#include <string>

// Compile-time ISA availability. SDSS_FORCE_SCALAR (CMake option of the
// same name) strips every vector path from the build.
#if !defined(SDSS_FORCE_SCALAR)
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SDSS_SIMD_X86 1
#elif defined(__aarch64__)
#define SDSS_SIMD_NEON 1
#endif
#endif

namespace sdss::simd {

/// Instruction sets the kernel shim knows about, best last. A given build
/// compiles a contiguous prefix of variants per kernel family; a kernel
/// without a variant for the active ISA silently runs its best lower tier
/// (ultimately the scalar fallback).
enum class Isa : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Short stable name for telemetry: "scalar", "sse4.2", "avx2", "neon".
const char* isa_name(Isa isa);

/// 64-bit lanes per vector register of the ISA (1 for scalar).
int isa_lanes_u64(Isa isa);

/// Best ISA that is compiled into this binary AND supported by this CPU.
/// Pure detection — ignores any force_isa override.
Isa detect_isa();

/// True when `isa` could be activated on this build+CPU.
bool isa_available(Isa isa);

/// The ISA the kernels dispatch on. Resolved from detect_isa() on first
/// use and cached; stable for the life of the process unless force_isa
/// intervenes.
Isa active_isa();

/// Override the dispatch ISA (scalar is always accepted; vector ISAs only
/// when isa_available). Used by the scalar-vs-SIMD ablation in
/// bench_local_sort and by the differential tests; throws sdss::Error on an
/// unavailable ISA. Not intended for production callers.
void force_isa(Isa isa);

/// Drop any force_isa override and return to the detected ISA.
void reset_isa();

}  // namespace sdss::simd
