#include "util/error.hpp"

#include <sstream>

namespace sdss {

namespace {
std::string oom_message(int rank, std::size_t required, std::size_t limit,
                        const char* phase) {
  std::ostringstream os;
  os << "simulated out-of-memory on rank " << rank << " during " << phase
     << ": would receive " << required << " records but mem_limit_records = "
     << limit << " (over by " << (required > limit ? required - limit : 0)
     << ")";
  return os.str();
}

std::string spill_io_message(int rank, std::uint64_t op_index, const char* op,
                             const std::string& detail) {
  std::ostringstream os;
  os << "spill I/O error on rank " << rank << " at spill op " << op_index
     << " (" << op << "): " << detail;
  return os.str();
}

std::string injected_message(int rank, std::uint64_t op_index, const char* op,
                             std::uint64_t seed) {
  std::ostringstream os;
  os << "injected crash on rank " << rank << " at comm op " << op_index << " ("
     << op << "; chaos seed " << seed << ")";
  return os.str();
}

std::string deadlock_message(const std::vector<BlockedRankDump>& ranks,
                             double timeout_s) {
  std::ostringstream os;
  os << "deadlock: no mailbox progress for " << timeout_s
     << "s with every live rank blocked;";
  for (const BlockedRankDump& b : ranks) {
    os << " rank " << b.rank << ": ";
    if (b.finished) {
      os << "finished;";
    } else {
      os << b.op << "(src=" << b.src << ", tag=" << b.tag << ", ctx=" << b.ctx
         << ");";
    }
  }
  return os.str();
}
}  // namespace

SimOomError::SimOomError(int rank, std::size_t required, std::size_t limit,
                         const char* phase)
    : Error(oom_message(rank, required, limit, phase)),
      rank_(rank),
      required_(required),
      limit_(limit),
      phase_(phase) {}

SpillIoError::SpillIoError(int rank, std::uint64_t op_index, const char* op,
                           const std::string& detail)
    : Error(spill_io_message(rank, op_index, op, detail)),
      rank_(rank),
      op_index_(op_index),
      op_(op) {}

SimInjectedFault::SimInjectedFault(int rank, std::uint64_t op_index,
                                   const char* op, std::uint64_t seed)
    : Error(injected_message(rank, op_index, op, seed)),
      rank_(rank),
      op_index_(op_index) {}

SimDeadlockError::SimDeadlockError(std::vector<BlockedRankDump> ranks,
                                   double timeout_s)
    : Error(deadlock_message(ranks, timeout_s)), ranks_(std::move(ranks)) {}

}  // namespace sdss
