#include "util/error.hpp"

#include <sstream>

namespace sdss {

namespace {
std::string oom_message(int rank, std::size_t required, std::size_t limit) {
  std::ostringstream os;
  os << "simulated out-of-memory on rank " << rank << ": requires " << required
     << " records but the per-rank limit is " << limit;
  return os.str();
}
}  // namespace

SimOomError::SimOomError(int rank, std::size_t required, std::size_t limit)
    : Error(oom_message(rank, required, limit)),
      rank_(rank),
      required_(required),
      limit_(limit) {}

}  // namespace sdss
