#include "util/format.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace sdss {

std::string human_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(v < 10 && unit > 0 ? 1 : 0) << v
     << kUnits[unit];
  return os.str();
}

std::string human_count(std::uint64_t n) {
  static const char* kUnits[] = {"", "k", "M", "G"};
  double v = static_cast<double>(n);
  int unit = 0;
  while (v >= 1000.0 && unit < 3) {
    v /= 1000.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(unit == 0 ? 0 : 1) << v << kUnits[unit];
  return os.str();
}

std::string fmt_seconds(double s, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << s;
  return os.str();
}

void TextTable::header(std::vector<std::string> cells) {
  rows_.insert(rows_.begin(), std::move(cells));
  has_header_ = true;
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths;
  for (const auto& r : rows_) {
    if (widths.size() < r.size()) widths.resize(r.size(), 0);
    for (std::size_t i = 0; i < r.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  }
  std::ostringstream os;
  for (std::size_t ri = 0; ri < rows_.size(); ++ri) {
    const auto& r = rows_[ri];
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << r[i];
    }
    os << '\n';
    if (ri == 0 && has_header_) {
      std::size_t total = 0;
      for (std::size_t w : widths) total += w + 2;
      os << std::string(total, '-') << '\n';
    }
  }
  return os.str();
}

}  // namespace sdss
