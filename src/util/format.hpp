// Text-table formatting used by the bench harness so every binary prints the
// same aligned rows the paper's tables/figures report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sdss {

/// "4.0MB", "1.5GB", ... (powers of 1024, one decimal).
std::string human_bytes(std::uint64_t bytes);

/// "12.3k", "4.1M", ... for record counts.
std::string human_count(std::uint64_t n);

/// Fixed-precision seconds, e.g. "0.0123".
std::string fmt_seconds(double s, int precision = 4);

/// A simple aligned text table: add a header row then data rows; str()
/// right-pads every column to its widest cell.
class TextTable {
 public:
  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);
  std::string str() const;

 private:
  std::vector<std::vector<std::string>> rows_;
  bool has_header_ = false;
};

}  // namespace sdss
