// Per-rank time accounting by algorithm phase.
//
// The paper reports end-to-end times broken down into "Pivot selection",
// "Exchange", "Local-ordering" and "Other" (Figs. 9 and 10). Each simulated
// rank owns a PhaseLedger; the algorithm brackets its phases with
// ScopedPhase, and the harness reduces the per-rank ledgers (max over ranks,
// matching how an SPMD program's critical path is reported).
//
// Two clocks are recorded per phase:
//  * wall seconds — elapsed real time. On a host with as many cores as
//    simulated ranks this is the honest per-rank cost; on an oversubscribed
//    host it is inflated by unrelated threads' timeslices.
//  * CPU seconds — the execution context's consumed CPU time. On a plain
//    thread this is CLOCK_THREAD_CPUTIME_ID; when ranks run as fibers the
//    scheduler installs a virtualized clock (detail::set_thread_cpu_clock)
//    that charges a fiber only for its own time slices, even across
//    suspensions and worker migrations. Either way it is immune to
//    oversubscription, so max-over-ranks CPU time is the faithful proxy for
//    the parallel critical path when the simulation runs on fewer cores
//    than ranks (the load-imbalance experiments, Figs. 9/10, rely on it).
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "trace/recorder.hpp"
#include "util/timer.hpp"

namespace sdss {

enum class Phase : int {
  kPivotSelection = 0,  ///< sampling + global pivot selection + partitioning
  kExchange = 1,        ///< all-to-all data exchange (incl. async overlap)
  kLocalOrdering = 2,   ///< final merge/sort of received chunks
  kNodeMerge = 3,       ///< node-level merging before the exchange
  kOther = 4,           ///< everything else (initial local sort, setup, ...)
};

inline constexpr std::size_t kNumPhases = 5;

std::string_view phase_name(Phase p);

/// Same names as phase_name, as a static C string — the interned form the
/// trace recorder stores in events.
const char* phase_cname(Phase p);

/// Current execution context's consumed CPU seconds. Defaults to
/// CLOCK_THREAD_CPUTIME_ID; see detail::set_thread_cpu_clock.
double thread_cpu_seconds();

namespace detail {
/// Override the clock behind thread_cpu_seconds() process-wide. The rank
/// scheduler installs a fiber-aware clock here so that a ScopedPhase whose
/// span covers suspension points (every comm call) still measures one
/// rank's CPU time rather than whatever the hosting worker ran meanwhile.
/// Passing nullptr restores the raw per-thread clock.
void set_thread_cpu_clock(double (*fn)());
}  // namespace detail

/// Accumulates wall-clock and thread-CPU seconds per phase. Not
/// thread-safe: one ledger per rank, touched only by that rank's thread.
class PhaseLedger {
 public:
  void add(Phase p, double wall_seconds, double cpu_seconds = 0.0) {
    wall_[static_cast<int>(p)] += wall_seconds;
    cpu_[static_cast<int>(p)] += cpu_seconds;
  }

  double seconds(Phase p) const { return wall_[static_cast<int>(p)]; }
  double cpu_seconds(Phase p) const { return cpu_[static_cast<int>(p)]; }

  double total() const;
  double cpu_total() const;

  void clear() {
    wall_.fill(0.0);
    cpu_.fill(0.0);
  }

  /// Element-wise max: used to reduce per-rank ledgers into the SPMD
  /// critical-path breakdown the paper plots.
  void max_with(const PhaseLedger& other);

  /// Element-wise sum.
  void add_all(const PhaseLedger& other);

 private:
  std::array<double, kNumPhases> wall_{};
  std::array<double, kNumPhases> cpu_{};
};

/// RAII phase bracket. A null ledger makes it a no-op so library code can be
/// called without any accounting. On a thread bound to a trace lane it also
/// emits a begin/end span (plus kernel-counter samples at the close), so
/// every rank's phase timeline lands in the run's trace; the unwind path
/// closes the span too, which is what keeps crashed runs analyzable.
class ScopedPhase {
 public:
  ScopedPhase(PhaseLedger* ledger, Phase phase)
      : ledger_(ledger), phase_(phase) {
    if (ledger_ != nullptr) {
      cpu_start_ = thread_cpu_seconds();
      if (trace::active()) trace::phase_begin(phase_cname(phase_));
    }
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() {
    if (ledger_ != nullptr) {
      ledger_->add(phase_, timer_.seconds(),
                   thread_cpu_seconds() - cpu_start_);
      if (trace::active()) trace::phase_end(phase_cname(phase_));
    }
  }

 private:
  PhaseLedger* ledger_;
  Phase phase_;
  WallTimer timer_;
  double cpu_start_ = 0.0;
};

}  // namespace sdss
