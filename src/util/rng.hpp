// Deterministic pseudo-random generation helpers.
//
// Every generator in the library is seeded explicitly so that tests and
// benches are reproducible run-to-run. `SplitMix64` provides cheap,
// high-quality 64-bit streams and is also used to derive independent
// per-rank seeds from a single base seed.
#pragma once

#include <cstdint>

namespace sdss {

/// SplitMix64 (Steele et al.): tiny, statistically solid 64-bit PRNG.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias for small bounds.
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

 private:
  std::uint64_t state_;
};

/// Mix a base seed with a stream index (e.g. a rank id) into an independent
/// seed. Two different (seed, stream) pairs give unrelated sequences.
inline std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  SplitMix64 mix(base ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  mix.next();
  return mix.next();
}

}  // namespace sdss
