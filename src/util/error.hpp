// Error types shared across the sdss library.
//
// All recoverable failure modes of the simulated cluster and of the sorting
// algorithms are reported as exceptions derived from `sdss::Error`, so a
// harness can distinguish "the algorithm failed the way the paper says it
// fails" (e.g. `SimOomError`, reproducing HykSort's out-of-memory behaviour
// on skewed data) from genuine bugs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace sdss {

/// Base class for all errors raised by the sdss library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A rank exceeded its simulated per-process memory budget.
///
/// The paper's Edison nodes have 64 GB; HykSort's histogram partitioning
/// assigns all records with a duplicated key to one process, which runs out
/// of memory (Figs. 8/10, Tables 3/4). `Config::mem_limit_records` models
/// that budget; exceeding it throws this.
class SimOomError : public Error {
 public:
  SimOomError(int rank, std::size_t required, std::size_t limit,
              const char* phase = "exchange");

  int rank() const noexcept { return rank_; }
  std::size_t required() const noexcept { return required_; }
  std::size_t limit() const noexcept { return limit_; }
  /// Pipeline phase that exceeded the budget ("partition", "exchange",
  /// "node-merge", ...). Flows into RunResult::failure_detail so chaos-soak
  /// triage can see where a job died without opening the trace.
  const std::string& phase() const noexcept { return phase_; }

 private:
  int rank_;
  std::size_t required_;
  std::size_t limit_;
  std::string phase_;
};

/// The single OOM accounting rule: a budget of 0 means unlimited, otherwise
/// needing more than `limit` records resident throws SimOomError (strict
/// policy). All exchange planners — the core path and every baseline — call
/// this so OOM classifies identically everywhere.
inline void check_mem_budget(int rank, std::size_t required, std::size_t limit,
                             const char* phase = "exchange") {
  if (limit != 0 && required > limit) {
    throw SimOomError(rank, required, limit, phase);
  }
}

/// A spill-to-disk I/O operation failed: short write, injected write failure,
/// or a frame checksum mismatch detected on reload (see sortcore/spill.hpp).
/// Runs classify this as FailureClass::kSpillIoError.
class SpillIoError : public Error {
 public:
  SpillIoError(int rank, std::uint64_t op_index, const char* op,
               const std::string& detail);

  int rank() const noexcept { return rank_; }
  std::uint64_t op_index() const noexcept { return op_index_; }
  /// The spill op class that failed: "spill-write" or "spill-read".
  const std::string& op() const noexcept { return op_; }

 private:
  int rank_;
  std::uint64_t op_index_;
  std::string op_;
};

/// Raised in ranks that were blocked in a communication call when another
/// rank of the same cluster run threw. The throwing rank's exception is the
/// primary error; aborted ranks unwind with this.
class SimAbortError : public Error {
 public:
  explicit SimAbortError(const std::string& cause)
      : Error("cluster aborted: " + cause) {}
};

/// A chaos-engine fault (see sim/chaos.hpp) killed this rank: the rank's
/// FaultPlan scheduled a crash at this communication-operation index. Runs
/// classify this as FailureClass::kInjectedCrash, never as a logic error.
class SimInjectedFault : public Error {
 public:
  SimInjectedFault(int rank, std::uint64_t op_index, const char* op,
                   std::uint64_t seed);

  int rank() const noexcept { return rank_; }
  std::uint64_t op_index() const noexcept { return op_index_; }

 private:
  int rank_;
  std::uint64_t op_index_;
};

/// What one rank was blocked on when the deadlock watchdog fired. `src` and
/// `tag` are in the blocked communicator's numbering (`ctx`); src -1 means
/// any-source (or not applicable, e.g. a zero-copy drain).
struct BlockedRankDump {
  int rank = -1;       ///< world rank
  std::string op;      ///< "recv", "probe", "req_wait", "coll_recv", ...
  int src = -1;
  int tag = -1;
  int ctx = 0;
  bool finished = false;  ///< rank had already returned from fn
};

/// The no-progress watchdog aborted the run: every live rank sat blocked in
/// a receive/collective with no mailbox activity past the configured
/// threshold. The message carries the per-rank blocked-op dump; the same
/// data is available structurally via ranks().
class SimDeadlockError : public Error {
 public:
  SimDeadlockError(std::vector<BlockedRankDump> ranks, double timeout_s);

  const std::vector<BlockedRankDump>& ranks() const noexcept { return ranks_; }

 private:
  std::vector<BlockedRankDump> ranks_;
};

/// Misuse of the communication API (mismatched message sizes, invalid rank,
/// collective called with inconsistent arguments, ...).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

}  // namespace sdss
