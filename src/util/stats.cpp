#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace sdss {

double rdfa(std::span<const std::size_t> loads) {
  if (loads.empty()) return 1.0;
  std::size_t max_load = 0;
  std::uint64_t total = 0;
  for (std::size_t m : loads) {
    max_load = std::max(max_load, m);
    total += m;
  }
  if (total == 0) return 1.0;
  const double avg =
      static_cast<double>(total) / static_cast<double>(loads.size());
  return static_cast<double>(max_load) / avg;
}

double measure_delta(std::span<const std::uint64_t> keys) {
  if (keys.empty()) return 0.0;
  std::unordered_map<std::uint64_t, std::size_t> counts;
  counts.reserve(keys.size() / 4 + 16);
  std::size_t best = 0;
  for (std::uint64_t k : keys) {
    best = std::max(best, ++counts[k]);
  }
  return static_cast<double>(best) / static_cast<double>(keys.size());
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: rank = max(1, ceil(q*n)), 1-indexed.
  const double r = std::ceil(q * static_cast<double>(xs.size()));
  const auto rank = static_cast<std::size_t>(r < 1.0 ? 1.0 : r);
  const auto clamped = std::min(rank - 1, xs.size() - 1);
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(clamped),
                   xs.end());
  return xs[clamped];
}

}  // namespace sdss
