// Umbrella header for the SDS-Sort library.
//
// Quickstart:
//
//   #include "sdss.hpp"
//
//   sdss::sim::Cluster cluster({.num_ranks = 16, .cores_per_node = 4,
//                               .network = sdss::sim::NetworkModel::aries_like()});
//   cluster.run([](sdss::sim::Comm& world) {
//     std::vector<double> shard = load_my_shard(world.rank());
//     sdss::Config cfg;
//     cfg.stable = true;                 // preserve duplicate order
//     auto sorted = sdss::sds_sort(world, std::move(shard), cfg);
//     // `sorted` is this rank's slice of the globally ordered data.
//   });
#pragma once

#include "api/dataset.hpp"        // IWYU pragma: export
#include "core/config.hpp"        // IWYU pragma: export
#include "core/driver.hpp"        // IWYU pragma: export
#include "core/metrics.hpp"       // IWYU pragma: export
#include "core/validate.hpp"      // IWYU pragma: export
#include "sim/cluster.hpp"        // IWYU pragma: export
#include "sim/comm.hpp"           // IWYU pragma: export
#include "sim/network.hpp"        // IWYU pragma: export
#include "sortcore/local_sort.hpp"  // IWYU pragma: export
#include "sortcore/runs.hpp"        // IWYU pragma: export
