// Fault-injection / accounting surface of the spill subsystem.
//
// sortcore/spill.{hpp,cpp} is a plain library with no dependency on the
// simulated cluster, yet the chaos engine (sim/chaos.hpp) must be able to
// count, stall, fail, and corrupt individual spill I/O operations the same
// way it does communication ops. The pool therefore takes this abstract
// hook: inside a cluster run each rank's Comm hands out an implementation
// backed by its FaultPlan (Comm::spill_hook()); standalone users (unit
// tests, tools) pass nullptr and the pool counts ops privately.
#pragma once

#include <cstdint>

namespace sdss {

class SpillChaosHook {
 public:
  virtual ~SpillChaosHook() = default;

  /// Called once before every spill I/O operation with its class name
  /// ("spill-write" / "spill-read"). Returns the op's ordinal on this rank.
  /// May block cooperatively (slow-disk straggler injection — inside the
  /// simulator this is a scheduler sleep, never a watchdog-visible block)
  /// and may throw SpillIoError (injected write/read failure).
  virtual std::uint64_t before_op(const char* op) = 0;

  /// True when the frame written by op ordinal `k` must be corrupted on
  /// disk — the payload is damaged after its checksum was computed, so the
  /// eventual reload detects it and raises SpillIoError.
  virtual bool corrupt_write(std::uint64_t k) = 0;
};

}  // namespace sdss
