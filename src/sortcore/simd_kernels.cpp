// Kernel implementations for the SIMD dispatch shim (simd_kernels.hpp).
//
// Layout of this file: portable scalar kernels first (always compiled, the
// differential-testing reference and the kScalar dispatch target), then the
// x86 variants (built with per-function target attributes so the rest of
// the binary stays portable — no global -mavx2), then NEON, then the
// dispatch wrappers that consult simd::active_isa() and bump the per-kernel
// dispatch counters.
#include "sortcore/simd_kernels.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "sortcore/kernel_stats.hpp"
#include "util/simd.hpp"

#if defined(SDSS_SIMD_X86)
#include <immintrin.h>
#define SDSS_TGT_AVX2 __attribute__((target("avx2")))
#define SDSS_TGT_SSE42 __attribute__((target("sse4.2")))
#endif
#if defined(SDSS_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace sdss::simdk {

namespace {

// ===========================================================================
// Scalar kernels — branchless, ILP-conscious reference implementations.
// ===========================================================================

// All-pass histogram with *independent* shifts per digit (the naive loop
// shifts the key serially, chaining eight data-dependent shifts; extracting
// each byte from the original key keeps the eight increments independent).
void hist_all_u64_scalar(const std::uint64_t* keys, std::size_t n,
                         std::size_t* h) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x = keys[i];
    ++h[0 * 256 + (x & 0xFF)];
    ++h[1 * 256 + ((x >> 8) & 0xFF)];
    ++h[2 * 256 + ((x >> 16) & 0xFF)];
    ++h[3 * 256 + ((x >> 24) & 0xFF)];
    ++h[4 * 256 + ((x >> 32) & 0xFF)];
    ++h[5 * 256 + ((x >> 40) & 0xFF)];
    ++h[6 * 256 + ((x >> 48) & 0xFF)];
    ++h[7 * 256 + ((x >> 56) & 0xFF)];
  }
}

void hist_all_u32_scalar(const std::uint32_t* keys, std::size_t n,
                         std::size_t* h) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t x = keys[i];
    ++h[0 * 256 + (x & 0xFF)];
    ++h[1 * 256 + ((x >> 8) & 0xFF)];
    ++h[2 * 256 + ((x >> 16) & 0xFF)];
    ++h[3 * 256 + (x >> 24)];
  }
}

template <typename U>
void hist_pass_scalar(const U* keys, std::size_t n, int shift,
                      std::size_t* h) {
  for (std::size_t i = 0; i < n; ++i) {
    ++h[(keys[i] >> shift) & 0xFF];
  }
}

// Bitonic sorting network on a max-padded power-of-two buffer. The
// compare-exchange schedule depends only on indices, so the two
// conditional selects compile to cmov/min/max — no data-dependent branch
// anywhere. Final stage (k == m) leaves everything ascending; the
// max-value sentinels sink to the tail and are not copied back.
template <typename U>
void sortnet_scalar(U* v, std::size_t n) {
  U buf[detail::kSortNetworkMaxN];
  std::size_t m = 2;
  while (m < n) m <<= 1;
  std::copy(v, v + n, buf);
  std::fill(buf + n, buf + m, std::numeric_limits<U>::max());
  for (std::size_t k = 2; k <= m; k <<= 1) {
    for (std::size_t j = k >> 1; j > 0; j >>= 1) {
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t l = i ^ j;
        if (l <= i) continue;
        const U a = buf[i];
        const U b = buf[l];
        const U mn = b < a ? b : a;
        const U mx = b < a ? a : b;
        const bool up = (i & k) == 0;  // index-only: predicted perfectly
        buf[i] = up ? mn : mx;
        buf[l] = up ? mx : mn;
      }
    }
  }
  std::copy(buf, buf + n, v);
}

template <typename U>
std::size_t gallop_scalar(const U* p, std::size_t n, U limit, bool inclusive) {
  std::size_t i = 0;
  if (inclusive) {
    while (i < n && p[i] <= limit) ++i;
  } else {
    while (i < n && p[i] < limit) ++i;
  }
  return i;
}

#if defined(SDSS_SIMD_X86)

// ===========================================================================
// x86 kernels. Per-function target attributes; callable only after the
// runtime cpuid check in util/simd.cpp has confirmed the ISA.
// ===========================================================================

// --- AVX2: histogram --------------------------------------------------------
//
// Measured note (see docs/BENCHMARKING.md): hist_all has NO vector variant
// on purpose. Lane-parallel counter increments need AVX-512CD conflict
// detection, and every extraction workaround tried here lost to the scalar
// ILP kernel — routing digit bytes through a vector store/reload cost ~4x
// on uniform keys, and splitting counts across two histogram replicas
// doubled the hot footprint past L1 and lost ~2x. The scalar
// independent-shift kernel IS the fast path for all-pass histogramming;
// only the single-pass re-histogram below (one shift, one mask — exactly
// the shape vector shift+mask accelerates) keeps an AVX2 variant.

// Vectorized shift+mask digit extraction; the increments stay scalar (x86
// has no conflict-free scatter-increment below AVX-512CD).
SDSS_TGT_AVX2 void hist_pass_u64_avx2(const std::uint64_t* keys,
                                      std::size_t n, int shift,
                                      std::size_t* h) {
  const __m128i sh = _mm_cvtsi32_si128(shift);
  const __m256i mask = _mm256_set1_epi64x(0xFF);
  alignas(32) std::uint64_t d[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i + 4));
    _mm256_store_si256(reinterpret_cast<__m256i*>(d),
                       _mm256_and_si256(_mm256_srl_epi64(a, sh), mask));
    _mm256_store_si256(reinterpret_cast<__m256i*>(d + 4),
                       _mm256_and_si256(_mm256_srl_epi64(b, sh), mask));
    ++h[d[0]];
    ++h[d[1]];
    ++h[d[2]];
    ++h[d[3]];
    ++h[d[4]];
    ++h[d[5]];
    ++h[d[6]];
    ++h[d[7]];
  }
  for (; i < n; ++i) ++h[(keys[i] >> shift) & 0xFF];
}

SDSS_TGT_AVX2 void hist_pass_u32_avx2(const std::uint32_t* keys,
                                      std::size_t n, int shift,
                                      std::size_t* h) {
  const __m128i sh = _mm_cvtsi32_si128(shift);
  const __m256i mask = _mm256_set1_epi32(0xFF);
  alignas(32) std::uint32_t d[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(d),
                       _mm256_and_si256(_mm256_srl_epi32(a, sh), mask));
    ++h[d[0]];
    ++h[d[1]];
    ++h[d[2]];
    ++h[d[3]];
    ++h[d[4]];
    ++h[d[5]];
    ++h[d[6]];
    ++h[d[7]];
  }
  for (; i < n; ++i) ++h[(keys[i] >> shift) & 0xFF];
}

// --- AVX2: sorting network --------------------------------------------------

// Unsigned 64-bit a > b (AVX2 only has signed compares): flip sign bits.
SDSS_TGT_AVX2 inline __m256i cmpgt_u64v(__m256i a, __m256i b, __m256i sign) {
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                            _mm256_xor_si256(b, sign));
}

// Bitonic network over an L1-resident padded buffer. Stages with exchange
// distance j >= lane count are whole-vector compare-exchanges between two
// loads; smaller j exchange lanes in-register via permutes, selecting min
// or max per lane with a precomputed keep-min mask:
//   keepmin(lane i) = ((i & j) == 0) == ascending(i),
//   ascending(i)    = ((i & k) == 0)  for the k-block the lane sits in.
// Since vectors start at multiples of the lane count, ascending() is
// constant per vector for every stage except the very first (k == 2),
// whose mixed pattern is itself a compile-time constant.
SDSS_TGT_AVX2 void sortnet_u64_avx2(std::uint64_t* v, std::size_t n) {
  alignas(32) std::uint64_t buf[detail::kSortNetworkMaxN];
  std::size_t m = 4;
  while (m < n) m <<= 1;
  std::copy(v, v + n, buf);
  std::fill(buf + n, buf + m, std::numeric_limits<std::uint64_t>::max());

  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  // Lane order of _mm256_set_epi64x is (e3, e2, e1, e0).
  const __m256i kJ1Mixed = _mm256_set_epi64x(-1, 0, 0, -1);  // k == 2
  const __m256i kJ1Up = _mm256_set_epi64x(0, -1, 0, -1);
  const __m256i kJ1Dn = _mm256_set_epi64x(-1, 0, -1, 0);
  const __m256i kJ2Up = _mm256_set_epi64x(0, 0, -1, -1);
  const __m256i kJ2Dn = _mm256_set_epi64x(-1, -1, 0, 0);

  for (std::size_t k = 2; k <= m; k <<= 1) {
    for (std::size_t j = k >> 1; j > 0; j >>= 1) {
      if (j >= 4) {
        for (std::size_t base = 0; base < m; base += 4) {
          if ((base & j) != 0) continue;  // handled as the partner
          std::uint64_t* lo = buf + base;
          std::uint64_t* hi = buf + base + j;
          const __m256i a =
              _mm256_load_si256(reinterpret_cast<const __m256i*>(lo));
          const __m256i b =
              _mm256_load_si256(reinterpret_cast<const __m256i*>(hi));
          const __m256i gt = cmpgt_u64v(a, b, sign);
          const __m256i mn = _mm256_blendv_epi8(a, b, gt);
          const __m256i mx = _mm256_blendv_epi8(b, a, gt);
          const bool up = (base & k) == 0;
          _mm256_store_si256(reinterpret_cast<__m256i*>(lo), up ? mn : mx);
          _mm256_store_si256(reinterpret_cast<__m256i*>(hi), up ? mx : mn);
        }
      } else {
        for (std::size_t base = 0; base < m; base += 4) {
          const __m256i x =
              _mm256_load_si256(reinterpret_cast<const __m256i*>(buf + base));
          const __m256i y =
              j == 1 ? _mm256_permute4x64_epi64(x, _MM_SHUFFLE(2, 3, 0, 1))
                     : _mm256_permute4x64_epi64(x, _MM_SHUFFLE(1, 0, 3, 2));
          const __m256i gt = cmpgt_u64v(x, y, sign);
          const __m256i mn = _mm256_blendv_epi8(x, y, gt);
          const __m256i mx = _mm256_blendv_epi8(y, x, gt);
          __m256i keepmin;
          if (k == 2) {
            keepmin = kJ1Mixed;
          } else {
            const bool up = (base & k) == 0;
            keepmin = j == 1 ? (up ? kJ1Up : kJ1Dn) : (up ? kJ2Up : kJ2Dn);
          }
          _mm256_store_si256(reinterpret_cast<__m256i*>(buf + base),
                             _mm256_blendv_epi8(mx, mn, keepmin));
        }
      }
    }
  }
  std::copy(buf, buf + n, v);
}

SDSS_TGT_AVX2 void sortnet_u32_avx2(std::uint32_t* v, std::size_t n) {
  alignas(32) std::uint32_t buf[detail::kSortNetworkMaxN];
  std::size_t m = 8;
  while (m < n) m <<= 1;
  std::copy(v, v + n, buf);
  std::fill(buf + n, buf + m, std::numeric_limits<std::uint32_t>::max());

  // Lane order of _mm256_set_epi32 is (e7, ..., e0).
  const __m256i kPermJ1 = _mm256_set_epi32(6, 7, 4, 5, 2, 3, 0, 1);
  const __m256i kPermJ2 = _mm256_set_epi32(5, 4, 7, 6, 1, 0, 3, 2);
  const __m256i kPermJ4 = _mm256_set_epi32(3, 2, 1, 0, 7, 6, 5, 4);
  const __m256i kK2J1 = _mm256_set_epi32(-1, 0, 0, -1, -1, 0, 0, -1);
  const __m256i kK4J2 = _mm256_set_epi32(-1, -1, 0, 0, 0, 0, -1, -1);
  const __m256i kK4J1 = _mm256_set_epi32(-1, 0, -1, 0, 0, -1, 0, -1);
  const __m256i kJ1Up = _mm256_set_epi32(0, -1, 0, -1, 0, -1, 0, -1);
  const __m256i kJ1Dn = _mm256_set_epi32(-1, 0, -1, 0, -1, 0, -1, 0);
  const __m256i kJ2Up = _mm256_set_epi32(0, 0, -1, -1, 0, 0, -1, -1);
  const __m256i kJ2Dn = _mm256_set_epi32(-1, -1, 0, 0, -1, -1, 0, 0);
  const __m256i kJ4Up = _mm256_set_epi32(0, 0, 0, 0, -1, -1, -1, -1);
  const __m256i kJ4Dn = _mm256_set_epi32(-1, -1, -1, -1, 0, 0, 0, 0);

  for (std::size_t k = 2; k <= m; k <<= 1) {
    for (std::size_t j = k >> 1; j > 0; j >>= 1) {
      if (j >= 8) {
        for (std::size_t base = 0; base < m; base += 8) {
          if ((base & j) != 0) continue;
          std::uint32_t* lo = buf + base;
          std::uint32_t* hi = buf + base + j;
          const __m256i a =
              _mm256_load_si256(reinterpret_cast<const __m256i*>(lo));
          const __m256i b =
              _mm256_load_si256(reinterpret_cast<const __m256i*>(hi));
          const __m256i mn = _mm256_min_epu32(a, b);
          const __m256i mx = _mm256_max_epu32(a, b);
          const bool up = (base & k) == 0;
          _mm256_store_si256(reinterpret_cast<__m256i*>(lo), up ? mn : mx);
          _mm256_store_si256(reinterpret_cast<__m256i*>(hi), up ? mx : mn);
        }
      } else {
        const __m256i perm =
            j == 1 ? kPermJ1 : (j == 2 ? kPermJ2 : kPermJ4);
        for (std::size_t base = 0; base < m; base += 8) {
          const __m256i x =
              _mm256_load_si256(reinterpret_cast<const __m256i*>(buf + base));
          const __m256i y = _mm256_permutevar8x32_epi32(x, perm);
          const __m256i mn = _mm256_min_epu32(x, y);
          const __m256i mx = _mm256_max_epu32(x, y);
          __m256i keepmin;
          if (k == 2) {
            keepmin = kK2J1;
          } else if (k == 4) {
            keepmin = j == 2 ? kK4J2 : kK4J1;
          } else {
            const bool up = (base & k) == 0;
            keepmin = j == 1   ? (up ? kJ1Up : kJ1Dn)
                      : j == 2 ? (up ? kJ2Up : kJ2Dn)
                               : (up ? kJ4Up : kJ4Dn);
          }
          _mm256_store_si256(reinterpret_cast<__m256i*>(buf + base),
                             _mm256_blendv_epi8(mx, mn, keepmin));
        }
      }
    }
  }
  std::copy(buf, buf + n, v);
}

// --- AVX2 / SSE4.2: gallop scan ---------------------------------------------

SDSS_TGT_AVX2 std::size_t gallop_u64_avx2(const std::uint64_t* p,
                                          std::size_t n, std::uint64_t limit,
                                          bool inclusive) {
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i lim = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(limit)), sign);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)), sign);
    // Stop at the first element that may not be emitted: x > limit when
    // inclusive (ties belong to the winner), x >= limit otherwise.
    const unsigned stop =
        inclusive ? static_cast<unsigned>(
                        _mm256_movemask_epi8(_mm256_cmpgt_epi64(x, lim)))
                  : ~static_cast<unsigned>(
                        _mm256_movemask_epi8(_mm256_cmpgt_epi64(lim, x)));
    if (stop != 0) {
      return i + (static_cast<std::size_t>(__builtin_ctz(stop)) >> 3);
    }
  }
  for (; i < n; ++i) {
    if (inclusive ? p[i] > limit : p[i] >= limit) break;
  }
  return i;
}

SDSS_TGT_AVX2 std::size_t gallop_u32_avx2(const std::uint32_t* p,
                                          std::size_t n, std::uint32_t limit,
                                          bool inclusive) {
  const __m256i sign = _mm256_set1_epi32(
      static_cast<int>(0x80000000U));
  const __m256i lim = _mm256_xor_si256(
      _mm256_set1_epi32(static_cast<int>(limit)), sign);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)), sign);
    const unsigned stop =
        inclusive ? static_cast<unsigned>(
                        _mm256_movemask_epi8(_mm256_cmpgt_epi32(x, lim)))
                  : ~static_cast<unsigned>(
                        _mm256_movemask_epi8(_mm256_cmpgt_epi32(lim, x)));
    if (stop != 0) {
      return i + (static_cast<std::size_t>(__builtin_ctz(stop)) >> 2);
    }
  }
  for (; i < n; ++i) {
    if (inclusive ? p[i] > limit : p[i] >= limit) break;
  }
  return i;
}

SDSS_TGT_SSE42 std::size_t gallop_u64_sse42(const std::uint64_t* p,
                                            std::size_t n,
                                            std::uint64_t limit,
                                            bool inclusive) {
  const __m128i sign = _mm_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m128i lim =
      _mm_xor_si128(_mm_set1_epi64x(static_cast<long long>(limit)), sign);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i x = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i)), sign);
    const unsigned stop =
        inclusive
            ? static_cast<unsigned>(
                  _mm_movemask_epi8(_mm_cmpgt_epi64(x, lim)))
            : (~static_cast<unsigned>(
                  _mm_movemask_epi8(_mm_cmpgt_epi64(lim, x)))) &
                  0xFFFFU;
    if (stop != 0) {
      return i + (static_cast<std::size_t>(__builtin_ctz(stop)) >> 3);
    }
  }
  for (; i < n; ++i) {
    if (inclusive ? p[i] > limit : p[i] >= limit) break;
  }
  return i;
}

SDSS_TGT_SSE42 std::size_t gallop_u32_sse42(const std::uint32_t* p,
                                            std::size_t n,
                                            std::uint32_t limit,
                                            bool inclusive) {
  const __m128i sign = _mm_set1_epi32(static_cast<int>(0x80000000U));
  const __m128i lim =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int>(limit)), sign);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i x = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i)), sign);
    const unsigned stop =
        inclusive
            ? static_cast<unsigned>(
                  _mm_movemask_epi8(_mm_cmpgt_epi32(x, lim)))
            : (~static_cast<unsigned>(
                  _mm_movemask_epi8(_mm_cmpgt_epi32(lim, x)))) &
                  0xFFFFU;
    if (stop != 0) {
      return i + (static_cast<std::size_t>(__builtin_ctz(stop)) >> 2);
    }
  }
  for (; i < n; ++i) {
    if (inclusive ? p[i] > limit : p[i] >= limit) break;
  }
  return i;
}

#endif  // SDSS_SIMD_X86

#if defined(SDSS_SIMD_NEON)

// ===========================================================================
// NEON kernels (aarch64 baseline — no runtime probe needed). Gallop only;
// histogram and network run the scalar implementations, which aarch64
// compilers already schedule well.
// ===========================================================================

std::size_t gallop_u64_neon(const std::uint64_t* p, std::size_t n,
                            std::uint64_t limit, bool inclusive) {
  const uint64x2_t vlim = vdupq_n_u64(limit);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t x = vld1q_u64(p + i);
    const uint64x2_t stop = inclusive ? vcgtq_u64(x, vlim) : vcgeq_u64(x, vlim);
    if (vgetq_lane_u64(stop, 0) != 0) return i;
    if (vgetq_lane_u64(stop, 1) != 0) return i + 1;
  }
  for (; i < n; ++i) {
    if (inclusive ? p[i] > limit : p[i] >= limit) break;
  }
  return i;
}

std::size_t gallop_u32_neon(const std::uint32_t* p, std::size_t n,
                            std::uint32_t limit, bool inclusive) {
  const uint32x4_t vlim = vdupq_n_u32(limit);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t x = vld1q_u32(p + i);
    const uint32x4_t stop = inclusive ? vcgtq_u32(x, vlim) : vcgeq_u32(x, vlim);
    if (vmaxvq_u32(stop) != 0) {
      for (int l = 0; l < 4; ++l) {
        if (inclusive ? p[i + static_cast<std::size_t>(l)] > limit
                      : p[i + static_cast<std::size_t>(l)] >= limit) {
          return i + static_cast<std::size_t>(l);
        }
      }
    }
  }
  for (; i < n; ++i) {
    if (inclusive ? p[i] > limit : p[i] >= limit) break;
  }
  return i;
}

#endif  // SDSS_SIMD_NEON

inline void count_dispatch(std::atomic<std::uint64_t>& c) {
  c.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// ===========================================================================
// Dispatch wrappers. One relaxed active_isa() load per invocation; a kernel
// family without a variant for the active ISA falls through to its best
// lower tier (ultimately scalar). Dispatch counts are bumped before the ISA
// branch so they are identical across ISAs.
// ===========================================================================

void hist_all(const std::uint64_t* keys, std::size_t n, std::size_t* h) {
  count_dispatch(kernel_counters().simd_hist_calls);
  // The scalar ILP kernel is the fast path on every ISA (measured note at
  // the top of the x86 section).
  hist_all_u64_scalar(keys, n, h);
}

void hist_all(const std::uint32_t* keys, std::size_t n, std::size_t* h) {
  count_dispatch(kernel_counters().simd_hist_calls);
  hist_all_u32_scalar(keys, n, h);
}

void hist_pass(const std::uint64_t* keys, std::size_t n, int shift,
               std::size_t* h) {
  count_dispatch(kernel_counters().simd_hist_calls);
#if defined(SDSS_SIMD_X86)
  if (simd::active_isa() == simd::Isa::kAvx2) {
    hist_pass_u64_avx2(keys, n, shift, h);
    return;
  }
#endif
  hist_pass_scalar(keys, n, shift, h);
}

void hist_pass(const std::uint32_t* keys, std::size_t n, int shift,
               std::size_t* h) {
  count_dispatch(kernel_counters().simd_hist_calls);
#if defined(SDSS_SIMD_X86)
  if (simd::active_isa() == simd::Isa::kAvx2) {
    hist_pass_u32_avx2(keys, n, shift, h);
    return;
  }
#endif
  hist_pass_scalar(keys, n, shift, h);
}

void sort_small(std::uint64_t* v, std::size_t n) {
  if (n <= 1) return;
  count_dispatch(kernel_counters().simd_sortnet_calls);
  detail::count_bytes_moved(2 * n * sizeof(std::uint64_t));
#if defined(SDSS_SIMD_X86)
  // Below one full vector of work the setup overhead outruns the lanes.
  if (n >= 8 && simd::active_isa() == simd::Isa::kAvx2) {
    sortnet_u64_avx2(v, n);
    return;
  }
#endif
  sortnet_scalar(v, n);
}

void sort_small(std::uint32_t* v, std::size_t n) {
  if (n <= 1) return;
  count_dispatch(kernel_counters().simd_sortnet_calls);
  detail::count_bytes_moved(2 * n * sizeof(std::uint32_t));
#if defined(SDSS_SIMD_X86)
  if (n >= 16 && simd::active_isa() == simd::Isa::kAvx2) {
    sortnet_u32_avx2(v, n);
    return;
  }
#endif
  sortnet_scalar(v, n);
}

std::size_t gallop(const std::uint64_t* p, std::size_t n, std::uint64_t limit,
                   bool inclusive) {
  count_dispatch(kernel_counters().simd_gallop_calls);
#if defined(SDSS_SIMD_X86)
  const simd::Isa isa = simd::active_isa();
  if (isa == simd::Isa::kAvx2) return gallop_u64_avx2(p, n, limit, inclusive);
  if (isa == simd::Isa::kSse42) return gallop_u64_sse42(p, n, limit, inclusive);
#elif defined(SDSS_SIMD_NEON)
  if (simd::active_isa() == simd::Isa::kNeon) {
    return gallop_u64_neon(p, n, limit, inclusive);
  }
#endif
  return gallop_scalar(p, n, limit, inclusive);
}

std::size_t gallop(const std::uint32_t* p, std::size_t n, std::uint32_t limit,
                   bool inclusive) {
  count_dispatch(kernel_counters().simd_gallop_calls);
#if defined(SDSS_SIMD_X86)
  const simd::Isa isa = simd::active_isa();
  if (isa == simd::Isa::kAvx2) return gallop_u32_avx2(p, n, limit, inclusive);
  if (isa == simd::Isa::kSse42) return gallop_u32_sse42(p, n, limit, inclusive);
#elif defined(SDSS_SIMD_NEON)
  if (simd::active_isa() == simd::Isa::kNeon) {
    return gallop_u32_neon(p, n, limit, inclusive);
  }
#endif
  return gallop_scalar(p, n, limit, inclusive);
}

}  // namespace sdss::simdk
