// Natural-run detection and run-aware sorting for partially ordered data.
//
// The paper (Sections 1, 2.7) observes that partially ordered inputs — and
// the p-chunk output of the data exchange — can be ordered in O(N) instead
// of O(N log N) by recognizing existing sorted runs and merging them
// (Chandramouli & Goldstein's "Patience is a virtue" is cited). This module
// implements that: detect maximal non-descending runs (and, for the
// non-stable path, strictly descending runs, reversed in place), then merge
// them if the input is "partially ordered enough", otherwise fall back to a
// full comparison sort.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sortcore/arena.hpp"
#include "sortcore/key.hpp"
#include "sortcore/kway_merge.hpp"
#include "sortcore/seq_sort.hpp"

namespace sdss {

/// Boundaries of maximal runs: run i is [bounds[i], bounds[i+1]).
struct RunScan {
  std::vector<std::size_t> bounds;
  std::size_t count() const { return bounds.empty() ? 0 : bounds.size() - 1; }
};

/// Scan for maximal non-descending runs. With `reverse_descending` (valid
/// only for non-stable sorting), maximal *strictly* descending runs are
/// reversed in place first, so e.g. a reverse-sorted array becomes one run.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
RunScan find_runs(std::span<T> data, bool reverse_descending, KeyFn kf = {}) {
  RunScan scan;
  const std::size_t n = data.size();
  scan.bounds.push_back(0);
  if (n == 0) return scan;
  std::size_t i = 0;
  while (i + 1 < n) {
    std::size_t j = i + 1;
    if (kf(data[j]) < kf(data[i])) {
      // Strictly descending run [i, j...].
      while (j + 1 < n && kf(data[j + 1]) < kf(data[j])) ++j;
      if (reverse_descending) {
        std::reverse(data.begin() + static_cast<std::ptrdiff_t>(i),
                     data.begin() + static_cast<std::ptrdiff_t>(j + 1));
      } else {
        // Stable path: each element of a descending run is its own run
        // start; record singleton boundaries (the merge keeps order).
        for (std::size_t s = i + 1; s <= j; ++s) scan.bounds.push_back(s);
      }
    } else {
      // Non-descending run.
      while (j + 1 < n && !(kf(data[j + 1]) < kf(data[j]))) ++j;
    }
    if (j + 1 < n) scan.bounds.push_back(j + 1);
    i = j + 1;
  }
  scan.bounds.push_back(n);
  // A trailing single element forms its own run; the loop above already
  // accounted for it via the final boundary.
  if (scan.bounds.size() >= 2 &&
      scan.bounds[scan.bounds.size() - 2] == scan.bounds.back()) {
    scan.bounds.pop_back();
  }
  return scan;
}

/// Count natural non-descending runs without modifying the data.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
std::size_t count_runs(std::span<const T> data, KeyFn kf = {}) {
  if (data.empty()) return 0;
  std::size_t runs = 1;
  for (std::size_t i = 1; i < data.size(); ++i) {
    if (kf(data[i]) < kf(data[i - 1])) ++runs;
  }
  return runs;
}

enum class OrderingStrategy {
  kAlreadySorted,  ///< single run: O(N) scan, nothing to do
  kRunMerge,       ///< few runs: k-way merged, O(N log r)
  kFullSort,       ///< many runs: comparison sort, O(N log N)
};

struct RunAwareResult {
  OrderingStrategy strategy = OrderingStrategy::kFullSort;
  std::size_t runs = 0;
};

/// Allocation-free core: sort `data` in place, exploiting partial order.
/// The run-merge path is taken when the run count is at most
/// `max_merge_runs` (0 picks a heuristic bound) and merges the runs into
/// caller-provided `scratch` (>= data.size() elements, normally borrowed
/// from a ScratchArena) before copying back once. Stable when `stable` is
/// set (descending runs are then not reversed).
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
RunAwareResult run_aware_sort(std::span<T> data, std::span<T> scratch,
                              bool stable, KeyFn kf = {},
                              std::size_t max_merge_runs = 0) {
  RunAwareResult res;
  const std::size_t n = data.size();
  if (n <= 1) {
    res.strategy = OrderingStrategy::kAlreadySorted;
    res.runs = n;
    return res;
  }
  if (max_merge_runs == 0) {
    // Merging r runs costs ~N log r with a higher constant than std::sort's
    // N log N inner loop; it wins clearly when r is small. 64 runs is a
    // conservative crossover measured on this substrate.
    max_merge_runs = 64;
  }
  RunScan scan = find_runs<T, KeyFn>(data, /*reverse_descending=*/!stable, kf);
  res.runs = scan.count();
  if (res.runs <= 1) {
    res.strategy = OrderingStrategy::kAlreadySorted;
    return res;
  }
  if (res.runs > max_merge_runs) {
    res.strategy = OrderingStrategy::kFullSort;
    seq_sort<T, KeyFn>(data, stable, kf);
    return res;
  }
  if (scratch.size() < n) {
    throw std::invalid_argument("run_aware_sort: scratch smaller than data");
  }
  res.strategy = OrderingStrategy::kRunMerge;
  ArenaScope scope(ScratchArena::for_thread());
  auto runs = scope.acquire<std::span<const T>>(res.runs);
  for (std::size_t r = 0; r + 1 < scan.bounds.size(); ++r) {
    runs[r] = std::span<const T>(data.data() + scan.bounds[r],
                                 scan.bounds[r + 1] - scan.bounds[r]);
  }
  kway_merge<T, KeyFn>(runs, scratch.first(n), kf);
  std::copy(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(n),
            data.begin());
  detail::count_bytes_moved(n * sizeof(T));
  return res;
}

/// Compatibility wrapper: sorts a vector in place, borrowing merge scratch
/// from this thread's ScratchArena.
template <typename T, KeyFunction<T> KeyFn = IdentityKey>
RunAwareResult run_aware_sort(std::vector<T>& data, bool stable,
                              KeyFn kf = {}, std::size_t max_merge_runs = 0) {
  if (data.size() <= 1) {
    RunAwareResult res;
    res.strategy = OrderingStrategy::kAlreadySorted;
    res.runs = data.size();
    return res;
  }
  ArenaScope scope(ScratchArena::for_thread());
  return run_aware_sort<T, KeyFn>(std::span<T>(data),
                                  scope.acquire<T>(data.size()), stable, kf,
                                  max_merge_runs);
}

}  // namespace sdss
