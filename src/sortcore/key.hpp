// Key projection utilities.
//
// Every sort in the library is parameterized by a key-projection callable
// `KeyFn : const T& -> K` with K totally ordered. The paper's headline design
// point is that SDS-Sort never needs a *secondary* sorting key: the
// projection is the one and only key, and skew-aware partitioning handles
// duplicates. `IdentityKey` covers plain arithmetic element types.
#pragma once

#include <array>
#include <bit>
#include <concepts>
#include <cstdint>
#include <functional>
#include <limits>
#include <type_traits>

namespace sdss {

struct IdentityKey {
  template <typename T>
  const T& operator()(const T& v) const noexcept {
    return v;
  }
};

/// Order-preserving bijection from a signed integer to its unsigned
/// counterpart: flipping the sign bit shifts the two's-complement range so
/// that INT_MIN maps to 0 and INT_MAX to UINT_MAX. Lets the radix kernels
/// (which require unsigned keys) sort signed data.
struct SignedToUnsignedKey {
  template <typename T>
  std::make_unsigned_t<T> operator()(const T& v) const noexcept {
    static_assert(std::is_integral_v<T> && std::is_signed_v<T>,
                  "SignedToUnsignedKey requires a signed integer");
    using U = std::make_unsigned_t<T>;
    constexpr U sign = U{1} << (std::numeric_limits<U>::digits - 1);
    return static_cast<U>(v) ^ sign;
  }
};

/// Order-preserving bijection from IEEE-754 float/double to uint32/uint64.
/// Non-negative values get the sign bit set (so they sort above every
/// negative); negative values get all bits flipped (so more-negative sorts
/// lower). This is IEEE totalOrder on non-NaN values: note -0.0 maps
/// strictly below +0.0 even though they compare equal as floats. NaNs are
/// the caller's problem (they map to the extremes of the unsigned range).
struct FloatToUnsignedKey {
  std::uint32_t operator()(const float& v) const noexcept {
    const auto bits = std::bit_cast<std::uint32_t>(v);
    const std::uint32_t mask =
        static_cast<std::uint32_t>(-static_cast<std::int32_t>(bits >> 31)) |
        0x80000000U;
    return bits ^ mask;
  }
  std::uint64_t operator()(const double& v) const noexcept {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    const std::uint64_t mask =
        static_cast<std::uint64_t>(-static_cast<std::int64_t>(bits >> 63)) |
        0x8000000000000000ULL;
    return bits ^ mask;
  }
};

template <typename F, typename T>
concept KeyFunction = std::invocable<const F&, const T&> &&
                      std::totally_ordered<std::remove_cvref_t<
                          std::invoke_result_t<const F&, const T&>>>;

template <typename F, typename T>
using KeyType = std::remove_cvref_t<std::invoke_result_t<const F&, const T&>>;

/// Strict-weak-order comparator over elements induced by a key projection.
template <typename KeyFn>
struct KeyLess {
  KeyFn key;
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return key(a) < key(b);
  }
};

template <typename KeyFn>
KeyLess<KeyFn> by_key(KeyFn kf) {
  return KeyLess<KeyFn>{std::move(kf)};
}

/// Customization point for the largest representable key value, used as a
/// harmless sentinel when an empty rank must still contribute sample pivots
/// (they sort to the top of the global pivot pool and never cut a range).
/// The default covers every arithmetic type; specialize for composite keys.
template <typename K, typename = void>
struct KeyLimits {
  static K max() { return std::numeric_limits<K>::max(); }
};

/// Fixed-length byte-string keys (e.g. the 10-byte GraySort key).
template <std::size_t N>
struct KeyLimits<std::array<std::uint8_t, N>> {
  static std::array<std::uint8_t, N> max() {
    std::array<std::uint8_t, N> k;
    k.fill(0xff);
    return k;
  }
};

}  // namespace sdss
